// pmlp — command-line front end for the printed-MLP GA-AxC framework.
//
//   pmlp list                         datasets and Table I topologies
//   pmlp metrics <dataset>            dataset diagnostics (priors, Fisher)
//   pmlp baseline <dataset>           exact bespoke baseline cost/accuracy
//   pmlp run <dataset> [pop] [gens] [model-out]
//                                     staged FlowEngine pipeline with
//                                     per-stage progress; saves the Table II
//                                     pick as a .model file, prints front
//   pmlp resume <dataset> [pop] [gens] [model-out]
//                                     like run, but requires an existing
//                                     --checkpoint DIR and continues from
//                                     whatever stages are already on disk
//   pmlp train <dataset> [pop] [gens] [model-out]
//                                     legacy alias of run (no progress lines)
//   pmlp evaluate <model> <dataset>   re-score a saved model (acc, area,
//                                     power, feasibility zone @1V/0.6V)
//   pmlp export <model> <dataset> <out-prefix>
//                                     Verilog DUT + self-checking testbench
//   pmlp export-rtl <front|model> [dataset|-] [outdir]
//                                     verified RTL export of a whole saved
//                                     front (--save-front dir or campaign
//                                     checkpoint tree) or one .model file:
//                                     per point an optimized DUT, a
//                                     self-checking testbench (recorded
//                                     dataset vectors + LFSR random
//                                     stimulus) and a manifest.tsv row,
//                                     after asserting bit-identical classes
//                                     across the C++ oracle, the gate-level
//                                     simulator and the in-process
//                                     evaluation of the emitted Verilog.
//                                     dataset "-" derives each point's
//                                     dataset from the campaign tree path
//                                     (random-only stimulus otherwise);
//                                     outdir defaults to <input>_rtl
//   pmlp verify-rtl <front|model> [dataset|-] [outdir]
//                                     export-rtl, then compile+run every
//                                     testbench with a discovered iverilog/
//                                     verilator and require TESTBENCH PASS.
//                                     No simulator installed is a graceful
//                                     skip (exit 0) unless --require-sim
//   pmlp campaign [pop] [gens]        run a dataset x seed grid of flows
//                                     concurrently over ONE shared worker
//                                     pool (--threads N workers total; no
//                                     per-flow thread forests). With
//                                     --checkpoint DIR each flow persists
//                                     under DIR/<dataset>_sK, a manifest
//                                     (campaign.txt) describes the grid,
//                                     and a killed campaign resumes
//                                     bit-identically; --json FILE writes
//                                     the aggregated campaign report.
//                                     Per-flow fronts are bit-identical to
//                                     N independent runs. SIGINT/SIGTERM
//                                     stop gracefully (checkpoints stay
//                                     resumable).
//   pmlp campaign --worker --checkpoint DIR
//                                     join an existing campaign tree as a
//                                     crash-safe distributed worker: claim
//                                     unowned flows via per-flow lease
//                                     files, run one stage per claim to
//                                     its atomic commit, reclaim stale
//                                     leases of dead/stalled workers. Any
//                                     number of workers may drain one tree
//                                     concurrently; a SIGKILLed worker
//                                     forfeits at most one stage of work
//                                     and the surviving workers finish the
//                                     grid with bit-identical fronts.
//   pmlp campaign status --checkpoint DIR
//                                     render grid progress from the tree
//                                     alone: per-flow stage counts, owner,
//                                     heartbeat age, failure records
//                                     (--json FILE|- for machine use).
//   pmlp serve <front-dir>            long-lived classify server over a
//                                     --save-front directory or a campaign
//                                     checkpoint tree: line protocol on a
//                                     localhost TCP socket (--port N; 0 =
//                                     OS-assigned, printed as "listening
//                                     127.0.0.1 PORT"), request batching
//                                     (--batch N) over the --threads pool,
//                                     `reload` hot-swaps a re-read front,
//                                     `stop` / SIGINT shut down gracefully
//   pmlp classify <model> <code...>   classify ONE quantized feature vector
//                                     with a saved model (the offline
//                                     reference for serve answers)
//
// Serve options:
//   --port N                          TCP port (default 0 = OS-assigned)
//   --batch N                         max requests per dispatched batch
//                                     (default 64)
//
// Campaign options:
//   --datasets A,B,C                  Table I subset (default: all five)
//   --seeds K                         GA seeds 1..K per dataset (default 1)
//   --resume                          require an existing --checkpoint root
//                                     and continue from the completed stages
//   --ga-checkpoint K                 GA generation-level checkpointing:
//                                     persist the evolution state every K
//                                     generations (ga_state.txt) so a
//                                     killed GA stage resumes from its last
//                                     block (0 = off; bit-identical either
//                                     way; excluded from the config
//                                     fingerprint)
//
// Worker options (campaign --worker):
//   --worker                          drain an existing tree instead of
//                                     running the grid in-process
//   --worker-id ID                    stable worker identity (default
//                                     <host>-<pid>-<random>)
//   --lease-timeout S                 seconds without (claim, beat) change
//                                     before a lease counts as stale and
//                                     may be stolen (default 10)
//   --heartbeat S                     lease refresh period (default 1)
//   --max-failures N                  consecutive failed claims before a
//                                     flow is marked terminally failed
//                                     (default 3)
//
// RTL options (export-rtl / verify-rtl):
//   --rtl-vectors N                   recorded dataset vectors per point
//                                     (default 64)
//   --rtl-random N                    LFSR random vectors per point
//                                     (default 64)
//   --require-sim                     verify-rtl: a missing simulator is a
//                                     failure (exit 1), not a skip — the CI
//                                     setting
//
// Global options:
//   --threads N                      flow-wide parallelism: GA fitness
//                                     evaluation and hardware analysis
//                                     (0 = all hardware threads, the
//                                     default; 1 = serial; bit-identical
//                                     results for any setting)
//   --cache N                         genome memo-cache capacity of the
//                                     evaluation engine (entries; 0 = off;
//                                     default 4096; bit-identical results
//                                     for any setting)
//   --checkpoint DIR                  persist every stage artifact under
//                                     DIR; a later run/resume with the same
//                                     dataset and config continues from the
//                                     completed stages bit-identically
//   --json FILE                       machine-readable FlowResult report
//                                     (stages, counters, every evaluated
//                                     point, the pick); "-" = stdout
//   --save-front DIR                  dump every true-Pareto model into DIR
//                                     (front_NNN.model) plus an index.tsv
//                                     with accuracy/area/power per design
//
// Datasets are the synthetic paper suite by default. Set PMLP_UCI_DIR to a
// directory holding the real UCI files (breast-cancer-wisconsin.data,
// cardio.csv, pendigits.tra, winequality-{red,white}.csv) and every
// subcommand loads the real data instead (core::suite validates the shape
// against Table I).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "pmlp/core/campaign.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/rtl_export.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/serve.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/core/thread_pool.hpp"
#include "pmlp/core/worker.hpp"
#include "pmlp/datasets/metrics.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"

namespace {

using namespace pmlp;

int cmd_list() {
  std::cout << "dataset        topology   samples  classes  baseline-acc "
               "(paper)\n";
  for (const auto& row : mlp::paper_table1()) {
    const auto spec = core::find_paper_spec(row.dataset);
    std::cout << row.dataset;
    for (std::size_t i = row.dataset.size(); i < 15; ++i) std::cout << ' ';
    std::cout << row.topology.to_string() << "   " << spec.n_samples
              << "     " << spec.n_classes << "        " << row.accuracy
              << "\n";
  }
  return 0;
}

int cmd_metrics(const std::string& dataset) {
  const auto d = core::load_paper_dataset(dataset);
  const auto m = datasets::compute_metrics(d);
  std::cout << dataset << ": " << d.size() << " samples, " << d.n_features
            << " features, " << d.n_classes << " classes\n";
  std::cout << "class priors:";
  for (double p : m.class_priors) std::cout << ' ' << p;
  std::cout << "\nnearest-centroid accuracy: " << m.nearest_centroid_accuracy
            << "\nper-feature Fisher scores:";
  for (double f : m.fisher_scores) std::cout << ' ' << f;
  std::cout << "\ntop-3 feature signal share: " << m.top3_signal_share
            << "\n";
  return 0;
}

int g_threads = 0;             // --threads: 0 = all hardware threads
int g_cache = -1;              // --cache: -1 = keep the ProblemConfig default
std::string g_checkpoint;      // --checkpoint DIR
std::string g_json;            // --json FILE ("-" = stdout)
std::string g_save_front;      // --save-front DIR
std::string g_datasets;        // --datasets A,B,C (campaign; "" = all five)
int g_seeds = 1;               // --seeds K (campaign: GA seeds 1..K)
bool g_seeds_set = false;      // --seeds was given explicitly
bool g_resume = false;         // --resume (campaign)
int g_port = 0;                // --port N (serve; 0 = OS-assigned)
bool g_port_set = false;       // --port was given explicitly
int g_batch = 64;              // --batch N (serve: max requests per batch)
bool g_batch_set = false;      // --batch was given explicitly
bool g_worker = false;         // --worker (campaign: drain an existing tree)
std::string g_worker_id;       // --worker-id (campaign --worker)
double g_lease_timeout = 10.0; // --lease-timeout S (campaign --worker)
bool g_lease_timeout_set = false;
double g_heartbeat = 1.0;      // --heartbeat S (campaign --worker)
bool g_heartbeat_set = false;
int g_max_failures = 3;        // --max-failures N (campaign --worker)
bool g_max_failures_set = false;
int g_ga_checkpoint = 0;       // --ga-checkpoint K (campaign: GA gen ckpt)
bool g_ga_checkpoint_set = false;
int g_rtl_vectors = 64;        // --rtl-vectors N (export-rtl/verify-rtl)
bool g_rtl_vectors_set = false;
int g_rtl_random = 64;         // --rtl-random N (export-rtl/verify-rtl)
bool g_rtl_random_set = false;
bool g_require_sim = false;    // --require-sim (verify-rtl)

/// Usage-level argument errors throw this; main() maps it to exit code 2
/// (runtime failures exit 1) instead of letting anything escape uncaught.
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Validate a dataset argument up front: an unknown name is a usage error
/// (exit 2, message lists the valid choices). Runtime invalid_argument
/// throws from corrupt artifacts etc. stay runtime failures (exit 1).
void require_dataset(const std::string& name) {
  try {
    (void)core::find_paper_spec(name);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
}

/// Flags parsed but not consumed by the selected subcommand are usage
/// errors: a silently ignored option (campaign --save-front, run --seeds)
/// would cost a full training run to discover. --threads/--cache are
/// accepted everywhere as global performance knobs.
void reject_unused_flags(const std::string& cmd) {
  const bool run_like = cmd == "run" || cmd == "resume" || cmd == "train";
  const bool campaign = cmd == "campaign";
  const bool serve = cmd == "serve";
  const bool rtl = cmd == "export-rtl" || cmd == "verify-rtl";
  struct Check {
    const char* flag;
    bool set;
    bool consumed;
  };
  const Check checks[] = {
      {"--datasets", !g_datasets.empty(), campaign},
      {"--seeds", g_seeds_set, campaign},
      {"--resume", g_resume, campaign},
      {"--save-front", !g_save_front.empty(), run_like},
      {"--checkpoint", !g_checkpoint.empty(), run_like || campaign},
      {"--json", !g_json.empty(), run_like || campaign},
      {"--port", g_port_set, serve},
      {"--batch", g_batch_set, serve},
      {"--worker", g_worker, campaign},
      {"--worker-id", !g_worker_id.empty(), campaign},
      {"--lease-timeout", g_lease_timeout_set, campaign},
      {"--heartbeat", g_heartbeat_set, campaign},
      {"--max-failures", g_max_failures_set, campaign},
      {"--ga-checkpoint", g_ga_checkpoint_set, campaign},
      {"--rtl-vectors", g_rtl_vectors_set, rtl},
      {"--rtl-random", g_rtl_random_set, rtl},
      {"--require-sim", g_require_sim, cmd == "verify-rtl"},
  };
  for (const auto& c : checks) {
    if (c.set && !c.consumed) {
      throw UsageError(std::string(c.flag) + " is not supported by the '" +
                       cmd + "' subcommand");
    }
  }
}

/// An existing --checkpoint path must be a directory we can extend; a
/// file in its place would otherwise surface as a raw filesystem error
/// only after minutes of training.
void validate_checkpoint_path(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  if (std::filesystem::exists(dir, ec) &&
      !std::filesystem::is_directory(dir, ec)) {
    throw UsageError("--checkpoint path '" + dir +
                     "' exists and is not a directory");
  }
}

/// Validated --json sink, opened up front so an unwritable path fails
/// before the expensive run, not after it. Writes go to FILE.tmp and
/// finish() renames onto FILE, so a failed (or killed) run never clobbers
/// a previous report; an unfinished sink removes its temp file.
struct JsonSink {
  std::string path;
  std::string tmp;
  std::ofstream os;
  bool finished = false;
  explicit JsonSink(const std::string& p) : path(p), tmp(p + ".tmp"), os(tmp) {
    if (!os) {
      throw UsageError("cannot write --json file '" + path + "'");
    }
  }
  ~JsonSink() {
    if (!finished) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  }
  /// Flush and install the report; throws on a short write.
  void finish() {
    os.flush();
    if (!os) {
      throw std::runtime_error("short write to " + tmp);
    }
    os.close();
    std::filesystem::rename(tmp, path);
    finished = true;
    std::cerr << "wrote " << path << "\n";
  }
};

/// nullptr for stdout ("-") or when --json was not given.
std::unique_ptr<JsonSink> open_json_sink() {
  if (g_json.empty() || g_json == "-") return nullptr;
  return std::make_unique<JsonSink>(g_json);
}

core::FlowConfig default_flow(int pop, int gens) {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 150;
  cfg.trainer.ga.population = pop;
  cfg.trainer.ga.generations = gens;
  cfg.trainer.n_threads = g_threads;
  if (g_cache >= 0) cfg.trainer.problem.eval_cache_capacity = g_cache;
  return cfg;
}

int cmd_baseline(const std::string& dataset) {
  const auto& row = mlp::paper_row(dataset);
  core::FlowEngine engine(core::load_paper_dataset(dataset), row.topology,
                          default_flow(8, 1));
  const auto artifacts = engine.baseline_artifacts();
  std::cout << dataset << " exact bespoke baseline [2]:\n"
            << "  accuracy  " << artifacts.baseline_test_accuracy
            << " (paper " << row.accuracy << ")\n"
            << "  area      " << artifacts.baseline_cost.area_cm2()
            << " cm2 (paper " << row.area_cm2 << ")\n"
            << "  power     " << artifacts.baseline_cost.power_mw()
            << " mW (paper " << row.power_mw << ")\n";
  return 0;
}

/// An existing --save-front path must be a directory we can replace; reject
/// a file in its place up front, like --checkpoint (the rename at the end
/// of save_front would otherwise fail after the whole training run).
void validate_save_front_path(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code ec;
  if (std::filesystem::exists(dir, ec) &&
      !std::filesystem::is_directory(dir, ec)) {
    throw UsageError("--save-front path '" + dir +
                     "' exists and is not a directory");
  }
}

/// Publish the front atomically, like the --json JsonSink: write everything
/// into a `.tmp` sibling directory, then rename into place, removing any
/// previous directory only after the new one is complete. A rerun with a
/// smaller front therefore never leaves stale front_NNN.model files from an
/// earlier run next to a fresh index.tsv, and a killed run never leaves a
/// half-written directory under the published name.
void save_front(const core::FlowResult& result, const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path target(dir);
  const fs::path tmp(dir + ".tmp");
  const fs::path old(dir + ".old");
  fs::remove_all(tmp);  // leftovers of a previously killed run
  fs::remove_all(old);
  fs::create_directories(tmp);
  std::ofstream index(tmp / "index.tsv");
  if (!index) {
    throw std::runtime_error("cannot write " + (tmp / "index.tsv").string());
  }
  // max_digits10 round-trips the doubles exactly, so the index always
  // agrees with the model artifacts and selector queries never tie-break
  // on rounded values.
  index << std::setprecision(std::numeric_limits<double>::max_digits10);
  index << "file\ttest_accuracy\tarea_cm2\tpower_mw\tfunctional_match\n";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const auto& p = result.front[i];
    char name[40];
    std::snprintf(name, sizeof name, "front_%03zu.model", i);
    core::save_model_file(p.model, (tmp / name).string());
    index << name << '\t' << p.test_accuracy << '\t' << p.cost.area_cm2()
          << '\t' << p.cost.power_mw() << '\t'
          << (p.functional_match ? 1 : 0) << '\n';
  }
  index.flush();
  if (!index) {
    throw std::runtime_error("short write to " + (tmp / "index.tsv").string());
  }
  index.close();
  if (fs::exists(target)) fs::rename(target, old);
  fs::rename(tmp, target);
  fs::remove_all(old);
  std::cerr << "saved " << result.front.size() << " front designs + index to "
            << dir << "\n";
}

int cmd_run(const std::string& dataset, int pop, int gens,
            const std::string& model_out, bool is_resume, bool legacy) {
  const auto& row = mlp::paper_row(dataset);
  validate_checkpoint_path(g_checkpoint);
  validate_save_front_path(g_save_front);
  auto json_sink = open_json_sink();  // fail an unwritable --json up front
  if (is_resume) {
    if (g_checkpoint.empty()) {
      std::cerr << "error: resume requires --checkpoint DIR\n";
      return 2;
    }
    if (!std::filesystem::exists(std::filesystem::path(g_checkpoint) /
                                 "meta.txt")) {
      std::cerr << "error: no checkpoint found in " << g_checkpoint << "\n";
      return 2;
    }
  }
  std::cerr << "training " << dataset << " " << row.topology.to_string()
            << " with NSGA-II " << pop << "x" << gens << "...\n";
  if (const auto uci = core::find_uci_file(dataset); !uci.empty()) {
    std::cerr << "using real UCI data from " << uci
              << " (PMLP_UCI_DIR)\n";
  }

  core::FlowEngine engine(core::load_paper_dataset(dataset), row.topology,
                          default_flow(pop, gens));
  if (!g_checkpoint.empty()) engine.set_checkpoint_dir(g_checkpoint);
  if (!legacy) {
    engine.set_progress([](const core::StageReport& r) {
      std::cerr << "  stage " << core::flow_stage_name(r.stage) << ": "
                << r.wall_seconds << " s, " << r.items << " items"
                << (r.reused ? " (reused)" : "") << "\n";
    });
  }
  const auto result = engine.run();

  const bool json_stdout = g_json == "-";
  if (!json_stdout) {
    std::cout << "baseline: acc " << result.baseline.baseline_test_accuracy
              << ", " << result.baseline.baseline_cost.area_cm2() << " cm2, "
              << result.baseline.baseline_cost.power_mw() << " mW\n";
    // samples_per_second is runtime metadata, zero when the backprop stage
    // was reused from a checkpoint (this process never trained for it).
    if (result.backprop.samples_per_second > 0.0) {
      std::cout << "train engine: " << result.backprop.samples_per_second
                << " samples/s (" << result.backprop.simd_isa
                << " dispatch, block " << result.backprop.block << ", "
                << result.backprop.threads << " threads)\n";
    }
    std::cout << "GA engine: " << result.training.evaluations << " evals in "
              << result.training.wall_seconds << " s ("
              << result.training.evals_per_second
              << " evals/s, cache hit rate "
              << result.training.cache_hit_rate << ")\n";
    // simd_isa is runtime metadata, empty when the GA stage was reused from
    // a checkpoint (this process never ran the kernels for it).
    if (!result.training.simd_isa.empty()) {
      std::cout << "eval kernels: " << result.training.simd_isa
                << " dispatch, block " << result.training.eval_block
                << " samples\n";
    }
    if (result.refine.trials > 0) {
      std::cout << "refine engine: " << result.refine.trials << " trials on "
                << result.refine.points << " points (early-abort rate "
                << result.refine.early_abort_rate() << "), "
                << result.refine.bits_cleared << " bits cleared, "
                << result.refine.biases_simplified << " biases simplified\n";
    }
    std::cout << "true Pareto front (" << result.front.size()
              << " points):\n";
    std::cout << "  acc       area-cm2   power-mW   verified\n";
    for (const auto& p : result.front) {
      std::cout << "  " << p.test_accuracy << "   " << p.cost.area_cm2()
                << "   " << p.cost.power_mw() << "   "
                << (p.functional_match ? "yes" : "NO") << "\n";
    }
  }
  if (!g_json.empty()) {
    if (json_stdout) {
      core::write_flow_report_json(result, dataset, row.topology, std::cout);
    } else {
      core::write_flow_report_json(result, dataset, row.topology,
                                   json_sink->os);
      json_sink->finish();
    }
  }
  if (!g_save_front.empty()) save_front(result, g_save_front);

  if (!result.best) {
    if (!json_stdout) {
      std::cout << "no design within 5% loss at this budget; raise gens\n";
    }
    return 1;
  }
  if (!json_stdout) {
    std::cout << "pick (min area within 5% loss): acc "
              << result.best->test_accuracy << ", "
              << result.best->cost.area_cm2() << " cm2 ("
              << result.area_reduction << "x), "
              << result.best->cost.power_mw() << " mW ("
              << result.power_reduction << "x)\n";
  }
  if (!model_out.empty()) {
    core::save_model_file(result.best->model, model_out);
    if (!json_stdout) std::cout << "saved " << model_out << "\n";
  }
  return 0;
}

/// Split a --datasets CSV into validated Table I names ("" = all five).
/// Unknown names throw listing the valid choices (exit 2 via UsageError).
std::vector<std::string> campaign_dataset_names(const std::string& csv) {
  std::vector<std::string> names;
  if (csv.empty()) {
    for (const auto& row : mlp::paper_table1()) names.push_back(row.dataset);
    return names;
  }
  std::string token;
  std::istringstream is(csv);
  while (std::getline(is, token, ',')) {
    if (token.empty()) {
      throw UsageError("--datasets has an empty entry in '" + csv + "'");
    }
    try {
      (void)core::find_paper_spec(token);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    if (std::find(names.begin(), names.end(), token) != names.end()) {
      throw UsageError("duplicate dataset '" + token + "' in --datasets");
    }
    names.push_back(token);
  }
  if (names.empty()) {
    throw UsageError("--datasets expects a comma-separated list, got '" +
                     csv + "'");
  }
  return names;
}

core::CampaignRunner* g_campaign_runner = nullptr;  // SIGINT/SIGTERM -> stop
core::CampaignWorker* g_campaign_worker = nullptr;

void campaign_sigint(int) {
  // One atomic store each: in-flight stages finish, checkpoints/leases are
  // released cleanly, and the tree stays resumable.
  if (g_campaign_runner != nullptr) g_campaign_runner->request_stop();
  if (g_campaign_worker != nullptr) g_campaign_worker->request_stop();
}

/// The worker-mode flags are meaningless without --worker; catching them
/// here keeps a typo'd coordinator invocation from silently training with
/// half the intended setup.
void require_worker_mode_flags_unused() {
  if (!g_worker_id.empty() || g_lease_timeout_set || g_heartbeat_set ||
      g_max_failures_set) {
    throw UsageError(
        "--worker-id/--lease-timeout/--heartbeat/--max-failures require "
        "--worker");
  }
}

int cmd_campaign(int pop, int gens) {
  const auto names = campaign_dataset_names(g_datasets);
  validate_checkpoint_path(g_checkpoint);
  require_worker_mode_flags_unused();
  auto json_sink = open_json_sink();
  if (g_resume) {
    if (g_checkpoint.empty()) {
      throw UsageError("--resume requires --checkpoint DIR");
    }
    if (!std::filesystem::is_directory(g_checkpoint)) {
      throw UsageError("--resume: no campaign checkpoint found in '" +
                       g_checkpoint + "'");
    }
  }

  core::CampaignConfig ccfg;
  ccfg.n_threads = g_threads;
  ccfg.checkpoint_root = g_checkpoint;
  core::CampaignRunner runner(ccfg);
  core::CampaignManifest manifest;
  manifest.population = pop;
  manifest.generations = gens;
  manifest.ga_checkpoint = g_ga_checkpoint;
  for (const auto& name : names) {
    // One synthetic generation per dataset; the seed grid shares copies.
    const auto data = core::load_paper_dataset(name);
    for (int seed = 1; seed <= g_seeds; ++seed) {
      core::CampaignFlowSpec spec;
      spec.name = name + "_s" + std::to_string(seed);
      spec.dataset = name;
      spec.data = data;
      spec.topology = core::paper_topology(name);
      spec.config = default_flow(pop, gens);
      spec.config.trainer.ga.seed = static_cast<std::uint64_t>(seed);
      spec.config.trainer.ga.checkpoint_every = g_ga_checkpoint;
      manifest.flows.push_back(
          {spec.name, name, static_cast<std::uint64_t>(seed)});
      runner.add_flow(std::move(spec));
    }
  }
  if (!g_checkpoint.empty()) {
    // The manifest makes the tree self-describing: `--worker` processes
    // and `campaign status` reconstruct the grid from it alone.
    core::save_campaign_manifest(manifest, g_checkpoint);
  }
  const int total = static_cast<int>(names.size()) * g_seeds;
  std::cerr << "campaign: " << total << " flows (" << names.size()
            << " datasets x " << g_seeds << " seeds), NSGA-II " << pop << "x"
            << gens << ", shared pool of "
            << core::resolve_n_threads(g_threads) << " workers\n";
  runner.set_progress([](const core::CampaignProgress& p) {
    std::cerr << "  [" << p.flow_name << "] stage "
              << core::flow_stage_name(p.stage.stage) << ": "
              << p.stage.wall_seconds << " s, " << p.stage.items << " items"
              << (p.stage.reused ? " (reused)" : "") << "  (" << p.flows_done
              << "/" << p.flows_total << " flows done)\n";
  });
  g_campaign_runner = &runner;
  std::signal(SIGINT, campaign_sigint);
  std::signal(SIGTERM, campaign_sigint);
  const auto result = runner.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_campaign_runner = nullptr;

  const bool json_stdout = g_json == "-";
  if (!json_stdout) {
    std::cout << "campaign: " << result.completed << "/"
              << result.flows.size() << " flows in " << result.wall_seconds
              << " s wall (" << result.stage_wall_seconds
              << " s of summed stage wall on " << result.n_threads
              << " workers, " << result.flows_per_second() << " flows/s)\n";
    std::cout << "  flow                 status    wall-s    front  "
                 "pick-acc   area-red\n";
    for (const auto& f : result.flows) {
      std::cout << "  ";
      std::cout.width(20);
      std::cout.setf(std::ios::left);
      std::cout << f.name;
      std::cout.unsetf(std::ios::left);
      std::cout << " " << campaign_flow_status_name(f.status) << "  "
                << f.wall_seconds;
      if (f.result) {
        std::cout << "  " << f.result->front.size() << "  ";
        if (f.result->best) {
          std::cout << f.result->best->test_accuracy << "  "
                    << f.result->area_reduction << "x";
        } else {
          std::cout << "-  -";
        }
      } else if (!f.error.empty()) {
        std::cout << "  " << f.error;
      }
      std::cout << "\n";
    }
  }
  if (!g_json.empty()) {
    if (json_stdout) {
      core::write_campaign_report_json(result, std::cout);
    } else {
      core::write_campaign_report_json(result, json_sink->os);
      json_sink->finish();
    }
  }
  for (const auto& f : result.flows) {
    if (f.status == core::CampaignFlowStatus::kFailed) {
      std::cerr << "flow " << f.name << " FAILED: " << f.error << "\n";
    }
  }
  return result.all_ok() ? 0 : 1;
}

/// `pmlp campaign --worker --checkpoint DIR`: join an existing campaign
/// tree as one crash-safe distributed drain process. The grid comes from
/// the tree's manifest; pop/gens positionals are rejected so two workers
/// can never disagree about the flow configs (the config fingerprint would
/// catch it, but at the cost of a poisoned flow).
int cmd_campaign_worker() {
  if (g_checkpoint.empty()) {
    throw UsageError("--worker requires --checkpoint DIR");
  }
  const auto manifest = core::load_campaign_manifest(g_checkpoint);

  std::vector<core::CampaignFlowSpec> specs;
  std::vector<std::pair<std::string, datasets::Dataset>> loaded;
  for (const auto& f : manifest.flows) {
    const datasets::Dataset* data = nullptr;
    for (const auto& [name, d] : loaded) {
      if (name == f.dataset) data = &d;
    }
    if (data == nullptr) {
      loaded.emplace_back(f.dataset, core::load_paper_dataset(f.dataset));
      data = &loaded.back().second;
    }
    core::CampaignFlowSpec spec;
    spec.name = f.name;
    spec.dataset = f.dataset;
    spec.data = *data;
    spec.topology = core::paper_topology(f.dataset);
    spec.config = default_flow(manifest.population, manifest.generations);
    spec.config.trainer.ga.seed = f.seed;
    spec.config.trainer.ga.checkpoint_every =
        g_ga_checkpoint_set ? g_ga_checkpoint : manifest.ga_checkpoint;
    specs.push_back(std::move(spec));
  }

  core::WorkerConfig wcfg;
  wcfg.checkpoint_root = g_checkpoint;
  wcfg.worker_id = g_worker_id;
  wcfg.lease_timeout_s = g_lease_timeout;
  wcfg.heartbeat_s = g_heartbeat;
  wcfg.max_failures = g_max_failures;
  core::CampaignWorker worker(std::move(specs), wcfg);
  worker.set_progress(
      [&worker](const std::string& flow, const core::StageReport& r) {
        std::cerr << "  [" << worker.worker_id() << " @ " << flow
                  << "] stage " << core::flow_stage_name(r.stage) << ": "
                  << r.wall_seconds << " s, " << r.items << " items"
                  << (r.reused ? " (reused)" : "") << "\n";
      });
  std::cerr << "worker " << worker.worker_id() << ": joining campaign tree "
            << g_checkpoint << " (" << manifest.flows.size()
            << " flows, lease timeout " << g_lease_timeout
            << " s, heartbeat " << g_heartbeat << " s)\n";

  g_campaign_worker = &worker;
  std::signal(SIGINT, campaign_sigint);
  std::signal(SIGTERM, campaign_sigint);
  const auto report = worker.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_campaign_worker = nullptr;

  std::cout << "worker " << report.worker_id << ": "
            << report.stages_computed << " stages computed, "
            << report.stages_reloaded << " reloaded, " << report.claims
            << " claims (" << report.claim_conflicts << " conflicts, "
            << report.leases_stolen << " stale leases reclaimed), "
            << report.flows_completed << " flows completed, "
            << report.flows_failed << " marked failed, "
            << report.stage_failures << " stage failures, "
            << report.wall_seconds << " s wall\n";

  // Exit reflects the TREE, not just this worker: 0 = fully drained with
  // no failed flows (no matter which worker did the work).
  const auto status = core::read_campaign_status(g_checkpoint);
  if (status.failed > 0) return 1;
  return status.done == static_cast<int>(status.flows.size()) ? 0 : 1;
}

/// `pmlp campaign status --checkpoint DIR`: grid progress from the tree
/// alone — no worker processes are consulted, so it works mid-campaign,
/// post-crash, or on a finished tree.
int cmd_campaign_status() {
  if (g_checkpoint.empty()) {
    throw UsageError("campaign status requires --checkpoint DIR");
  }
  require_worker_mode_flags_unused();
  auto json_sink = open_json_sink();
  const auto status = core::read_campaign_status(g_checkpoint);
  if (g_json == "-") {
    core::write_campaign_status_json(status, std::cout);
  } else {
    core::write_campaign_status_table(status, std::cout);
    if (json_sink) {
      core::write_campaign_status_json(status, json_sink->os);
      json_sink->finish();
    }
  }
  return 0;
}

/// Rebuild evaluation data exactly as the training flow splits it.
datasets::QuantizedDataset test_split(const std::string& dataset,
                                      const core::FlowConfig& cfg) {
  core::FlowEngine engine(core::load_paper_dataset(dataset),
                          core::paper_topology(dataset), cfg);
  return engine.split().test;
}

int cmd_evaluate(const std::string& model_path, const std::string& dataset) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));
  const double acc = core::accuracy(model, test);

  const auto circuit =
      netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto cost = netlist::optimize(circuit.nl).cost(lib);
  const auto cost06 =
      netlist::optimize(circuit.nl).cost(lib.at_voltage(0.6));

  std::cout << model_path << " on " << dataset << ":\n"
            << "  accuracy " << acc << "\n"
            << "  area     " << cost.area_cm2() << " cm2\n"
            << "  power    " << cost.power_mw() << " mW @1.0V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost.area_cm2(), cost.power_mw()))
            << "), " << cost06.power_mw() << " mW @0.6V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost06.area_cm2(), cost06.power_mw()))
            << ")\n";
  return 0;
}

core::FrontServer* g_server = nullptr;  // SIGINT -> graceful stop

void serve_sigint(int) {
  if (g_server != nullptr) g_server->request_stop();  // one atomic store
}

int cmd_serve(const std::string& dir) {
  {
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      throw UsageError("serve: front directory '" + dir +
                       "' does not exist or is not a directory");
    }
  }
  core::ServeConfig cfg;
  cfg.n_threads = g_threads;
  cfg.max_batch = g_batch;
  cfg.port = g_port;
  core::FrontServer server(dir, cfg);  // bad artifacts -> runtime, exit 1
  server.listen();
  // The one machine-parseable stdout line: clients scrape the actual port.
  std::cout << "listening 127.0.0.1 " << server.port() << "\n" << std::flush;
  std::cerr << "serving " << server.models().size() << " models from " << dir
            << " (pool of " << server.pool_size() << " workers, batch "
            << cfg.max_batch << "); `stop` or SIGINT shuts down\n";
  g_server = &server;
  std::signal(SIGINT, serve_sigint);
  std::signal(SIGTERM, serve_sigint);
  server.serve_forever();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_server = nullptr;
  const auto stats = server.stats();
  std::cerr << "served " << stats.requests << " requests in " << stats.batches
            << " batches (max batch " << stats.max_batch << ", avg fill "
            << stats.batch_fill() << ") over " << stats.connections
            << " connections, " << stats.reloads << " reloads\n";
  return 0;
}

/// Offline reference for serve answers: classify one quantized feature
/// vector through the same CompiledNet path the server executes.
int cmd_classify(const std::string& model_path,
                 const std::vector<std::string>& code_args) {
  const auto model = core::load_model_file(model_path);
  const core::CompiledNet net(model);
  if (static_cast<int>(code_args.size()) != net.n_inputs()) {
    throw UsageError("classify: model expects " +
                     std::to_string(net.n_inputs()) +
                     " feature codes, got " +
                     std::to_string(code_args.size()));
  }
  const unsigned max_code = (1u << model.bits().input_bits) - 1u;
  std::vector<std::uint8_t> codes;
  codes.reserve(code_args.size());
  for (const auto& arg : code_args) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end != arg.c_str() + arg.size() || v < 0 ||
        errno == ERANGE || static_cast<unsigned long>(v) > max_code) {
      throw UsageError("classify: feature code '" + arg +
                       "' is not in the input range 0.." +
                       std::to_string(max_code));
    }
    codes.push_back(static_cast<std::uint8_t>(v));
  }
  core::EvalWorkspace ws;
  std::cout << net.predict(codes, ws) << "\n";
  return 0;
}

int cmd_export(const std::string& model_path, const std::string& dataset,
               const std::string& prefix) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));

  // One build: optimize(BespokeCircuit) keeps the I/O bus metadata valid
  // across the rewrite, so the optimized DUT is also the circuit the
  // testbench's golden predictions come from.
  const auto circuit = netlist::optimize(
      netlist::build_bespoke_mlp(model.to_bespoke_desc(prefix)));
  {
    std::ofstream os(prefix + ".v");
    netlist::emit_verilog(circuit.nl, prefix, os);
  }
  std::vector<std::uint8_t> codes;
  const std::size_t n_vec = std::min<std::size_t>(test.size(), 64);
  for (std::size_t i = 0; i < n_vec; ++i) {
    const auto r = test.row(i);
    codes.insert(codes.end(), r.begin(), r.end());
  }
  netlist::TestbenchOptions tb;
  tb.dut_name = prefix;
  {
    std::ofstream os(prefix + "_tb.v");
    netlist::emit_testbench(circuit, test.n_features, codes, tb, os);
  }
  std::cout << "wrote " << prefix << ".v (" << circuit.nl.gates().size()
            << " cells) and " << prefix << "_tb.v (" << n_vec
            << " vectors)\n";
  return 0;
}

/// Derive a Table I dataset name from a campaign-tree front entry path
/// ("<dataset>_s<seed>/front_NNN.model" -> "<dataset>"). Empty when the
/// entry is not tree-shaped or the prefix is not a known dataset.
std::string dataset_from_entry(const std::string& file) {
  const auto slash = file.find('/');
  if (slash == std::string::npos) return "";
  const std::string flow = file.substr(0, slash);
  const auto us = flow.rfind("_s");
  if (us == std::string::npos || us == 0) return "";
  const std::string digits = flow.substr(us + 2);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return "";
  }
  const std::string dataset = flow.substr(0, us);
  try {
    (void)core::find_paper_spec(dataset);
  } catch (const std::invalid_argument&) {
    return "";
  }
  return dataset;
}

/// export-rtl / verify-rtl: verified RTL export of a saved front (directory)
/// or a single .model file. `dataset` selects the recorded stimulus; "-"
/// derives it per point from a campaign tree's flow names (random-only
/// stimulus when nothing matches).
int cmd_rtl(const std::string& input, const std::string& dataset,
            const std::string& outdir, bool with_sim) {
  if (dataset != "-") require_dataset(dataset);

  // Recorded-stimulus test splits, resolved lazily per dataset actually
  // referenced (a mixed-dataset campaign tree needs several).
  std::map<std::string, datasets::QuantizedDataset> splits;
  auto recorded_for = [&](const std::string& ds,
                          const core::ApproxMlp& model) {
    std::vector<std::uint8_t> codes;
    if (ds.empty()) return codes;
    auto it = splits.find(ds);
    if (it == splits.end()) {
      it = splits.emplace(ds, test_split(ds, default_flow(8, 1))).first;
    }
    const auto& test = it->second;
    const int n_inputs = test.n_features;
    if (model.topology().n_inputs() != n_inputs) {
      throw UsageError("dataset " + ds + " has " + std::to_string(n_inputs) +
                       " features but the model expects " +
                       std::to_string(model.topology().n_inputs()));
    }
    const std::size_t n_vec =
        std::min<std::size_t>(test.size(),
                              static_cast<std::size_t>(g_rtl_vectors));
    codes.assign(test.codes.begin(),
                 test.codes.begin() +
                     static_cast<std::ptrdiff_t>(
                         n_vec * static_cast<std::size_t>(n_inputs)));
    return codes;
  };

  std::vector<core::RtlPointSpec> specs;
  std::error_code ec;
  if (std::filesystem::is_directory(input, ec)) {
    for (const auto& e : core::load_front_any(input)) {
      core::RtlPointSpec spec;
      std::string name = e.file;
      if (name.size() > 6 && name.rfind(".model") == name.size() - 6) {
        name.resize(name.size() - 6);
      }
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      spec.name = name;
      spec.model = e.model;
      spec.recorded = recorded_for(
          dataset != "-" ? dataset : dataset_from_entry(e.file), spec.model);
      specs.push_back(std::move(spec));
    }
  } else {
    core::RtlPointSpec spec;
    spec.model = core::load_model_file(input);
    const std::string stem = std::filesystem::path(input).stem().string();
    spec.name = stem.empty() ? "model" : stem;
    spec.recorded =
        recorded_for(dataset == "-" ? "" : dataset, spec.model);
    specs.push_back(std::move(spec));
  }

  core::RtlExportOptions opts;
  opts.max_recorded_vectors = g_rtl_vectors;
  opts.random_vectors = g_rtl_random;
  const auto report = with_sim ? core::verify_rtl(specs, outdir, opts)
                               : core::export_rtl(specs, outdir, opts);

  for (const auto& p : report.points) {
    std::cout << p.name << ": " << p.gates << " cells (-" << p.gates_removed
              << "), " << p.n_recorded << "+" << p.n_random
              << " vectors, oracle==gate-sim==emitted";
    if (with_sim) {
      std::cout << ", sim " << core::rtl_sim_outcome_name(p.sim);
      if (p.sim == core::RtlSimOutcome::kFail) {
        std::cout << " (" << p.sim_errors << " errors)";
      }
    }
    std::cout << "\n";
  }
  std::cerr << "wrote " << report.manifest_file << " ("
            << report.points.size() << " points)\n";

  if (with_sim) {
    if (report.simulator.empty()) {
      std::cerr << (g_require_sim
                        ? "error: no Verilog simulator found "
                          "(iverilog/verilator) and --require-sim is set\n"
                        : "no Verilog simulator found (iverilog/verilator); "
                          "simulation skipped\n");
    }
    if (!report.all_passed(g_require_sim)) {
      for (const auto& p : report.points) {
        if (p.sim == core::RtlSimOutcome::kFail ||
            p.sim == core::RtlSimOutcome::kError) {
          std::cerr << "--- " << p.name << " simulator log ---\n"
                    << p.sim_log << "\n";
        }
      }
      return 1;
    }
  }
  return 0;
}

int usage() {
  std::cerr << "usage: pmlp [--threads N] [--cache N] [--checkpoint DIR] "
               "[--json FILE] [--save-front DIR] [--datasets A,B,C] "
               "[--seeds K] [--resume] [--port N] [--batch N] "
               "[--worker] [--worker-id ID] [--lease-timeout S] "
               "[--heartbeat S] [--max-failures N] [--ga-checkpoint K] "
               "[--rtl-vectors N] [--rtl-random N] [--require-sim] "
               "<list|metrics|baseline|run|resume|train|campaign|serve|"
               "classify|evaluate|export|export-rtl|verify-rtl> [args...]\n"
               "(see the header of tools/pmlp_cli.cpp)\n";
  return 2;
}

/// Parse a non-negative int option value; returns -1 on error (overflow
/// included, so huge values can't silently wrap to 0 threads / cache off).
int parse_nonneg(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0 || errno == ERANGE ||
      v > std::numeric_limits<int>::max()) {
    std::cerr << "error: " << flag
              << " expects a non-negative int, got '" << value << "'\n";
    return -1;
  }
  return static_cast<int>(v);
}

/// Parse a strictly positive seconds value (--lease-timeout/--heartbeat);
/// returns -1 on error.
double parse_pos_seconds(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(v > 0.0) || errno == ERANGE) {
    std::cerr << "error: " << flag << " expects positive seconds, got '"
              << value << "'\n";
    return -1.0;
  }
  return v;
}

/// Parse a strictly positive positional int (pop/gens/seeds); a garbled or
/// non-positive value is a usage error (previously std::atoi silently
/// mapped garbage to 0 and fed it into the GA).
int parse_pos(const char* what, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || v <= 0 || errno == ERANGE ||
      v > std::numeric_limits<int>::max()) {
    throw UsageError(std::string(what) + " expects a positive int, got '" +
                     value + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "--cache") == 0 ||
        std::strcmp(argv[i], "--seeds") == 0 ||
        std::strcmp(argv[i], "--port") == 0 ||
        std::strcmp(argv[i], "--batch") == 0 ||
        std::strcmp(argv[i], "--max-failures") == 0 ||
        std::strcmp(argv[i], "--ga-checkpoint") == 0 ||
        std::strcmp(argv[i], "--rtl-vectors") == 0 ||
        std::strcmp(argv[i], "--rtl-random") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const int v = parse_nonneg(flag, argv[++i]);
      if (v < 0) return usage();
      if (std::strcmp(flag, "--seeds") == 0) {
        if (v == 0) {
          std::cerr << "error: --seeds expects a positive int\n";
          return usage();
        }
        g_seeds = v;
        g_seeds_set = true;
      } else if (std::strcmp(flag, "--port") == 0) {
        if (v > 65535) {
          std::cerr << "error: --port expects a TCP port in 0..65535\n";
          return usage();
        }
        g_port = v;
        g_port_set = true;
      } else if (std::strcmp(flag, "--batch") == 0) {
        if (v == 0) {
          std::cerr << "error: --batch expects a positive int\n";
          return usage();
        }
        g_batch = v;
        g_batch_set = true;
      } else if (std::strcmp(flag, "--max-failures") == 0) {
        if (v == 0) {
          std::cerr << "error: --max-failures expects a positive int\n";
          return usage();
        }
        g_max_failures = v;
        g_max_failures_set = true;
      } else if (std::strcmp(flag, "--ga-checkpoint") == 0) {
        g_ga_checkpoint = v;
        g_ga_checkpoint_set = true;
      } else if (std::strcmp(flag, "--rtl-vectors") == 0) {
        g_rtl_vectors = v;
        g_rtl_vectors_set = true;
      } else if (std::strcmp(flag, "--rtl-random") == 0) {
        g_rtl_random = v;
        g_rtl_random_set = true;
      } else {
        (std::strcmp(flag, "--threads") == 0 ? g_threads : g_cache) = v;
      }
    } else if (std::strcmp(argv[i], "--lease-timeout") == 0 ||
               std::strcmp(argv[i], "--heartbeat") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const double v = parse_pos_seconds(flag, argv[++i]);
      if (v < 0) return usage();
      if (std::strcmp(flag, "--lease-timeout") == 0) {
        g_lease_timeout = v;
        g_lease_timeout_set = true;
      } else {
        g_heartbeat = v;
        g_heartbeat_set = true;
      }
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      g_resume = true;
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      g_worker = true;
    } else if (std::strcmp(argv[i], "--require-sim") == 0) {
      g_require_sim = true;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 ||
               std::strcmp(argv[i], "--json") == 0 ||
               std::strcmp(argv[i], "--save-front") == 0 ||
               std::strcmp(argv[i], "--datasets") == 0 ||
               std::strcmp(argv[i], "--worker-id") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const std::string value = argv[++i];
      if (std::strcmp(flag, "--checkpoint") == 0) {
        g_checkpoint = value;
      } else if (std::strcmp(flag, "--json") == 0) {
        g_json = value;
      } else if (std::strcmp(flag, "--datasets") == 0) {
        g_datasets = value;
      } else if (std::strcmp(flag, "--worker-id") == 0) {
        g_worker_id = value;
      } else {
        g_save_front = value;
      }
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  const std::size_t n = args.size();
  try {
    reject_unused_flags(cmd);
    if (cmd == "list") return cmd_list();
    if (cmd == "metrics" && n >= 2) {
      require_dataset(args[1]);
      return cmd_metrics(args[1]);
    }
    if (cmd == "baseline" && n >= 2) {
      require_dataset(args[1]);
      return cmd_baseline(args[1]);
    }
    if ((cmd == "run" || cmd == "resume" || cmd == "train") && n >= 2) {
      require_dataset(args[1]);
      const int pop = n >= 3 ? parse_pos("population", args[2]) : 80;
      const int gens = n >= 4 ? parse_pos("generations", args[3]) : 200;
      const std::string out = n >= 5 ? args[4] : "";
      return cmd_run(args[1], pop, gens, out, cmd == "resume",
                     cmd == "train");
    }
    if (cmd == "campaign") {
      if (n >= 2 && args[1] == "status") {
        if (g_worker) {
          throw UsageError("campaign status does not take --worker");
        }
        return cmd_campaign_status();
      }
      if (g_worker) {
        if (n >= 2) {
          throw UsageError(
              "campaign --worker takes no population/generations (the grid "
              "comes from the tree's manifest)");
        }
        return cmd_campaign_worker();
      }
      const int pop = n >= 2 ? parse_pos("population", args[1]) : 80;
      const int gens = n >= 3 ? parse_pos("generations", args[2]) : 200;
      return cmd_campaign(pop, gens);
    }
    if (cmd == "serve" && n >= 2) {
      return cmd_serve(args[1]);
    }
    if (cmd == "classify" && n >= 3) {
      return cmd_classify(args[1],
                          std::vector<std::string>(args.begin() + 2,
                                                   args.end()));
    }
    if (cmd == "evaluate" && n >= 3) {
      require_dataset(args[2]);
      return cmd_evaluate(args[1], args[2]);
    }
    if (cmd == "export" && n >= 4) {
      require_dataset(args[2]);
      return cmd_export(args[1], args[2], args[3]);
    }
    if ((cmd == "export-rtl" || cmd == "verify-rtl") && n >= 2) {
      const std::string dataset = n >= 3 ? args[2] : "-";
      const std::string outdir =
          n >= 4 ? args[3]
                 : std::filesystem::path(args[1]).filename().string() +
                       "_rtl";
      return cmd_rtl(args[1], dataset, outdir, cmd == "verify-rtl");
    }
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Runtime failures (corrupt artifacts, I/O, ...) exit 1; only
    // UsageError above maps to the usage exit code 2.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "error: unknown exception\n";
    return 1;
  }
  return usage();
}
