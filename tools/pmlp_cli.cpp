// pmlp — command-line front end for the printed-MLP GA-AxC framework.
//
//   pmlp list                         datasets and Table I topologies
//   pmlp metrics <dataset>            dataset diagnostics (priors, Fisher)
//   pmlp baseline <dataset>           exact bespoke baseline cost/accuracy
//   pmlp run <dataset> [pop] [gens] [model-out]
//                                     staged FlowEngine pipeline with
//                                     per-stage progress; saves the Table II
//                                     pick as a .model file, prints front
//   pmlp resume <dataset> [pop] [gens] [model-out]
//                                     like run, but requires an existing
//                                     --checkpoint DIR and continues from
//                                     whatever stages are already on disk
//   pmlp train <dataset> [pop] [gens] [model-out]
//                                     legacy alias of run (no progress lines)
//   pmlp evaluate <model> <dataset>   re-score a saved model (acc, area,
//                                     power, feasibility zone @1V/0.6V)
//   pmlp export <model> <dataset> <out-prefix>
//                                     Verilog DUT + self-checking testbench
//
// Global options:
//   --threads N                       flow-wide parallelism: GA fitness
//                                     evaluation and hardware analysis
//                                     (0 = all hardware threads, the
//                                     default; 1 = serial; bit-identical
//                                     results for any setting)
//   --cache N                         genome memo-cache capacity of the
//                                     evaluation engine (entries; 0 = off;
//                                     default 4096; bit-identical results
//                                     for any setting)
//   --checkpoint DIR                  persist every stage artifact under
//                                     DIR; a later run/resume with the same
//                                     dataset and config continues from the
//                                     completed stages bit-identically
//   --json FILE                       machine-readable FlowResult report
//                                     (stages, counters, every evaluated
//                                     point, the pick); "-" = stdout
//   --save-front DIR                  dump every true-Pareto model into DIR
//                                     (front_NNN.model) plus an index.tsv
//                                     with accuracy/area/power per design
//
// Datasets are the synthetic paper suite; swap in real UCI files by loading
// through pmlp::datasets::load_uci in your own driver.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/datasets/metrics.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"

namespace {

using namespace pmlp;

int cmd_list() {
  std::cout << "dataset        topology   samples  classes  baseline-acc "
               "(paper)\n";
  for (const auto& row : mlp::paper_table1()) {
    const auto spec = core::find_paper_spec(row.dataset);
    std::cout << row.dataset;
    for (std::size_t i = row.dataset.size(); i < 15; ++i) std::cout << ' ';
    std::cout << row.topology.to_string() << "   " << spec.n_samples
              << "     " << spec.n_classes << "        " << row.accuracy
              << "\n";
  }
  return 0;
}

int cmd_metrics(const std::string& dataset) {
  const auto d = core::load_paper_dataset(dataset);
  const auto m = datasets::compute_metrics(d);
  std::cout << dataset << ": " << d.size() << " samples, " << d.n_features
            << " features, " << d.n_classes << " classes\n";
  std::cout << "class priors:";
  for (double p : m.class_priors) std::cout << ' ' << p;
  std::cout << "\nnearest-centroid accuracy: " << m.nearest_centroid_accuracy
            << "\nper-feature Fisher scores:";
  for (double f : m.fisher_scores) std::cout << ' ' << f;
  std::cout << "\ntop-3 feature signal share: " << m.top3_signal_share
            << "\n";
  return 0;
}

int g_threads = 0;             // --threads: 0 = all hardware threads
int g_cache = -1;              // --cache: -1 = keep the ProblemConfig default
std::string g_checkpoint;      // --checkpoint DIR
std::string g_json;            // --json FILE ("-" = stdout)
std::string g_save_front;      // --save-front DIR

core::FlowConfig default_flow(int pop, int gens) {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 150;
  cfg.trainer.ga.population = pop;
  cfg.trainer.ga.generations = gens;
  cfg.trainer.n_threads = g_threads;
  if (g_cache >= 0) cfg.trainer.problem.eval_cache_capacity = g_cache;
  return cfg;
}

int cmd_baseline(const std::string& dataset) {
  const auto& row = mlp::paper_row(dataset);
  core::FlowEngine engine(core::load_paper_dataset(dataset), row.topology,
                          default_flow(8, 1));
  const auto artifacts = engine.baseline_artifacts();
  std::cout << dataset << " exact bespoke baseline [2]:\n"
            << "  accuracy  " << artifacts.baseline_test_accuracy
            << " (paper " << row.accuracy << ")\n"
            << "  area      " << artifacts.baseline_cost.area_cm2()
            << " cm2 (paper " << row.area_cm2 << ")\n"
            << "  power     " << artifacts.baseline_cost.power_mw()
            << " mW (paper " << row.power_mw << ")\n";
  return 0;
}

void save_front(const core::FlowResult& result, const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream index(std::filesystem::path(dir) / "index.tsv");
  if (!index) {
    throw std::runtime_error("cannot write " + dir + "/index.tsv");
  }
  index << "file\ttest_accuracy\tarea_cm2\tpower_mw\tfunctional_match\n";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    const auto& p = result.front[i];
    char name[32];
    std::snprintf(name, sizeof name, "front_%03zu.model", i);
    core::save_model_file(p.model,
                          (std::filesystem::path(dir) / name).string());
    index << name << '\t' << p.test_accuracy << '\t' << p.cost.area_cm2()
          << '\t' << p.cost.power_mw() << '\t'
          << (p.functional_match ? 1 : 0) << '\n';
  }
  std::cerr << "saved " << result.front.size() << " front designs + index to "
            << dir << "\n";
}

int cmd_run(const std::string& dataset, int pop, int gens,
            const std::string& model_out, bool is_resume, bool legacy) {
  const auto& row = mlp::paper_row(dataset);
  if (is_resume) {
    if (g_checkpoint.empty()) {
      std::cerr << "error: resume requires --checkpoint DIR\n";
      return 2;
    }
    if (!std::filesystem::exists(std::filesystem::path(g_checkpoint) /
                                 "meta.txt")) {
      std::cerr << "error: no checkpoint found in " << g_checkpoint << "\n";
      return 2;
    }
  }
  std::cerr << "training " << dataset << " " << row.topology.to_string()
            << " with NSGA-II " << pop << "x" << gens << "...\n";

  core::FlowEngine engine(core::load_paper_dataset(dataset), row.topology,
                          default_flow(pop, gens));
  if (!g_checkpoint.empty()) engine.set_checkpoint_dir(g_checkpoint);
  if (!legacy) {
    engine.set_progress([](const core::StageReport& r) {
      std::cerr << "  stage " << core::flow_stage_name(r.stage) << ": "
                << r.wall_seconds << " s, " << r.items << " items"
                << (r.reused ? " (reused)" : "") << "\n";
    });
  }
  const auto result = engine.run();

  const bool json_stdout = g_json == "-";
  if (!json_stdout) {
    std::cout << "baseline: acc " << result.baseline.baseline_test_accuracy
              << ", " << result.baseline.baseline_cost.area_cm2() << " cm2, "
              << result.baseline.baseline_cost.power_mw() << " mW\n";
    std::cout << "GA engine: " << result.training.evaluations << " evals in "
              << result.training.wall_seconds << " s ("
              << result.training.evals_per_second
              << " evals/s, cache hit rate "
              << result.training.cache_hit_rate << ")\n";
    if (result.refine.trials > 0) {
      std::cout << "refine engine: " << result.refine.trials << " trials on "
                << result.refine.points << " points (early-abort rate "
                << result.refine.early_abort_rate() << "), "
                << result.refine.bits_cleared << " bits cleared, "
                << result.refine.biases_simplified << " biases simplified\n";
    }
    std::cout << "true Pareto front (" << result.front.size()
              << " points):\n";
    std::cout << "  acc       area-cm2   power-mW   verified\n";
    for (const auto& p : result.front) {
      std::cout << "  " << p.test_accuracy << "   " << p.cost.area_cm2()
                << "   " << p.cost.power_mw() << "   "
                << (p.functional_match ? "yes" : "NO") << "\n";
    }
  }
  if (!g_json.empty()) {
    if (json_stdout) {
      core::write_flow_report_json(result, dataset, row.topology, std::cout);
    } else {
      std::ofstream os(g_json);
      if (!os) {
        std::cerr << "error: cannot write " << g_json << "\n";
        return 1;
      }
      core::write_flow_report_json(result, dataset, row.topology, os);
      std::cerr << "wrote " << g_json << "\n";
    }
  }
  if (!g_save_front.empty()) save_front(result, g_save_front);

  if (!result.best) {
    if (!json_stdout) {
      std::cout << "no design within 5% loss at this budget; raise gens\n";
    }
    return 1;
  }
  if (!json_stdout) {
    std::cout << "pick (min area within 5% loss): acc "
              << result.best->test_accuracy << ", "
              << result.best->cost.area_cm2() << " cm2 ("
              << result.area_reduction << "x), "
              << result.best->cost.power_mw() << " mW ("
              << result.power_reduction << "x)\n";
  }
  if (!model_out.empty()) {
    core::save_model_file(result.best->model, model_out);
    if (!json_stdout) std::cout << "saved " << model_out << "\n";
  }
  return 0;
}

/// Rebuild evaluation data exactly as the training flow splits it.
datasets::QuantizedDataset test_split(const std::string& dataset,
                                      const core::FlowConfig& cfg) {
  core::FlowEngine engine(core::load_paper_dataset(dataset),
                          core::paper_topology(dataset), cfg);
  return engine.split().test;
}

int cmd_evaluate(const std::string& model_path, const std::string& dataset) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));
  const double acc = core::accuracy(model, test);

  const auto circuit =
      netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto cost = netlist::optimize(circuit.nl).cost(lib);
  const auto cost06 =
      netlist::optimize(circuit.nl).cost(lib.at_voltage(0.6));

  std::cout << model_path << " on " << dataset << ":\n"
            << "  accuracy " << acc << "\n"
            << "  area     " << cost.area_cm2() << " cm2\n"
            << "  power    " << cost.power_mw() << " mW @1.0V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost.area_cm2(), cost.power_mw()))
            << "), " << cost06.power_mw() << " mW @0.6V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost06.area_cm2(), cost06.power_mw()))
            << ")\n";
  return 0;
}

int cmd_export(const std::string& model_path, const std::string& dataset,
               const std::string& prefix) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));

  auto circuit = netlist::build_bespoke_mlp(model.to_bespoke_desc(prefix));
  const auto golden =
      netlist::build_bespoke_mlp(model.to_bespoke_desc(prefix));
  circuit.nl = netlist::optimize(circuit.nl);
  {
    std::ofstream os(prefix + ".v");
    netlist::emit_verilog(circuit.nl, prefix, os);
  }
  std::vector<std::uint8_t> codes;
  const std::size_t n_vec = std::min<std::size_t>(test.size(), 64);
  for (std::size_t i = 0; i < n_vec; ++i) {
    const auto r = test.row(i);
    codes.insert(codes.end(), r.begin(), r.end());
  }
  netlist::TestbenchOptions tb;
  tb.dut_name = prefix;
  {
    std::ofstream os(prefix + "_tb.v");
    netlist::emit_testbench(golden, test.n_features, codes, tb, os);
  }
  std::cout << "wrote " << prefix << ".v (" << circuit.nl.gates().size()
            << " cells) and " << prefix << "_tb.v (" << n_vec
            << " vectors)\n";
  return 0;
}

int usage() {
  std::cerr << "usage: pmlp [--threads N] [--cache N] [--checkpoint DIR] "
               "[--json FILE] [--save-front DIR] "
               "<list|metrics|baseline|run|resume|train|evaluate|export> "
               "[args...]\n(see the header of tools/pmlp_cli.cpp)\n";
  return 2;
}

/// Parse a non-negative int option value; returns -1 on error (overflow
/// included, so huge values can't silently wrap to 0 threads / cache off).
int parse_nonneg(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0 || errno == ERANGE ||
      v > std::numeric_limits<int>::max()) {
    std::cerr << "error: " << flag
              << " expects a non-negative int, got '" << value << "'\n";
    return -1;
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "--cache") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const int v = parse_nonneg(flag, argv[++i]);
      if (v < 0) return usage();
      (std::strcmp(flag, "--threads") == 0 ? g_threads : g_cache) = v;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 ||
               std::strcmp(argv[i], "--json") == 0 ||
               std::strcmp(argv[i], "--save-front") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const std::string value = argv[++i];
      if (std::strcmp(flag, "--checkpoint") == 0) {
        g_checkpoint = value;
      } else if (std::strcmp(flag, "--json") == 0) {
        g_json = value;
      } else {
        g_save_front = value;
      }
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  const std::size_t n = args.size();
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "metrics" && n >= 2) return cmd_metrics(args[1]);
    if (cmd == "baseline" && n >= 2) return cmd_baseline(args[1]);
    if ((cmd == "run" || cmd == "resume" || cmd == "train") && n >= 2) {
      const int pop = n >= 3 ? std::atoi(args[2].c_str()) : 80;
      const int gens = n >= 4 ? std::atoi(args[3].c_str()) : 200;
      const std::string out = n >= 5 ? args[4] : "";
      return cmd_run(args[1], pop, gens, out, cmd == "resume",
                     cmd == "train");
    }
    if (cmd == "evaluate" && n >= 3) return cmd_evaluate(args[1], args[2]);
    if (cmd == "export" && n >= 4)
      return cmd_export(args[1], args[2], args[3]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
