// pmlp — command-line front end for the printed-MLP GA-AxC framework.
//
//   pmlp list                         datasets and Table I topologies
//   pmlp metrics <dataset>            dataset diagnostics (priors, Fisher)
//   pmlp baseline <dataset>           exact bespoke baseline cost/accuracy
//   pmlp train <dataset> [pop] [gens] [model-out]
//                                     full Fig. 2 flow; saves the Table II
//                                     pick as a .model file, prints front
//   pmlp evaluate <model> <dataset>   re-score a saved model (acc, area,
//                                     power, feasibility zone @1V/0.6V)
//   pmlp export <model> <dataset> <out-prefix>
//                                     Verilog DUT + self-checking testbench
//
// Global options:
//   --threads N                       parallel GA fitness evaluation
//                                     (0 = all hardware threads, the
//                                     default; 1 = serial; bit-identical
//                                     results for any setting)
//   --cache N                         genome memo-cache capacity of the
//                                     evaluation engine (entries; 0 = off;
//                                     default 4096; bit-identical results
//                                     for any setting)
//
// Datasets are the synthetic paper suite; swap in real UCI files by loading
// through pmlp::datasets::load_uci in your own driver.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "pmlp/core/flow.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/metrics.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"

namespace {

using namespace pmlp;

datasets::SyntheticSpec find_spec(const std::string& name) {
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) return s;
  }
  throw std::runtime_error("unknown dataset '" + name +
                           "'; try: pmlp list");
}

int cmd_list() {
  std::cout << "dataset        topology   samples  classes  baseline-acc "
               "(paper)\n";
  for (const auto& row : mlp::paper_table1()) {
    const auto spec = find_spec(row.dataset);
    std::cout << row.dataset;
    for (std::size_t i = row.dataset.size(); i < 15; ++i) std::cout << ' ';
    std::cout << row.topology.to_string() << "   " << spec.n_samples
              << "     " << spec.n_classes << "        " << row.accuracy
              << "\n";
  }
  return 0;
}

int cmd_metrics(const std::string& dataset) {
  const auto d = datasets::generate(find_spec(dataset));
  const auto m = datasets::compute_metrics(d);
  std::cout << dataset << ": " << d.size() << " samples, " << d.n_features
            << " features, " << d.n_classes << " classes\n";
  std::cout << "class priors:";
  for (double p : m.class_priors) std::cout << ' ' << p;
  std::cout << "\nnearest-centroid accuracy: " << m.nearest_centroid_accuracy
            << "\nper-feature Fisher scores:";
  for (double f : m.fisher_scores) std::cout << ' ' << f;
  std::cout << "\ntop-3 feature signal share: " << m.top3_signal_share
            << "\n";
  return 0;
}

int g_threads = 0;  // --threads: 0 = all hardware threads
int g_cache = -1;   // --cache: -1 = keep the ProblemConfig default

core::FlowConfig default_flow(int pop, int gens) {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 150;
  cfg.trainer.ga.population = pop;
  cfg.trainer.ga.generations = gens;
  cfg.trainer.n_threads = g_threads;
  if (g_cache >= 0) cfg.trainer.problem.eval_cache_capacity = g_cache;
  return cfg;
}

int cmd_baseline(const std::string& dataset) {
  const auto& row = mlp::paper_row(dataset);
  const auto artifacts = core::build_baseline(
      datasets::generate(find_spec(dataset)), row.topology,
      default_flow(8, 1));
  std::cout << dataset << " exact bespoke baseline [2]:\n"
            << "  accuracy  " << artifacts.baseline_test_accuracy
            << " (paper " << row.accuracy << ")\n"
            << "  area      " << artifacts.baseline_cost.area_cm2()
            << " cm2 (paper " << row.area_cm2 << ")\n"
            << "  power     " << artifacts.baseline_cost.power_mw()
            << " mW (paper " << row.power_mw << ")\n";
  return 0;
}

int cmd_train(const std::string& dataset, int pop, int gens,
              const std::string& model_out) {
  const auto& row = mlp::paper_row(dataset);
  std::cerr << "training " << dataset << " " << row.topology.to_string()
            << " with NSGA-II " << pop << "x" << gens << "...\n";
  const auto result = core::run_flow(datasets::generate(find_spec(dataset)),
                                     row.topology, default_flow(pop, gens));
  std::cout << "baseline: acc " << result.baseline.baseline_test_accuracy
            << ", " << result.baseline.baseline_cost.area_cm2() << " cm2, "
            << result.baseline.baseline_cost.power_mw() << " mW\n";
  std::cout << "GA engine: " << result.training.evaluations << " evals in "
            << result.training.wall_seconds << " s ("
            << result.training.evals_per_second
            << " evals/s, cache hit rate "
            << result.training.cache_hit_rate << ")\n";
  std::cout << "true Pareto front (" << result.front.size() << " points):\n";
  std::cout << "  acc       area-cm2   power-mW   verified\n";
  for (const auto& p : result.front) {
    std::cout << "  " << p.test_accuracy << "   " << p.cost.area_cm2()
              << "   " << p.cost.power_mw() << "   "
              << (p.functional_match ? "yes" : "NO") << "\n";
  }
  if (!result.best) {
    std::cout << "no design within 5% loss at this budget; raise gens\n";
    return 1;
  }
  std::cout << "pick (min area within 5% loss): acc "
            << result.best->test_accuracy << ", "
            << result.best->cost.area_cm2() << " cm2 ("
            << result.area_reduction << "x), "
            << result.best->cost.power_mw() << " mW ("
            << result.power_reduction << "x)\n";
  if (!model_out.empty()) {
    core::save_model_file(result.best->model, model_out);
    std::cout << "saved " << model_out << "\n";
  }
  return 0;
}

/// Rebuild evaluation data exactly as the training flow splits it.
datasets::QuantizedDataset test_split(const std::string& dataset,
                                      const core::FlowConfig& cfg) {
  const auto data = datasets::generate(find_spec(dataset));
  auto split =
      datasets::stratified_split(data, cfg.train_fraction, cfg.split_seed);
  return datasets::quantize_inputs(split.test, cfg.trainer.bits.input_bits);
}

int cmd_evaluate(const std::string& model_path, const std::string& dataset) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));
  const double acc = core::accuracy(model, test);

  const auto circuit =
      netlist::build_bespoke_mlp(model.to_bespoke_desc("m"));
  const auto& lib = hwmodel::CellLibrary::egfet_1v();
  const auto cost = netlist::optimize(circuit.nl).cost(lib);
  const auto cost06 =
      netlist::optimize(circuit.nl).cost(lib.at_voltage(0.6));

  std::cout << model_path << " on " << dataset << ":\n"
            << "  accuracy " << acc << "\n"
            << "  area     " << cost.area_cm2() << " cm2\n"
            << "  power    " << cost.power_mw() << " mW @1.0V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost.area_cm2(), cost.power_mw()))
            << "), " << cost06.power_mw() << " mW @0.6V ("
            << hwmodel::zone_name(hwmodel::classify_feasibility(
                   cost06.area_cm2(), cost06.power_mw()))
            << ")\n";
  return 0;
}

int cmd_export(const std::string& model_path, const std::string& dataset,
               const std::string& prefix) {
  const auto model = core::load_model_file(model_path);
  const auto test = test_split(dataset, default_flow(8, 1));

  auto circuit = netlist::build_bespoke_mlp(model.to_bespoke_desc(prefix));
  const auto golden =
      netlist::build_bespoke_mlp(model.to_bespoke_desc(prefix));
  circuit.nl = netlist::optimize(circuit.nl);
  {
    std::ofstream os(prefix + ".v");
    netlist::emit_verilog(circuit.nl, prefix, os);
  }
  std::vector<std::uint8_t> codes;
  const std::size_t n_vec = std::min<std::size_t>(test.size(), 64);
  for (std::size_t i = 0; i < n_vec; ++i) {
    const auto r = test.row(i);
    codes.insert(codes.end(), r.begin(), r.end());
  }
  netlist::TestbenchOptions tb;
  tb.dut_name = prefix;
  {
    std::ofstream os(prefix + "_tb.v");
    netlist::emit_testbench(golden, test.n_features, codes, tb, os);
  }
  std::cout << "wrote " << prefix << ".v (" << circuit.nl.gates().size()
            << " cells) and " << prefix << "_tb.v (" << n_vec
            << " vectors)\n";
  return 0;
}

int usage() {
  std::cerr << "usage: pmlp [--threads N] [--cache N] "
               "<list|metrics|baseline|train|evaluate|export> "
               "[args...]\n(see the header of tools/pmlp_cli.cpp)\n";
  return 2;
}

/// Parse a non-negative int option value; returns -1 on error (overflow
/// included, so huge values can't silently wrap to 0 threads / cache off).
int parse_nonneg(const char* flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < 0 || errno == ERANGE ||
      v > std::numeric_limits<int>::max()) {
    std::cerr << "error: " << flag
              << " expects a non-negative int, got '" << value << "'\n";
    return -1;
  }
  return static_cast<int>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 ||
        std::strcmp(argv[i], "--cache") == 0) {
      const char* flag = argv[i];
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        return usage();
      }
      const int v = parse_nonneg(flag, argv[++i]);
      if (v < 0) return usage();
      (std::strcmp(flag, "--threads") == 0 ? g_threads : g_cache) = v;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  const std::size_t n = args.size();
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "metrics" && n >= 2) return cmd_metrics(args[1]);
    if (cmd == "baseline" && n >= 2) return cmd_baseline(args[1]);
    if (cmd == "train" && n >= 2) {
      const int pop = n >= 3 ? std::atoi(args[2].c_str()) : 80;
      const int gens = n >= 4 ? std::atoi(args[3].c_str()) : 200;
      const std::string out = n >= 5 ? args[4] : "";
      return cmd_train(args[1], pop, gens, out);
    }
    if (cmd == "evaluate" && n >= 3) return cmd_evaluate(args[1], args[2]);
    if (cmd == "export" && n >= 4)
      return cmd_export(args[1], args[2], args[3]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
