#!/usr/bin/env bash
# Run the Table III runtime benchmark and emit BENCH_table3.json so PRs can
# track a perf trajectory. Runs the benchmark twice — serial (PMLP_THREADS=1)
# and parallel (PMLP_THREADS=0, i.e. all hardware threads) — and records
# per-dataset trainer seconds, the per-stage CampaignRunner wall times
# (split, backprop, baseline, GA, refine, hardware analysis, select), the
# shared-pool campaign speedup (the five Fig. 2 flows scheduled concurrently
# over ONE worker pool) and the intra-run GA pool speedup.
#
# Each section records the thread count the bench ACTUALLY used (parsed from
# its ThreadsUsed/Campaign output, not os.cpu_count()), and the script fails
# loudly if the bench ignored PMLP_THREADS — so every recorded speedup stays
# attributable to a known serial/parallel configuration.
#
# Also runs the serving benchmark (bench_serve: batched FrontServer vs
# one-thread-per-request) and emits BENCH_serve.json with p50/p99/QPS per
# architecture, again recording the thread count the server ACTUALLY used
# and failing loudly if PMLP_THREADS was ignored.
#
# Usage: tools/run_bench.sh [build-dir] [out.json] [serve-out.json]
# Scale knobs (forwarded to the bench): PMLP_POP, PMLP_GENS, PMLP_EPOCHS,
# PMLP_SC_SAMPLES, PMLP_SERVE_CLIENTS, PMLP_SERVE_REQS. Defaults below keep
# a CI run to a few minutes.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_table3.json}"
SERVE_OUT="${3:-BENCH_serve.json}"
BENCH="$BUILD_DIR/bench/bench_table3_runtime"

if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

export PMLP_POP="${PMLP_POP:-24}"
export PMLP_GENS="${PMLP_GENS:-10}"
export PMLP_EPOCHS="${PMLP_EPOCHS:-60}"

# Prints full-precision "Timing name grad_s ga_s gaaxc_s" dataset rows (the
# human-readable table rounds to 2 decimals, which recorded sub-10ms stages
# as 0.0 — parse the machine rows only), one final "THROUGHPUT evals_per_s
# total_evals cache_hit_rate" row, per-stage "STAGE name seconds" rows, a
# "HWCAND n" row, a "REFINE trials aborts bits biases" row, a "BACKPROP
# naive_s engine_s samples_per_s isa block speedup" row (TrainEngine vs
# naive oracle), a "THREADS n" row (the intra-run knob the bench resolved)
# and a "CAMPAIGN flows pool_threads wall stage_wall flows_per_s" row, with
# the paper's parenthesized reference minutes stripped.
run_once() {
  PMLP_THREADS="$1" "$BENCH" |
    sed 's/([^)]*)//g' |
    awk '$1 == "Timing" \
         {printf "ROW %s %s %s %s\n", $2, $3, $4, $5}
         $1 == "Throughput:" \
         {printf "THROUGHPUT %s %s %s\n", $2, $5, $11}
         $1 == "BackpropStage" \
         {printf "BACKPROP %s %s %s %s %s %s\n", $3, $5, $7, $9, $11, $13}
         $1 == "StageWall" \
         {printf "STAGE %s %s\n", $2, $3}
         $1 == "HwCandidates" \
         {printf "HWCAND %s\n", $2}
         $1 == "RefineStats" \
         {printf "REFINE %s %s %s %s\n", $3, $5, $7, $9}
         $1 == "ThreadsUsed" \
         {printf "THREADS %s\n", $2}
         $1 == "SimdDispatch" \
         {printf "SIMD %s %s\n", $2, $3}
         $1 == "Campaign" \
         {printf "CAMPAIGN %s %s %s %s %s\n", $3, $5, $7, $9, $11}'
}

echo "running bench_table3_runtime serial (PMLP_THREADS=1)..." >&2
SERIAL=$(run_once 1)
echo "running bench_table3_runtime parallel (PMLP_THREADS=0)..." >&2
PARALLEL=$(run_once 0)

python3 - "$OUT" <<PY
import json, os, sys

def parse(block):
    out = {"rows": {}, "perf": {}, "stages": {}, "hw_cand": 0, "refine": {},
           "threads": None, "campaign": {}, "simd_isa": None, "eval_block": 0,
           "backprop": {}}
    for line in block.strip().splitlines():
        fields = line.split()
        if fields[0] == "THROUGHPUT":
            out["perf"] = {"evals_per_s": float(fields[1]),
                           "total_evals": int(fields[2]),
                           "cache_hit_rate": float(fields[3])}
        elif fields[0] == "STAGE":
            out["stages"][fields[1]] = float(fields[2])
        elif fields[0] == "HWCAND":
            out["hw_cand"] = int(fields[1])
        elif fields[0] == "REFINE":
            out["refine"] = {"trials": int(fields[1]),
                             "early_aborts": int(fields[2]),
                             "bits_cleared": int(fields[3]),
                             "biases_simplified": int(fields[4])}
        elif fields[0] == "BACKPROP":
            out["backprop"] = {"naive_s": float(fields[1]),
                               "engine_s": float(fields[2]),
                               "samples_per_s": float(fields[3]),
                               "simd_isa": fields[4],
                               "block": int(fields[5]),
                               "speedup": float(fields[6])}
        elif fields[0] == "THREADS":
            out["threads"] = int(fields[1])
        elif fields[0] == "SIMD":
            out["simd_isa"] = fields[1]
            out["eval_block"] = int(fields[2])
        elif fields[0] == "CAMPAIGN":
            out["campaign"] = {"flows": int(fields[1]),
                               "pool_threads": int(fields[2]),
                               "wall_s": float(fields[3]),
                               "stage_wall_s": float(fields[4]),
                               "flows_per_s": float(fields[5])}
        elif fields[0] == "ROW":
            _, name, grad, ga, axc = fields
            out["rows"][name] = {"grad_s": float(grad), "ga_s": float(ga),
                                 "gaaxc_s": float(axc)}
    return out

serial = parse("""$SERIAL""")
parallel = parse("""$PARALLEL""")

# Attributability guard: the serial section must really have run on one
# worker, and both sections must report what they used. A bench that
# ignores PMLP_THREADS makes every speedup below meaningless.
for section, cfg in (("serial", serial), ("parallel", parallel)):
    if cfg["threads"] is None or not cfg["campaign"]:
        sys.exit(f"error: {section} bench output is missing its "
                 "ThreadsUsed/Campaign rows — PMLP_THREADS not recorded")
    if cfg["simd_isa"] is None:
        sys.exit(f"error: {section} bench output is missing its SimdDispatch "
                 "row — kernel ISA not recorded")
    if not cfg["backprop"]:
        sys.exit(f"error: {section} bench output is missing its "
                 "BackpropStage row — train-engine speedup not recorded")
    if not cfg["rows"]:
        sys.exit(f"error: {section} bench output has no Timing rows")
if serial["threads"] != 1 or serial["campaign"]["pool_threads"] != 1:
    sys.exit("error: PMLP_THREADS=1 was ignored (serial section reports "
             f"{serial['threads']} intra-run / "
             f"{serial['campaign']['pool_threads']} pool threads)")
if os.cpu_count() > 1 and parallel["campaign"]["pool_threads"] <= 1:
    sys.exit("error: PMLP_THREADS=0 was ignored (parallel section still "
             "reports a 1-worker pool)")

# The accuracy-only GA reference runs outside the campaign with
# PMLP_THREADS-wide intra-run fitness evaluation; its serial/parallel
# ratio is the worker-pool effectiveness figure (key kept from earlier
# revisions). GA-AxC flows now run INSIDE the shared-pool campaign with
# their stages serial, so flow-level parallelism is measured by the
# campaign block instead.
ga_serial = sum(r["ga_s"] for r in serial["rows"].values())
ga_parallel = sum(r["ga_s"] for r in parallel["rows"].values())
camp_serial = serial["campaign"]["wall_s"]
camp_parallel = parallel["campaign"]["wall_s"]
doc = {
    "bench": "table3_runtime",
    "hardware_threads": os.cpu_count(),
    # Thread counts each section ACTUALLY used (bench-reported).
    "threads": {"serial": serial["threads"], "parallel": parallel["threads"],
                "campaign_pool": {
                    "serial": serial["campaign"]["pool_threads"],
                    "parallel": parallel["campaign"]["pool_threads"]}},
    "scale": {k: int(os.environ[k])
              for k in ("PMLP_POP", "PMLP_GENS", "PMLP_EPOCHS")},
    "serial": serial["rows"],
    "parallel": parallel["rows"],
    "ga_total_serial_s": round(ga_serial, 3),
    "ga_total_parallel_s": round(ga_parallel, 3),
    "parallel_speedup": round(ga_serial / max(ga_parallel, 1e-9), 3),
    # The Table I suite as one shared-pool campaign: five flows scheduled
    # stage-by-stage over a single worker pool, vs the same flows on a
    # 1-worker pool (i.e. sequential). THE flow-level parallelism figure.
    "campaign": {
        "flows": parallel["campaign"]["flows"],
        "serial_wall_s": round(camp_serial, 3),
        "shared_pool_wall_s": round(camp_parallel, 3),
        "speedup": round(camp_serial / max(camp_parallel, 1e-9), 3),
        "flows_per_s": {
            "serial": round(serial["campaign"]["flows_per_s"], 4),
            "shared_pool": round(parallel["campaign"]["flows_per_s"], 4)},
        "stage_wall_s": {
            "serial": round(serial["campaign"]["stage_wall_s"], 3),
            "shared_pool": round(parallel["campaign"]["stage_wall_s"], 3)},
    },
    # CampaignRunner per-stage wall times (seconds summed over the 5
    # datasets; stages run serially on their worker in both sections, so
    # these are compute walls — campaign overlap is reported above).
    "flow_stages": {"serial": serial["stages"],
                    "parallel": parallel["stages"]},
    # The right half of Fig. 2: netlist build + EGFET pricing + equivalence
    # check per candidate (serial-section compute wall).
    "hardware_analysis": {
        "candidates": serial["hw_cand"],
        "serial_s": round(serial["stages"].get("hardware", 0.0), 4),
    },
    # Post-GA greedy refinement through the incremental RefineEngine
    # (memoized forward state + delta updates + early-abort accuracy).
    "refine_stage": {
        "trials": serial["refine"].get("trials", 0),
        "early_abort_rate": round(
            serial["refine"].get("early_aborts", 0)
            / max(serial["refine"].get("trials", 0), 1), 4),
        "bits_cleared": serial["refine"].get("bits_cleared", 0),
        "biases_simplified": serial["refine"].get("biases_simplified", 0),
        "serial_s": round(serial["stages"].get("refine", 0.0), 4),
    },
    # Blocked SIMD TrainEngine vs the per-sample naive backprop oracle at
    # the same epochs budget (serial section, so the speedup is the pure
    # kernel/blocking win; flow_backprop_s is the serial campaign flows'
    # backprop-stage compute wall for the per-PR trajectory).
    "backprop_stage": {
        "naive_s": serial["backprop"]["naive_s"],
        "engine_s": serial["backprop"]["engine_s"],
        "speedup": round(serial["backprop"]["speedup"], 3),
        "train_samples_per_s": round(serial["backprop"]["samples_per_s"], 1),
        "simd_isa": serial["backprop"]["simd_isa"],
        "block": serial["backprop"]["block"],
        "flow_backprop_s": serial["stages"].get("backprop", 0.0),
        "parallel_engine_s": parallel["backprop"]["engine_s"],
    },
    # GA-AxC evaluation-engine throughput (compiled sparse inference +
    # genome memo cache); the per-PR perf trajectory figure. simd_isa and
    # eval_block record the kernel configuration the runtime dispatch picked
    # (bench-reported), so throughput stays comparable across machines; the
    # speedup is the serial-section parallel_for-free GA population path.
    "eval_throughput": {"serial": serial["perf"],
                        "parallel": parallel["perf"],
                        "simd_isa": serial["simd_isa"],
                        "eval_block": serial["eval_block"],
                        "parallel_speedup": round(
                            serial["perf"]["evals_per_s"]
                            and parallel["perf"]["evals_per_s"]
                            / serial["perf"]["evals_per_s"] or 0.0, 3)},
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY

echo "wrote $OUT" >&2

# -------------------------------------------------- distributed workers
# Crash-safe worker protocol throughput: drain one manifest-only checkpoint
# tree with 1 worker process and then with 2 (lease claiming, stage-granular
# round-robin), recording drain wall and flows/sec. Merged into the table3
# JSON as "campaign_workers" so the lease/claim overhead and the
# multi-process scaling ride the same perf trajectory as the shared-pool
# campaign numbers.
CLI="$BUILD_DIR/tools/pmlp_cli"
if [[ ! -x "$CLI" ]]; then
  echo "error: $CLI not built" >&2
  exit 1
fi
WORKER_GRID="--datasets BreastCancer,Cardio --seeds 2 --threads 1"
WORK_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pmlp_worker_bench.XXXXXX")
trap 'rm -rf "$WORK_DIR"' EXIT

echo "running campaign worker drain bench (1 vs 2 workers)..." >&2
# Coordinator pass writes the manifest (and doubles as a warmup).
"$CLI" $WORKER_GRID --checkpoint "$WORK_DIR/ref" \
  campaign "$PMLP_POP" "$PMLP_GENS" > /dev/null
FLOWS=$(grep -c '^flow ' "$WORK_DIR/ref/campaign.txt")

# drain_wall N: N fresh worker processes drain a manifest-only copy of the
# tree from scratch; prints the wall seconds of the whole drain.
drain_wall() {
  local n="$1"
  local tree="$WORK_DIR/tree_w$n"
  mkdir -p "$tree"
  cp "$WORK_DIR/ref/campaign.txt" "$tree/"
  local t0 t1 rc=0
  t0=$(date +%s.%N)
  local pids=()
  for i in $(seq "$n"); do
    "$CLI" --worker --worker-id "bench-w$i" --checkpoint "$tree" \
      campaign > /dev/null &
    pids+=("$!")
  done
  for pid in "${pids[@]}"; do
    wait "$pid" || rc=$?
  done
  t1=$(date +%s.%N)
  if [[ "$rc" -ne 0 ]]; then
    echo "error: $n-worker drain failed (rc=$rc)" >&2
    exit 1
  fi
  python3 -c "print(f'{$t1 - $t0:.4f}')"
}

WALL_W1=$(drain_wall 1)
WALL_W2=$(drain_wall 2)

python3 - "$OUT" "$FLOWS" "$WALL_W1" "$WALL_W2" <<'PY'
import json, sys
out = sys.argv[1]
flows, wall1, wall2 = int(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4])
with open(out) as f:
    doc = json.load(f)
doc["campaign_workers"] = {
    "flows": flows,
    "workers_1_wall_s": round(wall1, 3),
    "workers_2_wall_s": round(wall2, 3),
    "speedup": round(wall1 / max(wall2, 1e-9), 3),
    "flows_per_s": {"workers_1": round(flows / max(wall1, 1e-9), 4),
                    "workers_2": round(flows / max(wall2, 1e-9), 4)},
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps({"campaign_workers": doc["campaign_workers"]}, indent=2))
PY

echo "merged campaign_workers into $OUT" >&2

# ----------------------------------------------------------------- serving
SERVE_BENCH="$BUILD_DIR/bench/bench_serve"
if [[ ! -x "$SERVE_BENCH" ]]; then
  echo "error: $SERVE_BENCH not built" >&2
  exit 1
fi

echo "running bench_serve (PMLP_THREADS=1)..." >&2
SERVE=$(PMLP_THREADS=1 "$SERVE_BENCH")

python3 - "$SERVE_OUT" <<PY
import json, os, sys

threads = None
rows = {}
speedup = None
batch_fill = None
simd_isa = None
eval_block = 0
for line in """$SERVE""".strip().splitlines():
    fields = line.split()
    if fields[0] == "ThreadsUsed":
        threads = int(fields[1])
    elif fields[0] == "ServeBench":
        rows[fields[1]] = {"qps": float(fields[2]),
                           "p50_us": float(fields[3]),
                           "p99_us": float(fields[4])}
    elif fields[0] == "ServeSpeedup":
        speedup = float(fields[1])
    elif fields[0] == "ServeBatchFill":
        batch_fill = float(fields[1])
    elif fields[0] == "ServeSimd":
        simd_isa = fields[1]
        eval_block = int(fields[2])

# Attributability guard, same contract as the table3 sections: the bench
# must report the pool size it resolved, and PMLP_THREADS=1 must really
# have produced a 1-worker server.
if threads is None or "naive" not in rows or "served" not in rows:
    sys.exit("error: bench_serve output is missing its ThreadsUsed/"
             "ServeBench rows")
if simd_isa is None:
    sys.exit("error: bench_serve output is missing its ServeSimd row — "
             "kernel ISA not recorded")
if threads != 1:
    sys.exit(f"error: PMLP_THREADS=1 was ignored (server used {threads} "
             "workers)")

doc = {
    "bench": "serve",
    "hardware_threads": os.cpu_count(),
    "threads": threads,
    "clients": int(os.environ.get("PMLP_SERVE_CLIENTS", 4)),
    "requests_per_client": int(os.environ.get("PMLP_SERVE_REQS", 2000)),
    "naive_thread_per_request": rows["naive"],
    "batched_server": rows["served"],
    "qps_speedup": speedup,
    "batch_fill": batch_fill,
    "simd_isa": simd_isa,
    "eval_block": eval_block,
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY

echo "wrote $SERVE_OUT" >&2
