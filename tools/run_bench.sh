#!/usr/bin/env bash
# Run the Table III runtime benchmark and emit BENCH_table3.json so PRs can
# track a perf trajectory. Runs the benchmark twice — serial (PMLP_THREADS=1)
# and parallel (PMLP_THREADS=0, i.e. all hardware threads) — and records
# per-dataset trainer seconds, the per-stage FlowEngine wall times (split,
# backprop, baseline, GA, refine, hardware analysis, select), the
# hardware-analysis speedup, and the aggregate GA parallel speedup.
#
# Usage: tools/run_bench.sh [build-dir] [out.json]
# Scale knobs (forwarded to the bench): PMLP_POP, PMLP_GENS, PMLP_EPOCHS,
# PMLP_SC_SAMPLES. Defaults below keep a CI run to a few minutes.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_table3.json}"
BENCH="$BUILD_DIR/bench/bench_table3_runtime"

if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

export PMLP_POP="${PMLP_POP:-24}"
export PMLP_GENS="${PMLP_GENS:-10}"
export PMLP_EPOCHS="${PMLP_EPOCHS:-60}"

# Prints dataset rows as "name grad_s ga_s gaaxc_s", one final
# "THROUGHPUT evals_per_s total_evals cache_hit_rate" row, per-stage
# "STAGE name seconds" rows, a "HWCAND n" row and a "REFINE trials aborts
# bits biases" row, with the paper's parenthesized reference minutes
# stripped.
run_once() {
  PMLP_THREADS="$1" "$BENCH" |
    sed 's/([^)]*)//g' |
    awk '$1 ~ /^(BreastCancer|Cardio|Pendigits|RedWine|WhiteWine)$/ \
         {printf "%s %s %s %s\n", $1, $2, $3, $4}
         $1 == "Throughput:" \
         {printf "THROUGHPUT %s %s %s\n", $2, $5, $11}
         $1 == "StageWall" \
         {printf "STAGE %s %s\n", $2, $3}
         $1 == "HwCandidates" \
         {printf "HWCAND %s\n", $2}
         $1 == "RefineStats" \
         {printf "REFINE %s %s %s %s\n", $3, $5, $7, $9}'
}

echo "running bench_table3_runtime serial (PMLP_THREADS=1)..." >&2
SERIAL=$(run_once 1)
echo "running bench_table3_runtime parallel (PMLP_THREADS=0)..." >&2
PARALLEL=$(run_once 0)

python3 - "$OUT" <<PY
import json, os, sys

def parse(block):
    rows, perf, stages, hw_cand, refine = {}, {}, {}, 0, {}
    for line in block.strip().splitlines():
        fields = line.split()
        if fields[0] == "THROUGHPUT":
            perf = {"evals_per_s": float(fields[1]),
                    "total_evals": int(fields[2]),
                    "cache_hit_rate": float(fields[3])}
            continue
        if fields[0] == "STAGE":
            stages[fields[1]] = float(fields[2])
            continue
        if fields[0] == "HWCAND":
            hw_cand = int(fields[1])
            continue
        if fields[0] == "REFINE":
            refine = {"trials": int(fields[1]), "early_aborts": int(fields[2]),
                      "bits_cleared": int(fields[3]),
                      "biases_simplified": int(fields[4])}
            continue
        name, grad, ga, axc = fields
        rows[name] = {"grad_s": float(grad), "ga_s": float(ga),
                      "gaaxc_s": float(axc)}
    return rows, perf, stages, hw_cand, refine

serial, serial_perf, serial_stages, hw_cand, serial_refine = parse("""$SERIAL""")
parallel, parallel_perf, parallel_stages, _, _ = parse("""$PARALLEL""")
total_serial = sum(r["gaaxc_s"] + r["ga_s"] for r in serial.values())
total_parallel = sum(r["gaaxc_s"] + r["ga_s"] for r in parallel.values())
hw_serial = serial_stages.get("hardware", 0.0)
hw_parallel = parallel_stages.get("hardware", 0.0)
doc = {
    "bench": "table3_runtime",
    "hardware_threads": os.cpu_count(),
    "scale": {k: int(os.environ[k])
              for k in ("PMLP_POP", "PMLP_GENS", "PMLP_EPOCHS")},
    "serial": serial,
    "parallel": parallel,
    "ga_total_serial_s": round(total_serial, 3),
    "ga_total_parallel_s": round(total_parallel, 3),
    "parallel_speedup": round(total_serial / max(total_parallel, 1e-9), 3),
    # FlowEngine per-stage wall times (seconds summed over the 5 datasets)
    # for the serial and all-hardware-threads runs.
    "flow_stages": {"serial": serial_stages, "parallel": parallel_stages},
    # The right half of Fig. 2: netlist build + EGFET pricing + equivalence
    # check per candidate, fanned out over the worker pool.
    "hardware_analysis": {
        "candidates": hw_cand,
        "serial_s": round(hw_serial, 4),
        "parallel_s": round(hw_parallel, 4),
        "speedup": round(hw_serial / max(hw_parallel, 1e-9), 3),
    },
    # Post-GA greedy refinement through the incremental RefineEngine
    # (memoized forward state + delta updates + early-abort accuracy),
    # fanned out per Pareto point over the worker pool.
    "refine_stage": {
        "trials": serial_refine.get("trials", 0),
        "early_abort_rate": round(
            serial_refine.get("early_aborts", 0)
            / max(serial_refine.get("trials", 0), 1), 4),
        "bits_cleared": serial_refine.get("bits_cleared", 0),
        "biases_simplified": serial_refine.get("biases_simplified", 0),
        "serial_s": round(serial_stages.get("refine", 0.0), 4),
        "parallel_s": round(parallel_stages.get("refine", 0.0), 4),
        "speedup": round(serial_stages.get("refine", 0.0)
                         / max(parallel_stages.get("refine", 0.0), 1e-9), 3),
    },
    # GA-AxC evaluation-engine throughput (compiled sparse inference +
    # genome memo cache); the per-PR perf trajectory figure.
    "eval_throughput": {"serial": serial_perf, "parallel": parallel_perf},
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY

echo "wrote $OUT" >&2
