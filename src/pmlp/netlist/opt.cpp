#include "pmlp/netlist/opt.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

namespace pmlp::netlist {

namespace {

using hwmodel::CellType;

/// Nets reachable (backwards) from the primary outputs.
std::vector<char> live_nets(const Netlist& nl) {
  std::vector<char> live(static_cast<std::size_t>(nl.n_nets()), 0);
  for (const auto& [net, name] : nl.outputs()) {
    live[static_cast<std::size_t>(net)] = 1;
  }
  // Gates are in topological order, so one reverse sweep suffices.
  const auto& gates = nl.gates();
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    bool gate_live = false;
    for (NetId out : it->out) {
      if (out >= 0 && live[static_cast<std::size_t>(out)]) gate_live = true;
    }
    if (!gate_live) continue;
    for (NetId in : it->in) {
      if (in >= 0) live[static_cast<std::size_t>(in)] = 1;
    }
  }
  return live;
}

bool is_commutative(CellType t) {
  switch (t) {
    case CellType::kAnd2:
    case CellType::kOr2:
    case CellType::kNand2:
    case CellType::kNor2:
    case CellType::kXor2:
    case CellType::kXnor2:
    case CellType::kHalfAdder:
      return true;
    default:
      return false;
  }
}

/// Rebuild the netlist, dropping non-live gates and (optionally) merging
/// structural duplicates. Reconstruction goes through the public gate
/// constructors, so constant folding is re-applied for free. When `map_out`
/// is non-null it receives the old->new net map the rebuild applied.
Netlist replay(const Netlist& nl, bool drop_dead, bool cse, OptStats* stats,
               NetMap* map_out = nullptr) {
  const auto live =
      drop_dead ? live_nets(nl)
                : std::vector<char>(static_cast<std::size_t>(nl.n_nets()), 1);

  Netlist out;
  std::vector<NetId> net_map(static_cast<std::size_t>(nl.n_nets()), -1);
  net_map[static_cast<std::size_t>(nl.const0())] = out.const0();
  net_map[static_cast<std::size_t>(nl.const1())] = out.const1();
  for (const auto& [net, name] : nl.inputs()) {
    net_map[static_cast<std::size_t>(net)] = out.add_input(name);
  }

  // CSE table: (type, canonical inputs) -> outputs in the new netlist.
  using Key = std::tuple<CellType, NetId, NetId, NetId>;
  std::map<Key, std::pair<NetId, NetId>> seen;

  auto mapped = [&](NetId n) {
    if (n < 0) return n;
    const NetId m = net_map[static_cast<std::size_t>(n)];
    if (m < 0) throw std::logic_error("opt: use of unmapped net");
    return m;
  };

  for (const auto& g : nl.gates()) {
    bool gate_live = false;
    for (NetId o : g.out) {
      if (o >= 0 && live[static_cast<std::size_t>(o)]) gate_live = true;
    }
    if (!gate_live) {
      if (stats) stats->dead_gates_removed += 1;
      continue;
    }

    NetId a = mapped(g.in[0]);
    NetId b = mapped(g.in[1]);
    NetId c = mapped(g.in[2]);
    if (cse) {
      NetId ka = a, kb = b;
      if (is_commutative(g.type) && kb >= 0 && ka > kb) std::swap(ka, kb);
      // FA is commutative in all three operands; canonicalize by sorting.
      NetId kc = c;
      if (g.type == CellType::kFullAdder) {
        std::array<NetId, 3> ops{ka, kb, kc};
        std::sort(ops.begin(), ops.end());
        ka = ops[0];
        kb = ops[1];
        kc = ops[2];
      }
      const Key key{g.type, ka, kb, kc};
      const auto it = seen.find(key);
      if (it != seen.end()) {
        if (stats) stats->duplicate_gates_merged += 1;
        for (int o = 0; o < 2; ++o) {
          if (g.out[static_cast<std::size_t>(o)] >= 0) {
            net_map[static_cast<std::size_t>(g.out[static_cast<std::size_t>(o)])] =
                o == 0 ? it->second.first : it->second.second;
          }
        }
        continue;
      }
      // Fall through to construction; record afterwards.
      std::pair<NetId, NetId> built{-1, -1};
      switch (g.type) {
        case CellType::kNot: built.first = out.add_not(a); break;
        case CellType::kBuf: built.first = out.add_buf(a); break;
        case CellType::kAnd2: built.first = out.add_and(a, b); break;
        case CellType::kOr2: built.first = out.add_or(a, b); break;
        case CellType::kNand2: built.first = out.add_nand(a, b); break;
        case CellType::kNor2: built.first = out.add_nor(a, b); break;
        case CellType::kXor2: built.first = out.add_xor(a, b); break;
        case CellType::kXnor2: built.first = out.add_xnor(a, b); break;
        case CellType::kMux2: built.first = out.add_mux(a, b, c); break;
        case CellType::kDff: built.first = out.add_dff(a); break;
        case CellType::kHalfAdder: {
          const auto [s, co] = out.add_ha(a, b);
          built = {s, co};
          break;
        }
        case CellType::kFullAdder: {
          const auto [s, co] = out.add_fa(a, b, c);
          built = {s, co};
          break;
        }
        case CellType::kCount:
          throw std::logic_error("opt: bad gate");
      }
      seen.emplace(key, built);
      if (g.out[0] >= 0) net_map[static_cast<std::size_t>(g.out[0])] = built.first;
      if (g.out[1] >= 0) net_map[static_cast<std::size_t>(g.out[1])] = built.second;
      continue;
    }

    // No CSE: plain reconstruction.
    switch (g.type) {
      case CellType::kNot:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_not(a);
        break;
      case CellType::kBuf:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_buf(a);
        break;
      case CellType::kAnd2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_and(a, b);
        break;
      case CellType::kOr2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_or(a, b);
        break;
      case CellType::kNand2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_nand(a, b);
        break;
      case CellType::kNor2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_nor(a, b);
        break;
      case CellType::kXor2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_xor(a, b);
        break;
      case CellType::kXnor2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_xnor(a, b);
        break;
      case CellType::kMux2:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_mux(a, b, c);
        break;
      case CellType::kDff:
        net_map[static_cast<std::size_t>(g.out[0])] = out.add_dff(a);
        break;
      case CellType::kHalfAdder: {
        const auto [s, co] = out.add_ha(a, b);
        net_map[static_cast<std::size_t>(g.out[0])] = s;
        net_map[static_cast<std::size_t>(g.out[1])] = co;
        break;
      }
      case CellType::kFullAdder: {
        const auto [s, co] = out.add_fa(a, b, c);
        net_map[static_cast<std::size_t>(g.out[0])] = s;
        net_map[static_cast<std::size_t>(g.out[1])] = co;
        break;
      }
      case CellType::kCount:
        throw std::logic_error("opt: bad gate");
    }
  }

  for (const auto& [net, name] : nl.outputs()) {
    out.mark_output(mapped(net), name);
  }
  if (stats) stats->gates_remaining = static_cast<long>(out.gates().size());
  if (map_out) *map_out = std::move(net_map);
  return out;
}

/// Compose two replay maps: a net surviving the first pass maps through the
/// second; a net dropped by either pass stays dropped.
NetMap compose(const NetMap& first, const NetMap& second) {
  NetMap out(first.size(), -1);
  for (std::size_t n = 0; n < first.size(); ++n) {
    const NetId mid = first[n];
    if (mid >= 0) out[n] = second[static_cast<std::size_t>(mid)];
  }
  return out;
}

}  // namespace

Netlist eliminate_dead_gates(const Netlist& nl, OptStats* stats,
                             NetMap* net_map) {
  return replay(nl, /*drop_dead=*/true, /*cse=*/false, stats, net_map);
}

Netlist merge_duplicate_gates(const Netlist& nl, OptStats* stats,
                              NetMap* net_map) {
  return replay(nl, /*drop_dead=*/false, /*cse=*/true, stats, net_map);
}

Netlist optimize(const Netlist& nl, OptStats* stats, NetMap* net_map) {
  NetMap map1;
  Netlist merged = replay(nl, /*drop_dead=*/true, /*cse=*/true, stats,
                          net_map ? &map1 : nullptr);
  OptStats dead_stats;
  NetMap map2;
  Netlist out = replay(merged, /*drop_dead=*/true, /*cse=*/false, &dead_stats,
                       net_map ? &map2 : nullptr);
  if (stats) {
    stats->dead_gates_removed += dead_stats.dead_gates_removed;
    stats->gates_remaining = dead_stats.gates_remaining;
  }
  if (net_map) *net_map = compose(map1, map2);
  return out;
}

BespokeCircuit optimize(BespokeCircuit circuit, OptStats* stats) {
  NetMap map;
  Netlist optimized = optimize(circuit.nl, stats, &map);
  auto remap = [&](NetId n) {
    const NetId m = map[static_cast<std::size_t>(n)];
    if (m < 0) {
      // I/O nets survive every pass: inputs are re-added unconditionally
      // and output nets are live by definition.
      throw std::logic_error("optimize: I/O net dropped by remap");
    }
    return m;
  };
  for (Bus& bus : circuit.input_buses) {
    for (NetId& n : bus) n = remap(n);
  }
  for (NetId& n : circuit.class_index) n = remap(n);
  circuit.nl = std::move(optimized);
  return circuit;
}

}  // namespace pmlp::netlist
