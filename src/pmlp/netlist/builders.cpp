#include "pmlp/netlist/builders.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::netlist {

adder::NeuronAdderSpec to_adder_spec(const NeuronDesc& neuron, int input_bits) {
  adder::NeuronAdderSpec spec;
  spec.bias = neuron.bias;
  spec.summands.reserve(neuron.conns.size());
  for (const auto& c : neuron.conns) {
    adder::SummandSpec s;
    s.mask = c.mask;
    s.input_width = input_bits;
    s.shift = c.shift;
    s.sign = c.sign;
    spec.summands.push_back(s);
  }
  return spec;
}

std::vector<adder::NeuronAdderSpec> to_adder_specs(const BespokeMlpDesc& desc) {
  std::vector<adder::NeuronAdderSpec> specs;
  for (const auto& layer : desc.layers) {
    for (const auto& n : layer.neurons) {
      specs.push_back(to_adder_spec(n, layer.input_bits));
    }
  }
  return specs;
}

Bus build_column_adder(Netlist& nl, std::vector<std::vector<NetId>> columns) {
  const std::size_t width = columns.size();
  if (width == 0) return {};

  // 3:2 reduction until every column holds at most two bits. Taking bits
  // FIFO keeps the tree balanced enough for a combinational design.
  bool again = true;
  while (again) {
    again = false;
    std::vector<std::vector<NetId>> next(width);
    for (std::size_t c = 0; c < width; ++c) {
      auto& col = columns[c];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const auto [sum, carry] = nl.add_fa(col[i], col[i + 1], col[i + 2]);
        i += 3;
        next[c].push_back(sum);
        if (c + 1 < width) next[c + 1].push_back(carry);
        // A carry out of the MSB column drops (mod 2^W arithmetic).
      }
      for (; i < col.size(); ++i) next[c].push_back(col[i]);
    }
    columns = std::move(next);
    for (const auto& col : columns) {
      if (col.size() > 2) again = true;
    }
  }

  // Ripple carry-propagate over the remaining <=2 rows.
  Bus sum_bus(width, nl.const0());
  NetId carry = nl.const0();
  for (std::size_t c = 0; c < width; ++c) {
    const auto& col = columns[c];
    const NetId a = col.size() > 0 ? col[0] : nl.const0();
    const NetId b = col.size() > 1 ? col[1] : nl.const0();
    const auto [s, cout] = nl.add_fa(a, b, carry);
    sum_bus[c] = s;
    carry = cout;
  }
  return sum_bus;
}

Bus build_neuron(Netlist& nl, const NeuronDesc& neuron,
                 const std::vector<Bus>& inputs, int input_bits) {
  const adder::NeuronAdderSpec spec = to_adder_spec(neuron, input_bits);
  const adder::NeuronStructure st = adder::analyze_neuron(spec);
  const int W = st.acc_width;

  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(W));
  for (const auto& c : neuron.conns) {
    if (c.input_index < 0 ||
        c.input_index >= static_cast<int>(inputs.size())) {
      throw std::invalid_argument("build_neuron: bad input index");
    }
    const Bus& x = inputs[static_cast<std::size_t>(c.input_index)];
    const auto mask =
        c.mask & static_cast<std::uint32_t>(bitops::low_mask(input_bits));
    for (int p : bitops::set_bit_positions(mask)) {
      if (p >= static_cast<int>(x.size())) continue;
      const int col = p + c.shift;
      if (col >= W) continue;  // cannot happen given range analysis
      NetId bit = x[static_cast<std::size_t>(p)];
      if (c.sign < 0) bit = nl.add_not(bit);  // two's-complement inversion
      columns[static_cast<std::size_t>(col)].push_back(bit);
    }
  }
  // Folded design-time constant (bias + negation corrections).
  for (int cpos : bitops::set_bit_positions(st.folded_constant)) {
    columns[static_cast<std::size_t>(cpos)].push_back(nl.const1());
  }
  return build_column_adder(nl, std::move(columns));
}

Bus build_qrelu(Netlist& nl, const Bus& acc, int shift, int out_bits) {
  const int W = static_cast<int>(acc.size());
  if (W < 1) throw std::invalid_argument("build_qrelu: empty accumulator");
  const NetId sign = acc[static_cast<std::size_t>(W - 1)];
  const NetId non_neg = nl.add_not(sign);

  auto bit_at = [&](int i) -> NetId {
    return (i >= 0 && i < W) ? acc[static_cast<std::size_t>(i)] : nl.const0();
  };

  // Overflow when any magnitude bit above the output window is set
  // (sign bit excluded: a negative value clamps to 0 instead).
  Bus high_bits;
  for (int i = shift + out_bits; i <= W - 2; ++i) high_bits.push_back(bit_at(i));
  const NetId ovf = nl.add_or_tree(high_bits);

  Bus out(static_cast<std::size_t>(out_bits), nl.const0());
  for (int j = 0; j < out_bits; ++j) {
    const NetId windowed = nl.add_or(ovf, bit_at(shift + j));
    out[static_cast<std::size_t>(j)] = nl.add_and(non_neg, windowed);
  }
  return out;
}

NetId build_signed_gt(Netlist& nl, const Bus& a, const Bus& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("build_signed_gt: width mismatch");
  }
  const int W = static_cast<int>(a.size());
  // Signed compare == unsigned compare with inverted sign bits.
  auto bit = [&](const Bus& v, int i) -> NetId {
    const NetId n = v[static_cast<std::size_t>(i)];
    return i == W - 1 ? nl.add_not(n) : n;
  };
  NetId gt = nl.const0();
  NetId eq = nl.const1();
  for (int i = W - 1; i >= 0; --i) {
    const NetId ai = bit(a, i);
    const NetId bi = bit(b, i);
    const NetId ai_gt_bi = nl.add_and(ai, nl.add_not(bi));
    gt = nl.add_or(gt, nl.add_and(eq, ai_gt_bi));
    if (i > 0) eq = nl.add_and(eq, nl.add_xnor(ai, bi));
  }
  return gt;
}

Bus build_mux_bus(Netlist& nl, const Bus& a, const Bus& b, NetId sel) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("build_mux_bus: width mismatch");
  }
  Bus out(a.size(), nl.const0());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl.add_mux(a[i], b[i], sel);
  }
  return out;
}

namespace {

/// Sign-extend `v` to `width` bits (replicating the MSB net is free wiring).
Bus sign_extend(const Bus& v, std::size_t width, Netlist& nl) {
  Bus out = v;
  if (out.empty()) out.push_back(nl.const0());
  while (out.size() < width) out.push_back(out.back());
  return out;
}

Bus constant_bus(Netlist& nl, std::uint64_t value, std::size_t width) {
  Bus out(width, nl.const0());
  for (std::size_t i = 0; i < width; ++i) {
    if ((value >> i) & 1u) out[i] = nl.const1();
  }
  return out;
}

}  // namespace

Bus build_argmax(Netlist& nl, std::vector<Bus> accs) {
  if (accs.empty()) throw std::invalid_argument("build_argmax: no inputs");
  std::size_t W = 1;
  for (const auto& a : accs) W = std::max(W, a.size());
  for (auto& a : accs) a = sign_extend(a, W, nl);

  std::size_t index_bits = 1;
  while ((std::size_t{1} << index_bits) < accs.size()) ++index_bits;

  Bus best = accs[0];
  Bus best_idx = constant_bus(nl, 0, index_bits);
  for (std::size_t j = 1; j < accs.size(); ++j) {
    // Strictly-greater replacement keeps the first maximum, matching
    // std::max_element in the behavioural models.
    const NetId gt = build_signed_gt(nl, accs[j], best);
    best = build_mux_bus(nl, best, accs[j], gt);
    best_idx = build_mux_bus(nl, best_idx, constant_bus(nl, j, index_bits), gt);
  }
  return best_idx;
}

BespokeCircuit build_bespoke_mlp(const BespokeMlpDesc& desc) {
  if (desc.layers.empty()) {
    throw std::invalid_argument("build_bespoke_mlp: no layers");
  }
  BespokeCircuit ckt;

  // Primary inputs: one bus per feature at the first layer's width.
  const int in_features = desc.layers.front().n_in;
  const int in_bits = desc.layers.front().input_bits;
  ckt.input_buses.reserve(static_cast<std::size_t>(in_features));
  for (int i = 0; i < in_features; ++i) {
    ckt.input_buses.push_back(
        ckt.nl.add_input_bus("x" + std::to_string(i), in_bits));
  }

  std::vector<Bus> act = ckt.input_buses;
  std::vector<Bus> final_accs;
  for (std::size_t l = 0; l < desc.layers.size(); ++l) {
    const LayerDesc& layer = desc.layers[l];
    if (static_cast<int>(act.size()) != layer.n_in) {
      throw std::invalid_argument("build_bespoke_mlp: layer width mismatch");
    }
    std::vector<Bus> next;
    next.reserve(static_cast<std::size_t>(layer.n_out));
    for (const auto& neuron : layer.neurons) {
      Bus acc = build_neuron(ckt.nl, neuron, act, layer.input_bits);
      ckt.neuron_acc_widths.push_back(static_cast<int>(acc.size()));
      if (layer.qrelu) {
        next.push_back(
            build_qrelu(ckt.nl, acc, layer.qrelu_shift, layer.act_bits));
      } else {
        next.push_back(std::move(acc));
      }
    }
    act = std::move(next);
    if (l + 1 == desc.layers.size()) final_accs = act;
  }

  ckt.class_index = build_argmax(ckt.nl, final_accs);
  for (std::size_t i = 0; i < ckt.class_index.size(); ++i) {
    ckt.nl.mark_output(ckt.class_index[i], "class[" + std::to_string(i) + "]");
  }
  return ckt;
}

int BespokeCircuit::predict(std::span<const std::uint8_t> codes) const {
  if (codes.size() != input_buses.size()) {
    throw std::invalid_argument("BespokeCircuit::predict: bad feature count");
  }
  std::vector<char> values(static_cast<std::size_t>(nl.n_nets()), 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    drive_bus(values, input_buses[i], codes[i]);
  }
  nl.evaluate(values);
  return static_cast<int>(read_bus(values, class_index));
}

}  // namespace pmlp::netlist
