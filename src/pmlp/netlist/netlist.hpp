// Gate-level netlist graph: construction, functional simulation, cost
// reporting against an EGFET cell library. Together with builders.hpp this
// substitutes for the paper's synthesis + VCS/PrimeTime flow: circuits are
// built in SSA (topological) order, simulated cycle-free, and priced by
// cell counts (see DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pmlp/hwmodel/cells.hpp"

namespace pmlp::netlist {

using NetId = int;

/// One standard-cell instance. Unused input/output slots hold -1.
/// Conventions: FA inputs {a,b,cin} outputs {sum,carry}; HA inputs {a,b}
/// outputs {sum,carry}; MUX2 inputs {a,b,sel} output a when sel=0, b when
/// sel=1; all other gates use in[0..1] and out[0].
struct Gate {
  hwmodel::CellType type = hwmodel::CellType::kNot;
  std::array<NetId, 3> in{-1, -1, -1};
  std::array<NetId, 2> out{-1, -1};
};

/// A little-endian bus: nets[i] is bit i.
using Bus = std::vector<NetId>;

class Netlist {
 public:
  Netlist();

  /// Constant nets (always valid).
  [[nodiscard]] NetId const0() const { return 0; }
  [[nodiscard]] NetId const1() const { return 1; }

  /// Register a named primary input; returns its net.
  NetId add_input(const std::string& name);
  /// Register a primary input bus of `width` bits named name[0..width-1].
  Bus add_input_bus(const std::string& name, int width);
  /// Mark an existing net as a named primary output.
  void mark_output(NetId net, const std::string& name);

  // --- Gate constructors. All inputs must be existing nets.
  NetId add_not(NetId a);
  NetId add_buf(NetId a);
  NetId add_and(NetId a, NetId b);
  NetId add_or(NetId a, NetId b);
  NetId add_nand(NetId a, NetId b);
  NetId add_nor(NetId a, NetId b);
  NetId add_xor(NetId a, NetId b);
  NetId add_xnor(NetId a, NetId b);
  NetId add_mux(NetId a, NetId b, NetId sel);        ///< sel ? b : a
  NetId add_dff(NetId d);  ///< register (transparent in combinational sim)
  std::pair<NetId, NetId> add_ha(NetId a, NetId b);  ///< {sum, carry}
  std::pair<NetId, NetId> add_fa(NetId a, NetId b, NetId cin);

  /// Balanced OR over `bits` (empty -> const0, single -> pass-through).
  NetId add_or_tree(const Bus& bits);
  /// Balanced AND over `bits` (empty -> const1).
  NetId add_and_tree(const Bus& bits);

  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] int n_nets() const { return n_nets_; }
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>& inputs() const {
    return inputs_;
  }

  /// Cell-count histogram indexed by CellType.
  [[nodiscard]] std::array<long, hwmodel::kNumCellTypes> cell_histogram() const;
  /// Number of cells of one type.
  [[nodiscard]] long count(hwmodel::CellType t) const;

  /// Area/power/critical-path cost under `lib` (static-dominated power).
  [[nodiscard]] hwmodel::CircuitCost cost(const hwmodel::CellLibrary& lib) const;

  /// Combinational simulation. `input_values[i]` drives inputs()[i]'s net.
  /// Returns one bool per marked output, in outputs() order.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& input_values) const;

  /// Evaluate with explicit per-net storage (for callers driving nets
  /// directly, e.g. bus helpers). `values` must have n_nets() entries with
  /// inputs pre-set; gate outputs are filled in.
  void evaluate(std::vector<char>& values) const;

  /// Same, but forces gate `gate_index`'s output slot to `value` right
  /// after that gate evaluates — single stuck-at fault injection
  /// (downstream gates observe the forced value).
  void evaluate_with_override(std::vector<char>& values, int gate_index,
                              int output_slot, bool value) const;

 private:
  NetId new_net();
  Gate& push_gate(hwmodel::CellType type);

  int n_nets_ = 0;
  std::vector<Gate> gates_;
  std::vector<std::pair<NetId, std::string>> inputs_;
  std::vector<std::pair<NetId, std::string>> outputs_;
};

/// Drive a little-endian bus from an unsigned value (helper for tests/sim).
void drive_bus(std::vector<char>& values, const Bus& bus, std::uint64_t v);
/// Read a little-endian bus as unsigned.
[[nodiscard]] std::uint64_t read_bus(const std::vector<char>& values,
                                     const Bus& bus);

}  // namespace pmlp::netlist
