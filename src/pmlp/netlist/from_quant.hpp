// Bridge from the exact bespoke baseline model (QuantMlp, MICRO'20 [2])
// to a buildable netlist description: each non-zero 8-bit weight expands
// into one shifted full-width summand per set magnitude bit — the bespoke
// constant multiplier realized as shift-adds.
#pragma once

#include "pmlp/mlp/quant_mlp.hpp"
#include "pmlp/netlist/builders.hpp"

namespace pmlp::netlist {

[[nodiscard]] BespokeMlpDesc to_bespoke_desc(const mlp::QuantMlp& net,
                                             const std::string& name);

}  // namespace pmlp::netlist
