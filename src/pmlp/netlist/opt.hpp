// Netlist optimization passes — the logic-synthesis cleanups a commercial
// tool applies after technology mapping. The bespoke builders already fold
// constants at construction time; these passes additionally remove gates
// whose outputs drive nothing (dead-gate elimination) and merge structurally
// identical gates (common-subexpression elimination), both of which appear
// when masks prune most of a neuron away.
//
// Every pass can report the old-net -> new-net remap it applied, so callers
// holding net ids into the pre-optimization netlist (bus metadata, probe
// points) can carry them across the rewrite instead of rebuilding the
// circuit from scratch. optimize(BespokeCircuit) packages exactly that for
// the RTL-export path: the optimized netlist stays directly simulatable
// through its input/output buses.
#pragma once

#include <vector>

#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

struct OptStats {
  long dead_gates_removed = 0;
  long duplicate_gates_merged = 0;
  /// Gates in the netlist after the pass.
  long gates_remaining = 0;

  [[nodiscard]] long total_removed() const {
    return dead_gates_removed + duplicate_gates_merged;
  }
};

/// Old-net -> new-net map produced by a pass: indexed by the input
/// netlist's net id, -1 for nets that no longer exist (dead gates).
/// Constants and primary inputs are always mapped; nets folded to a
/// constant map to the new netlist's const0()/const1().
using NetMap = std::vector<NetId>;

/// Remove gates none of whose outputs reach a primary output (transitively).
/// Returns the optimized netlist (inputs/outputs preserved, nets renumbered).
/// When `net_map` is non-null it receives the old->new net remap.
[[nodiscard]] Netlist eliminate_dead_gates(const Netlist& nl,
                                           OptStats* stats = nullptr,
                                           NetMap* net_map = nullptr);

/// Merge gates with identical (type, inputs); downstream references are
/// rewired to the surviving gate. Iterates to a fixed point so chains of
/// duplicates collapse. Commutative gates match under input swap.
[[nodiscard]] Netlist merge_duplicate_gates(const Netlist& nl,
                                            OptStats* stats = nullptr,
                                            NetMap* net_map = nullptr);

/// Full pipeline: CSE to a fixed point, then dead-gate elimination. The
/// reported `net_map` is the composition across both passes.
[[nodiscard]] Netlist optimize(const Netlist& nl, OptStats* stats = nullptr,
                               NetMap* net_map = nullptr);

/// Optimize a complete bespoke circuit: runs the full pipeline on the
/// netlist and remaps the input buses and class-index bus through the
/// net map, so the result keeps its I/O metadata and predict() keeps
/// working — no dual-build needed to pair an optimized DUT with golden
/// predictions.
[[nodiscard]] BespokeCircuit optimize(BespokeCircuit circuit,
                                      OptStats* stats = nullptr);

}  // namespace pmlp::netlist
