// Netlist optimization passes — the logic-synthesis cleanups a commercial
// tool applies after technology mapping. The bespoke builders already fold
// constants at construction time; these passes additionally remove gates
// whose outputs drive nothing (dead-gate elimination) and merge structurally
// identical gates (common-subexpression elimination), both of which appear
// when masks prune most of a neuron away.
#pragma once

#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

struct OptStats {
  long dead_gates_removed = 0;
  long duplicate_gates_merged = 0;
  /// Gates in the netlist after the pass.
  long gates_remaining = 0;

  [[nodiscard]] long total_removed() const {
    return dead_gates_removed + duplicate_gates_merged;
  }
};

/// Remove gates none of whose outputs reach a primary output (transitively).
/// Returns the optimized netlist (inputs/outputs preserved, nets renumbered).
[[nodiscard]] Netlist eliminate_dead_gates(const Netlist& nl, OptStats* stats = nullptr);

/// Merge gates with identical (type, inputs); downstream references are
/// rewired to the surviving gate. Iterates to a fixed point so chains of
/// duplicates collapse. Commutative gates match under input swap.
[[nodiscard]] Netlist merge_duplicate_gates(const Netlist& nl, OptStats* stats = nullptr);

/// Full pipeline: CSE to a fixed point, then dead-gate elimination.
[[nodiscard]] Netlist optimize(const Netlist& nl, OptStats* stats = nullptr);

}  // namespace pmlp::netlist
