// Self-checking Verilog testbench emitter: together with verilog.hpp this
// yields a complete hand-off artifact for a real EDA flow (the paper's
// VCS step) — the DUT module plus a testbench that applies recorded input
// vectors and compares against the expected class indices produced by our
// golden gate-level simulator.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>

#include "pmlp/netlist/builders.hpp"

namespace pmlp::netlist {

struct TestbenchOptions {
  std::string dut_name = "approx_mlp";
  int max_vectors = 256;        ///< cap on emitted stimulus
  double clock_period_ns = 2e8; ///< 200 ms printed clock, in ns
};

/// Emit a self-checking testbench for a bespoke MLP circuit. `codes_flat`
/// holds row-major quantized samples (n_features per row); expected outputs
/// are computed with the circuit's own simulator (golden reference).
void emit_testbench(const BespokeCircuit& circuit, int n_features,
                    std::span<const std::uint8_t> codes_flat,
                    const TestbenchOptions& opts, std::ostream& os);

/// Convenience: DUT + testbench in one string.
[[nodiscard]] std::string to_verilog_with_testbench(
    const BespokeCircuit& circuit, int n_features,
    std::span<const std::uint8_t> codes_flat, const TestbenchOptions& opts);

}  // namespace pmlp::netlist
