// Stuck-at fault analysis for bespoke printed circuits. Printed additive
// manufacturing has far higher defect rates than silicon, so a realistic
// printed classifier must tolerate single stuck-at faults gracefully. This
// module enumerates stuck-at-0/1 faults on gate outputs, re-simulates the
// classifier under each fault, and reports the accuracy distribution — an
// extension the paper motivates (imprecise printing) but does not evaluate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmlp/netlist/builders.hpp"

namespace pmlp::netlist {

struct FaultSite {
  int gate_index = 0;   ///< index into Netlist::gates()
  int output_slot = 0;  ///< 0 or 1 (FA/HA have two outputs)
  bool stuck_value = false;
};

/// All single stuck-at-0/1 sites on gate outputs.
[[nodiscard]] std::vector<FaultSite> enumerate_fault_sites(const Netlist& nl);

struct FaultReport {
  std::size_t sites_evaluated = 0;
  double fault_free_accuracy = 0.0;
  double mean_faulty_accuracy = 0.0;
  double worst_faulty_accuracy = 1.0;
  /// Fraction of faults that leave accuracy within `tolerance` of
  /// fault-free (the circuit "masks" them).
  double masked_fraction = 0.0;
};

struct FaultCampaignConfig {
  /// Evaluate at most this many fault sites (uniformly sampled,
  /// deterministic in `seed`); <=0 means all sites.
  int max_sites = 200;
  /// Samples per fault simulation (<=0: the whole dataset).
  int max_samples = 128;
  double tolerance = 0.01;
  std::uint64_t seed = 1;
};

/// Run a single-stuck-at campaign on a bespoke MLP circuit against
/// quantized samples with labels.
[[nodiscard]] FaultReport run_fault_campaign(
    const BespokeCircuit& circuit, std::span<const std::uint8_t> codes_flat,
    std::span<const int> labels, int n_features,
    const FaultCampaignConfig& cfg = {});

/// Classify one sample with a fault injected (exposed for tests).
[[nodiscard]] int predict_with_fault(const BespokeCircuit& circuit,
                                     std::span<const std::uint8_t> codes,
                                     const FaultSite& fault);

}  // namespace pmlp::netlist
