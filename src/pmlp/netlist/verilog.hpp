// Verilog-2001 emitter for bespoke netlists — the paper's flow translates
// trained coefficients/masks "into an HDL description"; this produces that
// artifact so the circuits can be taken to a real EDA flow.
#pragma once

#include <ostream>
#include <string>

#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

/// Emit a flat structural module for the netlist. Primary inputs/outputs
/// are the nets registered via add_input/mark_output; FAs and HAs are
/// emitted as concatenation-sum assigns, simple gates as boolean assigns.
void emit_verilog(const Netlist& nl, const std::string& module_name,
                  std::ostream& os);

/// Convenience: emit into a string.
[[nodiscard]] std::string to_verilog(const Netlist& nl,
                                     const std::string& module_name);

}  // namespace pmlp::netlist
