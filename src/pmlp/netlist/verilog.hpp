// Verilog-2001 emitter for bespoke netlists — the paper's flow translates
// trained coefficients/masks "into an HDL description"; this produces that
// artifact so the circuits can be taken to a real EDA flow.
//
// The emitter is a dual emit+eval expression layer (the VeriGen idiom):
// every assign it emits carries both its text form and an in-process
// evaluator with the semantics of that text, so the emitted module can be
// executed without an external simulator and cross-checked gate-by-gate
// against the netlist's own simulator. An emitter bug — a wrong operator,
// swapped operands, a misnamed net — shows up as a cross_check mismatch in
// unit tests instead of surviving until someone runs iverilog.
#pragma once

#include <array>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

/// Map an arbitrary net/module name onto a legal Verilog identifier:
/// characters outside [A-Za-z0-9_] become '_', and a leading digit gets an
/// "n_" prefix. Shared by the DUT and testbench emitters so instantiations
/// always match port declarations.
[[nodiscard]] std::string sanitize_identifier(const std::string& name);

/// One emitted continuous assignment: the text that lands in the .v file
/// plus enough structure to execute it in-process. `eval` implements the
/// semantics of the emitted Verilog expression (not a pointer back into the
/// netlist), so evaluating the assign list is an independent second
/// implementation of the circuit.
struct AssignExpr {
  hwmodel::CellType op = hwmodel::CellType::kNot;
  std::array<NetId, 3> in{-1, -1, -1};
  std::array<NetId, 2> out{-1, -1};
  std::string text;  ///< complete line(s), e.g. "  assign n5 = a & b;\n"

  /// Execute the assign over per-net storage (index = NetId, as in
  /// Netlist::evaluate; slots 0/1 must hold the constants).
  void eval(std::vector<char>& values) const;
};

/// A netlist rendered as a Verilog module. Holds a pointer to the netlist
/// (which must outlive it) plus the assign list; `emit` writes the exact
/// module text, `eval` runs the assigns in-process, and `cross_check`
/// compares the two implementations gate output by gate output.
class EmittedModule {
 public:
  EmittedModule(const Netlist& nl, const std::string& module_name);

  /// Write the complete module (header, ports, wires, assigns, aliases).
  void emit(std::ostream& os) const;
  /// The module as a string.
  [[nodiscard]] std::string text() const;

  [[nodiscard]] const std::vector<AssignExpr>& assigns() const {
    return assigns_;
  }
  [[nodiscard]] const std::string& module_name() const { return module_name_; }

  /// The Verilog name a net has inside the module body: a sanitized port
  /// name for primary inputs, "1'b0"/"1'b1" for the constants, "n<id>"
  /// otherwise.
  [[nodiscard]] std::string net_name(NetId n) const;

  /// Evaluate the emitted assigns over one input vector (inputs() order,
  /// like Netlist::simulate). Returns one bool per marked output.
  [[nodiscard]] std::vector<bool> eval(const std::vector<bool>& inputs) const;

  /// Evaluate both implementations — the assign layer and the netlist
  /// simulator — over one input vector and compare every gate output net.
  /// Returns the number of mismatching nets (0 = the emitted RTL and the
  /// gate-level sim agree everywhere, not just at the outputs).
  [[nodiscard]] int cross_check(const std::vector<bool>& inputs) const;

 private:
  [[nodiscard]] std::vector<char> run_assigns(
      const std::vector<bool>& inputs) const;

  const Netlist* nl_;
  std::string module_name_;
  std::map<NetId, std::string> input_names_;
  std::vector<AssignExpr> assigns_;
};

/// Emit a flat structural module for the netlist. Primary inputs/outputs
/// are the nets registered via add_input/mark_output; FAs and HAs are
/// emitted as concatenation-sum assigns, simple gates as boolean assigns.
void emit_verilog(const Netlist& nl, const std::string& module_name,
                  std::ostream& os);

/// Convenience: emit into a string.
[[nodiscard]] std::string to_verilog(const Netlist& nl,
                                     const std::string& module_name);

}  // namespace pmlp::netlist
