#include "pmlp/netlist/testbench.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "pmlp/netlist/verilog.hpp"

namespace pmlp::netlist {

void emit_testbench(const BespokeCircuit& circuit, int n_features,
                    std::span<const std::uint8_t> codes_flat,
                    const TestbenchOptions& opts, std::ostream& os) {
  if (n_features <= 0 ||
      codes_flat.size() % static_cast<std::size_t>(n_features) != 0) {
    throw std::invalid_argument("emit_testbench: bad sample shape");
  }
  if (circuit.input_buses.size() != static_cast<std::size_t>(n_features)) {
    throw std::invalid_argument("emit_testbench: feature count mismatch");
  }
  const auto n_samples = std::min<std::size_t>(
      codes_flat.size() / static_cast<std::size_t>(n_features),
      static_cast<std::size_t>(opts.max_vectors));
  if (n_samples == 0) throw std::invalid_argument("emit_testbench: no vectors");

  const auto& nl = circuit.nl;
  const std::string dut = sanitize_identifier(opts.dut_name);

  // Port names come from the netlist's own I/O records (the same source
  // the DUT emitter uses), so the stimulus below stays correct even if the
  // bus naming convention changes — nothing is string-reconstructed.
  std::map<NetId, std::string> in_name;
  for (const auto& [net, name] : nl.inputs()) {
    in_name[net] = sanitize_identifier(name);
  }
  auto input_port = [&](NetId net) -> const std::string& {
    const auto it = in_name.find(net);
    if (it == in_name.end()) {
      throw std::invalid_argument(
          "emit_testbench: input bus net is not a primary input");
    }
    return it->second;
  };
  if (nl.outputs().size() != circuit.class_index.size()) {
    throw std::invalid_argument(
        "emit_testbench: outputs are not the class-index bus");
  }

  os << "`timescale 1ns/1ns\n";
  os << "module " << dut << "_tb;\n";
  for (const auto& [net, name] : nl.inputs()) {
    os << "  reg " << sanitize_identifier(name) << ";\n";
  }
  for (const auto& [net, name] : nl.outputs()) {
    os << "  wire " << sanitize_identifier(name) << ";\n";
  }
  os << "  integer errors;\n\n";
  os << "  " << dut << " dut(\n";
  bool first = true;
  for (const auto& [net, name] : nl.inputs()) {
    os << (first ? "    " : ",\n    ") << "." << sanitize_identifier(name)
       << "(" << sanitize_identifier(name) << ")";
    first = false;
  }
  for (const auto& [net, name] : nl.outputs()) {
    os << ",\n    ." << sanitize_identifier(name) << "("
       << sanitize_identifier(name) << ")";
  }
  os << "\n  );\n\n";

  // Expected class index per vector from the golden simulator.
  os << "  initial begin\n";
  os << "    errors = 0;\n";
  const auto half_period =
      static_cast<long long>(opts.clock_period_ns / 2.0);
  for (std::size_t s = 0; s < n_samples; ++s) {
    const auto row =
        codes_flat.subspan(s * static_cast<std::size_t>(n_features),
                           static_cast<std::size_t>(n_features));
    const int expected = circuit.predict(row);
    // Drive each feature bus bit through its recorded port name.
    for (int f = 0; f < n_features; ++f) {
      const Bus& bus = circuit.input_buses[static_cast<std::size_t>(f)];
      for (std::size_t bit = 0; bit < bus.size(); ++bit) {
        os << "    " << input_port(bus[bit]) << " = 1'b"
           << (((row[static_cast<std::size_t>(f)] >> bit) & 1u) != 0 ? 1 : 0)
           << ";\n";
      }
    }
    os << "    #" << half_period << ";\n";
    // Compare the class-index bus (MSB first) against the golden value.
    os << "    if ({";
    for (std::size_t bit = circuit.class_index.size(); bit-- > 0;) {
      os << sanitize_identifier(nl.outputs()[bit].second);
      if (bit != 0) os << ", ";
    }
    os << "} !== " << circuit.class_index.size() << "'d" << expected
       << ") begin\n";
    os << "      $display(\"MISMATCH vector " << s << ": expected "
       << expected << "\");\n";
    os << "      errors = errors + 1;\n";
    os << "    end\n";
    os << "    #" << half_period << ";\n";
  }
  os << "    if (errors == 0) $display(\"TESTBENCH PASS (" << n_samples
     << " vectors)\");\n";
  os << "    else $display(\"TESTBENCH FAIL: %0d errors\", errors);\n";
  os << "    $finish;\n";
  os << "  end\n";
  os << "endmodule\n";
}

std::string to_verilog_with_testbench(const BespokeCircuit& circuit,
                                      int n_features,
                                      std::span<const std::uint8_t> codes_flat,
                                      const TestbenchOptions& opts) {
  std::ostringstream os;
  emit_verilog(circuit.nl, opts.dut_name, os);
  os << "\n";
  emit_testbench(circuit, n_features, codes_flat, opts, os);
  return os.str();
}

}  // namespace pmlp::netlist
