#include "pmlp/netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmlp::netlist {

using hwmodel::CellType;

Netlist::Netlist() {
  n_nets_ = 2;  // net 0 = const0, net 1 = const1
}

NetId Netlist::new_net() { return n_nets_++; }

Gate& Netlist::push_gate(CellType type) {
  gates_.push_back(Gate{type, {-1, -1, -1}, {-1, -1}});
  return gates_.back();
}

NetId Netlist::add_input(const std::string& name) {
  const NetId n = new_net();
  inputs_.emplace_back(n, name);
  return n;
}

Bus Netlist::add_input_bus(const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(add_input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void Netlist::mark_output(NetId net, const std::string& name) {
  if (net < 0 || net >= n_nets_) {
    throw std::invalid_argument("mark_output: unknown net");
  }
  outputs_.emplace_back(net, name);
}

namespace {
void check_net(NetId n, int n_nets, const char* what) {
  if (n < 0 || n >= n_nets) {
    throw std::invalid_argument(std::string("netlist: bad input net for ") +
                                what);
  }
}
}  // namespace

NetId Netlist::add_not(NetId a) {
  check_net(a, n_nets_, "NOT");
  // Constant propagation keeps bespoke circuits honest: inverting a known
  // constant must not cost a cell, exactly like logic synthesis would fold it.
  if (a == const0()) return const1();
  if (a == const1()) return const0();
  Gate& g = push_gate(CellType::kNot);
  g.in[0] = a;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_buf(NetId a) {
  check_net(a, n_nets_, "BUF");
  Gate& g = push_gate(CellType::kBuf);
  g.in[0] = a;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_and(NetId a, NetId b) {
  check_net(a, n_nets_, "AND");
  check_net(b, n_nets_, "AND");
  if (a == const0() || b == const0()) return const0();
  if (a == const1()) return b;
  if (b == const1()) return a;
  if (a == b) return a;
  Gate& g = push_gate(CellType::kAnd2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_or(NetId a, NetId b) {
  check_net(a, n_nets_, "OR");
  check_net(b, n_nets_, "OR");
  if (a == const1() || b == const1()) return const1();
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == b) return a;
  Gate& g = push_gate(CellType::kOr2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_nand(NetId a, NetId b) {
  check_net(a, n_nets_, "NAND");
  check_net(b, n_nets_, "NAND");
  if (a == const0() || b == const0()) return const1();
  if (a == const1()) return add_not(b);
  if (b == const1()) return add_not(a);
  if (a == b) return add_not(a);
  Gate& g = push_gate(CellType::kNand2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_nor(NetId a, NetId b) {
  check_net(a, n_nets_, "NOR");
  check_net(b, n_nets_, "NOR");
  if (a == const1() || b == const1()) return const0();
  if (a == const0()) return add_not(b);
  if (b == const0()) return add_not(a);
  if (a == b) return add_not(a);
  Gate& g = push_gate(CellType::kNor2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_xor(NetId a, NetId b) {
  check_net(a, n_nets_, "XOR");
  check_net(b, n_nets_, "XOR");
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == const1()) return add_not(b);
  if (b == const1()) return add_not(a);
  if (a == b) return const0();
  Gate& g = push_gate(CellType::kXor2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_xnor(NetId a, NetId b) {
  check_net(a, n_nets_, "XNOR");
  check_net(b, n_nets_, "XNOR");
  if (a == const0()) return add_not(b);
  if (b == const0()) return add_not(a);
  if (a == const1()) return b;
  if (b == const1()) return a;
  if (a == b) return const1();
  Gate& g = push_gate(CellType::kXnor2);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_mux(NetId a, NetId b, NetId sel) {
  check_net(a, n_nets_, "MUX");
  check_net(b, n_nets_, "MUX");
  check_net(sel, n_nets_, "MUX");
  if (sel == const0()) return a;
  if (sel == const1()) return b;
  if (a == b) return a;
  Gate& g = push_gate(CellType::kMux2);
  g.in[0] = a;
  g.in[1] = b;
  g.in[2] = sel;
  g.out[0] = new_net();
  return g.out[0];
}

NetId Netlist::add_dff(NetId d) {
  check_net(d, n_nets_, "DFF");
  Gate& g = push_gate(CellType::kDff);
  g.in[0] = d;
  g.out[0] = new_net();
  return g.out[0];
}

std::pair<NetId, NetId> Netlist::add_ha(NetId a, NetId b) {
  check_net(a, n_nets_, "HA");
  check_net(b, n_nets_, "HA");
  if (a == const0()) return {b, const0()};
  if (b == const0()) return {a, const0()};
  if (a == const1() && b == const1()) return {const0(), const1()};
  if (a == const1()) return {add_not(b), b};
  if (b == const1()) return {add_not(a), a};
  Gate& g = push_gate(CellType::kHalfAdder);
  g.in[0] = a;
  g.in[1] = b;
  g.out[0] = new_net();
  g.out[1] = new_net();
  return {g.out[0], g.out[1]};
}

std::pair<NetId, NetId> Netlist::add_fa(NetId a, NetId b, NetId cin) {
  check_net(a, n_nets_, "FA");
  check_net(b, n_nets_, "FA");
  check_net(cin, n_nets_, "FA");
  // Degenerate constants fold to a HA (or less); logic synthesis would do
  // the same, and the FA-count *model* deliberately over-counts these —
  // callers that must match the model exactly avoid constant FA inputs.
  if (cin == const0()) return add_ha(a, b);
  if (a == const0()) return add_ha(b, cin);
  if (b == const0()) return add_ha(a, cin);
  if (cin == const1()) {
    // a + b + 1: sum = XNOR(a,b), carry = OR(a,b)
    return {add_xnor(a, b), add_or(a, b)};
  }
  if (a == const1()) return {add_xnor(b, cin), add_or(b, cin)};
  if (b == const1()) return {add_xnor(a, cin), add_or(a, cin)};
  Gate& g = push_gate(CellType::kFullAdder);
  g.in[0] = a;
  g.in[1] = b;
  g.in[2] = cin;
  g.out[0] = new_net();
  g.out[1] = new_net();
  return {g.out[0], g.out[1]};
}

NetId Netlist::add_or_tree(const Bus& bits) {
  if (bits.empty()) return const0();
  Bus level = bits;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

NetId Netlist::add_and_tree(const Bus& bits) {
  if (bits.empty()) return const1();
  Bus level = bits;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(add_and(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

std::array<long, hwmodel::kNumCellTypes> Netlist::cell_histogram() const {
  std::array<long, hwmodel::kNumCellTypes> hist{};
  for (const auto& g : gates_) {
    hist[static_cast<std::size_t>(g.type)] += 1;
  }
  return hist;
}

long Netlist::count(CellType t) const {
  return cell_histogram()[static_cast<std::size_t>(t)];
}

hwmodel::CircuitCost Netlist::cost(const hwmodel::CellLibrary& lib) const {
  hwmodel::CircuitCost c;
  std::vector<double> arrival(static_cast<std::size_t>(n_nets_), 0.0);
  for (const auto& g : gates_) {
    const auto& p = lib.cell(g.type);
    c.area_mm2 += p.area_mm2;
    c.power_uw += p.power_uw;
    c.cell_count += 1;
    double in_arrival = 0.0;
    for (NetId in : g.in) {
      if (in >= 0) in_arrival = std::max(in_arrival, arrival[static_cast<std::size_t>(in)]);
    }
    for (NetId out : g.out) {
      if (out >= 0) arrival[static_cast<std::size_t>(out)] = in_arrival + p.delay_us;
    }
  }
  for (double a : arrival) c.critical_delay_us = std::max(c.critical_delay_us, a);
  return c;
}

void Netlist::evaluate(std::vector<char>& values) const {
  evaluate_with_override(values, -1, 0, false);
}

void Netlist::evaluate_with_override(std::vector<char>& values,
                                     int gate_index, int output_slot,
                                     bool value) const {
  if (values.size() != static_cast<std::size_t>(n_nets_)) {
    throw std::invalid_argument("evaluate: values size != n_nets");
  }
  values[0] = 0;
  values[1] = 1;
  auto v = [&](NetId n) -> bool { return values[static_cast<std::size_t>(n)] != 0; };
  int index = -1;
  for (const auto& g : gates_) {
    ++index;
    switch (g.type) {
      case CellType::kNot:
        values[static_cast<std::size_t>(g.out[0])] = !v(g.in[0]);
        break;
      case CellType::kBuf:
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]);
        break;
      case CellType::kAnd2:
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]) && v(g.in[1]);
        break;
      case CellType::kOr2:
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]) || v(g.in[1]);
        break;
      case CellType::kNand2:
        values[static_cast<std::size_t>(g.out[0])] = !(v(g.in[0]) && v(g.in[1]));
        break;
      case CellType::kNor2:
        values[static_cast<std::size_t>(g.out[0])] = !(v(g.in[0]) || v(g.in[1]));
        break;
      case CellType::kXor2:
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]) != v(g.in[1]);
        break;
      case CellType::kXnor2:
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]) == v(g.in[1]);
        break;
      case CellType::kMux2:
        values[static_cast<std::size_t>(g.out[0])] =
            v(g.in[2]) ? v(g.in[1]) : v(g.in[0]);
        break;
      case CellType::kHalfAdder: {
        const bool a = v(g.in[0]), b = v(g.in[1]);
        values[static_cast<std::size_t>(g.out[0])] = a != b;
        values[static_cast<std::size_t>(g.out[1])] = a && b;
        break;
      }
      case CellType::kFullAdder: {
        const bool a = v(g.in[0]), b = v(g.in[1]), cin = v(g.in[2]);
        const int sum = static_cast<int>(a) + b + cin;
        values[static_cast<std::size_t>(g.out[0])] = (sum & 1) != 0;
        values[static_cast<std::size_t>(g.out[1])] = sum >= 2;
        break;
      }
      case CellType::kDff:
        // Purely combinational simulation: a DFF is transparent here.
        values[static_cast<std::size_t>(g.out[0])] = v(g.in[0]);
        break;
      case CellType::kCount:
        throw std::logic_error("evaluate: bad gate");
    }
    if (index == gate_index) {
      const NetId forced = g.out[static_cast<std::size_t>(output_slot)];
      if (forced >= 0) {
        values[static_cast<std::size_t>(forced)] = value ? 1 : 0;
      }
    }
  }
}

std::vector<bool> Netlist::simulate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("simulate: wrong number of input values");
  }
  std::vector<char> values(static_cast<std::size_t>(n_nets_), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    values[static_cast<std::size_t>(inputs_[i].first)] =
        input_values[i] ? 1 : 0;
  }
  evaluate(values);
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const auto& [net, name] : outputs_) {
    out.push_back(values[static_cast<std::size_t>(net)] != 0);
  }
  return out;
}

void drive_bus(std::vector<char>& values, const Bus& bus, std::uint64_t v) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    values[static_cast<std::size_t>(bus[i])] = ((v >> i) & 1u) ? 1 : 0;
  }
}

std::uint64_t read_bus(const std::vector<char>& values, const Bus& bus) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (values[static_cast<std::size_t>(bus[i])] != 0) {
      v |= std::uint64_t{1} << i;
    }
  }
  return v;
}

}  // namespace pmlp::netlist
