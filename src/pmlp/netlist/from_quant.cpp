#include "pmlp/netlist/from_quant.hpp"

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::netlist {

BespokeMlpDesc to_bespoke_desc(const mlp::QuantMlp& net,
                               const std::string& name) {
  BespokeMlpDesc desc;
  desc.name = name;
  const auto& layers = net.layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const auto& ql = layers[l];
    LayerDesc ld;
    ld.n_in = ql.n_in;
    ld.n_out = ql.n_out;
    ld.input_bits = ql.input_bits;
    ld.qrelu = l + 1 < layers.size();
    ld.qrelu_shift = ql.qrelu_shift;
    ld.act_bits = net.activation_bits();
    const auto full_mask =
        static_cast<std::uint32_t>(bitops::low_mask(ql.input_bits));
    for (int o = 0; o < ql.n_out; ++o) {
      NeuronDesc nd;
      nd.bias = ql.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < ql.n_in; ++i) {
        const std::int32_t w = ql.weight(o, i);
        if (w == 0) continue;
        const auto mag = static_cast<std::uint64_t>(w < 0 ? -w : w);
        for (int p : bitops::set_bit_positions(mag)) {
          nd.conns.push_back(ConnDesc{i, full_mask, p, w < 0 ? -1 : +1});
        }
      }
      ld.neurons.push_back(std::move(nd));
    }
    desc.layers.push_back(std::move(ld));
  }
  return desc;
}

}  // namespace pmlp::netlist
