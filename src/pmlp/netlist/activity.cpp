#include "pmlp/netlist/activity.hpp"

#include <stdexcept>

namespace pmlp::netlist {

ActivityReport analyze_activity(const Netlist& nl,
                                const std::vector<std::vector<bool>>& vectors,
                                const hwmodel::CellLibrary& lib,
                                double clock_period_ms) {
  if (vectors.empty()) {
    throw std::invalid_argument("analyze_activity: no vectors");
  }
  if (clock_period_ms <= 0.0) {
    throw std::invalid_argument("analyze_activity: bad clock period");
  }

  ActivityReport report;
  report.vectors = static_cast<long>(vectors.size());

  std::vector<char> prev(static_cast<std::size_t>(nl.n_nets()), 0);
  std::vector<char> cur(static_cast<std::size_t>(nl.n_nets()), 0);
  std::vector<long> toggles(static_cast<std::size_t>(nl.n_nets()), 0);

  bool first = true;
  for (const auto& vec : vectors) {
    if (vec.size() != nl.inputs().size()) {
      throw std::invalid_argument("analyze_activity: wrong vector width");
    }
    std::fill(cur.begin(), cur.end(), 0);
    for (std::size_t i = 0; i < vec.size(); ++i) {
      cur[static_cast<std::size_t>(nl.inputs()[i].first)] = vec[i] ? 1 : 0;
    }
    nl.evaluate(cur);
    if (!first) {
      for (std::size_t n = 0; n < cur.size(); ++n) {
        if (cur[n] != prev[n]) toggles[n] += 1;
      }
    }
    prev = cur;
    first = false;
  }

  // Static power: every cell leaks all the time (EGFET resistive-load
  // style logic). Dynamic energy per output toggle: the cell's nominal
  // power integrated over its own propagation delay — a standard
  // energy-per-transition first-order model.
  double static_uw = 0.0;
  double dynamic_uj = 0.0;  // micro-joules over the whole window
  long total_toggles = 0;
  for (const auto& g : nl.gates()) {
    const auto& p = lib.cell(g.type);
    static_uw += p.power_uw;
    for (NetId out : g.out) {
      if (out < 0) continue;
      const long t = toggles[static_cast<std::size_t>(out)];
      total_toggles += t;
      // delay in us, power in uW -> energy in pJ-scale; keep uW*us = pJ
      // and convert to uJ (1e-6).
      dynamic_uj += static_cast<double>(t) * p.power_uw * p.delay_us * 1e-6;
    }
  }

  const double window_us =
      clock_period_ms * 1000.0 * static_cast<double>(vectors.size());
  report.total_toggles = total_toggles;
  report.toggle_rate =
      nl.gates().empty()
          ? 0.0
          : static_cast<double>(total_toggles) /
                (static_cast<double>(nl.gates().size()) *
                 static_cast<double>(vectors.size()));
  report.static_power_uw = static_uw;
  report.dynamic_power_uw = dynamic_uj / window_us * 1e6;  // uJ/us -> uW
  report.total_power_uw = report.static_power_uw + report.dynamic_power_uw;
  return report;
}

std::vector<std::vector<bool>> vectors_from_samples(
    std::span<const Bus> input_buses, const Netlist& nl,
    std::span<const std::uint8_t> codes_flat, int n_features) {
  if (n_features <= 0 ||
      codes_flat.size() % static_cast<std::size_t>(n_features) != 0) {
    throw std::invalid_argument("vectors_from_samples: bad shape");
  }
  if (input_buses.size() != static_cast<std::size_t>(n_features)) {
    throw std::invalid_argument("vectors_from_samples: bus count mismatch");
  }
  // Map net -> position in inputs() order.
  std::vector<int> pos(static_cast<std::size_t>(nl.n_nets()), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    pos[static_cast<std::size_t>(nl.inputs()[i].first)] = static_cast<int>(i);
  }

  const std::size_t n_samples =
      codes_flat.size() / static_cast<std::size_t>(n_features);
  std::vector<std::vector<bool>> vectors(
      n_samples, std::vector<bool>(nl.inputs().size(), false));
  for (std::size_t s = 0; s < n_samples; ++s) {
    for (int f = 0; f < n_features; ++f) {
      const std::uint8_t code =
          codes_flat[s * static_cast<std::size_t>(n_features) +
                     static_cast<std::size_t>(f)];
      const Bus& bus = input_buses[static_cast<std::size_t>(f)];
      for (std::size_t bit = 0; bit < bus.size(); ++bit) {
        const int p = pos[static_cast<std::size_t>(bus[bit])];
        if (p < 0) throw std::invalid_argument("vectors_from_samples: bus net is not an input");
        vectors[s][static_cast<std::size_t>(p)] = ((code >> bit) & 1u) != 0;
      }
    }
  }
  return vectors;
}

}  // namespace pmlp::netlist
