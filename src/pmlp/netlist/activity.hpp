// Switching-activity power analysis — the substitute for the paper's
// VCS + PrimeTime simulation-based flow. A workload (set of input vectors)
// is simulated through the netlist; per-net toggle counts yield a dynamic
// energy estimate on top of the library's static power:
//
//   P = P_static + (sum over gates of toggles * E_dyn(gate)) / T_window
//
// where E_dyn is derived from the cell's nominal power and delay (the energy
// a cell burns while switching) and T_window = vectors * clock_period.
// At printed-electronics clock periods (200 ms) static power dominates, as
// §II of the paper expects — a property tested in activity_test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

struct ActivityReport {
  long vectors = 0;
  long total_toggles = 0;
  double toggle_rate = 0.0;       ///< avg toggles per gate per vector
  double static_power_uw = 0.0;
  double dynamic_power_uw = 0.0;
  double total_power_uw = 0.0;

  [[nodiscard]] double total_power_mw() const { return total_power_uw / 1000.0; }
};

/// Simulate `vectors` (each one full set of primary-input values, in
/// inputs() order) and report activity-based power for the given clock.
[[nodiscard]] ActivityReport analyze_activity(
    const Netlist& nl, const std::vector<std::vector<bool>>& vectors,
    const hwmodel::CellLibrary& lib, double clock_period_ms);

/// Convenience: build the input vectors for a bespoke-MLP circuit from
/// quantized samples (little-endian feature buses, inputs() order).
[[nodiscard]] std::vector<std::vector<bool>> vectors_from_samples(
    std::span<const Bus> input_buses, const Netlist& nl,
    std::span<const std::uint8_t> codes_flat, int n_features);

}  // namespace pmlp::netlist
