// Bespoke-circuit builders: from a structural MLP description (connections
// as mask/shift/sign, folded bias constants) to a complete gate-level
// netlist — CSA 3:2 reduction trees, ripple CPA, QReLU clamp logic and the
// argmax comparator chain (paper Fig. 1: "only rewiring" multipliers,
// hard-wired zeros in the summands, hard-coded signs).
//
// The builder applies the constant foldings a logic synthesizer would
// (FA with a constant input degenerates to HA / XNOR+OR, etc.), so the cell
// count is at most the FA-count model's estimate; tests assert both the
// bound and bit-exact functional equivalence with the behavioural models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/netlist/netlist.hpp"

namespace pmlp::netlist {

/// One connection of a bespoke neuron: sign * ((mask (.) x[input_index]) << shift).
struct ConnDesc {
  int input_index = 0;
  std::uint32_t mask = 0;
  int shift = 0;
  int sign = +1;
};

struct NeuronDesc {
  std::vector<ConnDesc> conns;
  std::int64_t bias = 0;
};

struct LayerDesc {
  int n_in = 0;
  int n_out = 0;
  int input_bits = 4;    ///< width of this layer's input activations
  bool qrelu = true;     ///< false for the output layer (raw accumulators)
  int qrelu_shift = 0;
  int act_bits = 8;      ///< QReLU output width
  std::vector<NeuronDesc> neurons;
};

struct BespokeMlpDesc {
  std::string name = "bespoke_mlp";
  std::vector<LayerDesc> layers;
};

/// Translate a layer+neuron into the adder model's structural form (shared
/// with training so the netlist and the area proxy price the same tree).
[[nodiscard]] adder::NeuronAdderSpec to_adder_spec(const NeuronDesc& neuron,
                                                   int input_bits);
[[nodiscard]] std::vector<adder::NeuronAdderSpec> to_adder_specs(
    const BespokeMlpDesc& desc);

/// Multi-operand addition: reduce `columns` (bits per weight) with FAs,
/// then a ripple CPA; returns the two's-complement sum bus of exactly
/// `columns.size()` bits (wrap-around beyond the MSB, as in hardware).
[[nodiscard]] Bus build_column_adder(Netlist& nl,
                                     std::vector<std::vector<NetId>> columns);

/// One bespoke neuron: wiring/inversion of masked input bits, folded
/// constant, CSA + CPA. Returns the accumulator bus (analyze_neuron width).
[[nodiscard]] Bus build_neuron(Netlist& nl, const NeuronDesc& neuron,
                               const std::vector<Bus>& inputs, int input_bits);

/// QReLU: clamp(acc >> shift, 0, 2^out_bits - 1) with clamp-to-0 on
/// negative accumulators. `acc` is two's complement.
[[nodiscard]] Bus build_qrelu(Netlist& nl, const Bus& acc, int shift,
                              int out_bits);

/// Strict signed greater-than comparator (equal-width buses).
[[nodiscard]] NetId build_signed_gt(Netlist& nl, const Bus& a, const Bus& b);

/// Per-bit 2:1 mux: sel ? b : a (buses must have equal width).
[[nodiscard]] Bus build_mux_bus(Netlist& nl, const Bus& a, const Bus& b,
                                NetId sel);

/// Argmax over signed accumulator buses (first maximum wins, matching
/// std::max_element). Returns the winner-index bus (ceil(log2 n) bits).
[[nodiscard]] Bus build_argmax(Netlist& nl, std::vector<Bus> accs);

/// A fully built bespoke MLP circuit.
struct BespokeCircuit {
  Netlist nl;
  std::vector<Bus> input_buses;        ///< one bus per input feature
  Bus class_index;                     ///< argmax output bus
  std::vector<int> neuron_acc_widths;  ///< layer-major accumulator widths

  /// Classify one quantized sample (codes must fit the input width).
  [[nodiscard]] int predict(std::span<const std::uint8_t> codes) const;
};

/// Build the complete circuit: all layers, QReLUs, argmax.
[[nodiscard]] BespokeCircuit build_bespoke_mlp(const BespokeMlpDesc& desc);

}  // namespace pmlp::netlist
