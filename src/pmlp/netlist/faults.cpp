#include "pmlp/netlist/faults.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace pmlp::netlist {

std::vector<FaultSite> enumerate_fault_sites(const Netlist& nl) {
  std::vector<FaultSite> sites;
  const auto& gates = nl.gates();
  for (int gi = 0; gi < static_cast<int>(gates.size()); ++gi) {
    for (int slot = 0; slot < 2; ++slot) {
      if (gates[static_cast<std::size_t>(gi)].out[static_cast<std::size_t>(slot)] < 0) {
        continue;
      }
      sites.push_back({gi, slot, false});
      sites.push_back({gi, slot, true});
    }
  }
  return sites;
}

int predict_with_fault(const BespokeCircuit& circuit,
                       std::span<const std::uint8_t> codes,
                       const FaultSite& fault) {
  if (codes.size() != circuit.input_buses.size()) {
    throw std::invalid_argument("predict_with_fault: bad feature count");
  }
  std::vector<char> values(static_cast<std::size_t>(circuit.nl.n_nets()), 0);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    drive_bus(values, circuit.input_buses[i], codes[i]);
  }
  circuit.nl.evaluate_with_override(values, fault.gate_index,
                                    fault.output_slot, fault.stuck_value);
  return static_cast<int>(read_bus(values, circuit.class_index));
}

FaultReport run_fault_campaign(const BespokeCircuit& circuit,
                               std::span<const std::uint8_t> codes_flat,
                               std::span<const int> labels, int n_features,
                               const FaultCampaignConfig& cfg) {
  if (n_features <= 0 ||
      codes_flat.size() !=
          labels.size() * static_cast<std::size_t>(n_features)) {
    throw std::invalid_argument("run_fault_campaign: bad sample shape");
  }
  const std::size_t n_samples =
      cfg.max_samples > 0
          ? std::min(labels.size(), static_cast<std::size_t>(cfg.max_samples))
          : labels.size();
  if (n_samples == 0) {
    throw std::invalid_argument("run_fault_campaign: no samples");
  }

  auto sample_row = [&](std::size_t s) {
    return codes_flat.subspan(s * static_cast<std::size_t>(n_features),
                              static_cast<std::size_t>(n_features));
  };

  FaultReport report;
  std::size_t correct = 0;
  for (std::size_t s = 0; s < n_samples; ++s) {
    if (circuit.predict(sample_row(s)) == labels[s]) ++correct;
  }
  report.fault_free_accuracy =
      static_cast<double>(correct) / static_cast<double>(n_samples);

  auto sites = enumerate_fault_sites(circuit.nl);
  if (cfg.max_sites > 0 &&
      sites.size() > static_cast<std::size_t>(cfg.max_sites)) {
    std::mt19937_64 rng(cfg.seed);
    std::shuffle(sites.begin(), sites.end(), rng);
    sites.resize(static_cast<std::size_t>(cfg.max_sites));
  }
  if (sites.empty()) {
    report.masked_fraction = 1.0;
    report.mean_faulty_accuracy = report.fault_free_accuracy;
    report.worst_faulty_accuracy = report.fault_free_accuracy;
    return report;
  }

  double sum_acc = 0.0;
  std::size_t masked = 0;
  for (const auto& site : sites) {
    std::size_t hits = 0;
    for (std::size_t s = 0; s < n_samples; ++s) {
      if (predict_with_fault(circuit, sample_row(s), site) == labels[s]) {
        ++hits;
      }
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(n_samples);
    sum_acc += acc;
    report.worst_faulty_accuracy = std::min(report.worst_faulty_accuracy, acc);
    if (acc + cfg.tolerance + 1e-12 >= report.fault_free_accuracy) ++masked;
  }
  report.sites_evaluated = sites.size();
  report.mean_faulty_accuracy = sum_acc / static_cast<double>(sites.size());
  report.masked_fraction =
      static_cast<double>(masked) / static_cast<double>(sites.size());
  return report;
}

}  // namespace pmlp::netlist
