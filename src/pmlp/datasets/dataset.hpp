// Tabular classification datasets as consumed by every trainer in this repo:
// features normalized to [0,1] (as in the paper), integer class labels, and
// helpers for the paper's stratified 70/30 train/test protocol and the 4-bit
// input quantization of bespoke printed MLPs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pmlp::datasets {

/// Dense tabular dataset. Row-major: sample i occupies
/// features[i*n_features .. (i+1)*n_features).
struct Dataset {
  std::string name;
  int n_features = 0;
  int n_classes = 0;
  std::vector<double> features;  ///< row-major, expected in [0,1] after normalize()
  std::vector<int> labels;       ///< one label in [0, n_classes) per sample

  [[nodiscard]] std::size_t size() const {
    return labels.size();
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {features.data() + i * static_cast<std::size_t>(n_features),
            static_cast<std::size_t>(n_features)};
  }
  /// Per-class sample counts (size n_classes).
  [[nodiscard]] std::vector<std::size_t> class_counts() const;
  /// Throws std::invalid_argument if sizes/labels/ranges are inconsistent.
  void validate() const;
};

/// Min-max normalize each feature column to [0,1] in place (paper §V-A).
/// Constant columns map to 0.
void normalize_min_max(Dataset& d);

struct SplitResult {
  Dataset train;
  Dataset test;
};

/// Random stratified split preserving per-class proportions (paper §V-A:
/// 70%/30% "ensuring a balanced distribution of each target class").
/// Every class contributes at least one sample to each side when it has >=2.
[[nodiscard]] SplitResult stratified_split(const Dataset& d,
                                           double train_fraction,
                                           std::uint64_t seed);

/// Dataset with inputs quantized to `bits`-bit unsigned codes, the form the
/// bespoke hardware actually sees (4-bit inputs throughout the paper).
struct QuantizedDataset {
  std::string name;
  int n_features = 0;
  int n_classes = 0;
  int input_bits = 4;
  std::vector<std::uint8_t> codes;  ///< row-major
  std::vector<int> labels;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t i) const {
    return {codes.data() + i * static_cast<std::size_t>(n_features),
            static_cast<std::size_t>(n_features)};
  }
};

/// Quantize normalized features to `bits`-bit codes.
[[nodiscard]] QuantizedDataset quantize_inputs(const Dataset& d, int bits);

}  // namespace pmlp::datasets
