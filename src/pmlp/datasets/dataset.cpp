#include "pmlp/datasets/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

#include "pmlp/bitops/fixed_point.hpp"

namespace pmlp::datasets {

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
  for (int y : labels) counts[static_cast<std::size_t>(y)] += 1;
  return counts;
}

void Dataset::validate() const {
  if (n_features <= 0) throw std::invalid_argument(name + ": n_features <= 0");
  if (n_classes <= 1) throw std::invalid_argument(name + ": n_classes <= 1");
  if (features.size() != labels.size() * static_cast<std::size_t>(n_features)) {
    throw std::invalid_argument(name + ": features/labels size mismatch");
  }
  for (int y : labels) {
    if (y < 0 || y >= n_classes) {
      throw std::invalid_argument(name + ": label out of range");
    }
  }
  for (double x : features) {
    if (!std::isfinite(x)) throw std::invalid_argument(name + ": non-finite feature");
  }
}

void normalize_min_max(Dataset& d) {
  const auto n = d.size();
  const auto f = static_cast<std::size_t>(d.n_features);
  for (std::size_t j = 0; j < f; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = d.features[i * f + j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double range = hi - lo;
    for (std::size_t i = 0; i < n; ++i) {
      double& v = d.features[i * f + j];
      v = range > 0 ? (v - lo) / range : 0.0;
    }
  }
}

SplitResult stratified_split(const Dataset& d, double train_fraction,
                             std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: fraction out of (0,1)");
  }
  std::mt19937_64 rng(seed);

  // Bucket sample indices per class, shuffle each bucket, cut per class.
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(d.n_classes));
  for (std::size_t i = 0; i < d.size(); ++i) {
    buckets[static_cast<std::size_t>(d.labels[i])].push_back(i);
  }

  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (auto& bucket : buckets) {
    std::shuffle(bucket.begin(), bucket.end(), rng);
    if (bucket.empty()) continue;
    auto n_train = static_cast<std::size_t>(
        std::lround(train_fraction * static_cast<double>(bucket.size())));
    // Keep at least one sample on each side when the class allows it.
    if (bucket.size() >= 2) {
      n_train = std::clamp<std::size_t>(n_train, 1, bucket.size() - 1);
    } else {
      n_train = 1;  // singleton classes go to train
    }
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      (k < n_train ? train_idx : test_idx).push_back(bucket[k]);
    }
  }
  std::shuffle(train_idx.begin(), train_idx.end(), rng);
  std::shuffle(test_idx.begin(), test_idx.end(), rng);

  auto take = [&](const std::vector<std::size_t>& idx, const char* suffix) {
    Dataset out;
    out.name = d.name + suffix;
    out.n_features = d.n_features;
    out.n_classes = d.n_classes;
    out.features.reserve(idx.size() * static_cast<std::size_t>(d.n_features));
    out.labels.reserve(idx.size());
    for (std::size_t i : idx) {
      const auto r = d.row(i);
      out.features.insert(out.features.end(), r.begin(), r.end());
      out.labels.push_back(d.labels[i]);
    }
    return out;
  };
  return {take(train_idx, "/train"), take(test_idx, "/test")};
}

QuantizedDataset quantize_inputs(const Dataset& d, int bits) {
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("quantize_inputs: bits out of [1,8]");
  }
  bitops::UnsignedQuantizer q{bits};
  QuantizedDataset out;
  out.name = d.name;
  out.n_features = d.n_features;
  out.n_classes = d.n_classes;
  out.input_bits = bits;
  out.labels = d.labels;
  out.codes.reserve(d.features.size());
  for (double x : d.features) {
    out.codes.push_back(static_cast<std::uint8_t>(q.quantize(x)));
  }
  return out;
}

}  // namespace pmlp::datasets
