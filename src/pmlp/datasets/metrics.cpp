#include "pmlp/datasets/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pmlp::datasets {

std::vector<double> class_centroids(const Dataset& d) {
  const auto F = static_cast<std::size_t>(d.n_features);
  const auto C = static_cast<std::size_t>(d.n_classes);
  std::vector<double> centroids(C * F, 0.0);
  const auto counts = d.class_counts();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto row = d.row(i);
    const auto y = static_cast<std::size_t>(d.labels[i]);
    for (std::size_t j = 0; j < F; ++j) centroids[y * F + j] += row[j];
  }
  for (std::size_t c = 0; c < C; ++c) {
    const auto n = std::max<std::size_t>(counts[c], 1);
    for (std::size_t j = 0; j < F; ++j) {
      centroids[c * F + j] /= static_cast<double>(n);
    }
  }
  return centroids;
}

DatasetMetrics compute_metrics(const Dataset& d) {
  DatasetMetrics m;
  const auto F = static_cast<std::size_t>(d.n_features);
  const auto C = static_cast<std::size_t>(d.n_classes);
  const auto counts = d.class_counts();

  m.class_priors.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    m.class_priors[c] =
        static_cast<double>(counts[c]) / static_cast<double>(d.size());
  }

  const auto centroids = class_centroids(d);

  // Nearest-centroid resubstitution accuracy.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto row = d.row(i);
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < C; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < F; ++j) {
        const double delta = row[j] - centroids[c * F + j];
        dist += delta * delta;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (static_cast<int>(best) == d.labels[i]) ++hits;
  }
  m.nearest_centroid_accuracy =
      static_cast<double>(hits) / static_cast<double>(d.size());

  // Fisher scores: between-class variance of means / pooled within var.
  m.fisher_scores.assign(F, 0.0);
  for (std::size_t j = 0; j < F; ++j) {
    double grand_mean = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) grand_mean += d.row(i)[j];
    grand_mean /= static_cast<double>(d.size());

    double between = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const double delta = centroids[c * F + j] - grand_mean;
      between += m.class_priors[c] * delta * delta;
    }
    double within = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const auto y = static_cast<std::size_t>(d.labels[i]);
      const double delta = d.row(i)[j] - centroids[y * F + j];
      within += delta * delta;
    }
    within /= static_cast<double>(d.size());
    m.fisher_scores[j] = within > 1e-12 ? between / within : 0.0;
  }

  auto sorted = m.fisher_scores;
  std::sort(sorted.rbegin(), sorted.rend());
  double total = 0.0, top3 = 0.0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    total += sorted[j];
    if (j < 3) top3 += sorted[j];
  }
  m.top3_signal_share = total > 1e-12 ? top3 / total : 0.0;
  return m;
}

}  // namespace pmlp::datasets
