// Loaders for the real UCI files the paper evaluates on, so the synthetic
// stand-ins can be swapped out when the data is available locally. Each
// loader knows its file's quirks (delimiter, header, label column/offset)
// and produces the same normalized Dataset shape the rest of the pipeline
// consumes. Files are NOT bundled (UCI licensing); pass local paths.
#pragma once

#include <string>

#include "pmlp/datasets/dataset.hpp"

namespace pmlp::datasets {

/// breast-cancer-wisconsin.data: id column dropped, '?' rows skipped,
/// labels {2,4} -> {0,1}, 9 features.
[[nodiscard]] Dataset load_uci_breast_cancer(const std::string& path);

/// Cardiotocography NSP export (CSV with header): 21 features, labels
/// {1,2,3} -> {0,1,2}.
[[nodiscard]] Dataset load_uci_cardio(const std::string& path);

/// pendigits.{tra,tes} (comma separated): 16 features, labels 0-9.
[[nodiscard]] Dataset load_uci_pendigits(const std::string& path);

/// winequality-red.csv / winequality-white.csv: ';' delimited with header,
/// 11 features, quality labels re-indexed to 0..K-1.
[[nodiscard]] Dataset load_uci_wine(const std::string& path,
                                    const std::string& name);

/// Generic dispatcher by Table I dataset name; throws std::runtime_error
/// if the file cannot be read.
[[nodiscard]] Dataset load_uci(const std::string& dataset_name,
                               const std::string& path);

}  // namespace pmlp::datasets
