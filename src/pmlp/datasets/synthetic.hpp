// Deterministic synthetic stand-ins for the paper's five UCI datasets
// (Breast Cancer, Cardiotocography, Pendigits, RedWine, WhiteWine).
//
// The real UCI files are not shipped here, so each generator reproduces the
// *shape* that drives the paper's experiments: feature count, class count,
// class priors and classification difficulty (calibrated so a float MLP with
// the paper's topology lands near the Table I baseline accuracy). Samples are
// drawn from per-class Gaussian mixtures whose inter-class separation is the
// difficulty knob. See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmlp/datasets/dataset.hpp"

namespace pmlp::datasets {

/// Recipe for one synthetic dataset.
struct SyntheticSpec {
  std::string name;
  int n_features = 0;
  int n_classes = 0;
  std::size_t n_samples = 0;
  std::vector<double> class_priors;  ///< sums to ~1; size n_classes
  int clusters_per_class = 1;        ///< Gaussian modes per class
  double separation = 2.0;           ///< inter-class mean distance / sigma
  double noise_sigma = 1.0;          ///< per-dimension Gaussian noise
  /// Fraction of features that carry no class signal (pure noise columns) —
  /// wine-quality-style datasets have many weakly informative features.
  double nuisance_fraction = 0.0;
  /// Exponential decay of per-feature signal: feature j's share of the
  /// class signal scales with exp(-concentration * j). Real UCI tables have
  /// a few dominant columns (which is what lets the paper's GA prune MLPs
  /// down to a handful of wires); 0 = uniform signal.
  double feature_concentration = 0.0;
  std::uint64_t seed = 1;
};

/// Draw a dataset from the spec (deterministic in spec.seed) and min-max
/// normalize it to [0,1].
[[nodiscard]] Dataset generate(const SyntheticSpec& spec);

/// The paper's five benchmark datasets (Table I order) with difficulty
/// calibrated against the reported baseline accuracies.
[[nodiscard]] SyntheticSpec breast_cancer_spec();   // (10,3,2),  acc ~0.98
[[nodiscard]] SyntheticSpec cardio_spec();          // (21,3,3),  acc ~0.88
[[nodiscard]] SyntheticSpec pendigits_spec();       // (16,5,10), acc ~0.94
[[nodiscard]] SyntheticSpec red_wine_spec();        // (11,2,6),  acc ~0.56
[[nodiscard]] SyntheticSpec white_wine_spec();      // (11,4,7),  acc ~0.54

/// All five specs in Table I order.
[[nodiscard]] std::vector<SyntheticSpec> paper_suite();

}  // namespace pmlp::datasets
