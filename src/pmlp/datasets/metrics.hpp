// Dataset diagnostics used to calibrate the synthetic stand-ins against the
// real UCI datasets: class priors, nearest-centroid separability (a cheap
// upper-bound-ish proxy for how well a tiny MLP can do), and per-feature
// signal strength (Fisher-style score) — which determines how far the GA
// can prune before accuracy collapses.
#pragma once

#include <vector>

#include "pmlp/datasets/dataset.hpp"

namespace pmlp::datasets {

struct DatasetMetrics {
  std::vector<double> class_priors;      ///< fraction per class
  double nearest_centroid_accuracy = 0;  ///< resubstitution accuracy
  /// Fisher score per feature: between-class variance of the class means
  /// over the pooled within-class variance. Higher = more informative.
  std::vector<double> fisher_scores;
  /// Fraction of total Fisher mass carried by the top-k features.
  double top3_signal_share = 0.0;
};

[[nodiscard]] DatasetMetrics compute_metrics(const Dataset& d);

/// Per-class feature means (n_classes x n_features, row-major).
[[nodiscard]] std::vector<double> class_centroids(const Dataset& d);

}  // namespace pmlp::datasets
