#include "pmlp/datasets/csv.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pmlp::datasets {

namespace {

std::vector<std::string> split_line(const std::string& line, char delim) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, delim)) cells.push_back(cell);
  return cells;
}

double parse_number(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    // Allow trailing spaces / '\r' only.
    for (std::size_t i = used; i < s.size(); ++i) {
      if (!std::isspace(static_cast<unsigned char>(s[i]))) {
        throw std::invalid_argument("trailing garbage");
      }
    }
    if (!std::isfinite(v)) throw std::invalid_argument("non-finite");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("csv: bad numeric cell '" + s + "' at line " +
                                std::to_string(line_no));
  }
}

}  // namespace

Dataset parse_csv(const std::string& text, const std::string& name,
                  const CsvOptions& opts) {
  Dataset out;
  out.name = name;

  std::stringstream ss(text);
  std::string line;
  std::size_t line_no = 0;
  std::vector<double> raw_labels;
  while (std::getline(ss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (opts.has_header && line_no == 1) continue;
    const auto cells = split_line(line, opts.delimiter);
    if (cells.size() < 2) {
      throw std::invalid_argument("csv: need >=2 columns at line " +
                                  std::to_string(line_no));
    }
    const int width = static_cast<int>(cells.size()) - 1;
    if (out.n_features == 0) {
      out.n_features = width;
    } else if (out.n_features != width) {
      throw std::invalid_argument("csv: ragged row at line " +
                                  std::to_string(line_no));
    }
    for (int j = 0; j < width; ++j) {
      out.features.push_back(
          parse_number(cells[static_cast<std::size_t>(j)], line_no));
    }
    raw_labels.push_back(parse_number(cells.back(), line_no));
  }
  if (raw_labels.empty()) throw std::invalid_argument("csv: no data rows");

  if (opts.reindex_labels) {
    std::map<long, int> remap;
    for (double v : raw_labels) remap.emplace(std::lround(v), 0);
    int next = 0;
    for (auto& [key, idx] : remap) idx = next++;
    for (double v : raw_labels) out.labels.push_back(remap.at(std::lround(v)));
    out.n_classes = next;
  } else {
    long max_label = 0;
    for (double v : raw_labels) {
      const long y = std::lround(v);
      if (y < 0) throw std::invalid_argument("csv: negative label");
      max_label = std::max(max_label, y);
      out.labels.push_back(static_cast<int>(y));
    }
    out.n_classes = static_cast<int>(max_label) + 1;
  }
  out.validate();
  return out;
}

Dataset load_csv(const std::string& path, const CsvOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv: cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto slash = path.find_last_of('/');
  return parse_csv(buf.str(),
                   slash == std::string::npos ? path : path.substr(slash + 1),
                   opts);
}

}  // namespace pmlp::datasets
