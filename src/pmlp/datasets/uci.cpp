#include "pmlp/datasets/uci.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pmlp/datasets/csv.hpp"

namespace pmlp::datasets {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("uci: cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Drop rows containing '?' (missing values in the WBC file).
std::string drop_missing_rows(const std::string& text) {
  std::stringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find('?') == std::string::npos && !line.empty()) {
      out << line << '\n';
    }
  }
  return out.str();
}

/// Remove the first column (sample ids) from every row.
std::string drop_first_column(const std::string& text, char delim) {
  std::stringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find(delim);
    if (pos == std::string::npos) continue;
    out << line.substr(pos + 1) << '\n';
  }
  return out.str();
}

}  // namespace

Dataset load_uci_breast_cancer(const std::string& path) {
  CsvOptions opts;
  opts.delimiter = ',';
  opts.reindex_labels = true;  // {2,4} -> {0,1}
  auto text = drop_first_column(drop_missing_rows(read_file(path)), ',');
  auto d = parse_csv(text, "BreastCancer", opts);
  normalize_min_max(d);
  return d;
}

Dataset load_uci_cardio(const std::string& path) {
  CsvOptions opts;
  opts.delimiter = ',';
  opts.has_header = true;
  opts.reindex_labels = true;  // NSP {1,2,3} -> {0,1,2}
  auto d = parse_csv(read_file(path), "Cardio", opts);
  normalize_min_max(d);
  return d;
}

Dataset load_uci_pendigits(const std::string& path) {
  CsvOptions opts;
  opts.delimiter = ',';
  opts.reindex_labels = false;  // already 0..9
  auto d = parse_csv(read_file(path), "Pendigits", opts);
  normalize_min_max(d);
  return d;
}

Dataset load_uci_wine(const std::string& path, const std::string& name) {
  CsvOptions opts;
  opts.delimiter = ';';
  opts.has_header = true;
  opts.reindex_labels = true;  // quality 3..9 -> 0..K-1
  auto d = parse_csv(read_file(path), name, opts);
  normalize_min_max(d);
  return d;
}

Dataset load_uci(const std::string& dataset_name, const std::string& path) {
  if (dataset_name == "BreastCancer") return load_uci_breast_cancer(path);
  if (dataset_name == "Cardio") return load_uci_cardio(path);
  if (dataset_name == "Pendigits") return load_uci_pendigits(path);
  if (dataset_name == "RedWine") return load_uci_wine(path, "RedWine");
  if (dataset_name == "WhiteWine") return load_uci_wine(path, "WhiteWine");
  throw std::runtime_error("uci: unknown dataset " + dataset_name);
}

}  // namespace pmlp::datasets
