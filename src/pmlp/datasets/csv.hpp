// Minimal CSV ingestion so the real UCI files can be dropped in to replace
// the synthetic stand-ins (see DESIGN.md §2). Format: numeric columns, the
// label in the last column (integer or re-indexed), optional header row.
#pragma once

#include <string>

#include "pmlp/datasets/dataset.hpp"

namespace pmlp::datasets {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;
  /// Re-map arbitrary integer labels (e.g. wine quality 3..8) to 0..K-1.
  bool reindex_labels = true;
};

/// Parse CSV text into a Dataset (label = last column). Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] Dataset parse_csv(const std::string& text, const std::string& name,
                                const CsvOptions& opts = {});

/// Load and parse a CSV file. Throws std::runtime_error if unreadable.
[[nodiscard]] Dataset load_csv(const std::string& path,
                               const CsvOptions& opts = {});

}  // namespace pmlp::datasets
