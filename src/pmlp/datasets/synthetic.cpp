#include "pmlp/datasets/synthetic.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace pmlp::datasets {

Dataset generate(const SyntheticSpec& spec) {
  if (spec.class_priors.size() != static_cast<std::size_t>(spec.n_classes)) {
    throw std::invalid_argument(spec.name + ": priors size != n_classes");
  }
  std::mt19937_64 rng(spec.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  const auto f = static_cast<std::size_t>(spec.n_features);
  const auto n_informative = static_cast<std::size_t>(
      std::lround(static_cast<double>(f) * (1.0 - spec.nuisance_fraction)));

  // Cluster means: each class gets `clusters_per_class` centers placed at
  // distance ~`separation * noise_sigma` from the global origin in random
  // directions, so overlap grows as separation shrinks.
  struct Cluster {
    std::vector<double> mean;
  };
  std::vector<std::vector<Cluster>> clusters(
      static_cast<std::size_t>(spec.n_classes));
  for (auto& per_class : clusters) {
    per_class.resize(static_cast<std::size_t>(spec.clusters_per_class));
    for (auto& cl : per_class) {
      cl.mean.assign(f, 0.0);
      double norm = 0.0;
      for (std::size_t j = 0; j < n_informative; ++j) {
        // Concentrate the class signal in the low-index features.
        const double share =
            std::exp(-spec.feature_concentration * static_cast<double>(j));
        cl.mean[j] = gauss(rng) * share;
        norm += cl.mean[j] * cl.mean[j];
      }
      norm = std::sqrt(std::max(norm, 1e-12));
      const double radius = spec.separation * spec.noise_sigma;
      for (std::size_t j = 0; j < n_informative; ++j) {
        cl.mean[j] *= radius / norm;
      }
      // Nuisance dimensions keep mean 0 for every class: no signal.
    }
  }

  // Per-class cumulative priors for label sampling.
  std::vector<double> cum(spec.class_priors.size());
  double acc = 0.0;
  for (std::size_t c = 0; c < cum.size(); ++c) {
    acc += spec.class_priors[c];
    cum[c] = acc;
  }
  if (acc <= 0.0) throw std::invalid_argument(spec.name + ": priors sum <= 0");

  Dataset out;
  out.name = spec.name;
  out.n_features = spec.n_features;
  out.n_classes = spec.n_classes;
  out.features.reserve(spec.n_samples * f);
  out.labels.reserve(spec.n_samples);

  for (std::size_t i = 0; i < spec.n_samples; ++i) {
    const double u = unif(rng) * acc;
    int y = 0;
    while (y + 1 < spec.n_classes && u > cum[static_cast<std::size_t>(y)]) ++y;
    const auto& per_class = clusters[static_cast<std::size_t>(y)];
    const auto k = static_cast<std::size_t>(
        std::min<double>(unif(rng) * static_cast<double>(per_class.size()),
                         static_cast<double>(per_class.size() - 1)));
    const auto& cl = per_class[k];
    for (std::size_t j = 0; j < f; ++j) {
      out.features.push_back(cl.mean[j] + spec.noise_sigma * gauss(rng));
    }
    out.labels.push_back(y);
  }
  normalize_min_max(out);
  out.validate();
  return out;
}

SyntheticSpec breast_cancer_spec() {
  SyntheticSpec s;
  s.name = "BreastCancer";
  s.n_features = 10;
  s.n_classes = 2;
  s.n_samples = 699;                    // UCI WBC size
  s.class_priors = {0.655, 0.345};      // benign/malignant ratio
  s.clusters_per_class = 2;
  s.separation = 5.6;                   // nearly separable -> ~0.98
  s.noise_sigma = 1.0;
  s.nuisance_fraction = 0.0;
  s.feature_concentration = 0.45;
  s.seed = 0xBC01;
  return s;
}

SyntheticSpec cardio_spec() {
  SyntheticSpec s;
  s.name = "Cardio";
  s.n_features = 21;
  s.n_classes = 3;
  s.n_samples = 2126;                   // UCI CTG size
  s.class_priors = {0.78, 0.14, 0.08};  // NSP distribution
  s.clusters_per_class = 3;
  s.separation = 3.2;
  s.noise_sigma = 1.0;
  s.nuisance_fraction = 0.15;
  s.feature_concentration = 0.25;
  s.seed = 0xCA02;
  return s;
}

SyntheticSpec pendigits_spec() {
  SyntheticSpec s;
  s.name = "Pendigits";
  s.n_features = 16;
  s.n_classes = 10;
  s.n_samples = 3498;                   // scaled-down UCI pendigits
  s.class_priors.assign(10, 0.1);
  // Single well-separated mode per digit: the (16,5,10) topology of
  // Table I reaches ~0.94 on real pendigits, which a 5-hidden-unit net
  // only matches if the classes are unimodal.
  s.clusters_per_class = 1;
  s.separation = 5.6;
  s.noise_sigma = 1.0;
  s.nuisance_fraction = 0.0;
  s.feature_concentration = 0.15;
  s.seed = 0x9D03;
  return s;
}

SyntheticSpec red_wine_spec() {
  SyntheticSpec s;
  s.name = "RedWine";
  s.n_features = 11;
  s.n_classes = 6;                      // qualities 3..8
  s.n_samples = 1599;
  s.class_priors = {0.006, 0.033, 0.426, 0.399, 0.124, 0.012};
  s.clusters_per_class = 2;
  s.separation = 0.95;                  // heavy overlap -> ~0.56
  s.noise_sigma = 1.0;
  s.nuisance_fraction = 0.35;
  s.feature_concentration = 0.40;
  s.seed = 0x5704;
  return s;
}

SyntheticSpec white_wine_spec() {
  SyntheticSpec s;
  s.name = "WhiteWine";
  s.n_features = 11;
  s.n_classes = 7;                      // qualities 3..9
  s.n_samples = 2449;                   // scaled-down UCI white wine
  s.class_priors = {0.004, 0.033, 0.297, 0.449, 0.179, 0.036, 0.002};
  s.clusters_per_class = 2;
  s.separation = 0.85;                  // heaviest overlap -> ~0.54
  s.noise_sigma = 1.0;
  s.nuisance_fraction = 0.35;
  s.feature_concentration = 0.40;
  s.seed = 0x5705;
  return s;
}

std::vector<SyntheticSpec> paper_suite() {
  return {breast_cancer_spec(), cardio_spec(), pendigits_spec(),
          red_wine_spec(), white_wine_spec()};
}

}  // namespace pmlp::datasets
