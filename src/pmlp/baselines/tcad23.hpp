// Reimplementation of the TCAD'23 comparator [7] (Armeniakos et al.,
// "Model-to-Circuit Cross-Approximation for Printed Machine Learning
// Classifiers"): the cross-layer approximation of [6] (coefficient
// replacement + gate-level pruning, modeled here as the TC'23-style
// popcount/truncation approximation) combined with Voltage Over-Scaling —
// the supply is lowered below 0.8 V, trading timing slack for power; when
// the critical path no longer fits the clock, timing errors corrupt the
// accumulator MSBs (modeled as seeded random upsets during evaluation).
#pragma once

#include <cstdint>

#include "pmlp/baselines/tc23.hpp"

namespace pmlp::baselines {

struct Tcad23Config {
  Tc23Config approx;          ///< underlying model-level approximation
  double vos_voltage = 0.8;   ///< operating point (paper: below 0.8 V)
  double clock_ms = 200.0;    ///< synthesis clock (250 for Pendigits)
  /// Timing-upset probability per neuron per inference when the scaled
  /// critical path exceeds the clock, per microsecond of deficit.
  double upset_per_us_deficit = 0.05;
  std::uint64_t error_seed = 99;
};

struct Tcad23Design {
  Tc23Design approx;          ///< chosen model-level approximation
  double voltage = 0.8;
  double power_mw = 0.0;      ///< at the VOS operating point
  double area_cm2 = 0.0;
  double upset_probability = 0.0;  ///< derived timing-error rate
  double test_accuracy = 0.0;      ///< with VOS error injection
};

/// Evaluate a design's accuracy under VOS timing-error injection.
/// With `upset_probability` per neuron, the neuron's accumulator is
/// corrupted by flipping its most significant carry-chain bit — the
/// longest (and thus first-failing) timing path.
[[nodiscard]] double vos_accuracy(const netlist::BespokeMlpDesc& desc,
                                  const datasets::QuantizedDataset& d,
                                  int act_bits, double upset_probability,
                                  std::uint64_t seed);

/// Full TCAD'23 flow: TC'23-style sweep at nominal voltage, then re-price
/// and re-score at the VOS operating point.
[[nodiscard]] Tcad23Design run_tcad23(const mlp::QuantMlp& baseline,
                                      const datasets::QuantizedDataset& train,
                                      const datasets::QuantizedDataset& test,
                                      const hwmodel::CellLibrary& lib_1v,
                                      const Tcad23Config& cfg = {});

}  // namespace pmlp::baselines
