#include "pmlp/baselines/tcad23.hpp"

#include <algorithm>
#include <random>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/netlist/opt.hpp"

namespace pmlp::baselines {

double vos_accuracy(const netlist::BespokeMlpDesc& desc,
                    const datasets::QuantizedDataset& d, int act_bits,
                    double upset_probability, std::uint64_t seed) {
  if (d.size() == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution upset(std::clamp(upset_probability, 0.0, 1.0));
  const std::int64_t act_max = (std::int64_t{1} << act_bits) - 1;

  std::size_t correct = 0;
  for (std::size_t s = 0; s < d.size(); ++s) {
    const auto x = d.row(s);
    std::vector<std::int64_t> act(x.begin(), x.end());
    for (const auto& layer : desc.layers) {
      std::vector<std::int64_t> next(static_cast<std::size_t>(layer.n_out));
      for (int o = 0; o < layer.n_out; ++o) {
        const auto& neuron = layer.neurons[static_cast<std::size_t>(o)];
        std::int64_t acc = neuron.bias;
        for (const auto& c : neuron.conns) {
          const auto xi = static_cast<std::uint32_t>(
              act[static_cast<std::size_t>(c.input_index)]);
          const std::int64_t term =
              static_cast<std::int64_t>(xi & c.mask) << c.shift;
          acc += c.sign < 0 ? -term : term;
        }
        if (upset_probability > 0.0 && upset(rng)) {
          // The longest carry chain fails first: flip the accumulator's
          // top magnitude bit.
          const std::int64_t mag = acc < 0 ? -acc : acc;
          const int top = bitops::msb_index(static_cast<std::uint64_t>(mag | 1));
          acc ^= std::int64_t{1} << top;
        }
        if (layer.qrelu) {
          acc = acc <= 0 ? 0 : std::min(acc >> layer.qrelu_shift, act_max);
        }
        next[static_cast<std::size_t>(o)] = acc;
      }
      act = std::move(next);
    }
    const int pred = static_cast<int>(std::distance(
        act.begin(), std::max_element(act.begin(), act.end())));
    if (pred == d.labels[s]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

Tcad23Design run_tcad23(const mlp::QuantMlp& baseline,
                        const datasets::QuantizedDataset& train,
                        const datasets::QuantizedDataset& test,
                        const hwmodel::CellLibrary& lib_1v,
                        const Tcad23Config& cfg) {
  Tcad23Design out;
  out.approx = run_tc23(baseline, train, test, lib_1v, cfg.approx);
  out.voltage = cfg.vos_voltage;

  const auto circuit = netlist::build_bespoke_mlp(out.approx.desc);
  const auto lib_vos = lib_1v.at_voltage(cfg.vos_voltage);
  const auto cost = netlist::optimize(circuit.nl).cost(lib_vos);
  out.power_mw = cost.power_mw();
  out.area_cm2 = cost.area_cm2();

  // Timing: if the scaled critical path exceeds the clock, upsets appear
  // proportionally to the deficit.
  const double deficit_us =
      std::max(0.0, cost.critical_delay_us - cfg.clock_ms * 1000.0);
  out.upset_probability =
      std::min(1.0, deficit_us * cfg.upset_per_us_deficit);
  out.test_accuracy =
      vos_accuracy(out.approx.desc, test, baseline.activation_bits(),
                   out.upset_probability, cfg.error_seed);
  return out;
}

}  // namespace pmlp::baselines
