// Reimplementation of the TC'23 comparator [5] (Armeniakos et al., "Co-design
// of Approximate Multilayer Perceptron for Ultra-Resource Constrained Printed
// Circuits"): *post-training* approximation of a bespoke MLP by
//   (a) replacing each fixed-point coefficient with a nearby "area-efficient"
//       value of bounded popcount (fewer partial products), and
//   (b) truncating the accumulation (dropping low adder columns).
// A config sweep picks the cheapest design within the 5% accuracy-loss bound,
// mirroring the paper's post-training design-space exploration.
#pragma once

#include <cstdint>

#include "pmlp/datasets/dataset.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/mlp/quant_mlp.hpp"
#include "pmlp/netlist/builders.hpp"

namespace pmlp::baselines {

struct Tc23Config {
  int max_popcount_min = 1;  ///< sweep range for surviving weight bits
  int max_popcount_max = 3;
  int truncation_min = 0;    ///< sweep range for dropped LSB columns
  int truncation_max = 4;
  double max_accuracy_loss = 0.05;
};

/// One approximate design produced by the sweep.
struct Tc23Design {
  int max_popcount = 0;
  int truncation = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  netlist::BespokeMlpDesc desc;
  hwmodel::CircuitCost cost;
};

/// Snap |code| to the nearest value with at most `max_popcount` set bits
/// (sign preserved). Exposed for unit tests.
[[nodiscard]] std::int32_t snap_to_popcount(std::int32_t code, int max_popcount);

/// Apply (popcount, truncation) to the baseline and build its netlist desc.
[[nodiscard]] netlist::BespokeMlpDesc approximate_quant_mlp(
    const mlp::QuantMlp& baseline, int max_popcount, int truncation);

/// Behavioural inference of an approximated design (mask/shift semantics
/// identical to the netlist). Returns predicted class.
[[nodiscard]] int predict_desc(const netlist::BespokeMlpDesc& desc,
                               std::span<const std::uint8_t> x, int act_bits);

/// Full TC'23 flow: sweep configs, keep designs within the loss bound,
/// return the minimum-area one (by netlist cost at `lib`), or the most
/// accurate design if none meets the bound.
[[nodiscard]] Tc23Design run_tc23(const mlp::QuantMlp& baseline,
                                  const datasets::QuantizedDataset& train,
                                  const datasets::QuantizedDataset& test,
                                  const hwmodel::CellLibrary& lib,
                                  const Tc23Config& cfg = {});

}  // namespace pmlp::baselines
