// Reimplementation of the DATE'21 comparator [10] (Weller et al., "Printed
// Stochastic Computing Neural Networks"): a bipolar stochastic-computing MLP
// with LFSR+comparator stochastic number generators, XNOR multipliers,
// MUX-tree scaled adders, Stanh FSM activations, and output up/down
// counters; bitstream length 1024 (one inference therefore takes 220-230 ms
// at the paper's SC clock). Accuracy is obtained by bit-true stream
// simulation; cost by a structural gate inventory priced on the EGFET
// library. The hallmark result reproduced here: tiny area/power, but a
// large accuracy collapse on multi-class datasets.
#pragma once

#include <cstdint>

#include "pmlp/datasets/dataset.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/mlp/float_mlp.hpp"

namespace pmlp::baselines {

struct ScConfig {
  int stream_length = 1024;  ///< paper [10]: 1024-bit streams
  int lfsr_width = 10;       ///< SNG resolution (period 1023)
  /// Minimum Stanh FSM half-state count K (2K states total). Per layer the
  /// effective K is max(stanh_states, 2*(fan_in+1)) so the FSM gain
  /// (~tanh(K/2 * v)) compensates the 1/(fan_in+1) attenuation of the
  /// MUX-tree scaled addition, as in [10].
  int stanh_states = 8;
  std::uint64_t seed = 0x5C;
};

/// A stochastic-computing MLP built from a float network whose weights are
/// clamped to the bipolar [-1, 1] range.
class ScMlp {
 public:
  ScMlp(const mlp::FloatMlp& net, const ScConfig& cfg);

  /// Bit-true stochastic inference on a quantized sample.
  [[nodiscard]] int predict(std::span<const std::uint8_t> x,
                            int input_bits) const;

  /// Accuracy over (at most `max_samples` of) the dataset.
  [[nodiscard]] double accuracy(const datasets::QuantizedDataset& d,
                                std::size_t max_samples = SIZE_MAX) const;

  /// Structural gate inventory priced on `lib` (SNGs, XNORs, MUX trees,
  /// Stanh FSMs, output counters).
  [[nodiscard]] hwmodel::CircuitCost cost(const hwmodel::CellLibrary& lib) const;

  [[nodiscard]] const ScConfig& config() const { return cfg_; }

 private:
  struct Layer {
    int n_in = 0;
    int n_out = 0;
    std::vector<double> weights;  ///< clamped to [-1, 1]
    std::vector<double> biases;   ///< clamped to [-1, 1]
  };

  ScConfig cfg_;
  std::vector<Layer> layers_;
};

}  // namespace pmlp::baselines
