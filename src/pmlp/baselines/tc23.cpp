#include "pmlp/baselines/tc23.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/opt.hpp"

namespace pmlp::baselines {

namespace {

/// Keep only the `p` most significant set bits of `mag`.
std::uint32_t keep_top_bits(std::uint32_t mag, int p) {
  std::uint32_t out = 0;
  for (int kept = 0; kept < p && mag != 0; ++kept) {
    const int msb = bitops::msb_index(mag);
    out |= std::uint32_t{1} << msb;
    mag = static_cast<std::uint32_t>(
        bitops::set_bit(mag, msb, false));
  }
  return out;
}

}  // namespace

std::int32_t snap_to_popcount(std::int32_t code, int max_popcount) {
  if (max_popcount < 1) throw std::invalid_argument("snap: popcount < 1");
  if (code == 0) return 0;
  const auto mag = static_cast<std::uint32_t>(code < 0 ? -code : code);
  if (bitops::popcount(mag) <= max_popcount) return code;

  const std::uint32_t down = keep_top_bits(mag, max_popcount);
  // Rounding up at the lowest kept bit ripples carries upward, so the
  // result never gains set bits beyond the budget.
  const std::uint32_t up =
      down + (std::uint32_t{1} << std::countr_zero(down));
  const auto d_down = static_cast<std::int64_t>(mag) - down;
  const auto d_up = static_cast<std::int64_t>(up) - mag;
  const std::uint32_t best = d_up < d_down ? up : down;
  return code < 0 ? -static_cast<std::int32_t>(best)
                  : static_cast<std::int32_t>(best);
}

netlist::BespokeMlpDesc approximate_quant_mlp(const mlp::QuantMlp& baseline,
                                              int max_popcount,
                                              int truncation) {
  netlist::BespokeMlpDesc desc;
  desc.name = "tc23_p" + std::to_string(max_popcount) + "_t" +
              std::to_string(truncation);
  for (std::size_t l = 0; l < baseline.layers().size(); ++l) {
    const auto& ql = baseline.layers()[l];
    netlist::LayerDesc ld;
    ld.n_in = ql.n_in;
    ld.n_out = ql.n_out;
    ld.input_bits = ql.input_bits;
    ld.qrelu = l + 1 < baseline.layers().size();
    ld.qrelu_shift = ql.qrelu_shift;
    ld.act_bits = baseline.activation_bits();
    const auto full_mask =
        static_cast<std::uint32_t>(bitops::low_mask(ql.input_bits));
    for (int o = 0; o < ql.n_out; ++o) {
      netlist::NeuronDesc nd;
      // Accumulator columns below `truncation` are removed, so the bias
      // constant loses those bits as well.
      const std::int64_t b = ql.biases[static_cast<std::size_t>(o)];
      nd.bias = b < 0 ? -((-b >> truncation) << truncation)
                      : ((b >> truncation) << truncation);
      for (int i = 0; i < ql.n_in; ++i) {
        const std::int32_t w =
            snap_to_popcount(ql.weight(o, i), max_popcount);
        if (w == 0) continue;
        const auto mag = static_cast<std::uint64_t>(w < 0 ? -w : w);
        for (int p : bitops::set_bit_positions(mag)) {
          // Partial product occupies columns [p, p + input_bits); dropping
          // columns below `truncation` masks the low activation bits.
          std::uint32_t mask = full_mask;
          if (truncation > p) {
            mask &= ~static_cast<std::uint32_t>(
                bitops::low_mask(truncation - p));
          }
          if (mask == 0) continue;
          nd.conns.push_back(netlist::ConnDesc{i, mask, p, w < 0 ? -1 : +1});
        }
      }
      ld.neurons.push_back(std::move(nd));
    }
    desc.layers.push_back(std::move(ld));
  }
  return desc;
}

int predict_desc(const netlist::BespokeMlpDesc& desc,
                 std::span<const std::uint8_t> x, int act_bits) {
  std::vector<std::int64_t> act(x.begin(), x.end());
  const std::int64_t act_max = (std::int64_t{1} << act_bits) - 1;
  for (const auto& layer : desc.layers) {
    std::vector<std::int64_t> next(static_cast<std::size_t>(layer.n_out));
    for (int o = 0; o < layer.n_out; ++o) {
      const auto& neuron = layer.neurons[static_cast<std::size_t>(o)];
      std::int64_t acc = neuron.bias;
      for (const auto& c : neuron.conns) {
        const auto xi = static_cast<std::uint32_t>(
            act[static_cast<std::size_t>(c.input_index)]);
        const std::int64_t term =
            static_cast<std::int64_t>(xi & c.mask) << c.shift;
        acc += c.sign < 0 ? -term : term;
      }
      if (layer.qrelu) {
        acc = acc <= 0 ? 0 : std::min(acc >> layer.qrelu_shift, act_max);
      }
      next[static_cast<std::size_t>(o)] = acc;
    }
    act = std::move(next);
  }
  return static_cast<int>(std::distance(
      act.begin(), std::max_element(act.begin(), act.end())));
}

namespace {

double desc_accuracy(const netlist::BespokeMlpDesc& desc,
                     const datasets::QuantizedDataset& d, int act_bits) {
  if (d.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (predict_desc(desc, d.row(i), act_bits) == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace

Tc23Design run_tc23(const mlp::QuantMlp& baseline,
                    const datasets::QuantizedDataset& train,
                    const datasets::QuantizedDataset& test,
                    const hwmodel::CellLibrary& lib, const Tc23Config& cfg) {
  const double baseline_acc = mlp::accuracy(baseline, train);
  const double floor_acc = baseline_acc - cfg.max_accuracy_loss;

  Tc23Design best_feasible;
  Tc23Design best_any;
  double best_feasible_area = std::numeric_limits<double>::infinity();
  double best_any_acc = -1.0;
  bool have_feasible = false;

  for (int p = cfg.max_popcount_min; p <= cfg.max_popcount_max; ++p) {
    for (int t = cfg.truncation_min; t <= cfg.truncation_max; ++t) {
      Tc23Design d;
      d.max_popcount = p;
      d.truncation = t;
      d.desc = approximate_quant_mlp(baseline, p, t);
      d.train_accuracy =
          desc_accuracy(d.desc, train, baseline.activation_bits());
      const auto circuit = netlist::build_bespoke_mlp(d.desc);
      d.cost = netlist::optimize(circuit.nl).cost(lib);

      if (d.train_accuracy >= floor_acc &&
          d.cost.area_mm2 < best_feasible_area) {
        best_feasible_area = d.cost.area_mm2;
        best_feasible = d;
        have_feasible = true;
      }
      if (d.train_accuracy > best_any_acc) {
        best_any_acc = d.train_accuracy;
        best_any = d;
      }
    }
  }

  Tc23Design chosen = have_feasible ? best_feasible : best_any;
  chosen.test_accuracy =
      desc_accuracy(chosen.desc, test, baseline.activation_bits());
  return chosen;
}

}  // namespace pmlp::baselines
