#include "pmlp/baselines/date21_sc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/bitops/lfsr.hpp"

namespace pmlp::baselines {

namespace {

/// Bipolar value -> comparator threshold for a `width`-bit SNG.
std::uint32_t bipolar_threshold(double v, int width) {
  const double p = std::clamp((v + 1.0) / 2.0, 0.0, 1.0);
  const auto period = static_cast<double>((1u << width) - 1u);
  return static_cast<std::uint32_t>(std::lround(p * period));
}

}  // namespace

ScMlp::ScMlp(const mlp::FloatMlp& net, const ScConfig& cfg) : cfg_(cfg) {
  if (cfg.stream_length < 8) {
    throw std::invalid_argument("ScMlp: stream too short");
  }
  for (const auto& fl : net.layers()) {
    Layer layer;
    layer.n_in = fl.n_in;
    layer.n_out = fl.n_out;
    // SC encodes values in [-1, 1]: normalize each layer by its largest
    // coefficient magnitude (uniform positive scaling preserves the layer's
    // decision structure), as in stochastic NN practice. The residual
    // precision/variance limits are what cost [10] its accuracy.
    double scale = 1.0;
    for (double w : fl.weights) scale = std::max(scale, std::abs(w));
    for (double b : fl.biases) scale = std::max(scale, std::abs(b));
    layer.weights.reserve(fl.weights.size());
    for (double w : fl.weights) layer.weights.push_back(w / scale);
    for (double b : fl.biases) layer.biases.push_back(b / scale);
    layers_.push_back(std::move(layer));
  }
}

int ScMlp::predict(std::span<const std::uint8_t> x, int input_bits) const {
  const int W = cfg_.lfsr_width;
  const int L = cfg_.stream_length;
  auto stanh_k = [this](int fan_in) {
    return std::max(cfg_.stanh_states, 2 * (fan_in + 1));
  };

  // Distinct-seed LFSRs give time-shifted m-sequences, the standard cheap
  // decorrelation for SC (simulated bit-true here; the hardware inventory
  // in cost() shares generators and specializes constant comparators).
  std::uint32_t seed = static_cast<std::uint32_t>(cfg_.seed) | 1u;
  auto next_seed = [&seed]() {
    seed = seed * 2654435761u + 12345u;
    return (seed >> 8) | 1u;
  };

  // Input SNGs (shared across neurons of layer 0).
  std::vector<bitops::StochasticNumberGenerator> input_sngs;
  input_sngs.reserve(x.size());
  const double in_max = static_cast<double>((1u << input_bits) - 1u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = static_cast<double>(x[i]) / in_max;  // unipolar [0,1]
    input_sngs.emplace_back(W, bipolar_threshold(v, W), next_seed());
  }

  // Weight/bias SNGs and per-layer select LFSRs + Stanh states.
  struct LayerState {
    std::vector<bitops::StochasticNumberGenerator> weight_sngs;
    std::vector<bitops::StochasticNumberGenerator> bias_sngs;
    bitops::Lfsr select;
    std::vector<int> stanh;  ///< per neuron, in [0, 2K)
  };
  std::vector<LayerState> states;
  states.reserve(layers_.size());
  for (const auto& layer : layers_) {
    LayerState st{{}, {}, bitops::Lfsr(W, next_seed()), {}};
    st.weight_sngs.reserve(layer.weights.size());
    for (double w : layer.weights) {
      st.weight_sngs.emplace_back(W, bipolar_threshold(w, W), next_seed());
    }
    st.bias_sngs.reserve(layer.biases.size());
    for (double b : layer.biases) {
      st.bias_sngs.emplace_back(W, bipolar_threshold(b, W), next_seed());
    }
    st.stanh.assign(static_cast<std::size_t>(layer.n_out),
                    stanh_k(layer.n_in));
    states.push_back(std::move(st));
  }

  std::vector<long> counters(
      static_cast<std::size_t>(layers_.back().n_out), 0);

  std::vector<char> bits_in;
  std::vector<char> bits_out;
  for (int t = 0; t < L; ++t) {
    bits_in.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      bits_in[i] = input_sngs[i].next_bit() ? 1 : 0;
    }
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const Layer& layer = layers_[l];
      LayerState& st = states[l];
      const bool is_last = l + 1 == layers_.size();
      bits_out.assign(static_cast<std::size_t>(layer.n_out), 0);

      const std::uint32_t sel_state = st.select.next();
      const auto n_summands = static_cast<std::uint32_t>(layer.n_in + 1);
      for (int o = 0; o < layer.n_out; ++o) {
        // Scaled addition: a MUX picks one of (n_in + 1) product/bias
        // streams uniformly; only the selected XNOR matters this cycle.
        const std::uint32_t pick =
            (sel_state + static_cast<std::uint32_t>(o) * 7919u) % n_summands;
        char bit;
        // Every SNG must advance each cycle to stay stream-consistent.
        char selected = 0;
        for (int i = 0; i < layer.n_in; ++i) {
          const bool wb =
              st.weight_sngs[static_cast<std::size_t>(o) *
                                 static_cast<std::size_t>(layer.n_in) +
                             static_cast<std::size_t>(i)]
                  .next_bit();
          const char prod =
              (bits_in[static_cast<std::size_t>(i)] != 0) == wb ? 1 : 0;
          if (static_cast<std::uint32_t>(i) == pick) selected = prod;
        }
        const bool bias_bit =
            st.bias_sngs[static_cast<std::size_t>(o)].next_bit();
        if (pick == static_cast<std::uint32_t>(layer.n_in)) {
          selected = bias_bit ? 1 : 0;
        }
        bit = selected;

        if (!is_last) {
          // Stanh FSM: saturating up/down counter, output = MSB.
          const int K = stanh_k(layer.n_in);
          int& s = st.stanh[static_cast<std::size_t>(o)];
          s = std::clamp(s + (bit != 0 ? 1 : -1), 0, 2 * K - 1);
          bits_out[static_cast<std::size_t>(o)] = s >= K ? 1 : 0;
        } else {
          bits_out[static_cast<std::size_t>(o)] = bit;
          counters[static_cast<std::size_t>(o)] += bit != 0 ? 1 : 0;
        }
      }
      bits_in = bits_out;
    }
  }
  return static_cast<int>(std::distance(
      counters.begin(), std::max_element(counters.begin(), counters.end())));
}

double ScMlp::accuracy(const datasets::QuantizedDataset& d,
                       std::size_t max_samples) const {
  const std::size_t n = std::min(d.size(), max_samples);
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (predict(d.row(i), d.input_bits) == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

hwmodel::CircuitCost ScMlp::cost(const hwmodel::CellLibrary& lib) const {
  using hwmodel::CellType;
  std::array<long, hwmodel::kNumCellTypes> counts{};
  auto add = [&counts](CellType t, long n) {
    counts[static_cast<std::size_t>(t)] += n;
  };
  const long W = cfg_.lfsr_width;

  // Shared stream generators: one LFSR per layer for weights + one for the
  // MUX selects + one for the inputs (W DFFs + 3 XOR taps each).
  const long n_lfsr = static_cast<long>(layers_.size()) * 2 + 1;
  add(CellType::kDff, n_lfsr * W);
  add(CellType::kXor2, n_lfsr * 3);

  // Input SNG comparators: full W-bit magnitude comparators.
  const long n_inputs = layers_.front().n_in;
  add(CellType::kXnor2, n_inputs * W);
  add(CellType::kAnd2, n_inputs * W);
  add(CellType::kOr2, n_inputs * W);

  for (const auto& layer : layers_) {
    const long conns = static_cast<long>(layer.n_in) * layer.n_out;
    // Constant-threshold comparators fold to ~W/2 AND + ~W/2 OR each.
    add(CellType::kAnd2, (conns + layer.n_out) * (W / 2));
    add(CellType::kOr2, (conns + layer.n_out) * (W / 2));
    // XNOR multiplier per connection.
    add(CellType::kXnor2, conns);
    // MUX tree per neuron over (n_in + 1) streams.
    add(CellType::kMux2, static_cast<long>(layer.n_in) * layer.n_out);
    // Stanh FSM per hidden neuron: saturating counter over 2K states.
    if (&layer != &layers_.back()) {
      const int k = std::max(cfg_.stanh_states, 2 * (layer.n_in + 1));
      const long state_bits = bitops::bit_width_u(
          static_cast<std::uint64_t>(2 * k - 1));
      add(CellType::kDff, state_bits * layer.n_out);
      add(CellType::kHalfAdder, state_bits * layer.n_out);  // +/-1 counter
      add(CellType::kAnd2, 4L * layer.n_out);
      add(CellType::kOr2, 2L * layer.n_out);
    }
  }
  // Output counters: 11-bit (log2(1024) + 1) ripple counters per class,
  // plus an 11-bit comparator chain for the argmax.
  const long n_out = layers_.back().n_out;
  add(CellType::kDff, 11L * n_out);
  add(CellType::kHalfAdder, 11L * n_out);
  add(CellType::kXnor2, 11L * (n_out - 1));
  add(CellType::kAnd2, 11L * (n_out - 1));
  add(CellType::kOr2, 11L * (n_out - 1));
  add(CellType::kMux2, 15L * (n_out - 1));

  hwmodel::CircuitCost cost;
  for (std::size_t t = 0; t < hwmodel::kNumCellTypes; ++t) {
    const auto& p = lib.cell(static_cast<CellType>(t));
    cost.area_mm2 += p.area_mm2 * static_cast<double>(counts[t]);
    cost.power_uw += p.power_uw * static_cast<double>(counts[t]);
    cost.cell_count += counts[t];
  }
  // Per-cycle combinational path: comparator -> XNOR -> MUX -> FSM.
  cost.critical_delay_us = lib.cell(CellType::kXnor2).delay_us * 2 +
                           lib.cell(CellType::kMux2).delay_us +
                           lib.cell(CellType::kDff).delay_us +
                           lib.cell(CellType::kAnd2).delay_us * 4;
  return cost;
}

}  // namespace pmlp::baselines
