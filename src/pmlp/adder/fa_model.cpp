#include "pmlp/adder/fa_model.hpp"

#include <algorithm>
#include <numeric>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::adder {

int ReductionStage::total() const {
  return std::accumulate(fa_per_column.begin(), fa_per_column.end(), 0);
}

AdderCost reduce_columns(std::vector<int> heights) {
  AdderCost cost;
  cost.acc_width = static_cast<int>(heights.size());

  auto needs_reduction = [](const std::vector<int>& h) {
    return std::any_of(h.begin(), h.end(), [](int v) { return v > 2; });
  };

  while (needs_reduction(heights)) {
    ReductionStage stage;
    stage.fa_per_column.assign(heights.size(), 0);
    std::vector<int> next(heights.size(), 0);
    for (std::size_t c = 0; c < heights.size(); ++c) {
      const int h = heights[c];
      const int fa = h / 3;  // each FA eats 3 bits, emits 1 sum + 1 carry
      stage.fa_per_column[c] = fa;
      next[c] += h - 3 * fa + fa;  // untouched bits + sum bits
      if (fa > 0) {
        if (c + 1 < heights.size()) {
          next[c + 1] += fa;  // carries
        }
        // Carries out of the MSB column wrap nowhere: at accumulator width W
        // the arithmetic is mod 2^W, so they are dropped (two's complement).
      }
    }
    cost.fa_reduction += stage.total();
    cost.schedule.push_back(std::move(stage));
    heights = std::move(next);
    ++cost.stages;
  }

  // Final carry-propagate adder over the remaining <=2 rows: one FA per
  // column from the least-significant column still holding two bits up to
  // the accumulator MSB (a ripple chain must propagate that far).
  int first_two = -1;
  int last_any = -1;
  for (std::size_t c = 0; c < heights.size(); ++c) {
    if (heights[c] == 2 && first_two < 0) first_two = static_cast<int>(c);
    if (heights[c] > 0) last_any = static_cast<int>(c);
  }
  if (first_two >= 0) {
    cost.fa_cpa = last_any - first_two + 1;
  }
  cost.final_heights = std::move(heights);
  return cost;
}

AdderCost estimate_adder(const NeuronAdderSpec& spec) {
  const NeuronStructure s = analyze_neuron(spec);
  AdderCost cost = reduce_columns(s.total_heights());
  cost.acc_width = s.acc_width;
  cost.folded_constant = s.folded_constant;
  return cost;
}

long total_fa_count(const std::vector<NeuronAdderSpec>& neurons) {
  long total = 0;
  for (const auto& n : neurons) total += estimate_adder(n).total_fa();
  return total;
}

}  // namespace pmlp::adder
