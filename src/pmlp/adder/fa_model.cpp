#include "pmlp/adder/fa_model.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::adder {

int ReductionStage::total() const {
  return std::accumulate(fa_per_column.begin(), fa_per_column.end(), 0);
}

AdderCost reduce_columns(std::vector<int> heights) {
  AdderCost cost;
  cost.acc_width = static_cast<int>(heights.size());

  auto needs_reduction = [](const std::vector<int>& h) {
    return std::any_of(h.begin(), h.end(), [](int v) { return v > 2; });
  };

  while (needs_reduction(heights)) {
    ReductionStage stage;
    stage.fa_per_column.assign(heights.size(), 0);
    std::vector<int> next(heights.size(), 0);
    for (std::size_t c = 0; c < heights.size(); ++c) {
      const int h = heights[c];
      const int fa = h / 3;  // each FA eats 3 bits, emits 1 sum + 1 carry
      stage.fa_per_column[c] = fa;
      next[c] += h - 3 * fa + fa;  // untouched bits + sum bits
      if (fa > 0) {
        if (c + 1 < heights.size()) {
          next[c + 1] += fa;  // carries
        }
        // Carries out of the MSB column wrap nowhere: at accumulator width W
        // the arithmetic is mod 2^W, so they are dropped (two's complement).
      }
    }
    cost.fa_reduction += stage.total();
    cost.schedule.push_back(std::move(stage));
    heights = std::move(next);
    ++cost.stages;
  }

  // Final carry-propagate adder over the remaining <=2 rows: one FA per
  // column from the least-significant column still holding two bits up to
  // the accumulator MSB (a ripple chain must propagate that far).
  int first_two = -1;
  int last_any = -1;
  for (std::size_t c = 0; c < heights.size(); ++c) {
    if (heights[c] == 2 && first_two < 0) first_two = static_cast<int>(c);
    if (heights[c] > 0) last_any = static_cast<int>(c);
  }
  if (first_two >= 0) {
    cost.fa_cpa = last_any - first_two + 1;
  }
  cost.final_heights = std::move(heights);
  return cost;
}

AdderCost estimate_adder(const NeuronAdderSpec& spec) {
  const NeuronStructure s = analyze_neuron(spec);
  AdderCost cost = reduce_columns(s.total_heights());
  cost.acc_width = s.acc_width;
  cost.folded_constant = s.folded_constant;
  return cost;
}

int estimate_total_fa(const NeuronAdderSpec& spec) {
  // Range analysis, exactly as analyze_neuron().
  std::int64_t pos_max = 0;
  std::int64_t neg_max = 0;
  for (const auto& s : spec.summands) {
    if (s.sign >= 0) {
      pos_max += s.max_value();
    } else {
      neg_max += s.max_value();
    }
  }
  const std::int64_t max_sum = pos_max + spec.bias;
  const std::int64_t min_sum = -neg_max + spec.bias;
  const int W = std::max(
      {bitops::bit_width_signed(max_sum), bitops::bit_width_signed(min_sum),
       2});
  if (W > 62) {
    throw std::invalid_argument("analyze_neuron: accumulator width > 62");
  }
  const std::uint64_t wmask = bitops::low_mask(W);

  // Column heights (variable wires + folded-constant ones), stack-resident.
  int heights[64] = {};
  std::uint64_t constant = bitops::to_twos_complement(spec.bias, W);
  for (const auto& s : spec.summands) {
    std::uint64_t occ = s.occupancy() & wmask;
    if (s.sign < 0 && !s.is_pruned()) {
      constant = (constant + (~occ & wmask) + 1) & wmask;
    }
    while (occ != 0) {
      heights[std::countr_zero(occ)] += 1;
      occ &= occ - 1;
    }
  }
  for (std::uint64_t k = constant; k != 0; k &= k - 1) {
    heights[std::countr_zero(k)] += 1;
  }

  // 3:2 reduction rounds, same placement rule as reduce_columns() but
  // without recording the schedule. Carries out of the MSB column drop
  // (mod 2^W arithmetic).
  int total = 0;
  for (;;) {
    bool needs_reduction = false;
    for (int c = 0; c < W; ++c) {
      if (heights[c] > 2) {
        needs_reduction = true;
        break;
      }
    }
    if (!needs_reduction) break;
    int carry = 0;
    for (int c = 0; c < W; ++c) {
      const int fa = heights[c] / 3;
      total += fa;
      heights[c] = heights[c] - 3 * fa + fa + carry;
      carry = fa;
    }
  }

  // Final carry-propagate adder span, as in reduce_columns().
  int first_two = -1;
  int last_any = -1;
  for (int c = 0; c < W; ++c) {
    if (heights[c] == 2 && first_two < 0) first_two = c;
    if (heights[c] > 0) last_any = c;
  }
  if (first_two >= 0) total += last_any - first_two + 1;
  return total;
}

long total_fa_count(const std::vector<NeuronAdderSpec>& neurons) {
  long total = 0;
  for (const auto& n : neurons) total += estimate_adder(n).total_fa();
  return total;
}

}  // namespace pmlp::adder
