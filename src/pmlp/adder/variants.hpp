// Alternative multi-operand adder architectures, used to ablate the paper's
// CSA/FA-count assumption (§III-C assumes 3:2 reduction with FAs only):
//  * sequential ripple-carry accumulation (one CPA per summand),
//  * 3:2 CSA reduction with half-adders allowed (2 leftover bits in a
//    column cost a HA instead of waiting for a third),
// against the paper's FA-only estimate. All return comparable cost numbers
// so bench_ablation can chart the architecture choice.
#pragma once

#include "pmlp/adder/fa_model.hpp"

namespace pmlp::adder {

struct VariantCost {
  int full_adders = 0;
  int half_adders = 0;
  int stages = 0;

  /// Area in HA-equivalents (FA counted as 2.8 HA, the EGFET cell ratio).
  [[nodiscard]] double ha_equivalents() const {
    return 2.8 * full_adders + half_adders;
  }
};

/// Sequential accumulation: summands are added one at a time with a ripple
/// CPA at the running width. Cheap for 2-3 operands, far worse than a CSA
/// tree for the wide fan-ins of MLP neurons.
[[nodiscard]] VariantCost ripple_accumulate_cost(const NeuronAdderSpec& spec);

/// CSA reduction that may place a half-adder when exactly two bits remain
/// in a column during a stage (Wallace-style), then a CPA.
[[nodiscard]] VariantCost csa_with_ha_cost(const NeuronAdderSpec& spec);

/// The paper's FA-only model expressed in VariantCost form.
[[nodiscard]] VariantCost fa_only_cost(const NeuronAdderSpec& spec);

}  // namespace pmlp::adder
