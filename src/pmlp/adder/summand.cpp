#include "pmlp/adder/summand.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::adder {

using bitops::low_mask;
using bitops::popcount;

std::uint32_t SummandSpec::effective_mask() const noexcept {
  return mask & static_cast<std::uint32_t>(low_mask(input_width));
}

std::int64_t SummandSpec::max_value() const noexcept {
  // x (.) m is maximized with every retained bit set, i.e. the mask itself.
  return static_cast<std::int64_t>(effective_mask()) << shift;
}

std::uint64_t SummandSpec::occupancy() const noexcept {
  return static_cast<std::uint64_t>(effective_mask()) << shift;
}

int SummandSpec::wire_count() const noexcept {
  return popcount(effective_mask());
}

std::vector<int> NeuronStructure::total_heights() const {
  std::vector<int> h = variable_heights;
  for (int c = 0; c < acc_width; ++c) {
    if (bitops::test_bit(folded_constant, c)) h[static_cast<std::size_t>(c)] += 1;
  }
  return h;
}

NeuronStructure analyze_neuron(const NeuronAdderSpec& spec) {
  NeuronStructure out;

  // --- Range analysis: every x bit is free, so the positive part is
  // maximized at mask-all-ones, the negative part at the same.
  std::int64_t pos_max = 0;
  std::int64_t neg_max = 0;  // magnitude of most negative contribution
  for (const auto& s : spec.summands) {
    if (s.sign >= 0) {
      pos_max += s.max_value();
    } else {
      neg_max += s.max_value();
    }
  }
  out.max_sum = pos_max + spec.bias;
  out.min_sum = -neg_max + spec.bias;
  // A sum can also land anywhere between; width must hold both extremes.
  const int w_hi = bitops::bit_width_signed(out.max_sum);
  const int w_lo = bitops::bit_width_signed(out.min_sum);
  out.acc_width = std::max({w_hi, w_lo, 2});
  if (out.acc_width > 62) {
    throw std::invalid_argument("analyze_neuron: accumulator width > 62");
  }

  // --- Column heights of variable bits and design-time constant folding.
  const int W = out.acc_width;
  out.variable_heights.assign(static_cast<std::size_t>(W), 0);
  std::uint64_t constant = bitops::to_twos_complement(spec.bias, W);
  for (const auto& s : spec.summands) {
    const std::uint64_t occ = s.occupancy() & low_mask(W);
    for (int c : bitops::set_bit_positions(occ)) {
      out.variable_heights[static_cast<std::size_t>(c)] += 1;
    }
    if (s.sign < 0 && !s.is_pruned()) {
      // ~v has constant ones wherever v has no variable bit; plus the +1.
      const std::uint64_t const_ones = ~occ & low_mask(W);
      constant = (constant + const_ones + 1) & low_mask(W);
    }
  }
  out.folded_constant = constant;
  return out;
}

}  // namespace pmlp::adder
