// Full-adder-count area model for multi-operand adder trees (paper §III-C,
// Eq. 2). The paper's estimator: per reduction round, every three bits in a
// column cost one FA, leaving one sum bit in that column and one carry in the
// next; rounds repeat until every column holds at most two bits; the final
// two rows go through a carry-propagate adder. Only FAs are assumed.
//
// estimate_adder() additionally returns the exact FA placement schedule so
// the netlist generator instantiates *the same* tree the model priced —
// keeping the training-time proxy and the "synthesis" result consistent.
#pragma once

#include <cstdint>
#include <vector>

#include "pmlp/adder/summand.hpp"

namespace pmlp::adder {

/// FA placements of one reduction stage: fa_per_column[c] FAs in column c.
struct ReductionStage {
  std::vector<int> fa_per_column;
  [[nodiscard]] int total() const;
};

/// Complete cost/plan of one neuron's multi-operand adder.
struct AdderCost {
  int fa_reduction = 0;  ///< FAs spent in the 3:2 reduction stages
  int fa_cpa = 0;        ///< FAs of the final carry-propagate adder
  int stages = 0;        ///< number of reduction rounds
  int acc_width = 0;     ///< accumulator width W used
  std::uint64_t folded_constant = 0;  ///< design-time constant added (mod 2^W)
  std::vector<ReductionStage> schedule;  ///< per-stage FA placements
  std::vector<int> final_heights;        ///< heights after reduction (<=2)

  [[nodiscard]] int total_fa() const { return fa_reduction + fa_cpa; }
};

/// Reduce raw column heights with FAs only; returns cost + schedule.
/// `heights[c]` is the number of bits entering column c.
[[nodiscard]] AdderCost reduce_columns(std::vector<int> heights);

/// Full neuron estimate: range analysis + constant folding + reduction.
[[nodiscard]] AdderCost estimate_adder(const NeuronAdderSpec& spec);

/// `estimate_adder(spec).total_fa()` without materializing the schedule:
/// the same range analysis / folding / 3:2 reduction over fixed-size stack
/// arrays, zero heap allocations. This is the GA's per-evaluation area
/// path; `estimate_adder` stays the source of truth for netlist generation
/// and the two are asserted identical by the adder tests.
[[nodiscard]] int estimate_total_fa(const NeuronAdderSpec& spec);

/// Paper Eq. 2: total FA count of an MLP = sum over neurons.
[[nodiscard]] long total_fa_count(const std::vector<NeuronAdderSpec>& neurons);

}  // namespace pmlp::adder
