// Structural description of the multi-operand addition inside one bespoke
// neuron (paper Fig. 1 / Fig. 3). Each connection contributes one summand
//
//     s * ((m (.) x) << k)
//
// where only the bit positions set in the mask m are actual wires; everything
// else is a hard-wired constant that folds into the neuron's bias term at
// design time. This module computes, for a neuron:
//   * the accumulator width required to hold every reachable sum,
//   * the per-column count of *variable* bits entering the adder tree,
//   * the folded design-time constant (bias + two's-complement corrections
//     + sign-extension ones of negative summands).
#pragma once

#include <cstdint>
#include <vector>

namespace pmlp::adder {

/// One connection's summand, structurally: sign * ((mask (.) x) << shift)
/// with x an unsigned `input_width`-bit activation.
struct SummandSpec {
  std::uint32_t mask = 0;  ///< retained activation bits (paper's m)
  int input_width = 4;     ///< bits of the incoming activation
  int shift = 0;           ///< pow2 weight exponent k (left shift)
  int sign = +1;           ///< pow2 weight sign s (-1 or +1)

  /// Largest value (m (.) x) << shift can take (all retained bits = 1).
  [[nodiscard]] std::int64_t max_value() const noexcept;
  /// Occupied bit columns as a bit set: bit c set => a variable wire in
  /// column c of the adder tree. Identical for both signs (see below).
  [[nodiscard]] std::uint64_t occupancy() const noexcept;
  /// Number of variable bits (wires) this summand feeds into the tree.
  [[nodiscard]] int wire_count() const noexcept;
  /// True when the mask retains no bit (the connection is fully pruned).
  [[nodiscard]] bool is_pruned() const noexcept { return effective_mask() == 0; }
  /// Mask truncated to input_width bits.
  [[nodiscard]] std::uint32_t effective_mask() const noexcept;
};

/// The whole neuron-level addition: all incoming summands plus the trained
/// integer bias (paper's b).
struct NeuronAdderSpec {
  std::vector<SummandSpec> summands;
  std::int64_t bias = 0;
};

/// Range/width analysis plus design-time constant folding for a neuron.
struct NeuronStructure {
  int acc_width = 0;               ///< two's-complement accumulator width W
  std::int64_t min_sum = 0;        ///< smallest reachable accumulator value
  std::int64_t max_sum = 0;        ///< largest reachable accumulator value
  std::uint64_t folded_constant = 0;  ///< K mod 2^W: bias + corrections
  /// Variable-bit column heights, size acc_width; constant K excluded.
  std::vector<int> variable_heights;
  /// Heights including the set bits of the folded constant K.
  [[nodiscard]] std::vector<int> total_heights() const;
};

/// Analyze the neuron: compute W, the folded constant and column heights.
///
/// Negative summands are realized as two's complement at width W:
///   -(v) mod 2^W = (~v mod 2^W) + 1,
/// whose *variable* bits sit in exactly the same columns as the positive
/// summand (each retained bit, inverted), while the ones at the non-retained
/// columns and the trailing +1 are design-time constants folded into K —
/// precisely the paper's observation that "the '1' from all two's complement
/// negations may be accumulated in the constant bias term".
[[nodiscard]] NeuronStructure analyze_neuron(const NeuronAdderSpec& spec);

}  // namespace pmlp::adder
