#include "pmlp/adder/variants.hpp"

#include <algorithm>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::adder {

VariantCost ripple_accumulate_cost(const NeuronAdderSpec& spec) {
  const NeuronStructure st = analyze_neuron(spec);
  VariantCost cost;
  // Add summands one at a time into a running accumulator of width W:
  // each addition is a ripple CPA spanning from the summand's lowest
  // occupied column to the accumulator MSB (carries must propagate).
  const int W = st.acc_width;
  bool have_acc = false;
  auto add_operand = [&](std::uint64_t occupancy) {
    if (occupancy == 0) return;
    if (!have_acc) {
      have_acc = true;  // first operand is just wires
      return;
    }
    const int lo = std::countr_zero(occupancy);
    const int span = W - lo;
    // One FA per spanned column except the first (a HA suffices there).
    if (span >= 1) {
      cost.half_adders += 1;
      cost.full_adders += span - 1;
    }
    cost.stages += 1;
  };
  for (const auto& s : spec.summands) {
    add_operand(s.occupancy() & bitops::low_mask(W));
  }
  add_operand(st.folded_constant);
  return cost;
}

VariantCost csa_with_ha_cost(const NeuronAdderSpec& spec) {
  const NeuronStructure st = analyze_neuron(spec);
  std::vector<int> heights = st.total_heights();
  VariantCost cost;

  auto needs_reduction = [](const std::vector<int>& h) {
    return std::any_of(h.begin(), h.end(), [](int v) { return v > 2; });
  };
  while (needs_reduction(heights)) {
    std::vector<int> next(heights.size(), 0);
    for (std::size_t c = 0; c < heights.size(); ++c) {
      int h = heights[c];
      while (h >= 3) {
        cost.full_adders += 1;
        h -= 3;
        next[c] += 1;
        if (c + 1 < heights.size()) next[c + 1] += 1;
      }
      if (h == 2) {
        // Wallace-style: compress the leftover pair immediately.
        cost.half_adders += 1;
        h = 0;
        next[c] += 1;
        if (c + 1 < heights.size()) next[c + 1] += 1;
      }
      next[c] += h;
    }
    heights = std::move(next);
    cost.stages += 1;
  }
  // Final CPA over the <=2 rows.
  int first_two = -1, last_any = -1;
  for (std::size_t c = 0; c < heights.size(); ++c) {
    if (heights[c] == 2 && first_two < 0) first_two = static_cast<int>(c);
    if (heights[c] > 0) last_any = static_cast<int>(c);
  }
  if (first_two >= 0) cost.full_adders += last_any - first_two + 1;
  return cost;
}

VariantCost fa_only_cost(const NeuronAdderSpec& spec) {
  const AdderCost c = estimate_adder(spec);
  VariantCost out;
  out.full_adders = c.total_fa();
  out.stages = c.stages;
  return out;
}

}  // namespace pmlp::adder
