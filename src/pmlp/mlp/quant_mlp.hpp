// The exact bespoke printed-MLP baseline of Mubarik et al. (MICRO'20) [2],
// as used by the paper: 8-bit fixed-point weights, 4-bit inputs, 8-bit QReLU
// hidden activations, integer-only inference. In a bespoke circuit each
// constant-coefficient multiplier synthesizes to shift-adds (one shifted copy
// of the input per set bit of the coefficient), which is exactly how
// adder_specs() prices it for the hardware model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmlp/adder/summand.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/float_mlp.hpp"

namespace pmlp::mlp {

/// One integer layer of the bespoke baseline.
struct QuantLayer {
  int n_in = 0;
  int n_out = 0;
  int input_bits = 4;   ///< bits of the incoming activation codes
  int qrelu_shift = 0;  ///< accumulator right-shift before the 8-bit clamp
  std::vector<std::int32_t> weights;  ///< signed codes, weights[o*n_in+i]
  std::vector<std::int64_t> biases;   ///< in accumulator scale

  [[nodiscard]] std::int32_t weight(int out, int in) const {
    return weights[static_cast<std::size_t>(out) * n_in + in];
  }
};

/// Reusable flat activation buffers for allocation-free QuantMlp inference.
/// Grows monotonically, so one scratch serves any number of nets/samples.
struct QuantScratch {
  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
};

class QuantMlp {
 public:
  QuantMlp() = default;
  /// Reassemble a net from explicit layers (checkpoint deserialization —
  /// see core::load_quant_mlp). Throws std::invalid_argument when the layer
  /// shapes do not match the topology.
  QuantMlp(Topology topology, std::vector<QuantLayer> layers, int weight_bits,
           int activation_bits);

  /// Quantize a trained float MLP (paper §V-A: 8-bit weights, 4-bit inputs).
  static QuantMlp from_float(const FloatMlp& net, int weight_bits = 8,
                             int input_bits = 4, int activation_bits = 8);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const std::vector<QuantLayer>& layers() const { return layers_; }
  [[nodiscard]] int weight_bits() const { return weight_bits_; }
  [[nodiscard]] int activation_bits() const { return activation_bits_; }

  /// Integer forward pass; returns output-layer accumulators (logits).
  [[nodiscard]] std::vector<std::int64_t> forward(
      std::span<const std::uint8_t> x) const;
  [[nodiscard]] int predict(std::span<const std::uint8_t> x) const;

  /// Allocation-free forward through reusable scratch buffers; the returned
  /// span aliases scratch storage (valid until the next call). Bit-identical
  /// to forward(x).
  [[nodiscard]] std::span<const std::int64_t> forward(
      std::span<const std::uint8_t> x, QuantScratch& scratch) const;
  [[nodiscard]] int predict(std::span<const std::uint8_t> x,
                            QuantScratch& scratch) const;

  /// Structural adder description of every neuron (layer-major order) for
  /// the FA-count model / netlist generator. Each set bit of each weight
  /// code becomes one shifted full-width summand (bespoke multiplier).
  [[nodiscard]] std::vector<adder::NeuronAdderSpec> adder_specs() const;

 private:
  Topology topology_;
  std::vector<QuantLayer> layers_;
  int weight_bits_ = 8;
  int activation_bits_ = 8;
};

/// Fraction of quantized samples classified correctly.
[[nodiscard]] double accuracy(const QuantMlp& net,
                              const datasets::QuantizedDataset& d);

}  // namespace pmlp::mlp
