// MLP topology descriptions, including the paper's Table I registry
// (topology, parameter count, baseline accuracy / area / power as published)
// used for comparison in every bench.
#pragma once

#include <string>
#include <vector>

namespace pmlp::mlp {

/// Layer sizes, inputs first: (10,3,2) = 10 inputs, one hidden layer of 3,
/// 2 outputs — exactly the notation of Table I.
struct Topology {
  std::vector<int> layers;

  [[nodiscard]] int n_inputs() const { return layers.front(); }
  [[nodiscard]] int n_outputs() const { return layers.back(); }
  [[nodiscard]] int n_layers() const {  ///< number of weight layers
    return static_cast<int>(layers.size()) - 1;
  }
  /// Weights + biases, the paper's "Parameters" column.
  [[nodiscard]] long n_parameters() const;
  [[nodiscard]] std::string to_string() const;  // "(10,3,2)"
};

/// One row of the paper's Table I (the exact bespoke baseline [2]).
struct PaperBaselineRow {
  std::string dataset;
  Topology topology;
  long parameters = 0;
  double accuracy = 0.0;   ///< published baseline accuracy
  double area_cm2 = 0.0;   ///< published baseline area
  double power_mw = 0.0;   ///< published baseline power
  double clock_ms = 200.0; ///< synthesis clock period (250 for Pendigits)
};

/// Table I, in paper order: BC, Cardio, Pendigits, RedWine, WhiteWine.
[[nodiscard]] const std::vector<PaperBaselineRow>& paper_table1();

/// Look up a Table I row by dataset name; throws if unknown.
[[nodiscard]] const PaperBaselineRow& paper_row(const std::string& dataset);

}  // namespace pmlp::mlp
