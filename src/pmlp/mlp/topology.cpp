#include "pmlp/mlp/topology.hpp"

#include <sstream>
#include <stdexcept>

namespace pmlp::mlp {

long Topology::n_parameters() const {
  long total = 0;
  for (std::size_t l = 1; l < layers.size(); ++l) {
    total += static_cast<long>(layers[l - 1]) * layers[l]  // weights
             + layers[l];                                  // biases
  }
  return total;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (i > 0) os << ',';
    os << layers[i];
  }
  os << ')';
  return os.str();
}

const std::vector<PaperBaselineRow>& paper_table1() {
  // Values transcribed from Table I of the paper. Note the "Parameters"
  // column counts weights + biases of the topology.
  static const std::vector<PaperBaselineRow> rows = {
      {"BreastCancer", {{10, 3, 2}}, 38, 0.980, 12.0, 40.0, 200.0},
      {"Cardio", {{21, 3, 3}}, 78, 0.881, 33.4, 124.0, 200.0},
      {"Pendigits", {{16, 5, 10}}, 145, 0.937, 67.0, 213.0, 250.0},
      {"RedWine", {{11, 2, 6}}, 42, 0.564, 17.6, 73.5, 200.0},
      {"WhiteWine", {{11, 4, 7}}, 83, 0.537, 31.2, 126.0, 200.0},
  };
  return rows;
}

const PaperBaselineRow& paper_row(const std::string& dataset) {
  for (const auto& r : paper_table1()) {
    if (r.dataset == dataset) return r;
  }
  std::string known;
  for (const auto& r : paper_table1()) {
    if (!known.empty()) known += ", ";
    known += r.dataset;
  }
  throw std::invalid_argument("unknown dataset '" + dataset +
                              "'; known: " + known);
}

}  // namespace pmlp::mlp
