#include "pmlp/mlp/backprop.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <random>

#include "pmlp/mlp/train_engine.hpp"

namespace pmlp::mlp {

namespace {

/// Numerically stable softmax in place.
void softmax(std::vector<double>& v) {
  const double mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (double& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : v) x /= sum;
}

struct LayerGrads {
  std::vector<double> dw;
  std::vector<double> db;
};

}  // namespace

BackpropReport train_backprop_naive(FloatMlp& net,
                                    const datasets::Dataset& train,
                                    const BackpropConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  std::mt19937_64 rng(cfg.seed);

  auto& layers = net.layers();
  std::vector<LayerGrads> grads(layers.size());
  std::vector<LayerGrads> velocity(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    grads[l].dw.assign(layers[l].weights.size(), 0.0);
    grads[l].db.assign(layers[l].biases.size(), 0.0);
    velocity[l].dw.assign(layers[l].weights.size(), 0.0);
    velocity[l].db.assign(layers[l].biases.size(), 0.0);
  }

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double lr = cfg.learning_rate;
  double last_loss = 0.0;
  BackpropReport report;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(cfg.batch_size));
      const auto batch_n = static_cast<double>(end - start);
      for (auto& g : grads) {
        std::fill(g.dw.begin(), g.dw.end(), 0.0);
        std::fill(g.db.begin(), g.db.end(), 0.0);
      }

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        auto trace = net.forward_trace(train.row(i));
        auto probs = trace.back();
        softmax(probs);
        const int y = train.labels[i];
        epoch_loss -= std::log(std::max(probs[static_cast<std::size_t>(y)], 1e-12));

        // delta at the output: softmax-CE gradient.
        std::vector<double> delta = probs;
        delta[static_cast<std::size_t>(y)] -= 1.0;

        for (int l = static_cast<int>(layers.size()) - 1; l >= 0; --l) {
          auto& layer = layers[static_cast<std::size_t>(l)];
          auto& g = grads[static_cast<std::size_t>(l)];
          const auto& in = trace[static_cast<std::size_t>(l)];
          for (int o = 0; o < layer.n_out; ++o) {
            const double dz = delta[static_cast<std::size_t>(o)];
            g.db[static_cast<std::size_t>(o)] += dz;
            for (int ii = 0; ii < layer.n_in; ++ii) {
              g.dw[static_cast<std::size_t>(o) * layer.n_in + ii] +=
                  dz * in[static_cast<std::size_t>(ii)];
            }
          }
          if (l > 0) {
            std::vector<double> prev(static_cast<std::size_t>(layer.n_in), 0.0);
            for (int ii = 0; ii < layer.n_in; ++ii) {
              double s = 0.0;
              for (int o = 0; o < layer.n_out; ++o) {
                s += layer.weight(o, ii) * delta[static_cast<std::size_t>(o)];
              }
              // ReLU derivative, with a small leak through inactive units
              // so tiny hidden layers can recover from a dead start.
              prev[static_cast<std::size_t>(ii)] =
                  trace[static_cast<std::size_t>(l)][static_cast<std::size_t>(ii)] > 0
                      ? s
                      : cfg.relu_leak * s;
            }
            delta = std::move(prev);
          }
        }
      }

      // Momentum SGD step with L2.
      for (std::size_t l = 0; l < layers.size(); ++l) {
        auto& layer = layers[l];
        for (std::size_t w = 0; w < layer.weights.size(); ++w) {
          const double g =
              grads[l].dw[w] / batch_n + cfg.l2 * layer.weights[w];
          velocity[l].dw[w] = cfg.momentum * velocity[l].dw[w] - lr * g;
          layer.weights[w] += velocity[l].dw[w];
        }
        for (std::size_t b = 0; b < layer.biases.size(); ++b) {
          const double g = grads[l].db[b] / batch_n;
          velocity[l].db[b] = cfg.momentum * velocity[l].db[b] - lr * g;
          layer.biases[b] += velocity[l].db[b];
        }
      }
    }
    lr *= cfg.lr_decay;
    last_loss = epoch_loss / static_cast<double>(train.size());
    report.epochs_run = epoch + 1;
  }

  report.final_loss = last_loss;
  report.final_train_accuracy = accuracy(net, train);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.samples_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.epochs_run) *
                static_cast<double>(train.size()) / report.wall_seconds
          : 0.0;
  return report;
}

BackpropReport train_backprop(FloatMlp& net, const datasets::Dataset& train,
                              const BackpropConfig& cfg) {
  TrainEngine engine(train, cfg);
  return engine.train(net);
}

FloatMlp train_float_mlp(const Topology& topology,
                         const datasets::Dataset& train,
                         const BackpropConfig& cfg, BackpropReport* report) {
  FloatMlp best;
  double best_acc = -1.0;
  BackpropReport best_report;
  const int restarts = std::max(1, cfg.restarts);
  // One engine (and worker pool + workspace) serves every restart.
  TrainEngine engine(train, cfg);
  for (int r = 0; r < restarts; ++r) {
    const std::uint64_t run_seed =
        cfg.seed + static_cast<std::uint64_t>(r) * 101;
    FloatMlp net(topology, run_seed);
    auto run_report = engine.train(net, run_seed);
    if (run_report.final_train_accuracy > best_acc) {
      best_acc = run_report.final_train_accuracy;
      best = std::move(net);
      best_report = run_report;
    }
  }
  if (report != nullptr) *report = best_report;
  return best;
}

}  // namespace pmlp::mlp
