#include "pmlp/mlp/train_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <numeric>
#include <random>
#include <stdexcept>

#include "pmlp/core/thread_pool.hpp"
#include "pmlp/mlp/train_kernels.hpp"

namespace pmlp::mlp {

TrainEngine::TrainEngine(const datasets::Dataset& train,
                         const BackpropConfig& cfg)
    : train_(train),
      cfg_(cfg),
      n_threads_(core::resolve_n_threads(cfg.n_threads)) {
  if (n_threads_ > 1) pool_ = std::make_unique<core::ThreadPool>(n_threads_);
}

TrainEngine::~TrainEngine() = default;

void TrainEngine::bind(const FloatMlp& net) {
  const auto& layers = net.layers();
  if (layers.empty()) {
    throw std::invalid_argument("TrainEngine: net has no layers");
  }
  if (layers.front().n_in != train_.n_features) {
    throw std::invalid_argument(
        "TrainEngine: net input width does not match dataset features");
  }
  const int n_out = layers.back().n_out;
  for (const int y : train_.labels) {
    if (y < 0 || y >= n_out) {
      throw std::invalid_argument(
          "TrainEngine: dataset label outside net output range");
    }
  }

  const auto n_levels = layers.size() + 1;
  widths_.resize(n_levels);
  widths_[0] = layers.front().n_in;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    widths_[l + 1] = layers[l].n_out;
  }
  act_off_.resize(n_levels);
  std::size_t off = 0;
  max_width_ = 0;
  for (std::size_t l = 0; l < n_levels; ++l) {
    act_off_[l] = off;
    off += static_cast<std::size_t>(widths_[l]) * kBlockSamples;
    max_width_ = std::max(max_width_, widths_[l]);
  }
  const std::size_t act_cap = off;

  w_off_.resize(layers.size());
  b_off_.resize(layers.size());
  std::size_t p = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    w_off_[l] = p;
    p += layers[l].weights.size();
    b_off_[l] = p;
    p += layers[l].biases.size();
  }
  n_params_ = p;

  const auto n_workers = static_cast<std::size_t>(n_threads_);
  const auto delta_cap = static_cast<std::size_t>(max_width_) * kBlockSamples;
  if (ws_.workers_.size() < n_workers) ws_.workers_.resize(n_workers);
  for (auto& wk : ws_.workers_) {
    if (wk.act.size() < act_cap) wk.act.resize(act_cap);
    if (wk.delta_a.size() < delta_cap) wk.delta_a.resize(delta_cap);
    if (wk.delta_b.size() < delta_cap) wk.delta_b.resize(delta_cap);
  }
  if (ws_.grad_.size() < n_params_) ws_.grad_.resize(n_params_);
  if (ws_.velocity_.size() < n_params_) ws_.velocity_.resize(n_params_);
}

void TrainEngine::run_block(const FloatMlp& net,
                            const std::vector<std::size_t>& order,
                            std::size_t start, int nb, std::size_t block,
                            std::size_t worker, core::SimdIsa isa) {
  auto& wk = ws_.workers_[worker];
  const auto& layers = net.layers();
  const int nf = train_.n_features;

  // Gather the block's rows into the level-0 neuron-major plane.
  const double* feats = train_.features.data();
  double* a0 = wk.act.data();
  for (int s = 0; s < nb; ++s) {
    const double* row =
        feats + order[start + static_cast<std::size_t>(s)] *
                    static_cast<std::size_t>(nf);
    for (int i = 0; i < nf; ++i) {
      a0[static_cast<std::size_t>(i) * nb + s] = row[i];
    }
  }

  // Forward sweep: hidden layers ReLU, output layer linear.
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const auto& layer = layers[l];
    train_forward_sweep(isa, layer.weights.data(), layer.biases.data(),
                        layer.n_in, layer.n_out, wk.act.data() + act_off_[l],
                        wk.act.data() + act_off_[l + 1], nb,
                        l + 1 < layers.size());
  }

  // Output softmax-CE: the dispatched softmax sweep fills the delta plane
  // with probabilities (the scalar variant replicates the naive oracle's
  // per-sample arithmetic exactly), then a scalar ascending-s pass takes the
  // clamped-log loss and subtracts the one-hot target — the same per-sample
  // loss additions, in the same order, as the oracle.
  const int n_out = layers.back().n_out;
  const double* z = wk.act.data() + act_off_[layers.size()];
  double* delta = wk.delta_a.data();
  train_softmax_sweep(isa, z, n_out, nb, delta);
  double loss = 0.0;
  for (int s = 0; s < nb; ++s) {
    const int y = train_.labels[order[start + static_cast<std::size_t>(s)]];
    loss -= std::log(
        std::max(delta[static_cast<std::size_t>(y) * nb + s], 1e-12));
    delta[static_cast<std::size_t>(y) * nb + s] -= 1.0;
  }
  ws_.block_loss_[block] = loss;

  // Backward sweep into this block's own gradient shard.
  double* shard = ws_.shards_.data() + block * n_params_;
  double* dcur = wk.delta_a.data();
  double* dnext = wk.delta_b.data();
  for (int l = static_cast<int>(layers.size()) - 1; l >= 0; --l) {
    const auto& layer = layers[static_cast<std::size_t>(l)];
    const double* in_act =
        wk.act.data() + act_off_[static_cast<std::size_t>(l)];
    train_grad_sweep(isa, dcur, in_act, layer.n_in, layer.n_out, nb,
                     shard + w_off_[static_cast<std::size_t>(l)],
                     shard + b_off_[static_cast<std::size_t>(l)]);
    if (l > 0) {
      train_delta_sweep(isa, layer.weights.data(), layer.n_in, layer.n_out,
                        dcur, in_act, dnext, nb, cfg_.relu_leak);
      std::swap(dcur, dnext);
    }
  }
}

double TrainEngine::blocked_accuracy(const FloatMlp& net, core::SimdIsa isa) {
  const std::size_t n = train_.size();
  if (n == 0) return 0.0;
  const auto& layers = net.layers();
  auto& wk = ws_.workers_[0];
  const int nf = train_.n_features;
  const int n_out = layers.back().n_out;
  const double* feats = train_.features.data();
  std::size_t correct = 0;
  for (std::size_t start = 0; start < n; start += kBlockSamples) {
    const int nb = static_cast<int>(
        std::min<std::size_t>(n - start, kBlockSamples));
    double* a0 = wk.act.data();
    for (int s = 0; s < nb; ++s) {
      const double* row = feats + (start + static_cast<std::size_t>(s)) *
                                      static_cast<std::size_t>(nf);
      for (int i = 0; i < nf; ++i) {
        a0[static_cast<std::size_t>(i) * nb + s] = row[i];
      }
    }
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const auto& layer = layers[l];
      train_forward_sweep(isa, layer.weights.data(), layer.biases.data(),
                          layer.n_in, layer.n_out, wk.act.data() + act_off_[l],
                          wk.act.data() + act_off_[l + 1], nb,
                          l + 1 < layers.size());
    }
    const double* z = wk.act.data() + act_off_[layers.size()];
    for (int s = 0; s < nb; ++s) {
      int best = 0;
      for (int o = 1; o < n_out; ++o) {
        // First max wins, matching std::max_element in FloatMlp::predict.
        if (z[static_cast<std::size_t>(o) * nb + s] >
            z[static_cast<std::size_t>(best) * nb + s]) {
          best = o;
        }
      }
      if (best == train_.labels[start + static_cast<std::size_t>(s)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

BackpropReport TrainEngine::train(FloatMlp& net) {
  return train(net, cfg_.seed);
}

BackpropReport TrainEngine::train(FloatMlp& net, std::uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  const core::SimdIsa isa = core::active_simd_isa();
  bind(net);

  auto& layers = net.layers();
  const std::size_t n = train_.size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::mt19937_64 rng(seed);

  const auto batch_size =
      static_cast<std::size_t>(std::max(1, cfg_.batch_size));
  const std::size_t max_blocks =
      n == 0 ? 0
             : (std::min(batch_size, n) + kBlockSamples - 1) / kBlockSamples;
  if (ws_.shards_.size() < max_blocks * n_params_) {
    ws_.shards_.resize(max_blocks * n_params_);
  }
  if (ws_.block_loss_.size() < max_blocks) {
    ws_.block_loss_.resize(max_blocks);
  }
  std::fill(ws_.velocity_.begin(), ws_.velocity_.end(), 0.0);

  // Current batch bounds, read by the pooled runner (one std::function for
  // the whole call — no per-batch allocation).
  std::size_t batch_start = 0;
  std::size_t n_blocks = 0;
  const std::size_t batch_end_cap = n;
  std::function<void(std::size_t, std::size_t, std::size_t)> runner =
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t bs = batch_start + b * kBlockSamples;
          const std::size_t be =
              std::min({batch_end_cap, batch_start + batch_size,
                        bs + kBlockSamples});
          run_block(net, order_, bs, static_cast<int>(be - bs), b, chunk,
                    isa);
        }
      };

  double lr = cfg_.learning_rate;
  double last_loss = 0.0;
  BackpropReport report;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    std::shuffle(order_.begin(), order_.end(), rng);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t end = std::min(n, start + batch_size);
      const auto batch_n = static_cast<double>(end - start);
      batch_start = start;
      n_blocks = (end - start + kBlockSamples - 1) / kBlockSamples;
      std::fill_n(ws_.shards_.begin(),
                  static_cast<std::ptrdiff_t>(n_blocks * n_params_), 0.0);

      if (pool_ && n_blocks > 1) {
        pool_->parallel_for(n_blocks, runner, 1);
      } else {
        runner(0, 0, n_blocks);
      }

      // Reduce shards and loss partials in fixed block order — the thread
      // count never touches the summation order.
      std::fill(ws_.grad_.begin(), ws_.grad_.end(), 0.0);
      for (std::size_t b = 0; b < n_blocks; ++b) {
        const double* shard = ws_.shards_.data() + b * n_params_;
        for (std::size_t p = 0; p < n_params_; ++p) ws_.grad_[p] += shard[p];
        epoch_loss += ws_.block_loss_[b];
      }

      // Momentum SGD step with L2 — arithmetic kept verbatim from the
      // naive oracle (backprop.cpp).
      for (std::size_t l = 0; l < layers.size(); ++l) {
        auto& layer = layers[l];
        double* dw = ws_.grad_.data() + w_off_[l];
        double* vw = ws_.velocity_.data() + w_off_[l];
        for (std::size_t w = 0; w < layer.weights.size(); ++w) {
          const double g = dw[w] / batch_n + cfg_.l2 * layer.weights[w];
          vw[w] = cfg_.momentum * vw[w] - lr * g;
          layer.weights[w] += vw[w];
        }
        double* db = ws_.grad_.data() + b_off_[l];
        double* vb = ws_.velocity_.data() + b_off_[l];
        for (std::size_t b = 0; b < layer.biases.size(); ++b) {
          const double g = db[b] / batch_n;
          vb[b] = cfg_.momentum * vb[b] - lr * g;
          layer.biases[b] += vb[b];
        }
      }
    }
    lr *= cfg_.lr_decay;
    last_loss = epoch_loss / static_cast<double>(n);
    report.epochs_run = epoch + 1;
  }

  report.final_loss = last_loss;
  report.final_train_accuracy = blocked_accuracy(net, isa);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.samples_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.epochs_run) * static_cast<double>(n) /
                report.wall_seconds
          : 0.0;
  report.simd_isa = core::simd_isa_name(isa);
  report.block = kBlockSamples;
  report.threads = n_threads_;
  return report;
}

}  // namespace pmlp::mlp
