#include "pmlp/mlp/float_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace pmlp::mlp {

FloatMlp::FloatMlp(const Topology& topology, std::uint64_t seed)
    : topology_(topology) {
  if (topology.layers.size() < 2) {
    throw std::invalid_argument("FloatMlp: topology needs >=2 layers");
  }
  std::mt19937_64 rng(seed);
  for (int l = 0; l < topology.n_layers(); ++l) {
    DenseLayer layer;
    layer.n_in = topology.layers[static_cast<std::size_t>(l)];
    layer.n_out = topology.layers[static_cast<std::size_t>(l) + 1];
    const double stddev = std::sqrt(2.0 / layer.n_in);  // He init
    std::normal_distribution<double> gauss(0.0, stddev);
    layer.weights.resize(static_cast<std::size_t>(layer.n_in) * layer.n_out);
    for (double& w : layer.weights) w = gauss(rng);
    // Slightly positive bias keeps tiny hidden layers (2-5 neurons in
    // printed MLPs) from being born dead under ReLU.
    layer.biases.assign(static_cast<std::size_t>(layer.n_out), 0.1);
    layers_.push_back(std::move(layer));
  }
}

std::vector<std::vector<double>> FloatMlp::forward_trace(
    std::span<const double> x) const {
  std::vector<std::vector<double>> trace;
  trace.reserve(layers_.size() + 1);
  trace.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    const auto& in = trace.back();
    std::vector<double> out(static_cast<std::size_t>(layer.n_out));
    for (int o = 0; o < layer.n_out; ++o) {
      double acc = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        acc += layer.weight(o, i) * in[static_cast<std::size_t>(i)];
      }
      const bool is_last = l + 1 == layers_.size();
      out[static_cast<std::size_t>(o)] = is_last ? acc : std::max(acc, 0.0);
    }
    trace.push_back(std::move(out));
  }
  return trace;
}

std::vector<double> FloatMlp::forward(std::span<const double> x) const {
  return forward_trace(x).back();
}

int FloatMlp::predict(std::span<const double> x) const {
  const auto logits = forward(x);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

double accuracy(const FloatMlp& net, const datasets::Dataset& d) {
  if (d.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (net.predict(d.row(i)) == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace pmlp::mlp
