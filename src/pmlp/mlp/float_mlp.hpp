// Dense floating-point MLP with ReLU hidden layers and a linear output
// layer (softmax applied by the loss). This is the substrate for
//  * the gradient-trained reference (Table III "Exec.Time Grad." column),
//  * the float model that is quantized into the exact bespoke baseline [2].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/topology.hpp"

namespace pmlp::mlp {

/// One dense layer: row-major weights (n_out x n_in) and biases (n_out).
struct DenseLayer {
  int n_in = 0;
  int n_out = 0;
  std::vector<double> weights;  ///< weights[o * n_in + i]
  std::vector<double> biases;

  [[nodiscard]] double weight(int out, int in) const {
    return weights[static_cast<std::size_t>(out) * n_in + in];
  }
  double& weight(int out, int in) {
    return weights[static_cast<std::size_t>(out) * n_in + in];
  }
};

class FloatMlp {
 public:
  FloatMlp() = default;
  /// He-initialized network for the topology (deterministic in `seed`).
  FloatMlp(const Topology& topology, std::uint64_t seed);

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const std::vector<DenseLayer>& layers() const { return layers_; }
  [[nodiscard]] std::vector<DenseLayer>& layers() { return layers_; }

  /// Forward pass; returns output-layer logits.
  [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

  /// Forward pass keeping every layer's post-activation (index 0 = input),
  /// as needed by backprop.
  [[nodiscard]] std::vector<std::vector<double>> forward_trace(
      std::span<const double> x) const;

  /// argmax of the logits.
  [[nodiscard]] int predict(std::span<const double> x) const;

 private:
  Topology topology_;
  std::vector<DenseLayer> layers_;
};

/// Fraction of samples of `d` classified correctly.
[[nodiscard]] double accuracy(const FloatMlp& net,
                              const datasets::Dataset& d);

}  // namespace pmlp::mlp
