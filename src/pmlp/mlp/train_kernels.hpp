// Sample-blocked double-precision training kernels behind the runtime SIMD
// dispatch (core/simd.hpp) — the gradient-descent twin of eval_kernels.hpp.
//
// A block holds up to TrainEngine::kBlockSamples samples in neuron-major
// double planes: the value of unit `i` for sample `s` lives at
// `p[i * nb + s]`, stride `nb` = the block's sample count. The three sweeps
// below are the dense counterparts of one backprop step:
//
//   forward  out[o][s] = bias[o] + sum_i w[o][i] * in[i][s]   (+ ReLU)
//   grad     dw[o][i] += sum_s delta[o][s] * in[i][s]
//            db[o]    += sum_s delta[o][s]
//   delta    prev[i][s] = (sum_o w[o][i] * delta[o][s]) * relu'(act[i][s])
//
// Determinism contract (see train_engine.hpp): in the forward and delta
// sweeps every SIMD lane is one sample, and each lane accumulates its
// reduction (over i resp. o) in ascending index order — vector width never
// changes any sample's summation order, only how many samples run at once.
// The grad sweep is the one genuine cross-sample reduction: the SIMD
// variants keep lane-strided partial sums combined in a fixed lane order,
// so each variant is deterministic, but — unlike the eval engine's int32
// kernels — the float summation ORDER differs between ISAs (and the AVX2/
// NEON variants contract multiply-add into FMA). Results are therefore
// bit-identical per ISA, and only tolerance-equal across ISAs.
#pragma once

#include "pmlp/core/simd.hpp"

namespace pmlp::mlp {

/// out[o*nb+s] = bias[o] + sum_i w[o*n_in+i] * in[i*nb+s]; when `relu`,
/// the result is clamped to max(., 0) (hidden layers — the output layer is
/// linear, softmax lives in the loss).
void train_forward_sweep(core::SimdIsa isa, const double* w,
                         const double* bias, int n_in, int n_out,
                         const double* in, double* out, int nb, bool relu);

/// Accumulate this block's weight/bias gradients: dw[o*n_in+i] +=
/// sum_s delta[o*nb+s] * in[i*nb+s] and db[o] += sum_s delta[o*nb+s].
/// The sample sum is the per-ISA-deterministic reduction described above.
void train_grad_sweep(core::SimdIsa isa, const double* delta, const double* in,
                      int n_in, int n_out, int nb, double* dw, double* db);

/// Softmax over the class dimension for every sample in the block:
/// probs[o*nb+s] = exp(z[o*nb+s] - mx_s) / sum_o exp(z[o*nb+s] - mx_s) with
/// mx_s = max_o z[o*nb+s]. The scalar variant replicates the naive oracle's
/// per-sample arithmetic exactly (max-subtract, std::exp and accumulate in
/// ascending class order, divide). The AVX2 variant runs 4 samples per lane
/// group with a Cephes-style polynomial exp (~2 ulp) and multiplies by the
/// reciprocal sum — per-ISA deterministic, tolerance-equal to scalar like
/// the FMA sweeps. NEON currently falls back to the scalar variant (its
/// 2-lane win would not cover a hand-rolled float64x2 exp).
void train_softmax_sweep(core::SimdIsa isa, const double* z, int n_out,
                         int nb, double* probs);

/// Back-propagate deltas through one layer's weights with the leaky-ReLU
/// derivative gate of backprop.hpp: prev[i*nb+s] = g * s_i where
/// s_i = sum_o w[o*n_in+i] * delta[o*nb+s] and g = 1 when
/// in_act[i*nb+s] > 0, else `relu_leak`.
void train_delta_sweep(core::SimdIsa isa, const double* w, int n_in,
                       int n_out, const double* delta, const double* in_act,
                       double* prev, int nb, double relu_leak);

}  // namespace pmlp::mlp
