// Mini-batch SGD with momentum on softmax cross-entropy — the conventional
// gradient-based training the paper compares against in Table III.
#pragma once

#include <cstdint>

#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/float_mlp.hpp"

namespace pmlp::mlp {

struct BackpropConfig {
  int epochs = 300;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double lr_decay = 0.995;   ///< multiplicative per-epoch decay
  double l2 = 1e-5;          ///< weight decay
  /// Gradient passed through inactive ReLUs (forward stays exact ReLU);
  /// keeps 2-5-neuron hidden layers from dying irrecoverably.
  double relu_leak = 0.05;
  /// train_float_mlp() trains `restarts` nets from different seeds and
  /// keeps the most accurate — cheap insurance for tiny topologies.
  int restarts = 3;
  std::uint64_t seed = 1;
};

struct BackpropReport {
  double final_train_accuracy = 0.0;
  double final_loss = 0.0;
  int epochs_run = 0;
  double wall_seconds = 0.0;  ///< measured training time (Table III)
};

/// Train `net` in place; returns a report with the wall time.
BackpropReport train_backprop(FloatMlp& net, const datasets::Dataset& train,
                              const BackpropConfig& cfg);

/// Convenience: init + train + return the trained network.
[[nodiscard]] FloatMlp train_float_mlp(const Topology& topology,
                                       const datasets::Dataset& train,
                                       const BackpropConfig& cfg);

}  // namespace pmlp::mlp
