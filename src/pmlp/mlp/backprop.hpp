// Mini-batch SGD with momentum on softmax cross-entropy — the conventional
// gradient-based training the paper compares against in Table III.
//
// Two implementations share this interface: train_backprop() runs the
// sample-blocked SIMD TrainEngine (train_engine.hpp) and is the default
// everywhere; train_backprop_naive() is the original per-sample scalar
// loop, kept as the reference oracle the engine is tested against.
#pragma once

#include <cstdint>
#include <string>

#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/float_mlp.hpp"

namespace pmlp::mlp {

struct BackpropConfig {
  int epochs = 300;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double lr_decay = 0.995;   ///< multiplicative per-epoch decay
  double l2 = 1e-5;          ///< weight decay
  /// Gradient passed through inactive ReLUs (forward stays exact ReLU);
  /// keeps 2-5-neuron hidden layers from dying irrecoverably.
  double relu_leak = 0.05;
  /// train_float_mlp() trains `restarts` nets from different seeds and
  /// keeps the most accurate — cheap insurance for tiny topologies.
  int restarts = 3;
  std::uint64_t seed = 1;
  /// TrainEngine workers for intra-batch block parallelism; 0 = auto.
  /// Results are bit-identical for every value (per-block gradient shards
  /// reduced in fixed block order) — this knob is EXCLUDED from the flow
  /// checkpoint fingerprint, like every thread count.
  int n_threads = 1;
};

struct BackpropReport {
  double final_train_accuracy = 0.0;
  double final_loss = 0.0;
  int epochs_run = 0;
  double wall_seconds = 0.0;  ///< measured training time (Table III)
  /// Training throughput over the full run (epochs_run * n / wall).
  double samples_per_second = 0.0;
  // Runtime machine metadata (like TrainingResult::simd_isa) — NOT
  // serialized into checkpoints and never part of any fingerprint.
  std::string simd_isa;  ///< dispatched kernel ISA ("" for the naive loop)
  int block = 0;         ///< engine block size (0 for the naive loop)
  int threads = 1;       ///< resolved worker count
};

/// Train `net` in place with the blocked SIMD TrainEngine; returns a report
/// with the wall time and throughput.
BackpropReport train_backprop(FloatMlp& net, const datasets::Dataset& train,
                              const BackpropConfig& cfg);

/// The original per-sample scalar loop — reference oracle for the engine
/// (same update rule, no blocking, no threads, no SIMD).
BackpropReport train_backprop_naive(FloatMlp& net,
                                    const datasets::Dataset& train,
                                    const BackpropConfig& cfg);

/// Convenience: init + train (engine-backed, cfg.restarts restarts sharing
/// one TrainEngine) + return the most accurate network. When `report` is
/// non-null it receives the winning restart's training report.
[[nodiscard]] FloatMlp train_float_mlp(const Topology& topology,
                                       const datasets::Dataset& train,
                                       const BackpropConfig& cfg,
                                       BackpropReport* report = nullptr);

}  // namespace pmlp::mlp
