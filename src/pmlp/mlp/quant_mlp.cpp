#include "pmlp/mlp/quant_mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/bitops/fixed_point.hpp"

namespace pmlp::mlp {

QuantMlp::QuantMlp(Topology topology, std::vector<QuantLayer> layers,
                   int weight_bits, int activation_bits)
    : topology_(std::move(topology)),
      layers_(std::move(layers)),
      weight_bits_(weight_bits),
      activation_bits_(activation_bits) {
  if (layers_.size() != static_cast<std::size_t>(topology_.n_layers())) {
    throw std::invalid_argument("QuantMlp: layer count mismatch");
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    if (layer.n_in != topology_.layers[l] ||
        layer.n_out != topology_.layers[l + 1] ||
        layer.weights.size() !=
            static_cast<std::size_t>(layer.n_in) * layer.n_out ||
        layer.biases.size() != static_cast<std::size_t>(layer.n_out)) {
      throw std::invalid_argument("QuantMlp: layer shape mismatch");
    }
  }
}

QuantMlp QuantMlp::from_float(const FloatMlp& net, int weight_bits,
                              int input_bits, int activation_bits) {
  QuantMlp q;
  q.topology_ = net.topology();
  q.weight_bits_ = weight_bits;
  q.activation_bits_ = activation_bits;

  // Real value represented by one unit of the incoming activation code.
  double x_scale = 1.0 / static_cast<double>((1u << input_bits) - 1u);
  int in_bits = input_bits;

  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const DenseLayer& fl = net.layers()[l];
    const bool is_last = l + 1 == net.layers().size();

    const auto wq = bitops::SignedQuantizer::fit(fl.weights, weight_bits);
    QuantLayer ql;
    ql.n_in = fl.n_in;
    ql.n_out = fl.n_out;
    ql.input_bits = in_bits;
    ql.weights.reserve(fl.weights.size());
    for (double w : fl.weights) ql.weights.push_back(wq.quantize(w));

    // Accumulator scale: one accumulator unit == wq.scale * x_scale reals.
    const double acc_scale = wq.scale * x_scale;
    ql.biases.reserve(fl.biases.size());
    for (double b : fl.biases) {
      ql.biases.push_back(static_cast<std::int64_t>(std::llround(b / acc_scale)));
    }

    if (!is_last) {
      // QReLU shift: map the largest reachable positive accumulator into
      // `activation_bits` bits (static worst-case range analysis).
      const std::int64_t x_max = (std::int64_t{1} << in_bits) - 1;
      std::int64_t acc_max = 0;
      for (int o = 0; o < ql.n_out; ++o) {
        std::int64_t pos = std::max<std::int64_t>(ql.biases[static_cast<std::size_t>(o)], 0);
        for (int i = 0; i < ql.n_in; ++i) {
          const std::int64_t w = ql.weight(o, i);
          if (w > 0) pos += w * x_max;
        }
        acc_max = std::max(acc_max, pos);
      }
      const int acc_w = bitops::bit_width_u(static_cast<std::uint64_t>(acc_max));
      ql.qrelu_shift = std::max(0, acc_w - activation_bits);
      // Next layer sees activation codes worth acc_scale * 2^shift reals.
      x_scale = acc_scale * std::exp2(ql.qrelu_shift);
      in_bits = activation_bits;
    }
    q.layers_.push_back(std::move(ql));
  }
  return q;
}

std::vector<std::int64_t> QuantMlp::forward(
    std::span<const std::uint8_t> x) const {
  QuantScratch scratch;
  const auto out = forward(x, scratch);
  return {out.begin(), out.end()};
}

std::span<const std::int64_t> QuantMlp::forward(std::span<const std::uint8_t> x,
                                                QuantScratch& scratch) const {
  // Size the two ping-pong buffers to the widest activation vector once;
  // after that the whole pass is allocation-free.
  std::size_t width = x.size();
  for (const auto& layer : layers_) {
    width = std::max(width, static_cast<std::size_t>(layer.n_out));
  }
  if (scratch.a.size() < width) {
    scratch.a.resize(width);
    scratch.b.resize(width);
  }
  std::int64_t* act = scratch.a.data();
  std::int64_t* next = scratch.b.data();
  for (std::size_t i = 0; i < x.size(); ++i) act[i] = x[i];
  const std::int64_t act_max =
      (std::int64_t{1} << activation_bits_) - 1;

  std::size_t n_out = x.size();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantLayer& layer = layers_[l];
    const bool is_last = l + 1 == layers_.size();
    for (int o = 0; o < layer.n_out; ++o) {
      // Hoisted row pointer: the weight(o, i) index arithmetic is loop-
      // invariant in i.
      const std::int32_t* w_row =
          layer.weights.data() + static_cast<std::size_t>(o) * layer.n_in;
      std::int64_t acc = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        acc += static_cast<std::int64_t>(w_row[i]) * act[i];
      }
      if (!is_last) {
        // QReLU: clamp-below at 0, shift, clamp-above at 2^bits - 1.
        acc = acc <= 0 ? 0 : std::min(acc >> layer.qrelu_shift, act_max);
      }
      next[o] = acc;
    }
    std::swap(act, next);
    n_out = static_cast<std::size_t>(layer.n_out);
  }
  return {act, n_out};
}

int QuantMlp::predict(std::span<const std::uint8_t> x) const {
  QuantScratch scratch;
  return predict(x, scratch);
}

int QuantMlp::predict(std::span<const std::uint8_t> x,
                      QuantScratch& scratch) const {
  const auto logits = forward(x, scratch);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

std::vector<adder::NeuronAdderSpec> QuantMlp::adder_specs() const {
  std::vector<adder::NeuronAdderSpec> specs;
  for (const auto& layer : layers_) {
    const auto full_mask = static_cast<std::uint32_t>(
        bitops::low_mask(layer.input_bits));
    for (int o = 0; o < layer.n_out; ++o) {
      adder::NeuronAdderSpec n;
      n.bias = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        const std::int32_t w = layer.weight(o, i);
        if (w == 0) continue;
        const auto mag = static_cast<std::uint64_t>(w < 0 ? -w : w);
        for (int p : bitops::set_bit_positions(mag)) {
          adder::SummandSpec s;
          s.mask = full_mask;
          s.input_width = layer.input_bits;
          s.shift = p;
          s.sign = w < 0 ? -1 : +1;
          n.summands.push_back(s);
        }
      }
      specs.push_back(std::move(n));
    }
  }
  return specs;
}

double accuracy(const QuantMlp& net, const datasets::QuantizedDataset& d) {
  if (d.size() == 0) return 0.0;
  QuantScratch scratch;  // shared across the whole pass: no per-sample allocs
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (net.predict(d.row(i), scratch) == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace pmlp::mlp
