// Sample-blocked batched backprop engine — the gradient-descent twin of the
// eval engine (core/eval_engine.hpp), replacing the per-sample
// allocation-per-trace scalar loop of train_backprop_naive on the flow's
// backprop stage.
//
// A minibatch is processed as fixed-size sample blocks of kBlockSamples
// samples. Each block is self-contained: its samples are gathered into
// neuron-major double planes held in a reusable TrainWorkspace (activation
// planes for every layer level, ping-pong delta planes, one gradient shard
// per block — zero heap allocations after the first batch), then swept
// layer-by-layer through the runtime-dispatched FMA kernels of
// train_kernels.hpp (AVX2 / NEON / scalar, PMLP_SIMD knob honored).
// Forward, output softmax-CE, weight-gradient accumulation and delta
// back-propagation each run as whole-layer sweeps instead of per-sample
// loops.
//
// Parallelism: blocks of one batch fan out over a ThreadPool of
// BackpropConfig::n_threads workers (per-worker plane scratch, per-BLOCK
// gradient shards). Because the block partition depends only on the batch
// layout — never on the worker count — and the shards are reduced into the
// batch gradient in fixed block order, results are bit-identical across
// thread counts and across repeated runs.
//
// Determinism contract (stated once, tested in train_engine_test):
//   * bit-identical across n_threads and across runs for a given ISA;
//   * per-sample forward/delta arithmetic is ISA-independent in ORDER (one
//     sample per SIMD lane), but the SIMD variants contract multiply-add
//     into FMA and the gradient's cross-sample reduction is lane-strided,
//     so — unlike the eval engine's int32 kernels — results across ISAs
//     (and vs the train_backprop_naive oracle) agree only within a
//     loss/accuracy tolerance, not bit for bit;
//   * consequently the flow checkpoint fingerprint excludes the ISA the
//     same way it already excludes thread counts: a checkpoint trained
//     under one ISA resumes under another by RELOADING the stored float
//     net, which keeps the flow bit-identical to the original run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pmlp/core/simd.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/float_mlp.hpp"

namespace pmlp::core {
class ThreadPool;
}  // namespace pmlp::core

namespace pmlp::mlp {

/// Reusable flat buffers for TrainEngine: per-worker activation/delta
/// planes, per-block gradient shards, the reduced batch gradient and the
/// momentum state. Grows monotonically; one engine's workspace serves every
/// net it trains with zero steady-state allocations. Opaque to callers.
class TrainWorkspace {
 private:
  friend class TrainEngine;

  struct Worker {
    std::vector<double> act;      ///< stacked neuron-major planes, level 0..L
    std::vector<double> delta_a;  ///< ping-pong delta planes (max width)
    std::vector<double> delta_b;
  };

  std::vector<Worker> workers_;
  std::vector<double> shards_;      ///< per-block gradients, block-major
  std::vector<double> block_loss_;  ///< per-block CE-loss partials
  std::vector<double> grad_;        ///< shards reduced in block order
  std::vector<double> velocity_;    ///< momentum SGD state
};

/// One engine per (dataset, config) pair; train() may be called repeatedly
/// (train_float_mlp reuses one engine — and its worker pool and workspace —
/// across restarts). The dataset must outlive the engine.
class TrainEngine {
 public:
  /// Samples per block: the per-worker scheduling AND determinism unit.
  /// Small enough that the double planes of a paper-scale layer stay
  /// L1-resident, large enough to fill 4-wide AVX2 lanes with slack.
  static constexpr int kBlockSamples = 32;

  TrainEngine(const datasets::Dataset& train, const BackpropConfig& cfg);
  ~TrainEngine();

  TrainEngine(const TrainEngine&) = delete;
  TrainEngine& operator=(const TrainEngine&) = delete;

  /// Train `net` in place with cfg.seed (resp. `seed`) driving the epoch
  /// shuffles. Throws std::invalid_argument when the net does not fit the
  /// dataset (feature width, label range).
  BackpropReport train(FloatMlp& net);
  BackpropReport train(FloatMlp& net, std::uint64_t seed);

  /// Resolved worker count (>= 1).
  [[nodiscard]] int n_threads() const { return n_threads_; }

 private:
  void bind(const FloatMlp& net);
  void run_block(const FloatMlp& net, const std::vector<std::size_t>& order,
                 std::size_t start, int nb, std::size_t block,
                 std::size_t worker, core::SimdIsa isa);
  [[nodiscard]] double blocked_accuracy(const FloatMlp& net,
                                        core::SimdIsa isa);

  const datasets::Dataset& train_;
  BackpropConfig cfg_;
  int n_threads_ = 1;
  std::unique_ptr<core::ThreadPool> pool_;  ///< null when n_threads_ == 1
  TrainWorkspace ws_;
  std::vector<std::size_t> order_;  ///< epoch shuffle order, reused

  // Per-net layout, rebuilt by bind() (cheap; restarts share one topology).
  // Activation plane offsets are capacity-based (stride kBlockSamples), the
  // kernels then use the block's tight stride nb inside each plane.
  std::vector<int> widths_;            ///< layer level widths, size L+1
  std::vector<std::size_t> act_off_;   ///< plane offsets, size L+1
  std::vector<std::size_t> w_off_;     ///< per-layer dw offset into grad
  std::vector<std::size_t> b_off_;     ///< per-layer db offset into grad
  std::size_t n_params_ = 0;
  int max_width_ = 0;
};

}  // namespace pmlp::mlp
