#include "pmlp/mlp/train_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PMLP_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define PMLP_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace pmlp::mlp {
namespace {

// ------------------------------------------------------------------ scalar
//
// The whole block under scalar dispatch, and the nb % lanes tail of the
// SIMD variants. Per sample this is the exact image of the per-sample naive
// loop in backprop.cpp: same multiplies, same adds, same order (on targets
// without implicit FMA contraction the scalar sweep is bit-identical to
// train_backprop_naive for a single-block batch — train_engine_test pins
// that down on x86-64).

void forward_scalar(const double* w, const double* bias, int n_in, int n_out,
                    const double* in, double* out, int nb, int s0, int s1,
                    bool relu) {
  for (int o = 0; o < n_out; ++o) {
    const double* wr = w + static_cast<std::size_t>(o) * n_in;
    double* op = out + static_cast<std::size_t>(o) * nb;
    for (int s = s0; s < s1; ++s) {
      double acc = bias[o];
      for (int i = 0; i < n_in; ++i) {
        acc += wr[i] * in[static_cast<std::size_t>(i) * nb + s];
      }
      op[s] = relu ? std::max(acc, 0.0) : acc;
    }
  }
}

void grad_scalar(const double* delta, const double* in, int n_in, int n_out,
                 int nb, double* dw, double* db) {
  for (int o = 0; o < n_out; ++o) {
    const double* dp = delta + static_cast<std::size_t>(o) * nb;
    double bsum = 0.0;
    for (int s = 0; s < nb; ++s) bsum += dp[s];
    db[o] += bsum;
    double* dwr = dw + static_cast<std::size_t>(o) * n_in;
    for (int i = 0; i < n_in; ++i) {
      const double* ip = in + static_cast<std::size_t>(i) * nb;
      double wsum = 0.0;
      for (int s = 0; s < nb; ++s) wsum += dp[s] * ip[s];
      dwr[i] += wsum;
    }
  }
}

void delta_scalar(const double* w, int n_in, int n_out, const double* delta,
                  const double* in_act, double* prev, int nb, int s0, int s1,
                  double relu_leak) {
  for (int i = 0; i < n_in; ++i) {
    double* pp = prev + static_cast<std::size_t>(i) * nb;
    const double* ap = in_act + static_cast<std::size_t>(i) * nb;
    for (int s = s0; s < s1; ++s) {
      double acc = 0.0;
      for (int o = 0; o < n_out; ++o) {
        acc += w[static_cast<std::size_t>(o) * n_in + i] *
               delta[static_cast<std::size_t>(o) * nb + s];
      }
      pp[s] = ap[s] > 0 ? acc : relu_leak * acc;
    }
  }
}

void softmax_scalar(const double* z, int n_out, int nb, double* probs, int s0,
                    int s1) {
  for (int s = s0; s < s1; ++s) {
    double mx = z[s];
    for (int o = 1; o < n_out; ++o) {
      mx = std::max(mx, z[static_cast<std::size_t>(o) * nb + s]);
    }
    double sum = 0.0;
    for (int o = 0; o < n_out; ++o) {
      const double e = std::exp(z[static_cast<std::size_t>(o) * nb + s] - mx);
      probs[static_cast<std::size_t>(o) * nb + s] = e;
      sum += e;
    }
    for (int o = 0; o < n_out; ++o) {
      probs[static_cast<std::size_t>(o) * nb + s] /= sum;
    }
  }
}

// -------------------------------------------------------------------- AVX2
//
// 4 double lanes per vector; the forward/delta sweeps put one sample per
// lane (per-sample reduction order unchanged, FMA instead of mul+add), the
// grad sweep keeps 4 strided partial sums combined as ((l0+l1)+(l2+l3))
// plus a scalar tail — a fixed, thread-count-independent order.

#if defined(PMLP_HAVE_AVX2)

__attribute__((target("avx2,fma"))) inline double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const double l0 = _mm_cvtsd_f64(lo);
  const double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double l2 = _mm_cvtsd_f64(hi);
  const double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  return (l0 + l1) + (l2 + l3);
}

__attribute__((target("avx2,fma"))) void forward_avx2(
    const double* w, const double* bias, int n_in, int n_out,
    const double* in, double* out, int nb, bool relu) {
  const int vec_end = nb & ~3;
  const __m256d vzero = _mm256_setzero_pd();
  for (int o = 0; o < n_out; ++o) {
    const double* wr = w + static_cast<std::size_t>(o) * n_in;
    double* op = out + static_cast<std::size_t>(o) * nb;
    const __m256d vbias = _mm256_set1_pd(bias[o]);
    for (int s = 0; s < vec_end; s += 4) {
      __m256d acc = vbias;
      for (int i = 0; i < n_in; ++i) {
        acc = _mm256_fmadd_pd(
            _mm256_set1_pd(wr[i]),
            _mm256_loadu_pd(in + static_cast<std::size_t>(i) * nb + s), acc);
      }
      if (relu) acc = _mm256_max_pd(acc, vzero);
      _mm256_storeu_pd(op + s, acc);
    }
  }
  if (vec_end < nb) {
    forward_scalar(w, bias, n_in, n_out, in, out, nb, vec_end, nb, relu);
  }
}

__attribute__((target("avx2,fma"))) void grad_avx2(
    const double* delta, const double* in, int n_in, int n_out, int nb,
    double* dw, double* db) {
  const int vec_end = nb & ~3;
  for (int o = 0; o < n_out; ++o) {
    const double* dp = delta + static_cast<std::size_t>(o) * nb;
    __m256d vb = _mm256_setzero_pd();
    for (int s = 0; s < vec_end; s += 4) {
      vb = _mm256_add_pd(vb, _mm256_loadu_pd(dp + s));
    }
    double bsum = hsum4(vb);
    for (int s = vec_end; s < nb; ++s) bsum += dp[s];
    db[o] += bsum;
    double* dwr = dw + static_cast<std::size_t>(o) * n_in;
    for (int i = 0; i < n_in; ++i) {
      const double* ip = in + static_cast<std::size_t>(i) * nb;
      __m256d vw = _mm256_setzero_pd();
      for (int s = 0; s < vec_end; s += 4) {
        vw = _mm256_fmadd_pd(_mm256_loadu_pd(dp + s), _mm256_loadu_pd(ip + s),
                             vw);
      }
      double wsum = hsum4(vw);
      for (int s = vec_end; s < nb; ++s) wsum += dp[s] * ip[s];
      dwr[i] += wsum;
    }
  }
}

__attribute__((target("avx2,fma"))) void delta_avx2(
    const double* w, int n_in, int n_out, const double* delta,
    const double* in_act, double* prev, int nb, double relu_leak) {
  const int vec_end = nb & ~3;
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vleak = _mm256_set1_pd(relu_leak);
  for (int i = 0; i < n_in; ++i) {
    double* pp = prev + static_cast<std::size_t>(i) * nb;
    const double* ap = in_act + static_cast<std::size_t>(i) * nb;
    for (int s = 0; s < vec_end; s += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int o = 0; o < n_out; ++o) {
        acc = _mm256_fmadd_pd(
            _mm256_set1_pd(w[static_cast<std::size_t>(o) * n_in + i]),
            _mm256_loadu_pd(delta + static_cast<std::size_t>(o) * nb + s),
            acc);
      }
      // act > 0 ? acc : leak * acc, lane-wise (leak*acc is the same multiply
      // the scalar path performs, so blending cannot change any bit).
      const __m256d gate = _mm256_cmp_pd(_mm256_loadu_pd(ap + s), vzero,
                                         _CMP_GT_OQ);
      _mm256_storeu_pd(pp + s,
                       _mm256_blendv_pd(_mm256_mul_pd(acc, vleak), acc, gate));
    }
  }
  if (vec_end < nb) {
    delta_scalar(w, n_in, n_out, delta, in_act, prev, nb, vec_end, nb,
                 relu_leak);
  }
}

/// Cephes-style exp for 4 double lanes: reduce by n = round(x * log2(e)),
/// evaluate the Pade expansion e^r = 1 + 2rP(r^2) / (Q(r^2) - rP(r^2)) on
/// the reduced argument, scale by 2^n through the exponent bits. Inputs here
/// are max-subtracted logits, so x <= 0; the clamp at -708 keeps 2^n out of
/// the denormal range (exp(-708) ~ 3e-308 is already an exact-zero prob
/// after the divide for any practical sum). Relative error ~2 ulp — well
/// inside the engine's cross-ISA tolerance contract.
__attribute__((target("avx2,fma"))) inline __m256d exp4_pd(__m256d x) {
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d kC1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kC2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d kP0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d kP1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d kP2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d kQ0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d kQ1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d kQ2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d kQ3 = _mm256_set1_pd(2.00000000000000000005e0);
  x = _mm256_max_pd(_mm256_min_pd(x, _mm256_set1_pd(708.0)),
                    _mm256_set1_pd(-708.0));
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, kLog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_fnmadd_pd(n, kC1, x);
  x = _mm256_fnmadd_pd(n, kC2, x);
  const __m256d xx = _mm256_mul_pd(x, x);
  __m256d px = _mm256_fmadd_pd(kP0, xx, kP1);
  px = _mm256_fmadd_pd(px, xx, kP2);
  px = _mm256_mul_pd(px, x);
  __m256d qx = _mm256_fmadd_pd(kQ0, xx, kQ1);
  qx = _mm256_fmadd_pd(qx, xx, kQ2);
  qx = _mm256_fmadd_pd(qx, xx, kQ3);
  const __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_add_pd(px, px), _mm256_sub_pd(qx, px)));
  const __m256i n64 =
      _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
  const __m256i pow2 = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(pow2));
}

__attribute__((target("avx2,fma"))) void softmax_avx2(const double* z,
                                                      int n_out, int nb,
                                                      double* probs) {
  const int vec_end = nb & ~3;
  const __m256d one = _mm256_set1_pd(1.0);
  for (int s = 0; s < vec_end; s += 4) {
    __m256d mx = _mm256_loadu_pd(z + s);
    for (int o = 1; o < n_out; ++o) {
      mx = _mm256_max_pd(
          mx, _mm256_loadu_pd(z + static_cast<std::size_t>(o) * nb + s));
    }
    __m256d sum = _mm256_setzero_pd();
    for (int o = 0; o < n_out; ++o) {
      const __m256d e = exp4_pd(_mm256_sub_pd(
          _mm256_loadu_pd(z + static_cast<std::size_t>(o) * nb + s), mx));
      _mm256_storeu_pd(probs + static_cast<std::size_t>(o) * nb + s, e);
      sum = _mm256_add_pd(sum, e);
    }
    const __m256d inv = _mm256_div_pd(one, sum);
    for (int o = 0; o < n_out; ++o) {
      double* pp = probs + static_cast<std::size_t>(o) * nb + s;
      _mm256_storeu_pd(pp, _mm256_mul_pd(_mm256_loadu_pd(pp), inv));
    }
  }
  if (vec_end < nb) softmax_scalar(z, n_out, nb, probs, vec_end, nb);
}

/// The dispatch enum only proves AVX2 (detect_simd_isa); the double kernels
/// also want FMA, which every AVX2-era core ships but the contract doesn't
/// include — degrade to scalar on the (hypothetical) AVX2-without-FMA part.
bool avx2_fma_ok() {
  static const bool ok = __builtin_cpu_supports("avx2") &&
                         __builtin_cpu_supports("fma");
  return ok;
}

#endif  // PMLP_HAVE_AVX2

// -------------------------------------------------------------------- NEON
//
// 2 double lanes per vector, vfmaq_f64 as the FMA; the grad partial sums
// combine as l0+l1 (vaddvq) plus a scalar tail.

#if defined(PMLP_HAVE_NEON)

void forward_neon(const double* w, const double* bias, int n_in, int n_out,
                  const double* in, double* out, int nb, bool relu) {
  const int vec_end = nb & ~1;
  const float64x2_t vzero = vdupq_n_f64(0.0);
  for (int o = 0; o < n_out; ++o) {
    const double* wr = w + static_cast<std::size_t>(o) * n_in;
    double* op = out + static_cast<std::size_t>(o) * nb;
    const float64x2_t vbias = vdupq_n_f64(bias[o]);
    for (int s = 0; s < vec_end; s += 2) {
      float64x2_t acc = vbias;
      for (int i = 0; i < n_in; ++i) {
        acc = vfmaq_n_f64(
            acc, vld1q_f64(in + static_cast<std::size_t>(i) * nb + s), wr[i]);
      }
      if (relu) acc = vmaxq_f64(acc, vzero);
      vst1q_f64(op + s, acc);
    }
  }
  if (vec_end < nb) {
    forward_scalar(w, bias, n_in, n_out, in, out, nb, vec_end, nb, relu);
  }
}

void grad_neon(const double* delta, const double* in, int n_in, int n_out,
               int nb, double* dw, double* db) {
  const int vec_end = nb & ~1;
  for (int o = 0; o < n_out; ++o) {
    const double* dp = delta + static_cast<std::size_t>(o) * nb;
    float64x2_t vb = vdupq_n_f64(0.0);
    for (int s = 0; s < vec_end; s += 2) vb = vaddq_f64(vb, vld1q_f64(dp + s));
    double bsum = vaddvq_f64(vb);
    for (int s = vec_end; s < nb; ++s) bsum += dp[s];
    db[o] += bsum;
    double* dwr = dw + static_cast<std::size_t>(o) * n_in;
    for (int i = 0; i < n_in; ++i) {
      const double* ip = in + static_cast<std::size_t>(i) * nb;
      float64x2_t vw = vdupq_n_f64(0.0);
      for (int s = 0; s < vec_end; s += 2) {
        vw = vfmaq_f64(vw, vld1q_f64(dp + s), vld1q_f64(ip + s));
      }
      double wsum = vaddvq_f64(vw);
      for (int s = vec_end; s < nb; ++s) wsum += dp[s] * ip[s];
      dwr[i] += wsum;
    }
  }
}

void delta_neon(const double* w, int n_in, int n_out, const double* delta,
                const double* in_act, double* prev, int nb, double relu_leak) {
  const int vec_end = nb & ~1;
  const float64x2_t vzero = vdupq_n_f64(0.0);
  const float64x2_t vleak = vdupq_n_f64(relu_leak);
  for (int i = 0; i < n_in; ++i) {
    double* pp = prev + static_cast<std::size_t>(i) * nb;
    const double* ap = in_act + static_cast<std::size_t>(i) * nb;
    for (int s = 0; s < vec_end; s += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (int o = 0; o < n_out; ++o) {
        acc = vfmaq_n_f64(
            acc, vld1q_f64(delta + static_cast<std::size_t>(o) * nb + s),
            w[static_cast<std::size_t>(o) * n_in + i]);
      }
      const uint64x2_t gate = vcgtq_f64(vld1q_f64(ap + s), vzero);
      vst1q_f64(pp + s, vbslq_f64(gate, acc, vmulq_f64(acc, vleak)));
    }
  }
  if (vec_end < nb) {
    delta_scalar(w, n_in, n_out, delta, in_act, prev, nb, vec_end, nb,
                 relu_leak);
  }
}

#endif  // PMLP_HAVE_NEON

}  // namespace

void train_forward_sweep(core::SimdIsa isa, const double* w,
                         const double* bias, int n_in, int n_out,
                         const double* in, double* out, int nb, bool relu) {
  switch (isa) {
#if defined(PMLP_HAVE_AVX2)
    case core::SimdIsa::kAvx2:
      if (avx2_fma_ok()) {
        forward_avx2(w, bias, n_in, n_out, in, out, nb, relu);
        return;
      }
      break;
#endif
#if defined(PMLP_HAVE_NEON)
    case core::SimdIsa::kNeon:
      forward_neon(w, bias, n_in, n_out, in, out, nb, relu);
      return;
#endif
    default:
      break;
  }
  forward_scalar(w, bias, n_in, n_out, in, out, nb, 0, nb, relu);
}

void train_grad_sweep(core::SimdIsa isa, const double* delta, const double* in,
                      int n_in, int n_out, int nb, double* dw, double* db) {
  switch (isa) {
#if defined(PMLP_HAVE_AVX2)
    case core::SimdIsa::kAvx2:
      if (avx2_fma_ok()) {
        grad_avx2(delta, in, n_in, n_out, nb, dw, db);
        return;
      }
      break;
#endif
#if defined(PMLP_HAVE_NEON)
    case core::SimdIsa::kNeon:
      grad_neon(delta, in, n_in, n_out, nb, dw, db);
      return;
#endif
    default:
      break;
  }
  grad_scalar(delta, in, n_in, n_out, nb, dw, db);
}

void train_softmax_sweep(core::SimdIsa isa, const double* z, int n_out,
                         int nb, double* probs) {
#if defined(PMLP_HAVE_AVX2)
  if (isa == core::SimdIsa::kAvx2 && avx2_fma_ok()) {
    softmax_avx2(z, n_out, nb, probs);
    return;
  }
#else
  (void)isa;  // NEON falls through to scalar (see the header note).
#endif
  softmax_scalar(z, n_out, nb, probs, 0, nb);
}

void train_delta_sweep(core::SimdIsa isa, const double* w, int n_in,
                       int n_out, const double* delta, const double* in_act,
                       double* prev, int nb, double relu_leak) {
  switch (isa) {
#if defined(PMLP_HAVE_AVX2)
    case core::SimdIsa::kAvx2:
      if (avx2_fma_ok()) {
        delta_avx2(w, n_in, n_out, delta, in_act, prev, nb, relu_leak);
        return;
      }
      break;
#endif
#if defined(PMLP_HAVE_NEON)
    case core::SimdIsa::kNeon:
      delta_neon(w, n_in, n_out, delta, in_act, prev, nb, relu_leak);
      return;
#endif
    default:
      break;
  }
  delta_scalar(w, n_in, n_out, delta, in_act, prev, nb, 0, nb, relu_leak);
}

}  // namespace pmlp::mlp
