// Bit-level helpers shared by the adder-area model, the netlist generator and
// the approximate-MLP inference path.
//
// All printed-MLP signals in this code base are small unsigned bit vectors
// (4-bit inputs, 8-bit activations, <=24-bit accumulators), so plain
// uint32_t/int64_t carriers with explicit widths are used throughout instead
// of a heavyweight arbitrary-precision type.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace pmlp::bitops {

/// Number of set bits in `v`.
[[nodiscard]] constexpr int popcount(std::uint64_t v) noexcept {
  return std::popcount(v);
}

/// Mask with the lowest `width` bits set. `width` must be in [0, 64].
[[nodiscard]] constexpr std::uint64_t low_mask(int width) noexcept {
  return width >= 64 ? ~std::uint64_t{0}
         : width <= 0 ? 0
                      : ((std::uint64_t{1} << width) - 1);
}

/// True if bit `pos` of `v` is set.
[[nodiscard]] constexpr bool test_bit(std::uint64_t v, int pos) noexcept {
  return pos >= 0 && pos < 64 && ((v >> pos) & 1u) != 0;
}

/// Sets (value=true) or clears bit `pos` and returns the new word.
[[nodiscard]] constexpr std::uint64_t set_bit(std::uint64_t v, int pos,
                                              bool value) noexcept {
  if (pos < 0 || pos >= 64) return v;
  const std::uint64_t m = std::uint64_t{1} << pos;
  return value ? (v | m) : (v & ~m);
}

/// Index of the most significant set bit, or -1 for v == 0.
[[nodiscard]] constexpr int msb_index(std::uint64_t v) noexcept {
  return v == 0 ? -1 : 63 - std::countl_zero(v);
}

/// Minimum number of bits needed to represent unsigned `v` (>=1 for v==0 -> 1).
[[nodiscard]] constexpr int bit_width_u(std::uint64_t v) noexcept {
  return v == 0 ? 1 : msb_index(v) + 1;
}

/// Minimum two's-complement width holding the signed value `v`.
[[nodiscard]] int bit_width_signed(std::int64_t v) noexcept;

/// Positions (ascending) of the set bits in `v`.
[[nodiscard]] std::vector<int> set_bit_positions(std::uint64_t v);

/// Two's-complement encoding of `v` into `width` bits (value modulo 2^width).
/// `width` must be in [1, 63].
[[nodiscard]] std::uint64_t to_twos_complement(std::int64_t v, int width);

/// Inverse of to_twos_complement: interpret the low `width` bits as signed.
[[nodiscard]] std::int64_t from_twos_complement(std::uint64_t bits, int width);

/// Binary string (MSB first) of the low `width` bits, e.g. "101101".
[[nodiscard]] std::string to_binary_string(std::uint64_t v, int width);

/// Parse a binary string produced by to_binary_string.
[[nodiscard]] std::uint64_t from_binary_string(const std::string& s);

/// Reverses the low `width` bits of `v`.
[[nodiscard]] std::uint64_t reverse_bits(std::uint64_t v, int width);

}  // namespace pmlp::bitops
