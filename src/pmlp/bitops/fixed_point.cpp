#include "pmlp/bitops/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmlp::bitops {

std::uint32_t UnsignedQuantizer::quantize(double x) const noexcept {
  const double clamped = std::clamp(x, 0.0, 1.0);
  const double scaled = clamped * static_cast<double>(levels());
  return static_cast<std::uint32_t>(std::lround(scaled));
}

double UnsignedQuantizer::dequantize(std::uint32_t code) const noexcept {
  const std::uint32_t c = std::min(code, levels());
  return static_cast<double>(c) / static_cast<double>(levels());
}

SignedQuantizer SignedQuantizer::fit(const std::vector<double>& values,
                                     int bits) {
  if (bits < 2 || bits > 31) {
    throw std::invalid_argument("SignedQuantizer::fit: bits out of [2,31]");
  }
  double max_abs = 0.0;
  for (double v : values) max_abs = std::max(max_abs, std::abs(v));
  SignedQuantizer q;
  q.bits = bits;
  const auto max_code = static_cast<double>((std::int32_t{1} << (bits - 1)) - 1);
  q.scale = max_abs > 0.0 ? max_abs / max_code : 1.0 / max_code;
  return q;
}

std::int32_t SignedQuantizer::quantize(double w) const noexcept {
  const double code = std::round(w / scale);
  const double limit = static_cast<double>(max_code());
  return static_cast<std::int32_t>(std::clamp(code, -limit, limit));
}

double SignedQuantizer::dequantize(std::int32_t code) const noexcept {
  return static_cast<double>(code) * scale;
}

Pow2Weight nearest_pow2(std::int64_t code, int max_exponent) {
  Pow2Weight w;
  w.sign = code < 0 ? -1 : +1;
  const auto mag = static_cast<double>(code < 0 ? -code : code);
  if (mag < 1.0) return {+1, 0};
  // Round the exponent in log-space: nearest power of two to `mag`.
  const double e = std::log2(mag);
  int k = static_cast<int>(std::lround(e));
  // lround(log2) can be off by one at the midpoints; fix up by comparing the
  // two candidate magnitudes directly.
  const double lo = std::exp2(k - 1), hi = std::exp2(k);
  if (k > 0 && std::abs(mag - lo) < std::abs(mag - hi)) k -= 1;
  k = std::clamp(k, 0, max_exponent);
  w.exponent = k;
  return w;
}

}  // namespace pmlp::bitops
