#include "pmlp/bitops/bitops.hpp"

#include <cassert>
#include <stdexcept>

namespace pmlp::bitops {

int bit_width_signed(std::int64_t v) noexcept {
  // Smallest width w such that -2^(w-1) <= v < 2^(w-1).
  if (v == 0 || v == -1) return 1;
  if (v > 0) return bit_width_u(static_cast<std::uint64_t>(v)) + 1;
  // Negative: width of ~v (== -v - 1) plus sign bit.
  return bit_width_u(static_cast<std::uint64_t>(~v)) + 1;
}

std::vector<int> set_bit_positions(std::uint64_t v) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(popcount(v)));
  while (v != 0) {
    const int pos = std::countr_zero(v);
    out.push_back(pos);
    v &= v - 1;
  }
  return out;
}

std::uint64_t to_twos_complement(std::int64_t v, int width) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("to_twos_complement: width out of [1,63]");
  }
  return static_cast<std::uint64_t>(v) & low_mask(width);
}

std::int64_t from_twos_complement(std::uint64_t bits, int width) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("from_twos_complement: width out of [1,63]");
  }
  bits &= low_mask(width);
  if (test_bit(bits, width - 1)) {
    return static_cast<std::int64_t>(bits) -
           static_cast<std::int64_t>(std::uint64_t{1} << width);
  }
  return static_cast<std::int64_t>(bits);
}

std::string to_binary_string(std::uint64_t v, int width) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("to_binary_string: width out of [1,64]");
  }
  std::string s(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i) {
    if (test_bit(v, width - 1 - i)) s[static_cast<std::size_t>(i)] = '1';
  }
  return s;
}

std::uint64_t from_binary_string(const std::string& s) {
  if (s.empty() || s.size() > 64) {
    throw std::invalid_argument("from_binary_string: length out of [1,64]");
  }
  std::uint64_t v = 0;
  for (char c : s) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("from_binary_string: non-binary digit");
    }
    v = (v << 1) | static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::uint64_t reverse_bits(std::uint64_t v, int width) {
  std::uint64_t out = 0;
  for (int i = 0; i < width; ++i) {
    if (test_bit(v, i)) out = set_bit(out, width - 1 - i, true);
  }
  return out;
}

}  // namespace pmlp::bitops
