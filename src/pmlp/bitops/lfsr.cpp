#include "pmlp/bitops/lfsr.hpp"

#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::bitops {

std::uint32_t Lfsr::taps_for_width(int width) {
  // Maximal-length Galois tap masks (xor applied when LSB shifted out).
  // Values are standard primitive-polynomial masks.
  switch (width) {
    case 4:  return 0x9u;      // x^4 + x^3 + 1
    case 5:  return 0x12u;     // x^5 + x^3 + 1
    case 6:  return 0x21u;     // x^6 + x^5 + 1
    case 7:  return 0x41u;     // x^7 + x^6 + 1
    case 8:  return 0x8Eu;     // x^8 + x^6 + x^5 + x^4 + 1
    case 9:  return 0x108u;    // x^9 + x^5 + 1
    case 10: return 0x204u;    // x^10 + x^7 + 1
    case 11: return 0x402u;    // x^11 + x^9 + 1
    case 12: return 0x829u;    // x^12 + x^6 + x^4 + x^1 + 1
    case 13: return 0x100Du;   // x^13 + x^4 + x^3 + x^1 + 1
    case 14: return 0x2015u;   // x^14 + x^5 + x^3 + x^1 + 1
    case 15: return 0x4001u;   // x^15 + x^14 + 1
    case 16: return 0x8016u;   // x^16 + x^15 + x^13 + x^4 + 1
    default:
      throw std::invalid_argument("Lfsr: width must be in [4,16]");
  }
}

Lfsr::Lfsr(int width, std::uint32_t seed)
    : width_(width), taps_(taps_for_width(width)) {
  state_ = seed & static_cast<std::uint32_t>(low_mask(width));
  if (state_ == 0) state_ = 1;
}

std::uint32_t Lfsr::next() {
  const bool lsb = (state_ & 1u) != 0;
  state_ >>= 1;
  if (lsb) state_ ^= taps_;
  return state_;
}

}  // namespace pmlp::bitops
