// Maximal-length linear-feedback shift registers. These are the stochastic
// number generators (SNGs) of the DATE'21 stochastic-computing printed MLP
// baseline we compare against in Fig. 4, and double as a cheap deterministic
// bit source in tests.
#pragma once

#include <cstdint>

namespace pmlp::bitops {

/// Galois LFSR over `width` bits (4..16) using a maximal-length tap set, so
/// the sequence period is 2^width - 1 (state 0 is absorbing and rejected).
class Lfsr {
 public:
  /// `seed` must be non-zero after truncation to `width` bits; a zero seed is
  /// replaced by 1 so the register never locks up.
  explicit Lfsr(int width, std::uint32_t seed = 1u);

  /// Advance one step and return the new state.
  std::uint32_t next();

  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t period() const noexcept {
    return (std::uint32_t{1} << width_) - 1u;
  }

  /// Maximal-length Galois tap mask for the given width.
  static std::uint32_t taps_for_width(int width);

 private:
  int width_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

/// Stochastic number generator: emits a 1 with probability `threshold / 2^w`
/// per LFSR step (unipolar SC encoding).
class StochasticNumberGenerator {
 public:
  StochasticNumberGenerator(int width, std::uint32_t threshold,
                            std::uint32_t seed = 1u)
      : lfsr_(width, seed), threshold_(threshold) {}

  /// Next stochastic bit: compare LFSR state against the threshold.
  bool next_bit() { return lfsr_.next() <= threshold_; }

  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

 private:
  Lfsr lfsr_;
  std::uint32_t threshold_;
};

}  // namespace pmlp::bitops
