// Fixed-point quantization helpers used by both the exact bespoke baseline
// (8-bit fixed-point weights, 4-bit inputs, as in Mubarik et al. MICRO'20)
// and the approximate pow2-weight model of the paper (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

namespace pmlp::bitops {

/// Unsigned uniform quantizer mapping [0, 1] real values onto `bits`-bit
/// integer codes (0 .. 2^bits - 1). Used for the 4-bit MLP inputs and the
/// 8-bit QReLU activations.
struct UnsignedQuantizer {
  int bits = 4;

  [[nodiscard]] std::uint32_t levels() const noexcept {
    return (std::uint32_t{1} << bits) - 1u;
  }
  /// Quantize a real in [0,1]; values outside are clamped.
  [[nodiscard]] std::uint32_t quantize(double x) const noexcept;
  /// Midpoint reconstruction of a code back to [0,1].
  [[nodiscard]] double dequantize(std::uint32_t code) const noexcept;
};

/// Symmetric signed fixed-point quantizer for weights: `bits` total bits
/// (one sign bit), scale chosen per-tensor from the max |w|.
/// code in [-(2^(bits-1)-1), +(2^(bits-1)-1)], w ~= code * scale.
struct SignedQuantizer {
  int bits = 8;
  double scale = 1.0;  ///< real value represented by code == 1

  /// Build a quantizer whose range covers max|w| of `values`.
  static SignedQuantizer fit(const std::vector<double>& values, int bits);

  [[nodiscard]] std::int32_t max_code() const noexcept {
    return (std::int32_t{1} << (bits - 1)) - 1;
  }
  [[nodiscard]] std::int32_t quantize(double w) const noexcept;
  [[nodiscard]] double dequantize(std::int32_t code) const noexcept;
};

/// Power-of-two weight descriptor (paper Eq. 1): w = sign * 2^exponent,
/// exponent in [0, max_exponent]. The all-masked case (structural zero) is
/// represented outside this type (a zero mask), exactly as in the paper.
struct Pow2Weight {
  int sign = +1;      ///< -1 or +1
  int exponent = 0;   ///< k in [0, n-2] for n-bit weights

  [[nodiscard]] std::int64_t value() const noexcept {
    return static_cast<std::int64_t>(sign) * (std::int64_t{1} << exponent);
  }
};

/// Snap an integer weight code to the nearest power-of-two magnitude with
/// exponent clamped to [0, max_exponent]. Zero maps to {+1, 0} by convention
/// (callers represent true zeros with a zero mask instead).
[[nodiscard]] Pow2Weight nearest_pow2(std::int64_t code, int max_exponent);

}  // namespace pmlp::bitops
