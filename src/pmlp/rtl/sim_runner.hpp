// External HDL simulator driver for the RTL round-trip: discover an
// installed Verilog simulator at runtime (Icarus `iverilog` preferred,
// Verilator as fallback), compile a DUT + self-checking testbench pair,
// run it, and parse the testbench's PASS/FAIL summary. The repo's emitted
// testbenches print exactly one of
//
//   TESTBENCH PASS (<n> vectors)
//   TESTBENCH FAIL: <n> errors
//
// so the parse is a contract with netlist/testbench.cpp, covered by unit
// tests on both sides. Machines without a simulator get std::nullopt from
// find_simulator() and the caller degrades to the in-process checks; CI
// installs iverilog and treats simulation as a hard requirement.
#pragma once

#include <optional>
#include <string>

namespace pmlp::rtl {

/// A discovered simulator toolchain.
struct Simulator {
  std::string name;  ///< "iverilog" or "verilator"
  std::string path;  ///< absolute path of the front-end binary
};

/// Find a usable simulator. The PMLP_SIMULATOR environment variable
/// overrides discovery: "off" (or "none") disables simulation entirely, an
/// absolute path is used verbatim (tool inferred from the basename), and a
/// bare name restricts the PATH search to that tool. Otherwise PATH is
/// searched for iverilog, then verilator.
[[nodiscard]] std::optional<Simulator> find_simulator();

/// One compile+run of a testbench.
struct SimRun {
  bool ok = false;      ///< compiled, ran, and printed TESTBENCH PASS
  int vectors = 0;      ///< vectors reported by a PASS line
  int errors = 0;       ///< errors reported by a FAIL line; -1 = no summary
  std::string command;  ///< the full shell command that was executed
  std::string log;      ///< combined compile+run output
};

/// Parse a simulator log for the testbench summary line. Exposed for unit
/// tests (it must track the emit_testbench display strings).
[[nodiscard]] SimRun parse_testbench_log(const std::string& log);

/// Compiles and runs testbenches with one discovered simulator.
class SimRunner {
 public:
  explicit SimRunner(Simulator sim);

  [[nodiscard]] const Simulator& simulator() const { return sim_; }

  /// Compile `dut_file` + `tb_file` and run the testbench, staging build
  /// products and logs under `work_dir` (created if missing). Never
  /// throws for simulator failures — a compile error or missing summary
  /// comes back as ok=false with the log attached.
  [[nodiscard]] SimRun run(const std::string& dut_file,
                           const std::string& tb_file,
                           const std::string& work_dir) const;

 private:
  Simulator sim_;
};

}  // namespace pmlp::rtl
