#include "pmlp/rtl/sim_runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace pmlp::rtl {

namespace fs = std::filesystem;

namespace {

/// POSIX-shell single-quote: safe for std::system() argument splicing.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

/// Search PATH for an executable named `tool`.
std::optional<std::string> which(const std::string& tool) {
  const char* path_env = std::getenv("PATH");
  if (path_env == nullptr) return std::nullopt;
  std::istringstream dirs(path_env);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) continue;
    std::error_code ec;
    const fs::path candidate = fs::path(dir) / tool;
    if (fs::is_regular_file(candidate, ec)) {
      const auto perms = fs::status(candidate, ec).permissions();
      if (ec) continue;
      if ((perms & (fs::perms::owner_exec | fs::perms::group_exec |
                    fs::perms::others_exec)) != fs::perms::none) {
        return candidate.string();
      }
    }
  }
  return std::nullopt;
}

std::string tool_from_basename(const std::string& path) {
  const std::string base = fs::path(path).filename().string();
  if (base.find("verilator") != std::string::npos) return "verilator";
  return "iverilog";
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

std::optional<Simulator> find_simulator() {
  const char* env = std::getenv("PMLP_SIMULATOR");
  if (env != nullptr && env[0] != '\0') {
    const std::string v = env;
    if (v == "off" || v == "none" || v == "0") return std::nullopt;
    if (v.find('/') != std::string::npos) {
      std::error_code ec;
      if (!fs::is_regular_file(v, ec)) return std::nullopt;
      return Simulator{tool_from_basename(v), v};
    }
    if (auto p = which(v)) return Simulator{tool_from_basename(*p), *p};
    return std::nullopt;
  }
  for (const char* tool : {"iverilog", "verilator"}) {
    if (auto p = which(tool)) return Simulator{tool, *p};
  }
  return std::nullopt;
}

SimRun parse_testbench_log(const std::string& log) {
  SimRun run;
  run.log = log;
  run.errors = -1;  // no summary seen yet
  std::istringstream is(log);
  std::string line;
  while (std::getline(is, line)) {
    int n = 0;
    if (std::sscanf(line.c_str(), "TESTBENCH PASS (%d vectors)", &n) == 1) {
      run.ok = true;
      run.vectors = n;
      run.errors = 0;
      return run;
    }
    if (std::sscanf(line.c_str(), "TESTBENCH FAIL: %d errors", &n) == 1) {
      run.ok = false;
      run.errors = n;
      return run;
    }
  }
  return run;
}

SimRunner::SimRunner(Simulator sim) : sim_(std::move(sim)) {}

SimRun SimRunner::run(const std::string& dut_file, const std::string& tb_file,
                      const std::string& work_dir) const {
  std::error_code ec;
  fs::create_directories(work_dir, ec);
  const fs::path work(work_dir);
  const fs::path log_path = work / "sim.log";

  std::string command;
  if (sim_.name == "verilator") {
    // Verilator 5 can build and run a timed testbench directly.
    const fs::path objdir = work / "obj_dir";
    command = shell_quote(sim_.path) + " --binary --timing -Wno-fatal -j 1" +
              " --Mdir " + shell_quote(objdir.string()) + " -o sim " +
              shell_quote(tb_file) + " " + shell_quote(dut_file) + " > " +
              shell_quote(log_path.string()) + " 2>&1 && " +
              shell_quote((objdir / "sim").string()) + " >> " +
              shell_quote(log_path.string()) + " 2>&1";
  } else {
    // Icarus: compile to a vvp image, then run it with the vvp that ships
    // next to the discovered iverilog (fall back to PATH).
    const fs::path image = work / "sim.vvp";
    const fs::path vvp_sibling = fs::path(sim_.path).parent_path() / "vvp";
    const std::string vvp = fs::exists(vvp_sibling, ec)
                                ? vvp_sibling.string()
                                : std::string("vvp");
    command = shell_quote(sim_.path) + " -g2001 -o " +
              shell_quote(image.string()) + " " + shell_quote(dut_file) +
              " " + shell_quote(tb_file) + " > " +
              shell_quote(log_path.string()) + " 2>&1 && " +
              shell_quote(vvp) + " " + shell_quote(image.string()) + " >> " +
              shell_quote(log_path.string()) + " 2>&1";
  }

  const int rc = std::system(command.c_str());
  SimRun result = parse_testbench_log(read_file(log_path));
  result.command = command;
  if (rc != 0) result.ok = false;
  return result;
}

}  // namespace pmlp::rtl
