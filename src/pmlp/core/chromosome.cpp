#include "pmlp/core/chromosome.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

ChromosomeCodec::ChromosomeCodec(const mlp::Topology& topology,
                                 const BitConfig& bits)
    : topology_(topology), bits_(bits) {
  // Gene order (Fig. 3): for each layer, for each neuron, for each input:
  // [mask, sign, exponent]; then the neuron's bias.
  const ApproxMlp shape(topology, bits);
  for (const auto& layer : shape.layers()) {
    const int mask_hi =
        static_cast<int>(bitops::low_mask(layer.input_bits));
    for (int o = 0; o < layer.n_out; ++o) {
      for (int i = 0; i < layer.n_in; ++i) {
        (void)i;
        bounds_.push_back({0, mask_hi});                    // m
        kinds_.push_back(GeneKind::kMask);
        bounds_.push_back({0, 1});                          // s (0 -> -1)
        kinds_.push_back(GeneKind::kSign);
        bounds_.push_back({0, bits.max_exponent()});        // k
        kinds_.push_back(GeneKind::kExponent);
      }
      bounds_.push_back({static_cast<int>(bits.bias_min()),
                         static_cast<int>(bits.bias_max())});  // b
      kinds_.push_back(GeneKind::kBias);
    }
  }
  n_genes_ = static_cast<int>(bounds_.size());
}

std::vector<int> ChromosomeCodec::encode(const ApproxMlp& net) const {
  std::vector<int> genes;
  genes.reserve(static_cast<std::size_t>(n_genes_));
  for (const auto& layer : net.layers()) {
    for (int o = 0; o < layer.n_out; ++o) {
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        genes.push_back(static_cast<int>(c.mask));
        genes.push_back(c.sign < 0 ? 0 : 1);
        genes.push_back(c.exponent);
      }
      genes.push_back(
          static_cast<int>(layer.biases[static_cast<std::size_t>(o)]));
    }
  }
  if (static_cast<int>(genes.size()) != n_genes_) {
    throw std::logic_error("ChromosomeCodec::encode: size mismatch");
  }
  return genes;
}

ApproxMlp ChromosomeCodec::decode(std::span<const int> genes) const {
  if (static_cast<int>(genes.size()) != n_genes_) {
    throw std::invalid_argument("ChromosomeCodec::decode: size mismatch");
  }
  ApproxMlp net(topology_, bits_);
  std::size_t g = 0;
  for (auto& layer : net.layers()) {
    for (int o = 0; o < layer.n_out; ++o) {
      for (int i = 0; i < layer.n_in; ++i) {
        ApproxConn& c = layer.conn(o, i);
        const auto b_mask = bounds_[g];
        c.mask = static_cast<std::uint32_t>(
            std::clamp(genes[g], b_mask.lo, b_mask.hi));
        ++g;
        c.sign = std::clamp(genes[g], 0, 1) == 0 ? -1 : +1;
        ++g;
        const auto b_k = bounds_[g];
        c.exponent = std::clamp(genes[g], b_k.lo, b_k.hi);
        ++g;
      }
      const auto b_b = bounds_[g];
      layer.biases[static_cast<std::size_t>(o)] =
          std::clamp(genes[g], b_b.lo, b_b.hi);
      ++g;
    }
  }
  net.update_qrelu_shifts();
  return net;
}

}  // namespace pmlp::core
