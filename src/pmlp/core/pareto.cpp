#include "pmlp/core/pareto.hpp"

#include <algorithm>
#include <limits>

namespace pmlp::core {

bool dominates2(const Point2& a, const Point2& b) {
  return a.f1 <= b.f1 && a.f2 <= b.f2 && (a.f1 < b.f1 || a.f2 < b.f2);
}

std::vector<std::size_t> pareto_indices(std::span<const Point2> pts) {
  std::vector<std::size_t> idx(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (pts[a].f1 != pts[b].f1) return pts[a].f1 < pts[b].f1;
    return pts[a].f2 < pts[b].f2;
  });
  // Sweep by f1: a point is non-dominated iff its f2 beats the running min.
  std::vector<std::size_t> front;
  double best_f2 = std::numeric_limits<double>::infinity();
  for (std::size_t i : idx) {
    if (pts[i].f2 < best_f2) {
      front.push_back(i);
      best_f2 = pts[i].f2;
    }
  }
  return front;
}

double hypervolume2(std::span<const Point2> pts, double ref1, double ref2) {
  const auto front = pareto_indices(pts);
  double hv = 0.0;
  double prev_f1 = ref1;
  // Walk the front from largest f1 to smallest; each step adds a rectangle.
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    const Point2& p = pts[*it];
    if (p.f1 >= ref1 || p.f2 >= ref2) continue;
    hv += (prev_f1 - p.f1) * (ref2 - p.f2);
    prev_f1 = p.f1;
  }
  return hv;
}

}  // namespace pmlp::core
