// The right half of Fig. 2: hardware evaluation of the evolved circuits.
// Every estimated-Pareto candidate is "synthesized" (netlist built), priced
// against the EGFET library, functionally cross-checked against the Eq. 4
// behavioural model, and re-scored on the *test* set; the true
// accuracy-area Pareto front is then extracted from the evaluated designs.
#pragma once

#include <optional>
#include <span>

#include "pmlp/core/trainer.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/hwmodel/power.hpp"

namespace pmlp::core {

struct HwEvaluatedPoint {
  ApproxMlp model;
  double test_accuracy = 0.0;
  long fa_area = 0;                     ///< training-time proxy, for reference
  hwmodel::CircuitCost cost;            ///< netlist area/power/delay
  bool functional_match = true;         ///< netlist == Eq. 4 on checked samples
};

struct HardwareAnalysisConfig {
  /// Samples cross-checked between netlist and behavioural model
  /// (0 disables the equivalence check; negative checks the whole set).
  int equivalence_samples = 64;
  /// Parallel candidate evaluation (netlist build + EGFET pricing +
  /// equivalence check fan out over a worker pool): 1 = serial (the
  /// default for direct calls), 0 = all hardware threads, N = N workers.
  /// Output order and every result are bit-identical for any setting; the
  /// FlowEngine overrides this with the flow-wide TrainerConfig::n_threads.
  int n_threads = 1;
};

/// Build/price/verify every candidate at the given supply library.
[[nodiscard]] std::vector<HwEvaluatedPoint> evaluate_hardware(
    std::span<const EstimatedPoint> candidates,
    const datasets::QuantizedDataset& test, const hwmodel::CellLibrary& lib,
    const HardwareAnalysisConfig& cfg = {});

/// Non-dominated subset on (1 - test_accuracy, netlist area).
[[nodiscard]] std::vector<HwEvaluatedPoint> true_pareto(
    std::vector<HwEvaluatedPoint> points);

/// Paper Table II selection rule: the smallest-area design whose test
/// accuracy loss versus `baseline_accuracy` is at most `max_loss` (5%).
[[nodiscard]] std::optional<HwEvaluatedPoint> best_within_loss(
    std::span<const HwEvaluatedPoint> points, double baseline_accuracy,
    double max_loss);

}  // namespace pmlp::core
