// Paper-suite lookup helpers shared by the CLI, the bench binaries and the
// examples (previously each re-implemented its own spec search + setup).
// One name ("BreastCancer", "Cardio", "Pendigits", "RedWine", "WhiteWine")
// resolves to the synthetic stand-in spec, the generated dataset and the
// Table I topology.
//
// Real UCI files replace the synthetic stand-ins when present on disk:
// point PMLP_UCI_DIR at a directory holding the standard UCI file names
// (breast-cancer-wisconsin.data, cardio.csv, pendigits.tra,
// winequality-red.csv, winequality-white.csv) and load_paper_dataset()
// loads the real data instead, validating that its shape matches the
// Table I spec. Unset — the deterministic default — everything stays
// synthetic and bit-reproducible.
#pragma once

#include <string>

#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/topology.hpp"

namespace pmlp::core {

/// Find a Table I dataset's synthetic spec by name; throws
/// std::invalid_argument listing the valid names.
[[nodiscard]] datasets::SyntheticSpec find_paper_spec(const std::string& name);

/// The PMLP_UCI_DIR root, or "" when unset/empty (synthetic mode).
[[nodiscard]] std::string uci_data_dir();

/// The real-data file that would back `name` under PMLP_UCI_DIR: probes
/// the dataset's standard UCI file names and returns the first that
/// exists, or "" when none does (or PMLP_UCI_DIR is unset). Throws
/// std::invalid_argument on an unknown dataset name.
[[nodiscard]] std::string find_uci_file(const std::string& name);

/// The dataset for a Table I name: the real UCI file when PMLP_UCI_DIR
/// holds one (throws std::invalid_argument when its feature/class shape
/// contradicts the Table I spec — a malformed file must not silently
/// train), the deterministic synthetic stand-in otherwise.
[[nodiscard]] datasets::Dataset load_paper_dataset(const std::string& name);

/// The Table I topology for the dataset (throws on unknown name).
[[nodiscard]] const mlp::Topology& paper_topology(const std::string& name);

}  // namespace pmlp::core
