// Paper-suite lookup helpers shared by the CLI, the bench binaries and the
// examples (previously each re-implemented its own spec search + setup).
// One name ("BreastCancer", "Cardio", "Pendigits", "RedWine", "WhiteWine")
// resolves to the synthetic stand-in spec, the generated dataset and the
// Table I topology.
#pragma once

#include <string>

#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/topology.hpp"

namespace pmlp::core {

/// Find a Table I dataset's synthetic spec by name; throws
/// std::invalid_argument listing the valid names.
[[nodiscard]] datasets::SyntheticSpec find_paper_spec(const std::string& name);

/// Generate the normalized dataset for a Table I name (deterministic).
[[nodiscard]] datasets::Dataset load_paper_dataset(const std::string& name);

/// The Table I topology for the dataset (throws on unknown name).
[[nodiscard]] const mlp::Topology& paper_topology(const std::string& name);

}  // namespace pmlp::core
