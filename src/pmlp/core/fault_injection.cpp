#include "pmlp/core/fault_injection.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace pmlp::core {
namespace fs = std::filesystem;

FaultInjector::FaultInjector() {
  if (const char* s = std::getenv("PMLP_FAULT_KILL_STAGE")) {
    kill_stage_ = s;
  }
  if (const char* s = std::getenv("PMLP_FAULT_KILL_GA_GEN")) {
    kill_ga_gen_ = std::atoi(s);
  }
  if (const char* s = std::getenv("PMLP_FAULT_HEARTBEAT_STALL")) {
    heartbeat_stall_ = s[0] != '\0' && s[0] != '0';
  }
  if (const char* s = std::getenv("PMLP_FAULT_CORRUPT")) {
    corrupt_file_ = s;
  }
  armed_ = !kill_stage_.empty() || kill_ga_gen_ >= 0 || heartbeat_stall_ ||
           !corrupt_file_.empty();
}

const FaultInjector& FaultInjector::instance() {
  static const FaultInjector injector;
  return injector;
}

void FaultInjector::maybe_kill_at_stage(const char* stage) const {
  if (!armed_ || kill_stage_.empty()) return;
  // _exit, not exit: simulate SIGKILL — no destructors, no stream flushes,
  // no lease release. Everything not already fsync'd+renamed is lost.
  if (kill_stage_ == stage) _exit(137);
}

void FaultInjector::maybe_kill_at_ga_checkpoint(int next_generation) const {
  if (!armed_ || kill_ga_gen_ < 0) return;
  if (kill_ga_gen_ == next_generation) _exit(137);
}

void FaultInjector::maybe_corrupt_artifact(const std::string& path) const {
  if (!armed_ || corrupt_file_.empty() || corrupted_once_) return;
  if (fs::path(path).filename().string() != corrupt_file_) return;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return;
  fs::resize_file(path, size / 2, ec);
  corrupted_once_ = true;
}

}  // namespace pmlp::core
