// Small 2-D Pareto utilities (both objectives minimized): front extraction
// and hypervolume, used for Pareto analysis of trained circuits and for
// convergence assertions in tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pmlp::core {

struct Point2 {
  double f1 = 0.0;
  double f2 = 0.0;
};

/// a dominates b (minimization, weak on each axis, strict on one).
[[nodiscard]] bool dominates2(const Point2& a, const Point2& b);

/// Indices of the non-dominated points, sorted by f1 ascending.
[[nodiscard]] std::vector<std::size_t> pareto_indices(std::span<const Point2> pts);

/// 2-D hypervolume dominated by `pts` w.r.t. reference (ref1, ref2);
/// points beyond the reference contribute nothing.
[[nodiscard]] double hypervolume2(std::span<const Point2> pts, double ref1,
                                  double ref2);

}  // namespace pmlp::core
