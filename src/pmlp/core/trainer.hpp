// The framework of Fig. 2: discrete genetic-based hardware-aware training.
// Runs NSGA-II over the chromosome space (masks, signs, exponents, biases),
// returns the estimated accuracy-area Pareto set of approximate MLPs, and
// (together with hardware_analysis.hpp) the hardware-evaluated true front.
#pragma once

#include <optional>
#include <string>

#include "pmlp/core/problem.hpp"

namespace pmlp::core {

struct TrainerConfig {
  nsga2::Config ga;        ///< population/generations/operators
  BitConfig bits;          ///< weight/input/activation/bias widths
  ProblemConfig problem;   ///< loss bound + doping
  /// Parallel fitness evaluation for every engine the trainer runs:
  /// 0 = all hardware threads, 1 = serial, N = N pool workers. This knob
  /// supersedes ga.n_threads (it is copied over it before optimization).
  /// At flow level it also drives the per-point refine fan-out and the
  /// hardware-analysis stage; results are bit-identical for any setting.
  int n_threads = 0;
};

/// One point of the estimated Pareto set (training-time objectives).
struct EstimatedPoint {
  ApproxMlp model;
  double train_accuracy = 0.0;
  long fa_area = 0;
};

/// GA-stage output. The wall/throughput counters here are the template for
/// the FlowEngine's per-stage StageReport accounting (flow.hpp): the GA
/// stage's report carries `evaluations` as its work-item count, and a
/// checkpointed TrainingResult round-trips these counters verbatim so a
/// resumed run reports the original training cost.
struct TrainingResult {
  std::vector<EstimatedPoint> estimated_pareto;  ///< sorted by area ascending
  long evaluations = 0;
  double wall_seconds = 0.0;
  double baseline_train_accuracy = 0.0;
  // Evaluation-engine perf counters for this run (see eval_engine.hpp).
  /// End-to-end trainer throughput: individuals scored per second, cache
  /// hits included. Compiled-inference-only throughput is
  /// evals_per_second * (1 - cache_hit_rate).
  double evals_per_second = 0.0;
  long cache_hits = 0;          ///< memo-cache short-circuits
  double cache_hit_rate = 0.0;  ///< hits / lookups (0 when cache off)
  /// SIMD ISA the batched kernels dispatched to ("avx2"/"neon"/"scalar")
  /// and the layer-sweep block size, so eval_throughput figures compare
  /// across machines. Runtime machine metadata, NOT serialized with
  /// checkpoints (a resumed artifact describes the training, not the host);
  /// empty on a TrainingResult loaded from disk.
  std::string simd_isa;
  int eval_block = 0;
};

/// Train approximate MLPs for `topology` on `train`. `baseline` supplies the
/// accuracy reference for the 10% bound and the doped seeds (pass the
/// quantized bespoke baseline [2]).
[[nodiscard]] TrainingResult train_ga_axc(
    const mlp::Topology& topology, const datasets::QuantizedDataset& train,
    std::optional<mlp::QuantMlp> baseline, const TrainerConfig& cfg);

/// Accuracy-only GA training (single objective, no approximations): the
/// "Exec.Time GA" reference column of Table III. Masks are pinned to
/// all-ones; area is ignored (objective 2 constant).
[[nodiscard]] TrainingResult train_ga_accuracy_only(
    const mlp::Topology& topology, const datasets::QuantizedDataset& train,
    const TrainerConfig& cfg);

}  // namespace pmlp::core
