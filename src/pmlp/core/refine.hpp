// Greedy post-GA refinement (an extension beyond the paper): given a trained
// approximate MLP, try clearing mask bits one at a time — cheapest-first by
// the FA-count gain of the removal — keeping every change that does not push
// training accuracy below a floor. This squeezes the last FAs out of each
// Pareto point before synthesis; bench_ablation quantifies the benefit.
//
// refine_greedy runs on the incremental RefineEngine (refine_engine.hpp):
// memoized per-sample forward state, delta updates from the mutated layer
// only, and an early-aborted accuracy scan. refine_greedy_naive is the
// original full-re-evaluation loop, kept as the bit-identical reference
// oracle (refine_engine_test compares the two). refine_front fans the
// per-Pareto-point refinement out over a ThreadPool; one engine per point,
// per-index output slots, bit-identical to the serial loop for any thread
// count.
#pragma once

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/dataset.hpp"

namespace pmlp::core {

struct RefineConfig {
  /// Lowest acceptable training accuracy (absolute, e.g. baseline - 0.05).
  double accuracy_floor = 0.0;
  /// Maximum full passes over all remaining mask bits.
  int max_passes = 3;
  /// Also try rounding biases toward fewer set bits (cheaper constants).
  bool refine_biases = true;
};

struct RefineReport {
  long bits_cleared = 0;
  long biases_simplified = 0;
  long fa_before = 0;
  long fa_after = 0;
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  int passes = 0;
  /// Candidate edits evaluated (identical between engine and naive paths).
  long trials = 0;
  /// Trials the engine rejected before a full dataset scan (0 on the naive
  /// path — it always scans everything). Diagnostic only; decisions are
  /// unaffected.
  long early_aborts = 0;
};

/// Refine `net` in place against `train`; returns what changed. Runs on the
/// incremental RefineEngine; bit-identical to refine_greedy_naive.
RefineReport refine_greedy(ApproxMlp& net,
                           const datasets::QuantizedDataset& train,
                           const RefineConfig& cfg);

/// The original one-full-accuracy()-per-trial implementation, kept as the
/// reference oracle for the engine (and for perf comparisons). Identical
/// decisions, reports (minus early_aborts) and final parameters.
RefineReport refine_greedy_naive(ApproxMlp& net,
                                 const datasets::QuantizedDataset& train,
                                 const RefineConfig& cfg);

/// Aggregate accounting of one refine_front call (summed point reports) —
/// surfaced as the flow's refine-stage counters and by run_bench.sh as the
/// refine_stage block of BENCH_table3.json.
struct RefineFrontReport {
  long points = 0;
  long trials = 0;
  long early_aborts = 0;
  long bits_cleared = 0;
  long biases_simplified = 0;
  [[nodiscard]] double early_abort_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(early_aborts) /
                             static_cast<double>(trials);
  }
};

/// The flow's post-GA refinement stage (shared by FlowEngine and the
/// benches): greedily refine every estimated-Pareto point in place and
/// refresh its train_accuracy / fa_area. Each point's accuracy floor is
///   max(point accuracy - max_point_loss,
///       baseline_train_accuracy - max_total_loss).
/// Points fan out over a ThreadPool (0 = all hardware threads, 1 = serial,
/// default); results are bit-identical for any `n_threads`.
RefineFrontReport refine_front(std::span<EstimatedPoint> front,
                               const datasets::QuantizedDataset& train,
                               double baseline_train_accuracy,
                               double max_point_loss, double max_total_loss,
                               int n_threads = 1);

}  // namespace pmlp::core
