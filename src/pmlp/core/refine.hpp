// Greedy post-GA refinement (an extension beyond the paper): given a trained
// approximate MLP, try clearing mask bits one at a time — cheapest-first by
// the FA-count gain of the removal — keeping every change that does not push
// training accuracy below a floor. This squeezes the last FAs out of each
// Pareto point before synthesis; bench_ablation quantifies the benefit.
#pragma once

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/dataset.hpp"

namespace pmlp::core {

struct RefineConfig {
  /// Lowest acceptable training accuracy (absolute, e.g. baseline - 0.05).
  double accuracy_floor = 0.0;
  /// Maximum full passes over all remaining mask bits.
  int max_passes = 3;
  /// Also try rounding biases toward fewer set bits (cheaper constants).
  bool refine_biases = true;
};

struct RefineReport {
  long bits_cleared = 0;
  long biases_simplified = 0;
  long fa_before = 0;
  long fa_after = 0;
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  int passes = 0;
};

/// Refine `net` in place against `train`; returns what changed.
RefineReport refine_greedy(ApproxMlp& net,
                           const datasets::QuantizedDataset& train,
                           const RefineConfig& cfg);

/// The flow's post-GA refinement stage (shared by FlowEngine and the
/// benches): greedily refine every estimated-Pareto point in place and
/// refresh its train_accuracy / fa_area. Each point's accuracy floor is
///   max(point accuracy - max_point_loss,
///       baseline_train_accuracy - max_total_loss).
void refine_front(std::span<EstimatedPoint> front,
                  const datasets::QuantizedDataset& train,
                  double baseline_train_accuracy, double max_point_loss,
                  double max_total_loss);

}  // namespace pmlp::core
