// Runtime CPU dispatch for the sample-blocked evaluation kernels
// (eval_kernels.hpp).
//
// The dispatched ISA is resolved once per process from three inputs:
// compile-time capability (the AVX2 variant exists only in x86-64 builds,
// NEON only on AArch64, where it is baseline), runtime CPU support
// (`__builtin_cpu_supports("avx2")`), and the PMLP_SIMD environment knob.
// `PMLP_SIMD=off` (alias `scalar`) forces the scalar block kernel — CI runs
// the eval/serve suites under it to keep the scalar oracle exercised;
// `avx2` / `neon` request a specific ISA and degrade to scalar when the
// machine can't honor it. Tests and benches override in-process via
// set_simd_isa() to A/B the paths within one run. Every variant performs
// identical arithmetic — dispatch changes speed, never results.
#pragma once

namespace pmlp::core {

enum class SimdIsa { kScalar, kAvx2, kNeon };

/// Lowercase name for perf counters / bench JSON: "scalar", "avx2", "neon".
[[nodiscard]] const char* simd_isa_name(SimdIsa isa);

/// Best ISA this binary AND this CPU support; ignores env and overrides.
[[nodiscard]] SimdIsa detect_simd_isa();

/// The ISA the block kernels dispatch to right now: detect_simd_isa()
/// filtered through PMLP_SIMD at first use, until set_simd_isa() overrides.
[[nodiscard]] SimdIsa active_simd_isa();

/// Install `isa` as the active dispatch, clamped to detect_simd_isa()
/// capability (an unavailable ISA degrades to scalar); returns the value
/// actually installed. Thread-safe; meant for tests and benches.
SimdIsa set_simd_isa(SimdIsa isa);

}  // namespace pmlp::core
