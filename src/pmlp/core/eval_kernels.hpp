// Sample-blocked layer-sweep kernels behind the runtime SIMD dispatch.
//
// A block holds up to CompiledNet::kBlockSamples samples in neuron-major
// int32 planes: the value of input/activation `i` for sample `s` lives at
// `in[i * n + s]`, stride `n` = the block's sample count. Sweeping a layer
// is then a mask-and-accumulate over contiguous lanes — the Eq. 4 inner
// loop `acc += ±((x & mask) << k)` vectorizes directly on int32 lanes
// (8-wide AVX2, 4-wide NEON), with QReLU as max/shift/min on the same
// registers.
//
// Every variant performs the same int32 additions in the same per-neuron
// order as the scalar per-sample path, so results are bit-identical across
// ISAs; the caller guarantees int32 cannot overflow (the static per-neuron
// bound |bias| + Σ(mask << k) — see CompiledNet::block_safe()).
#pragma once

#include <cstdint>

#include "pmlp/core/simd.hpp"

namespace pmlp::core {

struct CompiledLayer;

/// Sweep one compiled layer over a block of `n` samples. Reads neuron-major
/// input planes `in` (stride `n`), writes raw accumulator planes to `acc`
/// and activation planes (QReLU applied, or the raw accumulator when the
/// layer has none) to `act`; `act` may alias `acc` when the caller only
/// needs activations. `isa` selects the variant; an ISA this binary lacks
/// falls back to scalar.
void layer_sweep(SimdIsa isa, const CompiledLayer& layer,
                 const std::int32_t* in, std::int32_t* acc, std::int32_t* act,
                 int n, std::int32_t act_max);

}  // namespace pmlp::core
