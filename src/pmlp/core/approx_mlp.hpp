// The paper's approximate printed MLP (θ): per connection a power-of-two
// weight (sign s, exponent k) and a fine-grained pruning mask m on the input
// activation bits; per neuron a low-bitwidth bias b. Inference follows Eq. 4:
//
//   QReLU( sum_i  s_i * ((m_i (.) x_i) << k_i)  +  b )
//
// Multiplications are wiring (shift), masked bits are hard-wired zeros, so
// the circuit is a bare multi-operand adder — priced by the FA-count model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/quant_mlp.hpp"
#include "pmlp/mlp/topology.hpp"
#include "pmlp/netlist/builders.hpp"

namespace pmlp::core {

/// Bit-width configuration shared by training, inference and hardware.
struct BitConfig {
  int weight_bits = 8;  ///< n of Eq. 1: exponents k in [0, n-2]
  int input_bits = 4;   ///< primary input activation width
  int act_bits = 8;     ///< QReLU output width (hidden activations)
  /// Signed bias codes in [-2^(b-1), 2^(b-1)-1]. Biases live at accumulator
  /// scale (a single pow2 summand reaches 15 << 6 = 960, and a baseline
  /// bias re-quantized into that scale can be a few thousand), so they need
  /// several bits more than the weights.
  int bias_bits = 12;

  [[nodiscard]] int max_exponent() const { return weight_bits - 2; }
  [[nodiscard]] std::int64_t bias_min() const {
    return -(std::int64_t{1} << (bias_bits - 1));
  }
  [[nodiscard]] std::int64_t bias_max() const {
    return (std::int64_t{1} << (bias_bits - 1)) - 1;
  }
};

/// One approximate connection (paper parameters m, s, k).
struct ApproxConn {
  std::uint32_t mask = 0;
  int sign = +1;      ///< -1 or +1
  int exponent = 0;   ///< k
};

struct ApproxLayer {
  int n_in = 0;
  int n_out = 0;
  int input_bits = 4;   ///< width of this layer's inputs
  bool qrelu = true;    ///< false on the output layer
  int qrelu_shift = 0;  ///< derived by range analysis, not trained
  std::vector<ApproxConn> conns;   ///< conns[o * n_in + i]
  std::vector<std::int64_t> biases;

  [[nodiscard]] const ApproxConn& conn(int out, int in) const {
    return conns[static_cast<std::size_t>(out) * n_in + in];
  }
  ApproxConn& conn(int out, int in) {
    return conns[static_cast<std::size_t>(out) * n_in + in];
  }
};

class ApproxMlp {
 public:
  ApproxMlp() = default;
  /// All-masks-zero network of the right shape.
  ApproxMlp(const mlp::Topology& topology, const BitConfig& bits);

  [[nodiscard]] const mlp::Topology& topology() const { return topology_; }
  [[nodiscard]] const BitConfig& bits() const { return bits_; }
  [[nodiscard]] const std::vector<ApproxLayer>& layers() const { return layers_; }
  [[nodiscard]] std::vector<ApproxLayer>& layers() { return layers_; }

  /// Recompute every hidden layer's QReLU shift from the current parameters
  /// (static worst-case range analysis). Must be called after editing
  /// parameters; decode()/builders call it automatically.
  void update_qrelu_shifts();

  /// The QReLU shift update_qrelu_shifts() would assign to layer `l` under
  /// the current parameters, without modifying the net. Editing one layer's
  /// masks/biases only changes that layer's shift, so incremental editors
  /// (the refine engine) re-derive a single layer instead of all of them.
  [[nodiscard]] int compute_qrelu_shift(int l) const;

  /// One layer of Eq. 4: accumulators (bias + masked shifted terms) into
  /// `acc`, activations (QReLU, or the raw accumulator on the output layer)
  /// into `act`. `act` may alias `acc` for in-place activation. Spans must
  /// be sized n_in / n_out of layer `l`. Bit-identical to the corresponding
  /// slice of forward().
  void forward_layer(int l, std::span<const std::int64_t> in,
                     std::span<std::int64_t> acc,
                     std::span<std::int64_t> act) const;

  /// Eq. 4 integer inference; returns output-layer accumulators.
  [[nodiscard]] std::vector<std::int64_t> forward(
      std::span<const std::uint8_t> x) const;
  [[nodiscard]] int predict(std::span<const std::uint8_t> x) const;

  /// Structural adder description per neuron (layer-major), for Eq. 2.
  [[nodiscard]] std::vector<adder::NeuronAdderSpec> adder_specs() const;
  /// Paper Eq. 2 with AdderArea = FA count: the training-time area proxy.
  [[nodiscard]] long fa_area() const;
  /// Total retained activation bits (wires) — a sparsity diagnostic.
  [[nodiscard]] long wire_count() const;

  /// Netlist-buildable description (same structure the FA model prices).
  [[nodiscard]] netlist::BespokeMlpDesc to_bespoke_desc(
      const std::string& name) const;

  /// Seed model for the paper's doped initialization: snap a quantized
  /// baseline's weights to the nearest pow2 and keep all mask bits set
  /// ("nearly non-approximate"). Biases are clamped into bias range.
  static ApproxMlp from_quant_baseline(const mlp::QuantMlp& baseline,
                                       const BitConfig& bits);

 private:
  mlp::Topology topology_;
  BitConfig bits_;
  std::vector<ApproxLayer> layers_;
};

/// Fraction of samples classified correctly.
[[nodiscard]] double accuracy(const ApproxMlp& net,
                              const datasets::QuantizedDataset& d);

}  // namespace pmlp::core
