#include "pmlp/core/campaign.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "pmlp/core/serialize.hpp"
#include "pmlp/core/thread_pool.hpp"

namespace pmlp::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* campaign_flow_status_name(CampaignFlowStatus s) {
  switch (s) {
    case CampaignFlowStatus::kPending: return "pending";
    case CampaignFlowStatus::kDone: return "done";
    case CampaignFlowStatus::kFailed: return "failed";
    case CampaignFlowStatus::kStopped: return "stopped";
  }
  return "?";
}

struct CampaignRunner::FlowState {
  CampaignFlowSpec spec;
  std::unique_ptr<FlowEngine> engine;
  CampaignFlowOutcome outcome;
  std::chrono::steady_clock::time_point started;
  bool started_once = false;
};

struct CampaignRunner::Impl {
  std::unique_ptr<ThreadPool> pool;
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> stop{false};
  int remaining = 0;  ///< flows not yet finished (any status)
  int done = 0;       ///< flows finished (any status)
  bool ran = false;
  CampaignResult result;  ///< rollups/counters accumulated under `mutex`
};

CampaignRunner::CampaignRunner(CampaignConfig cfg)
    : cfg_(std::move(cfg)), impl_(std::make_unique<Impl>()) {}

CampaignRunner::~CampaignRunner() = default;

std::size_t CampaignRunner::add_flow(CampaignFlowSpec spec) {
  if (impl_->ran) {
    throw std::logic_error("CampaignRunner: add_flow after run()");
  }
  if (spec.name.empty() || spec.name == "." || spec.name == ".." ||
      spec.name.find('/') != std::string::npos) {
    throw std::invalid_argument(
        "CampaignRunner: flow name must be a non-empty path component, got '" +
        spec.name + "'");
  }
  for (const auto& f : flows_) {
    if (f->spec.name == spec.name) {
      throw std::invalid_argument("CampaignRunner: duplicate flow name '" +
                                  spec.name + "'");
    }
  }
  auto st = std::make_unique<FlowState>();
  st->outcome.name = spec.name;
  st->outcome.dataset = spec.dataset;
  st->outcome.topology = spec.topology;
  st->spec = std::move(spec);
  flows_.push_back(std::move(st));
  return flows_.size() - 1;
}

CampaignRunner& CampaignRunner::set_progress(CampaignCallback cb) {
  progress_ = std::move(cb);
  return *this;
}

void CampaignRunner::request_stop() { impl_->stop.store(true); }

void CampaignRunner::finish_flow(FlowState& st, CampaignFlowStatus status,
                                 const std::string& error) {
  st.outcome.status = status;
  st.outcome.error = error;
  st.outcome.wall_seconds =
      st.started_once ? seconds_since(st.started) : 0.0;
  st.engine.reset();  // free artifacts of failed/stopped flows eagerly
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    switch (status) {
      case CampaignFlowStatus::kDone: ++impl_->result.completed; break;
      case CampaignFlowStatus::kFailed: ++impl_->result.failed; break;
      case CampaignFlowStatus::kStopped: ++impl_->result.stopped; break;
      case CampaignFlowStatus::kPending: ++impl_->result.pending; break;
    }
    ++impl_->done;
    --impl_->remaining;
  }
  impl_->cv.notify_all();
}

void CampaignRunner::step(std::size_t index) {
  FlowState& st = *flows_[index];
  if (impl_->stop.load()) {
    // A flow none of whose stages ever ran is reported kPending (nothing
    // to resume), a partially-run one kStopped (checkpoint resumable).
    finish_flow(st,
                st.engine->stages().empty() ? CampaignFlowStatus::kPending
                                            : CampaignFlowStatus::kStopped,
                "");
    return;
  }
  if (!st.started_once) {
    st.started_once = true;
    st.started = std::chrono::steady_clock::now();
  }

  // Run exactly one pipeline stage. A throw (corrupt checkpoint, I/O error,
  // bad artifact) fails only this flow.
  std::optional<FlowStage> ran;
  try {
    ran = st.engine->advance();
  } catch (const std::exception& e) {
    finish_flow(st, CampaignFlowStatus::kFailed, e.what());
    return;
  } catch (...) {
    finish_flow(st, CampaignFlowStatus::kFailed, "unknown error");
    return;
  }

  if (!ran) {
    // Every stage done: assemble (cheap — artifacts move out of the engine).
    try {
      st.outcome.result = std::move(*st.engine).run();
    } catch (const std::exception& e) {
      finish_flow(st, CampaignFlowStatus::kFailed, e.what());
      return;
    } catch (...) {
      finish_flow(st, CampaignFlowStatus::kFailed, "unknown error");
      return;
    }
    if (!cfg_.checkpoint_root.empty()) {
      // Terminal marker for the distributed-worker protocol (worker.hpp):
      // workers and `campaign status` treat a done.txt flow as finished.
      // Advisory only — a failure to write it never fails the flow.
      try {
        write_artifact_file(
            (std::filesystem::path(cfg_.checkpoint_root) / st.outcome.name /
             "done.txt")
                .string(),
            [](std::ostream& os) { os << "pmlp-done v1\nworker -\nend\n"; });
      } catch (const std::exception&) {
      }
    }
    finish_flow(st, CampaignFlowStatus::kDone, "");
    return;
  }

  // Roll the stage into the campaign aggregates, report progress (the
  // callback is serialized under the scheduler mutex) and schedule the
  // continuation: the flow's next stage goes to the BACK of the shared
  // FIFO queue — round-robin fairness across flows at stage granularity.
  // Everything here must stay inside the try: a throw that escaped this
  // pool task would be swallowed by its discarded future, the flow would
  // never finish and run() would wait forever.
  std::string error;
  try {
    const StageReport rep = st.engine->stages().back();
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      auto& roll = impl_->result.stages[static_cast<int>(rep.stage)];
      roll.wall_seconds += rep.wall_seconds;
      roll.items += rep.items;
      ++roll.executed;
      if (rep.reused) ++roll.reused;
      impl_->result.stage_wall_seconds += rep.wall_seconds;
      if (progress_) {
        const CampaignProgress p{index, st.spec.name, rep, impl_->done,
                                 static_cast<int>(flows_.size())};
        try {
          progress_(p);
        } catch (const std::exception& e) {
          error = std::string("progress callback: ") + e.what();
        } catch (...) {
          error = "progress callback: unknown error";
        }
      }
    }
    if (error.empty()) {
      impl_->pool->submit([this, index] { step(index); });
      return;  // continuation scheduled; this flow finishes later
    }
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown error";
  }
  finish_flow(st, CampaignFlowStatus::kFailed, error);
}

CampaignResult CampaignRunner::run() {
  if (impl_->ran) {
    throw std::logic_error("CampaignRunner::run() is one-shot");
  }
  impl_->ran = true;
  const auto t0 = std::chrono::steady_clock::now();
  const int workers = resolve_n_threads(cfg_.n_threads);
  impl_->result.n_threads = workers;
  impl_->remaining = static_cast<int>(flows_.size());

  // Build every engine up front: flows share the campaign pool instead of
  // spawning their own (stages run serially inside a flow — bit-identical
  // to any other thread setting by the engines' determinism contract).
  for (auto& st : flows_) {
    FlowConfig cfg = st->spec.config;
    cfg.trainer.n_threads = 1;
    cfg.trainer.ga.n_threads = 1;
    cfg.hardware.n_threads = 1;
    st->engine = std::make_unique<FlowEngine>(std::move(st->spec.data),
                                              st->spec.topology, cfg);
    if (!cfg_.checkpoint_root.empty()) {
      st->engine->set_checkpoint_dir(
          (std::filesystem::path(cfg_.checkpoint_root) / st->spec.name)
              .string());
    }
  }

  if (!flows_.empty()) {
    impl_->pool = std::make_unique<ThreadPool>(workers);
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      impl_->pool->submit([this, i] { step(i); });
    }
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->cv.wait(lock, [this] { return impl_->remaining == 0; });
    }
    impl_->pool.reset();  // joins the workers; the queue is already drained
  }

  CampaignResult out = std::move(impl_->result);
  out.wall_seconds = seconds_since(t0);
  out.flows.reserve(flows_.size());
  for (auto& st : flows_) {
    out.flows.push_back(std::move(st->outcome));
  }
  return out;
}

// -------------------------------------------------------------- JSON report

void write_campaign_report_json(const CampaignResult& result,
                                std::ostream& os) {
  std::ostringstream body;
  body.precision(17);
  body << "{\"campaign\":{\"n_threads\":" << result.n_threads
       << ",\"flows_total\":" << result.flows.size()
       << ",\"completed\":" << result.completed
       << ",\"failed\":" << result.failed
       << ",\"stopped\":" << result.stopped
       << ",\"pending\":" << result.pending
       << ",\"wall_seconds\":" << result.wall_seconds
       << ",\"stage_wall_seconds\":" << result.stage_wall_seconds
       << ",\"flows_per_second\":" << result.flows_per_second();
  body << ",\"stage_rollup\":{";
  bool first = true;
  for (int s = 0; s < kNumFlowStages; ++s) {
    const auto& roll = result.stages[s];
    if (roll.executed == 0) continue;
    if (!first) body << ",";
    first = false;
    body << "\"" << flow_stage_name(static_cast<FlowStage>(s))
         << "\":{\"wall_seconds\":" << roll.wall_seconds
         << ",\"items\":" << roll.items << ",\"executed\":" << roll.executed
         << ",\"reused\":" << roll.reused << "}";
  }
  body << "},\"flows\":[";
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    if (i) body << ",";
    body << "{\"name\":";
    json_escape(f.name, body);
    body << ",\"dataset\":";
    json_escape(f.dataset, body);
    body << ",\"status\":\"" << campaign_flow_status_name(f.status)
         << "\",\"error\":";
    if (f.error.empty()) {
      body << "null";
    } else {
      json_escape(f.error, body);
    }
    body << ",\"wall_seconds\":" << f.wall_seconds << ",\"report\":";
    if (f.result) {
      std::ostringstream report;
      write_flow_report_json(*f.result, f.dataset, f.topology, report);
      std::string text = report.str();
      while (!text.empty() && text.back() == '\n') text.pop_back();
      body << text;
    } else {
      body << "null";
    }
    body << "}";
  }
  body << "]}}";
  os << body.str() << '\n';
}

}  // namespace pmlp::core
