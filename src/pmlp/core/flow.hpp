// End-to-end convenience flow (the whole Fig. 2 pipeline as a library
// call): dataset -> gradient-trained float MLP -> quantized bespoke
// baseline [2] -> GA-AxC training -> optional greedy refinement ->
// gate-level pricing/verification -> Table II design pick.
//
// run_flow()/build_baseline() are thin wrappers over the staged FlowEngine
// (flow_engine.hpp), which additionally offers per-stage timings, progress
// callbacks and checkpoint/resume. The bench binaries and examples are thin
// wrappers over these entry points.
#pragma once

#include <optional>
#include <string>

#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/refine.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/mlp/backprop.hpp"

namespace pmlp::core {

struct FlowConfig {
  double train_fraction = 0.7;     ///< stratified split (paper §V-A)
  std::uint64_t split_seed = 1;
  mlp::BackpropConfig backprop;    ///< float/gradient training
  TrainerConfig trainer;           ///< GA-AxC; trainer.n_threads is the
                                   ///< flow-wide parallelism knob (0 = auto),
                                   ///< applied to the GA engine, the refine
                                   ///< stage and the hardware-analysis stage,
                                   ///< and trainer.problem.eval_cache_capacity
                                   ///< the genome memo-cache size (0 = off) —
                                   ///< both bit-identical for any setting
  bool refine = true;              ///< greedy post-GA refinement extension
  double refine_max_point_loss = 0.01;
  double report_max_loss = 0.05;   ///< Table II selection bound
  HardwareAnalysisConfig hardware; ///< equivalence-check depth; n_threads is
                                   ///< superseded by trainer.n_threads
};

/// The Fig. 2 stages, in pipeline order.
enum class FlowStage {
  kSplit,     ///< stratified split + input quantization
  kBackprop,  ///< gradient-trained float reference
  kBaseline,  ///< quantized bespoke baseline [2] + 1 V pricing
  kGa,        ///< GA-AxC hardware-aware training (NSGA-II)
  kRefine,    ///< greedy post-GA refinement (optional)
  kHardware,  ///< netlist build + pricing + equivalence per candidate
  kSelect,    ///< true Pareto + Table II pick
};
inline constexpr int kNumFlowStages = 7;

/// Stable lower-case stage name ("split", "backprop", ...).
[[nodiscard]] const char* flow_stage_name(FlowStage stage);

/// Checkpoint artifact file committed when the stage completes (the LAST
/// file for multi-artifact stages, so its existence implies the whole stage
/// is on disk). nullptr for kSelect, which is derived and never
/// checkpointed. This is how campaign workers and `campaign status` read a
/// flow's progress from the checkpoint tree alone.
[[nodiscard]] const char* flow_stage_artifact(FlowStage stage);

/// Wall-time / work accounting of one executed (or reloaded) stage —
/// TrainingResult-style counters at flow granularity.
struct StageReport {
  FlowStage stage = FlowStage::kSplit;
  double wall_seconds = 0.0;  ///< compute time, or checkpoint-load time
  bool reused = false;        ///< loaded from checkpoint / injected artifact
  long items = 0;             ///< stage-specific work count: samples split,
                              ///< GA evaluations, candidates priced, ...
};

/// Output of the split stage: the paper's 70/30 stratified split with
/// 4-bit-quantized copies (what training and hardware actually consume).
struct SplitArtifacts {
  datasets::Dataset train_raw;
  datasets::Dataset test_raw;
  datasets::QuantizedDataset train;
  datasets::QuantizedDataset test;
};

/// Output of the baseline stage: the exact bespoke quantized baseline [2],
/// its 1 V netlist pricing and its accuracy on both split halves.
struct BaselinePricing {
  mlp::QuantMlp net;
  hwmodel::CircuitCost cost;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Everything produced up to (and including) the baseline.
struct BaselineArtifacts {
  datasets::Dataset train_raw;
  datasets::Dataset test_raw;
  datasets::QuantizedDataset train;
  datasets::QuantizedDataset test;
  mlp::FloatMlp float_net;
  mlp::QuantMlp baseline;
  hwmodel::CircuitCost baseline_cost;     ///< bespoke netlist at 1 V
  double baseline_train_accuracy = 0.0;
  double baseline_test_accuracy = 0.0;
};

/// Split/quantize a normalized dataset, train and quantize the baseline,
/// and price its bespoke circuit at 1 V.
[[nodiscard]] BaselineArtifacts build_baseline(const datasets::Dataset& data,
                                               const mlp::Topology& topology,
                                               const FlowConfig& cfg);

/// Full flow result.
struct FlowResult {
  BaselineArtifacts baseline;
  TrainingResult training;
  /// Backprop-stage report from the TrainEngine (zeros when the stage was
  /// injected or reloaded from a checkpoint — this process never trained).
  /// The flow-wide trainer.n_threads knob supersedes backprop.n_threads,
  /// like the hardware stage.
  mlp::BackpropReport backprop;
  /// Refine-stage counters (zeros when the stage was disabled, injected or
  /// reloaded from a checkpoint — the counters are not checkpointed).
  RefineFrontReport refine;
  std::vector<HwEvaluatedPoint> evaluated;  ///< all candidates, priced
  std::vector<HwEvaluatedPoint> front;      ///< true Pareto subset
  /// Table II pick: min-area design within report_max_loss of the
  /// baseline's test accuracy (nullopt if none qualified).
  std::optional<HwEvaluatedPoint> best;
  double area_reduction = 0.0;   ///< baseline/best (0 if no pick)
  double power_reduction = 0.0;
  /// Per-stage wall times, pipeline order (refine omitted when disabled).
  std::vector<StageReport> stages;
};

/// Run the complete pipeline on a normalized dataset.
[[nodiscard]] FlowResult run_flow(const datasets::Dataset& data,
                                  const mlp::Topology& topology,
                                  const FlowConfig& cfg);

}  // namespace pmlp::core
