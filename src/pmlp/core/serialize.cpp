#include "pmlp/core/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

namespace {
constexpr const char* kMagic = "pmlp-approx-mlp";
constexpr const char* kVersion = "v1";

// ---------------------------------------------------------------- helpers

void expect_header(std::istream& is, const char* magic, const char* what) {
  std::string m, version;
  if (!(is >> m >> version) || m != magic || version != "v1") {
    throw std::invalid_argument(std::string(what) + ": bad header");
  }
}

void expect_tag(std::istream& is, const char* tag, const char* what) {
  std::string t;
  if (!(is >> t) || t != tag) {
    throw std::invalid_argument(std::string(what) + ": expected '" + tag +
                                "'" + (t.empty() ? "" : ", got '" + t + "'"));
  }
}

void check_stream(const std::ostream& os, const char* what) {
  if (!os) throw std::runtime_error(std::string(what) + ": stream failure");
}

mlp::Topology read_topology(std::istream& is, const char* what) {
  expect_tag(is, "topology", what);
  mlp::Topology topo;
  int n_layers = 0;
  if (!(is >> n_layers) || n_layers < 2 || n_layers > 64) {
    throw std::invalid_argument(std::string(what) + ": bad topology size");
  }
  for (int i = 0; i < n_layers; ++i) {
    int width = 0;
    if (!(is >> width) || width < 1 || width > 1 << 20) {
      throw std::invalid_argument(std::string(what) + ": bad topology entry");
    }
    topo.layers.push_back(width);
  }
  return topo;
}

void write_topology(std::ostream& os, const mlp::Topology& topo) {
  os << "topology " << topo.layers.size();
  for (int n : topo.layers) os << ' ' << n;
  os << '\n';
}

void write_name_line(std::ostream& os, const std::string& name) {
  os << "name " << (name.empty() ? "-" : name) << '\n';
}

/// Names may contain spaces (UCI file stems), so the value is the rest of
/// the line, not a single token.
std::string read_name_line(std::istream& is, const char* what) {
  expect_tag(is, "name", what);
  is >> std::ws;
  std::string name;
  if (!std::getline(is, name) || name.empty()) {
    throw std::invalid_argument(std::string(what) + ": missing name");
  }
  while (!name.empty() && (name.back() == '\r' || name.back() == ' ')) {
    name.pop_back();
  }
  if (name == "-") name.clear();
  return name;
}

/// Parse the body of an approx-mlp block (everything after the header).
/// In embedded mode the block must be terminated by an `endmodel` line;
/// standalone blocks run to EOF (the original v1 file format).
ApproxMlp parse_model_body(std::istream& is, bool embedded) {
  std::string tag;
  if (!(is >> tag) || tag != "topology") {
    throw std::invalid_argument("load_model: expected topology");
  }
  // Topology: read ints until the "bits" tag.
  mlp::Topology topo;
  std::string token;
  while (is >> token) {
    if (token == "bits") break;
    try {
      topo.layers.push_back(std::stoi(token));
    } catch (const std::exception&) {
      throw std::invalid_argument("load_model: bad topology entry");
    }
  }
  if (token != "bits" || topo.layers.size() < 2) {
    throw std::invalid_argument("load_model: malformed topology/bits");
  }
  BitConfig bits;
  if (!(is >> bits.weight_bits >> bits.input_bits >> bits.act_bits >>
        bits.bias_bits)) {
    throw std::invalid_argument("load_model: malformed bit config");
  }
  if (bits.weight_bits < 2 || bits.weight_bits > 16 || bits.input_bits < 1 ||
      bits.input_bits > 8 || bits.act_bits < 1 || bits.act_bits > 16 ||
      bits.bias_bits < 2 || bits.bias_bits > 24) {
    throw std::invalid_argument("load_model: bit config out of range");
  }

  ApproxMlp net(topo, bits);
  int current_layer = -1;
  bool terminated = false;
  while (is >> tag) {
    if (embedded && tag == "endmodel") {
      terminated = true;
      break;
    }
    if (tag == "layer") {
      if (!(is >> current_layer) || current_layer < 0 ||
          current_layer >= static_cast<int>(net.layers().size())) {
        throw std::invalid_argument("load_model: bad layer index");
      }
    } else if (tag == "conn") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_model: conn before layer");
      }
      auto& layer = net.layers()[static_cast<std::size_t>(current_layer)];
      int o = 0, i = 0, sign = 0, exponent = 0;
      std::uint32_t mask = 0;
      if (!(is >> o >> i >> mask >> sign >> exponent)) {
        throw std::invalid_argument("load_model: malformed conn");
      }
      if (o < 0 || o >= layer.n_out || i < 0 || i >= layer.n_in ||
          (sign != 1 && sign != -1) || exponent < 0 ||
          exponent > bits.max_exponent() ||
          mask > bitops::low_mask(layer.input_bits)) {
        throw std::invalid_argument("load_model: conn out of range");
      }
      layer.conn(o, i) = ApproxConn{mask, sign, exponent};
    } else if (tag == "bias") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_model: bias before layer");
      }
      auto& layer = net.layers()[static_cast<std::size_t>(current_layer)];
      int o = 0;
      std::int64_t value = 0;
      if (!(is >> o >> value) || o < 0 || o >= layer.n_out ||
          value < bits.bias_min() || value > bits.bias_max()) {
        throw std::invalid_argument("load_model: bias out of range");
      }
      layer.biases[static_cast<std::size_t>(o)] = value;
    } else {
      throw std::invalid_argument("load_model: unknown tag " + tag);
    }
  }
  if (embedded && !terminated) {
    throw std::invalid_argument("load_model: unterminated embedded model");
  }
  net.update_qrelu_shifts();
  return net;
}

ApproxMlp parse_model(std::istream& is, bool embedded) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::invalid_argument("load_model: bad header");
  }
  return parse_model_body(is, embedded);
}

/// Write one approx-mlp block (header + body, no terminator).
void write_model_block(const ApproxMlp& net, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "topology";
  for (int n : net.topology().layers) os << ' ' << n;
  os << '\n';
  const auto& b = net.bits();
  os << "bits " << b.weight_bits << ' ' << b.input_bits << ' ' << b.act_bits
     << ' ' << b.bias_bits << '\n';
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const auto& layer = net.layers()[l];
    os << "layer " << l << '\n';
    for (int o = 0; o < layer.n_out; ++o) {
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        os << "conn " << o << ' ' << i << ' ' << c.mask << ' '
           << (c.sign < 0 ? -1 : 1) << ' ' << c.exponent << '\n';
      }
    }
    for (int o = 0; o < layer.n_out; ++o) {
      os << "bias " << o << ' ' << layer.biases[static_cast<std::size_t>(o)]
         << '\n';
    }
  }
}

void write_model_embedded(const ApproxMlp& net, std::ostream& os) {
  os << "model\n";
  write_model_block(net, os);
  os << "endmodel\n";
}

ApproxMlp read_model_embedded(std::istream& is, const char* what) {
  expect_tag(is, "model", what);
  return parse_model(is, /*embedded=*/true);
}

}  // namespace

void save_model(const ApproxMlp& net, std::ostream& os) {
  write_model_block(net, os);
  check_stream(os, "save_model");
}

std::string to_text(const ApproxMlp& net) {
  std::ostringstream os;
  save_model(net, os);
  return os.str();
}

ApproxMlp load_model(std::istream& is) {
  return parse_model(is, /*embedded=*/false);
}

ApproxMlp from_text(const std::string& text) {
  std::istringstream is(text);
  return load_model(is);
}

void save_model_file(const ApproxMlp& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(net, os);
}

ApproxMlp load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(is);
}

// ---------------------------------------------------------------- datasets

void save_dataset(const datasets::Dataset& d, std::ostream& os) {
  os << "pmlp-dataset v1\n";
  write_name_line(os, d.name);
  os << "shape " << d.n_features << ' ' << d.n_classes << ' ' << d.size()
     << '\n';
  for (std::size_t i = 0; i < d.size(); ++i) {
    os << "row " << d.labels[i];
    for (double v : d.row(i)) {
      os << ' ';
      write_hexdouble(os, v);
    }
    os << '\n';
  }
  os << "end\n";
  check_stream(os, "save_dataset");
}

datasets::Dataset load_dataset(std::istream& is) {
  expect_header(is, "pmlp-dataset", "load_dataset");
  datasets::Dataset d;
  d.name = read_name_line(is, "load_dataset");
  expect_tag(is, "shape", "load_dataset");
  std::size_t n_samples = 0;
  if (!(is >> d.n_features >> d.n_classes >> n_samples) || d.n_features < 1 ||
      d.n_classes < 1 || n_samples > (std::size_t{1} << 32)) {
    throw std::invalid_argument("load_dataset: bad shape");
  }
  d.features.reserve(n_samples * static_cast<std::size_t>(d.n_features));
  d.labels.reserve(n_samples);
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      if (d.size() != n_samples) {
        throw std::invalid_argument("load_dataset: sample count mismatch");
      }
      return d;
    }
    if (tag != "row") {
      throw std::invalid_argument("load_dataset: unknown tag " + tag);
    }
    int label = 0;
    if (!(is >> label) || label < 0 || label >= d.n_classes) {
      throw std::invalid_argument("load_dataset: label out of range");
    }
    d.labels.push_back(label);
    for (int f = 0; f < d.n_features; ++f) {
      d.features.push_back(read_hexdouble(is, "load_dataset"));
    }
  }
  throw std::invalid_argument("load_dataset: missing end");
}

void save_quant_dataset(const datasets::QuantizedDataset& d,
                        std::ostream& os) {
  os << "pmlp-quant-dataset v1\n";
  write_name_line(os, d.name);
  os << "shape " << d.n_features << ' ' << d.n_classes << ' ' << d.input_bits
     << ' ' << d.size() << '\n';
  for (std::size_t i = 0; i < d.size(); ++i) {
    os << "row " << d.labels[i];
    for (unsigned code : d.row(i)) os << ' ' << code;
    os << '\n';
  }
  os << "end\n";
  check_stream(os, "save_quant_dataset");
}

datasets::QuantizedDataset load_quant_dataset(std::istream& is) {
  expect_header(is, "pmlp-quant-dataset", "load_quant_dataset");
  datasets::QuantizedDataset d;
  d.name = read_name_line(is, "load_quant_dataset");
  expect_tag(is, "shape", "load_quant_dataset");
  std::size_t n_samples = 0;
  if (!(is >> d.n_features >> d.n_classes >> d.input_bits >> n_samples) ||
      d.n_features < 1 || d.n_classes < 1 || d.input_bits < 1 ||
      d.input_bits > 8 || n_samples > (std::size_t{1} << 32)) {
    throw std::invalid_argument("load_quant_dataset: bad shape");
  }
  const unsigned max_code = (1u << d.input_bits) - 1u;
  d.codes.reserve(n_samples * static_cast<std::size_t>(d.n_features));
  d.labels.reserve(n_samples);
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      if (d.size() != n_samples) {
        throw std::invalid_argument(
            "load_quant_dataset: sample count mismatch");
      }
      return d;
    }
    if (tag != "row") {
      throw std::invalid_argument("load_quant_dataset: unknown tag " + tag);
    }
    int label = 0;
    if (!(is >> label) || label < 0 || label >= d.n_classes) {
      throw std::invalid_argument("load_quant_dataset: label out of range");
    }
    d.labels.push_back(label);
    for (int f = 0; f < d.n_features; ++f) {
      unsigned code = 0;
      if (!(is >> code) || code > max_code) {
        throw std::invalid_argument("load_quant_dataset: code out of range");
      }
      d.codes.push_back(static_cast<std::uint8_t>(code));
    }
  }
  throw std::invalid_argument("load_quant_dataset: missing end");
}

// -------------------------------------------------------------------- MLPs

void save_float_mlp(const mlp::FloatMlp& net, std::ostream& os) {
  os << "pmlp-float-mlp v1\n";
  write_topology(os, net.topology());
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const auto& layer = net.layers()[l];
    os << "layer " << l << '\n';
    for (int o = 0; o < layer.n_out; ++o) {
      os << "w " << o;
      for (int i = 0; i < layer.n_in; ++i) {
        os << ' ';
        write_hexdouble(os, layer.weight(o, i));
      }
      os << '\n';
    }
    for (int o = 0; o < layer.n_out; ++o) {
      os << "b " << o << ' ';
      write_hexdouble(os, layer.biases[static_cast<std::size_t>(o)]);
      os << '\n';
    }
  }
  os << "end\n";
  check_stream(os, "save_float_mlp");
}

mlp::FloatMlp load_float_mlp(std::istream& is) {
  expect_header(is, "pmlp-float-mlp", "load_float_mlp");
  const auto topo = read_topology(is, "load_float_mlp");
  mlp::FloatMlp net(topo, /*seed=*/0);  // shape only; weights overwritten
  // Every neuron's weight row and bias must appear: a file missing rows
  // would otherwise silently keep the seed-0 random initialization.
  std::vector<std::vector<char>> w_seen, b_seen;
  for (const auto& layer : net.layers()) {
    w_seen.emplace_back(static_cast<std::size_t>(layer.n_out), 0);
    b_seen.emplace_back(static_cast<std::size_t>(layer.n_out), 0);
  }
  int current_layer = -1;
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      for (std::size_t l = 0; l < w_seen.size(); ++l) {
        for (char seen : w_seen[l]) {
          if (!seen) {
            throw std::invalid_argument("load_float_mlp: missing weights");
          }
        }
        for (char seen : b_seen[l]) {
          if (!seen) {
            throw std::invalid_argument("load_float_mlp: missing bias");
          }
        }
      }
      return net;
    }
    if (tag == "layer") {
      if (!(is >> current_layer) || current_layer < 0 ||
          current_layer >= static_cast<int>(net.layers().size())) {
        throw std::invalid_argument("load_float_mlp: bad layer index");
      }
    } else if (tag == "w" || tag == "b") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_float_mlp: value before layer");
      }
      auto& layer = net.layers()[static_cast<std::size_t>(current_layer)];
      int o = 0;
      if (!(is >> o) || o < 0 || o >= layer.n_out) {
        throw std::invalid_argument("load_float_mlp: neuron out of range");
      }
      if (tag == "w") {
        for (int i = 0; i < layer.n_in; ++i) {
          layer.weight(o, i) = read_hexdouble(is, "load_float_mlp");
        }
        w_seen[static_cast<std::size_t>(current_layer)]
              [static_cast<std::size_t>(o)] = 1;
      } else {
        layer.biases[static_cast<std::size_t>(o)] =
            read_hexdouble(is, "load_float_mlp");
        b_seen[static_cast<std::size_t>(current_layer)]
              [static_cast<std::size_t>(o)] = 1;
      }
    } else {
      throw std::invalid_argument("load_float_mlp: unknown tag " + tag);
    }
  }
  throw std::invalid_argument("load_float_mlp: missing end");
}

void save_quant_mlp(const mlp::QuantMlp& net, std::ostream& os) {
  os << "pmlp-quant-mlp v1\n";
  write_topology(os, net.topology());
  os << "bits " << net.weight_bits() << ' ' << net.activation_bits() << '\n';
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const auto& layer = net.layers()[l];
    os << "layer " << l << ' ' << layer.input_bits << ' ' << layer.qrelu_shift
       << '\n';
    for (int o = 0; o < layer.n_out; ++o) {
      os << "w " << o;
      for (int i = 0; i < layer.n_in; ++i) os << ' ' << layer.weight(o, i);
      os << '\n';
    }
    for (int o = 0; o < layer.n_out; ++o) {
      os << "b " << o << ' ' << layer.biases[static_cast<std::size_t>(o)]
         << '\n';
    }
  }
  os << "end\n";
  check_stream(os, "save_quant_mlp");
}

mlp::QuantMlp load_quant_mlp(std::istream& is) {
  expect_header(is, "pmlp-quant-mlp", "load_quant_mlp");
  const auto topo = read_topology(is, "load_quant_mlp");
  int weight_bits = 0, act_bits = 0;
  expect_tag(is, "bits", "load_quant_mlp");
  if (!(is >> weight_bits >> act_bits) || weight_bits < 2 ||
      weight_bits > 24 || act_bits < 1 || act_bits > 24) {
    throw std::invalid_argument("load_quant_mlp: bit config out of range");
  }
  std::vector<mlp::QuantLayer> layers(
      static_cast<std::size_t>(topo.n_layers()));
  std::vector<char> layer_seen(layers.size(), 0);
  std::vector<std::vector<char>> w_seen, b_seen;
  for (int l = 0; l < topo.n_layers(); ++l) {
    auto& layer = layers[static_cast<std::size_t>(l)];
    layer.n_in = topo.layers[static_cast<std::size_t>(l)];
    layer.n_out = topo.layers[static_cast<std::size_t>(l) + 1];
    layer.weights.assign(
        static_cast<std::size_t>(layer.n_in) * layer.n_out, 0);
    layer.biases.assign(static_cast<std::size_t>(layer.n_out), 0);
    w_seen.emplace_back(static_cast<std::size_t>(layer.n_out), 0);
    b_seen.emplace_back(static_cast<std::size_t>(layer.n_out), 0);
  }
  int current_layer = -1;
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      // Reject files missing any layer header, weight row or bias (they
      // would otherwise load with silent zeros / default shifts).
      for (std::size_t l = 0; l < layers.size(); ++l) {
        bool complete = layer_seen[l] != 0;
        for (char seen : w_seen[l]) complete = complete && seen != 0;
        for (char seen : b_seen[l]) complete = complete && seen != 0;
        if (!complete) {
          throw std::invalid_argument("load_quant_mlp: incomplete layer");
        }
      }
      return mlp::QuantMlp(topo, std::move(layers), weight_bits, act_bits);
    }
    if (tag == "layer") {
      int input_bits = 0, shift = 0;
      if (!(is >> current_layer >> input_bits >> shift) || current_layer < 0 ||
          current_layer >= static_cast<int>(layers.size()) || input_bits < 1 ||
          input_bits > 24 || shift < 0 || shift > 63) {
        throw std::invalid_argument("load_quant_mlp: bad layer line");
      }
      layers[static_cast<std::size_t>(current_layer)].input_bits = input_bits;
      layers[static_cast<std::size_t>(current_layer)].qrelu_shift = shift;
      layer_seen[static_cast<std::size_t>(current_layer)] = 1;
    } else if (tag == "w" || tag == "b") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_quant_mlp: value before layer");
      }
      auto& layer = layers[static_cast<std::size_t>(current_layer)];
      int o = 0;
      if (!(is >> o) || o < 0 || o >= layer.n_out) {
        throw std::invalid_argument("load_quant_mlp: neuron out of range");
      }
      if (tag == "w") {
        const std::int64_t limit = std::int64_t{1} << (weight_bits - 1);
        for (int i = 0; i < layer.n_in; ++i) {
          std::int64_t w = 0;
          if (!(is >> w) || w < -limit || w >= limit) {
            throw std::invalid_argument(
                "load_quant_mlp: weight out of range");
          }
          layer.weights[static_cast<std::size_t>(o) * layer.n_in + i] =
              static_cast<std::int32_t>(w);
        }
        w_seen[static_cast<std::size_t>(current_layer)]
              [static_cast<std::size_t>(o)] = 1;
      } else {
        std::int64_t b = 0;
        if (!(is >> b)) {
          throw std::invalid_argument("load_quant_mlp: malformed bias");
        }
        layer.biases[static_cast<std::size_t>(o)] = b;
        b_seen[static_cast<std::size_t>(current_layer)]
              [static_cast<std::size_t>(o)] = 1;
      }
    } else {
      throw std::invalid_argument("load_quant_mlp: unknown tag " + tag);
    }
  }
  throw std::invalid_argument("load_quant_mlp: missing end");
}

// --------------------------------------------------------- baseline stage

void save_baseline_pricing(const BaselinePricing& pricing, std::ostream& os) {
  os << "pmlp-baseline v1\n";
  os << "cost ";
  write_hexdouble(os, pricing.cost.area_mm2);
  os << ' ';
  write_hexdouble(os, pricing.cost.power_uw);
  os << ' ';
  write_hexdouble(os, pricing.cost.critical_delay_us);
  os << ' ' << pricing.cost.cell_count << '\n';
  os << "train_accuracy ";
  write_hexdouble(os, pricing.train_accuracy);
  os << '\n';
  os << "test_accuracy ";
  write_hexdouble(os, pricing.test_accuracy);
  os << '\n';
  save_quant_mlp(pricing.net, os);
  os << "end\n";
  check_stream(os, "save_baseline_pricing");
}

BaselinePricing load_baseline_pricing(std::istream& is) {
  expect_header(is, "pmlp-baseline", "load_baseline_pricing");
  BaselinePricing p;
  expect_tag(is, "cost", "load_baseline_pricing");
  p.cost.area_mm2 = read_hexdouble(is, "load_baseline_pricing");
  p.cost.power_uw = read_hexdouble(is, "load_baseline_pricing");
  p.cost.critical_delay_us = read_hexdouble(is, "load_baseline_pricing");
  if (!(is >> p.cost.cell_count) || p.cost.cell_count < 0) {
    throw std::invalid_argument("load_baseline_pricing: bad cell_count");
  }
  expect_tag(is, "train_accuracy", "load_baseline_pricing");
  p.train_accuracy = read_hexdouble(is, "load_baseline_pricing");
  expect_tag(is, "test_accuracy", "load_baseline_pricing");
  p.test_accuracy = read_hexdouble(is, "load_baseline_pricing");
  p.net = load_quant_mlp(is);
  expect_tag(is, "end", "load_baseline_pricing");
  return p;
}

// --------------------------------------------------------- training result

void save_training_result(const TrainingResult& r, std::ostream& os) {
  os << "pmlp-training v1\n";
  os << "counters " << r.evaluations << ' ';
  write_hexdouble(os, r.wall_seconds);
  os << ' ';
  write_hexdouble(os, r.baseline_train_accuracy);
  os << ' ';
  write_hexdouble(os, r.evals_per_second);
  os << ' ' << r.cache_hits << ' ';
  write_hexdouble(os, r.cache_hit_rate);
  os << '\n';
  os << "count " << r.estimated_pareto.size() << '\n';
  for (const auto& p : r.estimated_pareto) {
    os << "point ";
    write_hexdouble(os, p.train_accuracy);
    os << ' ' << p.fa_area << '\n';
    write_model_embedded(p.model, os);
  }
  os << "end\n";
  check_stream(os, "save_training_result");
}

TrainingResult load_training_result(std::istream& is) {
  expect_header(is, "pmlp-training", "load_training_result");
  TrainingResult r;
  expect_tag(is, "counters", "load_training_result");
  if (!(is >> r.evaluations) || r.evaluations < 0) {
    throw std::invalid_argument("load_training_result: bad counters");
  }
  r.wall_seconds = read_hexdouble(is, "load_training_result");
  r.baseline_train_accuracy = read_hexdouble(is, "load_training_result");
  r.evals_per_second = read_hexdouble(is, "load_training_result");
  if (!(is >> r.cache_hits) || r.cache_hits < 0) {
    throw std::invalid_argument("load_training_result: bad cache counters");
  }
  r.cache_hit_rate = read_hexdouble(is, "load_training_result");
  expect_tag(is, "count", "load_training_result");
  std::size_t count = 0;
  if (!(is >> count) || count > (std::size_t{1} << 24)) {
    throw std::invalid_argument("load_training_result: bad count");
  }
  r.estimated_pareto.reserve(count);
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      if (r.estimated_pareto.size() != count) {
        throw std::invalid_argument(
            "load_training_result: point count mismatch");
      }
      return r;
    }
    if (tag != "point") {
      throw std::invalid_argument("load_training_result: unknown tag " + tag);
    }
    EstimatedPoint p;
    p.train_accuracy = read_hexdouble(is, "load_training_result");
    if (!(is >> p.fa_area) || p.fa_area < 0) {
      throw std::invalid_argument("load_training_result: bad fa_area");
    }
    p.model = read_model_embedded(is, "load_training_result");
    r.estimated_pareto.push_back(std::move(p));
  }
  throw std::invalid_argument("load_training_result: missing end");
}

// -------------------------------------------------------- evaluated points

void save_evaluated_points(std::span<const HwEvaluatedPoint> points,
                           std::ostream& os) {
  os << "pmlp-evaluated v1\n";
  os << "count " << points.size() << '\n';
  for (const auto& p : points) {
    os << "point ";
    write_hexdouble(os, p.test_accuracy);
    os << ' ' << p.fa_area << ' ' << (p.functional_match ? 1 : 0) << ' ';
    write_hexdouble(os, p.cost.area_mm2);
    os << ' ';
    write_hexdouble(os, p.cost.power_uw);
    os << ' ';
    write_hexdouble(os, p.cost.critical_delay_us);
    os << ' ' << p.cost.cell_count << '\n';
    write_model_embedded(p.model, os);
  }
  os << "end\n";
  check_stream(os, "save_evaluated_points");
}

std::vector<HwEvaluatedPoint> load_evaluated_points(std::istream& is) {
  expect_header(is, "pmlp-evaluated", "load_evaluated_points");
  expect_tag(is, "count", "load_evaluated_points");
  std::size_t count = 0;
  if (!(is >> count) || count > (std::size_t{1} << 24)) {
    throw std::invalid_argument("load_evaluated_points: bad count");
  }
  std::vector<HwEvaluatedPoint> points;
  points.reserve(count);
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      if (points.size() != count) {
        throw std::invalid_argument(
            "load_evaluated_points: point count mismatch");
      }
      return points;
    }
    if (tag != "point") {
      throw std::invalid_argument("load_evaluated_points: unknown tag " +
                                  tag);
    }
    HwEvaluatedPoint p;
    p.test_accuracy = read_hexdouble(is, "load_evaluated_points");
    int match = 0;
    if (!(is >> p.fa_area) || p.fa_area < 0) {
      throw std::invalid_argument("load_evaluated_points: bad fa_area");
    }
    if (!(is >> match) || (match != 0 && match != 1)) {
      throw std::invalid_argument(
          "load_evaluated_points: bad functional_match");
    }
    p.functional_match = match == 1;
    p.cost.area_mm2 = read_hexdouble(is, "load_evaluated_points");
    p.cost.power_uw = read_hexdouble(is, "load_evaluated_points");
    p.cost.critical_delay_us = read_hexdouble(is, "load_evaluated_points");
    if (!(is >> p.cost.cell_count) || p.cost.cell_count < 0) {
      throw std::invalid_argument("load_evaluated_points: bad cell_count");
    }
    p.model = read_model_embedded(is, "load_evaluated_points");
    points.push_back(std::move(p));
  }
  throw std::invalid_argument("load_evaluated_points: missing end");
}

// ------------------------------------------------------------ GA state

void save_ga_state(const nsga2::GenerationState& state, std::ostream& os) {
  os << "pmlp-ga-state v1\n";
  os << "generation " << state.next_generation << '\n';
  os << "evaluations " << state.evaluations << '\n';
  // The mt19937_64 stream serialization is space-separated tokens; keep it
  // on one tagged line so the reader can take the line verbatim.
  os << "rng " << state.rng << '\n';
  const std::size_t n_genes =
      state.population.empty() ? 0 : state.population.front().genes.size();
  const std::size_t n_obj = state.population.empty()
                                ? 0
                                : state.population.front().objectives.size();
  os << "population " << state.population.size() << ' ' << n_genes << ' '
     << n_obj << '\n';
  for (const auto& ind : state.population) {
    os << "ind " << ind.rank << ' ';
    write_hexdouble(os, ind.crowding);
    os << ' ';
    write_hexdouble(os, ind.constraint_violation);
    os << '\n';
    os << "genes";
    for (int g : ind.genes) os << ' ' << g;
    os << '\n';
    os << "obj";
    for (double o : ind.objectives) {
      os << ' ';
      write_hexdouble(os, o);
    }
    os << '\n';
  }
  os << "end\n";
  check_stream(os, "save_ga_state");
}

nsga2::GenerationState load_ga_state(std::istream& is) {
  expect_header(is, "pmlp-ga-state", "load_ga_state");
  nsga2::GenerationState state;
  expect_tag(is, "generation", "load_ga_state");
  if (!(is >> state.next_generation) || state.next_generation < 0) {
    throw std::invalid_argument("load_ga_state: bad generation");
  }
  expect_tag(is, "evaluations", "load_ga_state");
  if (!(is >> state.evaluations) || state.evaluations < 0) {
    throw std::invalid_argument("load_ga_state: bad evaluations");
  }
  expect_tag(is, "rng", "load_ga_state");
  is >> std::ws;
  if (!std::getline(is, state.rng) || state.rng.empty()) {
    throw std::invalid_argument("load_ga_state: missing rng state");
  }
  while (!state.rng.empty() &&
         (state.rng.back() == '\r' || state.rng.back() == ' ')) {
    state.rng.pop_back();
  }
  expect_tag(is, "population", "load_ga_state");
  std::size_t count = 0, n_genes = 0, n_obj = 0;
  if (!(is >> count >> n_genes >> n_obj) || count > (std::size_t{1} << 20) ||
      n_genes > (std::size_t{1} << 20) || n_obj > 16) {
    throw std::invalid_argument("load_ga_state: bad population header");
  }
  state.population.reserve(count);
  std::string tag;
  while (is >> tag) {
    if (tag == "end") {
      if (state.population.size() != count) {
        throw std::invalid_argument("load_ga_state: population count "
                                    "mismatch");
      }
      return state;
    }
    if (tag != "ind") {
      throw std::invalid_argument("load_ga_state: unknown tag " + tag);
    }
    nsga2::Individual ind;
    if (!(is >> ind.rank) || ind.rank < -1) {
      throw std::invalid_argument("load_ga_state: bad rank");
    }
    ind.crowding = read_hexdouble(is, "load_ga_state");
    ind.constraint_violation = read_hexdouble(is, "load_ga_state");
    expect_tag(is, "genes", "load_ga_state");
    ind.genes.resize(n_genes);
    for (std::size_t g = 0; g < n_genes; ++g) {
      if (!(is >> ind.genes[g])) {
        throw std::invalid_argument("load_ga_state: malformed genes");
      }
    }
    expect_tag(is, "obj", "load_ga_state");
    ind.objectives.resize(n_obj);
    for (std::size_t m = 0; m < n_obj; ++m) {
      ind.objectives[m] = read_hexdouble(is, "load_ga_state");
    }
    state.population.push_back(std::move(ind));
  }
  throw std::invalid_argument("load_ga_state: missing end");
}

// ------------------------------------------------------- checksum footers

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string checksum_footer(const std::string& content) {
  const std::size_t lines =
      static_cast<std::size_t>(std::count(content.begin(), content.end(),
                                          '\n'));
  char buf[64];
  std::snprintf(buf, sizeof buf, "# crc32 %08x lines %zu\n",
                crc32(content.data(), content.size()), lines);
  return buf;
}

void verify_checksum_footer(const std::string& content, const char* what) {
  if (content.empty()) return;
  // Locate the final line (newline-terminated or a trailing partial line —
  // a partial line can only be a truncated footer and must be rejected).
  const bool terminated = content.back() == '\n';
  const std::size_t scan_end = terminated ? content.size() - 1
                                          : content.size();
  const std::size_t prev_nl = content.find_last_of('\n', scan_end == 0
                                                             ? 0
                                                             : scan_end - 1);
  const std::size_t line_begin =
      (scan_end == 0 || prev_nl == std::string::npos) ? 0 : prev_nl + 1;
  if (line_begin >= content.size() || content[line_begin] != '#') {
    return;  // no footer: a legacy artifact, accepted unverified
  }
  // From here on the file claims a footer; anything short of a complete,
  // matching one is corruption.
  const std::string line = content.substr(line_begin, scan_end - line_begin);
  if (!terminated) {
    throw std::invalid_argument(std::string(what) +
                                ": truncated checksum footer");
  }
  unsigned long got_crc = 0;
  std::size_t got_lines = 0;
  int consumed = 0;
  if (std::sscanf(line.c_str(), "# crc32 %8lx lines %zu%n", &got_crc,
                  &got_lines, &consumed) != 2 ||
      consumed != static_cast<int>(line.size())) {
    throw std::invalid_argument(std::string(what) +
                                ": malformed checksum footer '" + line + "'");
  }
  const std::string_view body(content.data(), line_begin);
  const auto body_lines = static_cast<std::size_t>(
      std::count(body.begin(), body.end(), '\n'));
  if (body_lines != got_lines) {
    throw std::invalid_argument(
        std::string(what) + ": checksum footer line count mismatch (footer " +
        std::to_string(got_lines) + ", file " + std::to_string(body_lines) +
        ")");
  }
  const std::uint32_t body_crc = crc32(body.data(), body.size());
  if (body_crc != static_cast<std::uint32_t>(got_crc)) {
    throw std::invalid_argument(std::string(what) +
                                ": checksum mismatch (artifact corrupt)");
  }
}

std::string read_artifact_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    throw std::runtime_error("cannot read " + path);
  }
  std::string content = buffer.str();
  verify_checksum_footer(content, path.c_str());
  return content;
}

namespace {

/// fsync one path; directory syncs are best-effort (some filesystems
/// reject O_DIRECTORY fsync), file syncs are mandatory.
void fsync_file_or_throw(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot fsync " + path + ": " +
                             std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("fsync failed for " + path + ": " +
                             std::strerror(saved));
  }
}

void fsync_dir_best_effort(const std::string& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_artifact_file(const std::string& path,
                         const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  try {
    std::ostringstream body;
    writer(body);
    std::string content = body.str();
    content += checksum_footer(content);
    {
      std::ofstream os(tmp, std::ios::binary);
      if (!os) throw std::runtime_error("cannot write " + tmp);
      os.write(content.data(),
               static_cast<std::streamsize>(content.size()));
      os.flush();
      if (!os) throw std::runtime_error("short write to " + tmp);
    }
    // Durability before visibility: the temp file's bytes must be on disk
    // before the rename publishes them, and the rename itself before the
    // parent directory claims the new name survived. Otherwise a power
    // loss can publish an empty or partial artifact through the rename.
    fsync_file_or_throw(tmp);
    std::filesystem::rename(tmp, path);
    fsync_dir_best_effort(
        std::filesystem::path(path).parent_path().string());
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

// ---------------------------------------------------------- front artifacts

namespace {

namespace fs = std::filesystem;

/// Exact-precision double from one index.tsv field (the writer emits
/// max_digits10 decimal digits, which round-trip IEEE-754 exactly).
double parse_index_double(const std::string& field, const std::string& line) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size() ||
      errno == ERANGE) {
    throw std::invalid_argument("load_front_dir: bad numeric field '" +
                                field + "' in index row '" + line + "'");
  }
  return v;
}

/// True when `name` looks like a front model artifact (front_*.model) — the
/// namespace the index is authoritative over. Other files in the directory
/// (index.tsv itself, notes, ...) are none of our business.
bool is_front_model_name(const std::string& name) {
  return name.size() > 12 && name.rfind("front_", 0) == 0 &&
         name.compare(name.size() - 6, 6, ".model") == 0;
}

}  // namespace

std::vector<FrontEntry> load_front_dir(const std::string& dir) {
  const fs::path root(dir);
  std::ifstream index(root / "index.tsv");
  if (!index) {
    throw std::runtime_error("load_front_dir: cannot read " +
                             (root / "index.tsv").string());
  }
  std::string line;
  if (!std::getline(index, line) ||
      line.rfind("file\ttest_accuracy\tarea_cm2\tpower_mw", 0) != 0) {
    throw std::invalid_argument("load_front_dir: bad index.tsv header in " +
                                dir);
  }
  std::vector<FrontEntry> entries;
  while (std::getline(index, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::string field;
    std::istringstream ls(line);
    while (std::getline(ls, field, '\t')) fields.push_back(field);
    if (fields.size() != 5) {
      throw std::invalid_argument("load_front_dir: expected 5 fields in "
                                  "index row '" + line + "'");
    }
    FrontEntry e;
    e.file = fields[0];
    if (!is_front_model_name(e.file)) {
      throw std::invalid_argument("load_front_dir: index names '" + e.file +
                                  "', not a front_*.model file");
    }
    for (const auto& prior : entries) {
      if (prior.file == e.file) {
        throw std::invalid_argument("load_front_dir: duplicate index entry '" +
                                    e.file + "'");
      }
    }
    e.test_accuracy = parse_index_double(fields[1], line);
    e.area_cm2 = parse_index_double(fields[2], line);
    e.power_mw = parse_index_double(fields[3], line);
    if (fields[4] != "0" && fields[4] != "1") {
      throw std::invalid_argument("load_front_dir: bad functional_match in "
                                  "index row '" + line + "'");
    }
    e.functional_match = fields[4] == "1";
    const fs::path model_path = root / e.file;
    std::error_code ec;
    if (!fs::exists(model_path, ec)) {
      throw std::invalid_argument("load_front_dir: index names missing file " +
                                  model_path.string());
    }
    e.model = load_model_file(model_path.string());
    entries.push_back(std::move(e));
  }
  // The index is authoritative: any front_*.model on disk that it does not
  // name is a stale artifact from an earlier, larger front — reject rather
  // than glob, so a consumer can never serve a model nothing vouches for.
  for (const auto& ent : fs::directory_iterator(root)) {
    const std::string name = ent.path().filename().string();
    if (!is_front_model_name(name)) continue;
    const bool indexed =
        std::any_of(entries.begin(), entries.end(),
                    [&](const FrontEntry& e) { return e.file == name; });
    if (!indexed) {
      throw std::invalid_argument("load_front_dir: stale model file '" +
                                  name + "' in " + dir +
                                  " is not named by index.tsv");
    }
  }
  return entries;
}

std::vector<FrontEntry> load_front_tree(const std::string& dir) {
  const fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    throw std::runtime_error("load_front_tree: '" + dir +
                             "' is not a directory");
  }
  // Deterministic entry order regardless of directory_iterator order.
  std::vector<std::string> flows;
  for (const auto& ent : fs::directory_iterator(root)) {
    if (ent.is_directory() && fs::exists(ent.path() / "evaluated.txt", ec)) {
      flows.push_back(ent.path().filename().string());
    }
  }
  std::sort(flows.begin(), flows.end());
  std::vector<FrontEntry> entries;
  for (const auto& flow : flows) {
    std::ifstream is(root / flow / "evaluated.txt");
    if (!is) {
      throw std::runtime_error("load_front_tree: cannot read " +
                               (root / flow / "evaluated.txt").string());
    }
    auto front = true_pareto(load_evaluated_points(is));
    for (std::size_t i = 0; i < front.size(); ++i) {
      char name[40];
      std::snprintf(name, sizeof name, "front_%03zu.model", i);
      FrontEntry e;
      e.file = flow + "/" + name;
      e.test_accuracy = front[i].test_accuracy;
      e.area_cm2 = front[i].cost.area_cm2();
      e.power_mw = front[i].cost.power_mw();
      e.functional_match = front[i].functional_match;
      e.model = std::move(front[i].model);
      entries.push_back(std::move(e));
    }
  }
  if (entries.empty()) {
    throw std::runtime_error(
        "load_front_tree: no flow under '" + dir +
        "' has reached the hardware stage (no evaluated.txt)");
  }
  return entries;
}

std::vector<FrontEntry> load_front_any(const std::string& dir) {
  std::error_code ec;
  if (fs::exists(fs::path(dir) / "index.tsv", ec)) {
    return load_front_dir(dir);
  }
  return load_front_tree(dir);
}

// --------------------------------------------------------------- hexfloats

/// Doubles are stored as C hexfloats ("%a"), which round-trip IEEE-754
/// values exactly and independently of locale or precision settings.
void write_hexdouble(std::ostream& os, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf;
}

double read_hexdouble(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok)) {
    throw std::invalid_argument(std::string(what) + ": missing value");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) {
    throw std::invalid_argument(std::string(what) + ": bad value '" + tok +
                                "'");
  }
  return v;
}

// ------------------------------------------------------------------ digest

void Fnv1a::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 1099511628211ull;
  }
}

std::uint64_t dataset_digest(const datasets::Dataset& d) {
  Fnv1a h;
  h.str(d.name);
  h.i64(d.n_features);
  h.i64(d.n_classes);
  h.u64(d.labels.size());
  for (int label : d.labels) h.i64(label);
  h.bytes(d.features.data(), d.features.size() * sizeof(double));
  return h.state;
}

}  // namespace pmlp::core
