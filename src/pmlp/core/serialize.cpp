#include "pmlp/core/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

namespace {
constexpr const char* kMagic = "pmlp-approx-mlp";
constexpr const char* kVersion = "v1";
}  // namespace

void save_model(const ApproxMlp& net, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "topology";
  for (int n : net.topology().layers) os << ' ' << n;
  os << '\n';
  const auto& b = net.bits();
  os << "bits " << b.weight_bits << ' ' << b.input_bits << ' ' << b.act_bits
     << ' ' << b.bias_bits << '\n';
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const auto& layer = net.layers()[l];
    os << "layer " << l << '\n';
    for (int o = 0; o < layer.n_out; ++o) {
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        os << "conn " << o << ' ' << i << ' ' << c.mask << ' '
           << (c.sign < 0 ? -1 : 1) << ' ' << c.exponent << '\n';
      }
    }
    for (int o = 0; o < layer.n_out; ++o) {
      os << "bias " << o << ' ' << layer.biases[static_cast<std::size_t>(o)]
         << '\n';
    }
  }
  if (!os) throw std::runtime_error("save_model: stream failure");
}

std::string to_text(const ApproxMlp& net) {
  std::ostringstream os;
  save_model(net, os);
  return os.str();
}

ApproxMlp load_model(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::invalid_argument("load_model: bad header");
  }
  std::string tag;
  if (!(is >> tag) || tag != "topology") {
    throw std::invalid_argument("load_model: expected topology");
  }
  // Topology: read ints until the "bits" tag.
  mlp::Topology topo;
  std::string token;
  while (is >> token) {
    if (token == "bits") break;
    try {
      topo.layers.push_back(std::stoi(token));
    } catch (const std::exception&) {
      throw std::invalid_argument("load_model: bad topology entry");
    }
  }
  if (token != "bits" || topo.layers.size() < 2) {
    throw std::invalid_argument("load_model: malformed topology/bits");
  }
  BitConfig bits;
  if (!(is >> bits.weight_bits >> bits.input_bits >> bits.act_bits >>
        bits.bias_bits)) {
    throw std::invalid_argument("load_model: malformed bit config");
  }
  if (bits.weight_bits < 2 || bits.weight_bits > 16 || bits.input_bits < 1 ||
      bits.input_bits > 8 || bits.act_bits < 1 || bits.act_bits > 16 ||
      bits.bias_bits < 2 || bits.bias_bits > 24) {
    throw std::invalid_argument("load_model: bit config out of range");
  }

  ApproxMlp net(topo, bits);
  int current_layer = -1;
  while (is >> tag) {
    if (tag == "layer") {
      if (!(is >> current_layer) || current_layer < 0 ||
          current_layer >= static_cast<int>(net.layers().size())) {
        throw std::invalid_argument("load_model: bad layer index");
      }
    } else if (tag == "conn") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_model: conn before layer");
      }
      auto& layer = net.layers()[static_cast<std::size_t>(current_layer)];
      int o = 0, i = 0, sign = 0, exponent = 0;
      std::uint32_t mask = 0;
      if (!(is >> o >> i >> mask >> sign >> exponent)) {
        throw std::invalid_argument("load_model: malformed conn");
      }
      if (o < 0 || o >= layer.n_out || i < 0 || i >= layer.n_in ||
          (sign != 1 && sign != -1) || exponent < 0 ||
          exponent > bits.max_exponent() ||
          mask > bitops::low_mask(layer.input_bits)) {
        throw std::invalid_argument("load_model: conn out of range");
      }
      layer.conn(o, i) = ApproxConn{mask, sign, exponent};
    } else if (tag == "bias") {
      if (current_layer < 0) {
        throw std::invalid_argument("load_model: bias before layer");
      }
      auto& layer = net.layers()[static_cast<std::size_t>(current_layer)];
      int o = 0;
      std::int64_t value = 0;
      if (!(is >> o >> value) || o < 0 || o >= layer.n_out ||
          value < bits.bias_min() || value > bits.bias_max()) {
        throw std::invalid_argument("load_model: bias out of range");
      }
      layer.biases[static_cast<std::size_t>(o)] = value;
    } else {
      throw std::invalid_argument("load_model: unknown tag " + tag);
    }
  }
  net.update_qrelu_shifts();
  return net;
}

ApproxMlp from_text(const std::string& text) {
  std::istringstream is(text);
  return load_model(is);
}

void save_model_file(const ApproxMlp& net, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(net, os);
}

ApproxMlp load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(is);
}

}  // namespace pmlp::core
