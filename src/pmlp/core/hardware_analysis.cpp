#include "pmlp/core/hardware_analysis.hpp"

#include <algorithm>

#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/pareto.hpp"
#include "pmlp/core/thread_pool.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/opt.hpp"

namespace pmlp::core {

namespace {

/// Candidates per worker below which the pool fan-out is skipped: spawning
/// workers for a couple of netlist builds costs more than it saves (the
/// measured tiny-n "speedup" was < 1). Results are identical either way.
constexpr std::size_t kMinCandidatesPerWorker = 2;

/// Build/price/verify one candidate — pure function of its inputs, so the
/// parallel fan-out below is bit-identical to the serial loop. Model
/// predictions run through the compiled sparse engine (bit-identical to
/// ApproxMlp::predict, much faster per sample); `ws` is the calling
/// worker's reusable workspace.
HwEvaluatedPoint evaluate_candidate(const EstimatedPoint& cand,
                                    const datasets::QuantizedDataset& test,
                                    const hwmodel::CellLibrary& lib,
                                    const HardwareAnalysisConfig& cfg,
                                    EvalWorkspace& ws) {
  HwEvaluatedPoint p;
  p.model = cand.model;
  p.fa_area = cand.fa_area;

  const auto circuit =
      netlist::build_bespoke_mlp(cand.model.to_bespoke_desc("candidate"));
  // Price the synthesis-cleaned netlist (what a real tool would ship);
  // functional verification below runs on the as-built circuit.
  p.cost = netlist::optimize(circuit.nl).cost(lib);

  std::size_t n_check = test.size();
  if (cfg.equivalence_samples == 0) {
    n_check = 0;
  } else if (cfg.equivalence_samples > 0) {
    n_check = std::min<std::size_t>(
        n_check, static_cast<std::size_t>(cfg.equivalence_samples));
  }
  const CompiledNet net(cand.model);
  const auto preds = net.predict_batch(test, ws);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const int model_pred = preds[i];
    if (i < n_check && circuit.predict(test.row(i)) != model_pred) {
      p.functional_match = false;
    }
    if (model_pred == test.labels[i]) ++correct;
  }
  p.test_accuracy = test.size() == 0 ? 0.0
                                     : static_cast<double>(correct) /
                                           static_cast<double>(test.size());
  return p;
}

}  // namespace

std::vector<HwEvaluatedPoint> evaluate_hardware(
    std::span<const EstimatedPoint> candidates,
    const datasets::QuantizedDataset& test, const hwmodel::CellLibrary& lib,
    const HardwareAnalysisConfig& cfg) {
  std::vector<HwEvaluatedPoint> out(candidates.size());
  // Small-n serial fallback: never hand a worker fewer candidates than
  // dispatch can amortize, and skip pool construction when that leaves a
  // single worker.
  const int n_threads = std::min<int>(
      resolve_n_threads(cfg.n_threads),
      static_cast<int>(candidates.size() / kMinCandidatesPerWorker));
  if (n_threads <= 1) {
    EvalWorkspace ws;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = evaluate_candidate(candidates[i], test, lib, cfg, ws);
    }
  } else {
    // Each worker fills its own static chunk of the output, so the result
    // vector is index-addressed and independent of scheduling.
    ThreadPool pool(n_threads);
    pool.parallel_for(
        candidates.size(),
        [&](std::size_t begin, std::size_t end) {
          EvalWorkspace ws;
          for (std::size_t i = begin; i < end; ++i) {
            out[i] = evaluate_candidate(candidates[i], test, lib, cfg, ws);
          }
        },
        kMinCandidatesPerWorker);
  }
  return out;
}

std::vector<HwEvaluatedPoint> true_pareto(std::vector<HwEvaluatedPoint> points) {
  std::vector<Point2> objs;
  objs.reserve(points.size());
  for (const auto& p : points) {
    objs.push_back({1.0 - p.test_accuracy, p.cost.area_mm2});
  }
  std::vector<HwEvaluatedPoint> front;
  for (std::size_t i : pareto_indices(objs)) {
    front.push_back(std::move(points[i]));
  }
  std::sort(front.begin(), front.end(),
            [](const HwEvaluatedPoint& a, const HwEvaluatedPoint& b) {
              return a.cost.area_mm2 < b.cost.area_mm2;
            });
  return front;
}

std::optional<HwEvaluatedPoint> best_within_loss(
    std::span<const HwEvaluatedPoint> points, double baseline_accuracy,
    double max_loss) {
  std::optional<HwEvaluatedPoint> best;
  for (const auto& p : points) {
    if (p.test_accuracy + 1e-12 < baseline_accuracy - max_loss) continue;
    if (!best || p.cost.area_mm2 < best->cost.area_mm2) best = p;
  }
  return best;
}

}  // namespace pmlp::core
