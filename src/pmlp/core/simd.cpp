#include "pmlp/core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pmlp::core {

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kScalar:
      break;
  }
  return "scalar";
}

SimdIsa detect_simd_isa() {
#if defined(__aarch64__)
  return SimdIsa::kNeon;  // Advanced SIMD is architecturally baseline.
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? SimdIsa::kAvx2 : SimdIsa::kScalar;
#else
  return SimdIsa::kScalar;
#endif
}

namespace {

SimdIsa clamp_to_detected(SimdIsa isa) {
  return isa == detect_simd_isa() ? isa : SimdIsa::kScalar;
}

SimdIsa initial_isa() {
  const char* env = std::getenv("PMLP_SIMD");
  if (env == nullptr || *env == '\0') return detect_simd_isa();
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
    return SimdIsa::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) return clamp_to_detected(SimdIsa::kAvx2);
  if (std::strcmp(env, "neon") == 0) return clamp_to_detected(SimdIsa::kNeon);
  return detect_simd_isa();  // unrecognized value: ignore the knob
}

std::atomic<SimdIsa>& active_slot() {
  static std::atomic<SimdIsa> slot{initial_isa()};
  return slot;
}

}  // namespace

SimdIsa active_simd_isa() {
  return active_slot().load(std::memory_order_relaxed);
}

SimdIsa set_simd_isa(SimdIsa isa) {
  const SimdIsa installed = clamp_to_detected(isa);
  active_slot().store(installed, std::memory_order_relaxed);
  return installed;
}

}  // namespace pmlp::core
