#include "pmlp/core/worker.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "pmlp/core/fault_injection.hpp"
#include "pmlp/core/serialize.hpp"

namespace pmlp::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "campaign.txt";
constexpr const char* kClaimFile = "claim.lock";
constexpr const char* kBeatFile = "beat.txt";
constexpr const char* kDoneFile = "done.txt";
constexpr const char* kFailedFile = "failed.txt";
constexpr const char* kFailuresFile = "failures.txt";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string host_name() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof buf - 1) != 0) return "unknown-host";
  return buf;
}

/// Filesystem-safe worker-id fragment for temp/quarantine names.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::string read_file_raw(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return "";
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// One-line terminal markers / failure records go through the same
/// fsync+footer commit as stage artifacts.
void write_marker(const std::string& path,
                  const std::function<void(std::ostream&)>& writer) {
  write_artifact_file(path, writer);
}

std::string single_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// failures.txt: consecutive failed-claim counter + last error.
struct FailureRecord {
  int count = 0;
  std::string error;
};

FailureRecord read_failures(const std::string& flow_dir) {
  FailureRecord rec;
  const std::string path = (fs::path(flow_dir) / kFailuresFile).string();
  std::error_code ec;
  if (!fs::exists(path, ec)) return rec;
  try {
    std::istringstream is(read_artifact_file(path));
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "pmlp-failures" ||
        version != "v1" || !(is >> tag >> rec.count) || tag != "count" ||
        rec.count < 0) {
      return FailureRecord{};  // damaged record: treat as zero failures
    }
    if (is >> tag && tag == "error") {
      is >> std::ws;
      std::getline(is, rec.error);
    }
  } catch (const std::exception&) {
    return FailureRecord{};
  }
  return rec;
}

void write_failures(const std::string& flow_dir, const FailureRecord& rec) {
  write_marker((fs::path(flow_dir) / kFailuresFile).string(),
               [&](std::ostream& os) {
                 os << "pmlp-failures v1\n";
                 os << "count " << rec.count << '\n';
                 os << "error " << single_line(rec.error) << '\n';
                 os << "end\n";
               });
}

}  // namespace

// ---------------------------------------------------------------- manifest

void save_campaign_manifest(const CampaignManifest& m,
                            const std::string& root) {
  fs::create_directories(root);
  write_artifact_file(
      (fs::path(root) / kManifestFile).string(), [&](std::ostream& os) {
        os << "pmlp-campaign v1\n";
        os << "population " << m.population << '\n';
        os << "generations " << m.generations << '\n';
        os << "ga_checkpoint " << m.ga_checkpoint << '\n';
        os << "flows " << m.flows.size() << '\n';
        for (const auto& f : m.flows) {
          os << "flow " << f.name << ' ' << f.dataset << ' ' << f.seed
             << '\n';
        }
        os << "end\n";
      });
}

CampaignManifest load_campaign_manifest(const std::string& root) {
  const std::string path = (fs::path(root) / kManifestFile).string();
  if (!fs::exists(path)) {
    throw std::runtime_error(
        "no campaign manifest (campaign.txt) under '" + root +
        "' — start the tree with `pmlp campaign --checkpoint " + root + "`");
  }
  std::istringstream is(read_artifact_file(path));
  const auto bad = [&](const std::string& why) {
    return std::invalid_argument("malformed campaign manifest " + path +
                                 ": " + why);
  };
  CampaignManifest m;
  std::string magic, version, tag;
  if (!(is >> magic >> version) || magic != "pmlp-campaign" ||
      version != "v1") {
    throw bad("bad magic/version");
  }
  std::size_t count = 0;
  if (!(is >> tag >> m.population) || tag != "population" ||
      m.population <= 0 || !(is >> tag >> m.generations) ||
      tag != "generations" || m.generations <= 0 ||
      !(is >> tag >> m.ga_checkpoint) || tag != "ga_checkpoint" ||
      m.ga_checkpoint < 0 || !(is >> tag >> count) || tag != "flows" ||
      count > (1u << 20)) {
    throw bad("bad header fields");
  }
  m.flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CampaignManifestFlow f;
    if (!(is >> tag >> f.name >> f.dataset >> f.seed) || tag != "flow" ||
        f.name.empty()) {
      throw bad("bad flow row " + std::to_string(i));
    }
    for (const auto& prev : m.flows) {
      if (prev.name == f.name) throw bad("duplicate flow '" + f.name + "'");
    }
    m.flows.push_back(std::move(f));
  }
  if (!(is >> tag) || tag != "end") throw bad("missing end");
  return m;
}

// ------------------------------------------------------------------ leases

namespace lease {

bool try_claim(const std::string& flow_dir, const std::string& worker_id) {
  const std::string path = (fs::path(flow_dir) / kClaimFile).string();
  // O_EXCL is the arbiter: exactly one creator wins; everybody else gets
  // EEXIST. The claim is create-once — never rewritten — so a stalled
  // owner can never overwrite a thief's fresh claim with its own stale one.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw std::runtime_error("cannot create claim " + path + ": " +
                             std::strerror(errno));
  }
  std::ostringstream body;
  body << "pmlp-claim v1\n";
  body << "worker " << worker_id << '\n';
  body << "host " << host_name() << '\n';
  body << "pid " << ::getpid() << '\n';
  body << "end\n";
  const std::string text = body.str();
  const char* p = text.data();
  std::size_t left = text.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    // Short-written claim: release it rather than hold a lock that other
    // workers cannot attribute (an unreadable claim still ages out via the
    // snapshot timeout, but there is no reason to leave one behind).
    ::unlink(path.c_str());
    throw std::runtime_error("cannot write claim " + path);
  }
  return true;
}

std::optional<ClaimInfo> read_claim(const std::string& flow_dir) {
  const std::string path = (fs::path(flow_dir) / kClaimFile).string();
  const std::string raw = read_file_raw(path);
  if (raw.empty()) return std::nullopt;
  ClaimInfo info;
  info.raw = raw;
  std::istringstream is(raw);
  std::string magic, version, tag;
  if (!(is >> magic >> version) || magic != "pmlp-claim" || version != "v1" ||
      !(is >> tag >> info.worker) || tag != "worker" ||
      !(is >> tag >> info.host) || tag != "host" ||
      !(is >> tag >> info.pid) || tag != "pid") {
    // Unparsable (e.g. torn by a crashed writer): still return the raw
    // snapshot — staleness judgment works on bytes, not fields.
    info.worker.clear();
    info.host.clear();
    info.pid = -1;
  }
  return info;
}

void write_beat(const std::string& flow_dir, const std::string& worker_id,
                long count) {
  const fs::path dir(flow_dir);
  const std::string tmp =
      (dir / (std::string(kBeatFile) + "." + sanitize(worker_id) + ".tmp"))
          .string();
  const std::string path = (dir / kBeatFile).string();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return;  // heartbeat is best-effort; the lease just ages
    os << "pmlp-beat v1\n"
       << "worker " << worker_id << '\n'
       << "count " << count << '\n'
       << "end\n";
    os.flush();
    if (!os) {
      os.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

std::string read_beat_raw(const std::string& flow_dir) {
  return read_file_raw((fs::path(flow_dir) / kBeatFile).string());
}

bool claim_owner_dead_locally(const ClaimInfo& claim) {
  if (claim.pid <= 0 || claim.host != host_name()) return false;
  if (::kill(static_cast<pid_t>(claim.pid), 0) == 0) return false;
  return errno == ESRCH;
}

bool steal_claim(const std::string& flow_dir, const std::string& thief_id) {
  // rename() is the arbiter: among racing thieves exactly one moves the
  // stale claim aside; the rest observe ENOENT. A per-thief destination
  // name keeps concurrent steals of DIFFERENT incarnations from colliding.
  static std::atomic<unsigned> nonce{0};
  const fs::path dir(flow_dir);
  const std::string src = (dir / kClaimFile).string();
  const std::string dst =
      (dir / (std::string(kClaimFile) + ".stale-" + sanitize(thief_id) + "-" +
              std::to_string(nonce.fetch_add(1))))
          .string();
  if (::rename(src.c_str(), dst.c_str()) != 0) return false;
  std::error_code ec;
  fs::remove(dst, ec);  // post-mortem value is low; drop it
  fs::remove((dir / kBeatFile).string(), ec);
  return true;
}

void release_claim(const std::string& flow_dir,
                   const std::string& worker_id) {
  const auto claim = read_claim(flow_dir);
  if (!claim || claim->worker != worker_id) return;  // stolen: not ours
  std::error_code ec;
  fs::remove((fs::path(flow_dir) / kBeatFile).string(), ec);
  fs::remove((fs::path(flow_dir) / kClaimFile).string(), ec);
}

}  // namespace lease

// ------------------------------------------------------------------ worker

struct CampaignWorker::Impl {
  std::vector<CampaignFlowSpec> specs;
  WorkerConfig cfg;
  std::string id;
  ProgressFn progress;
  WorkerReport report;

  std::atomic<bool> stop{false};

  // Heartbeat thread state: which flow directory to beat for ("" = none),
  // and whether the claim disappeared under us (fencing). `lease_gen`
  // increments on every begin/end so an in-flight beat iteration for a
  // PREVIOUS lease can never set lease_lost for the current one.
  std::thread beater;
  std::mutex beat_mutex;
  std::condition_variable beat_cv;
  std::string beat_dir;          // guarded by beat_mutex
  long lease_gen = 0;            // guarded by beat_mutex
  bool beater_exit = false;      // guarded by beat_mutex
  std::atomic<bool> lease_lost{false};
  long beat_count = 0;  ///< beater thread only

  // Per-flow staleness tracking: last observed (claim, beat) snapshot and
  // when THIS worker first saw it (local monotonic clock).
  struct StaleTrack {
    std::string claim_raw;
    std::string beat_raw;
    std::chrono::steady_clock::time_point first_seen;
    bool valid = false;
  };
  std::vector<StaleTrack> track;

  std::mt19937 jitter_rng{std::random_device{}()};

  void beater_loop();
  void begin_lease(const std::string& dir);
  void end_lease();
  bool acquire(std::size_t i, const std::string& dir);
  bool run_one_claim(std::size_t i, const std::string& dir);
};

CampaignWorker::CampaignWorker(std::vector<CampaignFlowSpec> specs,
                               WorkerConfig cfg)
    : impl_(std::make_unique<Impl>()) {
  impl_->specs = std::move(specs);
  impl_->cfg = std::move(cfg);
  if (impl_->cfg.checkpoint_root.empty()) {
    throw std::invalid_argument("CampaignWorker: checkpoint_root is empty");
  }
  if (impl_->cfg.lease_timeout_s <= 0 || impl_->cfg.heartbeat_s <= 0) {
    throw std::invalid_argument(
        "CampaignWorker: lease_timeout_s and heartbeat_s must be positive");
  }
  if (impl_->cfg.worker_id.empty()) {
    std::random_device rd;
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x", rd());
    impl_->cfg.worker_id =
        host_name() + "-" + std::to_string(::getpid()) + "-" + hex;
  }
  impl_->id = impl_->cfg.worker_id;
  impl_->report.worker_id = impl_->id;
  impl_->track.resize(impl_->specs.size());
}

CampaignWorker::~CampaignWorker() {
  if (impl_->beater.joinable()) {
    {
      std::lock_guard<std::mutex> lock(impl_->beat_mutex);
      impl_->beater_exit = true;
    }
    impl_->beat_cv.notify_all();
    impl_->beater.join();
  }
}

CampaignWorker& CampaignWorker::set_progress(ProgressFn cb) {
  impl_->progress = std::move(cb);
  return *this;
}

void CampaignWorker::request_stop() { impl_->stop.store(true); }

const std::string& CampaignWorker::worker_id() const { return impl_->id; }

void CampaignWorker::Impl::beater_loop() {
  std::unique_lock<std::mutex> lock(beat_mutex);
  for (;;) {
    beat_cv.wait_for(lock,
                     std::chrono::duration<double>(cfg.heartbeat_s));
    if (beater_exit) return;
    if (beat_dir.empty()) continue;
    const std::string dir = beat_dir;
    const long gen = lease_gen;
    lock.unlock();
    // Fencing: re-read the claim every beat. If it vanished or names
    // someone else, our lease was stolen (we stalled past the timeout).
    // Stop beating and raise the flag — the main loop must not write
    // terminal markers or release the NEW owner's claim.
    const auto claim = lease::read_claim(dir);
    const bool lost = !claim || claim->worker != id;
    if (!lost && !FaultInjector::instance().heartbeat_stalled()) {
      lease::write_beat(dir, id, ++beat_count);
    }
    lock.lock();
    if (lost && lease_gen == gen) lease_lost.store(true);
  }
}

void CampaignWorker::Impl::begin_lease(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(beat_mutex);
    beat_dir = dir;
    ++lease_gen;
    lease_lost.store(false);
  }
  // Wake the beater for the first beat right away; the fresh claim itself
  // already starts a fresh staleness snapshot for other workers.
  beat_cv.notify_all();
}

void CampaignWorker::Impl::end_lease() {
  std::lock_guard<std::mutex> lock(beat_mutex);
  beat_dir.clear();
  ++lease_gen;
}

/// Try to become the owner of flow `i`. Handles the contention path:
/// conflict accounting, same-host dead-owner fast path, snapshot-based
/// staleness and the atomic steal.
bool CampaignWorker::Impl::acquire(std::size_t i, const std::string& dir) {
  if (lease::try_claim(dir, id)) {
    ++report.claims;
    track[i].valid = false;
    return true;
  }
  ++report.claim_conflicts;
  const auto claim = lease::read_claim(dir);
  if (!claim) return false;  // released between our open() and read: retry
  const std::string beat = lease::read_beat_raw(dir);
  const auto now = std::chrono::steady_clock::now();
  auto& t = track[i];
  const bool changed =
      !t.valid || t.claim_raw != claim->raw || t.beat_raw != beat;
  if (changed) {
    t.claim_raw = claim->raw;
    t.beat_raw = beat;
    t.first_seen = now;
    t.valid = true;
  }
  const bool dead = lease::claim_owner_dead_locally(*claim);
  const bool timed_out =
      t.valid && std::chrono::duration<double>(now - t.first_seen).count() >=
                     cfg.lease_timeout_s;
  if (!dead && (changed || !timed_out)) return false;  // owner looks alive
  if (!lease::steal_claim(dir, id)) return false;  // lost the steal race
  ++report.leases_stolen;
  t.valid = false;
  if (lease::try_claim(dir, id)) {
    ++report.claims;
    return true;
  }
  return false;  // another worker claimed first; their lease, their flow
}

/// Holding the lease on flow `i`: run the pipeline forward by exactly one
/// computed stage (reloads of already-checkpointed stages ride along), or
/// finish the flow. Returns true when the tree advanced (stage computed,
/// marker written) — the sweep-level progress signal that resets backoff.
bool CampaignWorker::Impl::run_one_claim(std::size_t i,
                                         const std::string& dir) {
  begin_lease(dir);
  bool progressed = false;
  try {
    // Fresh engine per claim: state is reloaded from the tree, so this
    // worker composes with whatever other workers committed since its
    // last visit. Copies keep the spec reusable for later claims.
    const CampaignFlowSpec& spec = specs[i];
    FlowEngine engine(spec.data, spec.topology, spec.config);
    engine.set_checkpoint_dir(dir);
    std::optional<FlowStage> stage;
    for (;;) {
      stage = engine.advance();
      if (!stage) break;  // pipeline complete
      const StageReport& rep = engine.stages().back();
      if (rep.reused) {
        ++report.stages_reloaded;
      } else {
        ++report.stages_computed;
      }
      if (progress) progress(spec.name, rep);
      // kSelect is derived (never checkpointed): computing it is not a
      // commit boundary, keep going to the completion branch.
      if (!rep.reused && *stage != FlowStage::kSelect) {
        progressed = true;
        break;
      }
      if (stop.load()) break;
    }
    if (stage) {
      // One computed stage committed — the stage boundary. The injected
      // kill lands here, AFTER the commit and BEFORE the release: the
      // checkpoint tree keeps the work, the lease dies with the process.
      FaultInjector::instance().maybe_kill_at_stage(
          flow_stage_name(*stage));
    } else if (!lease_lost.load()) {
      write_marker((fs::path(dir) / kDoneFile).string(),
                   [&](std::ostream& os) {
                     os << "pmlp-done v1\n";
                     os << "worker " << id << '\n';
                     os << "end\n";
                   });
      ++report.flows_completed;
      progressed = true;
    }
    if (!lease_lost.load()) {
      std::error_code ec;
      fs::remove((fs::path(dir) / kFailuresFile).string(), ec);
    }
  } catch (const std::exception& e) {
    ++report.stage_failures;
    if (!lease_lost.load()) {
      FailureRecord rec = read_failures(dir);
      ++rec.count;
      rec.error = e.what();
      write_failures(dir, rec);
      if (rec.count >= cfg.max_failures) {
        write_marker((fs::path(dir) / kFailedFile).string(),
                     [&](std::ostream& os) {
                       os << "pmlp-failed v1\n";
                       os << "worker " << id << '\n';
                       os << "error " << single_line(rec.error) << '\n';
                       os << "end\n";
                     });
        ++report.flows_failed;
      }
      progressed = true;  // the failure record itself advanced the tree
    }
  }
  end_lease();
  if (!lease_lost.load()) {
    lease::release_claim(dir, id);
  }
  return progressed;
}

WorkerReport CampaignWorker::run() {
  Impl& im = *impl_;
  const auto t0 = std::chrono::steady_clock::now();
  if (!fs::is_directory(im.cfg.checkpoint_root)) {
    throw std::runtime_error("worker: checkpoint root '" +
                             im.cfg.checkpoint_root +
                             "' is not a directory");
  }
  im.beater = std::thread([&im] { im.beater_loop(); });

  double backoff = im.cfg.backoff_initial_s;
  while (!im.stop.load()) {
    bool any_active = false;
    bool progressed = false;
    for (std::size_t i = 0; i < im.specs.size() && !im.stop.load(); ++i) {
      const std::string dir =
          (fs::path(im.cfg.checkpoint_root) / im.specs[i].name).string();
      fs::create_directories(dir);
      std::error_code ec;
      if (fs::exists(fs::path(dir) / kDoneFile, ec) ||
          fs::exists(fs::path(dir) / kFailedFile, ec)) {
        continue;  // terminal
      }
      any_active = true;
      if (!im.acquire(i, dir)) continue;
      progressed = im.run_one_claim(i, dir) || progressed;
    }
    if (!any_active) break;  // tree fully drained
    if (!progressed && !im.stop.load()) {
      // Everything claimable is claimed by live owners: back off with
      // jitter so a fleet of idle workers doesn't poll in lockstep.
      std::uniform_real_distribution<double> u(0.5, 1.5);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff * u(im.jitter_rng)));
      backoff = std::min(backoff * 2.0, im.cfg.backoff_max_s);
    } else {
      backoff = im.cfg.backoff_initial_s;
    }
  }

  {
    std::lock_guard<std::mutex> lock(im.beat_mutex);
    im.beater_exit = true;
  }
  im.beat_cv.notify_all();
  im.beater.join();
  im.report.wall_seconds = seconds_since(t0);
  return im.report;
}

// ------------------------------------------------------------------ status

CampaignStatusReport read_campaign_status(const std::string& root) {
  CampaignStatusReport out;
  out.manifest = load_campaign_manifest(root);
  constexpr FlowStage kCheckpointed[] = {
      FlowStage::kSplit,   FlowStage::kBackprop, FlowStage::kBaseline,
      FlowStage::kGa,      FlowStage::kRefine,   FlowStage::kHardware,
  };
  for (const auto& mf : out.manifest.flows) {
    FlowStatusRow row;
    row.name = mf.name;
    row.stages_total = static_cast<int>(std::size(kCheckpointed));
    const fs::path dir = fs::path(root) / mf.name;
    std::error_code ec;
    for (FlowStage s : kCheckpointed) {
      if (fs::exists(dir / flow_stage_artifact(s), ec)) {
        ++row.stages_done;
      } else if (row.next_stage.empty()) {
        row.next_stage = flow_stage_name(s);
      }
    }
    if (row.next_stage.empty()) row.next_stage = "-";
    row.done = fs::exists(dir / kDoneFile, ec);
    row.failed = fs::exists(dir / kFailedFile, ec);
    if (const auto claim = lease::read_claim(dir.string())) {
      row.owner = claim->worker.empty() ? "?" : claim->worker;
      // Heartbeat age = seconds since the newer of claim/beat changed,
      // by file mtime. Cross-host clock skew makes this approximate —
      // it is presentation, not the staleness arbiter (workers use their
      // own monotonic snapshots for that).
      auto newest = fs::last_write_time(dir / kClaimFile, ec);
      if (!ec) {
        const auto beat_time = fs::last_write_time(dir / kBeatFile, ec);
        if (!ec && beat_time > newest) newest = beat_time;
        ec.clear();
        row.heartbeat_age_s = std::chrono::duration<double>(
                                  fs::file_time_type::clock::now() - newest)
                                  .count();
      }
    }
    const FailureRecord rec = read_failures(dir.string());
    row.failures = rec.count;
    row.error = rec.error;
    if (row.done) ++out.done;
    if (row.failed) ++out.failed;
    if (!row.owner.empty()) ++out.claimed;
    out.flows.push_back(std::move(row));
  }
  return out;
}

void write_campaign_status_table(const CampaignStatusReport& s,
                                 std::ostream& os) {
  os << "campaign: " << s.flows.size() << " flows (NSGA-II "
     << s.manifest.population << "x" << s.manifest.generations << "), "
     << s.done << " done, " << s.failed << " failed, " << s.claimed
     << " claimed\n";
  os << "  flow                 stages  next      state     owner"
        "                      beat-age  fails\n";
  for (const auto& f : s.flows) {
    os << "  ";
    os.width(20);
    os.setf(std::ios::left);
    os << f.name;
    os.unsetf(std::ios::left);
    os << ' ' << f.stages_done << '/' << f.stages_total << "     ";
    os.width(9);
    os.setf(std::ios::left);
    os << f.next_stage;
    os.width(9);
    const char* state = f.failed   ? "FAILED"
                        : f.done   ? "done"
                        : !f.owner.empty() ? "claimed"
                                           : "unclaimed";
    os << state;
    os.width(26);
    os << (f.owner.empty() ? "-" : f.owner);
    os.unsetf(std::ios::left);
    if (f.heartbeat_age_s >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%8.1fs", f.heartbeat_age_s);
      os << buf;
    } else {
      os << "       -";
    }
    os << "  " << f.failures;
    if (!f.error.empty()) os << "  (" << f.error << ")";
    os << '\n';
  }
}

void write_campaign_status_json(const CampaignStatusReport& s,
                                std::ostream& os) {
  std::ostringstream body;
  body.precision(17);
  body << "{\"campaign\":{\"population\":" << s.manifest.population
       << ",\"generations\":" << s.manifest.generations
       << ",\"ga_checkpoint\":" << s.manifest.ga_checkpoint
       << ",\"flows_total\":" << s.flows.size() << ",\"done\":" << s.done
       << ",\"failed\":" << s.failed << ",\"claimed\":" << s.claimed
       << ",\"flows\":[";
  for (std::size_t i = 0; i < s.flows.size(); ++i) {
    const auto& f = s.flows[i];
    if (i) body << ',';
    body << "{\"name\":";
    json_escape(f.name, body);
    body << ",\"stages_done\":" << f.stages_done
         << ",\"stages_total\":" << f.stages_total << ",\"next_stage\":";
    json_escape(f.next_stage, body);
    body << ",\"done\":" << (f.done ? "true" : "false")
         << ",\"failed\":" << (f.failed ? "true" : "false") << ",\"owner\":";
    if (f.owner.empty()) {
      body << "null";
    } else {
      json_escape(f.owner, body);
    }
    body << ",\"heartbeat_age_s\":";
    if (f.heartbeat_age_s >= 0) {
      body << f.heartbeat_age_s;
    } else {
      body << "null";
    }
    body << ",\"failures\":" << f.failures << ",\"error\":";
    if (f.error.empty()) {
      body << "null";
    } else {
      json_escape(f.error, body);
    }
    body << "}";
  }
  body << "]}}";
  os << body.str() << '\n';
}

}  // namespace pmlp::core
