#include "pmlp/core/refine.hpp"

#include <algorithm>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

namespace {

/// Round a bias to the nearest value with fewer set bits (magnitude-wise),
/// e.g. 0b0110111 -> 0b0111000. Returns the candidate (may equal input).
std::int64_t simplify_bias(std::int64_t b) {
  if (b == 0) return 0;
  const bool neg = b < 0;
  const auto mag = static_cast<std::uint64_t>(neg ? -b : b);
  if (bitops::popcount(mag) <= 2) return b;
  // Keep the top two set bits, round at the second.
  const int top = bitops::msb_index(mag);
  std::uint64_t kept = std::uint64_t{1} << top;
  std::uint64_t rest = mag ^ kept;
  if (rest != 0) {
    const int second = bitops::msb_index(rest);
    kept |= std::uint64_t{1} << second;
    rest ^= std::uint64_t{1} << second;
    if (second > 0 && rest >= (std::uint64_t{1} << (second - 1))) {
      kept += std::uint64_t{1} << second;  // round up at the kept LSB
    }
  }
  const auto out = static_cast<std::int64_t>(kept);
  return neg ? -out : out;
}

}  // namespace

RefineReport refine_greedy(ApproxMlp& net,
                           const datasets::QuantizedDataset& train,
                           const RefineConfig& cfg) {
  RefineReport report;
  report.fa_before = net.fa_area();
  report.accuracy_before = accuracy(net, train);

  double current_acc = report.accuracy_before;
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    bool changed = false;
    for (auto& layer : net.layers()) {
      const auto width_mask =
          static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
      for (int o = 0; o < layer.n_out; ++o) {
        for (int i = 0; i < layer.n_in; ++i) {
          ApproxConn& c = layer.conn(o, i);
          std::uint32_t remaining = c.mask & width_mask;
          while (remaining != 0) {
            // Clear the least significant retained bit first: it carries
            // the least signal and sits in the cheapest column, so if any
            // bit can go, this one is the most likely.
            const int bit = std::countr_zero(remaining);
            remaining &= remaining - 1;
            const std::uint32_t saved = c.mask;
            c.mask = static_cast<std::uint32_t>(
                bitops::set_bit(c.mask, bit, false));
            net.update_qrelu_shifts();
            const double acc = accuracy(net, train);
            if (acc + 1e-12 >= cfg.accuracy_floor &&
                acc + 1e-12 >= current_acc - 0.002) {
              current_acc = std::max(current_acc, acc);
              report.bits_cleared += 1;
              changed = true;
            } else {
              c.mask = saved;  // revert
            }
          }
        }
        if (cfg.refine_biases) {
          auto& bias = layer.biases[static_cast<std::size_t>(o)];
          // simplify_bias rounds up and can leave the representable range
          // (e.g. 1983 -> 2048 with 12-bit biases), which load_model then
          // rejects; keep the original bias in that case (clamping instead
          // could yield a value with MORE set bits, defeating the pass).
          std::int64_t candidate = simplify_bias(bias);
          if (candidate < net.bits().bias_min() ||
              candidate > net.bits().bias_max()) {
            candidate = bias;
          }
          if (candidate != bias) {
            const std::int64_t saved = bias;
            bias = candidate;
            net.update_qrelu_shifts();
            const double acc = accuracy(net, train);
            if (acc + 1e-12 >= cfg.accuracy_floor &&
                acc + 1e-12 >= current_acc - 0.002) {
              current_acc = std::max(current_acc, acc);
              report.biases_simplified += 1;
              changed = true;
            } else {
              bias = saved;
            }
          }
        }
      }
    }
    report.passes = pass + 1;
    if (!changed) break;
  }
  net.update_qrelu_shifts();
  report.fa_after = net.fa_area();
  report.accuracy_after = accuracy(net, train);
  return report;
}

void refine_front(std::span<EstimatedPoint> front,
                  const datasets::QuantizedDataset& train,
                  double baseline_train_accuracy, double max_point_loss,
                  double max_total_loss) {
  for (auto& point : front) {
    RefineConfig cfg;
    cfg.accuracy_floor = std::max(point.train_accuracy - max_point_loss,
                                  baseline_train_accuracy - max_total_loss);
    (void)refine_greedy(point.model, train, cfg);
    point.train_accuracy = accuracy(point.model, train);
    point.fa_area = point.model.fa_area();
  }
}

}  // namespace pmlp::core
