#include "pmlp/core/refine.hpp"

#include <algorithm>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/refine_engine.hpp"
#include "pmlp/core/thread_pool.hpp"

namespace pmlp::core {

namespace {

/// Round a bias to the nearest value with fewer set bits (magnitude-wise),
/// e.g. 0b0110111 -> 0b0111000. Returns the candidate (may equal input).
std::int64_t simplify_bias(std::int64_t b) {
  if (b == 0) return 0;
  const bool neg = b < 0;
  const auto mag = static_cast<std::uint64_t>(neg ? -b : b);
  if (bitops::popcount(mag) <= 2) return b;
  // Keep the top two set bits, round at the second.
  const int top = bitops::msb_index(mag);
  std::uint64_t kept = std::uint64_t{1} << top;
  std::uint64_t rest = mag ^ kept;
  if (rest != 0) {
    const int second = bitops::msb_index(rest);
    kept |= std::uint64_t{1} << second;
    rest ^= std::uint64_t{1} << second;
    if (second > 0 && rest >= (std::uint64_t{1} << (second - 1))) {
      kept += std::uint64_t{1} << second;  // round up at the kept LSB
    }
  }
  const auto out = static_cast<std::int64_t>(kept);
  return neg ? -out : out;
}

/// The bias candidate the greedy loop tries for neuron (layer, o), or the
/// current bias when simplification leaves range (simplify_bias rounds up
/// and can exceed e.g. 12-bit biases: 1983 -> 2048, which load_model then
/// rejects; clamping instead could yield MORE set bits, defeating the pass).
std::int64_t bias_candidate(const ApproxMlp& net, const ApproxLayer& layer,
                            int o) {
  const std::int64_t bias = layer.biases[static_cast<std::size_t>(o)];
  std::int64_t candidate = simplify_bias(bias);
  if (candidate < net.bits().bias_min() || candidate > net.bits().bias_max()) {
    candidate = bias;
  }
  return candidate;
}

}  // namespace

RefineReport refine_greedy(ApproxMlp& net,
                           const datasets::QuantizedDataset& train,
                           const RefineConfig& cfg) {
  RefineReport report;
  report.fa_before = net.fa_area();
  RefineEngine engine(net, train);
  report.accuracy_before = engine.accuracy_before();

  double current_acc = report.accuracy_before;
  const int n_layers = static_cast<int>(net.layers().size());
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    bool changed = false;
    for (int l = 0; l < n_layers; ++l) {
      auto& layer = net.layers()[static_cast<std::size_t>(l)];
      const auto width_mask =
          static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
      for (int o = 0; o < layer.n_out; ++o) {
        for (int i = 0; i < layer.n_in; ++i) {
          std::uint32_t remaining = layer.conn(o, i).mask & width_mask;
          while (remaining != 0) {
            // Clear the least significant retained bit first: it carries
            // the least signal and sits in the cheapest column, so if any
            // bit can go, this one is the most likely.
            const int bit = std::countr_zero(remaining);
            remaining &= remaining - 1;
            const auto acc = engine.try_clear_mask_bit(
                l, o, i, bit,
                std::max(cfg.accuracy_floor, current_acc - 0.002));
            if (acc) {
              current_acc = std::max(current_acc, *acc);
              report.bits_cleared += 1;
              changed = true;
            }
          }
        }
        if (cfg.refine_biases) {
          const std::int64_t bias =
              layer.biases[static_cast<std::size_t>(o)];
          const std::int64_t candidate = bias_candidate(net, layer, o);
          if (candidate != bias) {
            const auto acc = engine.try_set_bias(
                l, o, candidate,
                std::max(cfg.accuracy_floor, current_acc - 0.002));
            if (acc) {
              current_acc = std::max(current_acc, *acc);
              report.biases_simplified += 1;
              changed = true;
            }
          }
        }
      }
    }
    report.passes = pass + 1;
    if (!changed) break;
  }
  net.update_qrelu_shifts();
  report.fa_after = net.fa_area();
  report.accuracy_after = engine.accuracy();
  report.trials = engine.stats().trials;
  report.early_aborts = engine.stats().early_aborts;
  return report;
}

RefineReport refine_greedy_naive(ApproxMlp& net,
                                 const datasets::QuantizedDataset& train,
                                 const RefineConfig& cfg) {
  RefineReport report;
  report.fa_before = net.fa_area();
  report.accuracy_before = accuracy(net, train);

  double current_acc = report.accuracy_before;
  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    bool changed = false;
    for (auto& layer : net.layers()) {
      const auto width_mask =
          static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
      for (int o = 0; o < layer.n_out; ++o) {
        for (int i = 0; i < layer.n_in; ++i) {
          ApproxConn& c = layer.conn(o, i);
          std::uint32_t remaining = c.mask & width_mask;
          while (remaining != 0) {
            const int bit = std::countr_zero(remaining);
            remaining &= remaining - 1;
            const std::uint32_t saved = c.mask;
            c.mask = static_cast<std::uint32_t>(
                bitops::set_bit(c.mask, bit, false));
            net.update_qrelu_shifts();
            report.trials += 1;
            const double acc = accuracy(net, train);
            if (acc + 1e-12 >= cfg.accuracy_floor &&
                acc + 1e-12 >= current_acc - 0.002) {
              current_acc = std::max(current_acc, acc);
              report.bits_cleared += 1;
              changed = true;
            } else {
              c.mask = saved;  // revert
            }
          }
        }
        if (cfg.refine_biases) {
          auto& bias = layer.biases[static_cast<std::size_t>(o)];
          const std::int64_t candidate = bias_candidate(net, layer, o);
          if (candidate != bias) {
            const std::int64_t saved = bias;
            bias = candidate;
            net.update_qrelu_shifts();
            report.trials += 1;
            const double acc = accuracy(net, train);
            if (acc + 1e-12 >= cfg.accuracy_floor &&
                acc + 1e-12 >= current_acc - 0.002) {
              current_acc = std::max(current_acc, acc);
              report.biases_simplified += 1;
              changed = true;
            } else {
              bias = saved;
            }
          }
        }
      }
    }
    report.passes = pass + 1;
    if (!changed) break;
  }
  net.update_qrelu_shifts();
  report.fa_after = net.fa_area();
  report.accuracy_after = accuracy(net, train);
  return report;
}

RefineFrontReport refine_front(std::span<EstimatedPoint> front,
                               const datasets::QuantizedDataset& train,
                               double baseline_train_accuracy,
                               double max_point_loss, double max_total_loss,
                               int n_threads) {
  // Each point refines independently (own engine, own output slot), so the
  // fan-out is bit-identical to the serial loop for any thread count.
  const auto refine_one = [&](EstimatedPoint& point) {
    RefineConfig cfg;
    cfg.accuracy_floor = std::max(point.train_accuracy - max_point_loss,
                                  baseline_train_accuracy - max_total_loss);
    const RefineReport report = refine_greedy(point.model, train, cfg);
    // accuracy_after IS accuracy(point.model, train) — no extra full pass.
    point.train_accuracy = report.accuracy_after;
    point.fa_area = report.fa_after;
    return report;
  };

  std::vector<RefineReport> reports(front.size());
  const int workers =
      std::min<int>(resolve_n_threads(n_threads),
                    static_cast<int>(front.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < front.size(); ++i) {
      reports[i] = refine_one(front[i]);
    }
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(front.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        reports[i] = refine_one(front[i]);
      }
    });
  }

  RefineFrontReport total;
  total.points = static_cast<long>(front.size());
  for (const auto& r : reports) {
    total.trials += r.trials;
    total.early_aborts += r.early_aborts;
    total.bits_cleared += r.bits_cleared;
    total.biases_simplified += r.biases_simplified;
  }
  return total;
}

}  // namespace pmlp::core
