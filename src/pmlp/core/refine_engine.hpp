// Incremental evaluation engine for greedy post-GA refinement.
//
// refine_greedy tries thousands of single-parameter edits (clear one mask
// bit, round one bias) and keeps each edit only if training accuracy stays
// above a floor. The naive loop re-runs a full forward pass of the whole
// network over the whole dataset per trial — O(trials x samples x network) —
// even though clearing one bit in layer L leaves every activation below L
// untouched. This engine makes a trial cost proportional to what the edit
// actually changes:
//
//   memoize — per-sample, per-layer accumulators AND activations of the
//             current (committed) network live in flat buffers, so nothing
//             below the mutated layer is ever recomputed.
//   delta   — a mask-bit clear subtracts sign * ((x & bit) << k) from one
//             stored accumulator; a bias edit adds (new - old). Samples
//             whose affected activation does not change stop right there.
//             When a change does propagate, each downstream layer is
//             delta-updated from the set of changed inputs only, and the
//             wavefront dies as soon as a layer's activations are unchanged.
//   abort   — the accuracy floor is known before the scan, so the scan
//             aborts as soon as the running misclassification count makes
//             the floor unreachable even if every remaining sample were
//             correct.
//
// All arithmetic is the same int64 adds/shifts as ApproxMlp::forward, merely
// reordered into deltas (exact: no overflow at these ranges), and the accept
// test is the naive code's double comparison translated into an integer
// correct-count threshold via binary search over the same predicate — so
// decisions, reports and final masks are bit-identical to the naive loop
// (refine_greedy_naive stays as the oracle; see refine_engine_test).
//
// QReLU-shift handling mirrors update_qrelu_shifts() exactly: an edit in
// layer L can only change layer L's shift (shifts are pure functions of a
// layer's own parameters), and a shift change re-activates the whole layer
// from the stored accumulators — no connection walk. Rejected trials undo
// through a write log, so a reverted trial costs what it touched.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/datasets/dataset.hpp"

namespace pmlp::core {

/// Work counters of one RefineEngine (one refine_greedy call).
struct RefineEngineStats {
  long trials = 0;        ///< candidate edits evaluated
  long early_aborts = 0;  ///< trials rejected before a full dataset scan
};

/// Incremental trial evaluator bound to one net and one training set. The
/// net is edited in place: a kept trial leaves the edit (and the memoized
/// state) committed, a rejected trial is rolled back completely. Layer
/// QReLU shifts are kept in sync with the current parameters at all times
/// (the invariant the naive loop re-establishes by calling
/// update_qrelu_shifts() before every accuracy()).
class RefineEngine {
 public:
  /// Builds the memoized state. `accuracy_before()` reflects the shifts the
  /// net arrived with (what the naive loop's first accuracy() call sees);
  /// the engine then syncs every shift to the current parameters, as the
  /// naive loop's first edit would.
  RefineEngine(ApproxMlp& net, const datasets::QuantizedDataset& train);

  RefineEngine(const RefineEngine&) = delete;
  RefineEngine& operator=(const RefineEngine&) = delete;

  /// Training accuracy of the incoming net, pre shift-sync.
  [[nodiscard]] double accuracy_before() const { return accuracy_before_; }
  /// Training accuracy of the current committed state.
  [[nodiscard]] double accuracy() const;

  /// Try clearing bit `bit` of conn(o, i) in layer `l` (the bit must be set
  /// and within the layer's input width). Keeps the edit and returns the new
  /// accuracy when it passes the naive accept test `acc + 1e-12 >= min_acc`;
  /// reverts the edit (net, shift and memo state) and returns nullopt
  /// otherwise.
  std::optional<double> try_clear_mask_bit(int l, int o, int i, int bit,
                                           double min_acc);
  /// Same protocol for replacing neuron (l, o)'s bias with `candidate`
  /// (must differ from the current bias).
  std::optional<double> try_set_bias(int l, int o, std::int64_t candidate,
                                     double min_acc);

  [[nodiscard]] const RefineEngineStats& stats() const { return stats_; }

 private:
  /// One memoized (acc, act) value overwritten during a trial.
  struct SlotUndo {
    std::int64_t* slot;
    std::int64_t old_value;
  };
  /// One sample whose prediction/correctness changed during a trial.
  struct PredUndo {
    std::uint32_t sample;
    std::int32_t pred;
    std::uint8_t correct;
  };

  void rebuild();
  /// Smallest correct-count passing `acc + 1e-12 >= min_acc`; n_samples + 1
  /// when even a perfect scan cannot pass.
  [[nodiscard]] long min_correct_for(double min_acc) const;
  [[nodiscard]] std::int64_t activate(const ApproxLayer& layer, int shift,
                                      std::int64_t acc) const;
  [[nodiscard]] std::int64_t* acc_ptr(int l, std::size_t s) {
    return acc_[static_cast<std::size_t>(l)].data() +
           s * static_cast<std::size_t>(width_[static_cast<std::size_t>(l)]);
  }
  [[nodiscard]] std::int64_t* act_ptr(int l, std::size_t s) {
    return act_[static_cast<std::size_t>(l)].data() +
           s * static_cast<std::size_t>(width_[static_cast<std::size_t>(l)]);
  }
  /// Layer `l` input activations for sample `s` (dataset codes for layer 0).
  [[nodiscard]] const std::int64_t* in_ptr(int l, std::size_t s) {
    return l == 0 ? in0_.data() + s * static_cast<std::size_t>(n_features_)
                  : act_ptr(l - 1, s);
  }

  /// Shared trial scan. The parameter edit (and the layer-L shift) must
  /// already be applied; `acc_delta(s)` is the resulting accumulator delta
  /// of neuron (l, o) for sample s. Commits and returns the accuracy on
  /// pass; restores the memoized state (NOT the parameter edit — the caller
  /// owns that) and returns nullopt on fail.
  template <typename DeltaFn>
  std::optional<double> trial(int l, int o, bool shift_changed,
                              DeltaFn&& acc_delta, double min_acc);
  void undo_writes();

  ApproxMlp& net_;
  const datasets::QuantizedDataset& train_;
  std::size_t n_samples_ = 0;
  int n_features_ = 0;
  int n_layers_ = 0;
  std::int64_t act_max_ = 0;  ///< QReLU clamp, (1 << act_bits) - 1
  double accuracy_before_ = 0.0;

  std::vector<std::int64_t> in0_;              ///< widened input codes, S x F
  std::vector<int> width_;                     ///< n_out per layer
  std::vector<std::vector<std::int64_t>> acc_; ///< per layer: S x n_out
  std::vector<std::vector<std::int64_t>> act_; ///< per layer: S x n_out
  std::vector<int> shift_;                     ///< mirror of qrelu_shift
  std::vector<std::int32_t> pred_;             ///< per sample
  std::vector<std::uint8_t> correct_;          ///< per sample
  long n_correct_ = 0;

  // Trial scratch (reused; sized by the widest layer).
  std::vector<std::int32_t> changed_idx_, next_changed_idx_;
  std::vector<std::int64_t> changed_old_, next_changed_old_;
  std::vector<SlotUndo> undo_slots_;
  std::vector<PredUndo> undo_pred_;

  EvalWorkspace block_ws_;  ///< sample-block planes for the batched rebuild

  RefineEngineStats stats_;
};

}  // namespace pmlp::core
