// Chromosome encoding of an approximate MLP (paper Fig. 3): genes are
// grouped per weight (mask m, sign s, exponent k), then per neuron (with the
// bias b appended), then per layer. Every gene is an integer with bounds
// derived from the bit configuration, so the codec fully defines the GA
// search space.
#pragma once

#include <span>
#include <vector>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::core {

/// What a gene encodes (Fig. 3 layout).
enum class GeneKind { kMask, kSign, kExponent, kBias };

class ChromosomeCodec {
 public:
  ChromosomeCodec(const mlp::Topology& topology, const BitConfig& bits);

  [[nodiscard]] int n_genes() const { return n_genes_; }
  [[nodiscard]] nsga2::GeneBounds bounds(int gene) const {
    return bounds_[static_cast<std::size_t>(gene)];
  }
  [[nodiscard]] GeneKind kind(int gene) const {
    return kinds_[static_cast<std::size_t>(gene)];
  }
  [[nodiscard]] const mlp::Topology& topology() const { return topology_; }
  [[nodiscard]] const BitConfig& bits() const { return bits_; }

  /// Model -> genes. Exact inverse of decode for in-bounds models.
  [[nodiscard]] std::vector<int> encode(const ApproxMlp& net) const;
  /// Genes -> model (with QReLU shifts recomputed). Out-of-bounds gene
  /// values are clamped, making any integer vector decodable.
  [[nodiscard]] ApproxMlp decode(std::span<const int> genes) const;

 private:
  mlp::Topology topology_;
  BitConfig bits_;
  int n_genes_ = 0;
  std::vector<nsga2::GeneBounds> bounds_;
  std::vector<GeneKind> kinds_;
};

}  // namespace pmlp::core
