// Crash-safe distributed campaign workers: N independent `pmlp campaign
// --worker` processes drain ONE checkpoint tree cooperatively, with no
// coordinator, no IPC and no shared state beyond the tree itself.
//
// Protocol. The campaign coordinator (`pmlp campaign --checkpoint DIR`)
// writes a manifest (`campaign.txt`) describing the dataset x seed grid;
// any number of workers then join with `--worker --checkpoint DIR`. A
// worker claims one flow at a time through a per-flow lease file
// (`claim.lock`, created with O_CREAT|O_EXCL — the filesystem arbitrates,
// exactly one creator wins), runs ONE pipeline stage to its atomic
// checkpoint commit, releases the lease and moves on round-robin. Stage
// granularity keeps the grid balanced: a slow flow never pins a worker for
// its whole pipeline, and a killed worker forfeits at most one stage of
// work.
//
// Liveness. While a worker holds a lease its heartbeat thread refreshes a
// monotonic counter in `beat.txt` (tmp+rename, per-worker temp name).
// Other workers judge a lease stale when the (claim, beat) pair has not
// changed for `lease_timeout_s` on THEIR OWN monotonic clock — no cross-
// host clock comparison — or immediately when the claim names a pid on
// their host that no longer exists. A stale lease is stolen by renaming
// `claim.lock` aside (atomic: exactly one thief wins the rename) and
// re-claiming fresh.
//
// Safety does NOT depend on mutual exclusion. Every stage is a
// bit-identical recompute committed via fsync+rename (serialize.hpp), so
// the worst a lease race can cause — two workers running the same stage —
// wastes one stage of CPU and commits the same bytes twice. Leases are a
// throughput optimization; correctness comes from idempotence + atomic
// commits. The one guarded window is lease fencing: a worker whose claim
// disappears (stolen after a heartbeat stall) stops beating and never
// writes terminal markers, so it cannot clobber the new owner's
// bookkeeping.
//
// Failure handling. A flow whose stage throws gets its failure count
// bumped in `failures.txt`; after `max_failures` consecutive failed claims
// the flow is marked terminally failed (`failed.txt`) and the rest of the
// grid keeps draining — one poisoned checkpoint never wedges the campaign.
// A completed flow is marked with `done.txt`. `pmlp campaign status`
// renders all of this from the tree alone.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pmlp/core/campaign.hpp"

namespace pmlp::core {

// ---------------------------------------------------------------- manifest

/// One row of the campaign grid as persisted in the tree manifest.
struct CampaignManifestFlow {
  std::string name;     ///< checkpoint subdirectory ("Cardio_s2")
  std::string dataset;  ///< Table I dataset name
  std::uint64_t seed = 1;
};

/// The dataset x seed grid plus the shared GA budget, persisted as
/// `campaign.txt` at the tree root so workers (and `campaign status`) can
/// reconstruct every flow spec from the tree alone.
struct CampaignManifest {
  int population = 80;
  int generations = 200;
  /// ga.checkpoint_every for workers (generation-level GA checkpointing;
  /// 0 = off). Outside the config fingerprint, so it may differ between
  /// runs over the same tree.
  int ga_checkpoint = 0;
  std::vector<CampaignManifestFlow> flows;
};

/// Commit `campaign.txt` under `root` (crash-safe, checksum-footed).
void save_campaign_manifest(const CampaignManifest& m,
                            const std::string& root);

/// Load `root`/campaign.txt. Throws std::runtime_error when missing or
/// unreadable, std::invalid_argument when malformed/corrupt.
[[nodiscard]] CampaignManifest load_campaign_manifest(const std::string& root);

// ------------------------------------------------------------------ leases
// Low-level lease primitives, exposed for the failure-matrix tests (which
// forge foreign claims and race real workers against them).

namespace lease {

/// Parsed claim.lock contents. `raw` is the exact file text — staleness is
/// judged on raw (claim, beat) snapshots, never on parsed fields.
struct ClaimInfo {
  std::string worker;
  std::string host;
  long pid = -1;
  std::string raw;
};

/// Atomically create `claim.lock` in `flow_dir` (O_CREAT|O_EXCL — the
/// filesystem picks exactly one winner among racing workers). The file is
/// create-once: it is NEVER rewritten, so a fresh claim can never be
/// silently overwritten by a stalled previous owner. Returns false when
/// the lock already exists. Throws std::runtime_error on real I/O errors.
bool try_claim(const std::string& flow_dir, const std::string& worker_id);

/// Read and parse claim.lock; nullopt when absent (racing a release) or
/// unparsable mid-steal.
[[nodiscard]] std::optional<ClaimInfo> read_claim(const std::string& flow_dir);

/// Publish heartbeat `count` to beat.txt (tmp+rename; the temp name embeds
/// the worker id so concurrent writers never collide on the temp file).
void write_beat(const std::string& flow_dir, const std::string& worker_id,
                long count);

/// Raw beat.txt text ("" when absent) — the second half of the staleness
/// snapshot.
[[nodiscard]] std::string read_beat_raw(const std::string& flow_dir);

/// True when the claim names a pid on THIS host that no longer exists —
/// the same-host fast path that reclaims a SIGKILLed worker's lease
/// without waiting out the timeout.
[[nodiscard]] bool claim_owner_dead_locally(const ClaimInfo& claim);

/// Steal a stale lease: rename claim.lock to a quarantine name derived
/// from `thief_id`. The rename is atomic — among racing thieves exactly
/// one succeeds; the rest observe ENOENT and return false. The winner
/// still has to try_claim() afterwards (and may lose THAT race too).
bool steal_claim(const std::string& flow_dir, const std::string& thief_id);

/// Release our lease: remove beat.txt and claim.lock iff claim.lock still
/// names `worker_id` (it may have been stolen while we stalled).
void release_claim(const std::string& flow_dir, const std::string& worker_id);

}  // namespace lease

// ------------------------------------------------------------------ worker

struct WorkerConfig {
  std::string checkpoint_root;
  /// Unique worker identity; "" derives "<host>-<pid>-<random hex>".
  std::string worker_id;
  /// Lease with an unchanged (claim, beat) snapshot for this long is
  /// stale and may be stolen.
  double lease_timeout_s = 10.0;
  /// Heartbeat refresh period; must be well under lease_timeout_s.
  double heartbeat_s = 1.0;
  /// Consecutive failed claims before a flow is marked terminally failed.
  int max_failures = 3;
  /// Jittered exponential backoff between sweeps that found no work
  /// (every flow claimed by a live owner).
  double backoff_initial_s = 0.05;
  double backoff_max_s = 1.0;
};

/// What one worker process did (its exit summary).
struct WorkerReport {
  std::string worker_id;
  int claims = 0;           ///< leases acquired
  int claim_conflicts = 0;  ///< claim attempts that lost to another worker
  int leases_stolen = 0;    ///< stale leases reclaimed
  int stages_computed = 0;  ///< stages actually executed (checkpointed)
  int stages_reloaded = 0;  ///< stages reloaded from the tree
  int flows_completed = 0;  ///< done.txt markers this worker wrote
  int flows_failed = 0;     ///< failed.txt markers this worker wrote
  int stage_failures = 0;   ///< stage throws recorded to failures.txt
  double wall_seconds = 0.0;
};

/// One cooperating drain process over a campaign checkpoint tree. Specs
/// come from the manifest (the CLI reconstructs them, datasets loaded);
/// flow order must match the manifest. run() returns when every flow is
/// terminal (done/failed) or request_stop() was called.
class CampaignWorker {
 public:
  CampaignWorker(std::vector<CampaignFlowSpec> specs, WorkerConfig cfg);
  ~CampaignWorker();

  CampaignWorker(const CampaignWorker&) = delete;
  CampaignWorker& operator=(const CampaignWorker&) = delete;

  /// Progress hook: one completed (or reloaded) stage of a claimed flow.
  using ProgressFn =
      std::function<void(const std::string& flow, const StageReport&)>;
  CampaignWorker& set_progress(ProgressFn cb);

  /// Finish the current stage, release the lease and return from run().
  /// Safe from a signal handler (one atomic store).
  void request_stop();

  [[nodiscard]] const std::string& worker_id() const;

  /// Drain the tree. Throws std::runtime_error on setup failures (bad
  /// root); per-flow stage failures are contained (failures.txt).
  [[nodiscard]] WorkerReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ------------------------------------------------------------------ status

/// Observed state of one flow, read from the tree alone (no processes
/// consulted).
struct FlowStatusRow {
  std::string name;
  int stages_done = 0;    ///< checkpointed stage artifacts present
  int stages_total = 0;   ///< checkpointed stages expected (6)
  std::string next_stage; ///< first missing stage; "-" when all present
  bool done = false;      ///< done.txt present
  bool failed = false;    ///< failed.txt present (terminal)
  std::string owner;      ///< claim.lock worker id; "" unclaimed
  /// Seconds since the newer of claim.lock/beat.txt changed (file mtime);
  /// < 0 when unclaimed.
  double heartbeat_age_s = -1.0;
  int failures = 0;       ///< failures.txt counter
  std::string error;      ///< last recorded failure message
};

struct CampaignStatusReport {
  CampaignManifest manifest;
  std::vector<FlowStatusRow> flows;  ///< manifest order
  int done = 0;
  int failed = 0;
  int claimed = 0;
};

/// Render grid progress from the checkpoint tree alone (manifest + per-flow
/// artifacts/markers/leases). Throws like load_campaign_manifest.
[[nodiscard]] CampaignStatusReport read_campaign_status(
    const std::string& root);

void write_campaign_status_table(const CampaignStatusReport& s,
                                 std::ostream& os);
void write_campaign_status_json(const CampaignStatusReport& s,
                                std::ostream& os);

}  // namespace pmlp::core
