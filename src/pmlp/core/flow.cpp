#include "pmlp/core/flow.hpp"

#include <algorithm>

#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/opt.hpp"

namespace pmlp::core {

BaselineArtifacts build_baseline(const datasets::Dataset& data,
                                 const mlp::Topology& topology,
                                 const FlowConfig& cfg) {
  BaselineArtifacts out;
  auto split =
      datasets::stratified_split(data, cfg.train_fraction, cfg.split_seed);
  out.train = datasets::quantize_inputs(split.train, cfg.trainer.bits.input_bits);
  out.test = datasets::quantize_inputs(split.test, cfg.trainer.bits.input_bits);
  out.train_raw = std::move(split.train);
  out.test_raw = std::move(split.test);

  out.float_net = mlp::train_float_mlp(topology, out.train_raw, cfg.backprop);
  out.baseline = mlp::QuantMlp::from_float(
      out.float_net, cfg.trainer.bits.weight_bits, cfg.trainer.bits.input_bits,
      cfg.trainer.bits.act_bits);
  out.baseline_train_accuracy = mlp::accuracy(out.baseline, out.train);
  out.baseline_test_accuracy = mlp::accuracy(out.baseline, out.test);

  const auto circuit = netlist::build_bespoke_mlp(
      netlist::to_bespoke_desc(out.baseline, data.name + "_exact"));
  out.baseline_cost =
      netlist::optimize(circuit.nl).cost(hwmodel::CellLibrary::egfet_1v());
  return out;
}

FlowResult run_flow(const datasets::Dataset& data,
                    const mlp::Topology& topology, const FlowConfig& cfg) {
  FlowResult result;
  result.baseline = build_baseline(data, topology, cfg);

  result.training = train_ga_axc(topology, result.baseline.train,
                                 result.baseline.baseline, cfg.trainer);

  if (cfg.refine) {
    for (auto& point : result.training.estimated_pareto) {
      RefineConfig rcfg;
      rcfg.accuracy_floor =
          std::max(point.train_accuracy - cfg.refine_max_point_loss,
                   result.baseline.baseline_train_accuracy -
                       cfg.trainer.problem.max_accuracy_loss);
      (void)refine_greedy(point.model, result.baseline.train, rcfg);
      point.train_accuracy = accuracy(point.model, result.baseline.train);
      point.fa_area = point.model.fa_area();
    }
  }

  result.evaluated = evaluate_hardware(result.training.estimated_pareto,
                                       result.baseline.test,
                                       hwmodel::CellLibrary::egfet_1v(),
                                       cfg.hardware);
  result.front = true_pareto(result.evaluated);
  result.best = best_within_loss(result.evaluated,
                                 result.baseline.baseline_test_accuracy,
                                 cfg.report_max_loss);
  if (result.best) {
    result.area_reduction =
        result.baseline.baseline_cost.area_mm2 / result.best->cost.area_mm2;
    result.power_reduction =
        result.baseline.baseline_cost.power_uw / result.best->cost.power_uw;
  }
  return result;
}

}  // namespace pmlp::core
