#include "pmlp/core/flow.hpp"

#include <utility>

#include "pmlp/core/flow_engine.hpp"

namespace pmlp::core {

BaselineArtifacts build_baseline(const datasets::Dataset& data,
                                 const mlp::Topology& topology,
                                 const FlowConfig& cfg) {
  FlowEngine engine(data, topology, cfg);
  return std::move(engine).baseline_artifacts();
}

FlowResult run_flow(const datasets::Dataset& data,
                    const mlp::Topology& topology, const FlowConfig& cfg) {
  FlowEngine engine(data, topology, cfg);
  return std::move(engine).run();
}

}  // namespace pmlp::core
