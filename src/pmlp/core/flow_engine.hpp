// Staged FlowEngine: the Fig. 2 pipeline decomposed into named stages
// (split/quantize -> backprop -> baseline pricing -> GA-AxC -> refine ->
// hardware analysis -> selection) with typed input/output artifacts,
// per-stage wall-time counters, an optional progress callback, and
// checkpoint/resume through the versioned artifact formats of
// serialize.hpp.
//
// Checkpointing: point the engine at a directory and every completed stage
// persists its artifact; a later engine constructed with the same dataset
// and config resumes from whatever is on disk and reproduces the original
// FlowResult bit-identically (all artifacts round-trip exactly; doubles are
// stored as hexfloats). The directory holds:
//
//   meta.txt            dataset digest + config fingerprint guard
//   train_raw.ds        pmlp-dataset v1        (split stage)
//   test_raw.ds         pmlp-dataset v1
//   train.qds           pmlp-quant-dataset v1
//   test.qds            pmlp-quant-dataset v1
//   float_net.txt       pmlp-float-mlp v1      (backprop stage)
//   baseline.txt        pmlp-baseline v1       (baseline stage)
//   ga_front.txt        pmlp-training v1       (GA stage)
//   refined_front.txt   pmlp-training v1       (refine stage)
//   evaluated.txt       pmlp-evaluated v1      (hardware stage)
//   ga_state.txt        pmlp-ga-state v1       (in-progress GA scratch,
//                                              only with ga.checkpoint_every
//                                              > 0; deleted when ga_front
//                                              commits)
//
// The fingerprint covers everything that changes results; the bit-identical
// knobs (thread counts, eval-cache capacity, ga.checkpoint_every) are
// excluded, so a run may be resumed with a different parallelism setting.
// If a stage has to be recomputed (its artifact is missing), every
// downstream stage is also recomputed and its artifact overwritten, so a
// checkpoint directory is always a consistent set. The selection stage is
// derived (cheap) and never checkpointed.
//
// Crash safety: every artifact commits via fsync'd temp file + rename with
// a trailing crc32 checksum footer (serialize.hpp), so a SIGKILL at any
// instant leaves either the old or the new complete artifact. On reload a
// corrupt artifact (torn write from an unclean filesystem, bit rot) is
// detected by its footer, quarantined to `<name>.corrupt-N` and the stage
// recomputed — only meta.txt damage is fatal, because it guards against
// resuming onto the wrong dataset/config.
//
// Benches that already hold a trained baseline can inject artifacts with
// the provide_*() calls; injected stages are reported as reused and are not
// written to the checkpoint.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "pmlp/core/flow.hpp"

namespace pmlp::core {

// The stage artifact types (SplitArtifacts, BaselinePricing) live in
// flow.hpp next to BaselineArtifacts; their serializers in serialize.hpp.

/// Called right after each stage completes (or reloads from checkpoint).
using StageCallback = std::function<void(const StageReport&)>;

class FlowEngine {
 public:
  /// `data` must be normalized ([0,1] features). It may be empty when the
  /// split artifacts are injected with provide_split().
  FlowEngine(datasets::Dataset data, mlp::Topology topology, FlowConfig cfg);

  /// Enable checkpointing under `dir` (created on first use). Throws
  /// std::runtime_error from the next stage run if the directory holds a
  /// checkpoint for a different dataset or config.
  FlowEngine& set_checkpoint_dir(std::string dir);
  FlowEngine& set_progress(StageCallback cb);

  // Artifact injection (benches reuse one trained baseline across many GA
  // runs). Must be called before the corresponding stage executes.
  FlowEngine& provide_split(SplitArtifacts split);
  FlowEngine& provide_float_net(mlp::FloatMlp net);
  FlowEngine& provide_baseline(BaselinePricing pricing);
  FlowEngine& provide_training(TrainingResult training);

  // Lazy stage access: each accessor runs (or checkpoint-loads) the
  // pipeline up to the stage producing the artifact.
  const SplitArtifacts& split();
  const mlp::FloatMlp& float_net();
  const BaselinePricing& baseline();
  /// Assembled copy of the first three stages' outputs (compat with the
  /// original build_baseline()). The rvalue overload moves the artifacts
  /// out instead of copying (for throwaway engines); the engine must not
  /// be used afterwards.
  [[nodiscard]] BaselineArtifacts baseline_artifacts() &;
  [[nodiscard]] BaselineArtifacts baseline_artifacts() &&;

  /// Run every remaining stage and assemble the FlowResult (including the
  /// per-stage reports). The engine keeps its artifacts, so repeated calls
  /// return the same result without recomputing. The rvalue overload moves
  /// the artifacts into the result instead of deep-copying them (use
  /// `std::move(engine).run()` when the engine is done after).
  FlowResult run() &;
  FlowResult run() &&;

  /// Run (or checkpoint-load) exactly one stage: the earliest one whose
  /// artifact is not yet available. Returns the stage that ran, or nullopt
  /// once the pipeline is complete (run() is then a cheap assembly). This is
  /// the scheduling unit of the campaign runner (campaign.hpp), which
  /// interleaves many flows' stages over one shared worker pool.
  std::optional<FlowStage> advance();

  /// Reports of every stage executed so far, in execution order.
  [[nodiscard]] const std::vector<StageReport>& stages() const {
    return stages_;
  }

  [[nodiscard]] const mlp::Topology& topology() const { return topology_; }
  [[nodiscard]] const FlowConfig& config() const { return config_; }

 private:
  struct Selection {
    std::vector<HwEvaluatedPoint> front;
    std::optional<HwEvaluatedPoint> best;
    double area_reduction = 0.0;
    double power_reduction = 0.0;
  };

  void ensure_checkpoint();
  [[nodiscard]] BaselineArtifacts assemble_baseline(bool move_out);
  [[nodiscard]] FlowResult assemble(bool move_out);
  [[nodiscard]] std::string path(const char* file) const;
  [[nodiscard]] std::uint64_t config_fingerprint() const;
  void report(FlowStage stage, double wall_seconds, bool reused, long items);

  void stage_split();
  void stage_backprop();
  void stage_baseline();
  void stage_ga();
  void stage_refine();
  void stage_hardware();
  void stage_select();

  datasets::Dataset data_;
  mlp::Topology topology_;
  FlowConfig config_;
  std::string checkpoint_dir_;  ///< empty = checkpointing off
  StageCallback progress_;

  bool checkpoint_ready_ = false;
  /// Once any stage recomputes, downstream artifacts on disk are stale:
  /// stop loading and overwrite them instead.
  bool upstream_recomputed_ = false;

  std::optional<SplitArtifacts> split_;
  std::optional<mlp::FloatMlp> float_net_;
  /// TrainEngine report of a backprop stage executed in this process
  /// (zeros when the stage was reloaded or injected — not checkpointed).
  mlp::BackpropReport backprop_report_;
  std::optional<BaselinePricing> pricing_;
  std::optional<TrainingResult> training_;
  bool refined_ = false;
  /// Counters of a refine stage executed in this process (zeros when the
  /// stage was reloaded from a checkpoint or disabled).
  RefineFrontReport refine_report_;
  std::optional<std::vector<HwEvaluatedPoint>> evaluated_;
  std::optional<Selection> selection_;

  std::vector<StageReport> stages_;
};

/// Machine-readable FlowResult report (stages, baseline, counters, every
/// evaluated/front point, the Table II pick): one JSON object.
void write_flow_report_json(const FlowResult& result,
                            const std::string& dataset_name,
                            const mlp::Topology& topology, std::ostream& os);

/// Minimal JSON string escaping, quotes included (shared by the flow and
/// campaign report writers).
void json_escape(const std::string& s, std::ostream& os);

}  // namespace pmlp::core
