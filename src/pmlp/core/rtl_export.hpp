// Verified RTL export: the product surface that turns a trained model (or a
// whole saved Pareto front) into simulation-ready hardware artifacts with a
// proven chain of equivalences. For every exported point the pipeline
//
//   1. builds the bespoke gate-level circuit and optimizes it IN PLACE —
//      optimize(BespokeCircuit) carries the I/O bus metadata across the
//      rewrite, so the optimized netlist (the one that ships) is the one
//      that gets simulated and checked; there is no second "golden" build,
//   2. asserts, over recorded dataset vectors plus LFSR random stimulus,
//      that the C++ oracle (CompiledNet::predict_batch), the gate-level
//      simulator (BespokeCircuit::predict) and the in-process evaluation of
//      the emitted Verilog (EmittedModule::eval, gate-by-gate cross_check)
//      produce bit-identical classes — any divergence throws,
//   3. writes <name>.v (DUT), <name>_tb.v (self-checking testbench over the
//      same stimulus) and a manifest.tsv row,
//   4. (verify_rtl only) compiles and runs each testbench with a discovered
//      iverilog/verilator and records PASS/FAIL. No simulator installed is
//      a graceful skip — the in-process three-way check has already run.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmlp/core/approx_mlp.hpp"

namespace pmlp::core {

struct RtlExportOptions {
  int max_recorded_vectors = 64;  ///< cap on recorded dataset stimulus
  int random_vectors = 64;        ///< LFSR vectors appended per point
  std::uint32_t lfsr_seed = 1;    ///< stimulus LFSR seed (non-zero)
  bool optimize = true;           ///< run the netlist optimizer on the DUT
};

/// One design to export: a name (becomes the module/file name), the model,
/// and optional recorded stimulus (row-major quantized codes; may be empty
/// — random stimulus still applies).
struct RtlPointSpec {
  std::string name;
  ApproxMlp model;
  std::vector<std::uint8_t> recorded;
};

enum class RtlSimOutcome {
  kSkipped,  ///< no simulator available (or export-only)
  kPass,     ///< testbench printed TESTBENCH PASS
  kFail,     ///< testbench ran and reported mismatches
  kError,    ///< compile/run failed before a summary was printed
};

[[nodiscard]] const char* rtl_sim_outcome_name(RtlSimOutcome o);

struct RtlPointReport {
  std::string name;
  std::string dut_file;  ///< emitted DUT path
  std::string tb_file;   ///< emitted testbench path
  std::size_t n_recorded = 0;
  std::size_t n_random = 0;
  long gates = 0;          ///< cells in the exported (optimized) netlist
  long gates_removed = 0;  ///< cells removed by the optimizer
  RtlSimOutcome sim = RtlSimOutcome::kSkipped;
  int sim_errors = 0;      ///< mismatch count from a FAIL summary
  std::string sim_log;     ///< simulator output (empty when skipped)

  [[nodiscard]] std::size_t n_vectors() const {
    return n_recorded + n_random;
  }
};

struct RtlExportReport {
  std::vector<RtlPointReport> points;
  std::string manifest_file;  ///< path of the written manifest.tsv
  std::string simulator;      ///< tool name, empty when none was found

  /// True when every point's in-process checks passed (they throw
  /// otherwise, so reaching a report implies them) AND simulation either
  /// passed everywhere or was skipped. With `require_sim`, a skip counts
  /// as failure.
  [[nodiscard]] bool all_passed(bool require_sim) const;
};

/// Deterministic LFSR stimulus: `n_vectors` rows of `n_features` codes,
/// each code `input_bits` wide, drawn from one maximal-length Galois LFSR
/// (bitops::Lfsr). Same seed -> same stimulus, so the emitted testbench and
/// the oracle checks always see identical vectors.
[[nodiscard]] std::vector<std::uint8_t> lfsr_stimulus(std::size_t n_vectors,
                                                      int n_features,
                                                      int input_bits,
                                                      std::uint32_t seed);

/// Export every point: build + optimize + three-way cross-check + write
/// DUT/testbench/manifest under `outdir` (created if missing). Throws
/// std::runtime_error on any cross-check divergence or I/O failure; sim
/// outcomes stay kSkipped.
RtlExportReport export_rtl(std::span<const RtlPointSpec> points,
                           const std::string& outdir,
                           const RtlExportOptions& opts = {});

/// export_rtl, then compile+run every testbench with a discovered
/// simulator. Without one, all sim outcomes stay kSkipped (the report's
/// `simulator` is empty).
RtlExportReport verify_rtl(std::span<const RtlPointSpec> points,
                           const std::string& outdir,
                           const RtlExportOptions& opts = {});

}  // namespace pmlp::core
