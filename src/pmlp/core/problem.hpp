// The paper's multi-objective training problem (Eq. 3):
//   min_theta [ 1 - Accuracy(theta, D),  Area(theta) ]
// with Area the FA-count proxy (Eq. 2) and a constraint-dominated bound of
// 10% acceptable accuracy loss versus the exact baseline (§IV-A). The
// initial population is doped with ~10% nearly non-approximate solutions
// derived from the quantized baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::core {

struct ProblemConfig {
  double max_accuracy_loss = 0.10;  ///< training-time bound (paper: 10%)
  double doping_fraction = 0.10;    ///< share of seeded individuals
  std::uint64_t doping_seed = 7;    ///< jitter seed for seed diversity
  /// Gene-kind-aware mutation (bit flips on masks, creep on exponents and
  /// biases); disable to fall back to the engine's generic reset/creep —
  /// ablated in bench_ablation.
  bool domain_mutation = true;
  /// Classic structured (connection-level) unstructured pruning instead of
  /// the paper's fine-grained bit-level masks: every non-zero mask is
  /// coarsened to all-ones before evaluation, so a connection is either
  /// fully present or fully removed. Reproduces the §III-B observation
  /// that coarse pruning trades accuracy much worse than bit-level masks.
  bool coarse_pruning = false;
  /// Genome memo cache capacity (entries) of the evaluation engine:
  /// duplicate individuals that NSGA-II elitism/crossover produce every
  /// generation short-circuit to their cached objectives. 0 disables.
  /// Cached and uncached runs are bit-identical, because evaluation is a
  /// pure function of the genes. Each entry stores a full gene vector, so
  /// the default (many generations of a paper-sized population) stays in
  /// the tens of MB even on the largest Table I topology.
  int eval_cache_capacity = 4096;
};

class HwAwareProblem final : public nsga2::Problem {
 public:
  /// `train` must outlive the problem. `baseline` (optional) provides both
  /// the doped seeds and the accuracy reference for the loss constraint;
  /// without it the constraint is disabled and seeding is empty.
  HwAwareProblem(ChromosomeCodec codec, const datasets::QuantizedDataset& train,
                 std::optional<mlp::QuantMlp> baseline, ProblemConfig cfg);

  [[nodiscard]] int n_genes() const override { return codec_.n_genes(); }
  [[nodiscard]] nsga2::GeneBounds bounds(int gene) const override {
    return codec_.bounds(gene);
  }
  /// Reference path: compiles the genome and evaluates through a private
  /// workspace. Prefer the workspace overload on hot loops.
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override;
  /// Hot path: memo-cache lookup, else decode -> CompiledNet -> batched
  /// allocation-free inference through the worker's EvalWorkspace.
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes,
                                    Workspace* ws) const override;
  [[nodiscard]] std::unique_ptr<Workspace> make_workspace() const override;
  [[nodiscard]] std::vector<std::vector<int>> seed_individuals(
      int max) const override;

  /// Domain-aware mutation (the paper's "random alterations to neuron
  /// weights" specialized per gene kind): masks flip single bits (fine-
  /// grained pruning steps), signs flip, exponents creep by +/-1, biases
  /// creep geometrically — occasionally falling back to a uniform reset
  /// for global exploration.
  [[nodiscard]] std::optional<int> mutate_gene(
      int gene, int current, std::mt19937_64& rng) const override;

  [[nodiscard]] const ChromosomeCodec& codec() const { return codec_; }
  [[nodiscard]] double baseline_accuracy() const { return baseline_accuracy_; }
  /// Memo-cache hit/miss counters accumulated over this problem's lifetime.
  [[nodiscard]] EvalCacheStats cache_stats() const { return cache_.stats(); }

 private:
  ChromosomeCodec codec_;
  const datasets::QuantizedDataset& train_;
  std::optional<mlp::QuantMlp> baseline_;
  ProblemConfig cfg_;
  double baseline_accuracy_ = 0.0;
  mutable EvalCache cache_;
};

}  // namespace pmlp::core
