// A small fixed-size worker pool for the hot fitness-evaluation path.
// Workers are started once and reused across generations, replacing the
// seed's spawn-join-per-batch threading. Tasks start in FIFO submission
// order; parallel_for partitions an index range statically so that result
// placement (and therefore the whole NSGA-II run) is independent of thread
// scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace pmlp::core {

/// Resolve a user-facing thread-count knob: 0 means "auto" (all hardware
/// threads), anything else is clamped to >= 1.
[[nodiscard]] int resolve_n_threads(int requested);

class ThreadPool {
 public:
  /// Starts `n_threads` workers; 0 means hardware_concurrency(). A pool of
  /// size 1 still runs tasks on its single worker (submission order == start
  /// order), which the tests rely on.
  explicit ThreadPool(int n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; exceptions propagate through the returned future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Run fn(begin, end) over [0, n) split into size() contiguous chunks and
  /// block until done. The first exception thrown by any chunk is rethrown
  /// here. The calling thread only waits — chunks run on the workers.
  /// `min_per_chunk` is a small-n serial fallback threshold: the range is
  /// never split below that many items per chunk, and when that leaves a
  /// single chunk the call runs inline — pool dispatch is skipped entirely
  /// when the per-item work cannot amortize it. Results are identical for
  /// any threshold (chunking is static either way).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_per_chunk = 1);

  /// As above, but fn(chunk, begin, end) also receives the chunk index
  /// (in [0, size())), so a caller can hand each chunk its own scratch
  /// state. Chunk k always covers the same static subrange of [0, n) for a
  /// given pool size and threshold, preserving the determinism contract.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t min_per_chunk = 1);

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pmlp::core
