#include "pmlp/core/flow_engine.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pmlp/core/fault_injection.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/opt.hpp"

namespace pmlp::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaFile = "meta.txt";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Crash-safe artifact commit (serialize.hpp): checksum footer appended,
/// temp file + parent directory fsync'd before the rename — a SIGKILL or
/// power loss at any instant leaves either the old or the new artifact,
/// never a torn one. The fault-injection hook lets tests corrupt the
/// freshly committed file to exercise the quarantine path below.
void write_artifact(const std::string& path,
                    const std::function<void(std::ostream&)>& writer) {
  write_artifact_file(path, writer);
  FaultInjector::instance().maybe_corrupt_artifact(path);
}

/// Move a corrupt artifact aside as `<path>.corrupt-N` (kept for post-mortem,
/// never reloaded: loaders match exact names) so the stage can recompute.
void quarantine_artifact(const std::string& path) {
  std::error_code ec;
  for (int n = 0; n < 1000; ++n) {
    const std::string dst = path + ".corrupt-" + std::to_string(n);
    if (fs::exists(dst, ec)) continue;
    fs::rename(path, dst, ec);
    if (!ec) return;
  }
  fs::remove(path, ec);  // pathological: give up on preserving it
}

/// Load a checkpoint artifact with checksum verification. Corruption —
/// a failed footer check or a parse error — is NOT fatal: the damaged file
/// is quarantined and the caller recomputes the stage (every stage is a
/// bit-identical recompute, so dropping an artifact only costs time).
/// I/O errors (unreadable file) still throw std::runtime_error.
bool load_artifact(const std::string& path,
                   const std::function<void(std::istream&)>& parse) {
  try {
    std::istringstream is(read_artifact_file(path));
    parse(is);
    return true;
  } catch (const std::invalid_argument&) {
    quarantine_artifact(path);
    return false;
  }
}

}  // namespace

const char* flow_stage_name(FlowStage stage) {
  switch (stage) {
    case FlowStage::kSplit: return "split";
    case FlowStage::kBackprop: return "backprop";
    case FlowStage::kBaseline: return "baseline";
    case FlowStage::kGa: return "ga";
    case FlowStage::kRefine: return "refine";
    case FlowStage::kHardware: return "hardware";
    case FlowStage::kSelect: return "select";
  }
  return "?";
}

const char* flow_stage_artifact(FlowStage stage) {
  switch (stage) {
    case FlowStage::kSplit: return "test.qds";  // last of the four committed
    case FlowStage::kBackprop: return "float_net.txt";
    case FlowStage::kBaseline: return "baseline.txt";
    case FlowStage::kGa: return "ga_front.txt";
    case FlowStage::kRefine: return "refined_front.txt";
    case FlowStage::kHardware: return "evaluated.txt";
    case FlowStage::kSelect: return nullptr;  // derived, never checkpointed
  }
  return nullptr;
}

FlowEngine::FlowEngine(datasets::Dataset data, mlp::Topology topology,
                       FlowConfig cfg)
    : data_(std::move(data)),
      topology_(std::move(topology)),
      config_(std::move(cfg)) {}

FlowEngine& FlowEngine::set_checkpoint_dir(std::string dir) {
  checkpoint_dir_ = std::move(dir);
  checkpoint_ready_ = false;
  return *this;
}

FlowEngine& FlowEngine::set_progress(StageCallback cb) {
  progress_ = std::move(cb);
  return *this;
}

FlowEngine& FlowEngine::provide_split(SplitArtifacts split) {
  split_ = std::move(split);
  report(FlowStage::kSplit, 0.0, /*reused=*/true,
         static_cast<long>(split_->train.size() + split_->test.size()));
  return *this;
}

FlowEngine& FlowEngine::provide_float_net(mlp::FloatMlp net) {
  float_net_ = std::move(net);
  report(FlowStage::kBackprop, 0.0, /*reused=*/true, 0);
  return *this;
}

FlowEngine& FlowEngine::provide_baseline(BaselinePricing pricing) {
  pricing_ = std::move(pricing);
  report(FlowStage::kBaseline, 0.0, /*reused=*/true,
         pricing_->cost.cell_count);
  return *this;
}

FlowEngine& FlowEngine::provide_training(TrainingResult training) {
  training_ = std::move(training);
  report(FlowStage::kGa, 0.0, /*reused=*/true, training_->evaluations);
  return *this;
}

std::string FlowEngine::path(const char* file) const {
  return (fs::path(checkpoint_dir_) / file).string();
}

std::uint64_t FlowEngine::config_fingerprint() const {
  // Everything that changes results. The bit-identical knobs —
  // trainer.n_threads / ga.n_threads / hardware.n_threads and
  // problem.eval_cache_capacity — are deliberately excluded so a
  // checkpoint can be resumed with different parallelism.
  Fnv1a h;
  h.u64(topology_.layers.size());
  for (int n : topology_.layers) h.i64(n);
  const FlowConfig& c = config_;
  h.f64(c.train_fraction);
  h.u64(c.split_seed);
  const auto& bp = c.backprop;
  h.i64(bp.epochs);
  h.i64(bp.batch_size);
  h.f64(bp.learning_rate);
  h.f64(bp.momentum);
  h.f64(bp.lr_decay);
  h.f64(bp.l2);
  h.f64(bp.relu_leak);
  h.i64(bp.restarts);
  h.u64(bp.seed);
  const auto& b = c.trainer.bits;
  h.i64(b.weight_bits);
  h.i64(b.input_bits);
  h.i64(b.act_bits);
  h.i64(b.bias_bits);
  const auto& ga = c.trainer.ga;
  h.i64(ga.population);
  h.i64(ga.generations);
  h.f64(ga.crossover_prob);
  h.f64(ga.mutation_prob);
  h.f64(ga.per_gene_rate);
  h.f64(ga.creep_fraction);
  h.i64(ga.creep_step);
  h.i64(static_cast<int>(ga.crossover));
  h.u64(ga.seed);
  const auto& p = c.trainer.problem;
  h.f64(p.max_accuracy_loss);
  h.f64(p.doping_fraction);
  h.u64(p.doping_seed);
  h.i64(p.domain_mutation ? 1 : 0);
  h.i64(p.coarse_pruning ? 1 : 0);
  h.i64(c.refine ? 1 : 0);
  h.f64(c.refine_max_point_loss);
  h.f64(c.report_max_loss);
  h.i64(c.hardware.equivalence_samples);
  return h.state;
}

void FlowEngine::ensure_checkpoint() {
  if (checkpoint_dir_.empty() || checkpoint_ready_) return;
  fs::create_directories(checkpoint_dir_);
  const std::uint64_t digest = dataset_digest(data_);
  const std::uint64_t config = config_fingerprint();
  const std::string meta_path = path(kMetaFile);
  if (fs::exists(meta_path)) {
    // Meta damage is always fatal (invalid_argument), never quarantined:
    // without the digest/fingerprint guard a resume could silently mix
    // artifacts from a different dataset or config.
    std::istringstream is;
    try {
      is.str(read_artifact_file(meta_path));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("FlowEngine: malformed checkpoint meta " +
                                  meta_path + ": " + e.what());
    }
    std::string magic, version, tag, name;
    std::uint64_t got_digest = 0, got_config = 0;
    bool ok = static_cast<bool>(is >> magic >> version) &&
              magic == "pmlp-flow-meta" && version == "v1" &&
              static_cast<bool>(is >> tag) && tag == "dataset";
    // The dataset name is the rest of the line (it may contain spaces).
    if (ok) {
      is >> std::ws;
      ok = static_cast<bool>(std::getline(is, name));
    }
    ok = ok && static_cast<bool>(is >> tag >> got_digest) &&
         tag == "digest" && static_cast<bool>(is >> tag >> got_config) &&
         tag == "config";
    if (!ok) {
      throw std::invalid_argument("FlowEngine: malformed checkpoint meta " +
                                  meta_path);
    }
    if (got_digest != digest || got_config != config) {
      throw std::runtime_error(
          "FlowEngine: checkpoint " + checkpoint_dir_ +
          " was created for a different dataset or flow config (delete the "
          "directory to start over)");
    }
  } else {
    write_artifact(meta_path, [&](std::ostream& os) {
      os << "pmlp-flow-meta v1\n";
      os << "dataset " << (data_.name.empty() ? "-" : data_.name) << '\n';
      os << "digest " << digest << '\n';
      os << "config " << config << '\n';
      os << "end\n";
    });
  }
  checkpoint_ready_ = true;
}

void FlowEngine::report(FlowStage stage, double wall_seconds, bool reused,
                        long items) {
  StageReport r;
  r.stage = stage;
  r.wall_seconds = wall_seconds;
  r.reused = reused;
  r.items = items;
  stages_.push_back(r);
  if (progress_) progress_(r);
}

// ------------------------------------------------------------------ stages

void FlowEngine::stage_split() {
  if (split_) return;
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("train_raw.ds")) && fs::exists(path("test_raw.ds")) &&
      fs::exists(path("train.qds")) && fs::exists(path("test.qds"))) {
    SplitArtifacts s;
    const bool ok =
        load_artifact(path("train_raw.ds"),
                      [&](std::istream& is) { s.train_raw = load_dataset(is); }) &&
        load_artifact(path("test_raw.ds"),
                      [&](std::istream& is) { s.test_raw = load_dataset(is); }) &&
        load_artifact(path("train.qds"),
                      [&](std::istream& is) { s.train = load_quant_dataset(is); }) &&
        load_artifact(path("test.qds"),
                      [&](std::istream& is) { s.test = load_quant_dataset(is); });
    if (ok) {
      split_ = std::move(s);
      report(FlowStage::kSplit, seconds_since(t0), /*reused=*/true,
             static_cast<long>(split_->train.size() + split_->test.size()));
      return;
    }
  }

  auto halves = datasets::stratified_split(data_, config_.train_fraction,
                                           config_.split_seed);
  SplitArtifacts s;
  s.train = datasets::quantize_inputs(halves.train,
                                      config_.trainer.bits.input_bits);
  s.test =
      datasets::quantize_inputs(halves.test, config_.trainer.bits.input_bits);
  s.train_raw = std::move(halves.train);
  s.test_raw = std::move(halves.test);
  split_ = std::move(s);

  if (!checkpoint_dir_.empty()) {
    write_artifact(path("train_raw.ds"), [&](std::ostream& os) {
      save_dataset(split_->train_raw, os);
    });
    write_artifact(path("test_raw.ds"), [&](std::ostream& os) {
      save_dataset(split_->test_raw, os);
    });
    write_artifact(path("train.qds"), [&](std::ostream& os) {
      save_quant_dataset(split_->train, os);
    });
    write_artifact(path("test.qds"), [&](std::ostream& os) {
      save_quant_dataset(split_->test, os);
    });
  }
  upstream_recomputed_ = true;
  report(FlowStage::kSplit, seconds_since(t0), /*reused=*/false,
         static_cast<long>(split_->train.size() + split_->test.size()));
}

void FlowEngine::stage_backprop() {
  if (float_net_) return;
  stage_split();
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("float_net.txt"))) {
    if (load_artifact(path("float_net.txt"), [&](std::istream& is) {
          float_net_ = load_float_mlp(is);
        })) {
      report(FlowStage::kBackprop, seconds_since(t0), /*reused=*/true,
             config_.backprop.epochs);
      return;
    }
  }

  // trainer.n_threads is the flow-wide parallelism knob; it supersedes
  // backprop.n_threads like it does hardware.n_threads. Bit-identical for
  // any value, so it stays outside the config fingerprint.
  mlp::BackpropConfig bp = config_.backprop;
  bp.n_threads = config_.trainer.n_threads;
  float_net_ = mlp::train_float_mlp(topology_, split_->train_raw, bp,
                                    &backprop_report_);
  if (!checkpoint_dir_.empty()) {
    write_artifact(path("float_net.txt"), [&](std::ostream& os) {
      save_float_mlp(*float_net_, os);
    });
  }
  upstream_recomputed_ = true;
  report(FlowStage::kBackprop, seconds_since(t0), /*reused=*/false,
         config_.backprop.epochs);
}

void FlowEngine::stage_baseline() {
  if (pricing_) return;
  stage_backprop();
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("baseline.txt"))) {
    if (load_artifact(path("baseline.txt"), [&](std::istream& is) {
          pricing_ = load_baseline_pricing(is);
        })) {
      report(FlowStage::kBaseline, seconds_since(t0), /*reused=*/true,
             pricing_->cost.cell_count);
      return;
    }
  }

  BaselinePricing p;
  p.net = mlp::QuantMlp::from_float(
      *float_net_, config_.trainer.bits.weight_bits,
      config_.trainer.bits.input_bits, config_.trainer.bits.act_bits);
  p.train_accuracy = mlp::accuracy(p.net, split_->train);
  p.test_accuracy = mlp::accuracy(p.net, split_->test);
  const auto circuit = netlist::build_bespoke_mlp(
      netlist::to_bespoke_desc(p.net, split_->train_raw.name + "_exact"));
  p.cost = netlist::optimize(circuit.nl).cost(hwmodel::CellLibrary::egfet_1v());
  pricing_ = std::move(p);

  if (!checkpoint_dir_.empty()) {
    write_artifact(path("baseline.txt"), [&](std::ostream& os) {
      save_baseline_pricing(*pricing_, os);
    });
  }
  upstream_recomputed_ = true;
  report(FlowStage::kBaseline, seconds_since(t0), /*reused=*/false,
         pricing_->cost.cell_count);
}

void FlowEngine::stage_ga() {
  if (training_) return;
  stage_baseline();
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("ga_front.txt"))) {
    if (load_artifact(path("ga_front.txt"), [&](std::istream& is) {
          training_ = load_training_result(is);
        })) {
      report(FlowStage::kGa, seconds_since(t0), /*reused=*/true,
             training_->evaluations);
      return;
    }
  }

  // Generation-level checkpointing (ga.checkpoint_every > 0, excluded from
  // the config fingerprint): every K generations the exact GenerationState
  // is committed to ga_state.txt, so a killed GA stage resumes from its
  // last generation block instead of from scratch — bit-identical either
  // way. The state file is an in-progress scratch artifact: it is consumed
  // on resume and deleted once ga_front.txt commits.
  TrainerConfig trainer_cfg = config_.trainer;
  const bool ga_checkpoints =
      !checkpoint_dir_.empty() && trainer_cfg.ga.checkpoint_every > 0;
  if (ga_checkpoints) {
    const std::string state_path = path("ga_state.txt");
    if (!upstream_recomputed_ && fs::exists(state_path)) {
      auto state = std::make_shared<nsga2::GenerationState>();
      if (load_artifact(state_path, [&](std::istream& is) {
            *state = load_ga_state(is);
          })) {
        if (static_cast<int>(state->population.size()) ==
                trainer_cfg.ga.population &&
            state->next_generation >= 0 &&
            state->next_generation <= trainer_cfg.ga.generations) {
          trainer_cfg.ga.resume = std::move(state);
        } else {
          // Checksummed but from an incompatible run (the knob is outside
          // the fingerprint guard): drop it and start the GA fresh.
          quarantine_artifact(state_path);
        }
      }
    }
    trainer_cfg.ga.on_checkpoint = [this,
                                    state_path](const nsga2::GenerationState&
                                                    state) {
      write_artifact(state_path, [&](std::ostream& os) {
        save_ga_state(state, os);
      });
      FaultInjector::instance().maybe_kill_at_ga_checkpoint(
          state.next_generation);
    };
  }

  training_ =
      train_ga_axc(topology_, split_->train, pricing_->net, trainer_cfg);
  if (!checkpoint_dir_.empty()) {
    write_artifact(path("ga_front.txt"), [&](std::ostream& os) {
      save_training_result(*training_, os);
    });
    if (ga_checkpoints) {
      std::error_code ec;
      fs::remove(path("ga_state.txt"), ec);  // superseded by ga_front.txt
    }
  }
  upstream_recomputed_ = true;
  report(FlowStage::kGa, seconds_since(t0), /*reused=*/false,
         training_->evaluations);
}

void FlowEngine::stage_refine() {
  if (refined_ || !config_.refine) return;
  stage_ga();
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("refined_front.txt"))) {
    if (load_artifact(path("refined_front.txt"), [&](std::istream& is) {
          training_ = load_training_result(is);
        })) {
      refined_ = true;
      report(FlowStage::kRefine, seconds_since(t0), /*reused=*/true,
             static_cast<long>(training_->estimated_pareto.size()));
      return;
    }
  }

  // The flow-wide parallelism knob drives the per-point refine fan-out too.
  refine_report_ =
      refine_front(training_->estimated_pareto, split_->train,
                   pricing_->train_accuracy, config_.refine_max_point_loss,
                   config_.trainer.problem.max_accuracy_loss,
                   config_.trainer.n_threads);
  refined_ = true;
  if (!checkpoint_dir_.empty()) {
    write_artifact(path("refined_front.txt"), [&](std::ostream& os) {
      save_training_result(*training_, os);
    });
  }
  upstream_recomputed_ = true;
  report(FlowStage::kRefine, seconds_since(t0), /*reused=*/false,
         static_cast<long>(training_->estimated_pareto.size()));
}

void FlowEngine::stage_hardware() {
  if (evaluated_) return;
  stage_refine();
  stage_ga();  // refine may be disabled
  ensure_checkpoint();
  const auto t0 = std::chrono::steady_clock::now();
  if (!checkpoint_dir_.empty() && !upstream_recomputed_ &&
      fs::exists(path("evaluated.txt"))) {
    if (load_artifact(path("evaluated.txt"), [&](std::istream& is) {
          evaluated_ = load_evaluated_points(is);
        })) {
      report(FlowStage::kHardware, seconds_since(t0), /*reused=*/true,
             static_cast<long>(evaluated_->size()));
      return;
    }
  }

  // The flow-wide parallelism knob drives the hardware fan-out too.
  HardwareAnalysisConfig hw_cfg = config_.hardware;
  hw_cfg.n_threads = config_.trainer.n_threads;
  evaluated_ =
      evaluate_hardware(training_->estimated_pareto, split_->test,
                        hwmodel::CellLibrary::egfet_1v(), hw_cfg);
  if (!checkpoint_dir_.empty()) {
    write_artifact(path("evaluated.txt"), [&](std::ostream& os) {
      save_evaluated_points(*evaluated_, os);
    });
  }
  upstream_recomputed_ = true;
  report(FlowStage::kHardware, seconds_since(t0), /*reused=*/false,
         static_cast<long>(evaluated_->size()));
}

void FlowEngine::stage_select() {
  if (selection_) return;
  stage_hardware();
  const auto t0 = std::chrono::steady_clock::now();
  Selection sel;
  sel.front = true_pareto(*evaluated_);
  sel.best = best_within_loss(*evaluated_, pricing_->test_accuracy,
                              config_.report_max_loss);
  if (sel.best) {
    sel.area_reduction = pricing_->cost.area_mm2 / sel.best->cost.area_mm2;
    sel.power_reduction = pricing_->cost.power_uw / sel.best->cost.power_uw;
  }
  selection_ = std::move(sel);
  report(FlowStage::kSelect, seconds_since(t0), /*reused=*/false,
         static_cast<long>(selection_->front.size()));
}

// ------------------------------------------------------------------ facade

const SplitArtifacts& FlowEngine::split() {
  stage_split();
  return *split_;
}

const mlp::FloatMlp& FlowEngine::float_net() {
  stage_backprop();
  return *float_net_;
}

const BaselinePricing& FlowEngine::baseline() {
  stage_baseline();
  return *pricing_;
}

BaselineArtifacts FlowEngine::assemble_baseline(bool move_out) {
  stage_baseline();
  BaselineArtifacts out;
  if (move_out) {
    out.train_raw = std::move(split_->train_raw);
    out.test_raw = std::move(split_->test_raw);
    out.train = std::move(split_->train);
    out.test = std::move(split_->test);
    out.float_net = std::move(*float_net_);
    out.baseline = std::move(pricing_->net);
  } else {
    out.train_raw = split_->train_raw;
    out.test_raw = split_->test_raw;
    out.train = split_->train;
    out.test = split_->test;
    out.float_net = *float_net_;
    out.baseline = pricing_->net;
  }
  out.baseline_cost = pricing_->cost;
  out.baseline_train_accuracy = pricing_->train_accuracy;
  out.baseline_test_accuracy = pricing_->test_accuracy;
  return out;
}

BaselineArtifacts FlowEngine::baseline_artifacts() & {
  return assemble_baseline(/*move_out=*/false);
}

BaselineArtifacts FlowEngine::baseline_artifacts() && {
  return assemble_baseline(/*move_out=*/true);
}

FlowResult FlowEngine::assemble(bool move_out) {
  stage_select();
  FlowResult result;
  if (move_out) {
    // The engine is a throwaway (rvalue): hand the artifacts over instead
    // of deep-copying datasets and models. The engine must not run again.
    result.training = std::move(*training_);
    result.evaluated = std::move(*evaluated_);
    result.front = std::move(selection_->front);
    result.best = std::move(selection_->best);
  } else {
    result.training = *training_;
    result.evaluated = *evaluated_;
    result.front = selection_->front;
    result.best = selection_->best;
  }
  // assemble_baseline last: the select stage above reads pricing_.
  result.baseline = assemble_baseline(move_out);
  result.backprop = backprop_report_;
  result.refine = refine_report_;
  result.area_reduction = selection_->area_reduction;
  result.power_reduction = selection_->power_reduction;
  result.stages = stages_;
  return result;
}

FlowResult FlowEngine::run() & { return assemble(/*move_out=*/false); }

FlowResult FlowEngine::run() && { return assemble(/*move_out=*/true); }

std::optional<FlowStage> FlowEngine::advance() {
  // Each stage_*() runs its missing upstream stages itself, so testing the
  // artifacts in pipeline order guarantees exactly one stage executes.
  if (!split_) {
    stage_split();
    return FlowStage::kSplit;
  }
  if (!float_net_) {
    stage_backprop();
    return FlowStage::kBackprop;
  }
  if (!pricing_) {
    stage_baseline();
    return FlowStage::kBaseline;
  }
  if (!training_) {
    stage_ga();
    return FlowStage::kGa;
  }
  if (config_.refine && !refined_) {
    stage_refine();
    return FlowStage::kRefine;
  }
  if (!evaluated_) {
    stage_hardware();
    return FlowStage::kHardware;
  }
  if (!selection_) {
    stage_select();
    return FlowStage::kSelect;
  }
  return std::nullopt;
}

// -------------------------------------------------------------- JSON report

void json_escape(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void json_point(const HwEvaluatedPoint& p, std::ostream& os) {
  os << "{\"test_accuracy\":" << p.test_accuracy
     << ",\"fa_area\":" << p.fa_area
     << ",\"area_mm2\":" << p.cost.area_mm2
     << ",\"power_uw\":" << p.cost.power_uw
     << ",\"delay_us\":" << p.cost.critical_delay_us
     << ",\"cell_count\":" << p.cost.cell_count << ",\"functional_match\":"
     << (p.functional_match ? "true" : "false") << "}";
}

}  // namespace

void write_flow_report_json(const FlowResult& result,
                            const std::string& dataset_name,
                            const mlp::Topology& topology, std::ostream& os) {
  std::ostringstream body;
  body.precision(17);
  body << "{\"dataset\":";
  json_escape(dataset_name, body);
  body << ",\"topology\":[";
  for (std::size_t i = 0; i < topology.layers.size(); ++i) {
    body << (i ? "," : "") << topology.layers[i];
  }
  body << "],\"stages\":[";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const auto& s = result.stages[i];
    body << (i ? "," : "") << "{\"stage\":\"" << flow_stage_name(s.stage)
         << "\",\"wall_seconds\":" << s.wall_seconds
         << ",\"reused\":" << (s.reused ? "true" : "false")
         << ",\"items\":" << s.items << "}";
  }
  body << "],\"baseline\":{\"train_accuracy\":"
       << result.baseline.baseline_train_accuracy
       << ",\"test_accuracy\":" << result.baseline.baseline_test_accuracy
       << ",\"area_mm2\":" << result.baseline.baseline_cost.area_mm2
       << ",\"power_uw\":" << result.baseline.baseline_cost.power_uw
       << ",\"cell_count\":" << result.baseline.baseline_cost.cell_count
       << "}";
  body << ",\"training\":{\"evaluations\":" << result.training.evaluations
       << ",\"wall_seconds\":" << result.training.wall_seconds
       << ",\"evals_per_second\":" << result.training.evals_per_second
       << ",\"cache_hits\":" << result.training.cache_hits
       << ",\"cache_hit_rate\":" << result.training.cache_hit_rate
       << ",\"simd_isa\":\"" << result.training.simd_isa << "\""
       << ",\"eval_block\":" << result.training.eval_block
       << ",\"front_size\":" << result.training.estimated_pareto.size()
       << "}";
  body << ",\"backprop\":{\"train_samples_per_s\":"
       << result.backprop.samples_per_second
       << ",\"wall_seconds\":" << result.backprop.wall_seconds
       << ",\"epochs_run\":" << result.backprop.epochs_run
       << ",\"final_train_accuracy\":"
       << result.backprop.final_train_accuracy
       << ",\"final_loss\":" << result.backprop.final_loss
       << ",\"simd_isa\":\"" << result.backprop.simd_isa << "\""
       << ",\"block\":" << result.backprop.block
       << ",\"threads\":" << result.backprop.threads << "}";
  body << ",\"refine\":{\"points\":" << result.refine.points
       << ",\"trials\":" << result.refine.trials
       << ",\"early_aborts\":" << result.refine.early_aborts
       << ",\"early_abort_rate\":" << result.refine.early_abort_rate()
       << ",\"bits_cleared\":" << result.refine.bits_cleared
       << ",\"biases_simplified\":" << result.refine.biases_simplified
       << "}";
  body << ",\"evaluated\":[";
  for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
    if (i) body << ",";
    json_point(result.evaluated[i], body);
  }
  body << "],\"front\":[";
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    if (i) body << ",";
    json_point(result.front[i], body);
  }
  body << "],\"best\":";
  if (result.best) {
    json_point(*result.best, body);
  } else {
    body << "null";
  }
  body << ",\"area_reduction\":" << result.area_reduction
       << ",\"power_reduction\":" << result.power_reduction << "}";
  os << body.str() << '\n';
}

}  // namespace pmlp::core
