// Compiled sparse evaluation engine for the GA training hot path.
//
// `HwAwareProblem::evaluate` runs ~26M times per paper-scale experiment, and
// the naive path re-walks every connection of a freshly decoded `ApproxMlp`
// per sample, heap-allocating two activation vectors per layer per sample.
// This module makes a single evaluation cheap in three steps:
//
//   compile  — flatten a chromosome-decoded `ApproxMlp` into a `CompiledNet`:
//              per layer a CSR array of only the *active* connections
//              (mask & in_mask != 0) with the layer input mask pre-ANDed in,
//              plus the FA-count area (Eq. 2) computed neuron-by-neuron
//              during the same walk (no `adder_specs()` vector).
//   batch    — sweep each layer over sample blocks of up to
//              `CompiledNet::kBlockSamples` samples held in neuron-major
//              int32 planes (`EvalWorkspace` flat buffers, zero allocations
//              after warmup), through explicitly vectorized
//              mask-and-accumulate kernels picked by runtime CPU dispatch
//              (AVX2 / NEON / scalar — see simd.hpp, eval_kernels.hpp).
//   memoize  — a genome-keyed bounded-LRU cache (`EvalCache`) short-circuits
//              re-evaluation of duplicate individuals, which NSGA-II
//              crossover/mutation produce every generation (an offspring
//              that undergoes neither is an exact parent copy).
//
// Results are bit-identical to `ApproxMlp::forward`/`fa_area` by
// construction: the compiled sample loop performs the same int64 additions
// in the same order, merely skipping terms that are provably zero. The
// batched int32 kernels stay bit-identical too: since `(x & mask) <= mask`
// for any input, a per-neuron static bound `|bias| + sum(mask << k)` that
// fits int32 proves no accumulator can ever leave int32 range, so the
// narrow adds produce the same values as the int64 ones (computed once at
// compile time as `block_safe()`; nets that fail it fall back to the
// per-sample path). The naive path stays as the reference oracle (see
// eval_engine_test), and the per-sample scalar path as the kernels' one.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::core {

/// First-maximum argmax over integer logits — the tie-breaking rule of
/// ApproxMlp::predict (std::max_element). Shared by CompiledNet::predict and
/// the refine engine's memoized scan so every inference path classifies
/// identically.
[[nodiscard]] inline int argmax_first(std::span<const std::int64_t> logits) {
  int best = 0;
  for (int k = 1; k < static_cast<int>(logits.size()); ++k) {
    if (logits[static_cast<std::size_t>(k)] >
        logits[static_cast<std::size_t>(best)]) {
      best = k;
    }
  }
  return best;
}

/// One active (non-fully-pruned) connection, flattened for the sample loop.
struct CompiledConn {
  std::int32_t in = 0;       ///< input index within the layer
  std::uint32_t mask = 0;    ///< conn mask pre-ANDed with the layer in_mask
  std::int32_t shift = 0;    ///< pow2 exponent k
  std::int32_t neg = 0;      ///< 1 when sign is -1
};

struct CompiledLayer {
  int n_in = 0;
  int n_out = 0;
  bool qrelu = true;
  int qrelu_shift = 0;
  /// CSR layout: neuron o owns conns[conn_begin[o] .. conn_begin[o+1]).
  std::vector<CompiledConn> conns;
  std::vector<std::int32_t> conn_begin;  ///< size n_out + 1
  std::vector<std::int64_t> biases;
};

class EvalWorkspace;

/// A chromosome compiled for repeated inference; cheap to evaluate, fixed
/// after construction. Pruned connections are gone, masks are pre-truncated,
/// and the FA-count area was computed once at compile time.
class CompiledNet {
 public:
  /// Samples per layer-sweep block: small enough that the int32 activation
  /// planes of a paper-scale layer stay L1-resident, large enough to fill
  /// 8-wide AVX2 lanes with slack for tails.
  static constexpr int kBlockSamples = 64;

  CompiledNet() = default;
  /// Compile `net` (QReLU shifts must be current — decode() guarantees it).
  explicit CompiledNet(const ApproxMlp& net);

  [[nodiscard]] int n_inputs() const { return n_inputs_; }
  [[nodiscard]] int n_outputs() const { return n_outputs_; }
  [[nodiscard]] const std::vector<CompiledLayer>& layers() const {
    return layers_;
  }
  /// Paper Eq. 2 FA-count, streamed during compilation; identical to
  /// `ApproxMlp::fa_area()` of the source model.
  [[nodiscard]] long fa_area() const { return fa_area_; }

  /// Output-layer accumulators for one sample, written into `ws` buffers;
  /// the returned span aliases workspace storage (valid until next call).
  [[nodiscard]] std::span<const std::int64_t> forward(
      std::span<const std::uint8_t> x, EvalWorkspace& ws) const;
  /// Argmax class (first maximum, like std::max_element).
  [[nodiscard]] int predict(std::span<const std::uint8_t> x,
                            EvalWorkspace& ws) const;
  /// Fraction of samples classified correctly; allocation-free given a
  /// bound workspace. Runs over predict_batch.
  [[nodiscard]] double accuracy(const datasets::QuantizedDataset& d,
                                EvalWorkspace& ws) const;

  /// True when every neuron's static accumulator bound fits int32, i.e. the
  /// sample-blocked kernels are provably bit-identical to the int64 path.
  /// Holds for every net the default BitConfig can decode; predict_batch
  /// falls back to per-sample predict() when false.
  [[nodiscard]] bool block_safe() const { return block_safe_; }

  /// Classify `n` samples stored row-major at `codes` (stride n_inputs()),
  /// one class per sample into `preds`. Sweeps each layer over blocks of
  /// kBlockSamples samples through the runtime-dispatched kernels;
  /// bit-identical to calling predict() per row on every input.
  void predict_batch(const std::uint8_t* codes, std::size_t n,
                     std::int32_t* preds, EvalWorkspace& ws) const;
  /// Whole-dataset batched classification; the returned span aliases `ws`
  /// storage (valid until the next batched call through `ws`).
  [[nodiscard]] std::span<const std::int32_t> predict_batch(
      const datasets::QuantizedDataset& d, EvalWorkspace& ws) const;

  /// Batched forward over ONE block of `n` <= kBlockSamples samples
  /// (row-major at `codes`), exposing each layer's raw accumulator and
  /// activation planes (neuron-major, stride `n`) to `sink` in layer order
  /// — the refine engine's memo-rebuild hook. The planes alias workspace
  /// storage and are only valid during the callback. Returns false without
  /// calling `sink` when the net is not block_safe().
  bool forward_block(
      const std::uint8_t* codes, int n, EvalWorkspace& ws,
      const std::function<void(int layer, const std::int32_t* acc,
                               const std::int32_t* act)>& sink) const;

 private:
  int n_inputs_ = 0;
  int n_outputs_ = 0;
  int max_width_ = 0;            ///< widest activation vector in the net
  std::int64_t act_max_ = 0;     ///< QReLU clamp, (1 << act_bits) - 1
  std::int32_t act_max32_ = 0;   ///< act_max_ narrowed (valid iff block_safe_)
  bool block_safe_ = false;
  long fa_area_ = 0;
  std::vector<CompiledLayer> layers_;

  friend class EvalWorkspace;
};

/// Reusable flat activation buffers for CompiledNet inference. One per
/// worker thread; grows monotonically, so a single workspace serves every
/// net evaluated by that worker with zero steady-state allocations. Opaque
/// to callers — only CompiledNet::forward touches the buffers.
class EvalWorkspace final : public nsga2::Problem::Workspace {
 private:
  friend class CompiledNet;

  /// Ensure capacity for `net`; cheap when already large enough.
  void bind(const CompiledNet& net);
  /// Ensure block-plane capacity (kBlockSamples × widest layer) for `net`.
  void bind_block(const CompiledNet& net);

  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  // Sample-block state: neuron-major int32 activation planes (ping-pong),
  // a raw-accumulator plane for forward_block, and the per-dataset
  // prediction buffer the span-returning predict_batch hands out.
  std::vector<std::int32_t> block_a_;
  std::vector<std::int32_t> block_b_;
  std::vector<std::int32_t> block_acc_;
  std::vector<std::int32_t> preds_;
};

/// The worker's own EvalWorkspace when `ws` is one (the PopulationEvaluator
/// path), else `local` — the shared shim for Problem::evaluate overloads.
[[nodiscard]] inline EvalWorkspace& resolve_workspace(
    nsga2::Problem::Workspace* ws, EvalWorkspace& local) {
  auto* workspace = dynamic_cast<EvalWorkspace*>(ws);
  return workspace != nullptr ? *workspace : local;
}

/// Statistics of one EvalCache (and of the evaluations that consulted it).
struct EvalCacheStats {
  long hits = 0;
  long misses = 0;
  [[nodiscard]] long lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// Bounded, thread-safe, genome-keyed LRU memo of evaluation results.
/// Keys hash the full gene vector (FNV-1a) and compare exactly, so a hash
/// collision can never return the wrong objectives. Capacity 0 = disabled
/// (every lookup misses, inserts are dropped).
class EvalCache {
 public:
  explicit EvalCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns true and fills `out` on a hit (refreshing LRU order).
  bool lookup(std::span<const int> genes, nsga2::Problem::Evaluation& out);
  /// Insert (or refresh) the result for `genes`, evicting the LRU entry
  /// beyond capacity.
  void insert(std::span<const int> genes,
              const nsga2::Problem::Evaluation& ev);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] EvalCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<int> genes;
    nsga2::Problem::Evaluation ev;
  };
  using Lru = std::list<Entry>;

  static std::uint64_t hash_genes(std::span<const int> genes);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Lru::iterator> index_;
  EvalCacheStats stats_;
};

}  // namespace pmlp::core
