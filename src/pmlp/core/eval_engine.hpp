// Compiled sparse evaluation engine for the GA training hot path.
//
// `HwAwareProblem::evaluate` runs ~26M times per paper-scale experiment, and
// the naive path re-walks every connection of a freshly decoded `ApproxMlp`
// per sample, heap-allocating two activation vectors per layer per sample.
// This module makes a single evaluation cheap in three steps:
//
//   compile  — flatten a chromosome-decoded `ApproxMlp` into a `CompiledNet`:
//              per layer a CSR array of only the *active* connections
//              (mask & in_mask != 0) with the layer input mask pre-ANDed in,
//              plus the FA-count area (Eq. 2) computed neuron-by-neuron
//              during the same walk (no `adder_specs()` vector).
//   batch    — run the whole dataset through reusable flat activation
//              buffers (`EvalWorkspace`): zero allocations per sample.
//   memoize  — a genome-keyed bounded-LRU cache (`EvalCache`) short-circuits
//              re-evaluation of duplicate individuals, which NSGA-II
//              crossover/mutation produce every generation (an offspring
//              that undergoes neither is an exact parent copy).
//
// Results are bit-identical to `ApproxMlp::forward`/`fa_area` by
// construction: the compiled sample loop performs the same int64 additions
// in the same order, merely skipping terms that are provably zero. The
// naive path stays as the reference oracle (see eval_engine_test).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::core {

/// First-maximum argmax over integer logits — the tie-breaking rule of
/// ApproxMlp::predict (std::max_element). Shared by CompiledNet::predict and
/// the refine engine's memoized scan so every inference path classifies
/// identically.
[[nodiscard]] inline int argmax_first(std::span<const std::int64_t> logits) {
  int best = 0;
  for (int k = 1; k < static_cast<int>(logits.size()); ++k) {
    if (logits[static_cast<std::size_t>(k)] >
        logits[static_cast<std::size_t>(best)]) {
      best = k;
    }
  }
  return best;
}

/// One active (non-fully-pruned) connection, flattened for the sample loop.
struct CompiledConn {
  std::int32_t in = 0;       ///< input index within the layer
  std::uint32_t mask = 0;    ///< conn mask pre-ANDed with the layer in_mask
  std::int32_t shift = 0;    ///< pow2 exponent k
  std::int32_t neg = 0;      ///< 1 when sign is -1
};

struct CompiledLayer {
  int n_in = 0;
  int n_out = 0;
  bool qrelu = true;
  int qrelu_shift = 0;
  /// CSR layout: neuron o owns conns[conn_begin[o] .. conn_begin[o+1]).
  std::vector<CompiledConn> conns;
  std::vector<std::int32_t> conn_begin;  ///< size n_out + 1
  std::vector<std::int64_t> biases;
};

class EvalWorkspace;

/// A chromosome compiled for repeated inference; cheap to evaluate, fixed
/// after construction. Pruned connections are gone, masks are pre-truncated,
/// and the FA-count area was computed once at compile time.
class CompiledNet {
 public:
  CompiledNet() = default;
  /// Compile `net` (QReLU shifts must be current — decode() guarantees it).
  explicit CompiledNet(const ApproxMlp& net);

  [[nodiscard]] int n_inputs() const { return n_inputs_; }
  [[nodiscard]] int n_outputs() const { return n_outputs_; }
  [[nodiscard]] const std::vector<CompiledLayer>& layers() const {
    return layers_;
  }
  /// Paper Eq. 2 FA-count, streamed during compilation; identical to
  /// `ApproxMlp::fa_area()` of the source model.
  [[nodiscard]] long fa_area() const { return fa_area_; }

  /// Output-layer accumulators for one sample, written into `ws` buffers;
  /// the returned span aliases workspace storage (valid until next call).
  [[nodiscard]] std::span<const std::int64_t> forward(
      std::span<const std::uint8_t> x, EvalWorkspace& ws) const;
  /// Argmax class (first maximum, like std::max_element).
  [[nodiscard]] int predict(std::span<const std::uint8_t> x,
                            EvalWorkspace& ws) const;
  /// Fraction of samples classified correctly; allocation-free given a
  /// bound workspace.
  [[nodiscard]] double accuracy(const datasets::QuantizedDataset& d,
                                EvalWorkspace& ws) const;

 private:
  int n_inputs_ = 0;
  int n_outputs_ = 0;
  int max_width_ = 0;            ///< widest activation vector in the net
  std::int64_t act_max_ = 0;     ///< QReLU clamp, (1 << act_bits) - 1
  long fa_area_ = 0;
  std::vector<CompiledLayer> layers_;

  friend class EvalWorkspace;
};

/// Reusable flat activation buffers for CompiledNet inference. One per
/// worker thread; grows monotonically, so a single workspace serves every
/// net evaluated by that worker with zero steady-state allocations. Opaque
/// to callers — only CompiledNet::forward touches the buffers.
class EvalWorkspace final : public nsga2::Problem::Workspace {
 private:
  friend class CompiledNet;

  /// Ensure capacity for `net`; cheap when already large enough.
  void bind(const CompiledNet& net);

  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
};

/// The worker's own EvalWorkspace when `ws` is one (the PopulationEvaluator
/// path), else `local` — the shared shim for Problem::evaluate overloads.
[[nodiscard]] inline EvalWorkspace& resolve_workspace(
    nsga2::Problem::Workspace* ws, EvalWorkspace& local) {
  auto* workspace = dynamic_cast<EvalWorkspace*>(ws);
  return workspace != nullptr ? *workspace : local;
}

/// Statistics of one EvalCache (and of the evaluations that consulted it).
struct EvalCacheStats {
  long hits = 0;
  long misses = 0;
  [[nodiscard]] long lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// Bounded, thread-safe, genome-keyed LRU memo of evaluation results.
/// Keys hash the full gene vector (FNV-1a) and compare exactly, so a hash
/// collision can never return the wrong objectives. Capacity 0 = disabled
/// (every lookup misses, inserts are dropped).
class EvalCache {
 public:
  explicit EvalCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns true and fills `out` on a hit (refreshing LRU order).
  bool lookup(std::span<const int> genes, nsga2::Problem::Evaluation& out);
  /// Insert (or refresh) the result for `genes`, evicting the LRU entry
  /// beyond capacity.
  void insert(std::span<const int> genes,
              const nsga2::Problem::Evaluation& ev);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] EvalCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<int> genes;
    nsga2::Problem::Evaluation ev;
  };
  using Lru = std::list<Entry>;

  static std::uint64_t hash_genes(std::span<const int> genes);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Lru::iterator> index_;
  EvalCacheStats stats_;
};

}  // namespace pmlp::core
