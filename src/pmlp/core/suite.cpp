#include "pmlp/core/suite.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "pmlp/datasets/uci.hpp"

namespace pmlp::core {

datasets::SyntheticSpec find_paper_spec(const std::string& name) {
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const auto& s : datasets::paper_suite()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::invalid_argument("unknown dataset '" + name + "'; known: " +
                              known);
}

std::string uci_data_dir() {
  const char* dir = std::getenv("PMLP_UCI_DIR");
  return dir != nullptr ? dir : "";
}

std::string find_uci_file(const std::string& name) {
  (void)find_paper_spec(name);  // unknown dataset -> invalid_argument
  const std::string root = uci_data_dir();
  if (root.empty()) return "";

  // Standard distribution file names per dataset, most common first.
  std::vector<const char*> candidates;
  if (name == "BreastCancer") {
    candidates = {"breast-cancer-wisconsin.data"};
  } else if (name == "Cardio") {
    candidates = {"cardio_nsp.csv", "cardio.csv", "CTG.csv"};
  } else if (name == "Pendigits") {
    candidates = {"pendigits.tra", "pendigits.csv"};
  } else if (name == "RedWine") {
    candidates = {"winequality-red.csv"};
  } else {
    candidates = {"winequality-white.csv"};
  }

  for (const char* file : candidates) {
    std::error_code ec;
    const auto path = std::filesystem::path(root) / file;
    if (std::filesystem::is_regular_file(path, ec)) return path.string();
  }
  return "";
}

datasets::Dataset load_paper_dataset(const std::string& name) {
  const auto spec = find_paper_spec(name);
  const std::string file = find_uci_file(name);
  if (file.empty()) return datasets::generate(spec);

  auto real = datasets::load_uci(name, file);
  // The topology, quantization and baselines are all sized by the Table I
  // shape; a file with the wrong column count must fail here, not after a
  // training run.
  if (real.n_features != spec.n_features) {
    throw std::invalid_argument(
        "UCI file " + file + " has " + std::to_string(real.n_features) +
        " features; " + name + " expects " +
        std::to_string(spec.n_features));
  }
  if (real.n_classes > spec.n_classes) {
    throw std::invalid_argument(
        "UCI file " + file + " has " + std::to_string(real.n_classes) +
        " classes; " + name + " expects at most " +
        std::to_string(spec.n_classes));
  }
  real.n_classes = spec.n_classes;  // keep the Table I output width
  return real;
}

const mlp::Topology& paper_topology(const std::string& name) {
  return mlp::paper_row(name).topology;
}

}  // namespace pmlp::core
