#include "pmlp/core/suite.hpp"

#include <stdexcept>

namespace pmlp::core {

datasets::SyntheticSpec find_paper_spec(const std::string& name) {
  for (const auto& s : datasets::paper_suite()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const auto& s : datasets::paper_suite()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::invalid_argument("unknown dataset '" + name + "'; known: " +
                              known);
}

datasets::Dataset load_paper_dataset(const std::string& name) {
  return datasets::generate(find_paper_spec(name));
}

const mlp::Topology& paper_topology(const std::string& name) {
  return mlp::paper_row(name).topology;
}

}  // namespace pmlp::core
