// Test-only fault injection for the crash-safety test matrix (worker kill
// smoke, quarantine tests, stale-lease takeover). Faults are armed through
// environment variables, read once per process; with none set every hook is
// a no-op (a single branch on a cached bool). NEVER armed in production —
// the knobs exist so tests and CI can kill a worker at an exact stage
// boundary, stall its heartbeats past the lease timeout, or corrupt a
// chosen artifact right after its commit, and then prove the protocol
// recovers.
//
//   PMLP_FAULT_KILL_STAGE=<stage>      _exit(137) right after the named
//                                      stage's artifact commits (the stage
//                                      boundary) in a campaign worker
//   PMLP_FAULT_KILL_GA_GEN=<n>         _exit(137) right after the GA
//                                      generation checkpoint for next
//                                      generation <n> commits (mid-stage
//                                      kill inside the GA)
//   PMLP_FAULT_HEARTBEAT_STALL=1       the worker's heartbeat thread stops
//                                      refreshing leases (the worker stays
//                                      alive: exercises stale-lease
//                                      takeover + fencing)
//   PMLP_FAULT_CORRUPT=<file>          truncate artifact <file> (basename)
//                                      in half right after its atomic
//                                      commit -> a later loader must
//                                      detect, quarantine and recompute
#pragma once

#include <string>

namespace pmlp::core {

class FaultInjector {
 public:
  /// Process-wide injector, env-armed on first use.
  static const FaultInjector& instance();

  /// _exit(137) if PMLP_FAULT_KILL_STAGE names `stage` ("split", "ga", ...).
  void maybe_kill_at_stage(const char* stage) const;

  /// _exit(137) if PMLP_FAULT_KILL_GA_GEN equals `next_generation`.
  void maybe_kill_at_ga_checkpoint(int next_generation) const;

  /// True when PMLP_FAULT_HEARTBEAT_STALL is set: heartbeats must stop.
  [[nodiscard]] bool heartbeat_stalled() const { return heartbeat_stall_; }

  /// Truncate `path` in half if PMLP_FAULT_CORRUPT matches its basename.
  /// Fires once per process (the recomputed artifact must then survive).
  void maybe_corrupt_artifact(const std::string& path) const;

  /// Any fault armed? (Cheap guard for hot paths.)
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  FaultInjector();

  bool armed_ = false;
  std::string kill_stage_;
  int kill_ga_gen_ = -1;
  bool heartbeat_stall_ = false;
  std::string corrupt_file_;
  mutable bool corrupted_once_ = false;
};

}  // namespace pmlp::core
