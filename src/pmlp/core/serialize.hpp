// Plain-text serialization of every artifact the Fig. 2 flow hands between
// stages, so a FlowEngine run can checkpoint after any stage and resume
// bit-identically. All formats are versioned, line-oriented text files —
// stable, diffable, and independent of float formatting (doubles are stored
// as C hexfloats, which round-trip exactly):
//
//   pmlp-approx-mlp v1      trained approximate MLP (the original format)
//   pmlp-dataset v1         normalized float dataset (split halves)
//   pmlp-quant-dataset v1   4-bit quantized dataset
//   pmlp-float-mlp v1       gradient-trained float reference net
//   pmlp-quant-mlp v1       exact bespoke quantized baseline [2]
//   pmlp-baseline v1        baseline stage: quant net + pricing + accuracy
//   pmlp-training v1        GA/refine stage output: counters + Pareto set
//   pmlp-evaluated v1       hardware-evaluated candidates (cost + verdict)
//
// The approx-mlp v1 layout is unchanged from the original release:
//
//   pmlp-approx-mlp v1
//   topology 10 3 2
//   bits 8 4 8 12
//   layer 0
//   conn <out> <in> <mask> <sign> <exponent>
//   ...
//   bias <out> <value>
//   ...
//
// Every *new* format is terminated by an `end` line so artifacts can be
// embedded in enclosing files (the training/evaluated sets embed one
// approx-mlp block per point, terminated by `endmodel`).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/flow.hpp"
#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::core {

/// Write the model (parameters + bit config). Throws on stream failure.
void save_model(const ApproxMlp& net, std::ostream& os);
[[nodiscard]] std::string to_text(const ApproxMlp& net);

/// Parse a model written by save_model. Throws std::invalid_argument on
/// malformed input (wrong magic/version, shape mismatch, out-of-range
/// parameters).
[[nodiscard]] ApproxMlp load_model(std::istream& is);
[[nodiscard]] ApproxMlp from_text(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_model_file(const ApproxMlp& net, const std::string& path);
[[nodiscard]] ApproxMlp load_model_file(const std::string& path);

// ---------------------------------------------------------------- artifacts
// FlowEngine checkpoint artifacts. All loaders throw std::invalid_argument
// on malformed input (bad magic/version, shape mismatches, out-of-range
// values, missing `end` terminator); all writers throw std::runtime_error
// on stream failure. Loaded artifacts are bit-identical to what was saved.

void save_dataset(const datasets::Dataset& d, std::ostream& os);
[[nodiscard]] datasets::Dataset load_dataset(std::istream& is);

void save_quant_dataset(const datasets::QuantizedDataset& d, std::ostream& os);
[[nodiscard]] datasets::QuantizedDataset load_quant_dataset(std::istream& is);

void save_float_mlp(const mlp::FloatMlp& net, std::ostream& os);
[[nodiscard]] mlp::FloatMlp load_float_mlp(std::istream& is);

void save_quant_mlp(const mlp::QuantMlp& net, std::ostream& os);
[[nodiscard]] mlp::QuantMlp load_quant_mlp(std::istream& is);

/// Baseline stage output: the quantized bespoke net [2] plus its 1 V
/// netlist pricing and split-half accuracies.
void save_baseline_pricing(const BaselinePricing& pricing, std::ostream& os);
[[nodiscard]] BaselinePricing load_baseline_pricing(std::istream& is);

/// GA / refinement stage output: perf counters + the estimated Pareto set
/// (each point embeds its approx-mlp v1 block).
void save_training_result(const TrainingResult& r, std::ostream& os);
[[nodiscard]] TrainingResult load_training_result(std::istream& is);

/// Hardware-analysis stage output: per-candidate netlist cost, test
/// accuracy and equivalence verdict.
void save_evaluated_points(std::span<const HwEvaluatedPoint> points,
                           std::ostream& os);
[[nodiscard]] std::vector<HwEvaluatedPoint> load_evaluated_points(
    std::istream& is);

/// NSGA-II generation checkpoint (pmlp-ga-state v1): the exact evolution
/// state at a generation boundary — survivor population in selection order
/// with ranks/crowding, the serialized RNG stream and the evaluation
/// counter — so a killed GA stage resumes bit-identically from its last
/// generation block instead of from scratch.
void save_ga_state(const nsga2::GenerationState& state, std::ostream& os);
[[nodiscard]] nsga2::GenerationState load_ga_state(std::istream& is);

// ------------------------------------------------------- checksum footers
// Versioned artifacts carry a trailing self-describing checksum line
//
//   # crc32 <8-hex-digits> lines <newline-count>
//
// over every byte that precedes it. The line sits AFTER the format's `end`
// terminator, so every loader (which stops consuming at `end`) is oblivious
// to it — old readers accept new files, and new readers accept old files
// without a footer (back-compat). read_artifact_file() verifies the footer
// when present, turning silent truncation/corruption into a deterministic
// std::invalid_argument instead of an incidental parse failure.

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `n` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

/// The footer line (newline-terminated) guarding `content`.
[[nodiscard]] std::string checksum_footer(const std::string& content);

/// Verify a trailing checksum footer if `content` has one. Any final line
/// starting with '#' must be a complete, matching crc32 footer — a footer
/// damaged by truncation throws std::invalid_argument (prefixed with
/// `what`), it never downgrades to "no footer". Content without a '#'
/// final line passes unverified (legacy artifacts).
void verify_checksum_footer(const std::string& content, const char* what);

/// Read a whole artifact file and verify its checksum footer (when
/// present). Throws std::runtime_error when the file cannot be read and
/// std::invalid_argument on checksum/footer mismatch. The returned content
/// still includes the footer line — loaders stop at `end` and never see it.
[[nodiscard]] std::string read_artifact_file(const std::string& path);

/// Crash-safe artifact commit: stream `writer` into `path + ".tmp"`, append
/// the checksum footer, fsync the temp file AND its parent directory, then
/// rename onto `path`. A kill or power loss at any instant leaves either
/// the complete old artifact or the complete new one — never a truncated
/// or empty file published under the final name. Throws std::runtime_error
/// on any I/O failure (the temp file is removed).
void write_artifact_file(const std::string& path,
                         const std::function<void(std::ostream&)>& writer);

// ----------------------------------------------------------- front artifacts
// A --save-front directory is the CLI's serving artifact: one front_NNN.model
// file per true-Pareto design plus an index.tsv naming every file with its
// exact test accuracy / area / power (written with max_digits10 precision, so
// the index round-trips the doubles bit-exactly and model-selection queries
// never tie-break on rounded values).

/// One served design: the index row plus the parsed model artifact.
struct FrontEntry {
  std::string file;              ///< index entry, e.g. "front_000.model"
  double test_accuracy = 0.0;
  double area_cm2 = 0.0;
  double power_mw = 0.0;
  bool functional_match = true;
  ApproxMlp model;
};

/// Strict loader of a --save-front directory: parses index.tsv, loads every
/// file it names, and REJECTS (std::invalid_argument) an index naming a
/// missing/corrupt file, a duplicate entry, or a directory holding any
/// front_*.model file the index does not name — a stale model from an
/// earlier, larger front must never be served by accident. Throws
/// std::runtime_error when the directory or index.tsv cannot be read.
[[nodiscard]] std::vector<FrontEntry> load_front_dir(const std::string& dir);

/// Loader for a campaign checkpoint tree (campaign.hpp layout): every flow
/// subdirectory holding an evaluated.txt contributes its true-Pareto subset
/// as entries named "<flow>/front_NNN.model". Flows that have not reached
/// the hardware stage yet are skipped (a live campaign can be served while
/// it runs); an empty result throws std::runtime_error.
[[nodiscard]] std::vector<FrontEntry> load_front_tree(const std::string& dir);

/// Serve-path entry point: a directory with an index.tsv loads as a front
/// directory, anything else as a campaign checkpoint tree.
[[nodiscard]] std::vector<FrontEntry> load_front_any(const std::string& dir);

/// FNV-1a digest over a dataset's name, shape, features and labels — the
/// checkpoint's guard against resuming onto different data.
[[nodiscard]] std::uint64_t dataset_digest(const datasets::Dataset& d);

/// Exact double round-trip shared by all artifact formats: the writer
/// emits a C "%a" hexfloat token, the reader accepts any strtod-parseable
/// token and throws std::invalid_argument (prefixed with `what`) otherwise.
void write_hexdouble(std::ostream& os, double v);
[[nodiscard]] double read_hexdouble(std::istream& is, const char* what);

/// Incremental FNV-1a hasher for config fingerprints (checkpoint meta).
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace pmlp::core
