// Plain-text serialization of trained approximate MLPs so Pareto designs
// survive the training session (the paper's flow hands them from training
// to synthesis as artifacts). Format: a versioned, line-oriented text file —
// stable, diffable, and independent of float formatting:
//
//   pmlp-approx-mlp v1
//   topology 10 3 2
//   bits 8 4 8 12
//   layer 0
//   conn <out> <in> <mask> <sign> <exponent>
//   ...
//   bias <out> <value>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "pmlp/core/approx_mlp.hpp"

namespace pmlp::core {

/// Write the model (parameters + bit config). Throws on stream failure.
void save_model(const ApproxMlp& net, std::ostream& os);
[[nodiscard]] std::string to_text(const ApproxMlp& net);

/// Parse a model written by save_model. Throws std::invalid_argument on
/// malformed input (wrong magic/version, shape mismatch, out-of-range
/// parameters).
[[nodiscard]] ApproxMlp load_model(std::istream& is);
[[nodiscard]] ApproxMlp from_text(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_model_file(const ApproxMlp& net, const std::string& path);
[[nodiscard]] ApproxMlp load_model_file(const std::string& path);

}  // namespace pmlp::core
