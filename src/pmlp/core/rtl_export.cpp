#include "pmlp/core/rtl_export.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pmlp/bitops/lfsr.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/netlist/activity.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"
#include "pmlp/netlist/verilog.hpp"
#include "pmlp/rtl/sim_runner.hpp"

namespace pmlp::core {

namespace fs = std::filesystem;

const char* rtl_sim_outcome_name(RtlSimOutcome o) {
  switch (o) {
    case RtlSimOutcome::kSkipped: return "skipped";
    case RtlSimOutcome::kPass: return "pass";
    case RtlSimOutcome::kFail: return "fail";
    case RtlSimOutcome::kError: return "error";
  }
  return "?";
}

bool RtlExportReport::all_passed(bool require_sim) const {
  for (const auto& p : points) {
    switch (p.sim) {
      case RtlSimOutcome::kPass:
        break;
      case RtlSimOutcome::kSkipped:
        if (require_sim) return false;
        break;
      case RtlSimOutcome::kFail:
      case RtlSimOutcome::kError:
        return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> lfsr_stimulus(std::size_t n_vectors, int n_features,
                                        int input_bits, std::uint32_t seed) {
  if (n_features <= 0) {
    throw std::invalid_argument("lfsr_stimulus: bad feature count");
  }
  if (input_bits <= 0 || input_bits > 8) {
    throw std::invalid_argument("lfsr_stimulus: input_bits must be 1..8");
  }
  // One width-16 register feeds every code; the low input_bits bits are the
  // stimulus (the register cycles through all 2^16-1 non-zero states, so
  // every code value occurs, including 0 from states with low bits clear).
  bitops::Lfsr lfsr(16, seed);
  const std::uint32_t mask = (1u << input_bits) - 1u;
  std::vector<std::uint8_t> codes;
  codes.reserve(n_vectors * static_cast<std::size_t>(n_features));
  for (std::size_t v = 0; v < n_vectors; ++v) {
    for (int f = 0; f < n_features; ++f) {
      codes.push_back(static_cast<std::uint8_t>(lfsr.next() & mask));
    }
  }
  return codes;
}

namespace {

/// Class index from the emitted module's output bits (outputs are the
/// class-index bus, bit i at position i — little-endian).
int class_from_bits(const std::vector<bool>& bits) {
  int v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= 1 << i;
  }
  return v;
}

void write_text_file(const fs::path& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
  os.flush();
  if (!os) {
    throw std::runtime_error("rtl_export: cannot write " + path.string());
  }
}

void write_manifest(const RtlExportReport& report, const fs::path& outdir) {
  std::ostringstream os;
  os << "name\tdut\ttb\trecorded\trandom\tgates\tgates_removed\tsim\t"
        "sim_errors\n";
  for (const auto& p : report.points) {
    os << p.name << '\t' << fs::path(p.dut_file).filename().string() << '\t'
       << fs::path(p.tb_file).filename().string() << '\t' << p.n_recorded
       << '\t' << p.n_random << '\t' << p.gates << '\t' << p.gates_removed
       << '\t' << rtl_sim_outcome_name(p.sim) << '\t' << p.sim_errors
       << '\n';
  }
  write_text_file(outdir / "manifest.tsv", os.str());
}

}  // namespace

RtlExportReport export_rtl(std::span<const RtlPointSpec> points,
                           const std::string& outdir,
                           const RtlExportOptions& opts) {
  if (opts.max_recorded_vectors < 0 || opts.random_vectors < 0) {
    throw std::invalid_argument("rtl_export: negative vector counts");
  }
  fs::create_directories(outdir);
  const fs::path out(outdir);

  RtlExportReport report;
  EvalWorkspace ws;
  for (const auto& spec : points) {
    const std::string name = netlist::sanitize_identifier(spec.name);
    if (name.empty()) throw std::invalid_argument("rtl_export: empty name");

    const CompiledNet oracle(spec.model);
    const int n_features = oracle.n_inputs();
    const int input_bits = spec.model.bits().input_bits;

    // Stimulus: recorded dataset vectors (capped) + LFSR random vectors,
    // one flat row-major buffer shared by every check and the testbench.
    if (n_features <= 0 ||
        spec.recorded.size() % static_cast<std::size_t>(n_features) != 0) {
      throw std::invalid_argument("rtl_export: recorded stimulus shape for " +
                                  name);
    }
    const std::size_t n_recorded = std::min<std::size_t>(
        spec.recorded.size() / static_cast<std::size_t>(n_features),
        static_cast<std::size_t>(opts.max_recorded_vectors));
    std::vector<std::uint8_t> codes(
        spec.recorded.begin(),
        spec.recorded.begin() +
            static_cast<std::ptrdiff_t>(n_recorded *
                                        static_cast<std::size_t>(n_features)));
    const std::size_t n_random = static_cast<std::size_t>(opts.random_vectors);
    const auto random = lfsr_stimulus(n_random, n_features, input_bits,
                                      opts.lfsr_seed);
    codes.insert(codes.end(), random.begin(), random.end());
    const std::size_t n_vectors = n_recorded + n_random;
    if (n_vectors == 0) {
      throw std::invalid_argument("rtl_export: no stimulus for " + name);
    }

    // C++ oracle predictions over the whole stimulus.
    std::vector<std::int32_t> expected(n_vectors);
    oracle.predict_batch(codes.data(), n_vectors, expected.data(), ws);

    // Build + optimize the circuit WITH its I/O metadata — the optimized
    // netlist is simulatable directly, so the DUT that ships is the
    // circuit every golden prediction comes from.
    netlist::OptStats stats;
    auto circuit = netlist::build_bespoke_mlp(spec.model.to_bespoke_desc(name));
    const long built_gates = static_cast<long>(circuit.nl.gates().size());
    if (opts.optimize) {
      circuit = netlist::optimize(std::move(circuit), &stats);
    }

    // Three-way check per vector: oracle == gate-level sim == in-process
    // evaluation of the emitted assigns (plus a gate-by-gate cross-check
    // of emitter vs simulator).
    const netlist::EmittedModule emitted(circuit.nl, name);
    const auto input_vectors = netlist::vectors_from_samples(
        circuit.input_buses, circuit.nl, codes, n_features);
    for (std::size_t v = 0; v < n_vectors; ++v) {
      const auto row = std::span<const std::uint8_t>(codes).subspan(
          v * static_cast<std::size_t>(n_features),
          static_cast<std::size_t>(n_features));
      const int gate_level = circuit.predict(row);
      const int emitted_class = class_from_bits(emitted.eval(input_vectors[v]));
      const int gate_mismatches = emitted.cross_check(input_vectors[v]);
      if (gate_level != expected[v] || emitted_class != expected[v] ||
          gate_mismatches != 0) {
        std::ostringstream msg;
        msg << "rtl_export: " << name << " diverged on vector " << v
            << ": oracle=" << expected[v] << " gate-sim=" << gate_level
            << " emitted=" << emitted_class << " gate mismatches="
            << gate_mismatches;
        throw std::runtime_error(msg.str());
      }
    }

    // Artifacts: DUT, self-checking testbench over the same stimulus.
    const fs::path dut_path = out / (name + ".v");
    write_text_file(dut_path, emitted.text());

    netlist::TestbenchOptions tb;
    tb.dut_name = name;
    tb.max_vectors = static_cast<int>(n_vectors);
    std::ostringstream tb_text;
    netlist::emit_testbench(circuit, n_features, codes, tb, tb_text);
    const fs::path tb_path = out / (name + "_tb.v");
    write_text_file(tb_path, tb_text.str());

    RtlPointReport pr;
    pr.name = name;
    pr.dut_file = dut_path.string();
    pr.tb_file = tb_path.string();
    pr.n_recorded = n_recorded;
    pr.n_random = n_random;
    pr.gates = static_cast<long>(circuit.nl.gates().size());
    pr.gates_removed = built_gates - pr.gates;
    report.points.push_back(std::move(pr));
  }

  write_manifest(report, out);
  report.manifest_file = (out / "manifest.tsv").string();
  return report;
}

RtlExportReport verify_rtl(std::span<const RtlPointSpec> points,
                           const std::string& outdir,
                           const RtlExportOptions& opts) {
  RtlExportReport report = export_rtl(points, outdir, opts);
  const auto sim = rtl::find_simulator();
  if (!sim) return report;  // graceful skip: in-process checks already ran
  report.simulator = sim->name;

  const rtl::SimRunner runner(*sim);
  const fs::path out(outdir);
  for (auto& p : report.points) {
    const auto run =
        runner.run(p.dut_file, p.tb_file, (out / ("work_" + p.name)).string());
    if (run.ok) {
      p.sim = RtlSimOutcome::kPass;
    } else if (run.errors > 0) {
      p.sim = RtlSimOutcome::kFail;
      p.sim_errors = run.errors;
    } else {
      p.sim = RtlSimOutcome::kError;
    }
    p.sim_log = run.log;
  }
  write_manifest(report, out);  // refresh sim columns
  return report;
}

}  // namespace pmlp::core
