#include "pmlp/core/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace pmlp::core {

int resolve_n_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int n_threads) {
  const int n = resolve_n_threads(n_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_per_chunk) {
  parallel_for(
      n,
      [&fn](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        fn(begin, end);
      },
      min_per_chunk);
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t min_per_chunk) {
  if (n == 0) return;
  const std::size_t cap =
      std::max<std::size_t>(1, n / std::max<std::size_t>(1, min_per_chunk));
  const auto chunks =
      std::min<std::size_t>(static_cast<std::size_t>(size()), cap);
  if (chunks <= 1) {
    // Degenerate pool or tiny range: run inline, exceptions flow naturally.
    fn(0, 0, n);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (std::size_t k = 0; k < chunks; ++k) {
    const std::size_t begin = n * k / chunks;
    const std::size_t end = n * (k + 1) / chunks;
    pending.push_back(submit([&fn, k, begin, end] { fn(k, begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& fut : pending) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pmlp::core
