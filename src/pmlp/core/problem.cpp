#include "pmlp/core/problem.hpp"

#include <algorithm>
#include <random>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

HwAwareProblem::HwAwareProblem(ChromosomeCodec codec,
                               const datasets::QuantizedDataset& train,
                               std::optional<mlp::QuantMlp> baseline,
                               ProblemConfig cfg)
    : codec_(std::move(codec)),
      train_(train),
      baseline_(std::move(baseline)),
      cfg_(cfg),
      cache_(static_cast<std::size_t>(std::max(0, cfg.eval_cache_capacity))) {
  if (baseline_) {
    baseline_accuracy_ = mlp::accuracy(*baseline_, train_);
  }
}

std::unique_ptr<nsga2::Problem::Workspace> HwAwareProblem::make_workspace()
    const {
  return std::make_unique<EvalWorkspace>();
}

nsga2::Problem::Evaluation HwAwareProblem::evaluate(
    std::span<const int> genes) const {
  return evaluate(genes, nullptr);
}

nsga2::Problem::Evaluation HwAwareProblem::evaluate(std::span<const int> genes,
                                                    Workspace* ws) const {
  Evaluation ev;
  if (cache_.lookup(genes, ev)) return ev;

  ApproxMlp net = codec_.decode(genes);
  if (cfg_.coarse_pruning) {
    // Structured pruning baseline: a connection is all-or-nothing.
    for (auto& layer : net.layers()) {
      const auto full =
          static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
      for (auto& c : layer.conns) {
        if (c.mask != 0) c.mask = full;
      }
    }
    net.update_qrelu_shifts();
  }
  const CompiledNet compiled(net);
  EvalWorkspace local;
  const double acc = compiled.accuracy(train_, resolve_workspace(ws, local));
  const auto area = static_cast<double>(compiled.fa_area());

  ev.objectives = {1.0 - acc, area};
  if (baseline_) {
    // Accuracy loss beyond the 10% (absolute points) training bound makes
    // the individual infeasible; constraint domination steers it back.
    const double floor_acc = baseline_accuracy_ - cfg_.max_accuracy_loss;
    ev.constraint_violation = std::max(0.0, floor_acc - acc);
  }
  cache_.insert(genes, ev);
  return ev;
}

std::optional<int> HwAwareProblem::mutate_gene(int gene, int current,
                                               std::mt19937_64& rng) const {
  if (!cfg_.domain_mutation) return std::nullopt;
  const auto b = codec_.bounds(gene);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  switch (codec_.kind(gene)) {
    case GeneKind::kMask: {
      const double r = u01(rng);
      if (r < 0.08) return 0;      // prune the whole connection
      if (r < 0.16) return b.hi;   // restore all bits
      // Flip one random bit: the fine-grained pruning step of §III-B.
      const int width = bitops::bit_width_u(static_cast<std::uint64_t>(b.hi));
      const int bit = static_cast<int>(rng() % static_cast<unsigned>(width));
      return current ^ (1 << bit);
    }
    case GeneKind::kSign:
      return 1 - current;
    case GeneKind::kExponent: {
      if (u01(rng) < 0.2) {
        std::uniform_int_distribution<int> reset(b.lo, b.hi);
        return reset(rng);
      }
      return current + ((rng() & 1u) ? 1 : -1);
    }
    case GeneKind::kBias: {
      if (u01(rng) < 0.1) {
        std::uniform_int_distribution<int> reset(b.lo, b.hi);
        return reset(rng);
      }
      // Geometric creep: mostly small nudges, occasionally large jumps.
      const int magnitude = 1 << (rng() % 6);  // 1..32
      return current + ((rng() & 1u) ? magnitude : -magnitude);
    }
  }
  return std::nullopt;
}

std::vector<std::vector<int>> HwAwareProblem::seed_individuals(int max) const {
  if (!baseline_ || cfg_.doping_fraction <= 0.0) return {};
  const int n_seeds = std::max(
      1, static_cast<int>(cfg_.doping_fraction * static_cast<double>(max)));

  const ApproxMlp doped =
      ApproxMlp::from_quant_baseline(*baseline_, codec_.bits());
  const std::vector<int> base_genes = codec_.encode(doped);

  // Magnitude-sorted connection weights for the pruned seed variants.
  std::vector<std::int64_t> magnitudes;
  for (const auto& ql : baseline_->layers()) {
    for (auto w : ql.weights) {
      magnitudes.push_back(w < 0 ? -static_cast<std::int64_t>(w) : w);
    }
  }
  std::sort(magnitudes.begin(), magnitudes.end());

  /// Doped variant with every connection whose |w| falls below the
  /// `drop_fraction` percentile fully masked, and `lsb_clear` low mask bits
  /// cleared on the survivors — a sparse but still near-exact seed.
  auto pruned_seed = [&](double drop_fraction, int lsb_clear) {
    const auto idx = static_cast<std::size_t>(
        drop_fraction * static_cast<double>(magnitudes.size() - 1));
    const std::int64_t threshold = magnitudes[idx];
    ApproxMlp net = doped;
    for (std::size_t l = 0; l < net.layers().size(); ++l) {
      auto& al = net.layers()[l];
      const auto& ql = baseline_->layers()[l];
      for (int o = 0; o < al.n_out; ++o) {
        for (int i = 0; i < al.n_in; ++i) {
          const std::int32_t w = ql.weight(o, i);
          const std::int64_t mag = w < 0 ? -static_cast<std::int64_t>(w) : w;
          auto& c = al.conn(o, i);
          if (mag <= threshold) {
            c.mask = 0;
          } else if (lsb_clear > 0) {
            c.mask &= ~static_cast<std::uint32_t>(
                bitops::low_mask(lsb_clear));
          }
        }
      }
    }
    net.update_qrelu_shifts();
    return codec_.encode(net);
  };

  std::mt19937_64 rng(cfg_.doping_seed);
  std::vector<std::vector<int>> seeds;
  seeds.reserve(static_cast<std::size_t>(n_seeds));
  seeds.push_back(base_genes);  // one pristine nearly-exact solution
  // A ladder of increasingly pruned near-exact seeds spreads the doped
  // block along the area axis instead of stacking clones at max area.
  const double fractions[] = {0.25, 0.5, 0.7, 0.85};
  int variant = 0;
  while (static_cast<int>(seeds.size()) < n_seeds) {
    if (variant < 8) {
      seeds.push_back(pruned_seed(fractions[variant % 4], variant / 4));
      ++variant;
      continue;
    }
    // Remaining seeds: jitter a few genes of the pristine solution.
    std::vector<int> genes = base_genes;
    const auto n_flips = std::max<std::size_t>(1, genes.size() / 50);
    std::uniform_int_distribution<std::size_t> pick(0, genes.size() - 1);
    for (std::size_t f = 0; f < n_flips; ++f) {
      const std::size_t g = pick(rng);
      const auto b = codec_.bounds(static_cast<int>(g));
      std::uniform_int_distribution<int> value(b.lo, b.hi);
      genes[g] = value(rng);
    }
    seeds.push_back(std::move(genes));
  }
  return seeds;
}

}  // namespace pmlp::core
