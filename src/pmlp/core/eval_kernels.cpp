#include "pmlp/core/eval_kernels.hpp"

#include <algorithm>
#include <cstddef>

#include "pmlp/core/eval_engine.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PMLP_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define PMLP_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace pmlp::core {
namespace {

/// Scalar sweep of samples [s0, s1) of the block — the whole block under
/// scalar dispatch, and the n % lanes tail of the SIMD variants. Per sample
/// this is the int32 image of CompiledNet::forward's int64 loop: same
/// connections, same order, same adds.
void sweep_scalar(const CompiledLayer& layer, const std::int32_t* in,
                  std::int32_t* acc, std::int32_t* act, int n, int s0, int s1,
                  std::int32_t act_max) {
  const CompiledConn* conns = layer.conns.data();
  const std::int32_t* begin = layer.conn_begin.data();
  for (int o = 0; o < layer.n_out; ++o) {
    const auto bias =
        static_cast<std::int32_t>(layer.biases[static_cast<std::size_t>(o)]);
    std::int32_t* accp = acc + static_cast<std::size_t>(o) * n;
    std::int32_t* actp = act + static_cast<std::size_t>(o) * n;
    const std::int32_t cb = begin[o];
    const std::int32_t ce = begin[o + 1];
    for (int s = s0; s < s1; ++s) {
      std::int32_t a = bias;
      for (std::int32_t c = cb; c < ce; ++c) {
        const CompiledConn& cc = conns[c];
        const std::int32_t term = static_cast<std::int32_t>(
            (static_cast<std::uint32_t>(
                 in[static_cast<std::size_t>(cc.in) * n + s]) &
             cc.mask)
            << cc.shift);
        a += cc.neg ? -term : term;
      }
      accp[s] = a;
      if (layer.qrelu) {
        a = a <= 0 ? 0 : std::min(a >> layer.qrelu_shift, act_max);
      }
      actp[s] = a;
    }
  }
}

#if defined(PMLP_HAVE_AVX2)
__attribute__((target("avx2"))) void sweep_avx2(
    const CompiledLayer& layer, const std::int32_t* in, std::int32_t* acc,
    std::int32_t* act, int n, std::int32_t act_max) {
  const CompiledConn* conns = layer.conns.data();
  const std::int32_t* begin = layer.conn_begin.data();
  const int vec_end = n & ~7;
  const int quad_end = n & ~31;
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vact_max = _mm256_set1_epi32(act_max);
  const __m128i vqshift = _mm_cvtsi32_si128(layer.qrelu_shift);
  for (int o = 0; o < layer.n_out; ++o) {
    std::int32_t* accp = acc + static_cast<std::size_t>(o) * n;
    std::int32_t* actp = act + static_cast<std::size_t>(o) * n;
    const __m256i vbias = _mm256_set1_epi32(static_cast<std::int32_t>(
        layer.biases[static_cast<std::size_t>(o)]));
    const std::int32_t cb = begin[o];
    const std::int32_t ce = begin[o + 1];
    int s = 0;
    // 32-samples-per-pass main loop: the per-connection setup (struct
    // load, mask broadcast, shift-count move, sign branch) is paid once
    // per four 8-lane vectors instead of once per vector. Each lane still
    // accumulates its sample's terms in the exact scalar order, so the
    // unroll cannot change any result bit.
    for (; s < quad_end; s += 32) {
      __m256i a0 = vbias, a1 = vbias, a2 = vbias, a3 = vbias;
      for (std::int32_t c = cb; c < ce; ++c) {
        const CompiledConn& cc = conns[c];
        const __m256i vmask =
            _mm256_set1_epi32(static_cast<std::int32_t>(cc.mask));
        const __m128i vsh = _mm_cvtsi32_si128(cc.shift);
        const std::int32_t* p = in + static_cast<std::size_t>(cc.in) * n + s;
        __m256i v0 = _mm256_sll_epi32(
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
                vmask),
            vsh);
        __m256i v1 = _mm256_sll_epi32(
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8)),
                vmask),
            vsh);
        __m256i v2 = _mm256_sll_epi32(
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 16)),
                vmask),
            vsh);
        __m256i v3 = _mm256_sll_epi32(
            _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 24)),
                vmask),
            vsh);
        if (cc.neg) {
          a0 = _mm256_sub_epi32(a0, v0);
          a1 = _mm256_sub_epi32(a1, v1);
          a2 = _mm256_sub_epi32(a2, v2);
          a3 = _mm256_sub_epi32(a3, v3);
        } else {
          a0 = _mm256_add_epi32(a0, v0);
          a1 = _mm256_add_epi32(a1, v1);
          a2 = _mm256_add_epi32(a2, v2);
          a3 = _mm256_add_epi32(a3, v3);
        }
      }
      const __m256i as[4] = {a0, a1, a2, a3};
      for (int q = 0; q < 4; ++q) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(accp + s + q * 8),
                            as[q]);
      }
      if (layer.qrelu) {
        // max(acc, 0) then >> then clamp matches the scalar
        // `acc <= 0 ? 0 : min(acc >> shift, act_max)` exactly: a
        // non-positive accumulator becomes 0, which shifts/clamps to 0.
        for (int q = 0; q < 4; ++q) {
          __m256i r = _mm256_max_epi32(as[q], vzero);
          r = _mm256_sra_epi32(r, vqshift);
          r = _mm256_min_epi32(r, vact_max);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(actp + s + q * 8),
                              r);
        }
      } else if (actp != accp) {
        for (int q = 0; q < 4; ++q) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(actp + s + q * 8),
                              as[q]);
        }
      }
    }
    for (; s < vec_end; s += 8) {
      __m256i a = vbias;
      for (std::int32_t c = cb; c < ce; ++c) {
        const CompiledConn& cc = conns[c];
        __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            in + static_cast<std::size_t>(cc.in) * n + s));
        v = _mm256_and_si256(
            v, _mm256_set1_epi32(static_cast<std::int32_t>(cc.mask)));
        v = _mm256_sll_epi32(v, _mm_cvtsi32_si128(cc.shift));
        a = cc.neg ? _mm256_sub_epi32(a, v) : _mm256_add_epi32(a, v);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(accp + s), a);
      if (layer.qrelu) {
        __m256i r = _mm256_max_epi32(a, vzero);
        r = _mm256_sra_epi32(r, vqshift);
        r = _mm256_min_epi32(r, vact_max);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(actp + s), r);
      } else if (actp != accp) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(actp + s), a);
      }
    }
  }
  if (vec_end < n) sweep_scalar(layer, in, acc, act, n, vec_end, n, act_max);
}
#endif  // PMLP_HAVE_AVX2

#if defined(PMLP_HAVE_NEON)
void sweep_neon(const CompiledLayer& layer, const std::int32_t* in,
                std::int32_t* acc, std::int32_t* act, int n,
                std::int32_t act_max) {
  const CompiledConn* conns = layer.conns.data();
  const std::int32_t* begin = layer.conn_begin.data();
  const int vec_end = n & ~3;
  const int quad_end = n & ~15;
  const int32x4_t vzero = vdupq_n_s32(0);
  const int32x4_t vact_max = vdupq_n_s32(act_max);
  // SSHL by a negative count is a truncating right shift — for the
  // non-negative post-max accumulator that equals the scalar `>>`.
  const int32x4_t vqshift = vdupq_n_s32(-layer.qrelu_shift);
  for (int o = 0; o < layer.n_out; ++o) {
    std::int32_t* accp = acc + static_cast<std::size_t>(o) * n;
    std::int32_t* actp = act + static_cast<std::size_t>(o) * n;
    const int32x4_t vbias = vdupq_n_s32(
        static_cast<std::int32_t>(layer.biases[static_cast<std::size_t>(o)]));
    const std::int32_t cb = begin[o];
    const std::int32_t ce = begin[o + 1];
    int s = 0;
    // 16-samples-per-pass main loop: per-connection broadcasts amortized
    // over four 4-lane vectors (see the AVX2 twin for the bit-identity
    // argument — per-lane accumulation order is unchanged).
    for (; s < quad_end; s += 16) {
      int32x4_t a0 = vbias, a1 = vbias, a2 = vbias, a3 = vbias;
      for (std::int32_t c = cb; c < ce; ++c) {
        const CompiledConn& cc = conns[c];
        const int32x4_t vmask = vdupq_n_s32(static_cast<std::int32_t>(cc.mask));
        const int32x4_t vsh = vdupq_n_s32(cc.shift);
        const std::int32_t* p = in + static_cast<std::size_t>(cc.in) * n + s;
        const int32x4_t v0 = vshlq_s32(vandq_s32(vld1q_s32(p), vmask), vsh);
        const int32x4_t v1 =
            vshlq_s32(vandq_s32(vld1q_s32(p + 4), vmask), vsh);
        const int32x4_t v2 =
            vshlq_s32(vandq_s32(vld1q_s32(p + 8), vmask), vsh);
        const int32x4_t v3 =
            vshlq_s32(vandq_s32(vld1q_s32(p + 12), vmask), vsh);
        if (cc.neg) {
          a0 = vsubq_s32(a0, v0);
          a1 = vsubq_s32(a1, v1);
          a2 = vsubq_s32(a2, v2);
          a3 = vsubq_s32(a3, v3);
        } else {
          a0 = vaddq_s32(a0, v0);
          a1 = vaddq_s32(a1, v1);
          a2 = vaddq_s32(a2, v2);
          a3 = vaddq_s32(a3, v3);
        }
      }
      const int32x4_t as[4] = {a0, a1, a2, a3};
      for (int q = 0; q < 4; ++q) vst1q_s32(accp + s + q * 4, as[q]);
      if (layer.qrelu) {
        for (int q = 0; q < 4; ++q) {
          int32x4_t r = vmaxq_s32(as[q], vzero);
          r = vshlq_s32(r, vqshift);
          r = vminq_s32(r, vact_max);
          vst1q_s32(actp + s + q * 4, r);
        }
      } else if (actp != accp) {
        for (int q = 0; q < 4; ++q) vst1q_s32(actp + s + q * 4, as[q]);
      }
    }
    for (; s < vec_end; s += 4) {
      int32x4_t a = vbias;
      for (std::int32_t c = cb; c < ce; ++c) {
        const CompiledConn& cc = conns[c];
        int32x4_t v =
            vld1q_s32(in + static_cast<std::size_t>(cc.in) * n + s);
        v = vandq_s32(v, vdupq_n_s32(static_cast<std::int32_t>(cc.mask)));
        v = vshlq_s32(v, vdupq_n_s32(cc.shift));
        a = cc.neg ? vsubq_s32(a, v) : vaddq_s32(a, v);
      }
      vst1q_s32(accp + s, a);
      if (layer.qrelu) {
        int32x4_t r = vmaxq_s32(a, vzero);
        r = vshlq_s32(r, vqshift);
        r = vminq_s32(r, vact_max);
        vst1q_s32(actp + s, r);
      } else if (actp != accp) {
        vst1q_s32(actp + s, a);
      }
    }
  }
  if (vec_end < n) sweep_scalar(layer, in, acc, act, n, vec_end, n, act_max);
}
#endif  // PMLP_HAVE_NEON

}  // namespace

void layer_sweep(SimdIsa isa, const CompiledLayer& layer,
                 const std::int32_t* in, std::int32_t* acc, std::int32_t* act,
                 int n, std::int32_t act_max) {
  switch (isa) {
#if defined(PMLP_HAVE_AVX2)
    case SimdIsa::kAvx2:
      sweep_avx2(layer, in, acc, act, n, act_max);
      return;
#endif
#if defined(PMLP_HAVE_NEON)
    case SimdIsa::kNeon:
      sweep_neon(layer, in, acc, act, n, act_max);
      return;
#endif
    default:
      break;
  }
  sweep_scalar(layer, in, acc, act, n, 0, n, act_max);
}

}  // namespace pmlp::core
