// `pmlp serve`: a long-lived inference server over saved Pareto fronts.
//
// A FrontServer loads a --save-front directory (or a campaign checkpoint
// tree — see load_front_any in serialize.hpp) and compiles every model into
// a CompiledNet once at load time. Classify requests are answered by the
// batched evaluation engine: requests queue up, a dispatcher drains the
// queue into batches (up to ServeConfig::max_batch at a time), groups each
// batch by resolved model, gathers every group's feature codes into one
// contiguous arena, and fans the resulting sample blocks out over the
// shared ThreadPool as CompiledNet::predict_batch calls (SIMD layer sweeps
// — see eval_kernels.hpp), where every worker reuses its own EvalWorkspace
// — so the per-request execution path performs zero allocations after
// warmup, exactly like the GA hot path, and answers stay bit-identical to
// the per-request predict() oracle the serve tests assert against.
//
// The loaded front is an immutable snapshot behind a shared_ptr: reload()
// reads the directory again and atomically swaps the pointer, and every
// batch resolves and evaluates against the single snapshot it grabbed at
// dispatch time. A client hammering the server across a reload therefore
// sees answers from the old front or the new front, never a mixture, and
// a reload that fails to parse leaves the old front serving.
//
// The socket layer is a line protocol over a localhost TCP socket, one
// request or command per line:
//
//   <selector> <code> <code> ...   classify a quantized feature vector
//                                  -> "ok <file> <class>" | "err <reason>"
//   models                         -> "ok models <k> <file>..."
//   reload                         -> "ok reload <k>" | "err <reason>"
//   stop                           -> "ok stop", then a graceful shutdown
//
// Selectors resolve against the index metadata (exact, max_digits10 values):
//
//   front_000.model                     explicit file name
//   best-accuracy-under-area=<cm2>      max accuracy with area_cm2 <= X
//                                       (ties: smaller area, then index order)
//   best-area-over-accuracy=<acc>       min area with test_accuracy >= X
//                                       (ties: higher accuracy, then order)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/thread_pool.hpp"

namespace pmlp::core {

struct ServeConfig {
  int n_threads = 0;   ///< worker pool size (0 = all hardware threads)
  int max_batch = 64;  ///< max requests drained into one dispatch
  int port = 0;        ///< TCP port for listen(); 0 = OS-assigned
};

/// One classify answer. `file` is the resolved index entry, so a client can
/// tell which model (and which front generation) produced the class.
struct ServeReply {
  bool ok = false;
  std::string file;
  int predicted = -1;
  std::string error;  ///< set when !ok
};

/// Monotonic counters since construction (thread-safe snapshot).
struct ServeStats {
  long requests = 0;      ///< classify requests answered
  long batches = 0;       ///< dispatches (batches of 1..max_batch)
  long max_batch = 0;     ///< largest batch dispatched
  long reloads = 0;       ///< successful front swaps
  long connections = 0;   ///< sockets accepted
  [[nodiscard]] double batch_fill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

/// Index metadata of one served model (no weights — for listings).
struct ServedModelInfo {
  std::string file;
  double test_accuracy = 0.0;
  double area_cm2 = 0.0;
  double power_mw = 0.0;
};

class FrontServer {
 public:
  /// Loads `front_dir` (throws like load_front_any on a bad artifact set)
  /// and starts the worker pool + batching dispatcher. The server answers
  /// submit()/classify() immediately; sockets only after listen().
  explicit FrontServer(std::string front_dir, ServeConfig cfg = {});
  ~FrontServer();

  FrontServer(const FrontServer&) = delete;
  FrontServer& operator=(const FrontServer&) = delete;

  /// Enqueue one classify request; the future resolves after the batch it
  /// lands in executes. Never throws on a bad request — errors come back
  /// in the reply so one malformed line cannot kill a connection.
  [[nodiscard]] std::future<ServeReply> submit(std::string selector,
                                               std::vector<std::uint8_t> codes);
  /// Synchronous convenience wrapper over submit().
  [[nodiscard]] ServeReply classify(const std::string& selector,
                                    std::vector<std::uint8_t> codes);

  /// Re-read the front directory and atomically swap it in; returns the new
  /// model count. Throws (and keeps the old front serving) on failure.
  std::size_t reload();

  /// Metadata of the currently served front, index order.
  [[nodiscard]] std::vector<ServedModelInfo> models() const;
  [[nodiscard]] const std::string& front_dir() const { return front_dir_; }
  [[nodiscard]] int pool_size() const { return pool_.size(); }
  [[nodiscard]] ServeStats stats() const;

  // ------------------------------------------------------------- socket API
  /// Bind + listen on 127.0.0.1:cfg.port. Throws std::runtime_error on
  /// bind failure. After this, port() reports the actual port.
  void listen();
  [[nodiscard]] int port() const { return port_; }
  /// Accept/serve until a stop command or request_stop(); joins every
  /// connection thread before returning. Requires listen() first.
  void serve_forever();
  /// Ask serve_forever() to wind down (safe from a signal handler: one
  /// relaxed atomic store; the accept/read loops poll it).
  void request_stop() { stopping_.store(true); }
  [[nodiscard]] bool stopping() const { return stopping_.load(); }

 private:
  struct Served {
    FrontEntry entry;
    CompiledNet net;
  };
  /// Immutable snapshot of one loaded front generation.
  struct Front {
    std::vector<Served> models;
    [[nodiscard]] const Served* resolve(const std::string& selector,
                                        std::string* error) const;
  };
  struct Pending {
    std::string selector;
    std::vector<std::uint8_t> codes;
    std::promise<ServeReply> promise;
  };
  /// One predict_batch dispatch unit: `count` grouped requests
  /// (batch_order_[first .. first+count)) of one model, whose gathered
  /// feature codes start at arena_[arena].
  struct BlockTask {
    const Served* model = nullptr;
    std::size_t arena = 0;
    std::size_t first = 0;
    int count = 0;
  };

  [[nodiscard]] static std::shared_ptr<const Front> load(
      const std::string& dir);
  [[nodiscard]] std::shared_ptr<const Front> snapshot() const;
  void dispatch_loop();
  void run_batch(std::vector<Pending>& batch);
  void handle_connection(int fd);
  [[nodiscard]] std::string handle_line(const std::string& line);

  std::string front_dir_;
  ServeConfig cfg_;
  ThreadPool pool_;
  std::vector<EvalWorkspace> workspaces_;  ///< one per pool worker

  // run_batch scratch (dispatcher thread only); capacity persists across
  // batches, so the steady-state eval path stays allocation-free.
  std::vector<std::uint8_t> arena_;        ///< gathered codes, model-grouped
  std::vector<std::int32_t> batch_preds_;  ///< one class per grouped request
  std::vector<std::size_t> batch_order_;   ///< grouped position -> batch index
  std::vector<BlockTask> block_tasks_;

  mutable std::mutex front_mutex_;
  std::shared_ptr<const Front> front_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::thread dispatcher_;
  bool dispatcher_stop_ = false;  ///< guarded by queue_mutex_

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex conn_mutex_;
  std::vector<std::thread> connections_;

  mutable std::mutex stats_mutex_;
  ServeStats stats_;
};

}  // namespace pmlp::core
