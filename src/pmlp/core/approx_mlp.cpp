#include "pmlp/core/approx_mlp.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/bitops/fixed_point.hpp"

namespace pmlp::core {

ApproxMlp::ApproxMlp(const mlp::Topology& topology, const BitConfig& bits)
    : topology_(topology), bits_(bits) {
  if (topology.layers.size() < 2) {
    throw std::invalid_argument("ApproxMlp: topology needs >=2 layers");
  }
  for (int l = 0; l < topology.n_layers(); ++l) {
    ApproxLayer layer;
    layer.n_in = topology.layers[static_cast<std::size_t>(l)];
    layer.n_out = topology.layers[static_cast<std::size_t>(l) + 1];
    layer.input_bits = l == 0 ? bits.input_bits : bits.act_bits;
    layer.qrelu = l + 1 < topology.n_layers();
    layer.conns.assign(
        static_cast<std::size_t>(layer.n_in) * layer.n_out, ApproxConn{});
    layer.biases.assign(static_cast<std::size_t>(layer.n_out), 0);
    layers_.push_back(std::move(layer));
  }
}

int ApproxMlp::compute_qrelu_shift(int l) const {
  const ApproxLayer& layer = layers_[static_cast<std::size_t>(l)];
  if (!layer.qrelu) return 0;
  const std::uint32_t in_mask =
      static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
  std::int64_t acc_max = 0;
  for (int o = 0; o < layer.n_out; ++o) {
    std::int64_t pos =
        std::max<std::int64_t>(layer.biases[static_cast<std::size_t>(o)], 0);
    for (int i = 0; i < layer.n_in; ++i) {
      const ApproxConn& c = layer.conn(o, i);
      if (c.sign < 0) continue;
      // Max of (m (.) x) << k is the (truncated) mask itself, shifted.
      pos += static_cast<std::int64_t>(c.mask & in_mask) << c.exponent;
    }
    acc_max = std::max(acc_max, pos);
  }
  const int acc_w = bitops::bit_width_u(static_cast<std::uint64_t>(acc_max));
  return std::max(0, acc_w - bits_.act_bits);
}

void ApproxMlp::update_qrelu_shifts() {
  for (int l = 0; l < static_cast<int>(layers_.size()); ++l) {
    layers_[static_cast<std::size_t>(l)].qrelu_shift = compute_qrelu_shift(l);
  }
}

void ApproxMlp::forward_layer(int l, std::span<const std::int64_t> in,
                              std::span<std::int64_t> acc,
                              std::span<std::int64_t> act) const {
  const ApproxLayer& layer = layers_[static_cast<std::size_t>(l)];
  const std::uint32_t in_mask =
      static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
  const std::int64_t act_max = (std::int64_t{1} << bits_.act_bits) - 1;
  for (int o = 0; o < layer.n_out; ++o) {
    std::int64_t a = layer.biases[static_cast<std::size_t>(o)];
    for (int i = 0; i < layer.n_in; ++i) {
      const ApproxConn& c = layer.conn(o, i);
      const auto xi = static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)]);
      const std::int64_t term =
          static_cast<std::int64_t>(xi & c.mask & in_mask) << c.exponent;
      a += c.sign < 0 ? -term : term;
    }
    acc[static_cast<std::size_t>(o)] = a;
    if (layer.qrelu) {
      a = a <= 0 ? 0 : std::min(a >> layer.qrelu_shift, act_max);
    }
    act[static_cast<std::size_t>(o)] = a;
  }
}

std::vector<std::int64_t> ApproxMlp::forward(
    std::span<const std::uint8_t> x) const {
  if (x.size() != static_cast<std::size_t>(topology_.n_inputs())) {
    throw std::invalid_argument("ApproxMlp::forward: bad input size");
  }
  std::vector<std::int64_t> act(x.begin(), x.end());
  for (int l = 0; l < static_cast<int>(layers_.size()); ++l) {
    std::vector<std::int64_t> next(
        static_cast<std::size_t>(layers_[static_cast<std::size_t>(l)].n_out));
    forward_layer(l, act, next, next);
    act = std::move(next);
  }
  return act;
}

int ApproxMlp::predict(std::span<const std::uint8_t> x) const {
  const auto logits = forward(x);
  return static_cast<int>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

std::vector<adder::NeuronAdderSpec> ApproxMlp::adder_specs() const {
  std::vector<adder::NeuronAdderSpec> specs;
  for (const auto& layer : layers_) {
    for (int o = 0; o < layer.n_out; ++o) {
      adder::NeuronAdderSpec n;
      n.bias = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        adder::SummandSpec s;
        s.mask = c.mask;
        s.input_width = layer.input_bits;
        s.shift = c.exponent;
        s.sign = c.sign;
        if (!s.is_pruned()) n.summands.push_back(s);
      }
      specs.push_back(std::move(n));
    }
  }
  return specs;
}

long ApproxMlp::fa_area() const { return adder::total_fa_count(adder_specs()); }

long ApproxMlp::wire_count() const {
  long wires = 0;
  for (const auto& layer : layers_) {
    const std::uint32_t in_mask =
        static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
    for (const auto& c : layer.conns) {
      wires += bitops::popcount(c.mask & in_mask);
    }
  }
  return wires;
}

netlist::BespokeMlpDesc ApproxMlp::to_bespoke_desc(
    const std::string& name) const {
  netlist::BespokeMlpDesc desc;
  desc.name = name;
  for (const auto& layer : layers_) {
    netlist::LayerDesc ld;
    ld.n_in = layer.n_in;
    ld.n_out = layer.n_out;
    ld.input_bits = layer.input_bits;
    ld.qrelu = layer.qrelu;
    ld.qrelu_shift = layer.qrelu_shift;
    ld.act_bits = bits_.act_bits;
    const std::uint32_t in_mask =
        static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
    for (int o = 0; o < layer.n_out; ++o) {
      netlist::NeuronDesc nd;
      nd.bias = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        if ((c.mask & in_mask) == 0) continue;  // fully pruned connection
        nd.conns.push_back(
            netlist::ConnDesc{i, c.mask & in_mask, c.exponent, c.sign});
      }
      ld.neurons.push_back(std::move(nd));
    }
    desc.layers.push_back(std::move(ld));
  }
  return desc;
}

ApproxMlp ApproxMlp::from_quant_baseline(const mlp::QuantMlp& baseline,
                                         const BitConfig& bits) {
  ApproxMlp net(baseline.topology(), bits);
  for (std::size_t l = 0; l < baseline.layers().size(); ++l) {
    const auto& ql = baseline.layers()[l];
    auto& al = net.layers_[l];
    const auto full_mask =
        static_cast<std::uint32_t>(bitops::low_mask(al.input_bits));
    for (int o = 0; o < ql.n_out; ++o) {
      for (int i = 0; i < ql.n_in; ++i) {
        const std::int32_t w = ql.weight(o, i);
        ApproxConn& c = al.conn(o, i);
        if (w == 0) {
          c = ApproxConn{0, +1, 0};  // zero weight == zero mask (paper §III-B)
          continue;
        }
        const auto p2 = bitops::nearest_pow2(w, bits.max_exponent());
        c.mask = full_mask;
        c.sign = p2.sign;
        c.exponent = p2.exponent;
      }
      al.biases[static_cast<std::size_t>(o)] =
          std::clamp<std::int64_t>(ql.biases[static_cast<std::size_t>(o)],
                                   bits.bias_min(), bits.bias_max());
    }
  }
  net.update_qrelu_shifts();
  return net;
}

double accuracy(const ApproxMlp& net, const datasets::QuantizedDataset& d) {
  if (d.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (net.predict(d.row(i)) == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace pmlp::core
