#include "pmlp/core/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pmlp::core {

namespace {

constexpr int kPollMs = 100;  ///< stop-flag poll period of the socket loops

/// Parse the numeric argument of a "name=value" selector; nullopt when the
/// token is not that selector or the value does not parse exactly.
std::optional<double> selector_arg(const std::string& selector,
                                   const char* name) {
  const std::size_t n = std::strlen(name);
  if (selector.size() <= n + 1 || selector.compare(0, n, name) != 0 ||
      selector[n] != '=') {
    return std::nullopt;
  }
  const std::string value = selector.substr(n + 1);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

// ------------------------------------------------------------------- Front

const FrontServer::Served* FrontServer::Front::resolve(
    const std::string& selector, std::string* error) const {
  if (const auto area = selector_arg(selector, "best-accuracy-under-area")) {
    const Served* best = nullptr;
    for (const auto& m : models) {
      if (m.entry.area_cm2 > *area) continue;
      // Ties on exact accuracy break toward the smaller design, then the
      // earlier index entry — deterministic because the index stores
      // max_digits10 values, never rounded ones.
      if (best == nullptr ||
          m.entry.test_accuracy > best->entry.test_accuracy ||
          (m.entry.test_accuracy == best->entry.test_accuracy &&
           m.entry.area_cm2 < best->entry.area_cm2)) {
        best = &m;
      }
    }
    if (best == nullptr) {
      *error = "no model with area_cm2 <= " + selector.substr(
                   std::strlen("best-accuracy-under-area") + 1);
    }
    return best;
  }
  if (const auto acc = selector_arg(selector, "best-area-over-accuracy")) {
    const Served* best = nullptr;
    for (const auto& m : models) {
      if (m.entry.test_accuracy < *acc) continue;
      if (best == nullptr || m.entry.area_cm2 < best->entry.area_cm2 ||
          (m.entry.area_cm2 == best->entry.area_cm2 &&
           m.entry.test_accuracy > best->entry.test_accuracy)) {
        best = &m;
      }
    }
    if (best == nullptr) {
      *error = "no model with test_accuracy >= " + selector.substr(
                   std::strlen("best-area-over-accuracy") + 1);
    }
    return best;
  }
  for (const auto& m : models) {
    if (m.entry.file == selector) return &m;
  }
  *error = "unknown model '" + selector + "'";
  return nullptr;
}

// ------------------------------------------------------------- FrontServer

std::shared_ptr<const FrontServer::Front> FrontServer::load(
    const std::string& dir) {
  auto entries = load_front_any(dir);
  auto front = std::make_shared<Front>();
  front->models.reserve(entries.size());
  for (auto& e : entries) {
    Served s;
    s.net = CompiledNet(e.model);
    s.entry = std::move(e);
    front->models.push_back(std::move(s));
  }
  return front;
}

FrontServer::FrontServer(std::string front_dir, ServeConfig cfg)
    : front_dir_(std::move(front_dir)),
      cfg_(cfg),
      pool_(cfg.n_threads),
      workspaces_(static_cast<std::size_t>(pool_.size())),
      front_(load(front_dir_)) {
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("ServeConfig::max_batch must be >= 1");
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

FrontServer::~FrontServer() {
  request_stop();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    dispatcher_stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
}

std::shared_ptr<const FrontServer::Front> FrontServer::snapshot() const {
  std::lock_guard<std::mutex> lock(front_mutex_);
  return front_;
}

std::size_t FrontServer::reload() {
  auto fresh = load(front_dir_);  // throws -> old front keeps serving
  const std::size_t count = fresh->models.size();
  {
    std::lock_guard<std::mutex> lock(front_mutex_);
    front_ = std::move(fresh);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reloads;
  }
  return count;
}

std::vector<ServedModelInfo> FrontServer::models() const {
  const auto front = snapshot();
  std::vector<ServedModelInfo> out;
  out.reserve(front->models.size());
  for (const auto& m : front->models) {
    out.push_back({m.entry.file, m.entry.test_accuracy, m.entry.area_cm2,
                   m.entry.power_mw});
  }
  return out;
}

ServeStats FrontServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::future<ServeReply> FrontServer::submit(std::string selector,
                                            std::vector<std::uint8_t> codes) {
  Pending p;
  p.selector = std::move(selector);
  p.codes = std::move(codes);
  auto fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
  return fut;
}

ServeReply FrontServer::classify(const std::string& selector,
                                 std::vector<std::uint8_t> codes) {
  return submit(selector, std::move(codes)).get();
}

void FrontServer::dispatch_loop() {
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return dispatcher_stop_ || !queue_.empty(); });
      if (queue_.empty() && dispatcher_stop_) return;
      // Drain the queue into one sample block: every request that arrived
      // while the previous batch was executing rides the next dispatch.
      const auto take = std::min<std::size_t>(
          queue_.size(), static_cast<std::size_t>(cfg_.max_batch));
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    run_batch(batch);
  }
}

void FrontServer::run_batch(std::vector<Pending>& batch) {
  // One snapshot for the whole batch: a reload() swapping the front while
  // this batch executes cannot mix generations within these answers.
  const auto front = snapshot();
  struct Slot {
    const Served* model = nullptr;
    bool grouped = false;
    ServeReply reply;
  };
  std::vector<Slot> slots(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& slot = slots[i];
    std::string error;
    const Served* m = front->resolve(batch[i].selector, &error);
    if (m == nullptr) {
      slot.reply.error = std::move(error);
      continue;
    }
    const int n_inputs = m->net.n_inputs();
    if (static_cast<int>(batch[i].codes.size()) != n_inputs) {
      slot.reply.error = "expected " + std::to_string(n_inputs) +
                         " feature codes, got " +
                         std::to_string(batch[i].codes.size());
      continue;
    }
    const unsigned max_code =
        (1u << m->entry.model.bits().input_bits) - 1u;
    for (std::uint8_t c : batch[i].codes) {
      if (c > max_code) {
        slot.reply.error = "feature code " + std::to_string(c) +
                           " exceeds input range 0.." +
                           std::to_string(max_code);
        break;
      }
    }
    if (slot.reply.error.empty()) slot.model = m;
  }
  // Group the valid requests by resolved model (first-appearance order) and
  // gather each group's feature codes into one contiguous arena, so every
  // model classifies its whole share of the batch through predict_batch
  // sample blocks instead of request-at-a-time predict() calls.
  arena_.clear();
  batch_order_.clear();
  block_tasks_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slots[i].model == nullptr || slots[i].grouped) continue;
    const Served* m = slots[i].model;
    const std::size_t group_first = batch_order_.size();
    const std::size_t group_arena = arena_.size();
    for (std::size_t j = i; j < batch.size(); ++j) {
      if (slots[j].model != m) continue;
      slots[j].grouped = true;
      batch_order_.push_back(j);
      arena_.insert(arena_.end(), batch[j].codes.begin(),
                    batch[j].codes.end());
    }
    const auto n_in = static_cast<std::size_t>(m->net.n_inputs());
    const std::size_t group_n = batch_order_.size() - group_first;
    for (std::size_t off = 0; off < group_n;
         off += CompiledNet::kBlockSamples) {
      const int count = static_cast<int>(std::min<std::size_t>(
          CompiledNet::kBlockSamples, group_n - off));
      block_tasks_.push_back(
          BlockTask{m, group_arena + off * n_in, group_first + off, count});
    }
  }
  if (batch_preds_.size() < batch_order_.size()) {
    batch_preds_.resize(batch_order_.size());
  }
  // Fan the sample blocks out over the pool; worker k reuses its own
  // workspace, so the eval path allocates nothing after warmup. A task is
  // already a whole block — chunking finer would leave nothing to amortize.
  pool_.parallel_for(
      block_tasks_.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        EvalWorkspace& ws = workspaces_[chunk];
        for (std::size_t t = begin; t < end; ++t) {
          const BlockTask& task = block_tasks_[t];
          task.model->net.predict_batch(
              arena_.data() + task.arena,
              static_cast<std::size_t>(task.count),
              batch_preds_.data() + task.first, ws);
        }
      },
      /*min_per_chunk=*/1);
  for (std::size_t k = 0; k < batch_order_.size(); ++k) {
    slots[batch_order_[k]].reply.predicted = batch_preds_[k];
  }
  // Count the batch BEFORE fulfilling any promise: a client whose future
  // just resolved must never observe stats() missing its own request.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += static_cast<long>(batch.size());
    ++stats_.batches;
    stats_.max_batch =
        std::max(stats_.max_batch, static_cast<long>(batch.size()));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& reply = slots[i].reply;
    if (slots[i].model != nullptr) {
      reply.ok = true;
      reply.file = slots[i].model->entry.file;
    }
    batch[i].promise.set_value(std::move(reply));
  }
}

// ------------------------------------------------------------------ socket

void FrontServer::listen() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket(): ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(cfg_.port) + ": " + err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(std::string("serve: getsockname(): ") + err);
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

void FrontServer::serve_forever() {
  if (listen_fd_ < 0) {
    throw std::logic_error("serve_forever() requires listen() first");
  }
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the stop flag
      break;
    }
    if (ready == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.emplace_back([this, client] { handle_connection(client); });
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
}

std::string FrontServer::handle_line(const std::string& line) {
  std::istringstream is(line);
  std::string selector;
  if (!(is >> selector)) return "err empty request";
  if (selector == "models") {
    const auto infos = models();
    std::ostringstream os;
    os << "ok models " << infos.size();
    for (const auto& m : infos) os << ' ' << m.file;
    return os.str();
  }
  if (selector == "reload") {
    try {
      return "ok reload " + std::to_string(reload());
    } catch (const std::exception& e) {
      return std::string("err reload failed: ") + e.what();
    }
  }
  std::vector<std::uint8_t> codes;
  std::string token;
  while (is >> token) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || v < 0 || v > 255 ||
        errno == ERANGE) {
      return "err bad feature code '" + token + "'";
    }
    codes.push_back(static_cast<std::uint8_t>(v));
  }
  const ServeReply reply = classify(selector, std::move(codes));
  if (!reply.ok) return "err " + reply.error;
  return "ok " + reply.file + ' ' + std::to_string(reply.predicted);
}

void FrontServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // peer closed (or error): drop the connection
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    std::size_t nl = 0;
    while (open && (nl = buffer.find('\n', pos)) != std::string::npos) {
      std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply;
      if (line == "stop") {
        reply = "ok stop";
        open = false;
      } else {
        reply = handle_line(line);
      }
      reply += '\n';
      std::size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w =
            ::send(fd, reply.data() + sent, reply.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) {
          open = false;
          break;
        }
        sent += static_cast<std::size_t>(w);
      }
      if (line == "stop") request_stop();
    }
    buffer.erase(0, pos);
  }
  ::close(fd);
}

}  // namespace pmlp::core
