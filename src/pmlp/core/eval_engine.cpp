#include "pmlp/core/eval_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/eval_kernels.hpp"
#include "pmlp/core/simd.hpp"

namespace pmlp::core {
namespace {

/// Static int32-safety proof for the blocked kernels: `(x & mask) <= mask`
/// no matter the input, so |any partial accumulator| of neuron `o` is
/// bounded by `|bias| + sum(mask << k)` over its connections. When every
/// neuron's bound (and the QReLU clamp, and each shifted mask) fits int32,
/// the narrow kernels compute exactly what the int64 sample loop does.
bool layers_block_safe(const std::vector<CompiledLayer>& layers,
                       std::int64_t act_max) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  if (act_max > kMax) return false;
  for (const auto& layer : layers) {
    for (int o = 0; o < layer.n_out; ++o) {
      std::int64_t bound = layer.biases[static_cast<std::size_t>(o)];
      bound = bound < 0 ? -bound : bound;
      const std::int32_t end = layer.conn_begin[static_cast<std::size_t>(o) + 1];
      for (std::int32_t c = layer.conn_begin[static_cast<std::size_t>(o)];
           c < end; ++c) {
        const CompiledConn& cc = layer.conns[static_cast<std::size_t>(c)];
        if (cc.shift < 0 || cc.shift > 30 || cc.mask > kMax) return false;
        bound += static_cast<std::int64_t>(cc.mask) << cc.shift;
        if (bound > kMax) return false;
      }
    }
  }
  return true;
}

}  // namespace

CompiledNet::CompiledNet(const ApproxMlp& net) {
  n_inputs_ = net.topology().n_inputs();
  max_width_ = n_inputs_;
  act_max_ = (std::int64_t{1} << net.bits().act_bits) - 1;

  // One scratch spec reused across neurons: the FA-count streams out of the
  // same walk that collects active connections, so the training path never
  // materializes the all-neurons adder_specs() vector.
  adder::NeuronAdderSpec scratch;
  layers_.reserve(net.layers().size());
  for (const auto& layer : net.layers()) {
    const auto in_mask =
        static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
    CompiledLayer cl;
    cl.n_in = layer.n_in;
    cl.n_out = layer.n_out;
    cl.qrelu = layer.qrelu;
    cl.qrelu_shift = layer.qrelu_shift;
    cl.biases = layer.biases;
    cl.conn_begin.reserve(static_cast<std::size_t>(layer.n_out) + 1);
    cl.conn_begin.push_back(0);
    for (int o = 0; o < layer.n_out; ++o) {
      scratch.summands.clear();
      scratch.bias = layer.biases[static_cast<std::size_t>(o)];
      for (int i = 0; i < layer.n_in; ++i) {
        const ApproxConn& c = layer.conn(o, i);
        const std::uint32_t m = c.mask & in_mask;
        if (m == 0) continue;  // fully pruned: provably-zero term
        cl.conns.push_back(CompiledConn{i, m, c.exponent, c.sign < 0 ? 1 : 0});
        scratch.summands.push_back(
            adder::SummandSpec{c.mask, layer.input_bits, c.exponent, c.sign});
      }
      cl.conn_begin.push_back(static_cast<std::int32_t>(cl.conns.size()));
      fa_area_ += adder::estimate_total_fa(scratch);
    }
    max_width_ = std::max(max_width_, cl.n_out);
    n_outputs_ = cl.n_out;
    layers_.push_back(std::move(cl));
  }
  block_safe_ = !layers_.empty() && layers_block_safe(layers_, act_max_);
  if (block_safe_) act_max32_ = static_cast<std::int32_t>(act_max_);
}

std::span<const std::int64_t> CompiledNet::forward(
    std::span<const std::uint8_t> x, EvalWorkspace& ws) const {
  if (x.size() != static_cast<std::size_t>(n_inputs_)) {
    throw std::invalid_argument("CompiledNet::forward: bad input size");
  }
  ws.bind(*this);
  std::int64_t* cur = ws.a_.data();
  std::int64_t* nxt = ws.b_.data();
  for (std::size_t i = 0; i < x.size(); ++i) cur[i] = x[i];

  for (const auto& layer : layers_) {
    const CompiledConn* conns = layer.conns.data();
    const std::int32_t* begin = layer.conn_begin.data();
    for (int o = 0; o < layer.n_out; ++o) {
      std::int64_t acc = layer.biases[static_cast<std::size_t>(o)];
      const std::int32_t end = begin[o + 1];
      for (std::int32_t c = begin[o]; c < end; ++c) {
        const CompiledConn& cc = conns[c];
        const std::int64_t term = static_cast<std::int64_t>(
            static_cast<std::uint32_t>(cur[cc.in]) & cc.mask)
            << cc.shift;
        acc += cc.neg ? -term : term;
      }
      if (layer.qrelu) {
        acc = acc <= 0 ? 0 : std::min(acc >> layer.qrelu_shift, act_max_);
      }
      nxt[o] = acc;
    }
    std::swap(cur, nxt);
  }
  return {cur, static_cast<std::size_t>(n_outputs_)};
}

int CompiledNet::predict(std::span<const std::uint8_t> x,
                         EvalWorkspace& ws) const {
  return argmax_first(forward(x, ws));
}

double CompiledNet::accuracy(const datasets::QuantizedDataset& d,
                             EvalWorkspace& ws) const {
  if (d.size() == 0) return 0.0;
  const auto preds = predict_batch(d, ws);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (preds[i] == d.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

void CompiledNet::predict_batch(const std::uint8_t* codes, std::size_t n,
                                std::int32_t* preds, EvalWorkspace& ws) const {
  if (n == 0) return;
  if (!block_safe_) {
    // Overflow-unprovable net (never produced by a BitConfig decode at the
    // paper's widths): keep the exact int64 per-sample path.
    for (std::size_t s = 0; s < n; ++s) {
      preds[s] = predict(
          {codes + s * static_cast<std::size_t>(n_inputs_),
           static_cast<std::size_t>(n_inputs_)},
          ws);
    }
    return;
  }
  const SimdIsa isa = active_simd_isa();
  ws.bind_block(*this);
  for (std::size_t base = 0; base < n; base += kBlockSamples) {
    const int b = static_cast<int>(
        std::min<std::size_t>(kBlockSamples, n - base));
    // Transpose the block's rows into neuron-major input planes.
    const std::uint8_t* rows =
        codes + base * static_cast<std::size_t>(n_inputs_);
    std::int32_t* cur = ws.block_a_.data();
    std::int32_t* nxt = ws.block_b_.data();
    for (int i = 0; i < n_inputs_; ++i) {
      std::int32_t* plane = cur + static_cast<std::size_t>(i) * b;
      for (int s = 0; s < b; ++s) {
        plane[s] = rows[static_cast<std::size_t>(s) * n_inputs_ + i];
      }
    }
    for (const auto& layer : layers_) {
      layer_sweep(isa, layer, cur, nxt, nxt, b, act_max32_);
      std::swap(cur, nxt);
    }
    // argmax_first per sample over the output planes (stride b).
    for (int s = 0; s < b; ++s) {
      int best = 0;
      std::int32_t best_v = cur[s];
      for (int k = 1; k < n_outputs_; ++k) {
        const std::int32_t v = cur[static_cast<std::size_t>(k) * b + s];
        if (v > best_v) {
          best_v = v;
          best = k;
        }
      }
      preds[base + static_cast<std::size_t>(s)] = best;
    }
  }
}

std::span<const std::int32_t> CompiledNet::predict_batch(
    const datasets::QuantizedDataset& d, EvalWorkspace& ws) const {
  if (d.n_features != n_inputs_) {
    throw std::invalid_argument(
        "CompiledNet::predict_batch: dataset feature width mismatch");
  }
  if (ws.preds_.size() < d.size()) ws.preds_.resize(d.size());
  predict_batch(d.codes.data(), d.size(), ws.preds_.data(), ws);
  return {ws.preds_.data(), d.size()};
}

bool CompiledNet::forward_block(
    const std::uint8_t* codes, int n, EvalWorkspace& ws,
    const std::function<void(int layer, const std::int32_t* acc,
                             const std::int32_t* act)>& sink) const {
  if (!block_safe_ || n <= 0 || n > kBlockSamples) return false;
  const SimdIsa isa = active_simd_isa();
  ws.bind_block(*this);
  std::int32_t* cur = ws.block_a_.data();
  std::int32_t* nxt = ws.block_b_.data();
  for (int i = 0; i < n_inputs_; ++i) {
    std::int32_t* plane = cur + static_cast<std::size_t>(i) * n;
    for (int s = 0; s < n; ++s) {
      plane[s] = codes[static_cast<std::size_t>(s) * n_inputs_ + i];
    }
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layer_sweep(isa, layers_[l], cur, ws.block_acc_.data(), nxt, n,
                act_max32_);
    sink(static_cast<int>(l), ws.block_acc_.data(), nxt);
    std::swap(cur, nxt);
  }
  return true;
}

void EvalWorkspace::bind(const CompiledNet& net) {
  const auto width = static_cast<std::size_t>(net.max_width_);
  if (a_.size() < width) {
    a_.resize(width);
    b_.resize(width);
  }
}

void EvalWorkspace::bind_block(const CompiledNet& net) {
  const auto need = static_cast<std::size_t>(net.max_width_) *
                    static_cast<std::size_t>(CompiledNet::kBlockSamples);
  if (block_a_.size() < need) {
    block_a_.resize(need);
    block_b_.resize(need);
    block_acc_.resize(need);
  }
}

std::uint64_t EvalCache::hash_genes(std::span<const int> genes) {
  // FNV-1a over the gene words.
  std::uint64_t h = 14695981039346656037ull;
  for (int g : genes) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(g));
    h *= 1099511628211ull;
  }
  return h;
}

bool EvalCache::lookup(std::span<const int> genes,
                       nsga2::Problem::Evaluation& out) {
  if (capacity_ == 0) return false;
  const std::uint64_t h = hash_genes(genes);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(h);
  if (it != index_.end() &&
      std::equal(genes.begin(), genes.end(), it->second->genes.begin(),
                 it->second->genes.end())) {
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->ev;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void EvalCache::insert(std::span<const int> genes,
                       const nsga2::Problem::Evaluation& ev) {
  if (capacity_ == 0) return;
  const std::uint64_t h = hash_genes(genes);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(h);
  if (it != index_.end()) {
    // Concurrent duplicate compute, or a hash collision: keep the newest
    // genome for this slot (exact gene compare in lookup keeps it correct).
    it->second->genes.assign(genes.begin(), genes.end());
    it->second->ev = ev;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{h, {genes.begin(), genes.end()}, ev});
  index_[h] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
  }
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pmlp::core
