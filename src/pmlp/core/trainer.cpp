#include "pmlp/core/trainer.hpp"

#include <algorithm>
#include <chrono>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/simd.hpp"

namespace pmlp::core {

namespace {

std::vector<EstimatedPoint> collect_front(
    const ChromosomeCodec& codec, const std::vector<nsga2::Individual>& front) {
  std::vector<EstimatedPoint> points;
  points.reserve(front.size());
  for (const auto& ind : front) {
    EstimatedPoint p;
    p.model = codec.decode(ind.genes);
    p.train_accuracy = 1.0 - ind.objectives[0];
    p.fa_area = static_cast<long>(ind.objectives[1]);
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const EstimatedPoint& a, const EstimatedPoint& b) {
              return a.fa_area < b.fa_area;
            });
  return points;
}

void fill_perf_counters(TrainingResult& result, const EvalCacheStats& stats) {
  result.evals_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.evaluations) / result.wall_seconds
          : 0.0;
  result.cache_hits = stats.hits;
  result.cache_hit_rate = stats.hit_rate();
  result.simd_isa = simd_isa_name(active_simd_isa());
  result.eval_block = CompiledNet::kBlockSamples;
}

}  // namespace

TrainingResult train_ga_axc(const mlp::Topology& topology,
                            const datasets::QuantizedDataset& train,
                            std::optional<mlp::QuantMlp> baseline,
                            const TrainerConfig& cfg) {
  ChromosomeCodec codec(topology, cfg.bits);
  HwAwareProblem problem(codec, train, std::move(baseline), cfg.problem);

  nsga2::Config ga_cfg = cfg.ga;
  ga_cfg.n_threads = cfg.n_threads;
  const nsga2::Result ga = nsga2::optimize(problem, ga_cfg);

  TrainingResult result;
  result.estimated_pareto = collect_front(problem.codec(), ga.pareto_front);
  result.evaluations = ga.evaluations;
  result.wall_seconds = ga.wall_seconds;
  result.baseline_train_accuracy = problem.baseline_accuracy();
  fill_perf_counters(result, problem.cache_stats());
  return result;
}

namespace {

/// Accuracy-only GA problem (Table III reference): the same chromosome but
/// with every mask gene pinned to all-ones and a constant area objective —
/// conventional GA training without approximation or hardware awareness.
class AccuracyOnlyProblem final : public nsga2::Problem {
 public:
  AccuracyOnlyProblem(ChromosomeCodec codec,
                      const datasets::QuantizedDataset& train,
                      int eval_cache_capacity)
      : codec_(std::move(codec)),
        train_(train),
        cache_(static_cast<std::size_t>(std::max(0, eval_cache_capacity))) {}

  [[nodiscard]] int n_genes() const override { return codec_.n_genes(); }

  [[nodiscard]] nsga2::GeneBounds bounds(int gene) const override {
    const auto b = codec_.bounds(gene);
    if (is_mask_gene(gene)) return {b.hi, b.hi};  // pinned: no pruning
    return b;
  }

  [[nodiscard]] std::unique_ptr<Workspace> make_workspace() const override {
    return std::make_unique<EvalWorkspace>();
  }

  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    return evaluate(genes, nullptr);
  }

  [[nodiscard]] Evaluation evaluate(std::span<const int> genes,
                                    Workspace* ws) const override {
    Evaluation ev;
    if (cache_.lookup(genes, ev)) return ev;
    std::vector<int> pinned(genes.begin(), genes.end());
    for (int g = 0; g < codec_.n_genes(); ++g) {
      if (is_mask_gene(g)) pinned[static_cast<std::size_t>(g)] = codec_.bounds(g).hi;
    }
    const CompiledNet compiled(codec_.decode(pinned));
    EvalWorkspace local;
    ev = {{1.0 - compiled.accuracy(train_, resolve_workspace(ws, local)), 0.0},
          0.0};
    cache_.insert(genes, ev);
    return ev;
  }

  [[nodiscard]] const ChromosomeCodec& codec() const { return codec_; }
  [[nodiscard]] EvalCacheStats cache_stats() const { return cache_.stats(); }

 private:
  /// Gene layout per neuron: n_in * (mask, sign, k) then bias. Mask genes
  /// are those at stride-3 offsets within the weight block.
  [[nodiscard]] bool is_mask_gene(int gene) const {
    int g = gene;
    const auto& topo = codec_.topology();
    for (int l = 0; l < topo.n_layers(); ++l) {
      const int n_in = topo.layers[static_cast<std::size_t>(l)];
      const int n_out = topo.layers[static_cast<std::size_t>(l) + 1];
      const int per_neuron = 3 * n_in + 1;
      const int layer_genes = per_neuron * n_out;
      if (g < layer_genes) {
        const int in_neuron = g % per_neuron;
        return in_neuron < 3 * n_in && in_neuron % 3 == 0;
      }
      g -= layer_genes;
    }
    return false;
  }

  ChromosomeCodec codec_;
  const datasets::QuantizedDataset& train_;
  mutable EvalCache cache_;
};

}  // namespace

TrainingResult train_ga_accuracy_only(const mlp::Topology& topology,
                                      const datasets::QuantizedDataset& train,
                                      const TrainerConfig& cfg) {
  ChromosomeCodec codec(topology, cfg.bits);
  AccuracyOnlyProblem problem(std::move(codec), train,
                              cfg.problem.eval_cache_capacity);
  nsga2::Config ga_cfg = cfg.ga;
  ga_cfg.n_threads = cfg.n_threads;
  const nsga2::Result ga = nsga2::optimize(problem, ga_cfg);

  TrainingResult result;
  result.estimated_pareto = collect_front(problem.codec(), ga.pareto_front);
  result.evaluations = ga.evaluations;
  result.wall_seconds = ga.wall_seconds;
  fill_perf_counters(result, problem.cache_stats());
  return result;
}

}  // namespace pmlp::core
