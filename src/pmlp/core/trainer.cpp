#include "pmlp/core/trainer.hpp"

#include <algorithm>
#include <chrono>

#include "pmlp/bitops/bitops.hpp"

namespace pmlp::core {

namespace {

std::vector<EstimatedPoint> collect_front(
    const ChromosomeCodec& codec, const std::vector<nsga2::Individual>& front) {
  std::vector<EstimatedPoint> points;
  points.reserve(front.size());
  for (const auto& ind : front) {
    EstimatedPoint p;
    p.model = codec.decode(ind.genes);
    p.train_accuracy = 1.0 - ind.objectives[0];
    p.fa_area = static_cast<long>(ind.objectives[1]);
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const EstimatedPoint& a, const EstimatedPoint& b) {
              return a.fa_area < b.fa_area;
            });
  return points;
}

}  // namespace

TrainingResult train_ga_axc(const mlp::Topology& topology,
                            const datasets::QuantizedDataset& train,
                            std::optional<mlp::QuantMlp> baseline,
                            const TrainerConfig& cfg) {
  ChromosomeCodec codec(topology, cfg.bits);
  HwAwareProblem problem(codec, train, std::move(baseline), cfg.problem);

  nsga2::Config ga_cfg = cfg.ga;
  ga_cfg.n_threads = cfg.n_threads;
  const nsga2::Result ga = nsga2::optimize(problem, ga_cfg);

  TrainingResult result;
  result.estimated_pareto = collect_front(problem.codec(), ga.pareto_front);
  result.evaluations = ga.evaluations;
  result.wall_seconds = ga.wall_seconds;
  result.baseline_train_accuracy = problem.baseline_accuracy();
  return result;
}

namespace {

/// Accuracy-only GA problem (Table III reference): the same chromosome but
/// with every mask gene pinned to all-ones and a constant area objective —
/// conventional GA training without approximation or hardware awareness.
class AccuracyOnlyProblem final : public nsga2::Problem {
 public:
  AccuracyOnlyProblem(ChromosomeCodec codec,
                      const datasets::QuantizedDataset& train)
      : codec_(std::move(codec)), train_(train) {}

  [[nodiscard]] int n_genes() const override { return codec_.n_genes(); }

  [[nodiscard]] nsga2::GeneBounds bounds(int gene) const override {
    const auto b = codec_.bounds(gene);
    if (is_mask_gene(gene)) return {b.hi, b.hi};  // pinned: no pruning
    return b;
  }

  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    std::vector<int> pinned(genes.begin(), genes.end());
    for (int g = 0; g < codec_.n_genes(); ++g) {
      if (is_mask_gene(g)) pinned[static_cast<std::size_t>(g)] = codec_.bounds(g).hi;
    }
    const ApproxMlp net = codec_.decode(pinned);
    return {{1.0 - accuracy(net, train_), 0.0}, 0.0};
  }

  [[nodiscard]] const ChromosomeCodec& codec() const { return codec_; }

 private:
  /// Gene layout per neuron: n_in * (mask, sign, k) then bias. Mask genes
  /// are those at stride-3 offsets within the weight block.
  [[nodiscard]] bool is_mask_gene(int gene) const {
    int g = gene;
    const auto& topo = codec_.topology();
    for (int l = 0; l < topo.n_layers(); ++l) {
      const int n_in = topo.layers[static_cast<std::size_t>(l)];
      const int n_out = topo.layers[static_cast<std::size_t>(l) + 1];
      const int per_neuron = 3 * n_in + 1;
      const int layer_genes = per_neuron * n_out;
      if (g < layer_genes) {
        const int in_neuron = g % per_neuron;
        return in_neuron < 3 * n_in && in_neuron % 3 == 0;
      }
      g -= layer_genes;
    }
    return false;
  }

  ChromosomeCodec codec_;
  const datasets::QuantizedDataset& train_;
};

}  // namespace

TrainingResult train_ga_accuracy_only(const mlp::Topology& topology,
                                      const datasets::QuantizedDataset& train,
                                      const TrainerConfig& cfg) {
  ChromosomeCodec codec(topology, cfg.bits);
  AccuracyOnlyProblem problem(std::move(codec), train);
  nsga2::Config ga_cfg = cfg.ga;
  ga_cfg.n_threads = cfg.n_threads;
  const nsga2::Result ga = nsga2::optimize(problem, ga_cfg);

  TrainingResult result;
  result.estimated_pareto = collect_front(problem.codec(), ga.pareto_front);
  result.evaluations = ga.evaluations;
  result.wall_seconds = ga.wall_seconds;
  return result;
}

}  // namespace pmlp::core
