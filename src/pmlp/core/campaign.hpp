// Multi-dataset campaign runner: one process drives N independent
// FlowEngines (dataset x seed x config grid) over a SINGLE shared ThreadPool
// with a global stage-aware scheduler, instead of one-flow-at-a-time
// binaries that each spawn their own worker forest.
//
// Scheduling model. Every flow is decomposed into its pipeline stages
// (FlowEngine::advance() runs exactly one pending stage); each stage is one
// task on the shared pool, and a completed stage re-enqueues the flow's next
// stage at the BACK of the pool's FIFO queue. With W workers that yields
// round-robin fairness across flows at stage granularity — the same
// global-fairness-over-independent-work-items shape as HOTS-style iterative
// schedulers — and bounds the campaign's thread count at W regardless of the
// number of flows. Inside the campaign every flow runs its stages serially
// (TrainerConfig::n_threads is forced to 1), so N flows never oversubscribe
// to N x n_threads workers; since every stage is bit-identical for any
// thread count, each flow's result is exactly what an independent run_flow()
// call would produce.
//
// Checkpointing. With a checkpoint_root, flow `name` persists under
// `<root>/<name>/` through the ordinary FlowEngine artifact formats, so a
// killed campaign restarts cheaply: a later run with the same specs reloads
// every completed stage bit-identically and recomputes only what is missing.
//
// Failure isolation. A flow that throws (corrupt checkpoint, bad artifact,
// ...) is recorded as failed with its error message; the remaining flows run
// to completion.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pmlp/core/flow_engine.hpp"

namespace pmlp::core {

/// One independent flow of the campaign grid.
struct CampaignFlowSpec {
  /// Unique within the campaign; also the checkpoint subdirectory name, so
  /// it must be a valid path component ("Cardio_s2").
  std::string name;
  std::string dataset;  ///< display name for reports
  datasets::Dataset data;
  mlp::Topology topology;
  /// Per-flow flow config. trainer.n_threads is ignored inside a campaign
  /// (flows share the campaign pool and run their stages serially); results
  /// are unchanged because every stage is bit-identical for any setting.
  FlowConfig config;
};

enum class CampaignFlowStatus {
  kPending,  ///< never started: the campaign never ran, or request_stop()
             ///< hit before any of the flow's stages executed
  kDone,
  kFailed,   ///< threw; see `error` — other flows are unaffected
  kStopped,  ///< request_stop() hit it mid-pipeline; checkpoint is resumable
};

[[nodiscard]] const char* campaign_flow_status_name(CampaignFlowStatus s);

/// Outcome of one flow (per-flow slice of the CampaignResult).
struct CampaignFlowOutcome {
  std::string name;
  std::string dataset;
  mlp::Topology topology;
  CampaignFlowStatus status = CampaignFlowStatus::kPending;
  std::string error;                 ///< non-empty iff kFailed
  std::optional<FlowResult> result;  ///< set iff kDone
  /// Wall span from the flow's first scheduled stage to its completion
  /// (includes time interleaved with other flows' stages).
  double wall_seconds = 0.0;
};

/// Per-stage aggregate over every flow of the campaign.
struct CampaignStageRollup {
  double wall_seconds = 0.0;  ///< summed stage walls (compute or reload)
  long items = 0;             ///< summed stage work counters
  int executed = 0;           ///< stage runs, reloads included
  int reused = 0;             ///< of which checkpoint reloads
};

struct CampaignResult {
  std::vector<CampaignFlowOutcome> flows;  ///< add_flow() order
  double wall_seconds = 0.0;       ///< campaign wall clock
  double stage_wall_seconds = 0.0;  ///< summed per-stage wall spans over all
                                    ///< flows (exceeds wall_seconds when
                                    ///< flows overlap workers)
  /// Indexed by static_cast<int>(FlowStage).
  std::array<CampaignStageRollup, kNumFlowStages> stages{};
  int n_threads = 1;  ///< actual shared-pool worker count
  int completed = 0;
  int failed = 0;
  int stopped = 0;
  int pending = 0;  ///< stopped before any stage ran
  [[nodiscard]] bool all_ok() const {
    return failed == 0 && stopped == 0 && pending == 0;
  }
  [[nodiscard]] double flows_per_second() const {
    return wall_seconds > 0.0 ? completed / wall_seconds : 0.0;
  }
};

/// Progress event: one stage of one flow completed (or reloaded).
struct CampaignProgress {
  std::size_t flow_index = 0;
  const std::string& flow_name;
  StageReport stage;
  int flows_done = 0;  ///< done + failed + stopped so far
  int flows_total = 0;
};
/// Invoked from worker threads, serialized by the runner (never
/// concurrently). Throwing from the callback fails the current flow.
using CampaignCallback = std::function<void(const CampaignProgress&)>;

struct CampaignConfig {
  /// Shared-pool worker count: 0 = all hardware threads, N = N workers.
  /// This is the campaign's TOTAL thread budget — flows never spawn pools
  /// of their own.
  int n_threads = 0;
  /// Per-flow checkpoint subdirectories live under this root (created on
  /// demand); empty disables checkpointing.
  std::string checkpoint_root;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// Register a flow; returns its index (reported order). Throws
  /// std::invalid_argument on an empty or duplicate name.
  std::size_t add_flow(CampaignFlowSpec spec);

  CampaignRunner& set_progress(CampaignCallback cb);

  /// Stop scheduling new stages (in-flight stages finish). Flows that have
  /// not completed are reported kStopped (or kPending if never started);
  /// their checkpoints remain resumable. Safe from any thread, including
  /// the progress callback.
  void request_stop();

  /// Run every flow to completion (or failure) and aggregate. One-shot:
  /// a runner cannot be reused after run() returns.
  [[nodiscard]] CampaignResult run();

 private:
  struct FlowState;

  void step(std::size_t index);
  void finish_flow(FlowState& st, CampaignFlowStatus status,
                   const std::string& error);

  CampaignConfig cfg_;
  CampaignCallback progress_;
  std::vector<std::unique_ptr<FlowState>> flows_;
  struct Impl;  ///< scheduler state, live during run()
  std::unique_ptr<Impl> impl_;
};

/// Machine-readable campaign report: totals, per-stage rollups and one full
/// flow report (write_flow_report_json) per completed flow.
void write_campaign_report_json(const CampaignResult& result,
                                std::ostream& os);

}  // namespace pmlp::core
