#include "pmlp/core/refine_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/eval_engine.hpp"

namespace pmlp::core {

RefineEngine::RefineEngine(ApproxMlp& net,
                           const datasets::QuantizedDataset& train)
    : net_(net),
      train_(train),
      n_samples_(train.size()),
      n_features_(train.n_features),
      n_layers_(static_cast<int>(net.layers().size())),
      act_max_((std::int64_t{1} << net.bits().act_bits) - 1) {
  if (train.n_features != net.topology().n_inputs()) {
    throw std::invalid_argument("RefineEngine: dataset/topology mismatch");
  }
  in0_.assign(train.codes.begin(), train.codes.end());
  width_.resize(static_cast<std::size_t>(n_layers_));
  shift_.resize(static_cast<std::size_t>(n_layers_));
  acc_.resize(static_cast<std::size_t>(n_layers_));
  act_.resize(static_cast<std::size_t>(n_layers_));
  int max_width = 0;
  for (int l = 0; l < n_layers_; ++l) {
    const ApproxLayer& layer = net.layers()[static_cast<std::size_t>(l)];
    width_[static_cast<std::size_t>(l)] = layer.n_out;
    shift_[static_cast<std::size_t>(l)] = layer.qrelu_shift;
    acc_[static_cast<std::size_t>(l)].resize(
        n_samples_ * static_cast<std::size_t>(layer.n_out));
    act_[static_cast<std::size_t>(l)].resize(
        n_samples_ * static_cast<std::size_t>(layer.n_out));
    max_width = std::max(max_width, layer.n_out);
  }
  pred_.resize(n_samples_);
  correct_.resize(n_samples_);
  changed_idx_.reserve(static_cast<std::size_t>(max_width));
  next_changed_idx_.reserve(static_cast<std::size_t>(max_width));
  changed_old_.reserve(static_cast<std::size_t>(max_width));
  next_changed_old_.reserve(static_cast<std::size_t>(max_width));

  rebuild();
  accuracy_before_ = accuracy();

  // Sync every shift to the current parameters — what the naive loop's
  // first update_qrelu_shifts() call would do. Arriving with stale shifts
  // is legal (accuracy_before_ already captured the stale view).
  bool stale = false;
  for (int l = 0; l < n_layers_; ++l) {
    const int s = net_.compute_qrelu_shift(l);
    if (s != shift_[static_cast<std::size_t>(l)]) {
      net_.layers()[static_cast<std::size_t>(l)].qrelu_shift = s;
      shift_[static_cast<std::size_t>(l)] = s;
      stale = true;
    }
  }
  if (stale) rebuild();
}

void RefineEngine::rebuild() {
  n_correct_ = 0;
  const int last = n_layers_ - 1;
  // Full-forward memo fill through the compiled engine's sample-blocked
  // kernels: the compiled walk performs the same adds in the same order as
  // the naive per-sample loop below, only skipping provably-zero terms, so
  // the scattered accumulators/activations are bit-identical (and the
  // refine-vs-naive oracle tests cover exactly this). The per-sample walk
  // stays for nets the int32 kernels can't prove overflow-safe.
  if (const CompiledNet compiled(net_);
      compiled.block_safe() && n_layers_ > 0) {
    for (std::size_t base = 0; base < n_samples_;
         base += CompiledNet::kBlockSamples) {
      const int b = static_cast<int>(std::min<std::size_t>(
          CompiledNet::kBlockSamples, n_samples_ - base));
      compiled.forward_block(
          train_.codes.data() + base * static_cast<std::size_t>(n_features_),
          b, block_ws_,
          [&](int l, const std::int32_t* accp, const std::int32_t* actp) {
            const int w = width_[static_cast<std::size_t>(l)];
            for (int o = 0; o < w; ++o) {
              const std::int32_t* ap = accp + static_cast<std::size_t>(o) * b;
              const std::int32_t* xp = actp + static_cast<std::size_t>(o) * b;
              for (int s = 0; s < b; ++s) {
                acc_ptr(l, base + static_cast<std::size_t>(s))[o] = ap[s];
                act_ptr(l, base + static_cast<std::size_t>(s))[o] = xp[s];
              }
            }
          });
    }
    const auto out_w =
        static_cast<std::size_t>(width_[static_cast<std::size_t>(last)]);
    for (std::size_t s = 0; s < n_samples_; ++s) {
      pred_[s] = argmax_first({act_ptr(last, s), out_w});
      correct_[s] = pred_[s] == train_.labels[s] ? 1 : 0;
      n_correct_ += correct_[s];
    }
    return;
  }
  for (std::size_t s = 0; s < n_samples_; ++s) {
    for (int l = 0; l < n_layers_; ++l) {
      const auto w = static_cast<std::size_t>(width_[static_cast<std::size_t>(l)]);
      const auto in_w = static_cast<std::size_t>(
          l == 0 ? n_features_ : width_[static_cast<std::size_t>(l) - 1]);
      net_.forward_layer(l, {in_ptr(l, s), in_w}, {acc_ptr(l, s), w},
                         {act_ptr(l, s), w});
    }
    const auto out_w = static_cast<std::size_t>(width_[static_cast<std::size_t>(last)]);
    pred_[s] = argmax_first({act_ptr(last, s), out_w});
    correct_[s] = pred_[s] == train_.labels[s] ? 1 : 0;
    n_correct_ += correct_[s];
  }
}

double RefineEngine::accuracy() const {
  if (n_samples_ == 0) return 0.0;
  return static_cast<double>(n_correct_) / static_cast<double>(n_samples_);
}

long RefineEngine::min_correct_for(double min_acc) const {
  const long s = static_cast<long>(n_samples_);
  // The naive accept test verbatim, as a predicate on the correct count.
  // Monotone in c (exact integer-to-double conversion, monotone division),
  // so the binary search finds the exact double-comparison boundary.
  const auto passes = [&](long c) {
    const double acc =
        s == 0 ? 0.0 : static_cast<double>(c) / static_cast<double>(s);
    return acc + 1e-12 >= min_acc;
  };
  if (!passes(s)) return s + 1;  // unreachable even with a perfect scan
  long lo = 0, hi = s;
  while (lo < hi) {
    const long mid = lo + (hi - lo) / 2;
    if (passes(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::int64_t RefineEngine::activate(const ApproxLayer& layer, int shift,
                                    std::int64_t acc) const {
  if (!layer.qrelu) return acc;
  return acc <= 0 ? 0 : std::min(acc >> shift, act_max_);
}

void RefineEngine::undo_writes() {
  for (auto it = undo_pred_.rbegin(); it != undo_pred_.rend(); ++it) {
    if (correct_[it->sample] != it->correct) {
      n_correct_ += it->correct ? 1 : -1;
    }
    pred_[it->sample] = it->pred;
    correct_[it->sample] = it->correct;
  }
  for (auto it = undo_slots_.rbegin(); it != undo_slots_.rend(); ++it) {
    *it->slot = it->old_value;
  }
}

template <typename DeltaFn>
std::optional<double> RefineEngine::trial(int l0, int o, bool shift_changed,
                                          DeltaFn&& acc_delta,
                                          double min_acc) {
  ++stats_.trials;
  undo_slots_.clear();
  undo_pred_.clear();
  const long allowed_wrong =
      static_cast<long>(n_samples_) - min_correct_for(min_acc);
  if (allowed_wrong < 0) {
    ++stats_.early_aborts;
    return std::nullopt;  // no scan can pass; nothing was written
  }

  const auto& layers = net_.layers();
  const ApproxLayer& edited = layers[static_cast<std::size_t>(l0)];
  const int w0 = width_[static_cast<std::size_t>(l0)];
  const int shift0 = shift_[static_cast<std::size_t>(l0)];
  const int last = n_layers_ - 1;
  long wrong = 0;

  for (std::size_t s = 0; s < n_samples_; ++s) {
    const std::int64_t d = acc_delta(s);
    if (d != 0 || shift_changed) {
      changed_idx_.clear();
      changed_old_.clear();
      std::int64_t* acc0 = acc_ptr(l0, s);
      std::int64_t* act0 = act_ptr(l0, s);
      if (d != 0) {
        undo_slots_.push_back({&acc0[o], acc0[o]});
        acc0[o] += d;
      }
      // A shift change re-activates the whole layer from the stored
      // accumulators (no connection walk); otherwise only neuron o moved.
      const int first = shift_changed ? 0 : o;
      const int stop = shift_changed ? w0 : o + 1;
      for (int n = first; n < stop; ++n) {
        const std::int64_t a = activate(edited, shift0, acc0[n]);
        if (a != act0[n]) {
          changed_idx_.push_back(n);
          changed_old_.push_back(act0[n]);
          undo_slots_.push_back({&act0[n], act0[n]});
          act0[n] = a;
        }
      }

      // Propagate the changed-activation wavefront; it dies at the first
      // layer whose outputs are all unchanged.
      for (int l = l0 + 1; l < n_layers_ && !changed_idx_.empty(); ++l) {
        const ApproxLayer& layer = layers[static_cast<std::size_t>(l)];
        const auto in_mask =
            static_cast<std::uint32_t>(bitops::low_mask(layer.input_bits));
        const int shift = shift_[static_cast<std::size_t>(l)];
        next_changed_idx_.clear();
        next_changed_old_.clear();
        std::int64_t* acc_l = acc_ptr(l, s);
        std::int64_t* act_l = act_ptr(l, s);
        const std::int64_t* in_now = act_ptr(l - 1, s);
        for (int p = 0; p < layer.n_out; ++p) {
          std::int64_t dacc = 0;
          for (std::size_t j = 0; j < changed_idx_.size(); ++j) {
            const int in_idx = changed_idx_[j];
            const ApproxConn& c = layer.conn(p, in_idx);
            const std::uint32_t m = c.mask & in_mask;
            const std::int64_t t_new = static_cast<std::int64_t>(
                static_cast<std::uint32_t>(in_now[in_idx]) & m)
                << c.exponent;
            const std::int64_t t_old = static_cast<std::int64_t>(
                static_cast<std::uint32_t>(changed_old_[j]) & m)
                << c.exponent;
            dacc += c.sign < 0 ? t_old - t_new : t_new - t_old;
          }
          if (dacc == 0) continue;
          undo_slots_.push_back({&acc_l[p], acc_l[p]});
          acc_l[p] += dacc;
          const std::int64_t a = activate(layer, shift, acc_l[p]);
          if (a != act_l[p]) {
            next_changed_idx_.push_back(p);
            next_changed_old_.push_back(act_l[p]);
            undo_slots_.push_back({&act_l[p], act_l[p]});
            act_l[p] = a;
          }
        }
        changed_idx_.swap(next_changed_idx_);
        changed_old_.swap(next_changed_old_);
      }

      // Non-empty here means the wavefront reached the output layer.
      if (!changed_idx_.empty()) {
        const auto out_w =
            static_cast<std::size_t>(width_[static_cast<std::size_t>(last)]);
        const int new_pred = argmax_first({act_ptr(last, s), out_w});
        if (new_pred != pred_[s]) {
          undo_pred_.push_back(
              {static_cast<std::uint32_t>(s), pred_[s], correct_[s]});
          pred_[s] = new_pred;
          const std::uint8_t now_correct =
              new_pred == train_.labels[s] ? 1 : 0;
          if (now_correct != correct_[s]) {
            n_correct_ += now_correct ? 1 : -1;
            correct_[s] = now_correct;
          }
        }
      }
    }
    wrong += correct_[s] ? 0 : 1;
    if (wrong > allowed_wrong) {
      undo_writes();
      ++stats_.early_aborts;
      return std::nullopt;
    }
  }
  // A completed scan always passes: the abort bound is exact, so surviving
  // all samples means correct >= min_correct.
  return accuracy();
}

std::optional<double> RefineEngine::try_clear_mask_bit(int l, int o, int i,
                                                       int bit,
                                                       double min_acc) {
  ApproxLayer& layer = net_.layers()[static_cast<std::size_t>(l)];
  ApproxConn& c = layer.conn(o, i);
  const std::uint32_t old_mask = c.mask;
  c.mask = static_cast<std::uint32_t>(bitops::set_bit(c.mask, bit, false));
  const int old_shift = layer.qrelu_shift;
  const int new_shift = net_.compute_qrelu_shift(l);
  layer.qrelu_shift = new_shift;
  shift_[static_cast<std::size_t>(l)] = new_shift;

  const std::uint32_t bit_mask = std::uint32_t{1} << bit;
  const int sign = c.sign;
  const int k = c.exponent;
  // Removing a retained bit removes sign * ((x & bit) << k) from the
  // accumulator; zero for every sample without that input bit set.
  const auto delta = [&](std::size_t s) -> std::int64_t {
    const std::int64_t t = static_cast<std::int64_t>(
        static_cast<std::uint32_t>(in_ptr(l, s)[i]) & bit_mask)
        << k;
    return sign < 0 ? t : -t;
  };
  const auto result = trial(l, o, new_shift != old_shift, delta, min_acc);
  if (!result) {
    c.mask = old_mask;
    layer.qrelu_shift = old_shift;
    shift_[static_cast<std::size_t>(l)] = old_shift;
  }
  return result;
}

std::optional<double> RefineEngine::try_set_bias(int l, int o,
                                                 std::int64_t candidate,
                                                 double min_acc) {
  ApproxLayer& layer = net_.layers()[static_cast<std::size_t>(l)];
  std::int64_t& bias = layer.biases[static_cast<std::size_t>(o)];
  const std::int64_t old_bias = bias;
  bias = candidate;
  const int old_shift = layer.qrelu_shift;
  const int new_shift = net_.compute_qrelu_shift(l);
  layer.qrelu_shift = new_shift;
  shift_[static_cast<std::size_t>(l)] = new_shift;

  const std::int64_t d = candidate - old_bias;
  const auto result =
      trial(l, o, new_shift != old_shift,
            [d](std::size_t) -> std::int64_t { return d; }, min_acc);
  if (!result) {
    bias = old_bias;
    layer.qrelu_shift = old_shift;
    shift_[static_cast<std::size_t>(l)] = old_shift;
  }
  return result;
}

}  // namespace pmlp::core
