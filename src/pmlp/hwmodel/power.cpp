#include "pmlp/hwmodel/power.hpp"

#include <stdexcept>

namespace pmlp::hwmodel {

const std::vector<PowerSource>& printed_power_sources() {
  static const std::vector<PowerSource> sources = {
      {"Printed energy harvester", 2.0},
      {"Blue Spark", 5.0},
      {"Zinergy", 15.0},
      {"Molex", 30.0},
  };
  return sources;
}

std::string_view zone_name(FeasibilityZone z) {
  switch (z) {
    case FeasibilityZone::kHarvester: return "Harvester";
    case FeasibilityZone::kBlueSpark5mW: return "Blue Spark 5mW";
    case FeasibilityZone::kZinergy15mW: return "Zinergy 15mW";
    case FeasibilityZone::kMolex30mW: return "Molex 30mW";
    case FeasibilityZone::kNoPowerSource: return "No adequate power supply";
    case FeasibilityZone::kUnsustainableArea: return "Unsustainable area";
  }
  throw std::invalid_argument("zone_name: bad zone");
}

FeasibilityZone classify_feasibility(double area_cm2, double power_mw,
                                     const FeasibilityPolicy& policy) {
  if (area_cm2 > policy.sustainable_area_cm2) {
    return FeasibilityZone::kUnsustainableArea;
  }
  if (power_mw <= policy.harvester_mw) return FeasibilityZone::kHarvester;
  if (power_mw <= 5.0) return FeasibilityZone::kBlueSpark5mW;
  if (power_mw <= 15.0) return FeasibilityZone::kZinergy15mW;
  if (power_mw <= 30.0) return FeasibilityZone::kMolex30mW;
  return FeasibilityZone::kNoPowerSource;
}

std::optional<PowerSource> smallest_adequate_source(double power_mw) {
  for (const auto& s : printed_power_sources()) {
    if (power_mw <= s.max_power_mw) return s;
  }
  return std::nullopt;
}

}  // namespace pmlp::hwmodel
