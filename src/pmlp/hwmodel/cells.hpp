// Printed EGFET standard-cell model. This module substitutes for the
// Synopsys-DC + printed-PDK flow of the paper (see DESIGN.md §2): every
// bespoke netlist is priced as (cell count) x (per-cell area/power) with the
// per-cell numbers calibrated so the exact bespoke baseline [2] reproduces
// the order of magnitude of Table I (~12 cm2 / ~40 mW for Breast Cancer).
//
// EGFET circuits run at <=1 V and a few Hz..kHz; at a 200 ms clock, power is
// dominated by static/short-circuit current, so per-cell power is modeled as
// voltage-dependent but frequency-independent.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace pmlp::hwmodel {

enum class CellType {
  kNot,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kHalfAdder,
  kFullAdder,
  kMux2,
  kDff,
  kCount  // sentinel
};

inline constexpr std::size_t kNumCellTypes =
    static_cast<std::size_t>(CellType::kCount);

[[nodiscard]] std::string_view cell_name(CellType t);

/// Physical parameters of one cell at the library's nominal supply.
struct CellParams {
  double area_mm2 = 0.0;
  double power_uw = 0.0;  ///< total (static-dominated) power at nominal V
  double delay_us = 0.0;  ///< propagation delay at nominal V
};

/// Immutable cell library at a fixed supply voltage.
class CellLibrary {
 public:
  /// The calibrated printed EGFET library at 1.0 V.
  static const CellLibrary& egfet_1v();

  /// Same library re-characterized at supply `v` (volts, in [0.6, 1.0]):
  /// area unchanged, power x v^3, delay x 1/v^2 (EGFET current collapses
  /// super-linearly below nominal; exponents chosen so 0.6 V yields the
  /// paper's ~4.5x extra power gain on top of the 1 V results).
  [[nodiscard]] CellLibrary at_voltage(double v) const;

  [[nodiscard]] const CellParams& cell(CellType t) const {
    return params_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] double supply_voltage() const { return supply_v_; }

  CellLibrary(std::array<CellParams, kNumCellTypes> params, double supply_v)
      : params_(params), supply_v_(supply_v) {}

 private:
  std::array<CellParams, kNumCellTypes> params_;
  double supply_v_ = 1.0;
};

/// Aggregate cost of a circuit (sums of cell costs + wiring overhead).
struct CircuitCost {
  double area_mm2 = 0.0;
  double power_uw = 0.0;
  double critical_delay_us = 0.0;
  long cell_count = 0;

  [[nodiscard]] double area_cm2() const { return area_mm2 / 100.0; }
  [[nodiscard]] double power_mw() const { return power_uw / 1000.0; }
};

}  // namespace pmlp::hwmodel
