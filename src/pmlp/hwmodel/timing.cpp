#include "pmlp/hwmodel/timing.hpp"

#include <cmath>
#include <stdexcept>

namespace pmlp::hwmodel {

namespace {

// Must mirror CellLibrary::at_voltage: delay x 1/v^2, power x v^3.
double delay_scale(double v) { return 1.0 / (v * v); }
double power_scale(double v) { return v * v * v; }

}  // namespace

bool meets_clock(const CircuitCost& cost_at_1v, double v, double clock_ms) {
  if (v < kEgfetMinVoltage - 1e-9 || v > kEgfetMaxVoltage + 1e-9) {
    throw std::invalid_argument("meets_clock: voltage outside EGFET range");
  }
  const double delay_us = cost_at_1v.critical_delay_us * delay_scale(v);
  return delay_us <= clock_ms * 1000.0;
}

double min_feasible_voltage(const CircuitCost& cost_at_1v, double clock_ms) {
  if (clock_ms <= 0.0) {
    throw std::invalid_argument("min_feasible_voltage: bad clock");
  }
  if (meets_clock(cost_at_1v, kEgfetMinVoltage, clock_ms)) {
    return kEgfetMinVoltage;
  }
  if (!meets_clock(cost_at_1v, kEgfetMaxVoltage, clock_ms)) {
    // Even nominal supply misses timing: report nominal (caller decides).
    return kEgfetMaxVoltage;
  }
  double lo = kEgfetMinVoltage;  // fails
  double hi = kEgfetMaxVoltage;  // meets
  while (hi - lo > 0.005) {
    const double mid = 0.5 * (lo + hi);
    if (meets_clock(cost_at_1v, mid, clock_ms)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

VoltageScalingResult scale_to_min_voltage(const CircuitCost& cost_at_1v,
                                          double clock_ms) {
  VoltageScalingResult r;
  r.voltage = min_feasible_voltage(cost_at_1v, clock_ms);
  r.power_uw = cost_at_1v.power_uw * power_scale(r.voltage);
  r.delay_us = cost_at_1v.critical_delay_us * delay_scale(r.voltage);
  r.slack_ms = clock_ms - r.delay_us / 1000.0;
  return r;
}

}  // namespace pmlp::hwmodel
