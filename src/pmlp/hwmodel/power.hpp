// Printed power sources and the Fig. 5 feasibility classification: which
// printed battery / energy harvester (if any) can drive a circuit, and
// whether its area is sustainable for printed applications.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pmlp/hwmodel/cells.hpp"

namespace pmlp::hwmodel {

/// The printed power sources the paper evaluates against (§V-C).
struct PowerSource {
  std::string name;
  double max_power_mw = 0.0;
};

/// Sources in ascending capacity: printed energy harvester, Blue Spark 5 mW,
/// Zinergy 15 mW, Molex 30 mW.
[[nodiscard]] const std::vector<PowerSource>& printed_power_sources();

/// Fig. 5 zone thresholds.
struct FeasibilityPolicy {
  double sustainable_area_cm2 = 20.0;  ///< beyond this: "unsustainable area"
  double harvester_mw = 2.0;           ///< printed energy-harvester budget
};

enum class FeasibilityZone {
  kHarvester,       ///< self-powered (green zone)
  kBlueSpark5mW,
  kZinergy15mW,
  kMolex30mW,
  kNoPowerSource,   ///< no adequate printed supply
  kUnsustainableArea,
};

[[nodiscard]] std::string_view zone_name(FeasibilityZone z);

/// Classify a circuit by area and power draw (paper Fig. 5).
[[nodiscard]] FeasibilityZone classify_feasibility(
    double area_cm2, double power_mw, const FeasibilityPolicy& policy = {});

/// Smallest printed source able to power `power_mw`, if any.
[[nodiscard]] std::optional<PowerSource> smallest_adequate_source(
    double power_mw);

}  // namespace pmlp::hwmodel
