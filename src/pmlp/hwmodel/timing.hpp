// Timing/voltage co-analysis for §V-C of the paper: approximate MLPs are
// *faster* than their exact baselines (shorter critical paths), so their
// supply can be scaled down until the critical path just meets the clock —
// or the baseline's latency — harvesting additional power savings.
#pragma once

#include "pmlp/hwmodel/cells.hpp"

namespace pmlp::hwmodel {

inline constexpr double kEgfetMinVoltage = 0.6;  ///< [20]: EGFET floor
inline constexpr double kEgfetMaxVoltage = 1.0;

/// True if the circuit meets the clock at supply `v` (delay scales as the
/// library's at_voltage model).
[[nodiscard]] bool meets_clock(const CircuitCost& cost_at_1v, double v,
                               double clock_ms);

/// Lowest EGFET-supported supply at which `cost_at_1v`'s critical path
/// still fits `clock_ms` (binary search over the delay scaling, resolution
/// 0.005 V). Returns kEgfetMinVoltage when even the floor meets timing —
/// the common case at printed 200 ms clocks.
[[nodiscard]] double min_feasible_voltage(const CircuitCost& cost_at_1v,
                                          double clock_ms);

/// §V-C headline: power of the circuit when the supply is dropped to the
/// minimum feasible voltage for `clock_ms` (power scales as the library's
/// at_voltage model: ~V^3).
struct VoltageScalingResult {
  double voltage = kEgfetMaxVoltage;
  double power_uw = 0.0;
  double delay_us = 0.0;
  double slack_ms = 0.0;  ///< clock - scaled delay
};
[[nodiscard]] VoltageScalingResult scale_to_min_voltage(
    const CircuitCost& cost_at_1v, double clock_ms);

}  // namespace pmlp::hwmodel
