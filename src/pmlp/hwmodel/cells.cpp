#include "pmlp/hwmodel/cells.hpp"

#include <cmath>
#include <stdexcept>

namespace pmlp::hwmodel {

std::string_view cell_name(CellType t) {
  switch (t) {
    case CellType::kNot: return "NOT";
    case CellType::kBuf: return "BUF";
    case CellType::kNand2: return "NAND2";
    case CellType::kNor2: return "NOR2";
    case CellType::kAnd2: return "AND2";
    case CellType::kOr2: return "OR2";
    case CellType::kXor2: return "XOR2";
    case CellType::kXnor2: return "XNOR2";
    case CellType::kHalfAdder: return "HA";
    case CellType::kFullAdder: return "FA";
    case CellType::kMux2: return "MUX2";
    case CellType::kDff: return "DFF";
    case CellType::kCount: break;
  }
  throw std::invalid_argument("cell_name: bad cell type");
}

const CellLibrary& CellLibrary::egfet_1v() {
  // Calibration note (DESIGN.md §2): printed EGFET gates are hundreds of
  // micrometers on a side and draw microwatts of mostly-static current.
  // These numbers were fitted so that the exact bespoke 8-bit-weight MLPs
  // of Table I land near the published ~12-67 cm2 / 40-213 mW range; the
  // *relative* costs between cell types follow transistor counts.
  static const CellLibrary lib(
      {{
          /*kNot*/ {0.11, 3.9, 0.35},
          /*kBuf*/ {0.15, 5.2, 0.45},
          /*kNand2*/ {0.20, 7.2, 0.50},
          /*kNor2*/ {0.20, 7.2, 0.50},
          /*kAnd2*/ {0.26, 9.1, 0.70},
          /*kOr2*/ {0.26, 9.1, 0.70},
          /*kXor2*/ {0.42, 15.0, 0.95},
          /*kXnor2*/ {0.42, 15.0, 0.95},
          /*kHalfAdder*/ {0.68, 24.0, 1.10},
          /*kFullAdder*/ {1.90, 71.5, 1.60},
          /*kMux2*/ {0.45, 14.3, 0.80},
          /*kDff*/ {1.10, 31.2, 1.50},
      }},
      1.0);
  return lib;
}

CellLibrary CellLibrary::at_voltage(double v) const {
  if (v < 0.55 || v > 1.05) {
    throw std::invalid_argument(
        "CellLibrary::at_voltage: EGFET operates in [0.6, 1.0] V");
  }
  const double ratio = v / supply_v_;
  const double power_scale = std::pow(ratio, 3.0);
  const double delay_scale = 1.0 / (ratio * ratio);
  std::array<CellParams, kNumCellTypes> scaled{};
  for (std::size_t i = 0; i < kNumCellTypes; ++i) {
    scaled[i].area_mm2 = params_[i].area_mm2;
    scaled[i].power_uw = params_[i].power_uw * power_scale;
    scaled[i].delay_us = params_[i].delay_us * delay_scale;
  }
  return CellLibrary(scaled, v);
}

}  // namespace pmlp::hwmodel
