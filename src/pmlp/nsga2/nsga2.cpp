#include "pmlp/nsga2/nsga2.hpp"

#include <algorithm>

#include "pmlp/core/thread_pool.hpp"
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>

namespace pmlp::nsga2 {

bool dominates(const Individual& a, const Individual& b) {
  const bool a_feasible = a.constraint_violation <= 0.0;
  const bool b_feasible = b.constraint_violation <= 0.0;
  if (a_feasible != b_feasible) return a_feasible;
  if (!a_feasible) return a.constraint_violation < b.constraint_violation;

  bool strictly_better = false;
  for (std::size_t m = 0; m < a.objectives.size(); ++m) {
    if (a.objectives[m] > b.objectives[m]) return false;
    if (a.objectives[m] < b.objectives[m]) strictly_better = true;
  }
  return strictly_better;
}

int fast_non_dominated_sort(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<int> dominate_count(n, 0);
  std::vector<std::size_t> current;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(pop[i], pop[j])) {
        dominated[i].push_back(j);
        ++dominate_count[j];
      } else if (dominates(pop[j], pop[i])) {
        dominated[j].push_back(i);
        ++dominate_count[i];
      }
    }
    if (dominate_count[i] == 0) {
      pop[i].rank = 0;
      current.push_back(i);
    }
  }

  int rank = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated[i]) {
        if (--dominate_count[j] == 0) {
          pop[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    current = std::move(next);
    ++rank;
  }
  return rank;
}

void assign_crowding_distances(std::vector<Individual>& pop) {
  if (pop.empty()) return;
  const std::size_t n_obj = pop.front().objectives.size();
  for (auto& ind : pop) ind.crowding = 0.0;

  int max_rank = 0;
  for (const auto& ind : pop) max_rank = std::max(max_rank, ind.rank);

  std::vector<std::size_t> idx;
  for (int r = 0; r <= max_rank; ++r) {
    idx.clear();
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (pop[i].rank == r) idx.push_back(i);
    }
    if (idx.empty()) continue;
    for (std::size_t m = 0; m < n_obj; ++m) {
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return pop[a].objectives[m] < pop[b].objectives[m];
      });
      const double lo = pop[idx.front()].objectives[m];
      const double hi = pop[idx.back()].objectives[m];
      pop[idx.front()].crowding = std::numeric_limits<double>::infinity();
      pop[idx.back()].crowding = std::numeric_limits<double>::infinity();
      if (hi <= lo) continue;
      for (std::size_t k = 1; k + 1 < idx.size(); ++k) {
        pop[idx[k]].crowding += (pop[idx[k + 1]].objectives[m] -
                                 pop[idx[k - 1]].objectives[m]) /
                                (hi - lo);
      }
    }
  }
}

std::vector<Individual> extract_pareto_front(std::vector<Individual> pop) {
  fast_non_dominated_sort(pop);
  const bool any_feasible =
      std::any_of(pop.begin(), pop.end(), [](const Individual& i) {
        return i.constraint_violation <= 0.0;
      });
  std::vector<Individual> front;
  for (auto& ind : pop) {
    // With constraint domination, rank 0 is feasible whenever anything is;
    // if nothing is feasible yet, return the least-violating front instead
    // of an empty result.
    if (ind.rank == 0 &&
        (ind.constraint_violation <= 0.0 || !any_feasible)) {
      front.push_back(std::move(ind));
    }
  }
  std::sort(front.begin(), front.end(),
            [](const Individual& a, const Individual& b) {
              return a.objectives < b.objectives;
            });
  front.erase(std::unique(front.begin(), front.end(),
                          [](const Individual& a, const Individual& b) {
                            return a.objectives == b.objectives;
                          }),
              front.end());
  return front;
}

PopulationEvaluator::PopulationEvaluator(const Problem& problem, int n_threads)
    : problem_(problem), n_threads_(core::resolve_n_threads(n_threads)) {
  if (n_threads_ > 1) {
    pool_ = std::make_unique<core::ThreadPool>(n_threads_);
  }
  workspaces_.reserve(static_cast<std::size_t>(n_threads_));
  for (int k = 0; k < n_threads_; ++k) {
    workspaces_.push_back(problem.make_workspace());
  }
}

PopulationEvaluator::~PopulationEvaluator() = default;

long PopulationEvaluator::evaluate(std::span<Individual> pop) {
  auto work = [this, pop](std::size_t chunk, std::size_t begin,
                          std::size_t end) {
    Problem::Workspace* ws = workspaces_[chunk].get();
    for (std::size_t i = begin; i < end; ++i) {
      auto ev = problem_.evaluate(pop[i].genes, ws);
      pop[i].objectives = std::move(ev.objectives);
      pop[i].constraint_violation = ev.constraint_violation;
    }
  };
  if (pool_) {
    // A chromosome already evaluates as whole sample blocks through the
    // batched engine, so a chunk must hold several chromosomes for dispatch
    // to amortize: never split below 2 per worker — at bench-scale
    // populations a lone-chromosome chunk costs more in wakeup/join than
    // its evaluation (often a single cache hit) saves.
    pool_->parallel_for(pop.size(), work, /*min_per_chunk=*/2);
  } else {
    work(0, 0, pop.size());
  }
  return static_cast<long>(pop.size());
}

namespace {

/// Binary tournament by (rank, crowding) — the canonical crowded comparison.
const Individual& tournament(const std::vector<Individual>& pop,
                             std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> pick(0, pop.size() - 1);
  const Individual& a = pop[pick(rng)];
  const Individual& b = pop[pick(rng)];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

void crossover_genes(std::vector<int>& c1, std::vector<int>& c2,
                     CrossoverKind kind, std::mt19937_64& rng) {
  const std::size_t n = c1.size();
  if (n < 2) return;
  std::uniform_int_distribution<std::size_t> pos(1, n - 1);
  switch (kind) {
    case CrossoverKind::kUniform: {
      std::bernoulli_distribution coin(0.5);
      for (std::size_t g = 0; g < n; ++g) {
        if (coin(rng)) std::swap(c1[g], c2[g]);
      }
      break;
    }
    case CrossoverKind::kOnePoint: {
      const std::size_t cut = pos(rng);
      for (std::size_t g = cut; g < n; ++g) std::swap(c1[g], c2[g]);
      break;
    }
    case CrossoverKind::kTwoPoint: {
      std::size_t p1 = pos(rng);
      std::size_t p2 = pos(rng);
      if (p1 > p2) std::swap(p1, p2);
      for (std::size_t g = p1; g < p2; ++g) std::swap(c1[g], c2[g]);
      break;
    }
  }
}

void mutate_genes(std::vector<int>& genes, const Problem& problem,
                  const Config& cfg, std::mt19937_64& rng) {
  const double rate = cfg.per_gene_rate > 0.0
                          ? cfg.per_gene_rate
                          : 1.0 / static_cast<double>(genes.size());
  std::bernoulli_distribution hit(rate);
  std::bernoulli_distribution creep(cfg.creep_fraction);
  for (std::size_t g = 0; g < genes.size(); ++g) {
    if (!hit(rng)) continue;
    const GeneBounds b = problem.bounds(static_cast<int>(g));
    // Domain-aware mutation takes precedence when the problem provides one.
    if (auto custom = problem.mutate_gene(static_cast<int>(g), genes[g], rng)) {
      genes[g] = std::clamp(*custom, b.lo, b.hi);
      continue;
    }
    if (b.hi <= b.lo) {
      genes[g] = b.lo;
      continue;
    }
    if (creep(rng)) {
      std::uniform_int_distribution<int> step(1, cfg.creep_step);
      const int delta = (rng() & 1u) ? step(rng) : -step(rng);
      genes[g] = std::clamp(genes[g] + delta, b.lo, b.hi);
    } else {
      std::uniform_int_distribution<int> reset(b.lo, b.hi);
      genes[g] = reset(rng);
    }
  }
}

std::vector<int> random_genes(const Problem& problem, std::mt19937_64& rng) {
  std::vector<int> genes(static_cast<std::size_t>(problem.n_genes()));
  for (std::size_t g = 0; g < genes.size(); ++g) {
    const GeneBounds b = problem.bounds(static_cast<int>(g));
    std::uniform_int_distribution<int> pick(b.lo, b.hi);
    genes[g] = pick(rng);
  }
  return genes;
}

/// Elitist environmental selection: best `size` by (rank, crowding).
std::vector<Individual> select_survivors(std::vector<Individual> merged,
                                         std::size_t size) {
  fast_non_dominated_sort(merged);
  assign_crowding_distances(merged);
  std::sort(merged.begin(), merged.end(),
            [](const Individual& a, const Individual& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.crowding > b.crowding;
            });
  merged.resize(size);
  return merged;
}

}  // namespace

Result optimize(const Problem& problem, const Config& cfg) {
  if (cfg.population < 4 || cfg.population % 2 != 0) {
    throw std::invalid_argument("nsga2: population must be even and >= 4");
  }
  if (problem.n_genes() <= 0) {
    throw std::invalid_argument("nsga2: problem has no genes");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::mt19937_64 rng(cfg.seed);
  Result result;
  PopulationEvaluator evaluator(problem, cfg.n_threads);

  std::vector<Individual> pop;
  int start_generation = 0;
  if (cfg.resume && !cfg.resume->population.empty()) {
    // --- Resume from a generation checkpoint: the state IS the evolution
    // (survivor order, ranks/crowding from the merged sort, RNG stream),
    // so restoring it verbatim reproduces the uninterrupted run exactly.
    if (static_cast<int>(cfg.resume->population.size()) != cfg.population) {
      throw std::invalid_argument(
          "nsga2: resume state population size mismatch");
    }
    if (cfg.resume->next_generation < 0 ||
        cfg.resume->next_generation > cfg.generations) {
      throw std::invalid_argument("nsga2: resume state generation out of "
                                  "range");
    }
    pop = cfg.resume->population;
    std::istringstream rng_in(cfg.resume->rng);
    rng_in >> rng;
    if (!rng_in) {
      throw std::invalid_argument("nsga2: resume state RNG does not parse");
    }
    result.evaluations = cfg.resume->evaluations;
    start_generation = cfg.resume->next_generation;
  } else {
    // --- Initial population: optional seeds + random fill.
    pop.reserve(static_cast<std::size_t>(cfg.population));
    for (auto& seed_genes : problem.seed_individuals(cfg.population)) {
      if (static_cast<int>(pop.size()) >= cfg.population) break;
      Individual ind;
      ind.genes = std::move(seed_genes);
      ind.genes.resize(static_cast<std::size_t>(problem.n_genes()), 0);
      for (std::size_t g = 0; g < ind.genes.size(); ++g) {
        const GeneBounds b = problem.bounds(static_cast<int>(g));
        ind.genes[g] = std::clamp(ind.genes[g], b.lo, b.hi);
      }
      pop.push_back(std::move(ind));
    }
    while (static_cast<int>(pop.size()) < cfg.population) {
      Individual ind;
      ind.genes = random_genes(problem, rng);
      pop.push_back(std::move(ind));
    }
    result.evaluations += evaluator.evaluate(pop);
    fast_non_dominated_sort(pop);
    assign_crowding_distances(pop);
  }

  std::bernoulli_distribution do_crossover(cfg.crossover_prob);
  std::bernoulli_distribution do_mutation(cfg.mutation_prob);

  for (int gen = start_generation; gen < cfg.generations; ++gen) {
    // --- Variation: tournament parents -> crossover -> mutation.
    std::vector<Individual> offspring;
    offspring.reserve(static_cast<std::size_t>(cfg.population));
    while (static_cast<int>(offspring.size()) < cfg.population) {
      std::vector<int> c1 = tournament(pop, rng).genes;
      std::vector<int> c2 = tournament(pop, rng).genes;
      if (do_crossover(rng)) crossover_genes(c1, c2, cfg.crossover, rng);
      if (do_mutation(rng)) mutate_genes(c1, problem, cfg, rng);
      if (do_mutation(rng)) mutate_genes(c2, problem, cfg, rng);
      Individual i1, i2;
      i1.genes = std::move(c1);
      i2.genes = std::move(c2);
      offspring.push_back(std::move(i1));
      offspring.push_back(std::move(i2));
    }
    result.evaluations += evaluator.evaluate(offspring);

    // --- Elitist survivor selection over parents + offspring.
    std::vector<Individual> merged = std::move(pop);
    merged.insert(merged.end(), std::make_move_iterator(offspring.begin()),
                  std::make_move_iterator(offspring.end()));
    pop = select_survivors(std::move(merged),
                           static_cast<std::size_t>(cfg.population));
    if (cfg.on_generation) cfg.on_generation(gen, pop);
    if (cfg.checkpoint_every > 0 && cfg.on_checkpoint &&
        gen + 1 < cfg.generations &&
        (gen + 1) % cfg.checkpoint_every == 0) {
      GenerationState state;
      state.next_generation = gen + 1;
      state.evaluations = result.evaluations;
      std::ostringstream rng_out;
      rng_out << rng;
      state.rng = rng_out.str();
      state.population = pop;
      cfg.on_checkpoint(state);
    }
  }

  result.pareto_front = extract_pareto_front(pop);
  result.population = std::move(pop);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace pmlp::nsga2
