// Random-search baseline over the same Problem interface as NSGA-II: draws
// uniform random genomes (plus the problem's seeds), evaluates the same
// number of candidates, and keeps the non-dominated feasible set. Exists to
// quantify how much the evolutionary machinery (selection, crossover,
// domain mutation) actually contributes — see bench_ablation.
#pragma once

#include "pmlp/nsga2/nsga2.hpp"

namespace pmlp::nsga2 {

struct RandomSearchConfig {
  long evaluations = 10000;
  std::uint64_t seed = 1;
  /// 0 = all hardware threads, 1 = serial, N = N workers. Candidate genomes
  /// are drawn serially from cfg.seed before evaluation, so results are
  /// bit-identical across all settings.
  int n_threads = 0;
};

/// Evaluate `evaluations` random candidates; returns the feasible
/// non-dominated subset (same Result contract as optimize()).
[[nodiscard]] Result random_search(const Problem& problem,
                                   const RandomSearchConfig& cfg);

}  // namespace pmlp::nsga2
