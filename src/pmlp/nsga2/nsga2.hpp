// NSGA-II (Deb et al., 2002) over integer genomes, as the paper's training
// engine (§IV-A): fast non-dominated sorting, crowding distance, binary
// tournament, uniform/k-point crossover and reset/creep mutation, with
// constraint domination for the paper's 10% accuracy-loss bound.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <vector>

namespace pmlp::core {
class ThreadPool;  // pmlp/core/thread_pool.hpp — only nsga2.cpp needs it
}

namespace pmlp::nsga2 {

/// Inclusive integer bounds of one gene.
struct GeneBounds {
  int lo = 0;
  int hi = 0;
};

/// A candidate solution with its evaluation and NSGA-II bookkeeping.
struct Individual {
  std::vector<int> genes;
  std::vector<double> objectives;       ///< minimized
  double constraint_violation = 0.0;    ///< 0 = feasible, >0 = infeasible
  int rank = -1;                        ///< 0 = non-dominated front
  double crowding = 0.0;
};

/// Problem interface. evaluate() must be thread-safe (const).
class Problem {
 public:
  virtual ~Problem() = default;

  [[nodiscard]] virtual int n_genes() const = 0;
  [[nodiscard]] virtual GeneBounds bounds(int gene) const = 0;
  [[nodiscard]] virtual int n_objectives() const { return 2; }

  struct Evaluation {
    std::vector<double> objectives;
    double constraint_violation = 0.0;
  };
  [[nodiscard]] virtual Evaluation evaluate(std::span<const int> genes) const = 0;

  /// Opaque per-worker scratch state for evaluate(). PopulationEvaluator
  /// creates one per worker and keeps it alive across generations, so a
  /// derived workspace can hold reusable buffers (see core::EvalWorkspace).
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };
  /// Create a fresh per-worker workspace; nullptr (the default) means the
  /// problem keeps no per-worker state.
  [[nodiscard]] virtual std::unique_ptr<Workspace> make_workspace() const {
    return nullptr;
  }
  /// Workspace-aware evaluation hot path. `ws` is the calling worker's own
  /// object from make_workspace() (nullptr for workspace-free problems or
  /// direct calls). Must return exactly what evaluate(genes) returns; the
  /// default forwards to it.
  [[nodiscard]] virtual Evaluation evaluate(std::span<const int> genes,
                                            Workspace* /*ws*/) const {
    return evaluate(genes);
  }

  /// Optional seed individuals for the initial population (e.g. the paper's
  /// ~10% doping with nearly non-approximate solutions). At most `max` are
  /// used; out-of-bounds genes are clamped.
  [[nodiscard]] virtual std::vector<std::vector<int>> seed_individuals(
      int /*max*/) const {
    return {};
  }

  /// Optional domain-aware mutation of a single gene. Return the new value,
  /// or std::nullopt to let the engine apply its generic reset/creep
  /// mutation. Must be thread-compatible (called under the engine's RNG).
  [[nodiscard]] virtual std::optional<int> mutate_gene(
      int /*gene*/, int /*current*/, std::mt19937_64& /*rng*/) const {
    return std::nullopt;
  }
};

enum class CrossoverKind { kUniform, kOnePoint, kTwoPoint };

/// Exact evolution state at a generation boundary: everything optimize()
/// needs to continue bit-identically from generation `next_generation`.
/// The population carries the ranks/crowding assigned by the survivor
/// selection over the MERGED parent+offspring set (they drive the next
/// tournament and are NOT recomputable from the survivors alone), in the
/// exact survivor order (the selection sort is unstable, so order is state).
struct GenerationState {
  int next_generation = 0;  ///< first generation still to run
  long evaluations = 0;     ///< evaluations performed so far
  std::string rng;          ///< mt19937_64 stream serialization
  std::vector<Individual> population;
};

struct Config {
  int population = 100;
  int generations = 100;
  /// Probability a selected pair undergoes crossover (paper: 0.7).
  double crossover_prob = 0.7;
  /// Probability an offspring undergoes mutation (paper: 0.2).
  double mutation_prob = 0.2;
  /// Per-gene mutation rate once an offspring mutates; 0 selects 1/n_genes.
  double per_gene_rate = 0.0;
  /// Fraction of mutations that creep (+/- small step) instead of resetting
  /// the gene uniformly — creep helps fine-tuning discrete exponents/biases.
  double creep_fraction = 0.5;
  int creep_step = 1;
  CrossoverKind crossover = CrossoverKind::kUniform;
  std::uint64_t seed = 1;
  /// Parallel fitness evaluation: 0 = all hardware threads (the default),
  /// 1 = serial, N = N pool workers. Results are bit-identical across all
  /// settings — only evaluate() runs off the main thread; selection and
  /// mutation RNG stay serial.
  int n_threads = 0;
  /// Called after each generation with the sorted parent population.
  std::function<void(int generation, const std::vector<Individual>&)>
      on_generation;
  /// Generation-level checkpointing: every `checkpoint_every` generations
  /// (0 = off) on_checkpoint receives the exact GenerationState; persisting
  /// it lets a killed run resume bit-identically from the last block via
  /// `resume`. Never invoked after the final generation (the caller
  /// persists the finished result itself). Both knobs are bit-neutral:
  /// they never perturb the RNG stream or the population.
  int checkpoint_every = 0;
  std::function<void(const GenerationState&)> on_checkpoint;
  /// When set (and its population is non-empty), evolution continues from
  /// this state instead of a fresh population: the initial evaluation and
  /// sort are skipped and the loop starts at resume->next_generation. The
  /// result is bit-identical to the uninterrupted run that produced the
  /// state. Throws std::invalid_argument on a state whose population size
  /// does not match cfg.population or whose RNG blob does not parse.
  std::shared_ptr<const GenerationState> resume;
};

struct Result {
  std::vector<Individual> population;    ///< final parents, sorted by rank
  std::vector<Individual> pareto_front;  ///< feasible rank-0 individuals
  long evaluations = 0;
  double wall_seconds = 0.0;
};

/// Batched population evaluator: scores individuals against one Problem on
/// a persistent worker pool (created once, reused across generations). Each
/// result is written into its individual's own slot under a static index
/// partition, so the outcome is bit-identical for any thread count. Every
/// worker owns one Problem::Workspace for the evaluator's lifetime, so
/// workspace-aware problems evaluate allocation-free.
class PopulationEvaluator {
 public:
  /// n_threads: 0 = all hardware threads, 1 = serial (no pool), N = N workers.
  PopulationEvaluator(const Problem& problem, int n_threads);
  ~PopulationEvaluator();

  PopulationEvaluator(const PopulationEvaluator&) = delete;
  PopulationEvaluator& operator=(const PopulationEvaluator&) = delete;

  /// Fill objectives/constraint_violation for every individual; returns the
  /// number of evaluations performed (pop.size()).
  long evaluate(std::span<Individual> pop);

  /// Worker count actually in use (1 when running serially).
  [[nodiscard]] int n_threads() const { return n_threads_; }

 private:
  const Problem& problem_;
  int n_threads_;
  std::unique_ptr<core::ThreadPool> pool_;  ///< null when serial
  /// One workspace per worker; entries may be null (workspace-free problem).
  std::vector<std::unique_ptr<Problem::Workspace>> workspaces_;
};

/// Run NSGA-II. Deterministic in cfg.seed (also with n_threads != 1).
[[nodiscard]] Result optimize(const Problem& problem, const Config& cfg);

// --- Internals exposed for unit testing -----------------------------------

/// Constraint domination (Deb): feasible beats infeasible; two infeasible
/// compare by violation; two feasible by Pareto dominance on objectives.
[[nodiscard]] bool dominates(const Individual& a, const Individual& b);

/// Assign ranks (fronts) in place; returns the number of fronts.
int fast_non_dominated_sort(std::vector<Individual>& pop);

/// Assign crowding distances within each rank, in place.
void assign_crowding_distances(std::vector<Individual>& pop);

/// Deduplicated feasible rank-0 subset (by objective vector).
[[nodiscard]] std::vector<Individual> extract_pareto_front(
    std::vector<Individual> pop);

}  // namespace pmlp::nsga2
