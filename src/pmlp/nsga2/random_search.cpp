#include "pmlp/nsga2/random_search.hpp"

#include <algorithm>
#include <chrono>
#include <random>

namespace pmlp::nsga2 {

Result random_search(const Problem& problem, const RandomSearchConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  std::mt19937_64 rng(cfg.seed);

  std::vector<Individual> pool;
  pool.reserve(static_cast<std::size_t>(cfg.evaluations));
  for (auto& genes : problem.seed_individuals(
           static_cast<int>(std::min<long>(cfg.evaluations, 1000)))) {
    Individual ind;
    ind.genes = std::move(genes);
    ind.genes.resize(static_cast<std::size_t>(problem.n_genes()), 0);
    for (std::size_t g = 0; g < ind.genes.size(); ++g) {
      const GeneBounds b = problem.bounds(static_cast<int>(g));
      ind.genes[g] = std::clamp(ind.genes[g], b.lo, b.hi);
    }
    pool.push_back(std::move(ind));
  }
  while (static_cast<long>(pool.size()) < cfg.evaluations) {
    Individual ind;
    ind.genes.resize(static_cast<std::size_t>(problem.n_genes()));
    for (std::size_t g = 0; g < ind.genes.size(); ++g) {
      const GeneBounds b = problem.bounds(static_cast<int>(g));
      std::uniform_int_distribution<int> pick(b.lo, b.hi);
      ind.genes[g] = pick(rng);
    }
    pool.push_back(std::move(ind));
  }

  PopulationEvaluator evaluator(problem, cfg.n_threads);
  evaluator.evaluate(pool);

  // Incremental non-dominated archive (cheaper than sorting the whole
  // pool: the archive stays small in practice).
  std::vector<Individual> archive;
  for (auto& ind : pool) {
    bool dominated = false;
    for (auto it = archive.begin(); it != archive.end();) {
      if (dominates(*it, ind)) {
        dominated = true;
        break;
      }
      if (dominates(ind, *it)) {
        it = archive.erase(it);
      } else {
        ++it;
      }
    }
    if (!dominated) archive.push_back(ind);
  }
  const bool any_feasible =
      std::any_of(archive.begin(), archive.end(), [](const Individual& i) {
        return i.constraint_violation <= 0.0;
      });
  if (any_feasible) {
    archive.erase(std::remove_if(archive.begin(), archive.end(),
                                 [](const Individual& i) {
                                   return i.constraint_violation > 0.0;
                                 }),
                  archive.end());
  }
  std::sort(archive.begin(), archive.end(),
            [](const Individual& a, const Individual& b) {
              return a.objectives < b.objectives;
            });

  Result result;
  result.evaluations = static_cast<long>(pool.size());
  result.pareto_front = std::move(archive);
  result.population.clear();  // the full pool is not retained
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace pmlp::nsga2
