#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/adder/summand.hpp"
#include "pmlp/bitops/bitops.hpp"

namespace adder = pmlp::adder;
namespace bitops = pmlp::bitops;

// ---------------------------------------------------------------- Summand

TEST(Summand, MaxValueIsMaskShifted) {
  adder::SummandSpec s{0b1011, 4, 2, +1};
  EXPECT_EQ(s.max_value(), std::int64_t{0b1011} << 2);
  EXPECT_EQ(s.occupancy(), std::uint64_t{0b1011} << 2);
  EXPECT_EQ(s.wire_count(), 3);
  EXPECT_FALSE(s.is_pruned());
}

TEST(Summand, MaskTruncatedToInputWidth) {
  adder::SummandSpec s{0xFF, 4, 0, +1};
  EXPECT_EQ(s.effective_mask(), 0xFu);
  EXPECT_EQ(s.wire_count(), 4);
}

TEST(Summand, ZeroMaskIsPruned) {
  adder::SummandSpec s{0, 4, 3, -1};
  EXPECT_TRUE(s.is_pruned());
  EXPECT_EQ(s.max_value(), 0);
  EXPECT_EQ(s.wire_count(), 0);
}

// ---------------------------------------------------------- analyze_neuron

TEST(AnalyzeNeuron, PositiveOnlyRange) {
  adder::NeuronAdderSpec n;
  n.summands.push_back({0xF, 4, 0, +1});  // max 15
  n.summands.push_back({0xF, 4, 2, +1});  // max 60
  n.bias = 5;
  const auto st = adder::analyze_neuron(n);
  EXPECT_EQ(st.max_sum, 80);
  EXPECT_EQ(st.min_sum, 5);
  EXPECT_GE(st.acc_width, bitops::bit_width_signed(80));
  EXPECT_EQ(st.folded_constant, bitops::to_twos_complement(5, st.acc_width));
}

TEST(AnalyzeNeuron, NegativeSummandFoldsConstants) {
  adder::NeuronAdderSpec n;
  n.summands.push_back({0xF, 4, 0, -1});
  n.bias = 0;
  const auto st = adder::analyze_neuron(n);
  EXPECT_EQ(st.min_sum, -15);
  EXPECT_EQ(st.max_sum, 0);
  const int W = st.acc_width;
  // Constant = ~occupancy ones + 1 (mod 2^W): with occupancy 0b1111,
  // ~occ over W bits = (2^W - 16), +1.
  const std::uint64_t expect =
      ((~std::uint64_t{0xF}) & bitops::low_mask(W)) + 1;
  EXPECT_EQ(st.folded_constant, expect & bitops::low_mask(W));
}

TEST(AnalyzeNeuron, FoldedConstantMakesNegationExact) {
  // Functional check: for every input x, sum of (variable bits of -x) plus
  // folded constant equals -x mod 2^W.
  adder::NeuronAdderSpec n;
  n.summands.push_back({0b1101, 4, 1, -1});
  n.bias = 3;
  const auto st = adder::analyze_neuron(n);
  const int W = st.acc_width;
  for (std::uint32_t x = 0; x < 16; ++x) {
    const std::uint64_t masked = (x & 0b1101u) << 1;
    // Variable bits contribution: inverted retained bits at their columns.
    std::uint64_t var = 0;
    for (int p : bitops::set_bit_positions(std::uint64_t{0b1101} << 1)) {
      if (!bitops::test_bit(masked, p)) var |= std::uint64_t{1} << p;
    }
    const std::uint64_t total = (var + st.folded_constant) & bitops::low_mask(W);
    const std::int64_t expect = 3 - static_cast<std::int64_t>(masked);
    EXPECT_EQ(bitops::from_twos_complement(total, W), expect) << "x=" << x;
  }
}

TEST(AnalyzeNeuron, VariableHeightsCountWires) {
  adder::NeuronAdderSpec n;
  n.summands.push_back({0xF, 4, 0, +1});
  n.summands.push_back({0xF, 4, 0, +1});
  n.summands.push_back({0b0101, 4, 1, -1});
  n.bias = 0;
  const auto st = adder::analyze_neuron(n);
  const int total_wires =
      std::accumulate(st.variable_heights.begin(), st.variable_heights.end(), 0);
  EXPECT_EQ(total_wires, 4 + 4 + 2);
  // Column 0: two bits (from the two full 4-bit summands).
  EXPECT_EQ(st.variable_heights[0], 2);
  // Column 1: two full summands + negative summand's bit 0 shifted by 1.
  EXPECT_EQ(st.variable_heights[1], 3);
}

// ------------------------------------------------------------ reduce_columns

TEST(ReduceColumns, TwoRowsNeedNoReduction) {
  auto cost = adder::reduce_columns({2, 2, 2});
  EXPECT_EQ(cost.fa_reduction, 0);
  EXPECT_EQ(cost.stages, 0);
  // CPA spans from the first 2-high column to the top.
  EXPECT_EQ(cost.fa_cpa, 3);
}

TEST(ReduceColumns, SingleRowIsFree) {
  auto cost = adder::reduce_columns({1, 1, 0, 1});
  EXPECT_EQ(cost.total_fa(), 0);
}

TEST(ReduceColumns, ThreeBitsOneFa) {
  auto cost = adder::reduce_columns({3});
  EXPECT_EQ(cost.fa_reduction, 1);
  EXPECT_EQ(cost.stages, 1);
  // After reduction: col0 has 1 bit, carry dropped beyond MSB -> no CPA.
  EXPECT_EQ(cost.fa_cpa, 0);
}

TEST(ReduceColumns, KnownSmallCase) {
  // Heights {3,3}: stage 1 -> col0: 1 FA leaves 1, carries to col1.
  // col1: 1 FA leaves 1 + carry_in 1 = 2. Final: col0=1,col1=2 -> CPA 1 FA.
  auto cost = adder::reduce_columns({3, 3});
  EXPECT_EQ(cost.fa_reduction, 2);
  EXPECT_EQ(cost.stages, 1);
  EXPECT_EQ(cost.fa_cpa, 1);
  EXPECT_EQ(cost.total_fa(), 3);
}

TEST(ReduceColumns, TerminatesOnTallColumns) {
  auto cost = adder::reduce_columns({30, 30, 30, 30});
  for (int h : cost.final_heights) EXPECT_LE(h, 2);
  EXPECT_GT(cost.stages, 1);
}

TEST(ReduceColumns, ScheduleTotalsMatchFaCount) {
  auto cost = adder::reduce_columns({7, 5, 9, 2, 6});
  int scheduled = 0;
  for (const auto& stage : cost.schedule) scheduled += stage.total();
  EXPECT_EQ(scheduled, cost.fa_reduction);
}

// 3:2 reduction conserves "value-weighted" bit count: each FA replaces
// 3 bits of weight 2^c by one of 2^c and one of 2^(c+1) (unless the carry
// falls off the MSB). Verify weighted conservation per stage, mod 2^W.
TEST(ReduceColumns, WeightedBitConservation) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> h(0, 9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> heights(6);
    for (auto& v : heights) v = h(rng);
    auto cost = adder::reduce_columns(heights);
    // Simulate: value of all-ones input must be preserved mod 2^6 by
    // construction; check final heights reproduce the same total weight.
    auto weight = [](const std::vector<int>& hh) {
      std::uint64_t w = 0;
      for (std::size_t c = 0; c < hh.size(); ++c) {
        w += static_cast<std::uint64_t>(hh[c]) << c;
      }
      return w & bitops::low_mask(static_cast<int>(hh.size()));
    };
    EXPECT_EQ(weight(cost.final_heights), weight(heights)) << "trial " << trial;
  }
}

// --------------------------------------------------------- estimate_adder

TEST(EstimateAdder, EmptyNeuronCostsNothing) {
  adder::NeuronAdderSpec n;
  n.bias = 0;
  const auto cost = adder::estimate_adder(n);
  EXPECT_EQ(cost.total_fa(), 0);
}

TEST(EstimateAdder, MaskingBitsNeverIncreasesArea) {
  // Property (the paper's core premise): clearing mask bits can only
  // remove adder hardware.
  adder::NeuronAdderSpec full;
  for (int i = 0; i < 6; ++i) full.summands.push_back({0xF, 4, i % 3, +1});
  full.bias = 17;
  const int full_fa = adder::estimate_adder(full).total_fa();

  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    adder::NeuronAdderSpec pruned = full;
    for (auto& s : pruned.summands) {
      s.mask &= static_cast<std::uint32_t>(rng());  // random submask
    }
    EXPECT_LE(adder::estimate_adder(pruned).total_fa(), full_fa);
  }
}

TEST(EstimateAdder, MonotoneInSummandCount) {
  adder::NeuronAdderSpec n;
  int prev = 0;
  for (int i = 0; i < 8; ++i) {
    n.summands.push_back({0xF, 4, 0, +1});
    const int fa = adder::estimate_adder(n).total_fa();
    EXPECT_GE(fa, prev);
    prev = fa;
  }
}

TEST(EstimateAdder, ZeroMaskEqualsAbsentSummand) {
  // Paper §III-B: a zero mask is hardware-equivalent to removing the
  // connection; no zero weight value is needed.
  adder::NeuronAdderSpec with_zero;
  with_zero.summands.push_back({0xF, 4, 1, +1});
  with_zero.summands.push_back({0, 4, 3, -1});  // fully masked
  with_zero.bias = 9;
  adder::NeuronAdderSpec without;
  without.summands.push_back({0xF, 4, 1, +1});
  without.bias = 9;
  EXPECT_EQ(adder::estimate_adder(with_zero).total_fa(),
            adder::estimate_adder(without).total_fa());
  EXPECT_EQ(adder::estimate_adder(with_zero).folded_constant,
            adder::estimate_adder(without).folded_constant);
}

TEST(EstimateAdder, FastTotalFaMatchesFullEstimateOnRandomNeurons) {
  // estimate_total_fa is the GA's allocation-free area path; it must agree
  // with the schedule-producing estimator bit for bit on every neuron shape
  // (random masks/shifts/signs/biases, including fully pruned summands).
  std::mt19937 rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    adder::NeuronAdderSpec n;
    const int n_summands = static_cast<int>(rng() % 12);
    for (int i = 0; i < n_summands; ++i) {
      adder::SummandSpec s;
      s.mask = rng() & 0xF;
      s.input_width = 4;
      s.shift = static_cast<int>(rng() % 7);
      s.sign = (rng() & 1) ? +1 : -1;
      n.summands.push_back(s);
    }
    n.bias = static_cast<std::int64_t>(rng() % 4001) - 2000;
    EXPECT_EQ(adder::estimate_total_fa(n),
              adder::estimate_adder(n).total_fa())
        << "trial " << trial;
  }
}

// Property sweep: FA count grows (weakly) with the number of mask bits.
class EstimateAdderMaskSweep : public ::testing::TestWithParam<int> {};

TEST_P(EstimateAdderMaskSweep, MoreMaskBitsMoreArea) {
  const int n_summands = GetParam();
  long prev = -1;
  for (int bits = 0; bits <= 4; ++bits) {
    const auto mask =
        static_cast<std::uint32_t>(bitops::low_mask(bits));
    adder::NeuronAdderSpec n;
    for (int i = 0; i < n_summands; ++i) {
      n.summands.push_back({mask, 4, 0, i % 2 == 0 ? +1 : -1});
    }
    const long fa = adder::estimate_adder(n).total_fa();
    EXPECT_GE(fa, prev) << "bits=" << bits;
    prev = fa;
  }
}

INSTANTIATE_TEST_SUITE_P(SummandCounts, EstimateAdderMaskSweep,
                         ::testing::Values(2, 3, 5, 8, 13));

TEST(TotalFaCount, SumsNeurons) {
  adder::NeuronAdderSpec a;
  a.summands.push_back({0xF, 4, 0, +1});
  a.summands.push_back({0xF, 4, 0, +1});
  a.summands.push_back({0xF, 4, 0, +1});
  adder::NeuronAdderSpec b = a;
  const long both = adder::total_fa_count({a, b});
  EXPECT_EQ(both, 2 * adder::estimate_adder(a).total_fa());
}
