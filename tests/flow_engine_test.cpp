// Tests for the staged FlowEngine (flow_engine.hpp): checkpoint/resume
// bit-identity, partial resume, meta guards, artifact injection, parallel
// hardware analysis and stage reporting.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "flow_test_util.hpp"
#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace fs = std::filesystem;
using pmlp::test::expect_same_points;
using pmlp::test::expect_same_result;

namespace {

/// Scratch dir with this suite's prefix.
struct TempDir : pmlp::test::TempDir {
  explicit TempDir(const char* tag) : pmlp::test::TempDir("pmlp_flow_test", tag) {}
};

core::FlowConfig small_cfg() {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 40;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 20;
  cfg.trainer.ga.generations = 10;
  cfg.trainer.ga.seed = 61;
  cfg.hardware.equivalence_samples = 8;
  return cfg;
}

ds::Dataset small_data() {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 200;
  return ds::generate(spec);
}

pmlp::mlp::Topology small_topo() { return pmlp::mlp::Topology{{10, 3, 2}}; }

}  // namespace

TEST(FlowEngine, MatchesRunFlowWrapper) {
  const auto data = small_data();
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());
  core::FlowEngine engine(data, small_topo(), small_cfg());
  const auto r1 = engine.run();
  expect_same_result(r0, r1);
  // The wrapper reports all seven stages, none reused.
  ASSERT_EQ(r1.stages.size(), 7u);
  for (const auto& s : r1.stages) EXPECT_FALSE(s.reused);
  EXPECT_EQ(r1.stages.front().stage, core::FlowStage::kSplit);
  EXPECT_EQ(r1.stages.back().stage, core::FlowStage::kSelect);
}

TEST(FlowEngine, CheckpointResumeBitIdentical) {
  TempDir dir("resume");
  const auto data = small_data();

  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  const auto r1 = first.run();

  // Every artifact must be on disk.
  for (const char* f :
       {"meta.txt", "train_raw.ds", "test_raw.ds", "train.qds", "test.qds",
        "float_net.txt", "baseline.txt", "ga_front.txt", "refined_front.txt",
        "evaluated.txt"}) {
    EXPECT_TRUE(fs::exists(dir.path / f)) << f;
  }

  core::FlowEngine second(data, small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  const auto r2 = second.run();
  expect_same_result(r1, r2);
  // Everything except the derived select stage was reloaded.
  ASSERT_EQ(r2.stages.size(), 7u);
  for (const auto& s : r2.stages) {
    EXPECT_EQ(s.reused, s.stage != core::FlowStage::kSelect)
        << core::flow_stage_name(s.stage);
  }

  // And the checkpointed run equals the checkpoint-free run.
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());
  expect_same_result(r0, r1);
}

TEST(FlowEngine, PartialResumeRecomputesDownstream) {
  TempDir dir("partial");
  const auto data = small_data();

  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  const auto r1 = first.run();

  fs::remove(dir.path / "refined_front.txt");
  fs::remove(dir.path / "evaluated.txt");

  core::FlowEngine second(data, small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  const auto r2 = second.run();
  expect_same_result(r1, r2);
  for (const auto& s : r2.stages) {
    const bool expect_reused = s.stage == core::FlowStage::kSplit ||
                               s.stage == core::FlowStage::kBackprop ||
                               s.stage == core::FlowStage::kBaseline ||
                               s.stage == core::FlowStage::kGa;
    EXPECT_EQ(s.reused, expect_reused) << core::flow_stage_name(s.stage);
  }
  // The recomputed artifacts were re-persisted.
  EXPECT_TRUE(fs::exists(dir.path / "refined_front.txt"));
  EXPECT_TRUE(fs::exists(dir.path / "evaluated.txt"));
}

TEST(FlowEngine, ResumeWithDifferentThreadsAndCacheAccepted) {
  // The meta.txt config fingerprint covers exactly the result-changing
  // fields. The bit-identical knobs — trainer.n_threads (and the superseded
  // ga/hardware thread counts) and problem.eval_cache_capacity — must stay
  // out of it: a checkpoint written on a 2-thread machine resumes under a
  // different thread count / cache size (e.g. on another machine) instead
  // of being rejected as a different config, and reproduces the original
  // result bit-identically.
  TempDir dir("threadmeta");
  const auto data = small_data();
  auto cfg = small_cfg();
  cfg.trainer.n_threads = 2;
  cfg.trainer.problem.eval_cache_capacity = 512;

  core::FlowEngine first(data, small_topo(), cfg);
  first.set_checkpoint_dir(dir.path.string());
  const auto r1 = first.run();

  auto resumed_cfg = small_cfg();
  resumed_cfg.trainer.n_threads = 1;
  resumed_cfg.trainer.ga.n_threads = 7;       // superseded knob, also excluded
  resumed_cfg.hardware.n_threads = 3;         // superseded knob, also excluded
  resumed_cfg.trainer.problem.eval_cache_capacity = 0;
  core::FlowEngine second(data, small_topo(), resumed_cfg);
  second.set_checkpoint_dir(dir.path.string());
  core::FlowResult r2;
  ASSERT_NO_THROW(r2 = second.run());
  expect_same_result(r1, r2);
  for (const auto& s : r2.stages) {
    EXPECT_EQ(s.reused, s.stage != core::FlowStage::kSelect)
        << core::flow_stage_name(s.stage);
  }
}

TEST(FlowEngine, AdvanceRunsOneStageAtATime) {
  const auto data = small_data();
  core::FlowEngine engine(data, small_topo(), small_cfg());
  std::vector<core::FlowStage> ran;
  while (auto stage = engine.advance()) {
    ran.push_back(*stage);
    EXPECT_EQ(engine.stages().size(), ran.size());
    EXPECT_EQ(engine.stages().back().stage, *stage);
  }
  const std::vector<core::FlowStage> expected{
      core::FlowStage::kSplit,    core::FlowStage::kBackprop,
      core::FlowStage::kBaseline, core::FlowStage::kGa,
      core::FlowStage::kRefine,   core::FlowStage::kHardware,
      core::FlowStage::kSelect};
  EXPECT_EQ(ran, expected);
  // Complete: further advance() is a no-op and run() just assembles.
  EXPECT_FALSE(engine.advance().has_value());
  const auto r1 = engine.run();
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());
  expect_same_result(r0, r1);
}

TEST(FlowEngine, RejectsCheckpointOfDifferentConfig) {
  TempDir dir("confguard");
  const auto data = small_data();
  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  (void)first.split();  // writes meta + split artifacts

  auto other = small_cfg();
  other.trainer.ga.generations += 1;
  core::FlowEngine second(data, small_topo(), other);
  second.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)second.run(), std::runtime_error);
}

TEST(FlowEngine, RejectsCheckpointOfDifferentDataset) {
  TempDir dir("dataguard");
  const auto data = small_data();
  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  (void)first.split();

  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 201;  // different data -> different digest
  core::FlowEngine second(ds::generate(spec), small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)second.run(), std::runtime_error);
}

TEST(FlowEngine, RejectsMalformedMeta) {
  TempDir dir("badmeta");
  fs::create_directories(dir.path);
  std::ofstream(dir.path / "meta.txt") << "pmlp-flow-meta v9\ngarbage\n";
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  engine.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)engine.run(), std::invalid_argument);
}

TEST(FlowEngine, InjectedArtifactsMatchFullRun) {
  const auto data = small_data();
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());

  // Prime a second engine with the first run's baseline artifacts (the
  // bench path: one baseline, many GA runs).
  core::FlowEngine engine(ds::Dataset{}, small_topo(), small_cfg());
  core::SplitArtifacts split;
  split.train_raw = r0.baseline.train_raw;
  split.test_raw = r0.baseline.test_raw;
  split.train = r0.baseline.train;
  split.test = r0.baseline.test;
  engine.provide_split(std::move(split));
  engine.provide_float_net(r0.baseline.float_net);
  core::BaselinePricing pricing;
  pricing.net = r0.baseline.baseline;
  pricing.cost = r0.baseline.baseline_cost;
  pricing.train_accuracy = r0.baseline.baseline_train_accuracy;
  pricing.test_accuracy = r0.baseline.baseline_test_accuracy;
  engine.provide_baseline(std::move(pricing));

  const auto r1 = engine.run();
  expect_same_result(r0, r1);
  int reused = 0;
  for (const auto& s : r1.stages) reused += s.reused ? 1 : 0;
  EXPECT_EQ(reused, 3);  // split, backprop, baseline
}

TEST(FlowEngine, ParallelHardwareAnalysisBitIdentical) {
  const auto data = small_data();
  core::FlowEngine engine(data, small_topo(), small_cfg());
  const auto result = engine.run();
  ASSERT_FALSE(result.training.estimated_pareto.empty());

  const auto& test = result.baseline.test;
  const auto& lib = pmlp::hwmodel::CellLibrary::egfet_1v();
  core::HardwareAnalysisConfig cfg;
  cfg.equivalence_samples = 8;
  cfg.n_threads = 1;
  const auto serial =
      core::evaluate_hardware(result.training.estimated_pareto, test, lib,
                              cfg);
  for (int n : {0, 2, 4, 7}) {
    cfg.n_threads = n;
    const auto parallel = core::evaluate_hardware(
        result.training.estimated_pareto, test, lib, cfg);
    expect_same_points(serial, parallel);
  }
}

TEST(FlowEngine, ParallelFlowMatchesSerialFlow) {
  const auto data = small_data();
  auto cfg = small_cfg();
  cfg.trainer.n_threads = 1;
  const auto serial = core::run_flow(data, small_topo(), cfg);
  cfg.trainer.n_threads = 4;
  const auto parallel = core::run_flow(data, small_topo(), cfg);
  expect_same_result(serial, parallel);
}

TEST(FlowEngine, RefineDisabledSkipsStage) {
  auto cfg = small_cfg();
  cfg.refine = false;
  core::FlowEngine engine(small_data(), small_topo(), cfg);
  const auto result = engine.run();
  ASSERT_EQ(result.stages.size(), 6u);
  for (const auto& s : result.stages) {
    EXPECT_NE(s.stage, core::FlowStage::kRefine);
  }
}

TEST(FlowEngine, ProgressCallbackSeesEveryStage) {
  std::vector<std::string> seen;
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  engine.set_progress([&](const core::StageReport& r) {
    seen.push_back(core::flow_stage_name(r.stage));
  });
  (void)engine.run();
  const std::vector<std::string> expected{
      "split", "backprop", "baseline", "ga", "refine", "hardware", "select"};
  EXPECT_EQ(seen, expected);
}

TEST(FlowEngine, RepeatedRunDoesNotRecompute) {
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  const auto r1 = engine.run();
  const auto r2 = engine.run();  // all artifacts cached in memory
  expect_same_result(r1, r2);
  EXPECT_EQ(r1.stages.size(), r2.stages.size());
}

TEST(FlowEngine, JsonReportIsWellFormed) {
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  const auto result = engine.run();
  std::ostringstream os;
  core::write_flow_report_json(result, "Breast\"Cancer", small_topo(), os);
  const std::string json = os.str();
  // Structural smoke checks (no JSON parser in the test deps).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline
  EXPECT_NE(json.find("\"dataset\":\"Breast\\\"Cancer\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"hardware\""), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":["), std::string::npos);
  EXPECT_NE(json.find("\"area_reduction\":"), std::string::npos);
}
