// Tests for the staged FlowEngine (flow_engine.hpp): checkpoint/resume
// bit-identity, partial resume, meta guards, artifact injection, parallel
// hardware analysis and stage reporting.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace fs = std::filesystem;

namespace {

core::FlowConfig small_cfg() {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 40;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 20;
  cfg.trainer.ga.generations = 10;
  cfg.trainer.ga.seed = 61;
  cfg.hardware.equivalence_samples = 8;
  return cfg;
}

ds::Dataset small_data() {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 200;
  return ds::generate(spec);
}

pmlp::mlp::Topology small_topo() { return pmlp::mlp::Topology{{10, 3, 2}}; }

/// Fresh scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("pmlp_flow_test_") + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void expect_same_points(const std::vector<core::HwEvaluatedPoint>& a,
                        const std::vector<core::HwEvaluatedPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(core::to_text(a[i].model), core::to_text(b[i].model));
    EXPECT_EQ(a[i].test_accuracy, b[i].test_accuracy);
    EXPECT_EQ(a[i].fa_area, b[i].fa_area);
    EXPECT_EQ(a[i].functional_match, b[i].functional_match);
    EXPECT_EQ(a[i].cost.area_mm2, b[i].cost.area_mm2);
    EXPECT_EQ(a[i].cost.power_uw, b[i].cost.power_uw);
    EXPECT_EQ(a[i].cost.critical_delay_us, b[i].cost.critical_delay_us);
    EXPECT_EQ(a[i].cost.cell_count, b[i].cost.cell_count);
  }
}

void expect_same_result(const core::FlowResult& a, const core::FlowResult& b) {
  EXPECT_EQ(a.baseline.baseline_train_accuracy,
            b.baseline.baseline_train_accuracy);
  EXPECT_EQ(a.baseline.baseline_test_accuracy,
            b.baseline.baseline_test_accuracy);
  EXPECT_EQ(a.baseline.baseline_cost.area_mm2,
            b.baseline.baseline_cost.area_mm2);
  EXPECT_EQ(a.training.evaluations, b.training.evaluations);
  ASSERT_EQ(a.training.estimated_pareto.size(),
            b.training.estimated_pareto.size());
  for (std::size_t i = 0; i < a.training.estimated_pareto.size(); ++i) {
    EXPECT_EQ(core::to_text(a.training.estimated_pareto[i].model),
              core::to_text(b.training.estimated_pareto[i].model));
    EXPECT_EQ(a.training.estimated_pareto[i].train_accuracy,
              b.training.estimated_pareto[i].train_accuracy);
    EXPECT_EQ(a.training.estimated_pareto[i].fa_area,
              b.training.estimated_pareto[i].fa_area);
  }
  expect_same_points(a.evaluated, b.evaluated);
  expect_same_points(a.front, b.front);
  ASSERT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best) {
    EXPECT_EQ(core::to_text(a.best->model), core::to_text(b.best->model));
  }
  EXPECT_EQ(a.area_reduction, b.area_reduction);
  EXPECT_EQ(a.power_reduction, b.power_reduction);
}

}  // namespace

TEST(FlowEngine, MatchesRunFlowWrapper) {
  const auto data = small_data();
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());
  core::FlowEngine engine(data, small_topo(), small_cfg());
  const auto r1 = engine.run();
  expect_same_result(r0, r1);
  // The wrapper reports all seven stages, none reused.
  ASSERT_EQ(r1.stages.size(), 7u);
  for (const auto& s : r1.stages) EXPECT_FALSE(s.reused);
  EXPECT_EQ(r1.stages.front().stage, core::FlowStage::kSplit);
  EXPECT_EQ(r1.stages.back().stage, core::FlowStage::kSelect);
}

TEST(FlowEngine, CheckpointResumeBitIdentical) {
  TempDir dir("resume");
  const auto data = small_data();

  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  const auto r1 = first.run();

  // Every artifact must be on disk.
  for (const char* f :
       {"meta.txt", "train_raw.ds", "test_raw.ds", "train.qds", "test.qds",
        "float_net.txt", "baseline.txt", "ga_front.txt", "refined_front.txt",
        "evaluated.txt"}) {
    EXPECT_TRUE(fs::exists(dir.path / f)) << f;
  }

  core::FlowEngine second(data, small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  const auto r2 = second.run();
  expect_same_result(r1, r2);
  // Everything except the derived select stage was reloaded.
  ASSERT_EQ(r2.stages.size(), 7u);
  for (const auto& s : r2.stages) {
    EXPECT_EQ(s.reused, s.stage != core::FlowStage::kSelect)
        << core::flow_stage_name(s.stage);
  }

  // And the checkpointed run equals the checkpoint-free run.
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());
  expect_same_result(r0, r1);
}

TEST(FlowEngine, PartialResumeRecomputesDownstream) {
  TempDir dir("partial");
  const auto data = small_data();

  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  const auto r1 = first.run();

  fs::remove(dir.path / "refined_front.txt");
  fs::remove(dir.path / "evaluated.txt");

  core::FlowEngine second(data, small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  const auto r2 = second.run();
  expect_same_result(r1, r2);
  for (const auto& s : r2.stages) {
    const bool expect_reused = s.stage == core::FlowStage::kSplit ||
                               s.stage == core::FlowStage::kBackprop ||
                               s.stage == core::FlowStage::kBaseline ||
                               s.stage == core::FlowStage::kGa;
    EXPECT_EQ(s.reused, expect_reused) << core::flow_stage_name(s.stage);
  }
  // The recomputed artifacts were re-persisted.
  EXPECT_TRUE(fs::exists(dir.path / "refined_front.txt"));
  EXPECT_TRUE(fs::exists(dir.path / "evaluated.txt"));
}

TEST(FlowEngine, RejectsCheckpointOfDifferentConfig) {
  TempDir dir("confguard");
  const auto data = small_data();
  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  (void)first.split();  // writes meta + split artifacts

  auto other = small_cfg();
  other.trainer.ga.generations += 1;
  core::FlowEngine second(data, small_topo(), other);
  second.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)second.run(), std::runtime_error);
}

TEST(FlowEngine, RejectsCheckpointOfDifferentDataset) {
  TempDir dir("dataguard");
  const auto data = small_data();
  core::FlowEngine first(data, small_topo(), small_cfg());
  first.set_checkpoint_dir(dir.path.string());
  (void)first.split();

  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 201;  // different data -> different digest
  core::FlowEngine second(ds::generate(spec), small_topo(), small_cfg());
  second.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)second.run(), std::runtime_error);
}

TEST(FlowEngine, RejectsMalformedMeta) {
  TempDir dir("badmeta");
  fs::create_directories(dir.path);
  std::ofstream(dir.path / "meta.txt") << "pmlp-flow-meta v9\ngarbage\n";
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  engine.set_checkpoint_dir(dir.path.string());
  EXPECT_THROW((void)engine.run(), std::invalid_argument);
}

TEST(FlowEngine, InjectedArtifactsMatchFullRun) {
  const auto data = small_data();
  const auto r0 = core::run_flow(data, small_topo(), small_cfg());

  // Prime a second engine with the first run's baseline artifacts (the
  // bench path: one baseline, many GA runs).
  core::FlowEngine engine(ds::Dataset{}, small_topo(), small_cfg());
  core::SplitArtifacts split;
  split.train_raw = r0.baseline.train_raw;
  split.test_raw = r0.baseline.test_raw;
  split.train = r0.baseline.train;
  split.test = r0.baseline.test;
  engine.provide_split(std::move(split));
  engine.provide_float_net(r0.baseline.float_net);
  core::BaselinePricing pricing;
  pricing.net = r0.baseline.baseline;
  pricing.cost = r0.baseline.baseline_cost;
  pricing.train_accuracy = r0.baseline.baseline_train_accuracy;
  pricing.test_accuracy = r0.baseline.baseline_test_accuracy;
  engine.provide_baseline(std::move(pricing));

  const auto r1 = engine.run();
  expect_same_result(r0, r1);
  int reused = 0;
  for (const auto& s : r1.stages) reused += s.reused ? 1 : 0;
  EXPECT_EQ(reused, 3);  // split, backprop, baseline
}

TEST(FlowEngine, ParallelHardwareAnalysisBitIdentical) {
  const auto data = small_data();
  core::FlowEngine engine(data, small_topo(), small_cfg());
  const auto result = engine.run();
  ASSERT_FALSE(result.training.estimated_pareto.empty());

  const auto& test = result.baseline.test;
  const auto& lib = pmlp::hwmodel::CellLibrary::egfet_1v();
  core::HardwareAnalysisConfig cfg;
  cfg.equivalence_samples = 8;
  cfg.n_threads = 1;
  const auto serial =
      core::evaluate_hardware(result.training.estimated_pareto, test, lib,
                              cfg);
  for (int n : {0, 2, 4, 7}) {
    cfg.n_threads = n;
    const auto parallel = core::evaluate_hardware(
        result.training.estimated_pareto, test, lib, cfg);
    expect_same_points(serial, parallel);
  }
}

TEST(FlowEngine, ParallelFlowMatchesSerialFlow) {
  const auto data = small_data();
  auto cfg = small_cfg();
  cfg.trainer.n_threads = 1;
  const auto serial = core::run_flow(data, small_topo(), cfg);
  cfg.trainer.n_threads = 4;
  const auto parallel = core::run_flow(data, small_topo(), cfg);
  expect_same_result(serial, parallel);
}

TEST(FlowEngine, RefineDisabledSkipsStage) {
  auto cfg = small_cfg();
  cfg.refine = false;
  core::FlowEngine engine(small_data(), small_topo(), cfg);
  const auto result = engine.run();
  ASSERT_EQ(result.stages.size(), 6u);
  for (const auto& s : result.stages) {
    EXPECT_NE(s.stage, core::FlowStage::kRefine);
  }
}

TEST(FlowEngine, ProgressCallbackSeesEveryStage) {
  std::vector<std::string> seen;
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  engine.set_progress([&](const core::StageReport& r) {
    seen.push_back(core::flow_stage_name(r.stage));
  });
  (void)engine.run();
  const std::vector<std::string> expected{
      "split", "backprop", "baseline", "ga", "refine", "hardware", "select"};
  EXPECT_EQ(seen, expected);
}

TEST(FlowEngine, RepeatedRunDoesNotRecompute) {
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  const auto r1 = engine.run();
  const auto r2 = engine.run();  // all artifacts cached in memory
  expect_same_result(r1, r2);
  EXPECT_EQ(r1.stages.size(), r2.stages.size());
}

TEST(FlowEngine, JsonReportIsWellFormed) {
  core::FlowEngine engine(small_data(), small_topo(), small_cfg());
  const auto result = engine.run();
  std::ostringstream os;
  core::write_flow_report_json(result, "Breast\"Cancer", small_topo(), os);
  const std::string json = os.str();
  // Structural smoke checks (no JSON parser in the test deps).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline
  EXPECT_NE(json.find("\"dataset\":\"Breast\\\"Cancer\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"hardware\""), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":["), std::string::npos);
  EXPECT_NE(json.find("\"area_reduction\":"), std::string::npos);
}
