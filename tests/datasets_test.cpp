#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pmlp/datasets/csv.hpp"
#include "pmlp/datasets/dataset.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace ds = pmlp::datasets;

namespace {

ds::Dataset tiny_dataset() {
  ds::Dataset d;
  d.name = "tiny";
  d.n_features = 2;
  d.n_classes = 2;
  // 8 samples, 4 per class.
  for (int i = 0; i < 8; ++i) {
    d.features.push_back(i * 0.1);
    d.features.push_back(1.0 - i * 0.1);
    d.labels.push_back(i % 2);
  }
  return d;
}

}  // namespace

TEST(Dataset, ValidateAcceptsConsistent) {
  auto d = tiny_dataset();
  EXPECT_NO_THROW(d.validate());
}

TEST(Dataset, ValidateRejectsBadLabel) {
  auto d = tiny_dataset();
  d.labels[0] = 7;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsSizeMismatch) {
  auto d = tiny_dataset();
  d.features.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ClassCounts) {
  const auto d = tiny_dataset();
  const auto counts = d.class_counts();
  EXPECT_EQ(counts, (std::vector<std::size_t>{4, 4}));
}

TEST(NormalizeMinMax, MapsColumnsToUnitRange) {
  ds::Dataset d;
  d.name = "n";
  d.n_features = 2;
  d.n_classes = 2;
  d.features = {-5.0, 100.0, 0.0, 200.0, 5.0, 300.0};
  d.labels = {0, 1, 0};
  ds::normalize_min_max(d);
  EXPECT_DOUBLE_EQ(d.features[0], 0.0);
  EXPECT_DOUBLE_EQ(d.features[4], 1.0);
  EXPECT_DOUBLE_EQ(d.features[2], 0.5);
  EXPECT_DOUBLE_EQ(d.features[1], 0.0);
  EXPECT_DOUBLE_EQ(d.features[5], 1.0);
}

TEST(NormalizeMinMax, ConstantColumnBecomesZero) {
  ds::Dataset d;
  d.name = "c";
  d.n_features = 1;
  d.n_classes = 2;
  d.features = {3.0, 3.0, 3.0};
  d.labels = {0, 1, 0};
  ds::normalize_min_max(d);
  for (double v : d.features) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  const auto spec = ds::cardio_spec();
  const auto d = ds::generate(spec);
  const auto split = ds::stratified_split(d, 0.7, 1);
  ASSERT_GT(split.test.size(), 0u);
  const auto full = d.class_counts();
  const auto train = split.train.class_counts();
  for (int c = 0; c < d.n_classes; ++c) {
    const double frac = static_cast<double>(train[static_cast<std::size_t>(c)]) /
                        static_cast<double>(full[static_cast<std::size_t>(c)]);
    EXPECT_NEAR(frac, 0.7, 0.05) << "class " << c;
  }
  EXPECT_EQ(split.train.size() + split.test.size(), d.size());
}

TEST(StratifiedSplit, EveryClassOnBothSides) {
  const auto d = ds::generate(ds::red_wine_spec());
  const auto split = ds::stratified_split(d, 0.7, 3);
  const auto tr = split.train.class_counts();
  const auto te = split.test.class_counts();
  for (int c = 0; c < d.n_classes; ++c) {
    const auto full = d.class_counts()[static_cast<std::size_t>(c)];
    if (full >= 2) {
      EXPECT_GE(tr[static_cast<std::size_t>(c)], 1u) << c;
      EXPECT_GE(te[static_cast<std::size_t>(c)], 1u) << c;
    }
  }
}

TEST(StratifiedSplit, DeterministicInSeed) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto s1 = ds::stratified_split(d, 0.7, 42);
  const auto s2 = ds::stratified_split(d, 0.7, 42);
  EXPECT_EQ(s1.train.labels, s2.train.labels);
  EXPECT_EQ(s1.train.features, s2.train.features);
  const auto s3 = ds::stratified_split(d, 0.7, 43);
  EXPECT_NE(s1.train.labels, s3.train.labels);
}

TEST(StratifiedSplit, RejectsBadFraction) {
  const auto d = tiny_dataset();
  EXPECT_THROW((void)ds::stratified_split(d, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)ds::stratified_split(d, 1.0, 1), std::invalid_argument);
}

TEST(QuantizeInputs, CodesWithinBits) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto q = ds::quantize_inputs(d, 4);
  EXPECT_EQ(q.input_bits, 4);
  EXPECT_EQ(q.size(), d.size());
  for (auto code : q.codes) EXPECT_LE(code, 15);
}

TEST(QuantizeInputs, RejectsBadBits) {
  const auto d = tiny_dataset();
  EXPECT_THROW((void)ds::quantize_inputs(d, 0), std::invalid_argument);
  EXPECT_THROW((void)ds::quantize_inputs(d, 9), std::invalid_argument);
}

// ------------------------------------------------------------- synthetic

class PaperSuiteShape : public ::testing::TestWithParam<int> {};

TEST_P(PaperSuiteShape, MatchesPaperDatasets) {
  const auto specs = ds::paper_suite();
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  const auto d = ds::generate(spec);
  EXPECT_EQ(d.n_features, spec.n_features);
  EXPECT_EQ(d.n_classes, spec.n_classes);
  EXPECT_EQ(d.size(), spec.n_samples);
  // Normalized features.
  for (double v : d.features) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Every class represented.
  for (auto c : d.class_counts()) EXPECT_GT(c, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFive, PaperSuiteShape,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Synthetic, DeterministicInSeed) {
  const auto d1 = ds::generate(ds::cardio_spec());
  const auto d2 = ds::generate(ds::cardio_spec());
  EXPECT_EQ(d1.features, d2.features);
  EXPECT_EQ(d1.labels, d2.labels);
}

TEST(Synthetic, SeparationControlsDifficulty) {
  // Sanity: larger separation must yield a larger nearest-centroid margin
  // (checked indirectly by the fraction of samples whose nearest class
  // centroid matches their label).
  auto eval = [](double separation) {
    auto spec = ds::breast_cancer_spec();
    spec.separation = separation;
    const auto d = ds::generate(spec);
    // Class centroids.
    std::vector<std::vector<double>> centroids(
        static_cast<std::size_t>(d.n_classes),
        std::vector<double>(static_cast<std::size_t>(d.n_features), 0.0));
    auto counts = d.class_counts();
    for (std::size_t i = 0; i < d.size(); ++i) {
      const auto row = d.row(i);
      auto& c = centroids[static_cast<std::size_t>(d.labels[i])];
      for (int j = 0; j < d.n_features; ++j) c[static_cast<std::size_t>(j)] += row[j];
    }
    for (int y = 0; y < d.n_classes; ++y) {
      for (auto& v : centroids[static_cast<std::size_t>(y)]) {
        v /= static_cast<double>(counts[static_cast<std::size_t>(y)]);
      }
    }
    std::size_t hit = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const auto row = d.row(i);
      int best = 0;
      double best_d = 1e30;
      for (int y = 0; y < d.n_classes; ++y) {
        double dist = 0;
        for (int j = 0; j < d.n_features; ++j) {
          const double delta =
              row[j] - centroids[static_cast<std::size_t>(y)][static_cast<std::size_t>(j)];
          dist += delta * delta;
        }
        if (dist < best_d) {
          best_d = dist;
          best = y;
        }
      }
      if (best == d.labels[i]) ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(d.size());
  };
  EXPECT_GT(eval(4.0), eval(0.5) + 0.1);
}

TEST(Synthetic, RejectsBadPriors) {
  auto spec = ds::breast_cancer_spec();
  spec.class_priors = {1.0};  // wrong size
  EXPECT_THROW((void)ds::generate(spec), std::invalid_argument);
}

// ------------------------------------------------------------------- csv

TEST(Csv, ParsesBasicFile) {
  const std::string text = "0.1,0.2,3\n0.4,0.5,5\n0.7,0.8,3\n";
  const auto d = ds::parse_csv(text, "t");
  EXPECT_EQ(d.n_features, 2);
  EXPECT_EQ(d.n_classes, 2);  // labels {3,5} reindexed to {0,1}
  EXPECT_EQ(d.labels, (std::vector<int>{0, 1, 0}));
  EXPECT_DOUBLE_EQ(d.features[2], 0.4);
}

TEST(Csv, HeaderSkipped) {
  const std::string text = "a,b,label\n1,2,0\n3,4,1\n";
  ds::CsvOptions opts;
  opts.has_header = true;
  const auto d = ds::parse_csv(text, "t", opts);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW((void)ds::parse_csv("1,2,0\n1,0\n", "t"), std::invalid_argument);
}

TEST(Csv, RejectsNonNumeric) {
  EXPECT_THROW((void)ds::parse_csv("1,abc,0\n", "t"), std::invalid_argument);
}

TEST(Csv, RejectsEmpty) {
  EXPECT_THROW((void)ds::parse_csv("", "t"), std::invalid_argument);
}

TEST(Csv, WindowsLineEndings) {
  const auto d = ds::parse_csv("1,2,0\r\n3,4,1\r\n", "t");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.features[3], 4.0);
}
