#include <gtest/gtest.h>

#include <cmath>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/float_mlp.hpp"
#include "pmlp/mlp/quant_mlp.hpp"
#include "pmlp/mlp/topology.hpp"

namespace mlp = pmlp::mlp;
namespace ds = pmlp::datasets;

TEST(Topology, ParameterCount) {
  mlp::Topology t{{21, 3, 3}};
  EXPECT_EQ(t.n_parameters(), 21 * 3 + 3 + 3 * 3 + 3);  // 78, Table I Cardio
  EXPECT_EQ(t.n_inputs(), 21);
  EXPECT_EQ(t.n_outputs(), 3);
  EXPECT_EQ(t.n_layers(), 2);
  EXPECT_EQ(t.to_string(), "(21,3,3)");
}

TEST(Topology, PaperTable1Registry) {
  const auto& rows = mlp::paper_table1();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].dataset, "BreastCancer");
  EXPECT_DOUBLE_EQ(rows[2].clock_ms, 250.0);  // Pendigits
  // Published parameter counts match the topology formula (the BC row is
  // the known exception: the paper prints 38 for a (10,3,2) topology).
  for (const auto& r : rows) {
    if (r.dataset == "BreastCancer") continue;
    EXPECT_EQ(r.topology.n_parameters(), r.parameters) << r.dataset;
  }
  EXPECT_THROW((void)mlp::paper_row("nope"), std::invalid_argument);
  EXPECT_EQ(mlp::paper_row("Cardio").parameters, 78);
}

TEST(FloatMlp, ForwardShapeAndDeterminism) {
  mlp::FloatMlp net(mlp::Topology{{4, 3, 2}}, 1);
  const std::vector<double> x = {0.1, 0.5, 0.9, 0.0};
  const auto y1 = net.forward(x);
  const auto y2 = net.forward(x);
  ASSERT_EQ(y1.size(), 2u);
  EXPECT_EQ(y1, y2);
  mlp::FloatMlp net_same(mlp::Topology{{4, 3, 2}}, 1);
  EXPECT_EQ(net_same.forward(x), y1);
}

TEST(FloatMlp, HiddenActivationsAreNonNegative) {
  mlp::FloatMlp net(mlp::Topology{{3, 4, 2}}, 9);
  const auto trace = net.forward_trace(std::vector<double>{0.2, 0.8, 0.5});
  ASSERT_EQ(trace.size(), 3u);
  for (double v : trace[1]) EXPECT_GE(v, 0.0);  // ReLU layer
}

TEST(FloatMlp, RejectsDegenerateTopology) {
  EXPECT_THROW(mlp::FloatMlp(mlp::Topology{{5}}, 1), std::invalid_argument);
}

TEST(Backprop, LearnsLinearlySeparableBlobs) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 400;
  const auto d = ds::generate(spec);
  mlp::BackpropConfig cfg;
  cfg.epochs = 60;
  cfg.seed = 5;
  mlp::FloatMlp net(mlp::Topology{{d.n_features, 3, d.n_classes}}, 5);
  const auto report = mlp::train_backprop(net, d, cfg);
  EXPECT_GT(report.final_train_accuracy, 0.9);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_EQ(report.epochs_run, 60);
}

TEST(Backprop, LossDecreases) {
  auto spec = ds::cardio_spec();
  spec.n_samples = 300;
  const auto d = ds::generate(spec);
  mlp::FloatMlp net(mlp::Topology{{d.n_features, 3, d.n_classes}}, 2);
  mlp::BackpropConfig one;
  one.epochs = 1;
  one.seed = 2;
  mlp::FloatMlp net1 = net;
  const auto r1 = mlp::train_backprop(net1, d, one);
  mlp::BackpropConfig many = one;
  many.epochs = 50;
  mlp::FloatMlp net2 = net;
  const auto r2 = mlp::train_backprop(net2, d, many);
  EXPECT_LT(r2.final_loss, r1.final_loss);
}

// ----------------------------------------------------------- quantization

namespace {

mlp::FloatMlp trained_bc_net(const ds::Dataset& d) {
  mlp::BackpropConfig cfg;
  cfg.epochs = 80;
  cfg.seed = 11;
  return mlp::train_float_mlp(mlp::Topology{{d.n_features, 3, d.n_classes}}, d,
                              cfg);
}

}  // namespace

TEST(QuantMlp, AccuracyCloseToFloat) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 500;
  const auto d = ds::generate(spec);
  const auto net = trained_bc_net(d);
  const double facc = mlp::accuracy(net, d);

  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  const auto qd = ds::quantize_inputs(d, 4);
  const double qacc = mlp::accuracy(q, qd);
  EXPECT_GT(qacc, facc - 0.08);  // 8-bit weights / 4-bit inputs lose little
}

TEST(QuantMlp, WeightsWithinCodeRange) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto net = trained_bc_net(d);
  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  for (const auto& layer : q.layers()) {
    for (auto w : layer.weights) {
      EXPECT_GE(w, -127);
      EXPECT_LE(w, 127);
    }
  }
  EXPECT_EQ(q.layers().front().input_bits, 4);
  EXPECT_EQ(q.layers().back().input_bits, 8);  // QReLU output width
}

TEST(QuantMlp, QreluClampsToActivationRange) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto net = trained_bc_net(d);
  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  const auto qd = ds::quantize_inputs(d, 4);
  // Run the first layer manually and check the hidden codes' range.
  for (std::size_t i = 0; i < std::min<std::size_t>(qd.size(), 64); ++i) {
    const auto row = qd.row(i);
    const auto& l0 = q.layers().front();
    for (int o = 0; o < l0.n_out; ++o) {
      std::int64_t acc = l0.biases[static_cast<std::size_t>(o)];
      for (int j = 0; j < l0.n_in; ++j) {
        acc += static_cast<std::int64_t>(l0.weight(o, j)) * row[static_cast<std::size_t>(j)];
      }
      const std::int64_t v =
          acc <= 0 ? 0 : std::min<std::int64_t>(acc >> l0.qrelu_shift, 255);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
    }
  }
}

TEST(QuantMlp, AdderSpecsCountPartialProducts) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto net = trained_bc_net(d);
  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  const auto specs = q.adder_specs();
  // One spec per neuron.
  std::size_t n_neurons = 0;
  for (const auto& l : q.layers()) n_neurons += static_cast<std::size_t>(l.n_out);
  ASSERT_EQ(specs.size(), n_neurons);
  // Summand count per neuron equals the total popcount of its weights.
  std::size_t spec_idx = 0;
  for (const auto& l : q.layers()) {
    for (int o = 0; o < l.n_out; ++o) {
      long pp = 0;
      for (int i = 0; i < l.n_in; ++i) {
        const auto w = l.weight(o, i);
        pp += pmlp::bitops::popcount(static_cast<std::uint64_t>(w < 0 ? -w : w));
      }
      EXPECT_EQ(static_cast<long>(specs[spec_idx].summands.size()), pp);
      ++spec_idx;
    }
  }
}

TEST(QuantMlp, PredictMatchesForwardArgmax) {
  const auto d = ds::generate(ds::red_wine_spec());
  mlp::BackpropConfig cfg;
  cfg.epochs = 20;
  cfg.seed = 3;
  const auto net = mlp::train_float_mlp(
      mlp::Topology{{d.n_features, 2, d.n_classes}}, d, cfg);
  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  const auto qd = ds::quantize_inputs(d, 4);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto logits = q.forward(qd.row(i));
    const auto arg = static_cast<int>(std::distance(
        logits.begin(), std::max_element(logits.begin(), logits.end())));
    EXPECT_EQ(q.predict(qd.row(i)), arg);
  }
}

TEST(QuantMlp, ScratchForwardBitIdenticalToAllocating) {
  const auto d = ds::generate(ds::cardio_spec());
  mlp::BackpropConfig cfg;
  cfg.epochs = 15;
  cfg.seed = 9;
  const auto net = mlp::train_float_mlp(
      mlp::Topology{{d.n_features, 3, d.n_classes}}, d, cfg);
  const auto q = mlp::QuantMlp::from_float(net, 8, 4, 8);
  const auto qd = ds::quantize_inputs(d, 4);

  // One scratch reused across every sample (the accuracy() hot-loop shape).
  mlp::QuantScratch scratch;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto reference = q.forward(qd.row(i));
    const auto fast = q.forward(qd.row(i), scratch);
    ASSERT_EQ(reference.size(), fast.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(reference[k], fast[k]) << "sample " << i << " logit " << k;
    }
    EXPECT_EQ(q.predict(qd.row(i)), q.predict(qd.row(i), scratch));
  }
}
