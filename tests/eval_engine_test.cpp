// Contract of the compiled sparse evaluation engine: CompiledNet inference
// and its streamed FA-area must be bit-identical to the naive reference
// oracle (ApproxMlp::forward / fa_area) on any chromosome, and the genome
// memo cache must never change a training outcome — only its speed.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/problem.hpp"
#include "pmlp/core/simd.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace nsga2 = pmlp::nsga2;

namespace {

/// Mask-gene shaping for the chromosome variants the GA actually visits.
enum class MaskStyle { kDense, kSparse, kFullyPruned, kCoarse };

std::vector<int> random_genes(const core::ChromosomeCodec& codec,
                              MaskStyle style, std::mt19937_64& rng) {
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    std::uniform_int_distribution<int> pick(b.lo, b.hi);
    int v = pick(rng);
    if (codec.kind(g) == core::GeneKind::kMask) {
      switch (style) {
        case MaskStyle::kDense:
          v = b.hi;
          break;
        case MaskStyle::kSparse:
          // Evolved fronts are mostly pruned: 60% of conns fully removed.
          if (rng() % 10 < 6) v = 0;
          break;
        case MaskStyle::kFullyPruned:
          v = 0;
          break;
        case MaskStyle::kCoarse:
          // Coarse pruning maps every non-zero mask to all-ones before
          // evaluation; feed it the all-or-nothing shape directly.
          v = (rng() & 1u) ? 0 : b.hi;
          break;
      }
    }
    genes[static_cast<std::size_t>(g)] = v;
  }
  return genes;
}

ds::QuantizedDataset random_dataset(int n_features, int n_classes,
                                    std::size_t n_samples, int bits,
                                    std::uint64_t seed) {
  ds::QuantizedDataset d;
  d.n_features = n_features;
  d.n_classes = n_classes;
  d.input_bits = bits;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> code(0, (1 << bits) - 1);
  std::uniform_int_distribution<int> label(0, n_classes - 1);
  for (std::size_t s = 0; s < n_samples; ++s) {
    for (int f = 0; f < n_features; ++f) {
      d.codes.push_back(static_cast<std::uint8_t>(code(rng)));
    }
    d.labels.push_back(label(rng));
  }
  return d;
}

void expect_compiled_matches_naive(const core::ApproxMlp& net,
                                   const ds::QuantizedDataset& data) {
  const core::CompiledNet compiled(net);
  core::EvalWorkspace ws;
  ASSERT_EQ(compiled.fa_area(), net.fa_area());
  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto naive = net.forward(data.row(s));
    const auto fast = compiled.forward(data.row(s), ws);
    ASSERT_EQ(naive.size(), fast.size());
    for (std::size_t k = 0; k < naive.size(); ++k) {
      ASSERT_EQ(naive[k], fast[k]) << "sample " << s << " logit " << k;
    }
    ASSERT_EQ(net.predict(data.row(s)), compiled.predict(data.row(s), ws));
  }
  EXPECT_DOUBLE_EQ(core::accuracy(net, data), compiled.accuracy(data, ws));
}

}  // namespace

TEST(CompiledNet, MatchesNaiveOnRandomChromosomes) {
  const mlp::Topology topo{{5, 4, 3}};
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  const auto data = random_dataset(5, 3, 40, bits.input_bits, 11);

  std::mt19937_64 rng(42);
  const MaskStyle styles[] = {MaskStyle::kDense, MaskStyle::kSparse,
                              MaskStyle::kFullyPruned, MaskStyle::kCoarse};
  for (MaskStyle style : styles) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto genes = random_genes(codec, style, rng);
      expect_compiled_matches_naive(codec.decode(genes), data);
    }
  }
}

TEST(CompiledNet, MatchesNaiveAfterCoarsePruningTransform) {
  const mlp::Topology topo{{4, 3, 2}};
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  const auto data = random_dataset(4, 2, 30, bits.input_bits, 3);

  std::mt19937_64 rng(7);
  for (int rep = 0; rep < 8; ++rep) {
    core::ApproxMlp net =
        codec.decode(random_genes(codec, MaskStyle::kSparse, rng));
    // The HwAwareProblem coarse_pruning transform: all-or-nothing masks.
    for (auto& layer : net.layers()) {
      const auto full = static_cast<std::uint32_t>(
          pmlp::bitops::low_mask(layer.input_bits));
      for (auto& c : layer.conns) {
        if (c.mask != 0) c.mask = full;
      }
    }
    net.update_qrelu_shifts();
    expect_compiled_matches_naive(net, data);
  }
}

TEST(CompiledNet, SingleWorkspaceServesManyNets) {
  const core::BitConfig bits;
  const auto small = random_dataset(3, 2, 10, bits.input_bits, 5);
  const auto large = random_dataset(8, 3, 10, bits.input_bits, 6);
  const core::ChromosomeCodec small_codec(mlp::Topology{{3, 2, 2}}, bits);
  const core::ChromosomeCodec large_codec(mlp::Topology{{8, 6, 3}}, bits);

  core::EvalWorkspace ws;
  std::mt19937_64 rng(9);
  for (int rep = 0; rep < 4; ++rep) {
    const core::CompiledNet a(
        small_codec.decode(random_genes(small_codec, MaskStyle::kSparse, rng)));
    const core::CompiledNet b(
        large_codec.decode(random_genes(large_codec, MaskStyle::kDense, rng)));
    // Alternate between shapes through the same (growing) workspace.
    (void)a.accuracy(small, ws);
    (void)b.accuracy(large, ws);
    const core::ApproxMlp ref = large_codec.decode(
        large_codec.encode(large_codec.decode(random_genes(
            large_codec, MaskStyle::kSparse, rng))));
    const core::CompiledNet c(ref);
    EXPECT_DOUBLE_EQ(c.accuracy(large, ws), core::accuracy(ref, large));
  }
}

TEST(EvalCache, HitRefreshesAndEvictsLru) {
  core::EvalCache cache(2);
  const std::vector<int> g1{1, 2, 3}, g2{4, 5, 6}, g3{7, 8, 9};
  nsga2::Problem::Evaluation ev;
  ev.objectives = {0.5, 10.0};

  EXPECT_FALSE(cache.lookup(g1, ev));
  cache.insert(g1, {{0.1, 1.0}, 0.0});
  cache.insert(g2, {{0.2, 2.0}, 0.5});
  EXPECT_EQ(cache.size(), 2u);

  // Touch g1 so g2 becomes LRU, then insert g3: g2 must be evicted.
  EXPECT_TRUE(cache.lookup(g1, ev));
  EXPECT_EQ(ev.objectives[1], 1.0);
  cache.insert(g3, {{0.3, 3.0}, 0.0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(g1, ev));
  EXPECT_FALSE(cache.lookup(g2, ev));
  EXPECT_TRUE(cache.lookup(g3, ev));
  EXPECT_EQ(ev.constraint_violation, 0.0);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_NEAR(stats.hit_rate(), 3.0 / 5.0, 1e-12);
}

TEST(EvalCache, CapacityZeroDisables) {
  core::EvalCache cache(0);
  const std::vector<int> g{1, 2, 3};
  nsga2::Problem::Evaluation ev;
  cache.insert(g, {{0.1, 1.0}, 0.0});
  EXPECT_FALSE(cache.lookup(g, ev));
  EXPECT_EQ(cache.size(), 0u);
}

namespace {

/// Small but real GA-AxC setup (quantized baseline + doped seeds), shared
/// across the front-identity tests below.
struct Fixture {
  ds::QuantizedDataset train;
  mlp::Topology topology;
  mlp::QuantMlp baseline;

  static Fixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 100;
    auto raw = ds::generate(spec);
    auto split = ds::stratified_split(raw, 0.7, 1);
    mlp::Topology topo{{raw.n_features, 3, raw.n_classes}};
    mlp::BackpropConfig bp;
    bp.epochs = 15;
    bp.seed = 21;
    auto fnet = mlp::train_float_mlp(topo, split.train, bp);
    return Fixture{ds::quantize_inputs(split.train, 4), topo,
                   mlp::QuantMlp::from_float(fnet, 8, 4, 8)};
  }
};

const Fixture& fixture() {
  static const Fixture f = Fixture::make();
  return f;
}

nsga2::Result run_ga(const core::HwAwareProblem& problem, int n_threads) {
  nsga2::Config cfg;
  cfg.population = 16;
  cfg.generations = 4;
  cfg.seed = 77;
  cfg.n_threads = n_threads;
  return nsga2::optimize(problem, cfg);
}

void expect_identical(const nsga2::Result& a, const nsga2::Result& b) {
  ASSERT_EQ(a.population.size(), b.population.size());
  ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
  for (std::size_t i = 0; i < a.population.size(); ++i) {
    EXPECT_EQ(a.population[i].genes, b.population[i].genes);
    EXPECT_EQ(a.population[i].objectives, b.population[i].objectives);
  }
  for (std::size_t i = 0; i < a.pareto_front.size(); ++i) {
    EXPECT_EQ(a.pareto_front[i].genes, b.pareto_front[i].genes);
    EXPECT_EQ(a.pareto_front[i].objectives, b.pareto_front[i].objectives);
  }
}

}  // namespace

TEST(EvalEngine, CachedAndUncachedFrontsIdenticalUnderParallelism) {
  const auto& f = fixture();
  const core::ChromosomeCodec codec(f.topology, core::BitConfig{});

  core::ProblemConfig uncached_cfg;
  uncached_cfg.eval_cache_capacity = 0;
  core::HwAwareProblem uncached(codec, f.train, f.baseline, uncached_cfg);
  const auto reference = run_ga(uncached, 1);

  core::ProblemConfig cached_cfg;
  cached_cfg.eval_cache_capacity = 1 << 12;
  for (int n_threads : {1, 4}) {
    core::HwAwareProblem cached(codec, f.train, f.baseline, cached_cfg);
    expect_identical(reference, run_ga(cached, n_threads));
    const auto stats = cached.cache_stats();
    EXPECT_GT(stats.hits, 0) << "elitist GA should produce duplicates";
    EXPECT_EQ(stats.lookups(), 16 * 5);  // pop * (init + generations)
  }
}

TEST(EvalEngine, TinyCacheStaysBitIdentical) {
  const auto& f = fixture();
  const core::ChromosomeCodec codec(f.topology, core::BitConfig{});

  core::ProblemConfig uncached_cfg;
  uncached_cfg.eval_cache_capacity = 0;
  core::HwAwareProblem uncached(codec, f.train, f.baseline, uncached_cfg);

  // A capacity far below the population forces constant eviction; the run
  // must still be bit-identical because cached values equal recomputation.
  core::ProblemConfig tiny_cfg;
  tiny_cfg.eval_cache_capacity = 3;
  core::HwAwareProblem tiny(codec, f.train, f.baseline, tiny_cfg);
  expect_identical(run_ga(uncached, 4), run_ga(tiny, 4));
}

TEST(EvalEngine, ProblemEvaluateMatchesNaiveObjectives) {
  const auto& f = fixture();
  const core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::ProblemConfig cfg;  // cache on: both lookups below must agree
  core::HwAwareProblem problem(codec, f.train, f.baseline, cfg);

  std::mt19937_64 rng(123);
  for (int rep = 0; rep < 6; ++rep) {
    const auto genes = random_genes(codec, MaskStyle::kSparse, rng);
    const auto ev = problem.evaluate(genes);
    const core::ApproxMlp net = codec.decode(genes);
    EXPECT_DOUBLE_EQ(ev.objectives[0], 1.0 - core::accuracy(net, f.train));
    EXPECT_DOUBLE_EQ(ev.objectives[1], static_cast<double>(net.fa_area()));
    // Second call must hit the cache and return the same thing.
    const auto again = problem.evaluate(genes);
    EXPECT_EQ(ev.objectives, again.objectives);
    EXPECT_EQ(ev.constraint_violation, again.constraint_violation);
  }
  EXPECT_EQ(problem.cache_stats().hits, 6);
}

// ---------------------------------------------------------------- batching

namespace {

/// Force a dispatch for one scope, restoring the previous one on exit so
/// test order never leaks an override.
struct ScopedIsa {
  core::SimdIsa prev;
  explicit ScopedIsa(core::SimdIsa isa) : prev(core::active_simd_isa()) {
    core::set_simd_isa(isa);
  }
  ~ScopedIsa() { core::set_simd_isa(prev); }
};

}  // namespace

TEST(SimdDispatch, NamesAndCapabilityClamping) {
  EXPECT_STREQ(core::simd_isa_name(core::SimdIsa::kScalar), "scalar");
  EXPECT_STREQ(core::simd_isa_name(core::SimdIsa::kAvx2), "avx2");
  EXPECT_STREQ(core::simd_isa_name(core::SimdIsa::kNeon), "neon");

  const auto prev = core::active_simd_isa();
  const auto detected = core::detect_simd_isa();
  EXPECT_EQ(core::set_simd_isa(detected), detected);
  EXPECT_EQ(core::active_simd_isa(), detected);
  EXPECT_EQ(core::set_simd_isa(core::SimdIsa::kScalar),
            core::SimdIsa::kScalar);
  // Requesting an ISA this machine lacks degrades to scalar, never UB.
  const auto other = detected == core::SimdIsa::kAvx2 ? core::SimdIsa::kNeon
                                                      : core::SimdIsa::kAvx2;
  EXPECT_EQ(core::set_simd_isa(other), core::SimdIsa::kScalar);
  core::set_simd_isa(prev);
}

TEST(PredictBatch, BitIdenticalToPerSamplePredictAcrossStylesAndSizes) {
  const mlp::Topology topo{{6, 5, 4}};
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  // 129 = two full 64-sample blocks + a 1-sample tail, so every kernel
  // (full vector lanes, partial tail, single sample) is exercised.
  const auto data = random_dataset(6, 4, 129, bits.input_bits, 21);

  std::mt19937_64 rng(99);
  const MaskStyle styles[] = {MaskStyle::kDense, MaskStyle::kSparse,
                              MaskStyle::kFullyPruned, MaskStyle::kCoarse};
  const std::size_t sizes[] = {1, 7, 32, 129};
  core::EvalWorkspace ws;
  for (MaskStyle style : styles) {
    for (int rep = 0; rep < 4; ++rep) {
      const core::ApproxMlp net = codec.decode(random_genes(codec, style, rng));
      const core::CompiledNet compiled(net);
      // Every net the paper's BitConfig can decode must take the fast path.
      EXPECT_TRUE(compiled.block_safe());
      for (std::size_t n : sizes) {
        std::vector<std::int32_t> preds(n);
        compiled.predict_batch(data.codes.data(), n, preds.data(), ws);
        for (std::size_t s = 0; s < n; ++s) {
          ASSERT_EQ(preds[s], compiled.predict(data.row(s), ws))
              << "style " << static_cast<int>(style) << " batch " << n
              << " sample " << s;
          ASSERT_EQ(preds[s], net.predict(data.row(s)));
        }
      }
      const auto all = compiled.predict_batch(data, ws);
      ASSERT_EQ(all.size(), data.size());
      EXPECT_DOUBLE_EQ(compiled.accuracy(data, ws), core::accuracy(net, data));
    }
  }
}

TEST(PredictBatch, ForcedScalarDispatchBitIdenticalToSimd) {
  const mlp::Topology topo{{6, 5, 4}};
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  const auto data = random_dataset(6, 4, 129, bits.input_bits, 5);

  std::mt19937_64 rng(17);
  core::EvalWorkspace ws;
  for (int rep = 0; rep < 6; ++rep) {
    const core::ApproxMlp net =
        codec.decode(random_genes(codec, MaskStyle::kSparse, rng));
    const core::CompiledNet compiled(net);
    std::vector<std::int32_t> scalar_preds(data.size());
    std::vector<std::int32_t> simd_preds(data.size());
    {
      ScopedIsa forced(core::SimdIsa::kScalar);
      ASSERT_EQ(core::active_simd_isa(), core::SimdIsa::kScalar);
      compiled.predict_batch(data.codes.data(), data.size(),
                             scalar_preds.data(), ws);
    }
    {
      // On a scalar-only machine both runs dispatch scalar and the test
      // degenerates to a determinism check — still meaningful.
      ScopedIsa forced(core::detect_simd_isa());
      compiled.predict_batch(data.codes.data(), data.size(),
                             simd_preds.data(), ws);
    }
    for (std::size_t s = 0; s < data.size(); ++s) {
      ASSERT_EQ(scalar_preds[s], simd_preds[s]) << "sample " << s;
      ASSERT_EQ(scalar_preds[s], net.predict(data.row(s)));
    }
  }
}

TEST(PredictBatch, OverflowUnsafeNetFallsBackToPerSamplePath) {
  // act_bits wide enough that the QReLU clamp exceeds int32 makes the
  // static bound fail: block_safe() must refuse and predict_batch must
  // route through the exact int64 per-sample path.
  core::BitConfig bits;
  bits.act_bits = 36;
  const mlp::Topology topo{{5, 4, 3}};
  const core::ChromosomeCodec codec(topo, bits);
  const auto data = random_dataset(5, 3, 70, bits.input_bits, 9);

  std::mt19937_64 rng(31);
  core::EvalWorkspace ws;
  const core::ApproxMlp net =
      codec.decode(random_genes(codec, MaskStyle::kDense, rng));
  const core::CompiledNet compiled(net);
  EXPECT_FALSE(compiled.block_safe());
  std::vector<std::int32_t> preds(data.size());
  compiled.predict_batch(data.codes.data(), data.size(), preds.data(), ws);
  for (std::size_t s = 0; s < data.size(); ++s) {
    ASSERT_EQ(preds[s], net.predict(data.row(s)));
  }
  EXPECT_DOUBLE_EQ(compiled.accuracy(data, ws), core::accuracy(net, data));
}
