// Tests for the adder-architecture ablation (variants.hpp).
#include <gtest/gtest.h>

#include <random>

#include "pmlp/adder/variants.hpp"

namespace adder = pmlp::adder;

namespace {

adder::NeuronAdderSpec wide_neuron(int n_summands, std::uint32_t mask = 0xF) {
  adder::NeuronAdderSpec n;
  for (int i = 0; i < n_summands; ++i) {
    n.summands.push_back({mask, 4, i % 3, i % 2 == 0 ? +1 : -1});
  }
  n.bias = 21;
  return n;
}

}  // namespace

TEST(Variants, FaOnlyMatchesPaperModel) {
  const auto spec = wide_neuron(6);
  const auto v = adder::fa_only_cost(spec);
  const auto model = adder::estimate_adder(spec);
  EXPECT_EQ(v.full_adders, model.total_fa());
  EXPECT_EQ(v.half_adders, 0);
}

TEST(Variants, RippleUsesOneCpaPerOperand) {
  adder::NeuronAdderSpec spec;
  spec.summands.push_back({0xF, 4, 0, +1});
  spec.summands.push_back({0xF, 4, 0, +1});
  spec.bias = 0;
  const auto v = adder::ripple_accumulate_cost(spec);
  // Two operands, no constant: one CPA (first operand is wiring).
  EXPECT_EQ(v.stages, 1);
  EXPECT_EQ(v.half_adders, 1);
  EXPECT_GT(v.full_adders, 0);
}

TEST(Variants, CsaBeatsRippleForWideFanIn) {
  // The reason bespoke neurons use CSA trees: for many operands the
  // sequential ripple accumulation pays a full CPA per summand.
  const auto spec = wide_neuron(12);
  const auto csa = adder::csa_with_ha_cost(spec);
  const auto ripple = adder::ripple_accumulate_cost(spec);
  EXPECT_LT(csa.ha_equivalents(), ripple.ha_equivalents());
}

TEST(Variants, HaVariantNeverWorseThanFaOnlyInCells) {
  // Allowing HAs can only reduce the number of (more expensive) FAs the
  // reduction needs; in HA-equivalents the Wallace-style variant should
  // not be dramatically worse across random neurons.
  std::mt19937 rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    adder::NeuronAdderSpec spec;
    const int n = 3 + static_cast<int>(rng() % 8);
    for (int i = 0; i < n; ++i) {
      spec.summands.push_back({rng() & 0xFu, 4,
                               static_cast<int>(rng() % 5),
                               (rng() & 1) ? +1 : -1});
    }
    spec.bias = static_cast<int>(rng() % 64) - 32;
    const auto fa_only = adder::fa_only_cost(spec);
    const auto with_ha = adder::csa_with_ha_cost(spec);
    // The FA count of the HA variant is bounded by the FA-only count.
    EXPECT_LE(with_ha.full_adders, fa_only.full_adders + 2) << trial;
  }
}

TEST(Variants, EmptyNeuronIsFree) {
  adder::NeuronAdderSpec spec;
  spec.bias = 0;
  EXPECT_EQ(adder::ripple_accumulate_cost(spec).ha_equivalents(), 0.0);
  EXPECT_EQ(adder::csa_with_ha_cost(spec).ha_equivalents(), 0.0);
  EXPECT_EQ(adder::fa_only_cost(spec).ha_equivalents(), 0.0);
}

class VariantsSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantsSweep, CostsGrowWithFanIn) {
  const int n = GetParam();
  const auto small = wide_neuron(n);
  const auto big = wide_neuron(n + 4);
  EXPECT_LE(adder::fa_only_cost(small).ha_equivalents(),
            adder::fa_only_cost(big).ha_equivalents());
  EXPECT_LE(adder::csa_with_ha_cost(small).ha_equivalents(),
            adder::csa_with_ha_cost(big).ha_equivalents());
  EXPECT_LE(adder::ripple_accumulate_cost(small).ha_equivalents(),
            adder::ripple_accumulate_cost(big).ha_equivalents());
}

INSTANTIATE_TEST_SUITE_P(FanIns, VariantsSweep,
                         ::testing::Values(2, 4, 6, 8, 12));
