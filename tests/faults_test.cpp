// Tests for stuck-at fault injection (faults.hpp) and the random-search
// optimizer baseline (random_search.hpp) + coarse-pruning problem mode.
#include <gtest/gtest.h>

#include <random>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/problem.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/faults.hpp"
#include "pmlp/nsga2/random_search.hpp"

namespace nl = pmlp::netlist;
namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace nsga2 = pmlp::nsga2;

namespace {

nl::BespokeCircuit small_circuit(std::uint64_t seed) {
  const mlp::Topology topo{{4, 3, 2}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return nl::build_bespoke_mlp(codec.decode(genes).to_bespoke_desc("f"));
}

}  // namespace

TEST(Faults, EnumerationCoversEveryGateOutput) {
  const auto circuit = small_circuit(3);
  const auto sites = nl::enumerate_fault_sites(circuit.nl);
  long outputs = 0;
  for (const auto& g : circuit.nl.gates()) {
    for (auto o : g.out) {
      if (o >= 0) ++outputs;
    }
  }
  EXPECT_EQ(sites.size(), static_cast<std::size_t>(2 * outputs));  // sa0+sa1
}

TEST(Faults, InjectionChangesSomething) {
  const auto circuit = small_circuit(5);
  const std::vector<std::uint8_t> x = {3, 9, 12, 7};
  const int clean = circuit.predict(x);
  // At least one stuck-at fault must flip the decision for some input
  // (otherwise the circuit would be entirely redundant).
  bool any_change = false;
  for (const auto& site : nl::enumerate_fault_sites(circuit.nl)) {
    if (nl::predict_with_fault(circuit, x, site) != clean) {
      any_change = true;
      break;
    }
  }
  EXPECT_TRUE(any_change);
}

TEST(Faults, BenignOverrideKeepsCleanBehaviour) {
  // Forcing a gate output to the value it already has must not change the
  // prediction: check by injecting both stuck values and asserting at
  // least one of them matches the clean run for every site.
  const auto circuit = small_circuit(7);
  const std::vector<std::uint8_t> x = {1, 2, 3, 4};
  const int clean = circuit.predict(x);
  for (const auto& site : nl::enumerate_fault_sites(circuit.nl)) {
    nl::FaultSite sa0 = site;
    sa0.stuck_value = false;
    nl::FaultSite sa1 = site;
    sa1.stuck_value = true;
    const int p0 = nl::predict_with_fault(circuit, x, sa0);
    const int p1 = nl::predict_with_fault(circuit, x, sa1);
    EXPECT_TRUE(p0 == clean || p1 == clean)
        << "gate " << site.gate_index << " slot " << site.output_slot;
  }
}

TEST(Faults, CampaignReportIsConsistent) {
  const auto circuit = small_circuit(11);
  std::mt19937_64 rng(13);
  std::vector<std::uint8_t> codes;
  std::vector<int> labels;
  for (int s = 0; s < 40; ++s) {
    for (int f = 0; f < 4; ++f) {
      codes.push_back(static_cast<std::uint8_t>(rng() & 0xF));
    }
    labels.push_back(static_cast<int>(rng() % 2));
  }
  nl::FaultCampaignConfig cfg;
  cfg.max_sites = 60;
  const auto report =
      nl::run_fault_campaign(circuit, codes, labels, 4, cfg);
  EXPECT_GT(report.sites_evaluated, 0u);
  EXPECT_LE(report.sites_evaluated, 60u);
  EXPECT_LE(report.worst_faulty_accuracy, report.mean_faulty_accuracy + 1e-12);
  EXPECT_GE(report.masked_fraction, 0.0);
  EXPECT_LE(report.masked_fraction, 1.0);
}

TEST(Faults, CampaignRejectsBadShape) {
  const auto circuit = small_circuit(17);
  std::vector<std::uint8_t> codes = {1, 2, 3};
  std::vector<int> labels = {0};
  EXPECT_THROW(
      (void)nl::run_fault_campaign(circuit, codes, labels, 4, {}),
      std::invalid_argument);
}

// ----------------------------------------------------------- random search

namespace {

/// Sphere-like discrete problem: minimize (sum g, sum (5-g)^2).
class ToyProblem final : public nsga2::Problem {
 public:
  [[nodiscard]] int n_genes() const override { return 6; }
  [[nodiscard]] nsga2::GeneBounds bounds(int) const override { return {0, 9}; }
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    double f1 = 0, f2 = 0;
    for (int g : genes) {
      f1 += g;
      f2 += (5.0 - g) * (5.0 - g);
    }
    return {{f1, f2}, 0.0};
  }
};

}  // namespace

TEST(RandomSearch, FrontIsNonDominatedAndSorted) {
  ToyProblem problem;
  nsga2::RandomSearchConfig cfg;
  cfg.evaluations = 3000;
  cfg.seed = 3;
  const auto res = nsga2::random_search(problem, cfg);
  EXPECT_EQ(res.evaluations, 3000);
  ASSERT_FALSE(res.pareto_front.empty());
  for (std::size_t i = 0; i < res.pareto_front.size(); ++i) {
    for (std::size_t j = 0; j < res.pareto_front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(nsga2::dominates(res.pareto_front[i], res.pareto_front[j]));
    }
  }
  for (std::size_t i = 1; i < res.pareto_front.size(); ++i) {
    EXPECT_LE(res.pareto_front[i - 1].objectives,
              res.pareto_front[i].objectives);
  }
}

TEST(RandomSearch, DeterministicAndThreadInvariant) {
  ToyProblem problem;
  nsga2::RandomSearchConfig cfg;
  cfg.evaluations = 1000;
  cfg.seed = 5;
  cfg.n_threads = 1;
  const auto a = nsga2::random_search(problem, cfg);
  cfg.n_threads = 4;
  const auto b = nsga2::random_search(problem, cfg);
  ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
  for (std::size_t i = 0; i < a.pareto_front.size(); ++i) {
    EXPECT_EQ(a.pareto_front[i].objectives, b.pareto_front[i].objectives);
  }
}

// ----------------------------------------------------------- coarse masks

TEST(CoarsePruning, MasksAreAllOrNothingInEvaluation) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 160;
  const auto raw = ds::generate(spec);
  const auto train = ds::quantize_inputs(raw, 4);
  const mlp::Topology topo{{10, 3, 2}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});

  core::ProblemConfig coarse_cfg;
  coarse_cfg.coarse_pruning = true;
  core::HwAwareProblem coarse(codec, train, std::nullopt, coarse_cfg);
  core::HwAwareProblem fine(codec, train, std::nullopt, {});

  // A genome with partial masks: coarse evaluation must price it as if
  // every nonzero mask were full, i.e. area strictly larger than fine.
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()), 0);
  for (int g = 0; g < codec.n_genes(); ++g) {
    if (codec.kind(g) == core::GeneKind::kMask) {
      genes[static_cast<std::size_t>(g)] = 0b0101;
    }
  }
  const auto coarse_ev = coarse.evaluate(genes);
  const auto fine_ev = fine.evaluate(genes);
  EXPECT_GT(coarse_ev.objectives[1], fine_ev.objectives[1]);
}
