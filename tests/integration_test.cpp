// End-to-end tests of the full Fig. 2 framework: dataset -> baseline ->
// GA-AxC training -> estimated Pareto -> netlist "synthesis" -> functional
// sign-off -> feasibility classification -> Verilog export.
#include <gtest/gtest.h>

#include <sstream>

#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/hwmodel/power.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/verilog.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace hw = pmlp::hwmodel;
namespace nl = pmlp::netlist;

namespace {

struct Flow {
  ds::QuantizedDataset train;
  ds::QuantizedDataset test;
  mlp::Topology topology;
  mlp::QuantMlp baseline;
  hw::CircuitCost baseline_cost;
  core::TrainingResult training;
  std::vector<core::HwEvaluatedPoint> evaluated;

  static Flow make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 280;
    auto raw = ds::generate(spec);
    auto split = ds::stratified_split(raw, 0.7, 4);
    mlp::Topology topo{{raw.n_features, 3, raw.n_classes}};
    mlp::BackpropConfig bp;
    bp.epochs = 60;
    bp.seed = 41;
    auto fnet = mlp::train_float_mlp(topo, split.train, bp);
    auto baseline = mlp::QuantMlp::from_float(fnet, 8, 4, 8);

    Flow f{ds::quantize_inputs(split.train, 4),
           ds::quantize_inputs(split.test, 4),
           topo,
           baseline,
           {},
           {},
           {}};
    const auto& lib = hw::CellLibrary::egfet_1v();
    f.baseline_cost =
        nl::build_bespoke_mlp(nl::to_bespoke_desc(baseline, "exact"))
            .nl.cost(lib);

    core::TrainerConfig cfg;
    cfg.ga.population = 30;
    cfg.ga.generations = 20;
    cfg.ga.seed = 8;
    f.training = core::train_ga_axc(topo, f.train, baseline, cfg);
    f.evaluated = core::evaluate_hardware(f.training.estimated_pareto, f.test,
                                          lib, {/*equivalence_samples=*/-1});
    return f;
  }
};

const Flow& flow() {
  static const Flow f = Flow::make();
  return f;
}

}  // namespace

TEST(EndToEnd, TrainingProducesNonEmptyFront) {
  ASSERT_FALSE(flow().training.estimated_pareto.empty());
  EXPECT_GT(flow().training.baseline_train_accuracy, 0.85);
}

TEST(EndToEnd, NetlistBitExactWithEq4ModelOnFullTestSet) {
  // equivalence_samples = -1 checked the entire test set per candidate.
  for (const auto& p : flow().evaluated) {
    EXPECT_TRUE(p.functional_match);
  }
}

TEST(EndToEnd, ApproximateCircuitsBeatBaselineArea) {
  // Paper headline: >5x area reduction at <=5% accuracy loss. Even this
  // scaled-down GA run must find a design several times smaller than the
  // exact bespoke baseline within the loss bound.
  const double base_acc = mlp::accuracy(flow().baseline, flow().test);
  const auto best =
      core::best_within_loss(flow().evaluated, base_acc, 0.05);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(flow().baseline_cost.area_mm2 / best->cost.area_mm2, 2.0);
  EXPECT_GT(flow().baseline_cost.power_uw / best->cost.power_uw, 2.0);
}

TEST(EndToEnd, TrueParetoIsSubsetOfEvaluated) {
  const auto front = core::true_pareto(flow().evaluated);
  ASSERT_FALSE(front.empty());
  EXPECT_LE(front.size(), flow().evaluated.size());
  // Sorted by area.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].cost.area_mm2, front[i - 1].cost.area_mm2);
    // And accuracy must increase along the front (else dominated).
    EXPECT_GT(front[i].test_accuracy, front[i - 1].test_accuracy);
  }
}

TEST(EndToEnd, VoltageScalingImprovesFeasibilityZone) {
  const double base_acc = mlp::accuracy(flow().baseline, flow().test);
  const auto best = core::best_within_loss(flow().evaluated, base_acc, 0.05);
  ASSERT_TRUE(best.has_value());

  const auto circuit =
      nl::build_bespoke_mlp(best->model.to_bespoke_desc("best"));
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto cost_1v = circuit.nl.cost(lib);
  const auto cost_06v = circuit.nl.cost(lib.at_voltage(0.6));
  EXPECT_NEAR(cost_06v.power_uw / cost_1v.power_uw, 0.216, 1e-9);
  EXPECT_DOUBLE_EQ(cost_06v.area_mm2, cost_1v.area_mm2);

  // The 0.6 V zone can only be at least as good (lower power).
  const auto zone_1v =
      hw::classify_feasibility(cost_1v.area_cm2(), cost_1v.power_mw());
  const auto zone_06v =
      hw::classify_feasibility(cost_06v.area_cm2(), cost_06v.power_mw());
  EXPECT_LE(static_cast<int>(zone_06v), static_cast<int>(zone_1v));
}

TEST(EndToEnd, VerilogExportOfBestDesign) {
  const double base_acc = mlp::accuracy(flow().baseline, flow().test);
  const auto best = core::best_within_loss(flow().evaluated, base_acc, 0.05);
  ASSERT_TRUE(best.has_value());
  const auto circuit =
      nl::build_bespoke_mlp(best->model.to_bespoke_desc("best"));
  const auto v = nl::to_verilog(circuit.nl, "approx_mlp_best");
  EXPECT_NE(v.find("module approx_mlp_best"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // All 10 input features at 4 bits must appear as ports.
  EXPECT_NE(v.find("x9_3_"), std::string::npos);
}

TEST(EndToEnd, BaselineNetlistMatchesQuantMlp) {
  const auto circuit = nl::build_bespoke_mlp(
      nl::to_bespoke_desc(flow().baseline, "exact"));
  for (std::size_t i = 0; i < std::min<std::size_t>(flow().test.size(), 60);
       ++i) {
    EXPECT_EQ(circuit.predict(flow().test.row(i)),
              flow().baseline.predict(flow().test.row(i)));
  }
}

TEST(EndToEnd, FaProxyCorrelatesWithNetlistArea) {
  // The training-time FA-count proxy must rank designs consistently with
  // the "synthesized" area (Spearman-like check on the evaluated set).
  const auto& pts = flow().evaluated;
  int concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const auto d_proxy = pts[i].fa_area - pts[j].fa_area;
      const auto d_real = pts[i].cost.area_mm2 - pts[j].cost.area_mm2;
      if (d_proxy == 0 || d_real == 0.0) continue;
      if ((d_proxy > 0) == (d_real > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  if (concordant + discordant < 6) {
    GTEST_SKIP() << "Pareto front too small for a rank correlation";
  }
  // The proxy omits QReLU/argmax overheads, so perfect concordance is not
  // expected — but it must rank designs better than a coin flip.
  EXPECT_GE(concordant, discordant);
}
