#include <gtest/gtest.h>

#include "pmlp/baselines/date21_sc.hpp"
#include "pmlp/baselines/tc23.hpp"
#include "pmlp/baselines/tcad23.hpp"
#include "pmlp/bitops/bitops.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/netlist/from_quant.hpp"
#include "pmlp/netlist/opt.hpp"

namespace bl = pmlp::baselines;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace hw = pmlp::hwmodel;

namespace {

struct Fixture {
  ds::QuantizedDataset train;
  ds::QuantizedDataset test;
  mlp::QuantMlp baseline;
  mlp::FloatMlp fnet;

  static Fixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 260;
    auto raw = ds::generate(spec);
    auto split = ds::stratified_split(raw, 0.7, 2);
    mlp::BackpropConfig cfg;
    cfg.epochs = 50;
    cfg.seed = 31;
    auto fnet = mlp::train_float_mlp(
        mlp::Topology{{raw.n_features, 3, raw.n_classes}}, split.train, cfg);
    return Fixture{ds::quantize_inputs(split.train, 4),
                   ds::quantize_inputs(split.test, 4),
                   mlp::QuantMlp::from_float(fnet, 8, 4, 8), fnet};
  }
};

const Fixture& fixture() {
  static const Fixture f = Fixture::make();
  return f;
}

}  // namespace

// ------------------------------------------------------------------ TC'23

TEST(Tc23, SnapToPopcountProperties) {
  for (std::int32_t c = -127; c <= 127; ++c) {
    for (int p = 1; p <= 3; ++p) {
      const auto s = bl::snap_to_popcount(c, p);
      const auto mag = static_cast<std::uint64_t>(s < 0 ? -s : s);
      EXPECT_LE(pmlp::bitops::popcount(mag), p) << c << " p=" << p;
      // Sign preserved.
      if (c != 0) EXPECT_EQ(s < 0, c < 0) << c;
      // Values already within budget are untouched.
      const auto cmag = static_cast<std::uint64_t>(c < 0 ? -c : c);
      if (pmlp::bitops::popcount(cmag) <= p) EXPECT_EQ(s, c);
    }
  }
}

TEST(Tc23, SnapIsNearestAmongLowPopcountValues) {
  // Exhaustive optimality check for popcount budget 1 (pure pow2).
  for (std::int32_t c = 1; c <= 127; ++c) {
    const auto s = bl::snap_to_popcount(c, 1);
    for (int k = 0; k <= 7; ++k) {
      EXPECT_LE(std::abs(s - c), std::abs((1 << k) - c)) << c;
    }
  }
}

TEST(Tc23, TruncationRemovesLowColumns) {
  const auto& f = fixture();
  const auto desc = bl::approximate_quant_mlp(f.baseline, 3, 2);
  for (const auto& layer : desc.layers) {
    for (const auto& neuron : layer.neurons) {
      for (const auto& c : neuron.conns) {
        // No retained bit may land in a column below the truncation point.
        const auto occ = static_cast<std::uint64_t>(c.mask) << c.shift;
        EXPECT_EQ(occ & 0b11u, 0u);
      }
      EXPECT_EQ(neuron.bias % 4, 0);
    }
  }
}

TEST(Tc23, NoApproximationReproducesBaseline) {
  const auto& f = fixture();
  // popcount 8 (no snapping), truncation 0 => identical behaviour.
  const auto desc = bl::approximate_quant_mlp(f.baseline, 8, 0);
  for (std::size_t i = 0; i < std::min<std::size_t>(f.test.size(), 80); ++i) {
    EXPECT_EQ(bl::predict_desc(desc, f.test.row(i), 8),
              f.baseline.predict(f.test.row(i)));
  }
}

TEST(Tc23, SweepMeetsAccuracyBoundAndShrinksCircuit) {
  const auto& f = fixture();
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto design = bl::run_tc23(f.baseline, f.train, f.test, lib);
  const double base_acc = mlp::accuracy(f.baseline, f.train);
  EXPECT_GE(design.train_accuracy, base_acc - 0.05 - 1e-9);

  // The approximate circuit must be smaller than the exact bespoke one.
  const auto exact =
      pmlp::netlist::build_bespoke_mlp(pmlp::netlist::to_bespoke_desc(
          f.baseline, "exact"));
  const auto exact_cost = exact.nl.cost(lib);
  EXPECT_LT(design.cost.area_mm2, exact_cost.area_mm2);
  EXPECT_GT(design.test_accuracy, 0.5);
}

// ---------------------------------------------------------------- TCAD'23

TEST(Tcad23, VosAccuracyDegradesWithUpsets) {
  const auto& f = fixture();
  const auto desc = bl::approximate_quant_mlp(f.baseline, 3, 1);
  const double clean = bl::vos_accuracy(desc, f.test, 8, 0.0, 1);
  const double noisy = bl::vos_accuracy(desc, f.test, 8, 0.8, 1);
  EXPECT_GT(clean, noisy);
}

TEST(Tcad23, ZeroUpsetMatchesPredictDesc) {
  const auto& f = fixture();
  const auto desc = bl::approximate_quant_mlp(f.baseline, 2, 1);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < f.test.size(); ++i) {
    if (bl::predict_desc(desc, f.test.row(i), 8) == f.test.labels[i]) ++correct;
  }
  const double expect =
      static_cast<double>(correct) / static_cast<double>(f.test.size());
  EXPECT_DOUBLE_EQ(bl::vos_accuracy(desc, f.test, 8, 0.0, 5), expect);
}

TEST(Tcad23, PowerBelowNominalVoltageRun) {
  const auto& f = fixture();
  const auto& lib = hw::CellLibrary::egfet_1v();
  bl::Tcad23Config cfg;
  const auto design = bl::run_tcad23(f.baseline, f.train, f.test, lib, cfg);
  EXPECT_DOUBLE_EQ(design.voltage, 0.8);
  // The same (synthesis-cleaned) circuit priced at 1 V must draw more
  // power, by exactly the V^3 scaling factor.
  const auto circuit = pmlp::netlist::build_bespoke_mlp(design.approx.desc);
  const auto nominal = pmlp::netlist::optimize(circuit.nl).cost(lib);
  EXPECT_LT(design.power_mw, nominal.power_mw());
  EXPECT_NEAR(design.power_mw / nominal.power_mw(), 0.512, 1e-9);
  // Relaxed printed clocks leave huge slack: no upsets at 200 ms.
  EXPECT_DOUBLE_EQ(design.upset_probability, 0.0);
}

// ---------------------------------------------------------------- DATE'21

TEST(ScMlp, XnorMultiplyIsUnbiased) {
  // Single neuron, single input, no bias influence: output counter mean
  // approximates the bipolar product of input and weight.
  mlp::FloatMlp net(mlp::Topology{{1, 1}}, 1);
  net.layers()[0].weights = {0.5};
  net.layers()[0].biases = {0.0};
  bl::ScConfig cfg;
  cfg.stream_length = 4096;
  bl::ScMlp sc(net, cfg);
  // predict() is argmax over one class -> always 0; use accuracy on a
  // fabricated dataset instead to exercise the path.
  ds::QuantizedDataset d;
  d.n_features = 1;
  d.n_classes = 1;
  d.input_bits = 4;
  d.codes = {15};
  d.labels = {0};
  EXPECT_DOUBLE_EQ(sc.accuracy(d), 1.0);
}

TEST(ScMlp, AccuracyReasonableOnEasyBinaryTask) {
  const auto& f = fixture();
  bl::ScConfig cfg;
  cfg.stream_length = 1024;
  bl::ScMlp sc(f.fnet, cfg);
  const double acc = sc.accuracy(f.test, 120);
  // SC keeps *some* signal on an easy binary task...
  EXPECT_GT(acc, 0.55);
  // ...but loses clearly against the digital baseline (paper: -35% avg).
  EXPECT_LT(acc, mlp::accuracy(f.baseline, f.test));
}

TEST(ScMlp, CollapsesOnManyClasses) {
  // Pendigits-like many-class task: SC scaled addition + short streams
  // destroy the margin (paper: 22% on Pendigits).
  auto spec = ds::pendigits_spec();
  spec.n_samples = 300;
  const auto raw = ds::generate(spec);
  mlp::BackpropConfig bp;
  bp.epochs = 40;
  bp.seed = 17;
  const auto fnet = mlp::train_float_mlp(
      mlp::Topology{{raw.n_features, 5, raw.n_classes}}, raw, bp);
  const auto q = ds::quantize_inputs(raw, 4);
  bl::ScMlp sc(fnet, {});
  const double sc_acc = sc.accuracy(q, 150);
  const double float_acc = mlp::accuracy(fnet, raw);
  EXPECT_LT(sc_acc, float_acc - 0.2);
}

TEST(ScMlp, CostIsSmallButNonzero) {
  const auto& f = fixture();
  bl::ScMlp sc(f.fnet, {});
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto cost = sc.cost(lib);
  EXPECT_GT(cost.cell_count, 0);
  EXPECT_GT(cost.area_mm2, 0.0);
  // SC is far smaller than the exact bespoke multiplier design...
  const auto exact = pmlp::netlist::build_bespoke_mlp(
      pmlp::netlist::to_bespoke_desc(f.baseline, "exact"));
  EXPECT_LT(cost.area_mm2, exact.nl.cost(lib).area_mm2);
}

TEST(ScMlp, RejectsDegenerateStream) {
  const auto& f = fixture();
  bl::ScConfig cfg;
  cfg.stream_length = 4;
  EXPECT_THROW(bl::ScMlp(f.fnet, cfg), std::invalid_argument);
}
