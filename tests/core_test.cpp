#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/hardware_analysis.hpp"
#include "pmlp/core/pareto.hpp"
#include "pmlp/core/problem.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/core/trainer.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;

namespace {

struct Fixture {
  ds::Dataset raw;
  ds::QuantizedDataset train;
  ds::QuantizedDataset test;
  mlp::Topology topology;
  mlp::QuantMlp baseline;

  static Fixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 300;
    auto raw = ds::generate(spec);
    auto split = ds::stratified_split(raw, 0.7, 1);
    mlp::Topology topo{{raw.n_features, 3, raw.n_classes}};
    mlp::BackpropConfig cfg;
    cfg.epochs = 60;
    cfg.seed = 21;
    auto fnet = mlp::train_float_mlp(topo, split.train, cfg);
    return Fixture{std::move(raw), ds::quantize_inputs(split.train, 4),
                   ds::quantize_inputs(split.test, 4), topo,
                   mlp::QuantMlp::from_float(fnet, 8, 4, 8)};
  }
};

const Fixture& fixture() {
  static const Fixture f = Fixture::make();
  return f;
}

}  // namespace

// ------------------------------------------------------------- ApproxMlp

TEST(ApproxMlp, FreshNetworkIsFullyPruned) {
  core::ApproxMlp net(mlp::Topology{{4, 3, 2}}, core::BitConfig{});
  EXPECT_EQ(net.fa_area(), 0);
  EXPECT_EQ(net.wire_count(), 0);
  const std::vector<std::uint8_t> x = {1, 2, 3, 4};
  const auto out = net.forward(x);
  for (auto v : out) EXPECT_EQ(v, 0);
}

TEST(ApproxMlp, ForwardImplementsEq4) {
  // Hand-computed single neuron: x = {5, 12}, masks {0b0101, 0b1110},
  // signs {+,-}, exponents {1, 0}, bias 7:
  //   +((5 & 0b0101) << 1) - ((12 & 0b1110) << 0) + 7 = +10 - 12 + 7 = 5.
  core::ApproxMlp net(mlp::Topology{{2, 1, 2}}, core::BitConfig{});
  auto& l0 = net.layers()[0];
  l0.conn(0, 0) = {0b0101, +1, 1};
  l0.conn(0, 1) = {0b1110, -1, 0};
  l0.biases[0] = 7;
  // Output layer: pass hidden through with unit weight on class 0.
  auto& l1 = net.layers()[1];
  l1.conn(0, 0) = {0xFF, +1, 0};
  net.update_qrelu_shifts();

  const std::vector<std::uint8_t> x = {5, 12};
  // hidden max: 10 + 7 = 17 < 256 -> shift 0, QReLU(5) = 5.
  EXPECT_EQ(net.layers()[0].qrelu_shift, 0);
  const auto out = net.forward(x);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(net.predict(x), 0);
}

TEST(ApproxMlp, QreluShiftScalesLargeAccumulators) {
  core::ApproxMlp net(mlp::Topology{{4, 1, 2}}, core::BitConfig{});
  auto& l0 = net.layers()[0];
  for (int i = 0; i < 4; ++i) l0.conn(0, i) = {0xF, +1, 6};  // max 15<<6 each
  net.update_qrelu_shifts();
  // Max acc = 4 * 960 = 3840 -> 12 bits -> shift 4.
  EXPECT_EQ(net.layers()[0].qrelu_shift, 4);
  const std::vector<std::uint8_t> x = {15, 15, 15, 15};
  const auto out = net.forward(x);
  EXPECT_EQ(out[0], 0);  // output layer untouched (all pruned): bias 0
}

TEST(ApproxMlp, FromQuantBaselineIsNearlyExact) {
  const auto& f = fixture();
  const auto doped =
      core::ApproxMlp::from_quant_baseline(f.baseline, core::BitConfig{});
  // All masks fully set (no pruning) except genuinely zero weights.
  for (std::size_t l = 0; l < doped.layers().size(); ++l) {
    const auto& al = doped.layers()[l];
    const auto& ql = f.baseline.layers()[l];
    for (int o = 0; o < al.n_out; ++o) {
      for (int i = 0; i < al.n_in; ++i) {
        if (ql.weight(o, i) == 0) {
          EXPECT_EQ(al.conn(o, i).mask, 0u);
        } else {
          EXPECT_EQ(al.conn(o, i).mask,
                    pmlp::bitops::low_mask(al.input_bits));
        }
      }
    }
  }
  // Accuracy within pow2-snapping distance of the quantized baseline
  // (nearest-pow2 weights carry up to 33% per-weight error, so allow a
  // generous but bounded drop).
  const double base_acc = mlp::accuracy(f.baseline, f.train);
  const double doped_acc = core::accuracy(doped, f.train);
  EXPECT_GT(doped_acc, base_acc - 0.25);
}

TEST(ApproxMlp, FaAreaDropsWithPruning) {
  const auto& f = fixture();
  auto net = core::ApproxMlp::from_quant_baseline(f.baseline, core::BitConfig{});
  const long full = net.fa_area();
  // Clear the low two bits of every mask.
  for (auto& layer : net.layers()) {
    for (auto& c : layer.conns) c.mask &= ~0b11u;
  }
  net.update_qrelu_shifts();
  EXPECT_LT(net.fa_area(), full);
}

// ------------------------------------------------------------ chromosome

TEST(ChromosomeCodec, GeneCountMatchesFig3Layout) {
  // Per neuron: 3 genes per input + 1 bias.
  core::ChromosomeCodec codec(mlp::Topology{{10, 3, 2}}, core::BitConfig{});
  EXPECT_EQ(codec.n_genes(), (3 * 10 + 1) * 3 + (3 * 3 + 1) * 2);
}

TEST(ChromosomeCodec, EncodeDecodeRoundTrip) {
  const core::BitConfig bits;
  core::ChromosomeCodec codec(mlp::Topology{{5, 4, 3}}, bits);
  std::mt19937 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
    for (int g = 0; g < codec.n_genes(); ++g) {
      const auto b = codec.bounds(g);
      genes[static_cast<std::size_t>(g)] =
          b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
    }
    const auto net = codec.decode(genes);
    EXPECT_EQ(codec.encode(net), genes);
  }
}

TEST(ChromosomeCodec, DecodeClampsOutOfBounds) {
  core::ChromosomeCodec codec(mlp::Topology{{2, 2}}, core::BitConfig{});
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()), 9999);
  const auto net = codec.decode(genes);
  for (const auto& layer : net.layers()) {
    for (const auto& c : layer.conns) {
      EXPECT_LE(static_cast<int>(c.mask), codec.bounds(0).hi);
      EXPECT_LE(c.exponent, core::BitConfig{}.max_exponent());
    }
  }
}

TEST(ChromosomeCodec, BoundsMatchBitConfig) {
  core::BitConfig bits;
  bits.weight_bits = 6;
  bits.bias_bits = 5;
  core::ChromosomeCodec codec(mlp::Topology{{3, 2}}, bits);
  // Gene 0 = mask of first connection (4-bit input).
  EXPECT_EQ(codec.bounds(0).hi, 15);
  // Gene 2 = exponent: k in [0, n-2] = [0, 4].
  EXPECT_EQ(codec.bounds(2).hi, 4);
  // Last gene of first neuron = bias in [-16, 15].
  const int bias_gene = 3 * 3;
  EXPECT_EQ(codec.bounds(bias_gene).lo, -16);
  EXPECT_EQ(codec.bounds(bias_gene).hi, 15);
}

// --------------------------------------------------------------- problem

TEST(HwAwareProblem, ObjectivesAreErrorAndArea) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  const auto doped =
      core::ApproxMlp::from_quant_baseline(f.baseline, core::BitConfig{});
  const auto ev = problem.evaluate(codec.encode(doped));
  ASSERT_EQ(ev.objectives.size(), 2u);
  EXPECT_NEAR(ev.objectives[0], 1.0 - core::accuracy(doped, f.train), 1e-12);
  EXPECT_DOUBLE_EQ(ev.objectives[1], static_cast<double>(doped.fa_area()));
}

TEST(HwAwareProblem, ConstraintViolationBeyondTenPoints) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  // An all-pruned network predicts class 0 always: accuracy well below the
  // baseline-10% floor on this dataset => infeasible.
  const core::ApproxMlp empty(f.topology, core::BitConfig{});
  const auto ev = problem.evaluate(codec.encode(empty));
  EXPECT_GT(ev.constraint_violation, 0.0);
}

TEST(HwAwareProblem, SeedsAreDopedFromBaseline) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  const auto seeds = problem.seed_individuals(100);
  // ~10% doping.
  EXPECT_EQ(seeds.size(), 10u);
  const auto doped =
      core::ApproxMlp::from_quant_baseline(f.baseline, core::BitConfig{});
  EXPECT_EQ(seeds.front(), codec.encode(doped));
  // Jittered seeds differ from the pristine one but share most genes.
  int shared = 0;
  for (std::size_t g = 0; g < seeds[0].size(); ++g) {
    if (seeds[0][g] == seeds[1][g]) ++shared;
  }
  EXPECT_GT(shared, static_cast<int>(seeds[0].size() * 0.9));
}

TEST(HwAwareProblem, NoBaselineNoConstraintNoSeeds) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, std::nullopt, {});
  EXPECT_TRUE(problem.seed_individuals(50).empty());
  const core::ApproxMlp empty(f.topology, core::BitConfig{});
  EXPECT_DOUBLE_EQ(problem.evaluate(codec.encode(empty)).constraint_violation,
                   0.0);
}

// ---------------------------------------------------------------- pareto

TEST(Pareto, IndicesAndHypervolume) {
  const std::vector<core::Point2> pts = {
      {1, 5}, {2, 3}, {4, 1}, {3, 4}, {2.5, 3.5}, {1, 5}};
  const auto front = core::pareto_indices(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(pts[front[0]].f1, 1);
  EXPECT_EQ(pts[front[1]].f1, 2);
  EXPECT_EQ(pts[front[2]].f1, 4);
  // HV w.r.t. (6,6): rectangles (6-4)(6-1) + (4-2)(6-3) + (2-1)(6-5).
  EXPECT_DOUBLE_EQ(core::hypervolume2(pts, 6, 6), 10 + 6 + 1);
}

TEST(Pareto, HypervolumeIgnoresPointsBeyondReference) {
  const std::vector<core::Point2> pts = {{10, 10}};
  EXPECT_DOUBLE_EQ(core::hypervolume2(pts, 6, 6), 0.0);
}

TEST(Pareto, Dominates2) {
  EXPECT_TRUE(core::dominates2({1, 1}, {2, 2}));
  EXPECT_TRUE(core::dominates2({1, 2}, {1, 3}));
  EXPECT_FALSE(core::dominates2({1, 1}, {1, 1}));
  EXPECT_FALSE(core::dominates2({1, 3}, {2, 1}));
}

// ----------------------------------------------------- trainer end-to-end

TEST(Trainer, SmallRunProducesFeasibleFront) {
  const auto& f = fixture();
  core::TrainerConfig cfg;
  cfg.ga.population = 24;
  cfg.ga.generations = 30;
  cfg.ga.seed = 3;
  const auto result = train_ga_axc(f.topology, f.train, f.baseline, cfg);
  ASSERT_FALSE(result.estimated_pareto.empty());
  EXPECT_EQ(result.evaluations, 24 + 24 * 30);
  EXPECT_GT(result.baseline_train_accuracy, 0.8);
  // Front sorted by area; all points within the 10% training bound.
  long prev_area = -1;
  for (const auto& p : result.estimated_pareto) {
    EXPECT_GE(p.fa_area, prev_area);
    prev_area = p.fa_area;
    EXPECT_GE(p.train_accuracy, result.baseline_train_accuracy - 0.10 - 1e-9);
  }
}

TEST(Trainer, DopedRunBeatsUnseededOnHypervolume) {
  const auto& f = fixture();
  core::TrainerConfig cfg;
  cfg.ga.population = 24;
  cfg.ga.generations = 10;
  cfg.ga.seed = 5;
  const auto with_seed = train_ga_axc(f.topology, f.train, f.baseline, cfg);
  const auto without = train_ga_axc(f.topology, f.train, std::nullopt, cfg);

  auto hv = [](const core::TrainingResult& r) {
    std::vector<core::Point2> pts;
    for (const auto& p : r.estimated_pareto) {
      pts.push_back({1.0 - p.train_accuracy, static_cast<double>(p.fa_area)});
    }
    return core::hypervolume2(pts, 1.0, 2000.0);
  };
  EXPECT_GE(hv(with_seed), hv(without) * 0.9);  // doping must not hurt
}

TEST(Trainer, AccuracyOnlyGaKeepsMasksFull) {
  const auto& f = fixture();
  core::TrainerConfig cfg;
  cfg.ga.population = 16;
  cfg.ga.generations = 6;
  cfg.ga.seed = 7;
  const auto result = train_ga_accuracy_only(f.topology, f.train, cfg);
  ASSERT_FALSE(result.estimated_pareto.empty());
  for (const auto& p : result.estimated_pareto) {
    for (const auto& layer : p.model.layers()) {
      const auto full = pmlp::bitops::low_mask(layer.input_bits);
      for (const auto& c : layer.conns) {
        EXPECT_EQ(c.mask, full);
      }
    }
  }
}

// ----------------------------------------------------- hardware analysis

TEST(HardwareAnalysis, NetlistMatchesModelAndPricesCircuit) {
  const auto& f = fixture();
  core::TrainerConfig cfg;
  cfg.ga.population = 16;
  cfg.ga.generations = 8;
  cfg.ga.seed = 13;
  const auto result = train_ga_axc(f.topology, f.train, f.baseline, cfg);
  ASSERT_FALSE(result.estimated_pareto.empty());

  const auto& lib = pmlp::hwmodel::CellLibrary::egfet_1v();
  const auto evaluated = core::evaluate_hardware(
      result.estimated_pareto, f.test, lib, {/*equivalence_samples=*/32});
  ASSERT_EQ(evaluated.size(), result.estimated_pareto.size());
  for (const auto& p : evaluated) {
    EXPECT_TRUE(p.functional_match);
    EXPECT_GT(p.cost.area_mm2, 0.0);
    EXPECT_GT(p.cost.power_uw, 0.0);
  }

  const auto front = core::true_pareto(evaluated);
  ASSERT_FALSE(front.empty());
  // The true front must be mutually non-dominated.
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      const core::Point2 a{1.0 - front[i].test_accuracy,
                           front[i].cost.area_mm2};
      const core::Point2 b{1.0 - front[j].test_accuracy,
                           front[j].cost.area_mm2};
      EXPECT_FALSE(core::dominates2(a, b));
    }
  }
}

TEST(HardwareAnalysis, BestWithinLossPicksSmallestArea) {
  std::vector<core::HwEvaluatedPoint> pts(3);
  pts[0].test_accuracy = 0.96;
  pts[0].cost.area_mm2 = 100;
  pts[1].test_accuracy = 0.94;
  pts[1].cost.area_mm2 = 50;
  pts[2].test_accuracy = 0.80;  // outside the 5% bound
  pts[2].cost.area_mm2 = 5;
  const auto best = core::best_within_loss(pts, 0.98, 0.05);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->cost.area_mm2, 50);
  EXPECT_FALSE(core::best_within_loss(pts, 0.98, 0.001).has_value());
}

// ---------------------------------------------------------- suite/UCI data

namespace {

/// Minimal but well-formed winequality-red.csv: 11 features + quality,
/// semicolon-delimited with a quoted header, as shipped by UCI.
std::string write_wine_dir(int n_rows) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "pmlp_suite_uci";
  fs::create_directories(dir);
  std::ofstream os(dir / "winequality-red.csv");
  os << "\"fixed acidity\";\"volatile acidity\";\"citric acid\";"
        "\"residual sugar\";\"chlorides\";\"free sulfur dioxide\";"
        "\"total sulfur dioxide\";\"density\";\"pH\";\"sulphates\";"
        "\"alcohol\";\"quality\"\n";
  for (int i = 0; i < n_rows; ++i) {
    for (int f = 0; f < 11; ++f) os << (0.5 + 0.01 * (i * 11 + f)) << ";";
    os << (5 + i % 2) << "\n";
  }
  return dir.string();
}

/// setenv/unsetenv guard for PMLP_UCI_DIR.
class UciDirGuard {
 public:
  explicit UciDirGuard(const std::string& dir) {
    ::setenv("PMLP_UCI_DIR", dir.c_str(), 1);
  }
  ~UciDirGuard() { ::unsetenv("PMLP_UCI_DIR"); }
};

}  // namespace

TEST(Suite, SyntheticByDefault) {
  ::unsetenv("PMLP_UCI_DIR");
  EXPECT_EQ(core::find_uci_file("RedWine"), "");
  const auto d = core::load_paper_dataset("RedWine");
  EXPECT_EQ(d.size(), 1599u);  // the Table I synthetic stand-in
}

TEST(Suite, UnknownNameThrowsWithChoices) {
  EXPECT_THROW((void)core::find_uci_file("Nope"), std::invalid_argument);
  EXPECT_THROW((void)core::load_paper_dataset("Nope"), std::invalid_argument);
}

TEST(Suite, UciDirLoadsRealFile) {
  const auto dir = write_wine_dir(40);
  UciDirGuard guard(dir);
  const auto file = core::find_uci_file("RedWine");
  ASSERT_NE(file, "");
  EXPECT_NE(file.find("winequality-red.csv"), std::string::npos);
  const auto d = core::load_paper_dataset("RedWine");
  EXPECT_EQ(d.size(), 40u);  // the real rows, not the synthetic 1599
  EXPECT_EQ(d.n_features, 11);
  // Output width stays the Table I shape even when fewer quality levels
  // appear in the file (the trained topology is sized by the spec).
  EXPECT_EQ(d.n_classes, 6);
  // Datasets without a file present still fall back to synthetic.
  EXPECT_EQ(core::find_uci_file("Pendigits"), "");
}

TEST(Suite, UciDirShapeMismatchThrows) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "pmlp_suite_uci_bad";
  fs::create_directories(dir);
  {
    std::ofstream os(dir / "winequality-red.csv");
    os << "\"a\";\"b\";\"quality\"\n1.0;2.0;5\n3.0;4.0;6\n";
  }
  UciDirGuard guard(dir.string());
  // 2 features where the Table I RedWine spec demands 11: fail fast.
  EXPECT_THROW((void)core::load_paper_dataset("RedWine"),
               std::invalid_argument);
}
