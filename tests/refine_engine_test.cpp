// Tests for the incremental refine engine (refine_engine.hpp / refine.cpp):
// the memoized/delta/early-abort refine_greedy must be bit-identical to the
// naive full-re-evaluation oracle on every path (mask bits, biases, stale
// shifts, fully-pruned models, strict floors), and the pool-parallel
// refine_front must match the serial loop exactly for any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/core/refine.hpp"
#include "pmlp/core/refine_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;

namespace {

ds::QuantizedDataset make_train(int n_samples, std::uint64_t seed) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = n_samples;
  spec.seed = seed;
  return ds::quantize_inputs(ds::generate(spec), 4);
}

/// A trained, doped-style model (all masks set, pow2 weights) — the shape
/// refine sees in the real flow.
core::ApproxMlp trained_model(const ds::QuantizedDataset& train,
                              std::uint64_t seed, int hidden = 3) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = static_cast<int>(train.size());
  spec.seed = seed;
  auto raw = ds::generate(spec);
  mlp::BackpropConfig bp;
  bp.epochs = 60;
  bp.seed = seed;
  auto fnet = mlp::train_float_mlp(
      mlp::Topology{{raw.n_features, hidden, raw.n_classes}}, raw, bp);
  return core::ApproxMlp::from_quant_baseline(mlp::QuantMlp::from_float(fnet),
                                              core::BitConfig{});
}

/// Random sparse perturbation of masks/signs/exponents/biases — exercises
/// partially-pruned connections and shift changes the doped seed never has.
void perturb(core::ApproxMlp& net, std::uint64_t seed, bool sync_shifts) {
  std::mt19937_64 rng(seed);
  for (auto& layer : net.layers()) {
    const auto width_mask =
        static_cast<std::uint32_t>(pmlp::bitops::low_mask(layer.input_bits));
    for (auto& c : layer.conns) {
      if (rng() % 3 == 0) c.mask &= static_cast<std::uint32_t>(rng()) & width_mask;
      if (rng() % 5 == 0) c.sign = -c.sign;
      if (rng() % 4 == 0) {
        c.exponent = static_cast<int>(rng() % (net.bits().max_exponent() + 1));
      }
    }
    for (auto& b : layer.biases) {
      if (rng() % 3 == 0) {
        const auto span = net.bits().bias_max() - net.bits().bias_min();
        b = net.bits().bias_min() +
            static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(span));
      }
    }
  }
  if (sync_shifts) net.update_qrelu_shifts();
}

void expect_same_refine(core::ApproxMlp oracle_net, core::ApproxMlp engine_net,
                        const ds::QuantizedDataset& train,
                        const core::RefineConfig& cfg) {
  const auto oracle = core::refine_greedy_naive(oracle_net, train, cfg);
  const auto engine = core::refine_greedy(engine_net, train, cfg);

  // Same decisions -> same final parameters (masks, signs, biases, shifts).
  EXPECT_EQ(core::to_text(oracle_net), core::to_text(engine_net));
  // Same report, bit for bit (early_aborts is engine-only by design).
  EXPECT_EQ(oracle.bits_cleared, engine.bits_cleared);
  EXPECT_EQ(oracle.biases_simplified, engine.biases_simplified);
  EXPECT_EQ(oracle.fa_before, engine.fa_before);
  EXPECT_EQ(oracle.fa_after, engine.fa_after);
  EXPECT_EQ(oracle.accuracy_before, engine.accuracy_before);
  EXPECT_EQ(oracle.accuracy_after, engine.accuracy_after);
  EXPECT_EQ(oracle.passes, engine.passes);
  EXPECT_EQ(oracle.trials, engine.trials);
}

}  // namespace

TEST(RefineEngineOracle, TrainedModelDefaultConfig) {
  const auto train = make_train(240, 51);
  const auto model = trained_model(train, 51);
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(model, train) - 0.03;
  expect_same_refine(model, model, train, cfg);
}

TEST(RefineEngineOracle, StrictFloor) {
  const auto train = make_train(240, 52);
  const auto model = trained_model(train, 52);
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(model, train);  // no loss allowed
  expect_same_refine(model, model, train, cfg);
}

TEST(RefineEngineOracle, UnreachableFloorRejectsEverything) {
  const auto train = make_train(160, 53);
  const auto model = trained_model(train, 53);
  core::RefineConfig cfg;
  cfg.accuracy_floor = 1.5;  // beyond any accuracy: every trial must fail
  const auto before = core::to_text(model);
  expect_same_refine(model, model, train, cfg);
  auto copy = model;
  const auto report = core::refine_greedy(copy, train, cfg);
  EXPECT_EQ(report.bits_cleared, 0);
  EXPECT_EQ(report.biases_simplified, 0);
  EXPECT_EQ(core::to_text(copy), before);
  // All rejections happen before any sample is scanned.
  EXPECT_EQ(report.early_aborts, report.trials);
}

TEST(RefineEngineOracle, BiasRefineDisabled) {
  const auto train = make_train(200, 54);
  const auto model = trained_model(train, 54);
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(model, train) - 0.05;
  cfg.refine_biases = false;
  expect_same_refine(model, model, train, cfg);
}

TEST(RefineEngineOracle, MultiPassLooseFloor) {
  const auto train = make_train(200, 55);
  const auto model = trained_model(train, 55, /*hidden=*/4);
  core::RefineConfig cfg;
  cfg.accuracy_floor = 0.0;  // everything may go
  cfg.max_passes = 5;
  expect_same_refine(model, model, train, cfg);
}

TEST(RefineEngineOracle, PerturbedModelsPropertySweep) {
  const auto train = make_train(180, 56);
  const auto base = trained_model(train, 56);
  for (std::uint64_t seed : {7u, 19u, 101u, 4242u}) {
    auto model = base;
    perturb(model, seed, /*sync_shifts=*/true);
    core::RefineConfig cfg;
    cfg.accuracy_floor = core::accuracy(model, train) - 0.04;
    expect_same_refine(model, model, train, cfg);
  }
}

TEST(RefineEngineOracle, StaleIncomingShifts) {
  // Callers are supposed to hand over synced shifts, but the naive loop
  // tolerates stale ones (its first edit re-syncs); the engine must agree
  // on accuracy_before AND on every decision after the sync.
  const auto train = make_train(180, 57);
  auto model = trained_model(train, 57);
  perturb(model, 77, /*sync_shifts=*/false);  // leaves shifts stale
  core::RefineConfig cfg;
  cfg.accuracy_floor = 0.3;
  expect_same_refine(model, model, train, cfg);
}

TEST(RefineEngineOracle, FullyPrunedModelUntouched) {
  const auto train = make_train(160, 58);
  const auto base = trained_model(train, 58);
  core::ApproxMlp empty(base.topology(), base.bits());
  core::RefineConfig cfg;
  cfg.accuracy_floor = 0.0;
  expect_same_refine(empty, empty, train, cfg);
  auto copy = empty;
  const auto report = core::refine_greedy(copy, train, cfg);
  EXPECT_EQ(report.fa_before, 0);
  EXPECT_EQ(report.fa_after, 0);
  EXPECT_EQ(report.bits_cleared, 0);
}

TEST(RefineEngine, EarlyAbortEngagesUnderTightFloor) {
  // A tight-but-reachable floor makes most trials fail, and failing trials
  // should mostly abort before scanning the whole dataset.
  const auto train = make_train(240, 59);
  auto model = trained_model(train, 59);
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(model, train);
  const auto report = core::refine_greedy(model, train, cfg);
  EXPECT_GT(report.trials, 0);
  EXPECT_GT(report.early_aborts, 0);
}

TEST(RefineEngine, AccuracyMatchesNaiveAccuracy) {
  const auto train = make_train(200, 60);
  auto model = trained_model(train, 60);
  core::RefineEngine engine(model, train);
  EXPECT_EQ(engine.accuracy(), core::accuracy(model, train));
}

// --------------------------------------------------------------- refine_front

namespace {

/// A small synthetic "front": the trained model plus perturbed variants at
/// different sparsities, with the accuracies/areas refine_front expects.
std::vector<core::EstimatedPoint> make_front(const ds::QuantizedDataset& train,
                                             std::uint64_t seed, int n) {
  const auto base = trained_model(train, seed);
  std::vector<core::EstimatedPoint> front;
  for (int i = 0; i < n; ++i) {
    core::EstimatedPoint p;
    p.model = base;
    if (i > 0) perturb(p.model, seed + static_cast<std::uint64_t>(i), true);
    p.train_accuracy = core::accuracy(p.model, train);
    p.fa_area = p.model.fa_area();
    front.push_back(std::move(p));
  }
  return front;
}

/// The pre-engine refine_front loop, verbatim (naive refine + full accuracy
/// re-scan), as the oracle for the parallel fan-out.
void refine_front_naive(std::span<core::EstimatedPoint> front,
                        const ds::QuantizedDataset& train,
                        double baseline_train_accuracy, double max_point_loss,
                        double max_total_loss) {
  for (auto& point : front) {
    core::RefineConfig cfg;
    cfg.accuracy_floor = std::max(point.train_accuracy - max_point_loss,
                                  baseline_train_accuracy - max_total_loss);
    (void)core::refine_greedy_naive(point.model, train, cfg);
    point.train_accuracy = core::accuracy(point.model, train);
    point.fa_area = point.model.fa_area();
  }
}

void expect_same_front(const std::vector<core::EstimatedPoint>& a,
                       const std::vector<core::EstimatedPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(core::to_text(a[i].model), core::to_text(b[i].model)) << i;
    EXPECT_EQ(a[i].train_accuracy, b[i].train_accuracy) << i;
    EXPECT_EQ(a[i].fa_area, b[i].fa_area) << i;
  }
}

void check_front_threads(int n_threads) {
  const auto train = make_train(200, 61);
  const double baseline_acc = 0.8;

  auto oracle = make_front(train, 61, 6);
  refine_front_naive(oracle, train, baseline_acc, 0.01, 0.05);

  auto refined = make_front(train, 61, 6);
  const auto report =
      core::refine_front(refined, train, baseline_acc, 0.01, 0.05, n_threads);
  expect_same_front(oracle, refined);
  EXPECT_EQ(report.points, 6);
  EXPECT_GT(report.trials, 0);
}

}  // namespace

// One named test per thread count so CI can assert each configuration ran.
TEST(RefineFrontParallel, BitIdenticalThreads1) { check_front_threads(1); }

TEST(RefineFrontParallel, BitIdenticalThreads4) { check_front_threads(4); }

TEST(RefineFrontParallel, AutoThreadsMatchesSerial) {
  const auto train = make_train(160, 62);
  auto serial = make_front(train, 62, 5);
  const auto r1 = core::refine_front(serial, train, 0.8, 0.01, 0.05, 1);
  auto parallel = make_front(train, 62, 5);
  const auto r0 = core::refine_front(parallel, train, 0.8, 0.01, 0.05, 0);
  expect_same_front(serial, parallel);
  // The aggregated counters are scheduling-independent too.
  EXPECT_EQ(r1.trials, r0.trials);
  EXPECT_EQ(r1.early_aborts, r0.early_aborts);
  EXPECT_EQ(r1.bits_cleared, r0.bits_cleared);
  EXPECT_EQ(r1.biases_simplified, r0.biases_simplified);
}
