// Determinism contract of the parallel evaluation subsystem: NSGA-II and
// random_search must produce bit-identical results for any n_threads
// setting, because only Problem::evaluate() runs off the main thread.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "pmlp/core/problem.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/nsga2/nsga2.hpp"
#include "pmlp/nsga2/random_search.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace nsga2 = pmlp::nsga2;

namespace {

void expect_identical(const std::vector<nsga2::Individual>& a,
                      const std::vector<nsga2::Individual>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].genes, b[i].genes) << "individual " << i;
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "individual " << i;
    EXPECT_EQ(a[i].constraint_violation, b[i].constraint_violation)
        << "individual " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "individual " << i;
  }
}

void expect_identical(const nsga2::Result& a, const nsga2::Result& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  expect_identical(a.population, b.population);
  expect_identical(a.pareto_front, b.pareto_front);
}

/// Small but real GA-AxC setup (quantized baseline + doped seeds). The
/// problem is constructed per test against the long-lived fixture data,
/// because HwAwareProblem keeps a reference to the training set.
struct Fixture {
  ds::QuantizedDataset train;
  mlp::Topology topology;
  mlp::QuantMlp baseline;

  static Fixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 120;
    auto raw = ds::generate(spec);
    auto split = ds::stratified_split(raw, 0.7, 1);
    mlp::Topology topo{{raw.n_features, 3, raw.n_classes}};
    mlp::BackpropConfig bp;
    bp.epochs = 20;
    bp.seed = 21;
    auto fnet = mlp::train_float_mlp(topo, split.train, bp);
    return Fixture{ds::quantize_inputs(split.train, 4), topo,
                   mlp::QuantMlp::from_float(fnet, 8, 4, 8)};
  }
};

const Fixture& fixture() {
  static const Fixture f = Fixture::make();
  return f;
}

nsga2::Config small_ga(int n_threads) {
  nsga2::Config cfg;
  cfg.population = 16;
  cfg.generations = 4;
  cfg.seed = 77;
  cfg.n_threads = n_threads;
  return cfg;
}

/// Deterministic problem whose evaluate() sleeps, to actually exercise
/// concurrent pool execution rather than winning the race trivially.
class SlowTradeoff final : public nsga2::Problem {
 public:
  [[nodiscard]] int n_genes() const override { return 6; }
  [[nodiscard]] nsga2::GeneBounds bounds(int) const override { return {0, 9}; }
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    double f1 = 0, f2 = 0;
    for (int g : genes) {
      f1 += g;
      f2 += 9 - g;
    }
    return {{f1, f2}, 0.0};
  }
};

}  // namespace

TEST(ParallelEval, HwAwareProblemSerialAndParallelFrontsIdentical) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  const auto serial = nsga2::optimize(problem, small_ga(1));
  const auto parallel4 = nsga2::optimize(problem, small_ga(4));
  expect_identical(serial, parallel4);
}

TEST(ParallelEval, AutoThreadsMatchesSerial) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  const auto serial = nsga2::optimize(problem, small_ga(1));
  const auto parallel_auto = nsga2::optimize(problem, small_ga(0));
  expect_identical(serial, parallel_auto);
}

TEST(ParallelEval, PopulationEvaluatorMatchesDirectEvaluation) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  std::mt19937_64 rng(5);
  std::vector<nsga2::Individual> pop(12);
  for (auto& ind : pop) {
    ind.genes.resize(static_cast<std::size_t>(problem.n_genes()));
    for (std::size_t g = 0; g < ind.genes.size(); ++g) {
      const auto b = problem.bounds(static_cast<int>(g));
      ind.genes[g] = std::uniform_int_distribution<int>(b.lo, b.hi)(rng);
    }
  }
  auto expected = pop;
  for (auto& ind : expected) {
    auto ev = problem.evaluate(ind.genes);
    ind.objectives = ev.objectives;
    ind.constraint_violation = ev.constraint_violation;
  }
  nsga2::PopulationEvaluator evaluator(problem, 3);
  EXPECT_EQ(evaluator.evaluate(pop), static_cast<long>(pop.size()));
  expect_identical(expected, pop);
}

TEST(ParallelEval, SlowProblemStressStaysDeterministic) {
  SlowTradeoff slow;
  nsga2::Config cfg;
  cfg.population = 16;
  cfg.generations = 3;
  cfg.seed = 9;
  cfg.n_threads = 1;
  const auto serial = nsga2::optimize(slow, cfg);
  cfg.n_threads = 8;
  const auto parallel = nsga2::optimize(slow, cfg);
  expect_identical(serial, parallel);
}

TEST(RandomSearchDeterminism, SameSeedSameResult) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  nsga2::RandomSearchConfig cfg;
  cfg.evaluations = 200;
  cfg.seed = 3;
  cfg.n_threads = 1;
  const auto a = nsga2::random_search(problem, cfg);
  const auto b = nsga2::random_search(problem, cfg);
  expect_identical(a, b);
}

TEST(RandomSearchDeterminism, ParallelMatchesSerial) {
  const auto& f = fixture();
  core::ChromosomeCodec codec(f.topology, core::BitConfig{});
  core::HwAwareProblem problem(codec, f.train, f.baseline, {});
  nsga2::RandomSearchConfig cfg;
  cfg.evaluations = 200;
  cfg.seed = 3;
  cfg.n_threads = 1;
  const auto serial = nsga2::random_search(problem, cfg);
  cfg.n_threads = 6;
  const auto parallel = nsga2::random_search(problem, cfg);
  expect_identical(serial, parallel);
}
