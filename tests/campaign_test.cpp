// Tests for the shared-pool CampaignRunner (campaign.hpp): per-flow
// bit-identity against independent run_flow() calls for any pool size,
// checkpoint/resume (including a mid-campaign stop, the in-process stand-in
// for a kill), resume with a different thread count, failure isolation,
// stage rollups and the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "flow_test_util.hpp"
#include "pmlp/core/campaign.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace fs = std::filesystem;
using pmlp::test::expect_same_result;

namespace {

/// Scratch dir with this suite's prefix.
struct TempDir : pmlp::test::TempDir {
  explicit TempDir(const char* tag)
      : pmlp::test::TempDir("pmlp_campaign_test", tag) {}
};

core::FlowConfig small_cfg(std::uint64_t seed) {
  core::FlowConfig cfg;
  cfg.backprop.epochs = 30;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 16;
  cfg.trainer.ga.generations = 6;
  cfg.trainer.ga.seed = seed;
  cfg.hardware.equivalence_samples = 8;
  return cfg;
}

ds::Dataset bc_data() {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 160;
  return ds::generate(spec);
}

ds::Dataset wine_data() {
  auto spec = ds::red_wine_spec();
  spec.n_samples = 160;
  return ds::generate(spec);
}

pmlp::mlp::Topology bc_topo() { return pmlp::mlp::Topology{{10, 3, 2}}; }
pmlp::mlp::Topology wine_topo() { return pmlp::mlp::Topology{{11, 2, 6}}; }

/// The three-flow grid used by most tests: two seeds of one dataset plus a
/// second dataset/topology.
std::vector<core::CampaignFlowSpec> grid() {
  std::vector<core::CampaignFlowSpec> specs(3);
  specs[0] = {"bc_s1", "BreastCancer", bc_data(), bc_topo(), small_cfg(1)};
  specs[1] = {"bc_s2", "BreastCancer", bc_data(), bc_topo(), small_cfg(2)};
  specs[2] = {"wine_s1", "RedWine", wine_data(), wine_topo(), small_cfg(1)};
  return specs;
}

/// Independent single-flow references for the grid (what the campaign's
/// per-flow results must be bit-identical to).
std::vector<core::FlowResult> grid_references() {
  std::vector<core::FlowResult> refs;
  for (const auto& spec : grid()) {
    refs.push_back(core::run_flow(spec.data, spec.topology, spec.config));
  }
  return refs;
}

core::CampaignResult run_campaign(int n_threads,
                                  const std::string& checkpoint_root = "") {
  core::CampaignConfig cfg;
  cfg.n_threads = n_threads;
  cfg.checkpoint_root = checkpoint_root;
  core::CampaignRunner runner(cfg);
  for (auto& spec : grid()) runner.add_flow(std::move(spec));
  return runner.run();
}

void expect_matches_references(const core::CampaignResult& result,
                               const std::vector<core::FlowResult>& refs) {
  ASSERT_EQ(result.flows.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ASSERT_EQ(result.flows[i].status, core::CampaignFlowStatus::kDone)
        << result.flows[i].name << ": " << result.flows[i].error;
    ASSERT_TRUE(result.flows[i].result.has_value());
    expect_same_result(*result.flows[i].result, refs[i]);
  }
}

}  // namespace

TEST(Campaign, MatchesIndependentFlowsForAnyPoolSize) {
  const auto refs = grid_references();
  for (int threads : {1, 4, 0}) {
    const auto result = run_campaign(threads);
    EXPECT_EQ(result.completed, 3);
    EXPECT_TRUE(result.all_ok());
    expect_matches_references(result, refs);
  }
}

TEST(Campaign, CheckpointResumeBitIdentical) {
  TempDir dir("resume");
  const auto refs = grid_references();
  const auto first = run_campaign(4, dir.path.string());
  expect_matches_references(first, refs);
  for (const char* flow : {"bc_s1", "bc_s2", "wine_s1"}) {
    EXPECT_TRUE(fs::exists(dir.path / flow / "meta.txt")) << flow;
    EXPECT_TRUE(fs::exists(dir.path / flow / "evaluated.txt")) << flow;
  }

  // Re-running the identical campaign reloads every stage except the
  // derived select stage and reproduces the results bit-identically.
  const auto second = run_campaign(4, dir.path.string());
  expect_matches_references(second, refs);
  int reused = 0;
  for (const auto& roll : second.stages) reused += roll.reused;
  EXPECT_EQ(reused, 3 * (core::kNumFlowStages - 1));
}

TEST(Campaign, StopAndResumeBitIdentical) {
  TempDir dir("stop");
  const auto refs = grid_references();

  // Stop mid-campaign after a few stage completions — the in-process
  // equivalent of kill -9 between stages (the engines' temp-file+rename
  // writes mean a checkpoint is consistent at every instant anyway).
  core::CampaignConfig cfg;
  cfg.n_threads = 2;
  cfg.checkpoint_root = dir.path.string();
  core::CampaignRunner runner(cfg);
  for (auto& spec : grid()) runner.add_flow(std::move(spec));
  int events = 0;
  runner.set_progress([&](const core::CampaignProgress&) {
    if (++events == 3) runner.request_stop();
  });
  const auto first = runner.run();
  EXPECT_EQ(first.completed + first.stopped + first.failed + first.pending,
            3);
  EXPECT_EQ(first.failed, 0);
  EXPECT_FALSE(first.all_ok());
  // 3 of 21 stages done -> every flow was cut short: stopped mid-pipeline,
  // or still pending if none of its stages had run yet.
  EXPECT_GE(first.stopped + first.pending, 1);
  for (const auto& f : first.flows) {
    if (f.status == core::CampaignFlowStatus::kPending) {
      EXPECT_EQ(f.wall_seconds, 0.0);
    }
  }

  // Resume: the fresh campaign completes everything from the checkpoints,
  // bit-identical to never having been stopped.
  const auto second = run_campaign(2, dir.path.string());
  EXPECT_TRUE(second.all_ok());
  expect_matches_references(second, refs);
  int reused = 0;
  for (const auto& roll : second.stages) reused += roll.reused;
  EXPECT_GE(reused, 3);  // at least the stages finished before the stop
}

TEST(Campaign, ResumeWithDifferentThreadCountAccepted) {
  // The checkpoint meta fingerprint must not bake in any parallelism knob:
  // a campaign checkpointed on a 4-worker pool resumes on a 1-worker pool
  // (different machine / thread count) bit-identically instead of being
  // rejected as a config mismatch.
  TempDir dir("threads");
  const auto refs = grid_references();
  const auto wide = run_campaign(4, dir.path.string());
  expect_matches_references(wide, refs);
  const auto narrow = run_campaign(1, dir.path.string());
  EXPECT_TRUE(narrow.all_ok()) << (narrow.flows.empty()
                                       ? ""
                                       : narrow.flows.front().error);
  expect_matches_references(narrow, refs);
}

TEST(Campaign, FailureIsolation) {
  TempDir dir("poison");
  // Poison one flow's checkpoint before the campaign starts: that flow
  // must fail with the engine's error; the other two complete untouched.
  fs::create_directories(dir.path / "bc_s2");
  std::ofstream(dir.path / "bc_s2" / "meta.txt") << "pmlp-flow-meta v9\n";
  const auto result = run_campaign(2, dir.path.string());
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.failed, 1);
  ASSERT_EQ(result.flows.size(), 3u);
  EXPECT_EQ(result.flows[0].status, core::CampaignFlowStatus::kDone);
  EXPECT_EQ(result.flows[1].status, core::CampaignFlowStatus::kFailed);
  EXPECT_FALSE(result.flows[1].error.empty());
  EXPECT_FALSE(result.flows[1].result.has_value());
  EXPECT_EQ(result.flows[2].status, core::CampaignFlowStatus::kDone);
}

TEST(Campaign, StageRollupsCoverEveryFlow) {
  const auto result = run_campaign(2);
  // 3 flows x 7 stages, none reused (no checkpointing).
  for (int s = 0; s < core::kNumFlowStages; ++s) {
    EXPECT_EQ(result.stages[s].executed, 3)
        << core::flow_stage_name(static_cast<core::FlowStage>(s));
    EXPECT_EQ(result.stages[s].reused, 0);
  }
  EXPECT_GT(result.stage_wall_seconds, 0.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.flows_per_second(), 0.0);
  EXPECT_EQ(result.n_threads, 2);
}

TEST(Campaign, RejectsBadFlowNames) {
  core::CampaignRunner runner(core::CampaignConfig{});
  auto specs = grid();
  EXPECT_NO_THROW(runner.add_flow(specs[0]));
  auto dup = grid()[0];
  EXPECT_THROW(runner.add_flow(std::move(dup)), std::invalid_argument);
  auto bad = grid()[1];
  bad.name = "a/b";
  EXPECT_THROW(runner.add_flow(std::move(bad)), std::invalid_argument);
  auto empty = grid()[1];
  empty.name = "";
  EXPECT_THROW(runner.add_flow(std::move(empty)), std::invalid_argument);
}

TEST(Campaign, EmptyCampaignCompletesTrivially) {
  core::CampaignRunner runner(core::CampaignConfig{});
  const auto result = runner.run();
  EXPECT_TRUE(result.flows.empty());
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(result.completed, 0);
}

TEST(Campaign, RunIsOneShot) {
  core::CampaignRunner runner(core::CampaignConfig{});
  (void)runner.run();
  EXPECT_THROW((void)runner.run(), std::logic_error);
}

TEST(Campaign, ProgressCallbackSeesEveryStage) {
  core::CampaignConfig cfg;
  cfg.n_threads = 2;
  core::CampaignRunner runner(cfg);
  for (auto& spec : grid()) runner.add_flow(std::move(spec));
  std::mutex mu;  // the runner serializes calls; guard our counters anyway
  int events = 0;
  int max_done = 0;
  runner.set_progress([&](const core::CampaignProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    ++events;
    max_done = std::max(max_done, p.flows_done);
    EXPECT_LT(p.flow_index, 3u);
    EXPECT_EQ(p.flows_total, 3);
  });
  const auto result = runner.run();
  EXPECT_TRUE(result.all_ok());
  EXPECT_EQ(events, 3 * core::kNumFlowStages);
}

TEST(Campaign, JsonReportIsWellFormed) {
  TempDir dir("json");
  // Include one poisoned flow so the report covers both arms.
  fs::create_directories(dir.path / "wine_s1");
  std::ofstream(dir.path / "wine_s1" / "meta.txt") << "garbage\n";
  const auto result = run_campaign(2, dir.path.string());
  std::ostringstream os;
  core::write_campaign_report_json(result, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline
  EXPECT_NE(json.find("\"campaign\":{"), std::string::npos);
  EXPECT_NE(json.find("\"n_threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stage_rollup\":{"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bc_s1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"report\":{\"dataset\":"), std::string::npos);
  EXPECT_NE(json.find("\"report\":null"), std::string::npos);
  EXPECT_NE(json.find("\"front\":["), std::string::npos);
}
