// Contract of the `pmlp serve` subsystem: every answer the server gives must
// be bit-identical to offline CompiledNet evaluation of the same model,
// selector queries must resolve against the exact (max_digits10) index
// metadata, concurrent clients must never perturb each other's answers, and
// a reload() racing live traffic must answer every request from exactly one
// front generation (old or new, never a mixture). The front loaders
// themselves must reject any directory whose artifacts don't vouch for each
// other (stale models, missing files, duplicates).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/eval_engine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/core/serve.hpp"
#include "pmlp/core/simd.hpp"
#include "flow_test_util.hpp"

namespace core = pmlp::core;
namespace mlp = pmlp::mlp;
namespace fs = std::filesystem;
using pmlp::test::TempDir;

namespace {

/// Deterministic non-trivial model: random in-bounds genes, ~40% of masks
/// fully pruned (the shape evolved fronts actually have), decoded through
/// the codec so QReLU shifts are current.
core::ApproxMlp make_model(const mlp::Topology& topo, std::uint64_t seed) {
  const core::BitConfig bits;
  const core::ChromosomeCodec codec(topo, bits);
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    std::uniform_int_distribution<int> pick(b.lo, b.hi);
    int v = pick(rng);
    if (codec.kind(g) == core::GeneKind::kMask && rng() % 10 < 4) v = 0;
    genes[static_cast<std::size_t>(g)] = v;
  }
  return codec.decode(genes);
}

struct IndexRow {
  double accuracy;
  double area;
  double power;
};

/// Write a front directory the way the CLI's save_front does: one model
/// file per row plus an exact-precision index.tsv.
void write_front_dir(const fs::path& dir, const mlp::Topology& topo,
                     const std::vector<IndexRow>& rows,
                     std::uint64_t seed_base) {
  fs::create_directories(dir);
  std::ofstream index(dir / "index.tsv");
  index << std::setprecision(std::numeric_limits<double>::max_digits10);
  index << "file\ttest_accuracy\tarea_cm2\tpower_mw\tfunctional_match\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char name[40];
    std::snprintf(name, sizeof name, "front_%03zu.model", i);
    core::save_model_file(make_model(topo, seed_base + i),
                          (dir / name).string());
    index << name << '\t' << rows[i].accuracy << '\t' << rows[i].area << '\t'
          << rows[i].power << "\t1\n";
  }
}

std::vector<std::uint8_t> random_codes(int n, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> code(0, 15);
  std::vector<std::uint8_t> codes;
  codes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    codes.push_back(static_cast<std::uint8_t>(code(rng)));
  }
  return codes;
}

const mlp::Topology kTopo{{6, 5, 3}};

}  // namespace

// ----------------------------------------------------------- front loaders

TEST(LoadFrontDir, RoundTripsExactMetadata) {
  TempDir tmp("pmlp_serve", "roundtrip");
  // Values with no short decimal representation: only max_digits10 output
  // survives a round trip bit-exactly.
  const std::vector<IndexRow> rows = {{0.62857142857142856, 1.0 / 3.0, 0.7},
                                      {2.0 / 3.0, 0.1, 0.2}};
  write_front_dir(tmp.path, kTopo, rows, 1);
  const auto entries = core::load_front_dir(tmp.path.string());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].file, "front_000.model");
  EXPECT_EQ(entries[0].test_accuracy, 0.62857142857142856);
  EXPECT_EQ(entries[0].area_cm2, 1.0 / 3.0);
  EXPECT_EQ(entries[0].power_mw, 0.7);
  EXPECT_TRUE(entries[0].functional_match);
  EXPECT_EQ(entries[1].test_accuracy, 2.0 / 3.0);
  // The parsed models are the artifacts on disk, bit for bit.
  EXPECT_EQ(core::to_text(entries[0].model),
            core::to_text(make_model(kTopo, 1)));
}

TEST(LoadFrontDir, RejectsStaleUnindexedModel) {
  TempDir tmp("pmlp_serve", "stale");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 1);
  // A leftover from an earlier, larger front: present on disk, absent from
  // the index. Globbing consumers would serve it; the loader must reject.
  core::save_model_file(make_model(kTopo, 99),
                        (tmp.path / "front_042.model").string());
  EXPECT_THROW((void)core::load_front_dir(tmp.path.string()),
               std::invalid_argument);
}

TEST(LoadFrontDir, RejectsMissingIndexedFile) {
  TempDir tmp("pmlp_serve", "missing");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}, {0.8, 0.5, 0.5}}, 1);
  fs::remove(tmp.path / "front_001.model");
  EXPECT_THROW((void)core::load_front_dir(tmp.path.string()),
               std::invalid_argument);
}

TEST(LoadFrontDir, RejectsDuplicateIndexEntry) {
  TempDir tmp("pmlp_serve", "dup");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 1);
  std::ofstream index(tmp.path / "index.tsv", std::ios::app);
  index << "front_000.model\t0.5\t1\t1\t1\n";
  index.close();
  EXPECT_THROW((void)core::load_front_dir(tmp.path.string()),
               std::invalid_argument);
}

TEST(LoadFrontDir, RejectsCorruptModelAndBadHeader) {
  TempDir tmp("pmlp_serve", "corrupt");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 1);
  std::ofstream(tmp.path / "front_000.model") << "garbage\n";
  EXPECT_THROW((void)core::load_front_dir(tmp.path.string()),
               std::invalid_argument);
  std::ofstream(tmp.path / "index.tsv") << "not\ta\tfront\tindex\n";
  EXPECT_THROW((void)core::load_front_dir(tmp.path.string()),
               std::invalid_argument);
}

TEST(LoadFrontTree, ServesCampaignCheckpointFlows) {
  TempDir tmp("pmlp_serve", "tree");
  // Two completed flows and one that has not reached the hardware stage:
  // the tree loader serves the finished ones and skips the laggard.
  for (const char* flow : {"ds_s1", "ds_s2"}) {
    fs::create_directories(tmp.path / flow);
    std::vector<core::HwEvaluatedPoint> pts(2);
    pts[0].model = make_model(kTopo, 11);
    pts[0].test_accuracy = 0.9;
    pts[0].cost.area_mm2 = 100.0;
    pts[1].model = make_model(kTopo, 12);
    pts[1].test_accuracy = 0.8;
    pts[1].cost.area_mm2 = 50.0;
    std::ofstream os(tmp.path / flow / "evaluated.txt");
    core::save_evaluated_points(pts, os);
  }
  fs::create_directories(tmp.path / "ds_s3");  // no evaluated.txt yet
  const auto entries = core::load_front_any(tmp.path.string());
  ASSERT_EQ(entries.size(), 4u);  // both points are Pareto (acc/area trade)
  EXPECT_EQ(entries[0].file, "ds_s1/front_000.model");
  EXPECT_EQ(entries[2].file, "ds_s2/front_000.model");
  // Virtual names resolve as explicit selectors through a server.
  core::FrontServer server(tmp.path.string(), {.n_threads = 1});
  std::mt19937_64 rng(7);
  const auto reply =
      server.classify("ds_s2/front_001.model", random_codes(6, rng));
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.file, "ds_s2/front_001.model");
}

// ------------------------------------------------------------ serve oracle

TEST(FrontServer, AnswersBitIdenticalToCompiledNetForEveryModel) {
  TempDir tmp("pmlp_serve", "oracle");
  const std::vector<IndexRow> rows = {
      {0.9, 3.0, 1.0}, {0.85, 2.0, 0.8}, {0.7, 1.0, 0.4}};
  write_front_dir(tmp.path, kTopo, rows, 100);
  const auto entries = core::load_front_dir(tmp.path.string());
  core::FrontServer server(tmp.path.string(), {.n_threads = 2});
  std::mt19937_64 rng(42);
  core::EvalWorkspace ws;
  for (const auto& e : entries) {
    const core::CompiledNet oracle(e.model);
    for (int s = 0; s < 64; ++s) {
      const auto codes = random_codes(kTopo.layers.front(), rng);
      const auto reply = server.classify(e.file, codes);
      ASSERT_TRUE(reply.ok) << reply.error;
      EXPECT_EQ(reply.file, e.file);
      EXPECT_EQ(reply.predicted, oracle.predict(codes, ws));
    }
  }
}

TEST(FrontServer, ForcedScalarAndSimdDispatchAnswerIdentically) {
  // The same mixed-model request tape answered under forced-scalar dispatch
  // and under the machine's best ISA must be bit-identical request by
  // request, and both must match the offline per-sample oracle. (On a
  // scalar-only machine both sections dispatch scalar — the tape/oracle
  // comparison still holds.)
  TempDir tmp("pmlp_serve", "simd");
  const std::vector<IndexRow> rows = {
      {0.9, 3.0, 1.0}, {0.85, 2.0, 0.8}, {0.7, 1.0, 0.4}};
  write_front_dir(tmp.path, kTopo, rows, 500);
  const auto entries = core::load_front_dir(tmp.path.string());

  constexpr int kTape = 160;  // > max_batch: several multi-model batches
  std::mt19937_64 rng(77);
  std::vector<std::string> selectors;
  std::vector<std::vector<std::uint8_t>> codes;
  for (int i = 0; i < kTape; ++i) {
    selectors.push_back(
        entries[static_cast<std::size_t>(i) % entries.size()].file);
    codes.push_back(random_codes(kTopo.layers.front(), rng));
  }

  const auto run_tape = [&](core::SimdIsa isa) {
    const auto prev = core::active_simd_isa();
    core::set_simd_isa(isa);
    core::FrontServer server(tmp.path.string(),
                             {.n_threads = 2, .max_batch = 32});
    std::vector<std::future<core::ServeReply>> futures;
    for (int i = 0; i < kTape; ++i) {
      futures.push_back(server.submit(selectors[static_cast<std::size_t>(i)],
                                      codes[static_cast<std::size_t>(i)]));
    }
    std::vector<int> answers;
    for (auto& f : futures) {
      const auto reply = f.get();
      EXPECT_TRUE(reply.ok) << reply.error;
      answers.push_back(reply.predicted);
    }
    core::set_simd_isa(prev);
    return answers;
  };

  const auto scalar = run_tape(core::SimdIsa::kScalar);
  const auto simd = run_tape(core::detect_simd_isa());
  ASSERT_EQ(scalar.size(), simd.size());
  core::EvalWorkspace ws;
  for (int i = 0; i < kTape; ++i) {
    const auto& e = entries[static_cast<std::size_t>(i) % entries.size()];
    const core::CompiledNet oracle(e.model);
    const int want =
        oracle.predict(codes[static_cast<std::size_t>(i)], ws);
    ASSERT_EQ(scalar[static_cast<std::size_t>(i)], want) << "request " << i;
    ASSERT_EQ(simd[static_cast<std::size_t>(i)], want) << "request " << i;
  }
}

TEST(FrontServer, SelectorQueriesResolveOnExactMetadata) {
  TempDir tmp("pmlp_serve", "selector");
  const std::vector<IndexRow> rows = {
      {0.9, 10.0, 1.0}, {0.95, 20.0, 2.0}, {0.8, 5.0, 0.5}};
  write_front_dir(tmp.path, kTopo, rows, 200);
  core::FrontServer server(tmp.path.string(), {.n_threads = 1});
  std::mt19937_64 rng(1);
  const auto codes = random_codes(kTopo.layers.front(), rng);
  // Max accuracy under an area cap.
  EXPECT_EQ(server.classify("best-accuracy-under-area=15", codes).file,
            "front_000.model");
  EXPECT_EQ(server.classify("best-accuracy-under-area=25", codes).file,
            "front_001.model");
  EXPECT_EQ(server.classify("best-accuracy-under-area=5", codes).file,
            "front_002.model");
  const auto none = server.classify("best-accuracy-under-area=1", codes);
  EXPECT_FALSE(none.ok);
  // Min area over an accuracy floor.
  EXPECT_EQ(server.classify("best-area-over-accuracy=0.85", codes).file,
            "front_000.model");
  EXPECT_EQ(server.classify("best-area-over-accuracy=0.95", codes).file,
            "front_001.model");
  EXPECT_EQ(server.classify("best-area-over-accuracy=0.5", codes).file,
            "front_002.model");
  EXPECT_FALSE(server.classify("best-area-over-accuracy=0.99", codes).ok);
  // Explicit names and garbage.
  EXPECT_EQ(server.classify("front_001.model", codes).file,
            "front_001.model");
  EXPECT_FALSE(server.classify("front_077.model", codes).ok);
  EXPECT_FALSE(server.classify("best-accuracy-under-area=abc", codes).ok);
}

TEST(FrontServer, RejectsMalformedRequestsWithoutDying) {
  TempDir tmp("pmlp_serve", "badreq");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 300);
  core::FrontServer server(tmp.path.string(), {.n_threads = 1});
  std::mt19937_64 rng(1);
  // Wrong code count.
  auto r = server.classify("front_000.model", random_codes(3, rng));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("expected 6"), std::string::npos) << r.error;
  // Out-of-range code for 4-bit inputs.
  std::vector<std::uint8_t> wide(6, 200);
  r = server.classify("front_000.model", wide);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds input range"), std::string::npos)
      << r.error;
  // The server still answers a good request afterwards.
  EXPECT_TRUE(server.classify("front_000.model", random_codes(6, rng)).ok);
}

TEST(FrontServer, ConcurrentClientsGetDeterministicAnswers) {
  TempDir tmp("pmlp_serve", "concurrent");
  const std::vector<IndexRow> rows = {
      {0.9, 3.0, 1.0}, {0.85, 2.0, 0.8}, {0.7, 1.0, 0.4}};
  write_front_dir(tmp.path, kTopo, rows, 400);
  const auto entries = core::load_front_dir(tmp.path.string());
  core::FrontServer server(tmp.path.string(), {.n_threads = 4, .max_batch = 8});
  constexpr int kClients = 8;
  constexpr int kRequests = 100;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(c) + 1);
      core::EvalWorkspace ws;
      for (int i = 0; i < kRequests; ++i) {
        const auto& e = entries[static_cast<std::size_t>(i) % entries.size()];
        const auto codes = random_codes(kTopo.layers.front(), rng);
        const auto reply = server.classify(e.file, codes);
        const core::CompiledNet oracle(e.model);
        if (!reply.ok || reply.file != e.file ||
            reply.predicted != oracle.predict(codes, ws)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kRequests);
  EXPECT_GE(stats.batches, 1);
}

// ----------------------------------------------------------------- reload

TEST(FrontServer, ReloadMidTrafficNeverMixesFronts) {
  TempDir tmp("pmlp_serve", "reload");
  const fs::path dir = tmp.path / "front";
  // Generation A: two models; generation B: ONE model with different
  // weights under the same name (a rerun with a smaller front).
  write_front_dir(dir, kTopo, {{0.9, 3.0, 1.0}, {0.8, 1.0, 0.4}}, 500);
  const auto gen_a = core::load_front_dir(dir.string());
  core::FrontServer server(dir.string(), {.n_threads = 2, .max_batch = 16});

  // Pre-compute both generations' oracle answers for a fixed probe vector
  // with the always-resolvable selector.
  std::mt19937_64 rng(9);
  const auto probe = random_codes(kTopo.layers.front(), rng);
  const std::string selector = "best-accuracy-under-area=100";
  core::EvalWorkspace ws;
  const core::CompiledNet oracle_a(gen_a[0].model);  // acc 0.9 wins in A
  const int answer_a = oracle_a.predict(probe, ws);

  std::atomic<bool> done{false};
  std::atomic<int> invalid{0};
  std::atomic<long> seen_b{0};
  int answer_b = -1;  // filled in below before the swap can happen
  std::promise<void> b_ready;
  auto b_ready_fut = b_ready.get_future();
  std::thread hammer([&] {
    b_ready_fut.wait();
    while (!done.load()) {
      const auto reply = server.classify(selector, probe);
      if (!reply.ok) {
        ++invalid;
        continue;
      }
      // Every answer must be exactly one generation's (file, class) pair.
      const bool is_a =
          reply.file == "front_000.model" && reply.predicted == answer_a;
      const bool is_b =
          reply.file == "front_000.model" && reply.predicted == answer_b;
      if (is_b && !is_a) ++seen_b;
      if (!is_a && !is_b) ++invalid;
    }
  });

  // Publish generation B atomically the way the CLI does (tmp + rename).
  const fs::path tmp_dir = tmp.path / "front.tmp";
  write_front_dir(tmp_dir, kTopo, {{0.7, 0.5, 0.2}}, 777);
  {
    const auto gen_b = core::load_front_dir(tmp_dir.string());
    core::EvalWorkspace ws_b;
    const core::CompiledNet oracle_b(gen_b[0].model);
    answer_b = oracle_b.predict(probe, ws_b);
  }
  // Make the probe actually distinguish generations when the class agrees:
  // at minimum the models differ, so re-check pairs via model text.
  b_ready.set_value();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const fs::path old_dir = tmp.path / "front.old";
  fs::rename(dir, old_dir);
  fs::rename(tmp_dir, dir);
  fs::remove_all(old_dir);
  ASSERT_EQ(server.reload(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true);
  hammer.join();
  EXPECT_EQ(invalid.load(), 0);
  // After the reload completes, answers come from generation B only.
  const auto after = server.classify(selector, probe);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.predicted, answer_b);
  EXPECT_EQ(server.stats().reloads, 1);
  // A failed reload keeps the old front serving.
  std::ofstream(dir / "front_042.model") << "stale\n";
  EXPECT_THROW((void)server.reload(), std::invalid_argument);
  EXPECT_TRUE(server.classify(selector, probe).ok);
  EXPECT_EQ(server.stats().reloads, 1);
}

// ----------------------------------------------------------------- socket

namespace {

/// Minimal line-protocol client: send `lines`, read until `n_replies`
/// newline-terminated replies arrived (3 s deadline).
std::vector<std::string> socket_session(int port,
                                        const std::vector<std::string>& lines,
                                        std::size_t n_replies) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  EXPECT_EQ(::send(fd, out.data(), out.size(), 0),
            static_cast<ssize_t>(out.size()));
  std::string buf;
  char chunk[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (static_cast<std::size_t>(
             std::count(buf.begin(), buf.end(), '\n')) < n_replies &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> replies;
  std::istringstream is(buf);
  std::string line;
  while (std::getline(is, line)) replies.push_back(line);
  return replies;
}

}  // namespace

TEST(FrontServer, SocketProtocolEndToEnd) {
  TempDir tmp("pmlp_serve", "socket");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 600);
  const auto entries = core::load_front_dir(tmp.path.string());
  core::FrontServer server(tmp.path.string(), {.n_threads = 2});
  server.listen();
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.serve_forever(); });

  std::mt19937_64 rng(3);
  const auto codes = random_codes(kTopo.layers.front(), rng);
  std::string classify_line = "front_000.model";
  for (auto c : codes) classify_line += " " + std::to_string(c);
  core::EvalWorkspace ws;
  const core::CompiledNet oracle(entries[0].model);
  const int expected = oracle.predict(codes, ws);

  const auto replies = socket_session(
      server.port(),
      {"models", classify_line, "bogus request", "reload", "stop"}, 5);
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[0], "ok models 1 front_000.model");
  EXPECT_EQ(replies[1],
            "ok front_000.model " + std::to_string(expected));
  EXPECT_EQ(replies[2].rfind("err ", 0), 0u) << replies[2];
  EXPECT_EQ(replies[3], "ok reload 1");
  EXPECT_EQ(replies[4], "ok stop");
  serving.join();  // `stop` wound the accept loop down
  EXPECT_TRUE(server.stopping());
  EXPECT_EQ(server.stats().connections, 1);
}

TEST(FrontServer, RequestStopUnblocksServeForever) {
  TempDir tmp("pmlp_serve", "stopflag");
  write_front_dir(tmp.path, kTopo, {{0.9, 1.0, 1.0}}, 700);
  core::FrontServer server(tmp.path.string(), {.n_threads = 1});
  server.listen();
  std::thread serving([&] { server.serve_forever(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.request_stop();  // what the CLI's SIGINT handler does
  serving.join();
}
