#include <gtest/gtest.h>

#include <random>

#include "pmlp/adder/fa_model.hpp"
#include "pmlp/bitops/bitops.hpp"
#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/netlist.hpp"
#include "pmlp/netlist/verilog.hpp"

namespace nl = pmlp::netlist;
namespace hw = pmlp::hwmodel;
namespace bitops = pmlp::bitops;

// ----------------------------------------------------------------- gates

TEST(Netlist, ConstantsAndGates) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(n.add_and(a, b), "and");
  n.mark_output(n.add_or(a, b), "or");
  n.mark_output(n.add_xor(a, b), "xor");
  n.mark_output(n.add_not(a), "nota");
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      const auto out = n.simulate({va != 0, vb != 0});
      EXPECT_EQ(out[0], va && vb);
      EXPECT_EQ(out[1], va || vb);
      EXPECT_EQ(out[2], va != vb);
      EXPECT_EQ(out[3], !va);
    }
  }
}

TEST(Netlist, ConstantFoldingCostsNoCells) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  EXPECT_EQ(n.add_and(a, n.const0()), n.const0());
  EXPECT_EQ(n.add_and(a, n.const1()), a);
  EXPECT_EQ(n.add_or(a, n.const1()), n.const1());
  EXPECT_EQ(n.add_xor(a, n.const0()), a);
  EXPECT_EQ(n.add_not(n.const0()), n.const1());
  EXPECT_EQ(n.add_mux(a, a, n.add_input("s")), a);
  EXPECT_TRUE(n.gates().empty());
}

TEST(Netlist, FullAdderTruthTable) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto c = n.add_input("c");
  const auto [sum, carry] = n.add_fa(a, b, c);
  n.mark_output(sum, "s");
  n.mark_output(carry, "co");
  for (int v = 0; v < 8; ++v) {
    const auto out = n.simulate({(v & 1) != 0, (v & 2) != 0, (v & 4) != 0});
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(out[0], (total & 1) != 0) << v;
    EXPECT_EQ(out[1], total >= 2) << v;
  }
}

TEST(Netlist, FaWithConstantFoldsToCheaperCells) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  (void)n.add_fa(a, b, n.const1());  // must become XNOR + OR
  EXPECT_EQ(n.count(hw::CellType::kFullAdder), 0);
  EXPECT_EQ(n.count(hw::CellType::kXnor2), 1);
  EXPECT_EQ(n.count(hw::CellType::kOr2), 1);
}

TEST(Netlist, HalfAdderTruthTable) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto [sum, carry] = n.add_ha(a, b);
  n.mark_output(sum, "s");
  n.mark_output(carry, "co");
  for (int v = 0; v < 4; ++v) {
    const auto out = n.simulate({(v & 1) != 0, (v & 2) != 0});
    const int total = (v & 1) + ((v >> 1) & 1);
    EXPECT_EQ(out[0], (total & 1) != 0);
    EXPECT_EQ(out[1], total >= 2);
  }
}

TEST(Netlist, OrTreeAndAndTree) {
  nl::Netlist n;
  nl::Bus bits;
  for (int i = 0; i < 5; ++i) bits.push_back(n.add_input("b" + std::to_string(i)));
  n.mark_output(n.add_or_tree(bits), "or");
  n.mark_output(n.add_and_tree(bits), "and");
  for (int v = 0; v < 32; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back((v >> i) & 1);
    const auto out = n.simulate(in);
    EXPECT_EQ(out[0], v != 0);
    EXPECT_EQ(out[1], v == 31);
  }
  EXPECT_EQ(n.add_or_tree({}), n.const0());
  EXPECT_EQ(n.add_and_tree({}), n.const1());
}

TEST(Netlist, CostAccumulatesAreaPowerDelay) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  auto x = n.add_and(a, b);
  x = n.add_or(x, a);
  x = n.add_xor(x, b);
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto cost = n.cost(lib);
  EXPECT_EQ(cost.cell_count, 3);
  EXPECT_DOUBLE_EQ(cost.area_mm2, lib.cell(hw::CellType::kAnd2).area_mm2 +
                                      lib.cell(hw::CellType::kOr2).area_mm2 +
                                      lib.cell(hw::CellType::kXor2).area_mm2);
  // Serial chain: critical path is the sum of the three delays.
  EXPECT_DOUBLE_EQ(cost.critical_delay_us,
                   lib.cell(hw::CellType::kAnd2).delay_us +
                       lib.cell(hw::CellType::kOr2).delay_us +
                       lib.cell(hw::CellType::kXor2).delay_us);
}

// ----------------------------------------------------------- column adder

TEST(ColumnAdder, AddsTwoNumbersExhaustively) {
  // 4-bit a + 4-bit b via columns, 5-bit result.
  nl::Netlist n;
  const auto a = n.add_input_bus("a", 4);
  const auto b = n.add_input_bus("b", 4);
  std::vector<std::vector<nl::NetId>> cols(5);
  for (int i = 0; i < 4; ++i) {
    cols[static_cast<std::size_t>(i)].push_back(a[static_cast<std::size_t>(i)]);
    cols[static_cast<std::size_t>(i)].push_back(b[static_cast<std::size_t>(i)]);
  }
  const auto sum = nl::build_column_adder(n, cols);
  ASSERT_EQ(sum.size(), 5u);
  for (std::uint64_t va = 0; va < 16; ++va) {
    for (std::uint64_t vb = 0; vb < 16; ++vb) {
      std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
      nl::drive_bus(vals, a, va);
      nl::drive_bus(vals, b, vb);
      n.evaluate(vals);
      EXPECT_EQ(nl::read_bus(vals, sum), va + vb);
    }
  }
}

TEST(ColumnAdder, ManyOperandsRandomized) {
  // 6 operands of 4 bits each, wide enough accumulator: exact sum.
  nl::Netlist n;
  std::vector<nl::Bus> ops;
  for (int k = 0; k < 6; ++k) ops.push_back(n.add_input_bus("x" + std::to_string(k), 4));
  std::vector<std::vector<nl::NetId>> cols(7);
  for (const auto& bus : ops) {
    for (int i = 0; i < 4; ++i) {
      cols[static_cast<std::size_t>(i)].push_back(bus[static_cast<std::size_t>(i)]);
    }
  }
  const auto sum = nl::build_column_adder(n, cols);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
    std::uint64_t expect = 0;
    for (const auto& bus : ops) {
      const std::uint64_t v = rng() & 0xF;
      nl::drive_bus(vals, bus, v);
      expect += v;
    }
    n.evaluate(vals);
    EXPECT_EQ(nl::read_bus(vals, sum), expect);
  }
}

// ------------------------------------------------------------------ QReLU

TEST(Qrelu, MatchesBehaviouralClamp) {
  // acc is a 7-bit signed bus; QReLU with shift 1 into 4 output bits.
  nl::Netlist n;
  const auto acc = n.add_input_bus("acc", 7);
  const auto out = nl::build_qrelu(n, acc, 1, 4);
  ASSERT_EQ(out.size(), 4u);
  for (std::int64_t v = -64; v < 64; ++v) {
    std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
    nl::drive_bus(vals, acc, bitops::to_twos_complement(v, 7));
    n.evaluate(vals);
    const std::int64_t expect = v <= 0 ? 0 : std::min<std::int64_t>(v >> 1, 15);
    EXPECT_EQ(static_cast<std::int64_t>(nl::read_bus(vals, out)), expect) << v;
  }
}

// ----------------------------------------------------------------- argmax

TEST(SignedGt, Exhaustive5Bit) {
  nl::Netlist n;
  const auto a = n.add_input_bus("a", 5);
  const auto b = n.add_input_bus("b", 5);
  const auto gt = nl::build_signed_gt(n, a, b);
  for (std::int64_t va = -16; va < 16; ++va) {
    for (std::int64_t vb = -16; vb < 16; ++vb) {
      std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
      nl::drive_bus(vals, a, bitops::to_twos_complement(va, 5));
      nl::drive_bus(vals, b, bitops::to_twos_complement(vb, 5));
      n.evaluate(vals);
      EXPECT_EQ(vals[static_cast<std::size_t>(gt)] != 0, va > vb)
          << va << " vs " << vb;
    }
  }
}

TEST(Argmax, FirstMaximumWins) {
  nl::Netlist n;
  std::vector<nl::Bus> accs;
  for (int k = 0; k < 4; ++k) accs.push_back(n.add_input_bus("a" + std::to_string(k), 6));
  const auto idx = nl::build_argmax(n, accs);
  std::mt19937 rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
    std::vector<std::int64_t> v(4);
    for (int k = 0; k < 4; ++k) {
      v[static_cast<std::size_t>(k)] =
          static_cast<std::int64_t>(rng() % 64) - 32;
      nl::drive_bus(vals, accs[static_cast<std::size_t>(k)],
                    bitops::to_twos_complement(v[static_cast<std::size_t>(k)], 6));
    }
    n.evaluate(vals);
    const auto expect = static_cast<std::uint64_t>(std::distance(
        v.begin(), std::max_element(v.begin(), v.end())));
    EXPECT_EQ(nl::read_bus(vals, idx), expect);
  }
}

// ----------------------------------------------------- neuron equivalence

namespace {

/// Behavioural neuron per Eq. 4's summation (no activation).
std::int64_t neuron_value(const nl::NeuronDesc& neuron,
                          const std::vector<std::uint32_t>& x) {
  std::int64_t acc = neuron.bias;
  for (const auto& c : neuron.conns) {
    const std::int64_t term =
        static_cast<std::int64_t>(x[static_cast<std::size_t>(c.input_index)] &
                                  c.mask)
        << c.shift;
    acc += c.sign < 0 ? -term : term;
  }
  return acc;
}

}  // namespace

class NeuronEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NeuronEquivalence, NetlistMatchesBehaviouralModel) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n_in = 2 + static_cast<int>(rng() % 5);
    nl::NeuronDesc neuron;
    neuron.bias = static_cast<std::int64_t>(rng() % 64) - 32;
    for (int i = 0; i < n_in; ++i) {
      nl::ConnDesc c;
      c.input_index = i;
      c.mask = static_cast<std::uint32_t>(rng() & 0xF);
      c.shift = static_cast<int>(rng() % 7);
      c.sign = (rng() & 1) ? +1 : -1;
      if (c.mask != 0) neuron.conns.push_back(c);
    }
    nl::Netlist n;
    std::vector<nl::Bus> inputs;
    for (int i = 0; i < n_in; ++i) {
      inputs.push_back(n.add_input_bus("x" + std::to_string(i), 4));
    }
    const auto acc = nl::build_neuron(n, neuron, inputs, 4);
    const int W = static_cast<int>(acc.size());
    for (int sample = 0; sample < 25; ++sample) {
      std::vector<char> vals(static_cast<std::size_t>(n.n_nets()), 0);
      std::vector<std::uint32_t> x(static_cast<std::size_t>(n_in));
      for (int i = 0; i < n_in; ++i) {
        x[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(rng() & 0xF);
        nl::drive_bus(vals, inputs[static_cast<std::size_t>(i)],
                      x[static_cast<std::size_t>(i)]);
      }
      n.evaluate(vals);
      const auto got =
          bitops::from_twos_complement(nl::read_bus(vals, acc), W);
      EXPECT_EQ(got, neuron_value(neuron, x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeuronEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(NeuronCost, NetlistAdderCellsBoundedByFaModel) {
  // The builder's constant folding can only *save* cells relative to the
  // paper's FA-count estimate of the same tree.
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int n_in = 3 + static_cast<int>(rng() % 6);
    nl::NeuronDesc neuron;
    neuron.bias = static_cast<std::int64_t>(rng() % 32) - 16;
    for (int i = 0; i < n_in; ++i) {
      nl::ConnDesc c{i, static_cast<std::uint32_t>(rng() & 0xF),
                     static_cast<int>(rng() % 5), (rng() & 1) ? +1 : -1};
      if (c.mask != 0) neuron.conns.push_back(c);
    }
    nl::Netlist n;
    std::vector<nl::Bus> inputs;
    for (int i = 0; i < n_in; ++i) {
      inputs.push_back(n.add_input_bus("x" + std::to_string(i), 4));
    }
    (void)nl::build_neuron(n, neuron, inputs, 4);
    const auto model_fa =
        pmlp::adder::estimate_adder(nl::to_adder_spec(neuron, 4)).total_fa();
    const long adder_cells = n.count(hw::CellType::kFullAdder) +
                             n.count(hw::CellType::kHalfAdder);
    EXPECT_LE(adder_cells, model_fa) << "trial " << trial;
  }
}

// ---------------------------------------------------------------- verilog

TEST(Verilog, EmitsWellFormedModule) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto [s, c] = n.add_fa(a, b, n.add_input("cin"));
  n.mark_output(s, "sum");
  n.mark_output(c, "carry");
  const auto v = nl::to_verilog(n, "adder1");
  EXPECT_NE(v.find("module adder1"), std::string::npos);
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire sum"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // FA emitted as a concatenated sum.
  EXPECT_NE(v.find(" + "), std::string::npos);
}

TEST(Verilog, SanitizesBracketNames) {
  nl::Netlist n;
  const auto bus = n.add_input_bus("x0", 2);
  n.mark_output(n.add_and(bus[0], bus[1]), "y[0]");
  const auto v = nl::to_verilog(n, "m");
  EXPECT_EQ(v.find('['), std::string::npos);  // no raw brackets in ports
  EXPECT_NE(v.find("x0_0_"), std::string::npos);
}

TEST(Verilog, GoldenAssignTextPerGateType) {
  // One gate of every type, asserting the exact emitted assign text. The
  // strings are the external contract of the RTL export — a silent change
  // here changes what ships to the hardware flow.
  nl::Netlist n;
  const auto a = n.add_input("a");    // net 2
  const auto b = n.add_input("b");    // net 3
  const auto s = n.add_input("s");    // net 4
  (void)n.add_not(a);                 // net 5
  (void)n.add_buf(a);                 // net 6
  (void)n.add_and(a, b);              // net 7
  (void)n.add_or(a, b);               // net 8
  (void)n.add_nand(a, b);             // net 9
  (void)n.add_nor(a, b);              // net 10
  (void)n.add_xor(a, b);              // net 11
  (void)n.add_xnor(a, b);             // net 12
  (void)n.add_mux(a, b, s);           // net 13
  (void)n.add_dff(a);                 // net 14
  (void)n.add_ha(a, b);               // nets {15 sum, 16 carry}
  (void)n.add_fa(a, b, s);            // nets {17 sum, 18 carry}

  const nl::EmittedModule m(n, "golden");
  ASSERT_EQ(m.assigns().size(), 12u);
  EXPECT_EQ(m.assigns()[0].text, "  assign n5 = ~a;\n");
  EXPECT_EQ(m.assigns()[1].text, "  assign n6 = a;\n");
  EXPECT_EQ(m.assigns()[2].text, "  assign n7 = a & b;\n");
  EXPECT_EQ(m.assigns()[3].text, "  assign n8 = a | b;\n");
  EXPECT_EQ(m.assigns()[4].text, "  assign n9 = ~(a & b);\n");
  EXPECT_EQ(m.assigns()[5].text, "  assign n10 = ~(a | b);\n");
  EXPECT_EQ(m.assigns()[6].text, "  assign n11 = a ^ b;\n");
  EXPECT_EQ(m.assigns()[7].text, "  assign n12 = ~(a ^ b);\n");
  EXPECT_EQ(m.assigns()[8].text, "  assign n13 = s ? b : a;\n");
  EXPECT_EQ(m.assigns()[9].text,
            "  // DFF modeled as wire in combinational export\n"
            "  assign n14 = a;\n");
  EXPECT_EQ(m.assigns()[10].text, "  assign {n16, n15} = a + b;\n");
  EXPECT_EQ(m.assigns()[11].text, "  assign {n18, n17} = a + b + s;\n");
  EXPECT_EQ(m.net_name(n.const0()), "1'b0");
  EXPECT_EQ(m.net_name(n.const1()), "1'b1");

  // Every emitted expression evaluates identically to the gate-level
  // simulator on all 8 input combinations.
  for (int v = 0; v < 8; ++v) {
    EXPECT_EQ(m.cross_check({(v & 1) != 0, (v & 2) != 0, (v & 4) != 0}), 0)
        << "input combination " << v;
  }
}

TEST(Verilog, EmittedEvalMatchesSimulateOnAdder) {
  nl::Netlist n;
  const auto a = n.add_input_bus("a", 3);
  const auto b = n.add_input_bus("b", 3);
  std::vector<std::vector<nl::NetId>> cols(4);
  for (int i = 0; i < 3; ++i) {
    cols[static_cast<std::size_t>(i)] = {a[static_cast<std::size_t>(i)],
                                         b[static_cast<std::size_t>(i)]};
  }
  const auto sum = nl::build_column_adder(n, cols);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    n.mark_output(sum[i], "s" + std::to_string(i));
  }
  const nl::EmittedModule m(n, "adder");
  for (int v = 0; v < 64; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 6; ++i) in.push_back((v >> i) & 1);
    EXPECT_EQ(m.eval(in), n.simulate(in)) << v;
    EXPECT_EQ(m.cross_check(in), 0) << v;
  }
}

TEST(Verilog, ConstantOutputAliasesAreLegal) {
  // Optimized circuits can fold an output to a constant; the alias line must
  // reference the literal, and eval must still report it.
  nl::Netlist n;
  (void)n.add_input("a");
  n.mark_output(n.const1(), "y1");
  n.mark_output(n.const0(), "y0");
  const auto v = nl::to_verilog(n, "consts");
  EXPECT_NE(v.find("assign y1 = 1'b1;"), std::string::npos);
  EXPECT_NE(v.find("assign y0 = 1'b0;"), std::string::npos);
  const nl::EmittedModule m(n, "consts");
  const auto out = m.eval({true});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}
