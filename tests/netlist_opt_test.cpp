// Tests for the synthesis-cleanup passes (opt.hpp), the switching-activity
// power analysis (activity.hpp) and the testbench emitter (testbench.hpp).
#include <gtest/gtest.h>

#include <random>

#include "pmlp/core/approx_mlp.hpp"
#include "pmlp/core/chromosome.hpp"
#include "pmlp/netlist/activity.hpp"
#include "pmlp/netlist/builders.hpp"
#include "pmlp/netlist/opt.hpp"
#include "pmlp/netlist/testbench.hpp"

namespace nl = pmlp::netlist;
namespace hw = pmlp::hwmodel;
namespace core = pmlp::core;

namespace {

/// Random bespoke circuit for property tests.
nl::BespokeCircuit random_circuit(std::uint64_t seed) {
  const pmlp::mlp::Topology topo{{4, 3, 2}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return nl::build_bespoke_mlp(codec.decode(genes).to_bespoke_desc("rand"));
}

}  // namespace

TEST(OptDeadGates, RemovesUnreachableLogic) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(n.add_and(a, b), "y");
  (void)n.add_xor(a, b);  // dead
  (void)n.add_or(a, b);   // dead
  nl::OptStats stats;
  const auto opt = nl::eliminate_dead_gates(n, &stats);
  EXPECT_EQ(stats.dead_gates_removed, 2);
  EXPECT_EQ(opt.gates().size(), 1u);
  // Function preserved.
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(opt.simulate({(v & 1) != 0, (v & 2) != 0})[0],
              n.simulate({(v & 1) != 0, (v & 2) != 0})[0]);
  }
}

TEST(OptCse, MergesStructuralDuplicates) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto x1 = n.add_and(a, b);
  const auto x2 = n.add_and(b, a);  // commutative duplicate
  n.mark_output(n.add_or(x1, x2), "y");
  nl::OptStats stats;
  const auto opt = nl::optimize(n, &stats);
  EXPECT_GE(stats.duplicate_gates_merged, 1);
  // OR(x, x) folds away entirely: a single AND remains.
  EXPECT_EQ(opt.gates().size(), 1u);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(opt.simulate({(v & 1) != 0, (v & 2) != 0})[0],
              n.simulate({(v & 1) != 0, (v & 2) != 0})[0]);
  }
}

TEST(OptCse, FullAdderOperandOrderCanonicalized) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto c = n.add_input("c");
  const auto [s1, c1] = n.add_fa(a, b, c);
  const auto [s2, c2] = n.add_fa(c, a, b);  // same FA, permuted
  n.mark_output(n.add_xor(s1, s2), "xs");
  n.mark_output(n.add_xor(c1, c2), "xc");
  nl::OptStats stats;
  const auto opt = nl::optimize(n, &stats);
  EXPECT_GE(stats.duplicate_gates_merged, 1);
  // Outputs are XOR(x,x) == 0: everything folds to constants.
  EXPECT_EQ(opt.gates().size(), 0u);
  const auto out = opt.simulate({true, false, true});
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
}

class OptEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptEquivalence, OptimizedCircuitIsFunctionallyIdentical) {
  const auto circuit = random_circuit(GetParam());
  nl::OptStats stats;
  const auto opt = nl::optimize(circuit.nl, &stats);
  EXPECT_LE(opt.gates().size(), circuit.nl.gates().size());

  // Compare class decisions on random input codes. The optimized netlist
  // has renumbered nets, so compare through the input/output interface.
  std::mt19937_64 rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> vec(circuit.nl.inputs().size());
    for (auto&& bit : vec) bit = (rng() & 1) != 0;
    EXPECT_EQ(opt.simulate(vec), circuit.nl.simulate(vec));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ------------------------------------------------------------------ remap

class OptRemap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptRemap, NetMapCarriesEveryLiveNetAcrossOptimize) {
  const auto circuit = random_circuit(GetParam());
  const auto& nl = circuit.nl;
  nl::NetMap map;
  const auto opt = nl::optimize(nl, nullptr, &map);

  ASSERT_EQ(map.size(), static_cast<std::size_t>(nl.n_nets()));
  // Constants and primary I/O are always mapped.
  EXPECT_EQ(map[static_cast<std::size_t>(nl.const0())], opt.const0());
  EXPECT_EQ(map[static_cast<std::size_t>(nl.const1())], opt.const1());
  ASSERT_EQ(opt.inputs().size(), nl.inputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    EXPECT_EQ(map[static_cast<std::size_t>(nl.inputs()[i].first)],
              opt.inputs()[i].first);
    EXPECT_EQ(nl.inputs()[i].second, opt.inputs()[i].second);
  }
  for (const auto& [net, name] : nl.outputs()) {
    EXPECT_GE(map[static_cast<std::size_t>(net)], 0) << "output " << name;
  }

  // Every mapped net computes the same value in both netlists, for random
  // input vectors: the remap is a true simulation relation, not just an
  // interface match.
  std::mt19937_64 rng(GetParam() ^ 0x5EED);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<char> old_vals(static_cast<std::size_t>(nl.n_nets()), 0);
    std::vector<char> new_vals(static_cast<std::size_t>(opt.n_nets()), 0);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const char bit = (rng() & 1) != 0 ? 1 : 0;
      old_vals[static_cast<std::size_t>(nl.inputs()[i].first)] = bit;
      new_vals[static_cast<std::size_t>(opt.inputs()[i].first)] = bit;
    }
    nl.evaluate(old_vals);
    opt.evaluate(new_vals);
    for (std::size_t n = 0; n < map.size(); ++n) {
      if (map[n] < 0) continue;
      EXPECT_EQ(old_vals[n] != 0,
                new_vals[static_cast<std::size_t>(map[n])] != 0)
          << "net " << n << " -> " << map[n] << " trial " << trial;
    }
  }
}

TEST_P(OptRemap, BespokeCircuitKeepsMetadataAndPredictions) {
  const auto circuit = random_circuit(GetParam() ^ 0xC1C);
  nl::OptStats stats;
  auto copy = circuit;
  const auto opt = nl::optimize(std::move(copy), &stats);

  // Bus metadata survives with identical shape.
  ASSERT_EQ(opt.input_buses.size(), circuit.input_buses.size());
  for (std::size_t f = 0; f < circuit.input_buses.size(); ++f) {
    EXPECT_EQ(opt.input_buses[f].size(), circuit.input_buses[f].size());
  }
  EXPECT_EQ(opt.class_index.size(), circuit.class_index.size());
  EXPECT_EQ(opt.neuron_acc_widths, circuit.neuron_acc_widths);
  EXPECT_LE(opt.nl.gates().size(), circuit.nl.gates().size());
  EXPECT_EQ(stats.gates_remaining,
            static_cast<long>(opt.nl.gates().size()));

  // predict() through the remapped buses agrees with the original circuit.
  std::mt19937_64 rng(GetParam() ^ 0xF00D);
  const int n_features = static_cast<int>(circuit.input_buses.size());
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> codes(static_cast<std::size_t>(n_features));
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng() & 0xF);
    EXPECT_EQ(opt.predict(codes), circuit.predict(codes)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptRemap,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(OptRemap, DeadNetMapsToMinusOne) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(n.add_and(a, b), "y");
  const auto dead = n.add_xor(a, b);  // dead
  nl::NetMap map;
  (void)nl::eliminate_dead_gates(n, nullptr, &map);
  EXPECT_EQ(map[static_cast<std::size_t>(dead)], -1);
}

TEST(OptStats, GatesRemainingReported) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  n.mark_output(n.add_not(a), "y");
  nl::OptStats stats;
  (void)nl::optimize(n, &stats);
  EXPECT_EQ(stats.gates_remaining, 1);
}

// ---------------------------------------------------------------- activity

TEST(Activity, ConstantInputsProduceNoToggles) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(n.add_xor(a, b), "y");
  const auto& lib = hw::CellLibrary::egfet_1v();
  const std::vector<std::vector<bool>> vectors(8, {true, false});
  const auto report = nl::analyze_activity(n, vectors, lib, 200.0);
  EXPECT_EQ(report.total_toggles, 0);
  EXPECT_DOUBLE_EQ(report.dynamic_power_uw, 0.0);
  EXPECT_DOUBLE_EQ(report.total_power_uw, report.static_power_uw);
}

TEST(Activity, AlternatingInputsToggleEveryVector) {
  nl::Netlist n;
  const auto a = n.add_input("a");
  n.mark_output(n.add_not(a), "y");
  const auto& lib = hw::CellLibrary::egfet_1v();
  std::vector<std::vector<bool>> vectors;
  for (int i = 0; i < 9; ++i) vectors.push_back({i % 2 == 0});
  const auto report = nl::analyze_activity(n, vectors, lib, 200.0);
  EXPECT_EQ(report.total_toggles, 8);  // NOT output flips between vectors
  EXPECT_GT(report.dynamic_power_uw, 0.0);
}

TEST(Activity, StaticDominatesAtPrintedClocks) {
  // §II: EGFET at 200 ms clocks is static-power dominated. Even with
  // maximally active inputs, dynamic power must be a tiny fraction.
  const auto circuit = random_circuit(7);
  const auto& lib = hw::CellLibrary::egfet_1v();
  std::mt19937_64 rng(3);
  std::vector<std::vector<bool>> vectors;
  for (int i = 0; i < 32; ++i) {
    std::vector<bool> v(circuit.nl.inputs().size());
    for (auto&& bit : v) bit = (rng() & 1) != 0;
    vectors.push_back(std::move(v));
  }
  const auto report = nl::analyze_activity(circuit.nl, vectors, lib, 200.0);
  EXPECT_GT(report.total_toggles, 0);
  EXPECT_LT(report.dynamic_power_uw, 0.01 * report.static_power_uw);
}

TEST(Activity, RejectsBadArguments) {
  nl::Netlist n;
  (void)n.add_input("a");
  const auto& lib = hw::CellLibrary::egfet_1v();
  EXPECT_THROW((void)nl::analyze_activity(n, {}, lib, 200.0),
               std::invalid_argument);
  EXPECT_THROW((void)nl::analyze_activity(n, {{true, false}}, lib, 200.0),
               std::invalid_argument);
  EXPECT_THROW((void)nl::analyze_activity(n, {{true}}, lib, 0.0),
               std::invalid_argument);
}

TEST(Activity, VectorsFromSamplesRoundTrip) {
  const auto circuit = random_circuit(19);
  std::vector<std::uint8_t> codes = {1, 2, 3, 4, 5, 6, 7, 8};  // 2 samples x 4
  const auto vectors =
      nl::vectors_from_samples(circuit.input_buses, circuit.nl, codes, 4);
  ASSERT_EQ(vectors.size(), 2u);
  ASSERT_EQ(vectors[0].size(), circuit.nl.inputs().size());
  // Feature 0 of sample 0 is code 1: bit 0 set only.
  // Input order is x0[0..3], x1[0..3], ... by construction.
  EXPECT_TRUE(vectors[0][0]);
  EXPECT_FALSE(vectors[0][1]);
  // Feature 1 of sample 0 is code 2: bit 1 set only.
  EXPECT_FALSE(vectors[0][4]);
  EXPECT_TRUE(vectors[0][5]);
}

// --------------------------------------------------------------- testbench

TEST(Testbench, EmitsSelfCheckingBench) {
  const auto circuit = random_circuit(23);
  std::vector<std::uint8_t> codes;
  std::mt19937_64 rng(5);
  for (int s = 0; s < 6; ++s) {
    for (int f = 0; f < 4; ++f) codes.push_back(static_cast<std::uint8_t>(rng() & 0xF));
  }
  nl::TestbenchOptions opts;
  opts.dut_name = "dut_mlp";
  const auto v = nl::to_verilog_with_testbench(circuit, 4, codes, opts);
  EXPECT_NE(v.find("module dut_mlp ("), std::string::npos);
  EXPECT_NE(v.find("module dut_mlp_tb;"), std::string::npos);
  EXPECT_NE(v.find("TESTBENCH PASS"), std::string::npos);
  EXPECT_NE(v.find("$finish"), std::string::npos);
  // One comparison block per vector.
  std::size_t count = 0;
  for (std::size_t pos = v.find("MISMATCH vector"); pos != std::string::npos;
       pos = v.find("MISMATCH vector", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 6u);
}

TEST(Testbench, ExpectedValuesMatchGoldenSimulator) {
  const auto circuit = random_circuit(29);
  std::vector<std::uint8_t> codes = {3, 7, 1, 15};
  nl::TestbenchOptions opts;
  const auto v = nl::to_verilog_with_testbench(circuit, 4, codes, opts);
  const int expected = circuit.predict(codes);
  const std::string needle =
      "'d" + std::to_string(expected) + ")";
  EXPECT_NE(v.find(needle), std::string::npos);
}

TEST(Testbench, RejectsBadShapes) {
  const auto circuit = random_circuit(31);
  std::vector<std::uint8_t> codes = {1, 2, 3};  // not a multiple of 4
  nl::TestbenchOptions opts;
  std::ostringstream os;
  EXPECT_THROW(nl::emit_testbench(circuit, 4, codes, opts, os),
               std::invalid_argument);
}
