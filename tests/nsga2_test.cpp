#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pmlp/nsga2/nsga2.hpp"

namespace nsga2 = pmlp::nsga2;

namespace {

nsga2::Individual make_ind(std::vector<double> objs, double violation = 0.0) {
  nsga2::Individual ind;
  ind.objectives = std::move(objs);
  ind.constraint_violation = violation;
  return ind;
}

/// Discrete bi-objective test problem: genes g_i in [0, 10];
/// f1 = sum(g), f2 = sum((10 - g)) — the whole diagonal is Pareto-optimal,
/// so convergence and spread are easy to quantify.
class LinearTradeoff final : public nsga2::Problem {
 public:
  explicit LinearTradeoff(int n = 8) : n_(n) {}
  [[nodiscard]] int n_genes() const override { return n_; }
  [[nodiscard]] nsga2::GeneBounds bounds(int) const override { return {0, 10}; }
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    double f1 = 0, f2 = 0;
    for (int g : genes) {
      f1 += g;
      f2 += 10 - g;
    }
    return {{f1, f2}, 0.0};
  }

 private:
  int n_;
};

/// Problem with a constraint: f1 must be >= 20 (violation otherwise).
class ConstrainedTradeoff final : public nsga2::Problem {
 public:
  [[nodiscard]] int n_genes() const override { return 6; }
  [[nodiscard]] nsga2::GeneBounds bounds(int) const override { return {0, 10}; }
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    double f1 = 0, f2 = 0;
    for (int g : genes) {
      f1 += g;
      f2 += 10 - g;
    }
    return {{f1, f2}, std::max(0.0, 20.0 - f1)};
  }
};

/// Problem exposing seeding.
class SeededProblem final : public nsga2::Problem {
 public:
  [[nodiscard]] int n_genes() const override { return 4; }
  [[nodiscard]] nsga2::GeneBounds bounds(int) const override { return {0, 5}; }
  [[nodiscard]] Evaluation evaluate(std::span<const int> genes) const override {
    double f1 = 0;
    for (int g : genes) f1 += g;
    return {{f1, -f1}, 0.0};
  }
  [[nodiscard]] std::vector<std::vector<int>> seed_individuals(
      int) const override {
    return {{5, 5, 5, 5}, {9, -3, 2, 2}};  // second is out of bounds
  }
};

}  // namespace

TEST(Dominates, ParetoRules) {
  const auto a = make_ind({1.0, 2.0});
  const auto b = make_ind({2.0, 3.0});
  const auto c = make_ind({2.0, 1.0});
  EXPECT_TRUE(nsga2::dominates(a, b));
  EXPECT_FALSE(nsga2::dominates(b, a));
  EXPECT_FALSE(nsga2::dominates(a, c));
  EXPECT_FALSE(nsga2::dominates(c, a));
  EXPECT_FALSE(nsga2::dominates(a, a));  // equal never dominates
}

TEST(Dominates, ConstraintDomination) {
  const auto feas = make_ind({9.0, 9.0}, 0.0);
  const auto infeas_small = make_ind({1.0, 1.0}, 0.5);
  const auto infeas_big = make_ind({0.0, 0.0}, 2.0);
  EXPECT_TRUE(nsga2::dominates(feas, infeas_small));
  EXPECT_FALSE(nsga2::dominates(infeas_small, feas));
  EXPECT_TRUE(nsga2::dominates(infeas_small, infeas_big));
}

TEST(FastNonDominatedSort, KnownFronts) {
  std::vector<nsga2::Individual> pop = {
      make_ind({1, 5}), make_ind({2, 3}), make_ind({4, 1}),  // front 0
      make_ind({2, 6}), make_ind({3, 4}),                    // front 1
      make_ind({5, 5}),                                      // front 2
  };
  const int fronts = nsga2::fast_non_dominated_sort(pop);
  EXPECT_EQ(fronts, 3);
  EXPECT_EQ(pop[0].rank, 0);
  EXPECT_EQ(pop[1].rank, 0);
  EXPECT_EQ(pop[2].rank, 0);
  EXPECT_EQ(pop[3].rank, 1);
  EXPECT_EQ(pop[4].rank, 1);
  EXPECT_EQ(pop[5].rank, 2);
}

TEST(CrowdingDistance, BoundaryPointsInfinite) {
  std::vector<nsga2::Individual> pop = {
      make_ind({1, 5}), make_ind({2, 3}), make_ind({4, 1})};
  nsga2::fast_non_dominated_sort(pop);
  nsga2::assign_crowding_distances(pop);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[2].crowding));
  EXPECT_TRUE(std::isfinite(pop[1].crowding));
  EXPECT_GT(pop[1].crowding, 0.0);
}

TEST(ExtractParetoFront, DropsInfeasibleAndDuplicates) {
  std::vector<nsga2::Individual> pop = {
      make_ind({1, 5}), make_ind({1, 5}),  // duplicate objectives
      make_ind({0, 0}, 1.0),               // infeasible (would dominate)
      make_ind({2, 3})};
  const auto front = nsga2::extract_pareto_front(pop);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].objectives, (std::vector<double>{1, 5}));
  EXPECT_EQ(front[1].objectives, (std::vector<double>{2, 3}));
}

TEST(Optimize, ConvergesToLinearFront) {
  LinearTradeoff problem(8);
  nsga2::Config cfg;
  cfg.population = 40;
  cfg.generations = 40;
  cfg.seed = 1;
  const auto res = nsga2::optimize(problem, cfg);
  EXPECT_EQ(res.evaluations, 40 + 40 * 40);
  ASSERT_FALSE(res.pareto_front.empty());
  // Every point on the true front satisfies f1 + f2 == 80.
  for (const auto& ind : res.pareto_front) {
    EXPECT_DOUBLE_EQ(ind.objectives[0] + ind.objectives[1], 80.0);
  }
  // The front should spread over a substantial objective range.
  double lo = 1e9, hi = -1e9;
  for (const auto& ind : res.pareto_front) {
    lo = std::min(lo, ind.objectives[0]);
    hi = std::max(hi, ind.objectives[0]);
  }
  EXPECT_GT(hi - lo, 20.0);
}

TEST(Optimize, DeterministicInSeed) {
  LinearTradeoff problem(5);
  nsga2::Config cfg;
  cfg.population = 20;
  cfg.generations = 10;
  cfg.seed = 123;
  const auto r1 = nsga2::optimize(problem, cfg);
  const auto r2 = nsga2::optimize(problem, cfg);
  ASSERT_EQ(r1.pareto_front.size(), r2.pareto_front.size());
  for (std::size_t i = 0; i < r1.pareto_front.size(); ++i) {
    EXPECT_EQ(r1.pareto_front[i].genes, r2.pareto_front[i].genes);
  }
}

TEST(Optimize, ParallelEvaluationMatchesSerial) {
  LinearTradeoff problem(6);
  nsga2::Config cfg;
  cfg.population = 24;
  cfg.generations = 8;
  cfg.seed = 9;
  cfg.n_threads = 1;
  const auto serial = nsga2::optimize(problem, cfg);
  cfg.n_threads = 4;
  const auto parallel = nsga2::optimize(problem, cfg);
  ASSERT_EQ(serial.pareto_front.size(), parallel.pareto_front.size());
  for (std::size_t i = 0; i < serial.pareto_front.size(); ++i) {
    EXPECT_EQ(serial.pareto_front[i].genes, parallel.pareto_front[i].genes);
  }
}

TEST(Optimize, RespectsConstraints) {
  ConstrainedTradeoff problem;
  nsga2::Config cfg;
  cfg.population = 40;
  cfg.generations = 30;
  cfg.seed = 4;
  const auto res = nsga2::optimize(problem, cfg);
  ASSERT_FALSE(res.pareto_front.empty());
  for (const auto& ind : res.pareto_front) {
    EXPECT_GE(ind.objectives[0], 20.0);  // constraint satisfied
  }
}

TEST(Optimize, UsesAndClampsSeeds) {
  SeededProblem problem;
  nsga2::Config cfg;
  cfg.population = 8;
  cfg.generations = 0;
  cfg.seed = 2;
  const auto res = nsga2::optimize(problem, cfg);
  // Gen 0 population contains the seeded all-fives individual.
  bool found = false;
  for (const auto& ind : res.population) {
    if (ind.genes == std::vector<int>{5, 5, 5, 5}) found = true;
    for (std::size_t g = 0; g < ind.genes.size(); ++g) {
      EXPECT_GE(ind.genes[g], 0);
      EXPECT_LE(ind.genes[g], 5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Optimize, RejectsBadConfig) {
  LinearTradeoff problem(4);
  nsga2::Config cfg;
  cfg.population = 3;  // odd and too small
  EXPECT_THROW((void)nsga2::optimize(problem, cfg), std::invalid_argument);
}

TEST(Optimize, GenerationCallbackFires) {
  LinearTradeoff problem(4);
  nsga2::Config cfg;
  cfg.population = 8;
  cfg.generations = 5;
  int calls = 0;
  cfg.on_generation = [&](int gen, const std::vector<nsga2::Individual>& pop) {
    EXPECT_EQ(gen, calls);
    EXPECT_EQ(pop.size(), 8u);
    ++calls;
  };
  (void)nsga2::optimize(problem, cfg);
  EXPECT_EQ(calls, 5);
}

TEST(Optimize, CheckpointKnobsAreBitNeutral) {
  LinearTradeoff problem(6);
  nsga2::Config plain;
  plain.population = 20;
  plain.generations = 12;
  plain.seed = 77;
  const auto ref = nsga2::optimize(problem, plain);

  nsga2::Config ticking = plain;
  ticking.checkpoint_every = 3;
  int checkpoints = 0;
  ticking.on_checkpoint = [&](const nsga2::GenerationState& st) {
    ++checkpoints;
    EXPECT_EQ(st.next_generation % 3, 0);
    EXPECT_LT(st.next_generation, 12);  // never after the final generation
    EXPECT_EQ(st.population.size(), 20u);
    EXPECT_FALSE(st.rng.empty());
  };
  const auto r = nsga2::optimize(problem, ticking);
  EXPECT_EQ(checkpoints, 3);  // gens 3, 6, 9
  ASSERT_EQ(r.population.size(), ref.population.size());
  for (std::size_t i = 0; i < ref.population.size(); ++i) {
    EXPECT_EQ(r.population[i].genes, ref.population[i].genes);
  }
}

TEST(Optimize, ResumeFromCheckpointBitIdentical) {
  LinearTradeoff problem(6);
  nsga2::Config cfg;
  cfg.population = 20;
  cfg.generations = 12;
  cfg.seed = 31;
  const auto ref = nsga2::optimize(problem, cfg);

  // Capture every generation boundary, then restart from each one: the
  // continuation must land on the uninterrupted run bit-for-bit (this is
  // what makes a SIGKILL inside the GA stage recoverable from
  // ga_state.txt).
  std::vector<std::shared_ptr<nsga2::GenerationState>> states;
  nsga2::Config capture = cfg;
  capture.checkpoint_every = 1;
  capture.on_checkpoint = [&](const nsga2::GenerationState& st) {
    states.push_back(std::make_shared<nsga2::GenerationState>(st));
  };
  (void)nsga2::optimize(problem, capture);
  ASSERT_EQ(states.size(), 11u);  // gens 1..11

  for (const auto& state : states) {
    nsga2::Config resumed = cfg;
    resumed.resume = state;
    const auto r = nsga2::optimize(problem, resumed);
    ASSERT_EQ(r.population.size(), ref.population.size())
        << "resume at gen " << state->next_generation;
    for (std::size_t i = 0; i < ref.population.size(); ++i) {
      EXPECT_EQ(r.population[i].genes, ref.population[i].genes)
          << "resume at gen " << state->next_generation;
      EXPECT_EQ(r.population[i].objectives, ref.population[i].objectives);
    }
    EXPECT_EQ(r.evaluations, ref.evaluations)
        << "resume at gen " << state->next_generation;
  }
}

TEST(Optimize, ResumeRejectsMismatchedState) {
  LinearTradeoff problem(4);
  nsga2::Config cfg;
  cfg.population = 8;
  cfg.generations = 4;
  auto state = std::make_shared<nsga2::GenerationState>();
  state->next_generation = 1;
  state->population.resize(6);  // wrong population size
  cfg.resume = state;
  EXPECT_THROW((void)nsga2::optimize(problem, cfg), std::invalid_argument);
  auto state2 = std::make_shared<nsga2::GenerationState>();
  state2->next_generation = 1;
  state2->population.resize(8);
  state2->rng = "not a valid mt19937_64 stream";
  cfg.resume = state2;
  EXPECT_THROW((void)nsga2::optimize(problem, cfg), std::invalid_argument);
}

class CrossoverKinds
    : public ::testing::TestWithParam<nsga2::CrossoverKind> {};

TEST_P(CrossoverKinds, AllKindsConverge) {
  LinearTradeoff problem(6);
  nsga2::Config cfg;
  cfg.population = 24;
  cfg.generations = 25;
  cfg.crossover = GetParam();
  cfg.seed = 11;
  const auto res = nsga2::optimize(problem, cfg);
  ASSERT_FALSE(res.pareto_front.empty());
  for (const auto& ind : res.pareto_front) {
    EXPECT_DOUBLE_EQ(ind.objectives[0] + ind.objectives[1], 60.0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, CrossoverKinds,
                         ::testing::Values(nsga2::CrossoverKind::kUniform,
                                           nsga2::CrossoverKind::kOnePoint,
                                           nsga2::CrossoverKind::kTwoPoint));
