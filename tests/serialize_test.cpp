// Tests for model serialization (serialize.hpp) and greedy refinement
// (refine.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/refine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;

namespace {

core::ApproxMlp random_model(std::uint64_t seed,
                             const mlp::Topology& topo = {{5, 3, 2}}) {
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

}  // namespace

TEST(Serialize, TextRoundTripPreservesEverything) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto net = random_model(seed);
    const auto restored = core::from_text(core::to_text(net));
    ASSERT_EQ(restored.topology().layers, net.topology().layers);
    EXPECT_EQ(restored.bits().weight_bits, net.bits().weight_bits);
    EXPECT_EQ(restored.bits().bias_bits, net.bits().bias_bits);
    for (std::size_t l = 0; l < net.layers().size(); ++l) {
      const auto& a = net.layers()[l];
      const auto& b = restored.layers()[l];
      EXPECT_EQ(a.qrelu_shift, b.qrelu_shift);
      for (int o = 0; o < a.n_out; ++o) {
        EXPECT_EQ(a.biases[static_cast<std::size_t>(o)],
                  b.biases[static_cast<std::size_t>(o)]);
        for (int i = 0; i < a.n_in; ++i) {
          EXPECT_EQ(a.conn(o, i).mask, b.conn(o, i).mask);
          EXPECT_EQ(a.conn(o, i).sign, b.conn(o, i).sign);
          EXPECT_EQ(a.conn(o, i).exponent, b.conn(o, i).exponent);
        }
      }
    }
  }
}

TEST(Serialize, RoundTripPreservesBehaviour) {
  const auto net = random_model(7);
  const auto restored = core::from_text(core::to_text(net));
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> x(5);
    for (auto& v : x) v = static_cast<std::uint8_t>(rng() & 0xF);
    EXPECT_EQ(restored.forward(x), net.forward(x));
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto net = random_model(11);
  const std::string path = "/tmp/pmlp_serialize_test.model";
  core::save_model_file(net, path);
  const auto restored = core::load_model_file(path);
  EXPECT_EQ(core::to_text(restored), core::to_text(net));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW((void)core::from_text("wrong v1\n"), std::invalid_argument);
  EXPECT_THROW((void)core::from_text("pmlp-approx-mlp v9\n"),
               std::invalid_argument);
  EXPECT_THROW((void)core::from_text(""), std::invalid_argument);
}

TEST(Serialize, RejectsOutOfRangeValues) {
  const auto net = random_model(13);
  auto text = core::to_text(net);
  // Corrupt a conn line with a huge exponent.
  const auto pos = text.find("conn 0 0 ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "conn 0 0 3 1 99");
  EXPECT_THROW((void)core::from_text(text), std::invalid_argument);
}

TEST(Serialize, RejectsUnknownTag) {
  const auto net = random_model(17);
  EXPECT_THROW((void)core::from_text(core::to_text(net) + "garbage 1\n"),
               std::invalid_argument);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)core::load_model_file("/nonexistent/x.model"),
               std::runtime_error);
}

// ------------------------------------------------------------------ refine

namespace {

struct RefineFixture {
  ds::QuantizedDataset train;
  core::ApproxMlp model;

  static RefineFixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 240;
    auto raw = ds::generate(spec);
    mlp::BackpropConfig bp;
    bp.epochs = 60;
    bp.seed = 51;
    auto fnet = mlp::train_float_mlp(
        mlp::Topology{{raw.n_features, 3, raw.n_classes}}, raw, bp);
    auto baseline = mlp::QuantMlp::from_float(fnet);
    return RefineFixture{
        ds::quantize_inputs(raw, 4),
        core::ApproxMlp::from_quant_baseline(baseline, core::BitConfig{})};
  }
};

}  // namespace

TEST(Refine, ReducesAreaWithoutBreachingFloor) {
  auto f = RefineFixture::make();
  const double base_acc = core::accuracy(f.model, f.train);
  core::RefineConfig cfg;
  cfg.accuracy_floor = base_acc - 0.03;
  const auto report = core::refine_greedy(f.model, f.train, cfg);

  EXPECT_LE(report.fa_after, report.fa_before);
  EXPECT_GT(report.bits_cleared, 0);
  EXPECT_GE(report.accuracy_after, cfg.accuracy_floor - 1e-12);
  EXPECT_EQ(report.fa_after, f.model.fa_area());
}

TEST(Refine, StrictFloorBlocksChangesThatHurt) {
  auto f = RefineFixture::make();
  const double base_acc = core::accuracy(f.model, f.train);
  core::RefineConfig cfg;
  cfg.accuracy_floor = base_acc;  // no loss allowed at all
  const auto report = core::refine_greedy(f.model, f.train, cfg);
  EXPECT_GE(report.accuracy_after, base_acc - 1e-12);
}

TEST(Refine, IdempotentOnceConverged) {
  auto f = RefineFixture::make();
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(f.model, f.train) - 0.03;
  cfg.max_passes = 4;
  (void)core::refine_greedy(f.model, f.train, cfg);
  const long area = f.model.fa_area();
  const auto second = core::refine_greedy(f.model, f.train, cfg);
  EXPECT_EQ(second.fa_after, area);
  EXPECT_EQ(second.bits_cleared, 0);
}

TEST(Refine, FullyPrunedModelUntouched) {
  auto f = RefineFixture::make();
  core::ApproxMlp empty(f.model.topology(), f.model.bits());
  core::RefineConfig cfg;
  cfg.accuracy_floor = 0.0;
  const auto report = core::refine_greedy(empty, f.train, cfg);
  EXPECT_EQ(report.fa_before, 0);
  EXPECT_EQ(report.fa_after, 0);
  EXPECT_EQ(report.bits_cleared, 0);
}
