// Tests for model serialization (serialize.hpp) and greedy refinement
// (refine.hpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/refine.hpp"
#include "pmlp/core/serialize.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/nsga2/nsga2.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;
namespace nsga2 = pmlp::nsga2;

namespace {

core::ApproxMlp random_model(std::uint64_t seed,
                             const mlp::Topology& topo = {{5, 3, 2}}) {
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

}  // namespace

TEST(Serialize, TextRoundTripPreservesEverything) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto net = random_model(seed);
    const auto restored = core::from_text(core::to_text(net));
    ASSERT_EQ(restored.topology().layers, net.topology().layers);
    EXPECT_EQ(restored.bits().weight_bits, net.bits().weight_bits);
    EXPECT_EQ(restored.bits().bias_bits, net.bits().bias_bits);
    for (std::size_t l = 0; l < net.layers().size(); ++l) {
      const auto& a = net.layers()[l];
      const auto& b = restored.layers()[l];
      EXPECT_EQ(a.qrelu_shift, b.qrelu_shift);
      for (int o = 0; o < a.n_out; ++o) {
        EXPECT_EQ(a.biases[static_cast<std::size_t>(o)],
                  b.biases[static_cast<std::size_t>(o)]);
        for (int i = 0; i < a.n_in; ++i) {
          EXPECT_EQ(a.conn(o, i).mask, b.conn(o, i).mask);
          EXPECT_EQ(a.conn(o, i).sign, b.conn(o, i).sign);
          EXPECT_EQ(a.conn(o, i).exponent, b.conn(o, i).exponent);
        }
      }
    }
  }
}

TEST(Serialize, RoundTripPreservesBehaviour) {
  const auto net = random_model(7);
  const auto restored = core::from_text(core::to_text(net));
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> x(5);
    for (auto& v : x) v = static_cast<std::uint8_t>(rng() & 0xF);
    EXPECT_EQ(restored.forward(x), net.forward(x));
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto net = random_model(11);
  const std::string path = "/tmp/pmlp_serialize_test.model";
  core::save_model_file(net, path);
  const auto restored = core::load_model_file(path);
  EXPECT_EQ(core::to_text(restored), core::to_text(net));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW((void)core::from_text("wrong v1\n"), std::invalid_argument);
  EXPECT_THROW((void)core::from_text("pmlp-approx-mlp v9\n"),
               std::invalid_argument);
  EXPECT_THROW((void)core::from_text(""), std::invalid_argument);
}

TEST(Serialize, RejectsOutOfRangeValues) {
  const auto net = random_model(13);
  auto text = core::to_text(net);
  // Corrupt a conn line with a huge exponent.
  const auto pos = text.find("conn 0 0 ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "conn 0 0 3 1 99");
  EXPECT_THROW((void)core::from_text(text), std::invalid_argument);
}

TEST(Serialize, RejectsUnknownTag) {
  const auto net = random_model(17);
  EXPECT_THROW((void)core::from_text(core::to_text(net) + "garbage 1\n"),
               std::invalid_argument);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)core::load_model_file("/nonexistent/x.model"),
               std::runtime_error);
}

// --------------------------------------------- flow checkpoint artifacts

namespace {

template <typename T, typename Save, typename Load>
T round_trip(const T& value, Save save, Load load) {
  std::ostringstream os;
  save(value, os);
  std::istringstream is(os.str());
  return load(is);
}

template <typename T, typename Save>
std::string dump(const T& value, Save save) {
  std::ostringstream os;
  save(value, os);
  return os.str();
}

ds::Dataset tiny_dataset() {
  ds::Dataset d;
  d.name = "tiny";
  d.n_features = 3;
  d.n_classes = 2;
  // Values picked to stress exact double round-trips (subnormal-ish,
  // repeating binary fractions, exact integers).
  d.features = {0.1, 0.25, 1.0, 1e-17, 0.3333333333333333, 0.9999999999999999};
  d.labels = {0, 1};
  return d;
}

ds::QuantizedDataset tiny_quant() {
  ds::QuantizedDataset d;
  d.name = "tinyq";
  d.n_features = 2;
  d.n_classes = 3;
  d.input_bits = 4;
  d.codes = {0, 15, 7, 8, 1, 14};
  d.labels = {0, 2, 1};
  return d;
}

}  // namespace

TEST(SerializeArtifacts, DatasetRoundTripExact) {
  const auto d = tiny_dataset();
  const auto r = round_trip(d, core::save_dataset, core::load_dataset);
  EXPECT_EQ(r.name, d.name);
  EXPECT_EQ(r.n_features, d.n_features);
  EXPECT_EQ(r.n_classes, d.n_classes);
  EXPECT_EQ(r.labels, d.labels);
  ASSERT_EQ(r.features.size(), d.features.size());
  for (std::size_t i = 0; i < d.features.size(); ++i) {
    EXPECT_EQ(r.features[i], d.features[i]);  // bit-exact, not approx
  }
}

TEST(SerializeArtifacts, DatasetRejectsMalformed) {
  const auto good =
      dump(tiny_dataset(), [](const auto& v, auto& os) {
        core::save_dataset(v, os);
      });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_dataset(is);
  };
  EXPECT_THROW((void)parse("pmlp-dataset v9\n"), std::invalid_argument);
  EXPECT_THROW((void)parse("wrong v1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(""), std::invalid_argument);
  // Missing end terminator.
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  // Label out of range.
  std::string bad = good;
  bad.replace(bad.find("row 0"), 5, "row 9");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
  // Unknown tag.
  bad = good;
  bad.replace(bad.find("row"), 3, "wat");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
  // Non-numeric feature.
  bad = good;
  bad.replace(bad.find("0x"), 2, "zz");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, QuantDatasetRoundTripAndRejects) {
  const auto d = tiny_quant();
  const auto r =
      round_trip(d, core::save_quant_dataset, core::load_quant_dataset);
  EXPECT_EQ(r.name, d.name);
  EXPECT_EQ(r.input_bits, d.input_bits);
  EXPECT_EQ(r.codes, d.codes);
  EXPECT_EQ(r.labels, d.labels);

  const auto good = dump(d, [](const auto& v, auto& os) {
    core::save_quant_dataset(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_quant_dataset(is);
  };
  EXPECT_THROW((void)parse("pmlp-quant-dataset v2\n"),
               std::invalid_argument);
  // Code above 2^input_bits - 1.
  std::string bad = good;
  bad.replace(bad.find(" 15"), 3, " 16");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
}

TEST(SerializeArtifacts, FloatMlpRoundTripExact) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 120;
  const auto data = ds::generate(spec);
  mlp::BackpropConfig bp;
  bp.epochs = 10;
  bp.seed = 5;
  const auto net =
      mlp::train_float_mlp(mlp::Topology{{10, 3, 2}}, data, bp);
  const auto r = round_trip(net, core::save_float_mlp, core::load_float_mlp);
  ASSERT_EQ(r.topology().layers, net.topology().layers);
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    EXPECT_EQ(r.layers()[l].weights, net.layers()[l].weights);
    EXPECT_EQ(r.layers()[l].biases, net.layers()[l].biases);
  }

  const auto good = dump(net, [](const auto& v, auto& os) {
    core::save_float_mlp(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_float_mlp(is);
  };
  EXPECT_THROW((void)parse("pmlp-float-mlp v2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  std::string bad = good;
  bad.replace(bad.find("w 0"), 3, "w 9");  // neuron out of range
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, QuantMlpRoundTripPreservesBehaviour) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 120;
  const auto data = ds::generate(spec);
  mlp::BackpropConfig bp;
  bp.epochs = 10;
  bp.seed = 5;
  const auto fnet =
      mlp::train_float_mlp(mlp::Topology{{10, 3, 2}}, data, bp);
  const auto net = mlp::QuantMlp::from_float(fnet);
  const auto r = round_trip(net, core::save_quant_mlp, core::load_quant_mlp);
  ASSERT_EQ(r.topology().layers, net.topology().layers);
  EXPECT_EQ(r.weight_bits(), net.weight_bits());
  const auto quant = ds::quantize_inputs(data, 4);
  for (std::size_t i = 0; i < quant.size(); ++i) {
    EXPECT_EQ(r.forward(quant.row(i)), net.forward(quant.row(i)));
  }

  const auto good = dump(net, [](const auto& v, auto& os) {
    core::save_quant_mlp(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_quant_mlp(is);
  };
  EXPECT_THROW((void)parse("pmlp-quant-mlp v2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  // Weight outside the 8-bit signed range.
  std::string bad = good;
  const auto wpos = bad.find("w 0 ");
  const auto weol = bad.find('\n', wpos);
  bad.replace(wpos, weol - wpos, "w 0 999 0 0 0 0 0 0 0 0 0");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, TrainingResultRoundTrip) {
  core::TrainingResult t;
  t.evaluations = 1234;
  t.wall_seconds = 0.125;
  t.baseline_train_accuracy = 0.9000000000000001;
  t.evals_per_second = 9876.5;
  t.cache_hits = 77;
  t.cache_hit_rate = 0.25;
  for (std::uint64_t seed : {1u, 2u}) {
    core::EstimatedPoint p;
    p.model = random_model(seed);
    p.train_accuracy = 0.5 + 0.01 * static_cast<double>(seed);
    p.fa_area = 100 + static_cast<long>(seed);
    t.estimated_pareto.push_back(std::move(p));
  }

  const auto r = round_trip(t, core::save_training_result,
                            core::load_training_result);
  EXPECT_EQ(r.evaluations, t.evaluations);
  EXPECT_EQ(r.wall_seconds, t.wall_seconds);
  EXPECT_EQ(r.baseline_train_accuracy, t.baseline_train_accuracy);
  EXPECT_EQ(r.evals_per_second, t.evals_per_second);
  EXPECT_EQ(r.cache_hits, t.cache_hits);
  EXPECT_EQ(r.cache_hit_rate, t.cache_hit_rate);
  ASSERT_EQ(r.estimated_pareto.size(), t.estimated_pareto.size());
  for (std::size_t i = 0; i < t.estimated_pareto.size(); ++i) {
    EXPECT_EQ(core::to_text(r.estimated_pareto[i].model),
              core::to_text(t.estimated_pareto[i].model));
    EXPECT_EQ(r.estimated_pareto[i].train_accuracy,
              t.estimated_pareto[i].train_accuracy);
    EXPECT_EQ(r.estimated_pareto[i].fa_area, t.estimated_pareto[i].fa_area);
  }

  const auto good = dump(t, [](const auto& v, auto& os) {
    core::save_training_result(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_training_result(is);
  };
  EXPECT_THROW((void)parse("pmlp-training v2\n"), std::invalid_argument);
  // Truncation inside an embedded model (drops its endmodel + outer end).
  const auto cut = good.find("endmodel");
  EXPECT_THROW((void)parse(good.substr(0, cut)), std::invalid_argument);
  // Count mismatch.
  std::string bad = good;
  bad.replace(bad.find("count 2"), 7, "count 3");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
  // Corrupt gene inside an embedded model block propagates.
  bad = good;
  const auto cpos = bad.find("conn 0 0 ");
  const auto ceol = bad.find('\n', cpos);
  bad.replace(cpos, ceol - cpos, "conn 0 0 3 1 99");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, EvaluatedPointsRoundTrip) {
  std::vector<core::HwEvaluatedPoint> points;
  for (std::uint64_t seed : {3u, 4u}) {
    core::HwEvaluatedPoint p;
    p.model = random_model(seed);
    p.test_accuracy = 0.75 + 0.001 * static_cast<double>(seed);
    p.fa_area = 55;
    p.functional_match = seed == 3u;
    p.cost.area_mm2 = 1.5;
    p.cost.power_uw = 2.5e3;
    p.cost.critical_delay_us = 12.0;
    p.cost.cell_count = 321;
    points.push_back(std::move(p));
  }
  const auto r = round_trip(points, core::save_evaluated_points,
                            core::load_evaluated_points);
  ASSERT_EQ(r.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(core::to_text(r[i].model), core::to_text(points[i].model));
    EXPECT_EQ(r[i].test_accuracy, points[i].test_accuracy);
    EXPECT_EQ(r[i].functional_match, points[i].functional_match);
    EXPECT_EQ(r[i].cost.area_mm2, points[i].cost.area_mm2);
    EXPECT_EQ(r[i].cost.power_uw, points[i].cost.power_uw);
    EXPECT_EQ(r[i].cost.cell_count, points[i].cost.cell_count);
  }

  const auto good = dump(points, [](const auto& v, auto& os) {
    core::save_evaluated_points(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_evaluated_points(is);
  };
  EXPECT_THROW((void)parse("pmlp-evaluated v2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  // functional_match must be 0/1.
  std::string bad = good;
  bad.replace(bad.find(" 55 1 "), 6, " 55 7 ");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, NamesWithSpacesRoundTrip) {
  auto d = tiny_dataset();
  d.name = "red wine quality";
  const auto r = round_trip(d, core::save_dataset, core::load_dataset);
  EXPECT_EQ(r.name, d.name);
  auto q = tiny_quant();
  q.name = "white wine";
  const auto rq =
      round_trip(q, core::save_quant_dataset, core::load_quant_dataset);
  EXPECT_EQ(rq.name, q.name);
}

TEST(SerializeArtifacts, FloatMlpRejectsMissingRows) {
  mlp::FloatMlp net(mlp::Topology{{4, 3, 2}}, 9);
  const auto good = dump(net, [](const auto& v, auto& os) {
    core::save_float_mlp(v, os);
  });
  // Drop one weight row but keep the file otherwise well-formed: must be
  // rejected, not silently filled with random initialization.
  const auto pos = good.find("w 1");
  const auto eol = good.find('\n', pos);
  std::string bad = good;
  bad.erase(pos, eol - pos + 1);
  std::istringstream is(bad);
  EXPECT_THROW((void)core::load_float_mlp(is), std::invalid_argument);
}

TEST(SerializeArtifacts, QuantMlpRejectsMissingRows) {
  mlp::FloatMlp fnet(mlp::Topology{{4, 3, 2}}, 9);
  const auto net = mlp::QuantMlp::from_float(fnet);
  const auto good = dump(net, [](const auto& v, auto& os) {
    core::save_quant_mlp(v, os);
  });
  // Missing bias line.
  auto pos = good.find("b 1");
  auto eol = good.find('\n', pos);
  std::string bad = good;
  bad.erase(pos, eol - pos + 1);
  {
    std::istringstream is(bad);
    EXPECT_THROW((void)core::load_quant_mlp(is), std::invalid_argument);
  }
  // Missing layer header line (would silently keep default qrelu shift).
  pos = good.find("layer 1");
  eol = good.find('\n', pos);
  bad = good;
  bad.erase(pos, eol - pos + 1);
  {
    std::istringstream is(bad);
    EXPECT_THROW((void)core::load_quant_mlp(is), std::invalid_argument);
  }
}

TEST(SerializeArtifacts, BaselinePricingRoundTripAndRejects) {
  mlp::FloatMlp fnet(mlp::Topology{{4, 3, 2}}, 9);
  core::BaselinePricing p;
  p.net = mlp::QuantMlp::from_float(fnet);
  p.cost.area_mm2 = 123.5;
  p.cost.power_uw = 4.5e3;
  p.cost.critical_delay_us = 7.25;
  p.cost.cell_count = 999;
  p.train_accuracy = 0.875;
  p.test_accuracy = 0.8333333333333333;

  const auto r = round_trip(p, core::save_baseline_pricing,
                            core::load_baseline_pricing);
  EXPECT_EQ(r.cost.area_mm2, p.cost.area_mm2);
  EXPECT_EQ(r.cost.power_uw, p.cost.power_uw);
  EXPECT_EQ(r.cost.critical_delay_us, p.cost.critical_delay_us);
  EXPECT_EQ(r.cost.cell_count, p.cost.cell_count);
  EXPECT_EQ(r.train_accuracy, p.train_accuracy);
  EXPECT_EQ(r.test_accuracy, p.test_accuracy);
  ASSERT_EQ(r.net.topology().layers, p.net.topology().layers);
  EXPECT_EQ(r.net.layers()[0].weights, p.net.layers()[0].weights);
  EXPECT_EQ(r.net.layers()[1].qrelu_shift, p.net.layers()[1].qrelu_shift);

  const auto good = dump(p, [](const auto& v, auto& os) {
    core::save_baseline_pricing(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_baseline_pricing(is);
  };
  EXPECT_THROW((void)parse("pmlp-baseline v2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  std::string bad = good;
  bad.replace(bad.find(" 999"), 4, " -12");  // negative cell count
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

TEST(SerializeArtifacts, DatasetDigestDetectsChanges) {
  const auto d = tiny_dataset();
  auto d2 = d;
  EXPECT_EQ(core::dataset_digest(d), core::dataset_digest(d2));
  d2.features[0] += 1e-16;
  EXPECT_NE(core::dataset_digest(d), core::dataset_digest(d2));
  auto d3 = d;
  d3.labels[0] = 1;
  EXPECT_NE(core::dataset_digest(d), core::dataset_digest(d3));
  auto d4 = d;
  d4.name = "other";
  EXPECT_NE(core::dataset_digest(d), core::dataset_digest(d4));
}

TEST(SerializeArtifacts, GaStateRoundTripExact) {
  nsga2::GenerationState st;
  st.next_generation = 7;
  st.evaluations = 421;
  std::mt19937_64 rng(99);
  rng.discard(12345);
  {
    std::ostringstream ros;
    ros << rng;
    st.rng = ros.str();
  }
  for (int i = 0; i < 4; ++i) {
    nsga2::Individual ind;
    ind.genes = {i, 2 * i, 5 - i};
    ind.objectives = {0.5 + i, 1e-17 * i};
    ind.constraint_violation = i == 2 ? 0.25 : 0.0;
    ind.rank = i % 2;
    // Boundary individuals carry infinite crowding — must survive a trip.
    ind.crowding =
        i == 0 ? std::numeric_limits<double>::infinity() : 0.125 * i;
    st.population.push_back(std::move(ind));
  }

  const auto r = round_trip(st, core::save_ga_state, core::load_ga_state);
  EXPECT_EQ(r.next_generation, st.next_generation);
  EXPECT_EQ(r.evaluations, st.evaluations);
  EXPECT_EQ(r.rng, st.rng);
  ASSERT_EQ(r.population.size(), st.population.size());
  for (std::size_t i = 0; i < st.population.size(); ++i) {
    EXPECT_EQ(r.population[i].genes, st.population[i].genes);
    EXPECT_EQ(r.population[i].objectives, st.population[i].objectives);
    EXPECT_EQ(r.population[i].constraint_violation,
              st.population[i].constraint_violation);
    EXPECT_EQ(r.population[i].rank, st.population[i].rank);
    EXPECT_EQ(r.population[i].crowding, st.population[i].crowding);
  }
  // The restored RNG blob must reproduce the exact stream.
  std::mt19937_64 restored;
  std::istringstream ris(r.rng);
  ris >> restored;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored(), rng());

  const auto good = dump(st, [](const auto& v, auto& os) {
    core::save_ga_state(v, os);
  });
  auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return core::load_ga_state(is);
  };
  EXPECT_THROW((void)parse("pmlp-ga-state v2\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(good.substr(0, good.size() - 4)),
               std::invalid_argument);
  std::string bad = good;
  bad.replace(bad.find("population 4"), 12, "population 5");
  EXPECT_THROW((void)parse(bad), std::invalid_argument);
}

// --------------------------------------------- crash-truncation property

namespace {

/// One artifact type for the truncation sweep: its canonical body and a
/// parse-then-redump functor (throws std::invalid_argument on damage).
struct SweepArtifact {
  const char* name;
  std::string body;
  std::function<std::string(const std::string&)> reparse;
};

template <typename T, typename Save, typename Load>
SweepArtifact sweep_artifact(const char* name, const T& value, Save save,
                             Load load) {
  SweepArtifact a;
  a.name = name;
  a.body = dump(value, save);
  a.reparse = [save, load](const std::string& text) {
    std::istringstream is(text);
    const T parsed = load(is);
    std::ostringstream os;
    save(parsed, os);
    return os.str();
  };
  return a;
}

}  // namespace

// A crash can leave any byte-prefix of an artifact on disk (the
// fsync+rename commit in write_artifact_file makes this impossible for the
// FINAL name, but the property must hold anyway: no prefix of any artifact
// may load as silently wrong data). For every artifact type and every
// prefix length: the read either throws std::invalid_argument or yields
// the exact original value.
TEST(SerializeArtifacts, EveryPrefixTruncationDetectedOrExact) {
  namespace fs = std::filesystem;
  std::vector<SweepArtifact> artifacts;
  artifacts.push_back(sweep_artifact(
      "dataset", tiny_dataset(), core::save_dataset, core::load_dataset));
  artifacts.push_back(sweep_artifact("quant_dataset", tiny_quant(),
                                     core::save_quant_dataset,
                                     core::load_quant_dataset));
  {
    mlp::FloatMlp fnet(mlp::Topology{{4, 3, 2}}, 9);
    artifacts.push_back(sweep_artifact("float_mlp", fnet,
                                       core::save_float_mlp,
                                       core::load_float_mlp));
    core::BaselinePricing p;
    p.net = mlp::QuantMlp::from_float(fnet);
    p.cost.area_mm2 = 123.5;
    p.train_accuracy = 0.875;
    p.test_accuracy = 0.8333333333333333;
    artifacts.push_back(sweep_artifact("baseline", p,
                                       core::save_baseline_pricing,
                                       core::load_baseline_pricing));
  }
  {
    core::TrainingResult t;
    t.evaluations = 12;
    core::EstimatedPoint p;
    p.model = random_model(5, mlp::Topology{{3, 2, 2}});
    p.train_accuracy = 0.75;
    p.fa_area = 42;
    t.estimated_pareto.push_back(std::move(p));
    artifacts.push_back(sweep_artifact("training", t,
                                       core::save_training_result,
                                       core::load_training_result));
    core::HwEvaluatedPoint hp;
    hp.model = random_model(6, mlp::Topology{{3, 2, 2}});
    hp.test_accuracy = 0.5;
    hp.fa_area = 9;
    hp.cost.cell_count = 10;
    const std::vector<core::HwEvaluatedPoint> pts = {hp};
    artifacts.push_back(sweep_artifact(
        "evaluated", pts,
        [](const auto& v, std::ostream& os) {
          core::save_evaluated_points(v, os);
        },
        [](std::istream& is) { return core::load_evaluated_points(is); }));
  }
  {
    nsga2::GenerationState st;
    st.next_generation = 2;
    st.evaluations = 8;
    std::mt19937_64 rng(3);
    std::ostringstream ros;
    ros << rng;
    st.rng = ros.str();
    nsga2::Individual ind;
    ind.genes = {1, 2};
    ind.objectives = {0.5};
    st.population.push_back(std::move(ind));
    artifacts.push_back(sweep_artifact("ga_state", st, core::save_ga_state,
                                       core::load_ga_state));
  }

  const fs::path dir = fs::temp_directory_path() /
                       ("pmlp_serialize_sweep_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  for (const auto& art : artifacts) {
    SCOPED_TRACE(art.name);
    const std::string full_path = (dir / art.name).string();
    core::write_artifact_file(full_path,
                              [&](std::ostream& os) { os << art.body; });
    std::string full;
    {
      std::ifstream is(full_path, std::ios::binary);
      std::stringstream ss;
      ss << is.rdbuf();
      full = ss.str();
    }
    ASSERT_GT(full.size(), art.body.size());  // footer appended
    const std::string cut_path = full_path + ".cut";
    int detected = 0, exact = 0;
    for (std::size_t n = 0; n < full.size(); ++n) {
      {
        std::ofstream os(cut_path, std::ios::binary | std::ios::trunc);
        os.write(full.data(), static_cast<std::streamsize>(n));
      }
      try {
        const std::string text = core::read_artifact_file(cut_path);
        EXPECT_EQ(art.reparse(text), art.body) << "prefix " << n;
        ++exact;
      } catch (const std::invalid_argument&) {
        ++detected;  // damage caught — the only acceptable failure mode
      }
    }
    // Almost every prefix must be rejected; the only loadable prefixes are
    // the complete-body-no-footer legacy form(s).
    EXPECT_GT(detected, static_cast<int>(full.size()) - 4) << art.name;
    EXPECT_LE(exact, 3) << art.name;
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ refine

namespace {

struct RefineFixture {
  ds::QuantizedDataset train;
  core::ApproxMlp model;

  static RefineFixture make() {
    auto spec = ds::breast_cancer_spec();
    spec.n_samples = 240;
    auto raw = ds::generate(spec);
    mlp::BackpropConfig bp;
    bp.epochs = 60;
    bp.seed = 51;
    auto fnet = mlp::train_float_mlp(
        mlp::Topology{{raw.n_features, 3, raw.n_classes}}, raw, bp);
    auto baseline = mlp::QuantMlp::from_float(fnet);
    return RefineFixture{
        ds::quantize_inputs(raw, 4),
        core::ApproxMlp::from_quant_baseline(baseline, core::BitConfig{})};
  }
};

}  // namespace

TEST(Refine, ReducesAreaWithoutBreachingFloor) {
  auto f = RefineFixture::make();
  const double base_acc = core::accuracy(f.model, f.train);
  core::RefineConfig cfg;
  cfg.accuracy_floor = base_acc - 0.03;
  const auto report = core::refine_greedy(f.model, f.train, cfg);

  EXPECT_LE(report.fa_after, report.fa_before);
  EXPECT_GT(report.bits_cleared, 0);
  EXPECT_GE(report.accuracy_after, cfg.accuracy_floor - 1e-12);
  EXPECT_EQ(report.fa_after, f.model.fa_area());
}

TEST(Refine, StrictFloorBlocksChangesThatHurt) {
  auto f = RefineFixture::make();
  const double base_acc = core::accuracy(f.model, f.train);
  core::RefineConfig cfg;
  cfg.accuracy_floor = base_acc;  // no loss allowed at all
  const auto report = core::refine_greedy(f.model, f.train, cfg);
  EXPECT_GE(report.accuracy_after, base_acc - 1e-12);
}

TEST(Refine, IdempotentOnceConverged) {
  auto f = RefineFixture::make();
  core::RefineConfig cfg;
  cfg.accuracy_floor = core::accuracy(f.model, f.train) - 0.03;
  cfg.max_passes = 4;
  (void)core::refine_greedy(f.model, f.train, cfg);
  const long area = f.model.fa_area();
  const auto second = core::refine_greedy(f.model, f.train, cfg);
  EXPECT_EQ(second.fa_after, area);
  EXPECT_EQ(second.bits_cleared, 0);
}

TEST(Refine, FullyPrunedModelUntouched) {
  auto f = RefineFixture::make();
  core::ApproxMlp empty(f.model.topology(), f.model.bits());
  core::RefineConfig cfg;
  cfg.accuracy_floor = 0.0;
  const auto report = core::refine_greedy(empty, f.train, cfg);
  EXPECT_EQ(report.fa_before, 0);
  EXPECT_EQ(report.fa_after, 0);
  EXPECT_EQ(report.bits_cleared, 0);
}
