// RTL round-trip tests: the three-way equivalence property (C++ oracle ==
// gate-level simulator == in-process evaluation of the emitted Verilog)
// over random bespoke designs, the export artifacts/manifest, simulator
// discovery, and the testbench-log parse contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "pmlp/core/chromosome.hpp"
#include "pmlp/core/rtl_export.hpp"
#include "pmlp/rtl/sim_runner.hpp"

namespace core = pmlp::core;
namespace rtl = pmlp::rtl;
namespace fs = std::filesystem;

namespace {

/// Random trained-model stand-in for property tests (same recipe as
/// netlist_opt_test's random_circuit, but keeping the ApproxMlp).
core::ApproxMlp random_model(std::uint64_t seed) {
  const pmlp::mlp::Topology topo{{4, 3, 2}};
  core::ChromosomeCodec codec(topo, core::BitConfig{});
  std::mt19937_64 rng(seed);
  std::vector<int> genes(static_cast<std::size_t>(codec.n_genes()));
  for (int g = 0; g < codec.n_genes(); ++g) {
    const auto b = codec.bounds(g);
    genes[static_cast<std::size_t>(g)] =
        b.lo + static_cast<int>(rng() % static_cast<unsigned>(b.hi - b.lo + 1));
  }
  return codec.decode(genes);
}

/// An environment-variable override scoped to one test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

}  // namespace

// ---------------------------------------------------------------- stimulus

TEST(LfsrStimulus, DeterministicAndInRange) {
  const auto a = core::lfsr_stimulus(16, 5, 4, 7);
  const auto b = core::lfsr_stimulus(16, 5, 4, 7);
  ASSERT_EQ(a.size(), 80u);
  EXPECT_EQ(a, b);  // same seed, same stimulus
  for (const auto code : a) EXPECT_LT(code, 16);
  const auto c = core::lfsr_stimulus(16, 5, 4, 8);
  EXPECT_NE(a, c);  // different seed, different stimulus
}

TEST(LfsrStimulus, RejectsBadArguments) {
  EXPECT_THROW((void)core::lfsr_stimulus(4, 0, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)core::lfsr_stimulus(4, 3, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)core::lfsr_stimulus(4, 3, 9, 1), std::invalid_argument);
}

// --------------------------------------------------------------- log parse

TEST(ParseTestbenchLog, PassLine) {
  const auto run = rtl::parse_testbench_log(
      "compiling...\nTESTBENCH PASS (128 vectors)\n");
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.vectors, 128);
}

TEST(ParseTestbenchLog, FailLine) {
  const auto run =
      rtl::parse_testbench_log("MISMATCH vector 3\nTESTBENCH FAIL: 2 errors\n");
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.errors, 2);
}

TEST(ParseTestbenchLog, NoSummary) {
  const auto run = rtl::parse_testbench_log("syntax error\n");
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.errors, -1);
}

// --------------------------------------------------------------- discovery

TEST(FindSimulator, EnvOffDisablesDiscovery) {
  ScopedEnv env("PMLP_SIMULATOR", "off");
  EXPECT_FALSE(rtl::find_simulator().has_value());
}

TEST(FindSimulator, EnvPathUsedVerbatim) {
  const fs::path dir = fresh_dir("fake_sim_bin");
  fs::create_directories(dir);
  const fs::path tool = dir / "iverilog";
  {
    std::ofstream os(tool);
    os << "#!/bin/sh\nexit 0\n";
  }
  fs::permissions(tool, fs::perms::owner_all);
  ScopedEnv env("PMLP_SIMULATOR", tool.c_str());
  const auto sim = rtl::find_simulator();
  ASSERT_TRUE(sim.has_value());
  EXPECT_EQ(sim->name, "iverilog");
  EXPECT_EQ(sim->path, tool.string());
}

// -------------------------------------------------------------- sim runner

TEST(SimRunner, RunsFakeToolchainAndParsesPass) {
  // A fake iverilog + vvp pair stands in for the real toolchain, so the
  // compile/run/parse plumbing is covered on machines without a simulator.
  const fs::path dir = fresh_dir("fake_toolchain");
  fs::create_directories(dir);
  {
    std::ofstream os(dir / "iverilog");
    os << "#!/bin/sh\nexit 0\n";
  }
  {
    std::ofstream os(dir / "vvp");
    os << "#!/bin/sh\necho 'TESTBENCH PASS (3 vectors)'\n";
  }
  fs::permissions(dir / "iverilog", fs::perms::owner_all);
  fs::permissions(dir / "vvp", fs::perms::owner_all);

  const rtl::SimRunner runner({"iverilog", (dir / "iverilog").string()});
  const fs::path dut = dir / "dut.v";
  const fs::path tb = dir / "tb.v";
  {
    std::ofstream os(dut);
    os << "module m; endmodule\n";
  }
  {
    std::ofstream os(tb);
    os << "module tb; endmodule\n";
  }
  const auto run = runner.run(dut.string(), tb.string(),
                              (dir / "work").string());
  EXPECT_TRUE(run.ok) << run.log;
  EXPECT_EQ(run.vectors, 3);
  EXPECT_NE(run.command.find("iverilog"), std::string::npos);
}

// ------------------------------------------------------------- round-trip

class RtlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtlRoundTrip, ThreeWayEquivalenceOverRandomDesigns) {
  // export_rtl throws on any divergence between the C++ oracle, the
  // gate-level simulator and the emitted-Verilog evaluation — so a clean
  // export IS the three-way property. Recorded + random stimulus both run.
  const auto model = random_model(GetParam());
  core::RtlPointSpec spec;
  spec.name = "prop_" + std::to_string(GetParam());
  spec.model = model;
  std::mt19937_64 rng(GetParam() ^ 0xBEEF);
  for (int v = 0; v < 8; ++v) {
    for (int f = 0; f < 4; ++f) {
      spec.recorded.push_back(static_cast<std::uint8_t>(rng() & 0xF));
    }
  }
  const fs::path dir = fresh_dir("rtl_prop_" + std::to_string(GetParam()));

  core::RtlExportOptions opts;
  opts.random_vectors = 32;
  const auto report = core::export_rtl({&spec, 1}, dir.string(), opts);
  ASSERT_EQ(report.points.size(), 1u);
  const auto& p = report.points.front();
  EXPECT_EQ(p.n_recorded, 8u);
  EXPECT_EQ(p.n_random, 32u);
  EXPECT_EQ(p.sim, core::RtlSimOutcome::kSkipped);
  EXPECT_TRUE(fs::is_regular_file(p.dut_file));
  EXPECT_TRUE(fs::is_regular_file(p.tb_file));
  EXPECT_TRUE(fs::is_regular_file(report.manifest_file));

  // The unoptimized netlist must agree too (optimize=false path).
  const fs::path dir2 = fresh_dir("rtl_prop_raw_" + std::to_string(GetParam()));
  core::RtlExportOptions raw = opts;
  raw.optimize = false;
  const auto report2 = core::export_rtl({&spec, 1}, dir2.string(), raw);
  EXPECT_EQ(report2.points.front().gates_removed, 0);
  EXPECT_GE(report2.points.front().gates, p.gates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(RtlExport, ManifestListsEveryPoint) {
  const fs::path dir = fresh_dir("rtl_manifest");
  std::vector<core::RtlPointSpec> specs(2);
  specs[0].name = "point_a";
  specs[0].model = random_model(41);
  specs[1].name = "point_b";
  specs[1].model = random_model(42);
  core::RtlExportOptions opts;
  opts.random_vectors = 8;
  const auto report = core::export_rtl(specs, dir.string(), opts);
  ASSERT_EQ(report.points.size(), 2u);

  std::ifstream is(report.manifest_file);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header,
            "name\tdut\ttb\trecorded\trandom\tgates\tgates_removed\tsim\t"
            "sim_errors");
  std::string row;
  std::getline(is, row);
  EXPECT_NE(row.find("point_a\tpoint_a.v\tpoint_a_tb.v\t0\t8\t"),
            std::string::npos);
  std::getline(is, row);
  EXPECT_NE(row.find("point_b"), std::string::npos);
}

TEST(RtlExport, RejectsBadSpecs) {
  const fs::path dir = fresh_dir("rtl_bad");
  core::RtlPointSpec spec;
  spec.name = "bad";
  spec.model = random_model(51);
  spec.recorded = {1, 2, 3};  // not a multiple of 4 features
  EXPECT_THROW((void)core::export_rtl({&spec, 1}, dir.string()),
               std::invalid_argument);
  spec.recorded.clear();
  core::RtlExportOptions none;
  none.random_vectors = 0;
  EXPECT_THROW((void)core::export_rtl({&spec, 1}, dir.string(), none),
               std::invalid_argument);  // no stimulus at all
}

TEST(VerifyRtl, SkipsGracefullyWithoutSimulator) {
  ScopedEnv env("PMLP_SIMULATOR", "off");
  const fs::path dir = fresh_dir("rtl_skip");
  core::RtlPointSpec spec;
  spec.name = "skipper";
  spec.model = random_model(61);
  core::RtlExportOptions opts;
  opts.random_vectors = 8;
  const auto report = core::verify_rtl({&spec, 1}, dir.string(), opts);
  EXPECT_TRUE(report.simulator.empty());
  EXPECT_EQ(report.points.front().sim, core::RtlSimOutcome::kSkipped);
  EXPECT_TRUE(report.all_passed(false));
  EXPECT_FALSE(report.all_passed(true));  // --require-sim semantics
}

TEST(VerifyRtl, RunsInstalledSimulatorWhenPresent) {
  // On machines with iverilog/verilator on PATH (CI), the full external
  // round-trip must PASS; elsewhere this degrades to the skip contract.
  const auto sim = rtl::find_simulator();
  const fs::path dir = fresh_dir("rtl_full");
  core::RtlPointSpec spec;
  spec.name = "full_trip";
  spec.model = random_model(71);
  core::RtlExportOptions opts;
  opts.random_vectors = 16;
  const auto report = core::verify_rtl({&spec, 1}, dir.string(), opts);
  const auto& p = report.points.front();
  if (sim) {
    EXPECT_EQ(report.simulator, sim->name);
    EXPECT_EQ(p.sim, core::RtlSimOutcome::kPass) << p.sim_log;
    EXPECT_TRUE(report.all_passed(true));
  } else {
    EXPECT_EQ(p.sim, core::RtlSimOutcome::kSkipped);
  }
}
