#include <gtest/gtest.h>

#include "pmlp/hwmodel/cells.hpp"
#include "pmlp/hwmodel/power.hpp"

namespace hw = pmlp::hwmodel;

TEST(CellLibrary, AllCellsHavePositiveParams) {
  const auto& lib = hw::CellLibrary::egfet_1v();
  for (std::size_t t = 0; t < hw::kNumCellTypes; ++t) {
    const auto& p = lib.cell(static_cast<hw::CellType>(t));
    EXPECT_GT(p.area_mm2, 0.0) << hw::cell_name(static_cast<hw::CellType>(t));
    EXPECT_GT(p.power_uw, 0.0);
    EXPECT_GT(p.delay_us, 0.0);
  }
  EXPECT_DOUBLE_EQ(lib.supply_voltage(), 1.0);
}

TEST(CellLibrary, RelativeCostsFollowComplexity) {
  const auto& lib = hw::CellLibrary::egfet_1v();
  // A full adder must cost more than a half adder, which costs more than
  // an XOR, which costs more than an inverter.
  EXPECT_GT(lib.cell(hw::CellType::kFullAdder).area_mm2,
            lib.cell(hw::CellType::kHalfAdder).area_mm2);
  EXPECT_GT(lib.cell(hw::CellType::kHalfAdder).area_mm2,
            lib.cell(hw::CellType::kXor2).area_mm2);
  EXPECT_GT(lib.cell(hw::CellType::kXor2).area_mm2,
            lib.cell(hw::CellType::kNot).area_mm2);
}

TEST(CellLibrary, VoltageScalingShape) {
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto low = lib.at_voltage(0.6);
  EXPECT_DOUBLE_EQ(low.supply_voltage(), 0.6);
  for (std::size_t t = 0; t < hw::kNumCellTypes; ++t) {
    const auto ct = static_cast<hw::CellType>(t);
    // Area unchanged, power shrinks ~V^3, delay grows.
    EXPECT_DOUBLE_EQ(low.cell(ct).area_mm2, lib.cell(ct).area_mm2);
    EXPECT_NEAR(low.cell(ct).power_uw / lib.cell(ct).power_uw, 0.216, 1e-9);
    EXPECT_GT(low.cell(ct).delay_us, lib.cell(ct).delay_us);
  }
}

TEST(CellLibrary, VoltageScalingGivesPaperExtraGain) {
  // §V-C: 912x total power gain at 0.6 V vs 203x at 1 V => ~4.5x extra.
  const auto& lib = hw::CellLibrary::egfet_1v();
  const auto low = lib.at_voltage(0.6);
  const double extra = lib.cell(hw::CellType::kFullAdder).power_uw /
                       low.cell(hw::CellType::kFullAdder).power_uw;
  EXPECT_NEAR(extra, 4.6, 0.2);
}

TEST(CellLibrary, RejectsOutOfRangeVoltage) {
  const auto& lib = hw::CellLibrary::egfet_1v();
  EXPECT_THROW((void)lib.at_voltage(0.4), std::invalid_argument);
  EXPECT_THROW((void)lib.at_voltage(1.3), std::invalid_argument);
}

TEST(CircuitCost, UnitConversions) {
  hw::CircuitCost c;
  c.area_mm2 = 1234.0;
  c.power_uw = 56789.0;
  EXPECT_DOUBLE_EQ(c.area_cm2(), 12.34);
  EXPECT_DOUBLE_EQ(c.power_mw(), 56.789);
}

TEST(PowerSources, OrderedByCapacity) {
  const auto& sources = hw::printed_power_sources();
  ASSERT_EQ(sources.size(), 4u);
  for (std::size_t i = 1; i < sources.size(); ++i) {
    EXPECT_GT(sources[i].max_power_mw, sources[i - 1].max_power_mw);
  }
  EXPECT_DOUBLE_EQ(sources[1].max_power_mw, 5.0);   // Blue Spark
  EXPECT_DOUBLE_EQ(sources[2].max_power_mw, 15.0);  // Zinergy
  EXPECT_DOUBLE_EQ(sources[3].max_power_mw, 30.0);  // Molex
}

TEST(Feasibility, PaperTable2Classification) {
  // Our Table II circuits at 1 V: BC 0.04cm2/0.15mW and RW/WW fit the
  // harvester; Cardio (6.5 mW) needs Zinergy; Pendigits (40.2 mW) has no
  // adequate printed source.
  using hw::FeasibilityZone;
  EXPECT_EQ(hw::classify_feasibility(0.04, 0.15), FeasibilityZone::kHarvester);
  EXPECT_EQ(hw::classify_feasibility(0.20, 0.74), FeasibilityZone::kHarvester);
  EXPECT_EQ(hw::classify_feasibility(1.73, 6.5),
            FeasibilityZone::kZinergy15mW);
  EXPECT_EQ(hw::classify_feasibility(12.7, 40.2),
            FeasibilityZone::kNoPowerSource);
}

TEST(Feasibility, UnsustainableAreaDominates) {
  EXPECT_EQ(hw::classify_feasibility(33.4, 1.0),
            hw::FeasibilityZone::kUnsustainableArea);
}

TEST(Feasibility, BoundariesInclusive) {
  EXPECT_EQ(hw::classify_feasibility(1.0, 5.0),
            hw::FeasibilityZone::kBlueSpark5mW);
  EXPECT_EQ(hw::classify_feasibility(1.0, 15.0),
            hw::FeasibilityZone::kZinergy15mW);
  EXPECT_EQ(hw::classify_feasibility(1.0, 30.0),
            hw::FeasibilityZone::kMolex30mW);
  EXPECT_EQ(hw::classify_feasibility(1.0, 30.01),
            hw::FeasibilityZone::kNoPowerSource);
}

TEST(Feasibility, SmallestAdequateSource) {
  const auto s = hw::smallest_adequate_source(6.5);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->name, "Zinergy");
  EXPECT_FALSE(hw::smallest_adequate_source(40.2).has_value());
}

TEST(Feasibility, ZoneNamesAreStable) {
  EXPECT_EQ(hw::zone_name(hw::FeasibilityZone::kHarvester), "Harvester");
  EXPECT_EQ(hw::zone_name(hw::FeasibilityZone::kUnsustainableArea),
            "Unsustainable area");
}
