// Tests for the real-data loaders (uci.hpp, exercised on synthetic fixture
// files written to /tmp) and the dataset diagnostics (metrics.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "pmlp/datasets/metrics.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/datasets/uci.hpp"

namespace ds = pmlp::datasets;

namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = "/tmp/pmlp_uci_" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

}  // namespace

TEST(Uci, BreastCancerDropsIdsAndMissing) {
  // id, 9 features, label in {2,4}; one row has a missing value.
  const auto path = write_temp(
      "wbc.data",
      "1000025,5,1,1,1,2,1,3,1,1,2\n"
      "1002945,5,4,4,5,7,10,3,2,1,2\n"
      "1015425,3,1,1,1,2,?,3,1,1,2\n"
      "1016277,6,8,8,1,3,4,3,7,1,4\n");
  const auto d = ds::load_uci_breast_cancer(path);
  EXPECT_EQ(d.n_features, 9);
  EXPECT_EQ(d.size(), 3u);  // '?' row dropped
  EXPECT_EQ(d.n_classes, 2);
  EXPECT_EQ(d.labels, (std::vector<int>{0, 0, 1}));
  for (double v : d.features) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  std::remove(path.c_str());
}

TEST(Uci, WineUsesSemicolonsAndHeader) {
  const auto path = write_temp(
      "wine.csv",
      "\"fixed acidity\";\"volatile\";\"quality\"\n"
      "7.4;0.7;5\n"
      "7.8;0.88;6\n"
      "11.2;0.28;5\n");
  const auto d = ds::load_uci_wine(path, "RedWine");
  EXPECT_EQ(d.n_features, 2);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.n_classes, 2);  // {5,6} re-indexed
  EXPECT_EQ(d.labels, (std::vector<int>{0, 1, 0}));
  std::remove(path.c_str());
}

TEST(Uci, PendigitsKeepsRawLabels) {
  const auto path = write_temp(
      "pendigits.tra",
      "47,100,27,81,57,37,26,0,0,23,56,53,100,90,40,98,8\n"
      "0,89,27,100,42,75,29,45,15,15,37,0,69,2,100,6,2\n");
  const auto d = ds::load_uci_pendigits(path);
  EXPECT_EQ(d.n_features, 16);
  EXPECT_EQ(d.n_classes, 9);  // max label 8 -> classes 0..8
  EXPECT_EQ(d.labels, (std::vector<int>{8, 2}));
  std::remove(path.c_str());
}

TEST(Uci, CardioSkipsHeader) {
  const auto path = write_temp(
      "ctg.csv",
      "f1,f2,f3,NSP\n"
      "1,2,3,1\n"
      "4,5,6,2\n"
      "7,8,9,3\n");
  const auto d = ds::load_uci_cardio(path);
  EXPECT_EQ(d.n_features, 3);
  EXPECT_EQ(d.n_classes, 3);
  EXPECT_EQ(d.labels, (std::vector<int>{0, 1, 2}));
  std::remove(path.c_str());
}

TEST(Uci, DispatcherAndErrors) {
  EXPECT_THROW((void)ds::load_uci("BreastCancer", "/nonexistent"),
               std::runtime_error);
  EXPECT_THROW((void)ds::load_uci("NoSuchDataset", "/tmp/x"),
               std::runtime_error);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, PriorsSumToOne) {
  const auto d = ds::generate(ds::cardio_spec());
  const auto m = ds::compute_metrics(d);
  double sum = 0.0;
  for (double p : m.class_priors) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Cardio priors are skewed toward class 0 (~0.78).
  EXPECT_GT(m.class_priors[0], 0.7);
}

TEST(Metrics, CentroidAccuracyTracksDifficulty) {
  const auto easy = ds::compute_metrics(ds::generate(ds::breast_cancer_spec()));
  const auto hard = ds::compute_metrics(ds::generate(ds::white_wine_spec()));
  // Unweighted Euclidean centroids dilute the concentrated signal, so the
  // bound is looser than the MLP's ~0.98 — the easy/hard gap is the point.
  EXPECT_GT(easy.nearest_centroid_accuracy, 0.8);
  EXPECT_LT(hard.nearest_centroid_accuracy, 0.65);
  EXPECT_GT(easy.nearest_centroid_accuracy,
            hard.nearest_centroid_accuracy + 0.2);
}

TEST(Metrics, FisherScoresReflectFeatureConcentration) {
  // The synthetic generators concentrate signal in low-index features;
  // the Fisher profile must show it.
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto m = ds::compute_metrics(d);
  ASSERT_EQ(m.fisher_scores.size(), 10u);
  EXPECT_GT(m.fisher_scores[0], m.fisher_scores[9]);
  EXPECT_GT(m.top3_signal_share, 0.4);
}

TEST(Metrics, NuisanceFeaturesScoreNearZero) {
  auto spec = ds::red_wine_spec();
  const auto d = ds::generate(spec);
  const auto m = ds::compute_metrics(d);
  // The trailing 35% of features are pure noise: their Fisher score must
  // be far below the strongest feature's.
  const double strongest =
      *std::max_element(m.fisher_scores.begin(), m.fisher_scores.end());
  EXPECT_GT(strongest, 10.0 * m.fisher_scores.back());
}

TEST(Metrics, CentroidsHaveExpectedShape) {
  const auto d = ds::generate(ds::breast_cancer_spec());
  const auto c = ds::class_centroids(d);
  EXPECT_EQ(c.size(), static_cast<std::size_t>(d.n_classes * d.n_features));
  for (double v : c) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}
