// Tests for the sample-blocked SIMD TrainEngine (mlp/train_engine.hpp)
// against its contract: the per-sample train_backprop_naive loop is the
// reference oracle (bit-exact in the single-block scalar case on x86-64,
// tolerance-equal otherwise), results are bit-identical across thread
// counts and across runs for a given ISA, the scalar and dispatched-ISA
// paths converge to the same accuracy, and the flow checkpoint fingerprint
// accepts an ISA/thread change on resume.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "flow_test_util.hpp"
#include "pmlp/core/flow_engine.hpp"
#include "pmlp/core/simd.hpp"
#include "pmlp/core/suite.hpp"
#include "pmlp/datasets/synthetic.hpp"
#include "pmlp/mlp/backprop.hpp"
#include "pmlp/mlp/train_engine.hpp"

namespace core = pmlp::core;
namespace ds = pmlp::datasets;
namespace mlp = pmlp::mlp;

namespace {

struct TempDir : pmlp::test::TempDir {
  explicit TempDir(const char* tag)
      : pmlp::test::TempDir("pmlp_train_engine_test", tag) {}
};

/// Force an ISA for the duration of a scope, restoring the previous one.
struct ScopedIsa {
  core::SimdIsa prev;
  explicit ScopedIsa(core::SimdIsa isa) : prev(core::active_simd_isa()) {
    core::set_simd_isa(isa);
  }
  ~ScopedIsa() { core::set_simd_isa(prev); }
};

ds::Dataset small_data(int n_samples = 200) {
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = n_samples;
  return ds::generate(spec);
}

mlp::Topology small_topo() { return mlp::Topology{{10, 3, 2}}; }

mlp::BackpropConfig small_cfg() {
  mlp::BackpropConfig cfg;
  cfg.epochs = 30;
  cfg.seed = 91;
  return cfg;
}

void expect_same_weights(const mlp::FloatMlp& a, const mlp::FloatMlp& b) {
  ASSERT_EQ(a.layers().size(), b.layers().size());
  for (std::size_t l = 0; l < a.layers().size(); ++l) {
    const auto& la = a.layers()[l];
    const auto& lb = b.layers()[l];
    ASSERT_EQ(la.weights.size(), lb.weights.size());
    for (std::size_t w = 0; w < la.weights.size(); ++w) {
      EXPECT_EQ(la.weights[w], lb.weights[w]) << "layer " << l << " w " << w;
    }
    ASSERT_EQ(la.biases.size(), lb.biases.size());
    for (std::size_t b_ = 0; b_ < la.biases.size(); ++b_) {
      EXPECT_EQ(la.biases[b_], lb.biases[b_]) << "layer " << l << " b " << b_;
    }
  }
}

[[maybe_unused]] double max_weight_delta(const mlp::FloatMlp& a,
                                         const mlp::FloatMlp& b) {
  double mx = 0.0;
  for (std::size_t l = 0; l < a.layers().size(); ++l) {
    for (std::size_t w = 0; w < a.layers()[l].weights.size(); ++w) {
      mx = std::max(mx, std::abs(a.layers()[l].weights[w] -
                                 b.layers()[l].weights[w]));
    }
    for (std::size_t b_ = 0; b_ < a.layers()[l].biases.size(); ++b_) {
      mx = std::max(mx, std::abs(a.layers()[l].biases[b_] -
                                 b.layers()[l].biases[b_]));
    }
  }
  return mx;
}

}  // namespace

// With batch_size <= kBlockSamples every batch is one block, so the engine
// under scalar dispatch performs the naive loop's arithmetic in the naive
// loop's order: the trained weights must match bit for bit on x86-64
// (where plain C++ cannot contract a*b+c into FMA). The epoch-loss
// accumulation associates differently across batches (per-block partials),
// so the loss is compared with a tolerance.
TEST(TrainEngine, ScalarSingleBlockMatchesNaiveOracle) {
  const auto data = small_data();
  auto cfg = small_cfg();
  ASSERT_LE(cfg.batch_size, mlp::TrainEngine::kBlockSamples);

  ScopedIsa scalar(core::SimdIsa::kScalar);
  mlp::FloatMlp naive_net(small_topo(), cfg.seed);
  const auto naive = mlp::train_backprop_naive(naive_net, data, cfg);

  mlp::FloatMlp engine_net(small_topo(), cfg.seed);
  const auto engine = mlp::train_backprop(engine_net, data, cfg);

  EXPECT_EQ(engine.epochs_run, naive.epochs_run);
  EXPECT_NEAR(engine.final_loss, naive.final_loss, 1e-9);
#if defined(__x86_64__)
  expect_same_weights(naive_net, engine_net);
  EXPECT_EQ(engine.final_train_accuracy, naive.final_train_accuracy);
#else
  EXPECT_LT(max_weight_delta(naive_net, engine_net), 1e-9);
  EXPECT_NEAR(engine.final_train_accuracy, naive.final_train_accuracy, 0.02);
#endif
}

// The report carries the runtime metadata the flow/bench JSON surfaces.
TEST(TrainEngine, ReportRecordsThroughputAndIsa) {
  const auto data = small_data();
  auto cfg = small_cfg();
  mlp::FloatMlp net(small_topo(), cfg.seed);
  const auto report = mlp::train_backprop(net, data, cfg);
  EXPECT_EQ(report.epochs_run, cfg.epochs);
  EXPECT_GT(report.samples_per_second, 0.0);
  EXPECT_EQ(report.simd_isa, core::simd_isa_name(core::active_simd_isa()));
  EXPECT_EQ(report.block, mlp::TrainEngine::kBlockSamples);
  EXPECT_EQ(report.threads, 1);
}

// Dispatched-ISA engine training converges like the naive oracle: same
// final train/test accuracy within tolerance on the paper suite datasets.
TEST(TrainEngine, ConvergenceMatchesNaiveOnSuiteDatasets) {
  for (const char* name : {"BreastCancer", "RedWine"}) {
    const auto data = core::load_paper_dataset(name);
    const auto split = ds::stratified_split(data, 0.7, 1);
    const auto& topo = core::paper_topology(name);
    mlp::BackpropConfig cfg;
    cfg.epochs = 60;
    cfg.seed = 7;

    mlp::FloatMlp naive_net(topo, cfg.seed);
    const auto naive = mlp::train_backprop_naive(naive_net, split.train, cfg);
    mlp::FloatMlp engine_net(topo, cfg.seed);
    const auto engine = mlp::train_backprop(engine_net, split.train, cfg);

    EXPECT_NEAR(engine.final_train_accuracy, naive.final_train_accuracy,
                0.03)
        << name;
    EXPECT_NEAR(mlp::accuracy(engine_net, split.test),
                mlp::accuracy(naive_net, split.test), 0.05)
        << name;
    EXPECT_NEAR(engine.final_loss, naive.final_loss, 0.05) << name;
  }
}

// Multi-block batches sharded over 1, 4 and auto workers must produce
// bit-identical nets (fixed block partition, shards reduced in block
// order), and repeated runs must reproduce themselves exactly.
TEST(TrainEngine, BitIdenticalAcrossThreadCountsAndRuns) {
  const auto data = small_data(300);
  auto cfg = small_cfg();
  cfg.batch_size = 96;  // three blocks per full batch
  ASSERT_GT(cfg.batch_size, mlp::TrainEngine::kBlockSamples);

  std::vector<mlp::FloatMlp> nets;
  std::vector<mlp::BackpropReport> reports;
  for (const int n_threads : {1, 4, 0, 1}) {  // trailing 1 = repeat run
    auto run_cfg = cfg;
    run_cfg.n_threads = n_threads;
    mlp::FloatMlp net(small_topo(), cfg.seed);
    reports.push_back(mlp::train_backprop(net, data, run_cfg));
    nets.push_back(std::move(net));
  }
  for (std::size_t i = 1; i < nets.size(); ++i) {
    expect_same_weights(nets[0], nets[i]);
    EXPECT_EQ(reports[0].final_train_accuracy,
              reports[i].final_train_accuracy);
    EXPECT_EQ(reports[0].final_loss, reports[i].final_loss);
  }
  EXPECT_EQ(reports[1].threads, 4);
  EXPECT_GE(reports[2].threads, 1);  // auto
}

// Forced-scalar vs dispatched-ISA training: the float summation order (and
// FMA contraction) differs, so weights drift, but both converge to the
// same quality within tolerance. On machines whose best ISA IS scalar the
// comparison is trivially exact, which is also correct.
TEST(TrainEngine, ScalarVsDispatchedWithinTolerance) {
  const auto data = small_data();
  const auto cfg = small_cfg();

  mlp::FloatMlp scalar_net(small_topo(), cfg.seed);
  mlp::BackpropReport scalar_report;
  {
    ScopedIsa scalar(core::SimdIsa::kScalar);
    scalar_report = mlp::train_backprop(scalar_net, data, cfg);
    EXPECT_EQ(scalar_report.simd_isa, "scalar");
  }
  mlp::FloatMlp simd_net(small_topo(), cfg.seed);
  mlp::BackpropReport simd_report;
  {
    ScopedIsa best(core::detect_simd_isa());
    simd_report = mlp::train_backprop(simd_net, data, cfg);
  }
  EXPECT_NEAR(simd_report.final_train_accuracy,
              scalar_report.final_train_accuracy, 0.03);
  EXPECT_NEAR(simd_report.final_loss, scalar_report.final_loss, 0.05);
}

// The engine throws on nets that do not fit the dataset instead of reading
// out of bounds.
TEST(TrainEngine, RejectsMismatchedNet) {
  const auto data = small_data();
  const auto cfg = small_cfg();
  mlp::FloatMlp wrong_inputs(mlp::Topology{{7, 3, 2}}, 1);
  EXPECT_THROW(mlp::train_backprop(wrong_inputs, data, cfg),
               std::invalid_argument);
  mlp::FloatMlp wrong_outputs(mlp::Topology{{10, 3, 1}}, 1);
  EXPECT_THROW(mlp::train_backprop(wrong_outputs, data, cfg),
               std::invalid_argument);
}

// Flow-level: the checkpoint fingerprint excludes both the thread knob and
// the ISA (runtime state), so a checkpoint written under one configuration
// resumes under another — reloading the stored float net keeps the whole
// FlowResult bit-identical.
TEST(TrainEngine, FlowCheckpointAcceptsIsaAndThreadChange) {
  TempDir dir("isa_resume");
  auto spec = ds::breast_cancer_spec();
  spec.n_samples = 200;
  const auto data = ds::generate(spec);
  core::FlowConfig cfg;
  cfg.backprop.epochs = 30;
  cfg.backprop.seed = 61;
  cfg.trainer.ga.population = 16;
  cfg.trainer.ga.generations = 6;
  cfg.trainer.ga.seed = 61;
  cfg.trainer.n_threads = 1;
  cfg.hardware.equivalence_samples = 8;
  const mlp::Topology topo{{10, 3, 2}};

  core::FlowResult r1;
  {
    ScopedIsa scalar(core::SimdIsa::kScalar);
    core::FlowEngine first(data, topo, cfg);
    first.set_checkpoint_dir(dir.path.string());
    r1 = first.run();
    EXPECT_EQ(r1.backprop.simd_isa, "scalar");
    EXPECT_GT(r1.backprop.samples_per_second, 0.0);
  }

  auto resumed_cfg = cfg;
  resumed_cfg.trainer.n_threads = 4;  // excluded from the fingerprint
  core::FlowResult r2;
  {
    ScopedIsa best(core::detect_simd_isa());
    core::FlowEngine second(data, topo, resumed_cfg);
    second.set_checkpoint_dir(dir.path.string());
    r2 = second.run();
  }
  pmlp::test::expect_same_result(r1, r2);
  // Every stage up to select was reloaded, none retrained: the backprop
  // report is all zeros in the resumed run (runtime metadata, not
  // checkpointed).
  for (const auto& s : r2.stages) {
    EXPECT_EQ(s.reused, s.stage != core::FlowStage::kSelect)
        << core::flow_stage_name(s.stage);
  }
  EXPECT_EQ(r2.backprop.samples_per_second, 0.0);
  EXPECT_TRUE(r2.backprop.simd_isa.empty());
}
