#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "pmlp/bitops/bitops.hpp"
#include "pmlp/bitops/fixed_point.hpp"
#include "pmlp/bitops/lfsr.hpp"

namespace bitops = pmlp::bitops;

TEST(Bitops, PopcountMatchesManualCount) {
  EXPECT_EQ(bitops::popcount(0), 0);
  EXPECT_EQ(bitops::popcount(0b101101), 4);
  EXPECT_EQ(bitops::popcount(~std::uint64_t{0}), 64);
}

TEST(Bitops, LowMaskBoundaries) {
  EXPECT_EQ(bitops::low_mask(0), 0u);
  EXPECT_EQ(bitops::low_mask(1), 1u);
  EXPECT_EQ(bitops::low_mask(4), 0xFu);
  EXPECT_EQ(bitops::low_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(bitops::low_mask(-3), 0u);
}

TEST(Bitops, TestAndSetBit) {
  std::uint64_t v = 0;
  v = bitops::set_bit(v, 5, true);
  EXPECT_TRUE(bitops::test_bit(v, 5));
  EXPECT_FALSE(bitops::test_bit(v, 4));
  v = bitops::set_bit(v, 5, false);
  EXPECT_EQ(v, 0u);
  // Out-of-range positions are no-ops / false.
  EXPECT_EQ(bitops::set_bit(v, 64, true), 0u);
  EXPECT_FALSE(bitops::test_bit(~std::uint64_t{0}, 64));
}

TEST(Bitops, MsbIndexAndWidth) {
  EXPECT_EQ(bitops::msb_index(0), -1);
  EXPECT_EQ(bitops::msb_index(1), 0);
  EXPECT_EQ(bitops::msb_index(0x80), 7);
  EXPECT_EQ(bitops::bit_width_u(0), 1);
  EXPECT_EQ(bitops::bit_width_u(255), 8);
  EXPECT_EQ(bitops::bit_width_u(256), 9);
}

TEST(Bitops, SignedBitWidthCoversRange) {
  // Width w must satisfy -2^(w-1) <= v < 2^(w-1).
  for (std::int64_t v : {-129, -128, -127, -1, 0, 1, 127, 128, 255}) {
    const int w = bitops::bit_width_signed(v);
    const std::int64_t lo = -(std::int64_t{1} << (w - 1));
    const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
    EXPECT_GE(v, lo) << v;
    EXPECT_LE(v, hi) << v;
    if (w > 1) {
      // Minimality: one bit fewer must not fit.
      const std::int64_t lo2 = -(std::int64_t{1} << (w - 2));
      const std::int64_t hi2 = (std::int64_t{1} << (w - 2)) - 1;
      EXPECT_TRUE(v < lo2 || v > hi2) << v;
    }
  }
}

TEST(Bitops, SetBitPositions) {
  const auto pos = bitops::set_bit_positions(0b101101);
  ASSERT_EQ(pos.size(), 4u);
  EXPECT_EQ(pos, (std::vector<int>{0, 2, 3, 5}));
  EXPECT_TRUE(bitops::set_bit_positions(0).empty());
}

class TwosComplementRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TwosComplementRoundTrip, AllValuesOfWidth) {
  const int w = GetParam();
  const std::int64_t lo = -(std::int64_t{1} << (w - 1));
  const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
  for (std::int64_t v = lo; v <= hi; ++v) {
    const auto bits = bitops::to_twos_complement(v, w);
    EXPECT_EQ(bitops::from_twos_complement(bits, w), v) << "w=" << w;
    EXPECT_EQ(bits & ~bitops::low_mask(w), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TwosComplementRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

TEST(Bitops, BinaryStringRoundTrip) {
  EXPECT_EQ(bitops::to_binary_string(0b101101, 6), "101101");
  EXPECT_EQ(bitops::from_binary_string("101101"), 0b101101u);
  EXPECT_EQ(bitops::to_binary_string(1, 4), "0001");
  EXPECT_THROW((void)bitops::from_binary_string("10x1"), std::invalid_argument);
  EXPECT_THROW((void)bitops::from_binary_string(""), std::invalid_argument);
}

TEST(Bitops, ReverseBits) {
  EXPECT_EQ(bitops::reverse_bits(0b1000, 4), 0b0001u);
  EXPECT_EQ(bitops::reverse_bits(0b1011, 4), 0b1101u);
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(bitops::reverse_bits(bitops::reverse_bits(v, 6), 6), v);
  }
}

TEST(UnsignedQuantizer, EndpointsAndClamping) {
  bitops::UnsignedQuantizer q{4};
  EXPECT_EQ(q.levels(), 15u);
  EXPECT_EQ(q.quantize(0.0), 0u);
  EXPECT_EQ(q.quantize(1.0), 15u);
  EXPECT_EQ(q.quantize(-0.5), 0u);
  EXPECT_EQ(q.quantize(2.0), 15u);
  EXPECT_DOUBLE_EQ(q.dequantize(15), 1.0);
}

TEST(UnsignedQuantizer, RoundTripErrorBounded) {
  bitops::UnsignedQuantizer q{4};
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    const double err = std::abs(q.dequantize(q.quantize(x)) - x);
    EXPECT_LE(err, 0.5 / 15.0 + 1e-12) << x;
  }
}

TEST(SignedQuantizer, FitCoversMaxAbs) {
  const std::vector<double> w = {-0.8, 0.3, 0.79};
  const auto q = bitops::SignedQuantizer::fit(w, 8);
  EXPECT_EQ(q.max_code(), 127);
  EXPECT_EQ(q.quantize(0.8), 127);
  EXPECT_EQ(q.quantize(-0.8), -127);
  EXPECT_NEAR(q.dequantize(q.quantize(0.3)), 0.3, q.scale / 2 + 1e-12);
}

TEST(SignedQuantizer, RejectsBadBits) {
  EXPECT_THROW((void)bitops::SignedQuantizer::fit({1.0}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)bitops::SignedQuantizer::fit({1.0}, 40),
               std::invalid_argument);
}

TEST(NearestPow2, IsActuallyNearestForAll8BitCodes) {
  for (std::int64_t c = -127; c <= 127; ++c) {
    if (c == 0) continue;
    const auto p2 = bitops::nearest_pow2(c, 6);
    EXPECT_EQ(p2.sign, c < 0 ? -1 : +1) << c;
    const std::int64_t mag = c < 0 ? -c : c;
    const std::int64_t got = std::int64_t{1} << p2.exponent;
    for (int k = 0; k <= 6; ++k) {
      const std::int64_t cand = std::int64_t{1} << k;
      EXPECT_LE(std::abs(got - mag), std::abs(cand - mag))
          << "code " << c << " exp " << p2.exponent;
    }
  }
}

TEST(NearestPow2, ZeroMapsToPositiveUnit) {
  const auto p2 = bitops::nearest_pow2(0, 6);
  EXPECT_EQ(p2.sign, +1);
  EXPECT_EQ(p2.exponent, 0);
}

class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, IsMaximalLength) {
  const int w = GetParam();
  bitops::Lfsr lfsr(w, 1);
  std::set<std::uint32_t> seen;
  const std::uint32_t period = lfsr.period();
  for (std::uint32_t i = 0; i < period; ++i) {
    const auto s = lfsr.next();
    EXPECT_NE(s, 0u);  // zero state is absorbing and must never appear
    EXPECT_TRUE(seen.insert(s).second) << "repeated state at step " << i;
  }
  // After a full period the sequence must repeat.
  EXPECT_EQ(seen.size(), period);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriod,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Lfsr, ZeroSeedIsRepaired) {
  bitops::Lfsr lfsr(8, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, RejectsUnsupportedWidth) {
  EXPECT_THROW(bitops::Lfsr(3, 1), std::invalid_argument);
  EXPECT_THROW(bitops::Lfsr(17, 1), std::invalid_argument);
}

TEST(StochasticNumberGenerator, BitProbabilityTracksThreshold) {
  // Over a full period, an SNG emits exactly `threshold` ones (the LFSR
  // visits every nonzero state once).
  const int w = 8;
  for (std::uint32_t threshold : {0u, 32u, 128u, 255u}) {
    bitops::StochasticNumberGenerator sng(w, threshold, 1);
    int ones = 0;
    const int period = (1 << w) - 1;
    for (int i = 0; i < period; ++i) ones += sng.next_bit() ? 1 : 0;
    EXPECT_EQ(ones, static_cast<int>(threshold));
  }
}
